#!/usr/bin/env bash
# Tier-1 verification plus a sanitizer pass.
#
# 1. Clean-ish release build + full test suite (the tier-1 gate).
# 2. Fast-forward vs lockstep wall-clock microbenchmark (JSON on stdout).
# 3. AddressSanitizer + UBSan build (-DAURORA_SANITIZE=ON) running the test
#    suite and a small parallel comparison grid (--jobs > 1) to shake out
#    data races over the thread-pooled bench cells and any lifetime bugs in
#    the event-driven scheduler.
# 4. ThreadSanitizer build (-DAURORA_SANITIZE=thread) running the cluster
#    suite and a parallel differential fuzz batch against the
#    multi-threaded cluster engine.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: release build + tests =="
cmake -B build -S .
cmake --build build -j
ctest --test-dir build --output-on-failure -j

echo "== simspeed microbenchmark =="
./build/bench/micro_simspeed

echo "== observability smoke: trace + metrics export =="
# A small cycle-mode run with every observability flag on. Both outputs must
# be valid JSON; the metrics report must carry the per-phase and latency
# schema, and the trace must contain phase spans and counter tracks.
obs_dir="$(mktemp -d)"
trap 'rm -rf "$obs_dir"' EXIT
./build/examples/simulate --dataset=cora --scale=0.03 --model=GCN \
  --mode=cycle --trace-out="$obs_dir/trace.json" \
  --metrics-out="$obs_dir/metrics.json" --sample-interval=32
python3 -m json.tool "$obs_dir/trace.json" > /dev/null
python3 -m json.tool "$obs_dir/metrics.json" > /dev/null
for key in '"traceEvents"' '"ph": "X"' '"ph": "C"' '"noc.packets_in_flight"'; do
  grep -qF "$key" "$obs_dir/trace.json" \
    || { echo "trace schema drift: missing $key"; exit 1; }
done
for key in '"phases"' '"edge_update"' '"aggregation"' '"vertex_update"' \
           '"noc_packet_latency"' '"dram_request_latency"' '"p99"'; do
  grep -qF "$key" "$obs_dir/metrics.json" \
    || { echo "metrics schema drift: missing $key"; exit 1; }
done
echo "observability smoke: ok"

echo "== critical-path profiler smoke =="
# Profiler test suite by ctest label, then a single-chip simulate run and a
# 4-chip shard-parallel serving run writing critpath JSON. The report must
# carry the v1 schema and satisfy the attribution invariant: the five
# category cycle counts sum exactly to the end-to-end total.
ctest --test-dir build -L profile --output-on-failure -j
./build/examples/simulate --dataset=cora --scale=0.03 --model=GCN \
  --critpath-out="$obs_dir/critpath.json" --what-if="dram_latency=0.5x"
./build/examples/serving --scale=0.02 --requests=2 --hidden=16 \
  --chips=4 --mode=shard --critpath-out="$obs_dir/critpath_cluster.json" \
  --trace-out="$obs_dir/trace_cluster.json"
python3 -m json.tool "$obs_dir/trace_cluster.json" > /dev/null
for f in "$obs_dir/critpath.json" "$obs_dir/critpath_cluster.json"; do
  python3 - "$f" <<'EOF'
import json, sys
with open(sys.argv[1]) as fh:
    report = json.load(fh)
assert report["schema"] == "aurora.critpath.v1", report["schema"]
categories = ["pe_compute", "noc_serialization", "dram_service",
              "reconfiguration", "halo_barrier_wait"]
for scope in [report] + report["runs"]:
    attributed = sum(scope["attribution"][c] for c in categories)
    assert attributed == scope["total_cycles"], \
        (sys.argv[1], attributed, scope["total_cycles"])
EOF
done
echo "critical-path smoke: ok"

echo "== differential fuzz smoke: lockstep vs fast-forward =="
# Fixed seeds, both scheduler modes, invariant checker attached; any
# divergence or conservation-law violation prints the seed and a replay
# command. Deterministic, so a failure here reproduces exactly.
./build/bench/fuzz_sim --seeds=25

echo "== cluster smoke: multi-chip scale-out =="
# Cluster test suite by ctest label, then 2- and 4-chip serving runs in both
# dispatch modes, then the cluster differential fuzz (random shard counts,
# topologies and link parameters; per-chip metrics and cluster counters must
# be bit-identical across scheduler modes).
ctest --test-dir build -L cluster --output-on-failure -j
./build/examples/serving --scale=0.02 --requests=4 --hidden=16 \
  --chips=2 --mode=shard
./build/examples/serving --scale=0.02 --requests=4 --hidden=16 \
  --chips=4 --mode=data
./build/bench/fuzz_sim --cluster --seeds=15

echo "== serving smoke: open-loop engine =="
# Serving test suite by ctest label, then a short open-loop Poisson run
# whose JSON report must carry the v1 schema and satisfy the admission
# invariant admitted + shed == generated, then the goodput-vs-rate sweep
# (which re-asserts the invariant at every point) writing its artifact.
ctest --test-dir build -L serving --output-on-failure -j
./build/examples/serving --scale=0.02 --hidden=16 --arrival=poisson \
  --rate=200000 --slo-us=500 --requests=16 --seed=3 --queue-depth=4 \
  --serving-out="$obs_dir/serving.json"
python3 - "$obs_dir/serving.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as fh:
    report = json.load(fh)
assert report["schema"] == "aurora.serving.v1", report["schema"]
assert report["admitted"] + report["shed"] == report["generated"], report
completed = len(report["requests"])
assert report["admitted"] == completed + report["shed_expired"] \
    + report["failed_permanently"], report
EOF
./build/bench/micro_serving --requests=12 --out=BENCH_serving.json

echo "== workload smoke: dynamic graphs + sampling =="
# Workload test suite by ctest label (sampler determinism across simulation
# modes, compaction bit-identity, churn-aware sharding), then the
# dynamic-graph fuzzer (random insert/delete streams cross-checked against
# a reference model; compact() must be bit-identical to a from-scratch
# rebuild at every checkpoint), then a churning 2-chip serving run.
ctest --test-dir build -L workload --output-on-failure -j
./build/bench/fuzz_workload --seeds=25
./build/examples/serving --scale=0.02 --hidden=16 --dynamic --requests=12 \
  --churn=0.6 --fanout=6,3 --batch-seeds=3 --chips=2 \
  --reshard-threshold=0.1 --seed=5

echo "== fault smoke: deterministic injection + failure-aware serving =="
# Fault test suite by ctest label, then a 4-chip open-loop run with chip
# faults on whose JSON report must satisfy both conservation invariants,
# then the fault differential fuzz (all four engine/scheduler flavours must
# agree bit for bit on fault timelines and the full ServingReport), then the
# availability-vs-MTBF sweep writing its artifact (re-asserts conservation
# at every point).
ctest --test-dir build -L fault --output-on-failure -j
./build/examples/serving --scale=0.02 --hidden=16 --arrival=poisson \
  --rate=150000 --slo-us=800 --requests=16 --seed=7 --chips=4 --mode=data \
  --faults=3 --mtbf-us=200 --mttr-us=50 \
  --serving-out="$obs_dir/serving_faults.json"
python3 - "$obs_dir/serving_faults.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as fh:
    report = json.load(fh)
assert report["schema"] == "aurora.serving.v1", report["schema"]
assert report["admitted"] + report["shed"] == report["generated"], report
completed = len(report["requests"])
assert report["admitted"] == completed + report["shed_expired"] \
    + report["failed_permanently"], report
EOF
./build/bench/fuzz_sim --cluster --parallel --faults --seeds=25
./build/bench/micro_serving --requests=12 --faults=1 --rate=4000 \
  --out=BENCH_serving_faults.json

echo "== parallel engine: differential fuzz + microbenchmark =="
# Every seed runs the cluster on the serial AND parallel engines in both
# scheduler modes; all four results must be bit-identical. Then the
# serial-vs-parallel wall-clock comparison at 1..16 chips (asserts
# bit-identity internally) writes its JSON artifact.
./build/bench/fuzz_sim --cluster --parallel --seeds=25
./build/bench/micro_clustersim | tee BENCH_clustersim.json

echo "== sanitizers: ASan + UBSan build =="
cmake -B build-asan -S . -DAURORA_SANITIZE=ON
cmake --build build-asan -j
ctest --test-dir build-asan --output-on-failure -j

echo "== sanitizers: parallel bench grid =="
# Tiny scale keeps this minutes-cheap under ASan; --jobs 4 exercises the
# thread pool. abort_on_error surfaces any report as a non-zero exit.
export ASAN_OPTIONS="abort_on_error=1:${ASAN_OPTIONS:-}"
export UBSAN_OPTIONS="halt_on_error=1:${UBSAN_OPTIONS:-}"
./build-asan/bench/fig9_execution_time --scale=0.02 --jobs=4
./build-asan/bench/micro_simspeed --iters=200

echo "== sanitizers: differential fuzz smoke =="
# Fewer seeds than the release smoke: ASan runs each seed's two engine
# passes ~10x slower, and the sanitizer is hunting memory bugs here, not
# schedule divergence (the release smoke already covers seeds 1-25).
./build-asan/bench/fuzz_sim --seeds=8

echo "== sanitizers: cluster smoke =="
# 2- and 4-chip shard-parallel serving plus a short cluster fuzz under
# ASan/UBSan: the link/proxy callback plumbing and per-run component
# lifetimes are the fresh attack surface here.
./build-asan/examples/serving --scale=0.02 --requests=2 --hidden=16 \
  --chips=2 --mode=shard
./build-asan/examples/serving --scale=0.02 --requests=2 --hidden=16 \
  --chips=4 --mode=shard
./build-asan/bench/fuzz_sim --cluster --seeds=5
# Fault differential seeds under ASan/UBSan: the fault-plan window queries,
# the retry heap and the failover re-dispatch path are the fresh surface.
./build-asan/bench/fuzz_sim --cluster --faults --seeds=5

echo "== sanitizers: serving smoke =="
# The serving suite plus one open-loop run under ASan/UBSan: the queue's
# erase-based pops and the engine's request moves are the fresh lifetime
# surface here.
ctest --test-dir build-asan -L serving --output-on-failure -j
./build-asan/examples/serving --scale=0.02 --hidden=16 --arrival=bursty \
  --rate=150000 --slo-us=500 --requests=8 --seed=5 --chips=2 --mode=data

echo "== sanitizers: workload smoke =="
# Streaming-update fuzz under ASan/UBSan: the overlay's sorted-vector
# insert/erase churn and compaction's in-place merge are the fresh memory
# surface here (fewer seeds than the release smoke — each seed runs ~10x
# slower sanitized).
./build-asan/bench/fuzz_workload --seeds=8
./build-asan/examples/serving --scale=0.02 --hidden=16 --dynamic \
  --requests=8 --churn=0.6 --fanout=6,3 --batch-seeds=3 --chips=2 \
  --reshard-threshold=0.1 --seed=5

echo "== sanitizers: critical-path profiler =="
# The profiler test suite plus a traced critpath run under ASan/UBSan: the
# trace enrichment (packed 32-bit pairs, ring-buffer eviction) and the
# analyzer's backward walk are pointer-light but index-heavy — exactly what
# UBSan's bounds and overflow checks are for.
ctest --test-dir build-asan -L profile --output-on-failure -j
./build-asan/examples/simulate --dataset=cora --scale=0.03 --model=GCN \
  --critpath --what-if="link_bw=2x,dram_latency=0.5x"

echo "== sanitizers: TSan build (parallel cluster engine) =="
# ThreadSanitizer cannot coexist with ASan, so it gets its own tree. The
# attack surface is the parallel engine: the cluster test suite plus a
# short parallel differential fuzz batch under TSan catches data races in
# the thread pool, the coordinator barriers and the link fabric inboxes.
export TSAN_OPTIONS="halt_on_error=1:${TSAN_OPTIONS:-}"
cmake -B build-tsan -S . -DAURORA_SANITIZE=thread
cmake --build build-tsan -j --target test_cluster test_scheduler test_common \
  test_sim fuzz_sim serving
ctest --test-dir build-tsan -L cluster --output-on-failure -j
./build-tsan/bench/fuzz_sim --cluster --parallel --seeds=5
# Fault injection on the multi-threaded engine: a shard-parallel serving run
# with chip faults (retry/failover over the parallel cluster engine) and a
# short fault differential batch.
./build-tsan/examples/serving --scale=0.02 --requests=4 --hidden=16 \
  --chips=2 --mode=shard --parallel-sim --faults=3 --mtbf-us=300 \
  --mttr-us=60
./build-tsan/bench/fuzz_sim --cluster --parallel --faults --seeds=3

echo "check.sh: all green"
