#!/usr/bin/env bash
# Tier-1 verification plus a sanitizer pass.
#
# 1. Clean-ish release build + full test suite (the tier-1 gate).
# 2. Fast-forward vs lockstep wall-clock microbenchmark (JSON on stdout).
# 3. AddressSanitizer + UBSan build (-DAURORA_SANITIZE=ON) running the test
#    suite and a small parallel comparison grid (--jobs > 1) to shake out
#    data races over the thread-pooled bench cells and any lifetime bugs in
#    the event-driven scheduler.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: release build + tests =="
cmake -B build -S .
cmake --build build -j
ctest --test-dir build --output-on-failure -j

echo "== simspeed microbenchmark =="
./build/bench/micro_simspeed

echo "== sanitizers: ASan + UBSan build =="
cmake -B build-asan -S . -DAURORA_SANITIZE=ON
cmake --build build-asan -j
ctest --test-dir build-asan --output-on-failure -j

echo "== sanitizers: parallel bench grid =="
# Tiny scale keeps this minutes-cheap under ASan; --jobs 4 exercises the
# thread pool. abort_on_error surfaces any report as a non-zero exit.
export ASAN_OPTIONS="abort_on_error=1:${ASAN_OPTIONS:-}"
export UBSAN_OPTIONS="halt_on_error=1:${UBSAN_OPTIONS:-}"
./build-asan/bench/fig9_execution_time --scale=0.02 --jobs=4
./build-asan/bench/micro_simspeed --iters=200

echo "check.sh: all green"
