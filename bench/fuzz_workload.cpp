// Seed-reproducible fuzzer for the dynamic-graph workload subsystem.
//
// Each seed deterministically generates a random base graph and a random
// stream of edge/vertex insert/delete operations, mirrors every op in a
// slow reference model (a plain sorted adjacency-set per vertex), and
// continuously cross-checks the DynamicGraph against it:
//
//   * after every op: logical edge count and a sampled has_edge probe;
//   * at random checkpoints and at the end: snapshot() (the from-scratch
//     CsrBuilder rebuild) versus the reference model's CSR, then compact()
//     versus that snapshot — row_ptr and col_idx must be bit-identical
//     (the acceptance invariant: compaction == from-scratch rebuild);
//   * around each compaction checkpoint: the neighbor sampler is run before
//     and after compact() with the same seed — the logical graph did not
//     change, so the sampled batch (content hash) must not either, and
//     re-sampling must reproduce it exactly.
//
// Any divergence prints the seed and a one-command replay line.
//
//   ./build/bench/fuzz_workload --seeds=25        # CI smoke
//   ./build/bench/fuzz_workload --seeds=200 --start-seed=1000
//   ./build/bench/fuzz_workload --seed=42         # replay one seed
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <set>
#include <vector>

#include "common/cli.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "graph/generators.hpp"
#include "workload/dynamic_graph.hpp"
#include "workload/sampler.hpp"

namespace {

using namespace aurora;

/// Slow reference model: per-vertex sorted neighbor sets.
struct RefGraph {
  std::vector<std::set<VertexId>> adj;

  [[nodiscard]] bool add(VertexId u, VertexId v) {
    if (u == v) return false;
    return adj[u].insert(v).second;
  }
  [[nodiscard]] bool remove(VertexId u, VertexId v) {
    if (u == v) return false;
    return adj[u].erase(v) > 0;
  }
  [[nodiscard]] EdgeId edges() const {
    EdgeId m = 0;
    for (const auto& row : adj) m += row.size();
    return m;
  }
  [[nodiscard]] graph::CsrGraph to_csr() const {
    std::vector<EdgeId> row_ptr(adj.size() + 1, 0);
    std::vector<VertexId> col_idx;
    for (std::size_t v = 0; v < adj.size(); ++v) {
      col_idx.insert(col_idx.end(), adj[v].begin(), adj[v].end());
      row_ptr[v + 1] = col_idx.size();
    }
    return {std::move(row_ptr), std::move(col_idx)};
  }
};

bool same_csr(const graph::CsrGraph& a, const graph::CsrGraph& b,
              const char* what) {
  if (a.row_ptr() == b.row_ptr() && a.col_idx() == b.col_idx()) return true;
  std::printf("  %s: CSR mismatch (%u/%llu vs %u/%llu vertices/edges)\n",
              what, a.num_vertices(),
              static_cast<unsigned long long>(a.num_edges()), b.num_vertices(),
              static_cast<unsigned long long>(b.num_edges()));
  return false;
}

bool fuzz_one(std::uint64_t seed, bool verbose) {
  Rng rng(seed);

  // Random base graph: modest sizes keep a fuzz round fast while covering
  // degree skew, near-empty and dense-ish regimes.
  const VertexId n = 8 + static_cast<VertexId>(rng.next_below(120));
  const EdgeId base_edges = 1 + rng.next_below(4 * n);
  graph::CsrGraph base = graph::generate_erdos_renyi(n, base_edges, rng);

  // Random compaction policy; sometimes disabled so explicit compact() paths
  // and giant overlays both get exercised.
  workload::CompactionPolicy policy;
  policy.threshold_fraction = rng.next_bool(0.3) ? 0.0 : rng.next_double(0.05, 0.6);
  policy.min_overlay_edges = rng.next_below(64);
  workload::DynamicGraph dyn(base, policy);

  RefGraph ref;
  ref.adj.resize(n);
  for (VertexId v = 0; v < n; ++v) {
    for (const VertexId u : base.neighbors(v)) ref.adj[v].insert(u);
  }

  workload::SamplerParams sp;
  sp.fanouts = {1 + static_cast<std::uint32_t>(rng.next_below(8)),
                1 + static_cast<std::uint32_t>(rng.next_below(4))};
  sp.with_replacement = rng.next_bool(0.5);
  sp.seed = seed * 31 + 7;
  const workload::NeighborSampler sampler(sp);

  const auto sample_hash = [&](std::uint64_t salt) {
    std::vector<VertexId> seeds;
    const std::uint32_t k =
        1 + static_cast<std::uint32_t>(salt % 4);
    for (std::uint32_t i = 0; i < k; ++i) {
      seeds.push_back(static_cast<VertexId>((salt * 131 + i * 37) %
                                            dyn.num_vertices()));
    }
    return sampler.sample(dyn, seeds, salt).content_hash;
  };

  const std::uint64_t num_ops = 200 + rng.next_below(600);
  for (std::uint64_t op = 0; op < num_ops; ++op) {
    const VertexId cur_n = dyn.num_vertices();
    const double roll = rng.next_double();
    if (roll < 0.04) {
      const VertexId id = dyn.add_vertex();
      ref.adj.emplace_back();
      if (id + 1 != ref.adj.size()) {
        std::printf("  vertex id drift at op %llu\n",
                    static_cast<unsigned long long>(op));
        return false;
      }
    } else if (roll < 0.08) {
      const VertexId v = static_cast<VertexId>(rng.next_below(cur_n));
      std::vector<VertexId> nbrs;
      dyn.append_neighbors(v, nbrs);
      const EdgeId dropped = dyn.remove_vertex(v);
      EdgeId expect = 0;
      for (const VertexId u : nbrs) {
        expect += ref.remove(v, u);
        expect += ref.remove(u, v);
      }
      if (dropped != expect) {
        std::printf("  remove_vertex(%u) dropped %llu, reference %llu\n", v,
                    static_cast<unsigned long long>(dropped),
                    static_cast<unsigned long long>(expect));
        return false;
      }
    } else {
      const VertexId u = static_cast<VertexId>(rng.next_below(cur_n));
      const VertexId v = static_cast<VertexId>(rng.next_below(cur_n));
      // Bias toward inserts so the graph does not decay to empty; exercise
      // directed and undirected mutators alike.
      const bool insert = rng.next_bool(0.6);
      const bool undirected = rng.next_bool(0.5);
      bool got = false;
      bool expect = false;
      if (insert && undirected) {
        got = dyn.add_undirected_edge(u, v);
        const bool a = ref.add(u, v);
        const bool b = ref.add(v, u);
        expect = a || b;
      } else if (insert) {
        got = dyn.add_edge(u, v);
        expect = ref.add(u, v);
      } else if (undirected) {
        got = dyn.remove_undirected_edge(u, v);
        const bool a = ref.remove(u, v);
        const bool b = ref.remove(v, u);
        expect = a || b;
      } else {
        got = dyn.remove_edge(u, v);
        expect = ref.remove(u, v);
      }
      if (got != expect) {
        std::printf("  op %llu: mutator returned %d, reference %d\n",
                    static_cast<unsigned long long>(op), got, expect);
        return false;
      }
    }

    if (dyn.num_edges() != ref.edges()) {
      std::printf("  op %llu: edge count %llu, reference %llu\n",
                  static_cast<unsigned long long>(op),
                  static_cast<unsigned long long>(dyn.num_edges()),
                  static_cast<unsigned long long>(ref.edges()));
      return false;
    }
    {
      const VertexId u = static_cast<VertexId>(rng.next_below(dyn.num_vertices()));
      const VertexId v = static_cast<VertexId>(rng.next_below(dyn.num_vertices()));
      const bool expect = u != v && ref.adj[u].count(v) > 0;
      if (dyn.has_edge(u, v) != expect) {
        std::printf("  op %llu: has_edge(%u, %u) diverged\n",
                    static_cast<unsigned long long>(op), u, v);
        return false;
      }
    }

    // Checkpoint: full structural cross-check plus the compaction
    // bit-identity and sampler-stability invariants.
    if (rng.next_bool(0.03) || op + 1 == num_ops) {
      const graph::CsrGraph snap = dyn.snapshot();
      if (!same_csr(snap, ref.to_csr(), "snapshot vs reference")) return false;
      const std::uint64_t pre_hash =
          dyn.num_edges() > 0 ? sample_hash(op) : 0;
      dyn.compact();
      if (!same_csr(dyn.base(), snap, "compact vs snapshot")) return false;
      if (dyn.overlay_edges() != 0) {
        std::printf("  overlay not empty after compact\n");
        return false;
      }
      if (dyn.num_edges() > 0) {
        const std::uint64_t post_hash = sample_hash(op);
        if (pre_hash != post_hash) {
          std::printf("  sampler hash changed across compaction: %llx vs "
                      "%llx\n",
                      static_cast<unsigned long long>(pre_hash),
                      static_cast<unsigned long long>(post_hash));
          return false;
        }
        if (sample_hash(op) != post_hash) {
          std::printf("  sampler not deterministic on re-sample\n");
          return false;
        }
      }
      if (verbose) {
        std::printf("  op %llu: checkpoint ok (%u vertices, %llu edges)\n",
                    static_cast<unsigned long long>(op), dyn.num_vertices(),
                    static_cast<unsigned long long>(dyn.num_edges()));
      }
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv, {"seeds", "start-seed", "seed", "verbose"});
  const bool verbose = args.has("verbose") || args.has("seed");
  const std::uint64_t start =
      args.has("seed") ? args.get_uint("seed", 0) : args.get_uint("start-seed", 0);
  const std::uint64_t count = args.has("seed") ? 1 : args.get_uint("seeds", 25, 1);

  std::uint64_t failures = 0;
  for (std::uint64_t seed = start; seed < start + count; ++seed) {
    bool ok = false;
    try {
      ok = fuzz_one(seed, verbose);
    } catch (const std::exception& e) {
      std::printf("  exception: %s\n", e.what());
      ok = false;
    }
    if (!ok) {
      ++failures;
      std::printf("FUZZ FAILURE seed=%llu\n",
                  static_cast<unsigned long long>(seed));
      std::printf("replay: ./build/bench/fuzz_workload --seed=%llu\n",
                  static_cast<unsigned long long>(seed));
    }
  }
  if (failures == 0) {
    std::printf("fuzz_workload: %llu seed(s) ok\n",
                static_cast<unsigned long long>(count));
    return EXIT_SUCCESS;
  }
  std::printf("fuzz_workload: %llu/%llu seed(s) FAILED\n",
              static_cast<unsigned long long>(failures),
              static_cast<unsigned long long>(count));
  return EXIT_FAILURE;
}
