// Energy breakdown of Aurora's runs by component (the paper's Sec VI-E
// claim set: DRAM and on-chip communication dominate, reconfiguration is
// negligible). One row per dataset, shares of the total.
//
// Flags: --scale=<f>, --hidden=<d>, --seed=<s>.
#include <cstdio>

#include "bench_util.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"

int main(int argc, char** argv) {
  using namespace aurora;
  const auto options = bench::parse_figure_options(argc, argv);
  core::AuroraAccelerator accel(bench::figure_config(options));

  std::printf("Aurora energy breakdown by component (2-layer GCN)\n\n");
  AsciiTable table({"dataset", "total (mJ)", "DRAM", "SRAM", "compute",
                    "NoC", "leakage", "reconfig"});
  for (graph::DatasetId id : graph::kAllDatasets) {
    const double scale =
        options.scale > 0.0 ? options.scale : bench::default_scale(id);
    const graph::Dataset ds = graph::make_dataset(id, scale, options.seed);
    const auto m = accel.run(
        ds, core::GnnJob::two_layer(gnn::GnnModel::kGcn, ds.spec,
                                    options.hidden_dim));
    const auto& e = m.energy;
    auto share = [&](double pj) {
      return to_fixed(100.0 * pj / e.total_pj(), 1) + " %";
    };
    table.add_row({graph::dataset_name(id), to_fixed(e.total_mj(), 3),
                   share(e.dram_pj), share(e.sram_pj), share(e.compute_pj),
                   share(e.noc_pj), share(e.leakage_pj),
                   share(e.reconfig_pj)});
  }
  table.print();
  std::printf("\npaper reference: savings driven by reduced DRAM accesses "
              "and on-chip\ncommunication; reconfiguration < 3 %% "
              "(Sec VI-E).\n");
  return 0;
}
