// Open-loop serving sweep: goodput under SLO vs arrival rate, and (with
// --faults) availability vs chip MTBF.
//
// Default mode runs the serving engine at a geometric ladder of arrival
// rates around --rate and reports, per point, the shed rate and
// goodput-under-SLO plus exact p99 latency and queue-wait. The sweep makes
// the saturation story visible in one line of JSON: below capacity goodput
// tracks the offered rate, past capacity queue-wait blows up, the SLO cuts
// goodput and the admission cap starts shedding.
//
// --faults=<seed> switches to an availability sweep: a geometric ladder of
// chip MTBFs around --mtbf-us at the fixed --rate, with retry/backoff and
// proactive SLO shedding on. Per point it reports the failure/retry/
// failover/shed split — the knee where the fault rate overwhelms the retry
// budget is the story.
//
// Every point asserts the serving conservation invariants (exit code 1 on
// violation), so the bench doubles as a smoke check: admitted + shed ==
// generated, and admitted == completed + shed_expired + failed_permanently.
// Output is one machine-readable JSON line on stdout (check.sh saves it as
// BENCH_serving.json / BENCH_serving_faults.json) plus a human-readable
// table on stderr:
//   {"bench": "serving", "chips": ..., "slo_us": ..., "points": [...]}
//   {"bench": "serving_faults", "chips": ..., "points": [...]}
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "core/aurora.hpp"
#include "graph/generators.hpp"
#include "serving/serving_engine.hpp"

namespace {

using namespace aurora;

struct Point {
  double rate_rps = 0.0;
  double mtbf_us = 0.0;
  serving::ServingReport report;
};

/// Both serving conservation invariants; prints and fails the bench on
/// violation.
bool conserved(const serving::ServingReport& r, double x_value,
               const char* x_name) {
  const bool admission = r.admitted + r.shed == r.generated;
  const bool accounting =
      r.admitted == r.served.size() + r.shed_expired + r.failed_permanently;
  if (admission && accounting) return true;
  std::fprintf(stderr,
               "FAIL: serving accounting broken at %s=%.0f (generated %llu, "
               "admitted %llu, shed %llu, served %zu, shed_expired %llu, "
               "failed_permanently %llu)\n",
               x_name, x_value, static_cast<unsigned long long>(r.generated),
               static_cast<unsigned long long>(r.admitted),
               static_cast<unsigned long long>(r.shed), r.served.size(),
               static_cast<unsigned long long>(r.shed_expired),
               static_cast<unsigned long long>(r.failed_permanently));
  return false;
}

/// Deliver the bench's JSON line: to --out (printing the artifact path on
/// stdout so callers and logs know where it landed), or to stdout when no
/// path was given.
int emit_json(const std::string& json, const std::string& out_path) {
  if (out_path.empty()) {
    std::printf("%s\n", json.c_str());
    return EXIT_SUCCESS;
  }
  std::ofstream out(out_path);
  if (!out.is_open()) {
    std::fprintf(stderr, "FAIL: cannot write artifact: %s\n",
                 out_path.c_str());
    return EXIT_FAILURE;
  }
  out << json << '\n';
  if (!out) {
    std::fprintf(stderr, "FAIL: artifact write failed: %s\n",
                 out_path.c_str());
    return EXIT_FAILURE;
  }
  std::printf("wrote %s\n", out_path.c_str());
  return EXIT_SUCCESS;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv,
                     {"scale", "hidden", "requests", "rate", "slo-us",
                      "chips", "mode", "seed", "queue-depth", "max-batch",
                      "tenants", "faults", "mtbf-us", "mttr-us",
                      "max-retries", "out"});
  const double scale = args.get_double("scale", 0.02, 1e-6, 100.0);
  const std::uint32_t hidden = args.get_uint("hidden", 16, 1);
  const std::uint32_t chips = args.get_uint("chips", 1, 1);
  const std::string mode_arg = args.get_string("mode", "data");
  const double slo_us = args.get_double("slo-us", 800.0, 0.0, 1e9);
  const double base_rate = args.get_double("rate", 2000.0, 1e-3, 1e12);
  const bool faults_on = args.has("faults");

  const graph::Dataset ds =
      graph::make_dataset(graph::DatasetId::kPubmed, scale);
  const core::AuroraConfig config = core::AuroraConfig::bench();

  cluster::ClusterParams cluster_params;
  cluster_params.num_chips = chips;

  serving::ServingParams params;
  params.seed = args.get_uint("seed", 1);
  params.num_requests = args.get_uint("requests", 24, 1);
  params.queue_depth = args.get_uint("queue-depth", 16);
  params.max_batch = args.get_uint("max-batch", 4, 1);
  params.num_tenants = args.get_uint("tenants", 2, 1);
  params.slo_cycles = static_cast<Cycle>(slo_us * config.frequency_mhz);
  params.mode = mode_arg == "shard" ? cluster::DispatchMode::kShardParallel
                                    : cluster::DispatchMode::kDataParallel;

  const std::vector<serving::ModelMixEntry> mix = {
      {core::GnnJob::two_layer(gnn::GnnModel::kGcn, ds.spec, hidden), "gcn",
       2.0, 0},
      {core::GnnJob::two_layer(gnn::GnnModel::kAgnn, ds.spec, hidden),
       "agnn", 1.0, 0},
  };

  if (faults_on) {
    // Availability sweep: fixed rate, geometric MTBF ladder. Shorter MTBF
    // means more mid-flight failures; the retry path keeps completions up
    // until the fault rate overwhelms the backoff budget.
    params.arrival.rate_per_mcycle = base_rate / config.frequency_mhz;
    params.faults.seed = args.get_string("faults", "") == "true"
                             ? 1
                             : args.get_uint("faults", 1);
    const double base_mtbf_us = args.get_double("mtbf-us", 400.0, 0.1, 1e9);
    const double mttr_us = args.get_double("mttr-us", 60.0, 0.0, 1e9);
    params.max_retries = args.get_uint("max-retries", 3);
    params.proactive_shedding = true;
    const double expected_cycles = static_cast<double>(params.num_requests) /
                                   base_rate * config.frequency_mhz * 1e6;
    params.faults.horizon =
        static_cast<Cycle>(expected_cycles * 8.0) + 1000000;
    params.faults.chip_mttr = mttr_us * config.frequency_mhz;

    std::fprintf(stderr,
                 "serving fault sweep: %u chip(s), %s, %.0f req/s, MTTR "
                 "%.0f us, %llu requests per point\n",
                 chips, cluster::dispatch_mode_name(params.mode), base_rate,
                 mttr_us,
                 static_cast<unsigned long long>(params.num_requests));
    std::vector<Point> points;
    for (const double mult : {4.0, 2.0, 1.0, 0.5, 0.25}) {
      Point point;
      point.rate_rps = base_rate;
      point.mtbf_us = base_mtbf_us * mult;
      params.faults.chip_mtbf = point.mtbf_us * config.frequency_mhz;
      serving::ServingEngine engine(config, cluster_params, params);
      point.report = engine.run(ds, mix);
      const auto& r = point.report;
      if (!conserved(r, point.mtbf_us, "mtbf_us")) return EXIT_FAILURE;
      std::fprintf(stderr,
                   "  MTBF %8.0f us: completed %2zu/%llu, failed attempts "
                   "%2llu, retries %2llu, failed over %2llu, permanent "
                   "%2llu, shed expired %2llu\n",
                   point.mtbf_us, r.served.size(),
                   static_cast<unsigned long long>(r.admitted),
                   static_cast<unsigned long long>(r.failed_attempts),
                   static_cast<unsigned long long>(r.retries),
                   static_cast<unsigned long long>(r.failed_over),
                   static_cast<unsigned long long>(r.failed_permanently),
                   static_cast<unsigned long long>(r.shed_expired));
      points.push_back(std::move(point));
    }

    std::string json = "{\"bench\": \"serving_faults\", \"chips\": " +
                       std::to_string(chips) + ", \"mode\": \"" +
                       cluster::dispatch_mode_name(params.mode) +
                       "\", \"rate_rps\": " + std::to_string(base_rate) +
                       ", \"slo_us\": " + std::to_string(slo_us) +
                       ", \"points\": [";
    char buf[512];
    for (std::size_t i = 0; i < points.size(); ++i) {
      const auto& r = points[i].report;
      std::snprintf(
          buf, sizeof(buf),
          "{\"mtbf_us\": %.0f, \"admitted\": %llu, \"completed\": %zu, "
          "\"failed_attempts\": %llu, \"retries\": %llu, "
          "\"failed_over\": %llu, \"failed_permanently\": %llu, "
          "\"shed_expired\": %llu, \"goodput_rps\": %.1f}%s",
          points[i].mtbf_us, static_cast<unsigned long long>(r.admitted),
          r.served.size(),
          static_cast<unsigned long long>(r.failed_attempts),
          static_cast<unsigned long long>(r.retries),
          static_cast<unsigned long long>(r.failed_over),
          static_cast<unsigned long long>(r.failed_permanently),
          static_cast<unsigned long long>(r.shed_expired), r.goodput_rps(),
          i + 1 < points.size() ? ", " : "");
      json += buf;
    }
    json += "]}";
    return emit_json(json, args.get_string("out", ""));
  }

  std::fprintf(stderr,
               "serving sweep: %u chip(s), %s, SLO %.0f us, %llu requests "
               "per point\n",
               chips, cluster::dispatch_mode_name(params.mode), slo_us,
               static_cast<unsigned long long>(params.num_requests));
  std::vector<Point> points;
  for (const double mult : {0.25, 0.5, 1.0, 2.0, 4.0}) {
    const double rate_rps = base_rate * mult;
    params.arrival.rate_per_mcycle = rate_rps / config.frequency_mhz;
    serving::ServingEngine engine(config, cluster_params, params);
    Point point;
    point.rate_rps = rate_rps;
    point.report = engine.run(ds, mix);
    const auto& r = point.report;
    if (!conserved(r, rate_rps, "rate_rps")) return EXIT_FAILURE;
    std::fprintf(stderr,
                 "  %8.0f req/s: goodput %7.0f req/s, shed %4.1f%%, "
                 "p99 latency %8.1f us (wait %8.1f us)\n",
                 rate_rps, r.goodput_rps(), 100.0 * r.shed_rate(),
                 r.latency_percentile(0.99) / config.frequency_mhz,
                 r.queue_wait_percentile(0.99) / config.frequency_mhz);
    points.push_back(std::move(point));
  }

  std::string json = "{\"bench\": \"serving\", \"chips\": " +
                     std::to_string(chips) + ", \"mode\": \"" +
                     cluster::dispatch_mode_name(params.mode) +
                     "\", \"slo_us\": " + std::to_string(slo_us) +
                     ", \"points\": [";
  char buf[512];
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& r = points[i].report;
    std::snprintf(
        buf, sizeof(buf),
        "{\"rate_rps\": %.0f, \"generated\": %llu, \"shed\": %llu, "
        "\"shed_rate\": %.4f, \"goodput_rps\": %.1f, "
        "\"latency_p99_us\": %.2f, \"queue_wait_p99_us\": %.2f, "
        "\"batched_followers\": %llu}%s",
        points[i].rate_rps, static_cast<unsigned long long>(r.generated),
        static_cast<unsigned long long>(r.shed), r.shed_rate(),
        r.goodput_rps(),
        r.latency_percentile(0.99) / config.frequency_mhz,
        r.queue_wait_percentile(0.99) / config.frequency_mhz,
        static_cast<unsigned long long>(r.batched_followers),
        i + 1 < points.size() ? ", " : "");
    json += buf;
  }
  json += "]}";
  return emit_json(json, args.get_string("out", ""));
}
