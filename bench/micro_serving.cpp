// Open-loop serving sweep: goodput under SLO vs arrival rate.
//
// Runs the serving engine at a geometric ladder of arrival rates around
// --rate and reports, per point, the shed rate and goodput-under-SLO plus
// exact p99 latency and queue-wait. The sweep makes the saturation story
// visible in one line of JSON: below capacity goodput tracks the offered
// rate, past capacity queue-wait blows up, the SLO cuts goodput and the
// admission cap starts shedding.
//
// Every point asserts the serving invariant admitted + shed == generated
// (exit code 1 on violation), so the bench doubles as a smoke check.
// Output is one machine-readable JSON line on stdout (check.sh saves it as
// BENCH_serving.json) plus a human-readable table on stderr:
//   {"bench": "serving", "chips": ..., "slo_us": ..., "points": [...]}
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "core/aurora.hpp"
#include "graph/generators.hpp"
#include "serving/serving_engine.hpp"

namespace {

using namespace aurora;

struct Point {
  double rate_rps = 0.0;
  serving::ServingReport report;
};

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv,
                     {"scale", "hidden", "requests", "rate", "slo-us",
                      "chips", "mode", "seed", "queue-depth", "max-batch",
                      "tenants"});
  const double scale = args.get_double("scale", 0.02);
  const std::uint32_t hidden = args.get_uint("hidden", 16, 1);
  const std::uint32_t chips = args.get_uint("chips", 1, 1);
  const std::string mode_arg = args.get_string("mode", "data");
  const double slo_us = args.get_double("slo-us", 800.0);
  const double base_rate = args.get_double("rate", 2000.0);

  const graph::Dataset ds =
      graph::make_dataset(graph::DatasetId::kPubmed, scale);
  const core::AuroraConfig config = core::AuroraConfig::bench();

  cluster::ClusterParams cluster_params;
  cluster_params.num_chips = chips;

  serving::ServingParams params;
  params.seed = args.get_uint("seed", 1);
  params.num_requests = args.get_uint("requests", 24, 1);
  params.queue_depth = args.get_uint("queue-depth", 16);
  params.max_batch = args.get_uint("max-batch", 4, 1);
  params.num_tenants = args.get_uint("tenants", 2, 1);
  params.slo_cycles = static_cast<Cycle>(slo_us * config.frequency_mhz);
  params.mode = mode_arg == "shard" ? cluster::DispatchMode::kShardParallel
                                    : cluster::DispatchMode::kDataParallel;

  const std::vector<serving::ModelMixEntry> mix = {
      {core::GnnJob::two_layer(gnn::GnnModel::kGcn, ds.spec, hidden), "gcn",
       2.0, 0},
      {core::GnnJob::two_layer(gnn::GnnModel::kAgnn, ds.spec, hidden),
       "agnn", 1.0, 0},
  };

  std::fprintf(stderr,
               "serving sweep: %u chip(s), %s, SLO %.0f us, %llu requests "
               "per point\n",
               chips, cluster::dispatch_mode_name(params.mode), slo_us,
               static_cast<unsigned long long>(params.num_requests));
  std::vector<Point> points;
  for (const double mult : {0.25, 0.5, 1.0, 2.0, 4.0}) {
    const double rate_rps = base_rate * mult;
    params.arrival.rate_per_mcycle = rate_rps / config.frequency_mhz;
    serving::ServingEngine engine(config, cluster_params, params);
    Point point;
    point.rate_rps = rate_rps;
    point.report = engine.run(ds, mix);
    const auto& r = point.report;
    if (r.admitted + r.shed != r.generated ||
        r.served.size() != r.admitted) {
      std::fprintf(stderr,
                   "FAIL: shed accounting broken at %.0f req/s "
                   "(generated %llu, admitted %llu, shed %llu, served %zu)\n",
                   rate_rps, static_cast<unsigned long long>(r.generated),
                   static_cast<unsigned long long>(r.admitted),
                   static_cast<unsigned long long>(r.shed), r.served.size());
      return EXIT_FAILURE;
    }
    std::fprintf(stderr,
                 "  %8.0f req/s: goodput %7.0f req/s, shed %4.1f%%, "
                 "p99 latency %8.1f us (wait %8.1f us)\n",
                 rate_rps, r.goodput_rps(), 100.0 * r.shed_rate(),
                 r.latency_percentile(0.99) / config.frequency_mhz,
                 r.queue_wait_percentile(0.99) / config.frequency_mhz);
    points.push_back(std::move(point));
  }

  std::string json = "{\"bench\": \"serving\", \"chips\": " +
                     std::to_string(chips) + ", \"mode\": \"" +
                     cluster::dispatch_mode_name(params.mode) +
                     "\", \"slo_us\": " + std::to_string(slo_us) +
                     ", \"points\": [";
  char buf[512];
  for (std::size_t i = 0; i < points.size(); ++i) {
    const auto& r = points[i].report;
    std::snprintf(
        buf, sizeof(buf),
        "{\"rate_rps\": %.0f, \"generated\": %llu, \"shed\": %llu, "
        "\"shed_rate\": %.4f, \"goodput_rps\": %.1f, "
        "\"latency_p99_us\": %.2f, \"queue_wait_p99_us\": %.2f, "
        "\"batched_followers\": %llu}%s",
        points[i].rate_rps, static_cast<unsigned long long>(r.generated),
        static_cast<unsigned long long>(r.shed), r.shed_rate(),
        r.goodput_rps(),
        r.latency_percentile(0.99) / config.frequency_mhz,
        r.queue_wait_percentile(0.99) / config.frequency_mhz,
        static_cast<unsigned long long>(r.batched_followers),
        i + 1 < points.size() ? ", " : "");
    json += buf;
  }
  json += "]}";
  std::printf("%s\n", json.c_str());
  return EXIT_SUCCESS;
}
