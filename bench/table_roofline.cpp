// Roofline classification of the benchmark grid: arithmetic intensity,
// achieved throughput and the binding ceiling per dataset — showing where
// each workload sits on the chip's roofline and why the paper's gains come
// mostly from traffic reduction rather than raw FLOPs.
//
// Flags: --scale=<f>, --hidden=<d>, --seed=<s>.
#include <cstdio>

#include "bench_util.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "core/roofline.hpp"

int main(int argc, char** argv) {
  using namespace aurora;
  const auto options = bench::parse_figure_options(argc, argv);
  const core::AuroraConfig cfg = bench::figure_config(options);
  core::AuroraAccelerator accel(cfg);

  std::printf("Roofline classification — 2-layer GCN, %ux%u chip "
              "(peak %.0f ops/cycle, DRAM %.1f B/cycle)\n\n",
              cfg.array_dim, cfg.array_dim,
              static_cast<double>(cfg.num_pes()) * cfg.flops_per_pe,
              cfg.dram.peak_bytes_per_cycle());

  AsciiTable table({"dataset", "AI (ops/B)", "achieved ops/cyc", "roof",
                    "bound", "efficiency"});
  for (graph::DatasetId id : graph::kAllDatasets) {
    const double scale =
        options.scale > 0.0 ? options.scale : bench::default_scale(id);
    const graph::Dataset ds = graph::make_dataset(id, scale, options.seed);
    const auto m = accel.run(
        ds, core::GnnJob::two_layer(gnn::GnnModel::kGcn, ds.spec,
                                    options.hidden_dim));
    const auto r = core::analyze_roofline(m, cfg);
    table.add_row({graph::dataset_name(id),
                   to_fixed(r.arithmetic_intensity, 2),
                   to_fixed(r.achieved_ops_per_cycle, 1),
                   to_fixed(std::min(r.peak_ops_per_cycle,
                                     r.dram_ceiling_ops_per_cycle),
                            1),
                   core::bound_name(r.bound),
                   to_fixed(100.0 * r.efficiency, 1) + " %"});
  }
  table.print();
  std::printf(
      "\nGNN inference lives far left on the roofline (low arithmetic\n"
      "intensity): every win in Figs 7-10 is a traffic win, not a FLOP win.\n");
  return 0;
}
