// Micro-benchmarks of the reconfigurable PE datapath and the PolyBench
// kernels the paper uses as phase benchmarks (google-benchmark).
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "gnn/reference.hpp"
#include "pe/datapath.hpp"

namespace {

using namespace aurora;

void BM_PeMatVec(benchmark::State& state) {
  const auto len = static_cast<std::uint32_t>(state.range(0));
  Rng rng(1);
  gnn::Matrix w(16, len);
  w.randomize(rng);
  gnn::Vector x(len);
  for (double& v : x) v = rng.next_double(-1, 1);
  pe::PeDatapath dp{pe::PeParams{}};
  dp.configure(pe::PeConfigKind::kMatVec);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dp.run_mat_vec(w, x));
  }
  state.SetItemsProcessed(state.iterations() * 16 * len);
}
BENCHMARK(BM_PeMatVec)->Arg(64)->Arg(256)->Arg(1024);

void BM_PeDot(benchmark::State& state) {
  const auto len = static_cast<std::uint32_t>(state.range(0));
  Rng rng(2);
  gnn::Vector a(len), b(len);
  for (double& v : a) v = rng.next_double(-1, 1);
  for (double& v : b) v = rng.next_double(-1, 1);
  pe::PeDatapath dp{pe::PeParams{}};
  dp.configure(pe::PeConfigKind::kDotProduct);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dp.run_dot(a, b));
  }
  state.SetItemsProcessed(state.iterations() * len);
}
BENCHMARK(BM_PeDot)->Arg(64)->Arg(1024);

void BM_PeAccumulate(benchmark::State& state) {
  const auto len = static_cast<std::uint32_t>(state.range(0));
  Rng rng(3);
  gnn::Vector acc(len, 0.0), x(len);
  for (double& v : x) v = rng.next_double(-1, 1);
  pe::PeDatapath dp{pe::PeParams{}};
  dp.configure(pe::PeConfigKind::kAccumulate);
  for (auto _ : state) {
    dp.run_accumulate(acc, x);
    benchmark::DoNotOptimize(acc.data());
  }
  state.SetItemsProcessed(state.iterations() * len);
}
BENCHMARK(BM_PeAccumulate)->Arg(64)->Arg(1024);

void BM_KernelGramschmidt(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(4);
  gnn::Matrix a(n, 8);
  a.randomize(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gnn::kernel_gramschmidt(a));
  }
}
BENCHMARK(BM_KernelGramschmidt)->Arg(32)->Arg(128);

void BM_KernelGesummv(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(5);
  gnn::Matrix a(n, n), b(n, n);
  a.randomize(rng);
  b.randomize(rng);
  gnn::Vector x(n);
  for (double& v : x) v = rng.next_double(-1, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gnn::kernel_gesummv(1.5, 0.5, a, b, x));
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n);
}
BENCHMARK(BM_KernelGesummv)->Arg(64)->Arg(256);

void BM_KernelMvt(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(6);
  gnn::Matrix a(n, n);
  a.randomize(rng);
  gnn::Vector x1(n, 0.0), x2(n, 0.0), y1(n, 1.0), y2(n, 1.0);
  for (auto _ : state) {
    gnn::kernel_mvt(a, x1, x2, y1, y2);
    benchmark::DoNotOptimize(x1.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n);
}
BENCHMARK(BM_KernelMvt)->Arg(64)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
