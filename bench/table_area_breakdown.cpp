// Section VI-F: area breakdown at TSMC 40 nm for the paper configuration
// (32 x 32 PEs, 8 DP MACs + 100 KB buffer per PE).
//
// Paper reference values: MAC array 7.1 % of PE area, memory 82.9 %,
// control + reconfigurable switches 3.7 %; PE array 62.74 % of the chip,
// flexible interconnect 5.2 %, controller 0.9 %.
#include <cstdio>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "energy/area_model.hpp"

int main() {
  using namespace aurora;
  const energy::AreaReport report = energy::compute_area(energy::AreaParams{});

  std::printf("Area breakdown (TSMC 40 nm model, 32x32 PEs)\n\n");
  std::printf("Per-PE (total %.4f mm^2):\n", report.pe_total_mm2);
  AsciiTable pe({"component", "mm^2", "share"});
  for (const auto& c : report.pe_components) {
    pe.add_row({c.name, to_fixed(c.mm2, 4),
                to_fixed(100.0 * c.fraction_of_parent, 2) + " %"});
  }
  pe.print();

  std::printf("\nChip level (total %.1f mm^2):\n", report.chip_total_mm2);
  AsciiTable chip({"component", "mm^2", "share"});
  for (const auto& c : report.chip_components) {
    chip.add_row({c.name, to_fixed(c.mm2, 2),
                  to_fixed(100.0 * c.fraction_of_parent, 2) + " %"});
  }
  chip.print();

  std::printf(
      "\npaper reference: MAC 7.1 %%, memory 82.9 %%, PE control 3.7 %% of "
      "PE area;\n"
      "PE array 62.74 %%, flexible interconnect 5.2 %%, controller 0.9 %% "
      "of chip area.\n");
  return 0;
}
