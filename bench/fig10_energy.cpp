// Figure 10: normalized energy consumption of the baselines and Aurora.
//
// Paper reference values (average energy reduction per baseline):
//   HyGCN 89 %, AWB-GCN 77 %, GCNAX 42 %, ReGNN 69 %, FlowGNN 71 %;
//   reconfiguration energy < 3 % of Aurora's total.
//
// Flags: --scale=<f>, --paper-scale, --hidden=<d>, --seed=<s>.
#include <cstdio>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace aurora;
  const auto options = bench::parse_figure_options(argc, argv);
  const auto rows = bench::run_comparison(options);
  bench::print_normalized_figure(
      "Figure 10 — normalized energy consumption (2-layer GCN)", rows,
      [](const core::RunMetrics& m) { return m.energy.total_pj(); });

  std::printf("Aurora reconfiguration energy share per dataset:\n");
  for (const auto& row : rows) {
    const double share =
        row.aurora.energy.reconfig_pj / row.aurora.energy.total_pj();
    std::printf("  %-9s %.3f %%  (paper: < 3 %%)\n",
                graph::dataset_name(row.dataset), 100.0 * share);
  }
  return 0;
}
