// Figure 7: normalized DRAM accesses of the five baseline accelerators and
// Aurora, per dataset, normalized to Aurora.
//
// Paper reference values (average DRAM-access reduction per dataset):
//   Cora 86 %, Citeseer 60 %, Pubmed 15 %, Nell 57 %, Reddit 65 %.
//
// Flags: --scale=<f> (global dataset scale), --paper-scale (32x32 array),
//        --hidden=<d>, --seed=<s>.
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace aurora;
  const auto options = bench::parse_figure_options(argc, argv);
  const auto rows = bench::run_comparison(options);
  bench::print_normalized_figure(
      "Figure 7 — normalized DRAM access volume (2-layer GCN)", rows,
      [](const core::RunMetrics& m) { return static_cast<double>(m.dram_bytes); });
  return 0;
}
