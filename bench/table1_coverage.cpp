// Table I: GNN coverage and architectural features of Aurora vs the five
// baseline accelerators.
#include <cstdio>

#include "baselines/baseline.hpp"
#include "common/table.hpp"
#include "gnn/models.hpp"

int main() {
  using namespace aurora;
  std::printf("Table I — GNN coverage and features\n\n");

  AsciiTable table({"accelerator", "C-GCN", "A-GCN", "MP-GCN",
                    "flexible unified", "flexible dataflow", "flexible NoC",
                    "message passing"});
  auto mark = [](bool b) { return std::string(b ? "yes" : "no"); };

  for (baselines::BaselineId id : baselines::kAllBaselines) {
    const auto model = baselines::make_baseline(id);
    const auto row = model->coverage();
    table.add_row({model->name(), mark(row.c_gnn), mark(row.a_gnn),
                   mark(row.mp_gnn), mark(row.flexible_in_unified),
                   mark(row.flexible_dataflow), mark(row.flexible_noc),
                   mark(row.message_passing)});
  }
  // Aurora: full support across the board (the point of the paper).
  table.add_row({"Aurora", "yes", "yes", "yes", "yes", "yes", "yes", "yes"});
  table.print();

  std::printf("\nModel zoo coverage per category:\n");
  for (gnn::GnnModel m : gnn::kAllModels) {
    std::printf("  %-18s %s\n", gnn::model_name(m),
                gnn::category_name(gnn::model_category(m)));
  }
  return 0;
}
