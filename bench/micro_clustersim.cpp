// Wall-clock microbenchmark: serial vs parallel cluster simulation.
//
// One synthetic GCN inference is sharded over 1/2/4/8/16 chips and run
// through ClusterEngine twice per point — once on the single-threaded
// reference engine and once with params.parallel (per-chip engine runs fan
// out over worker threads; the cluster timeline executes one simulator
// partition per chip under the conservative ParallelSimulator). The
// benchmark asserts the two runs are bit-identical (diff_cluster_run_metrics
// empty — the parallel engine's contract) before reporting speed.
//
// Speedup is bounded by the host's core count: on a single-core container
// expect ~1.0x everywhere, so the JSON records hardware_concurrency next to
// the numbers. Output is one machine-readable JSON line (plus a
// human-readable table on stderr), same shape as micro_simspeed:
//   {"bench": "clustersim", "hardware_concurrency": ..., "points": [...]}
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster_engine.hpp"
#include "common/cli.hpp"
#include "common/rng.hpp"
#include "core/aurora.hpp"
#include "graph/degree.hpp"
#include "graph/generators.hpp"

namespace {

using namespace aurora;

struct Options {
  VertexId vertices = 1200;
  EdgeId edges = 6000;
  std::uint32_t feature_dim = 32;
  int reps = 3;
  bool fast_forward = true;
  unsigned jobs = 0;  // parallel worker threads (0 = hardware concurrency)
};

struct Timed {
  cluster::ClusterRunMetrics metrics;
  double secs = 0.0;
};

Timed best_of(const core::AuroraConfig& cfg, const cluster::ClusterParams& p,
              const graph::Dataset& ds, const core::GnnJob& job, int reps) {
  Timed best;
  for (int r = 0; r < reps; ++r) {
    cluster::ClusterEngine engine(cfg, p);
    const auto start = std::chrono::steady_clock::now();
    cluster::ClusterRunMetrics m = engine.run(ds, job);
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    if (r == 0 || elapsed.count() < best.secs) {
      best.metrics = std::move(m);
      best.secs = elapsed.count();
    }
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv,
                     {"vertices", "edges", "feature_dim", "reps",
                      "lockstep", "jobs"});
  Options opt;
  opt.vertices = static_cast<VertexId>(args.get_uint("vertices", 1200, 2));
  opt.edges = static_cast<EdgeId>(args.get_uint("edges", 6000, 1));
  opt.feature_dim =
      args.get_uint("feature_dim", 32, 1);
  opt.reps = static_cast<int>(args.get_uint("reps", 3, 1));
  opt.fast_forward = !args.has("lockstep");
  opt.jobs = args.get_uint("jobs", 0);

  Rng rng(7);
  graph::Dataset ds;
  ds.spec.name = "clustersim-bench";
  ds.spec.feature_dim = opt.feature_dim;
  ds.spec.feature_density = 1.0;
  ds.spec.num_classes = 8;
  ds.graph = graph::generate_erdos_renyi(opt.vertices, opt.edges, rng);
  ds.spec.num_vertices = ds.graph.num_vertices();
  ds.spec.num_directed_edges = ds.graph.num_edges();
  ds.degree_stats = graph::compute_degree_stats(ds.graph);

  core::AuroraConfig cfg = core::AuroraConfig::bench();
  cfg.fast_forward = opt.fast_forward;
  const core::GnnJob job =
      core::GnnJob::two_layer(gnn::GnnModel::kGcn, ds.spec, opt.feature_dim);

  const unsigned hw = std::thread::hardware_concurrency();
  std::string points;
  std::fprintf(stderr, "clustersim: %u hardware threads, %s scheduler\n", hw,
               opt.fast_forward ? "fast-forward" : "lockstep");
  for (std::uint32_t chips : {1u, 2u, 4u, 8u, 16u}) {
    cluster::ClusterParams p;
    p.num_chips = chips;
    p.strategy = cluster::ShardStrategy::kRange;

    const Timed serial = best_of(cfg, p, ds, job, opt.reps);
    p.parallel = true;
    p.parallel_jobs = opt.jobs;
    const Timed parallel = best_of(cfg, p, ds, job, opt.reps);

    const std::vector<std::string> diffs =
        cluster::diff_cluster_run_metrics(serial.metrics, parallel.metrics);
    if (!diffs.empty()) {
      std::fprintf(stderr,
                   "FAIL: parallel diverged from serial at %u chips "
                   "(%zu mismatched fields), first: %s\n",
                   chips, diffs.size(), diffs.front().c_str());
      return EXIT_FAILURE;
    }

    const double speedup =
        parallel.secs > 0 ? serial.secs / parallel.secs : 1.0;
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "%s{\"chips\": %u, \"sim_cycles\": %llu, "
                  "\"serial_secs\": %.6f, \"parallel_secs\": %.6f, "
                  "\"speedup\": %.2f}",
                  points.empty() ? "" : ", ", chips,
                  static_cast<unsigned long long>(serial.metrics.total_cycles),
                  serial.secs, parallel.secs, speedup);
    points += buf;
    std::fprintf(stderr,
                 "  %2u chips: %llu cycles; serial %.3fs, parallel %.3fs "
                 "-> %.2fx\n",
                 chips,
                 static_cast<unsigned long long>(serial.metrics.total_cycles),
                 serial.secs, parallel.secs, speedup);
  }

  std::printf(
      "{\"bench\": \"clustersim\", \"hardware_concurrency\": %u, "
      "\"vertices\": %llu, \"edges\": %llu, \"fast_forward\": %s, "
      "\"points\": [%s]}\n",
      hw, static_cast<unsigned long long>(ds.spec.num_vertices),
      static_cast<unsigned long long>(ds.spec.num_directed_edges),
      opt.fast_forward ? "true" : "false", points.c_str());
  return EXIT_SUCCESS;
}
