// The paper's benchmark methodology (Sec VI-A "Benchmark"): PolyBench
// kernels stand in for the computations of each GNN execution phase. This
// table runs each kernel through its phase's PE datapath configuration and
// reports functional agreement with the dense reference plus the modeled
// cycle cost on one PE.
//
//   Edge update:  gramschmidt, mvt, gemver, gesummv, ReLU
//   Aggregation:  gemver (vector addition)
//   Vertex update: mvt, ReLU
#include <cstdio>

#include "common/rng.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "gnn/reference.hpp"
#include "pe/datapath.hpp"
#include "pe/ppu.hpp"

int main() {
  using namespace aurora;
  Rng rng(77);
  constexpr std::size_t kN = 32;

  std::printf("Phase benchmark kernels (PolyBench, paper Sec VI-A)\n\n");
  AsciiTable table({"phase", "kernel", "datapath config", "PE cycles",
                    "max |err| vs reference"});

  pe::PeDatapath dp{pe::PeParams{}};
  const pe::Ppu ppu{pe::PpuParams{}};

  // --- mvt (matrix-vector product): edge + vertex update ------------------
  {
    gnn::Matrix a(kN, kN);
    a.randomize(rng);
    gnn::Vector y1(kN), x_ref(kN, 0.0);
    for (double& v : y1) v = rng.next_double(-1, 1);
    gnn::Vector x2(kN, 0.0), y2(kN, 0.0);
    gnn::Vector x1 = x_ref;
    gnn::kernel_mvt(a, x1, x2, y1, y2);

    dp.configure(pe::PeConfigKind::kMatVec);
    const gnn::Vector got = dp.run_mat_vec(a, y1);
    double err = 0.0;
    for (std::size_t i = 0; i < kN; ++i) {
      err = std::max(err, std::abs(got[i] - x1[i]));
    }
    const Cycle cycles = pe::micro_op_cycles(
        {pe::PeConfigKind::kMatVec, kN, kN}, pe::PeParams{});
    table.add_row({"edge/vertex update", "mvt", "MxV",
                   std::to_string(cycles), to_fixed(err, 15)});
  }

  // --- gesummv (y = aAx + bBx): edge update -------------------------------
  {
    gnn::Matrix a(kN, kN), b(kN, kN);
    a.randomize(rng);
    b.randomize(rng);
    gnn::Vector x(kN);
    for (double& v : x) v = rng.next_double(-1, 1);
    const gnn::Vector want = gnn::kernel_gesummv(1.5, 0.5, a, b, x);

    dp.configure(pe::PeConfigKind::kMatVec);
    const gnn::Vector ax = dp.run_mat_vec(a, x);
    const gnn::Vector bx = dp.run_mat_vec(b, x);
    dp.configure(pe::PeConfigKind::kScalarVec);
    gnn::Vector acc = dp.run_scalar_vec(1.5, ax);
    const gnn::Vector sbx = dp.run_scalar_vec(0.5, bx);
    dp.configure(pe::PeConfigKind::kAccumulate);
    dp.run_accumulate(acc, sbx);
    double err = 0.0;
    for (std::size_t i = 0; i < kN; ++i) {
      err = std::max(err, std::abs(acc[i] - want[i]));
    }
    const Cycle cycles =
        2 * pe::micro_op_cycles({pe::PeConfigKind::kMatVec, kN, kN},
                                pe::PeParams{}) +
        2 * pe::micro_op_cycles({pe::PeConfigKind::kScalarVec, kN, 1},
                                pe::PeParams{}) +
        pe::micro_op_cycles({pe::PeConfigKind::kAccumulate, kN, 1},
                            pe::PeParams{});
    table.add_row({"edge update", "gesummv", "MxV + ScalarxV + SumV",
                   std::to_string(cycles), to_fixed(err, 15)});
  }

  // --- gemver's vector-addition core: aggregation -------------------------
  {
    gnn::Vector acc(kN, 0.0), u(kN), v(kN);
    for (double& e : u) e = rng.next_double(-1, 1);
    for (double& e : v) e = rng.next_double(-1, 1);
    dp.configure(pe::PeConfigKind::kAccumulate);
    dp.run_accumulate(acc, u);
    dp.run_accumulate(acc, v);
    double err = 0.0;
    for (std::size_t i = 0; i < kN; ++i) {
      err = std::max(err, std::abs(acc[i] - (u[i] + v[i])));
    }
    const Cycle cycles = 2 * pe::micro_op_cycles(
                                 {pe::PeConfigKind::kAccumulate, kN, 1},
                                 pe::PeParams{});
    table.add_row({"aggregation", "gemver (vector add)", "SumV",
                   std::to_string(cycles), to_fixed(err, 15)});
  }

  // --- gramschmidt: edge update (orthogonalisation) ------------------------
  {
    gnn::Matrix a(kN, 6);
    a.randomize(rng);
    const gnn::Matrix q = gnn::kernel_gramschmidt(a);
    // Orthonormality check as the "error": max |q_i . q_j - delta_ij|.
    double err = 0.0;
    dp.configure(pe::PeConfigKind::kDotProduct);
    for (std::size_t i = 0; i < q.cols(); ++i) {
      for (std::size_t j = 0; j < q.cols(); ++j) {
        gnn::Vector qi(q.rows()), qj(q.rows());
        for (std::size_t r = 0; r < q.rows(); ++r) {
          qi[r] = q.at(r, i);
          qj[r] = q.at(r, j);
        }
        const double d = dp.run_dot(qi, qj);
        err = std::max(err, std::abs(d - (i == j ? 1.0 : 0.0)));
      }
    }
    table.add_row({"edge update", "gramschmidt", "V.V (check)", "-",
                   to_fixed(err, 15)});
  }

  // --- ReLU in the PPU ------------------------------------------------------
  {
    gnn::Vector x(kN);
    for (double& v : x) v = rng.next_double(-2, 2);
    const gnn::Vector y = ppu.apply(pe::Activation::kRelu, x);
    double err = 0.0;
    for (std::size_t i = 0; i < kN; ++i) {
      err = std::max(err, std::abs(y[i] - std::max(0.0, x[i])));
    }
    table.add_row({"edge/vertex update", "ReLU", "PPU",
                   std::to_string(ppu.activation_cycles(
                       pe::Activation::kRelu, kN)),
                   to_fixed(err, 15)});
  }

  table.print();
  return 0;
}
