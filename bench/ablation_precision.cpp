// Precision ablation: the paper evaluates everything in double precision
// "to provide a fair comparison"; this sweep shows what single precision
// buys on the same workloads (traffic, time and energy all scale with the
// element width).
//
// Flags: --scale=<f>, --hidden=<d>, --seed=<s>.
#include <cstdio>

#include "bench_util.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"

int main(int argc, char** argv) {
  using namespace aurora;
  const auto options = bench::parse_figure_options(argc, argv);

  std::printf("Precision ablation — fp64 (paper setting) vs fp32 (2-layer GCN)\n\n");
  AsciiTable table({"dataset", "fp64 cycles", "fp32 cycles", "speedup",
                    "fp64 DRAM", "fp32 DRAM", "energy ratio"});
  for (graph::DatasetId id : graph::kAllDatasets) {
    const double scale =
        options.scale > 0.0 ? options.scale : bench::default_scale(id);
    const graph::Dataset ds = graph::make_dataset(id, scale, options.seed);
    const auto job = core::GnnJob::two_layer(gnn::GnnModel::kGcn, ds.spec,
                                             options.hidden_dim);

    core::AuroraConfig cfg = bench::figure_config(options);
    core::AuroraAccelerator fp64(cfg);
    cfg.element_bytes = 4;
    core::AuroraAccelerator fp32(cfg);

    const auto m64 = fp64.run(ds, job);
    const auto m32 = fp32.run(ds, job);
    table.add_row(
        {graph::dataset_name(id), std::to_string(m64.total_cycles),
         std::to_string(m32.total_cycles),
         to_fixed(static_cast<double>(m64.total_cycles) /
                      static_cast<double>(m32.total_cycles),
                  2) + "x",
         human_bytes(m64.dram_bytes), human_bytes(m32.dram_bytes),
         to_fixed(m64.energy.total_pj() / m32.energy.total_pj(), 2) + "x"});
  }
  table.print();
  std::printf(
      "\nHalving the element width roughly halves feature traffic; time\n"
      "follows wherever the run is DRAM- or NoC-bound.\n");
  return 0;
}
