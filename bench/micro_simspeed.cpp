// Wall-clock microbenchmark: lockstep vs event-driven fast-forward in the
// simulation scheduler, on the real component models (NoC + DRAM + PEs).
//
// The workload is a sparse dependency chain — each transaction is a DRAM
// read whose completion sends a NoC message whose delivery submits a PE task
// whose completion issues the next read. Mostly one component is active at a
// time and every hop leaves a provably-dead latency gap (CAS/ACT timing,
// router pipeline), which is exactly the regime the event-driven
// fast-forward path targets. A --chains knob interleaves several such
// chains for a slightly denser event mix.
//
// Both modes run the identical workload; the benchmark asserts the reported
// cycle counts and component stats match (the fast-forward contract) before
// reporting speed.
//
// Output is one machine-readable JSON line (plus a human-readable summary
// on stderr) so scripts can parse results:
//   {"bench": "simspeed", ..., "cycles_per_sec": ..., "speedup": ...}
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <functional>

#include "common/cli.hpp"
#include "dram/dram.hpp"
#include "noc/network.hpp"
#include "pe/pe.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace aurora;

struct Options {
  std::uint32_t k = 8;           // mesh dimension (k*k PEs)
  int iters = 2000;              // transactions per chain
  int chains = 1;                // independent chains in flight
  std::uint32_t task_len = 512;  // PE micro-op length per transaction
  Cycle dram_stretch = 8;        // timing multiplier (1 = DDR3-like defaults)
  Cycle router_delay = 2;
};

struct RunResult {
  Cycle end_cycle = 0;
  Cycle cycles_skipped = 0;
  std::uint64_t packets = 0;
  std::uint64_t dram_requests = 0;
  std::uint64_t dram_row_hits = 0;
  std::uint64_t pe_tasks = 0;
  Cycle noc_busy_cycles = 0;
  double secs = 0.0;
};

RunResult run_chain(const Options& opt, bool fast_forward) {
  noc::NocParams noc_params;
  noc_params.k = opt.k;
  noc_params.router_delay = opt.router_delay;
  noc::Network net(noc_params);

  dram::DramConfig dram_cfg;
  dram_cfg.timing.t_rcd *= opt.dram_stretch;
  dram_cfg.timing.t_rp *= opt.dram_stretch;
  dram_cfg.timing.t_cl *= opt.dram_stretch;
  dram_cfg.timing.t_burst *= opt.dram_stretch;
  dram_cfg.timing.t_rfc *= opt.dram_stretch;
  dram_cfg.timing.t_refi *= opt.dram_stretch;  // keep refresh duty fixed
  dram::DramModel dram(dram_cfg);

  const std::uint32_t num_pes = opt.k * opt.k;
  std::deque<pe::PeModel> pes;
  for (std::uint32_t i = 0; i < num_pes; ++i) pes.emplace_back("", pe::PeModelParams{});

  sim::Simulator sim;
  sim.set_fast_forward(fast_forward);
  sim.add(&net);
  sim.add(&dram);
  for (auto& p : pes) sim.add(&p);

  std::uint64_t pe_tasks = 0;
  // One transaction: DRAM read -> NoC message -> PE task -> next read.
  // Tags carry (chain, step); addresses stride so chains hit distinct banks.
  std::function<void(int chain, int step, Cycle at)> kick =
      [&](int chain, int step, Cycle at) {
        if (step >= opt.iters) return;
        dram::DramRequest r;
        r.addr = (static_cast<Bytes>(chain) * opt.iters + step) * 4096;
        r.bytes = 256;
        r.on_complete = [&, chain, step](Cycle done) {
          const auto src = static_cast<noc::NodeId>(
              (chain * 17 + step * 7) % num_pes);
          const auto dst = static_cast<noc::NodeId>(
              (chain * 29 + step * 13) % num_pes);
          net.send(src, dst == src ? (dst + 1) % num_pes : dst, 256,
                   static_cast<std::uint64_t>(chain) * opt.iters + step, done);
        };
        dram.enqueue(std::move(r), at);
      };
  net.set_delivery_callback([&](const noc::Packet& p, Cycle arrival) {
    pe::PeTask task;
    task.op.kind = pe::PeConfigKind::kAccumulate;
    task.op.length = opt.task_len;
    task.buffer_read_bytes = 256;
    task.buffer_write_bytes = 256;
    task.tag = p.tag;
    pes[p.dst].submit(std::move(task));
    (void)arrival;
  });
  for (auto& p : pes) {
    p.set_completion_callback([&](std::uint64_t tag, Cycle now) {
      ++pe_tasks;
      const int chain = static_cast<int>(tag / opt.iters);
      const int step = static_cast<int>(tag % opt.iters);
      kick(chain, step + 1, now);
    });
  }

  const auto start = std::chrono::steady_clock::now();
  for (int c = 0; c < opt.chains; ++c) kick(c, 0, 0);
  const Cycle end = sim.run_until_idle(1'000'000'000);
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;

  RunResult res;
  res.end_cycle = end;
  res.cycles_skipped = sim.cycles_skipped();
  res.packets = net.stats().packets_delivered;
  res.dram_requests = dram.stats().requests;
  res.dram_row_hits = dram.stats().row_hits;
  res.pe_tasks = pe_tasks;
  res.noc_busy_cycles = net.stats().busy_cycles;
  res.secs = elapsed.count();
  return res;
}

RunResult best_of(const Options& opt, bool fast_forward, int reps) {
  RunResult best;
  for (int r = 0; r < reps; ++r) {
    RunResult res = run_chain(opt, fast_forward);
    if (r == 0 || res.secs < best.secs) best = res;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv,
                     {"k", "iters", "chains", "task_len", "dram_stretch",
                      "router_delay", "reps"});
  Options opt;
  opt.k = args.get_uint("k", 8, 2, 64);
  opt.iters = static_cast<int>(args.get_uint("iters", 2000, 1));
  opt.chains = static_cast<int>(args.get_uint("chains", 1, 1));
  opt.task_len = args.get_uint("task_len", 512, 1);
  opt.dram_stretch = static_cast<Cycle>(args.get_uint("dram_stretch", 8));
  opt.router_delay = static_cast<Cycle>(args.get_uint("router_delay", 2));
  const int reps = static_cast<int>(args.get_uint("reps", 3, 1));

  const RunResult lockstep = best_of(opt, /*fast_forward=*/false, reps);
  const RunResult ff = best_of(opt, /*fast_forward=*/true, reps);

  if (lockstep.end_cycle != ff.end_cycle ||
      lockstep.packets != ff.packets ||
      lockstep.dram_requests != ff.dram_requests ||
      lockstep.dram_row_hits != ff.dram_row_hits ||
      lockstep.pe_tasks != ff.pe_tasks ||
      lockstep.noc_busy_cycles != ff.noc_busy_cycles ||
      lockstep.cycles_skipped != 0) {
    std::fprintf(stderr,
                 "FAIL: fast-forward diverged from lockstep "
                 "(end %llu vs %llu, busy %llu vs %llu)\n",
                 static_cast<unsigned long long>(ff.end_cycle),
                 static_cast<unsigned long long>(lockstep.end_cycle),
                 static_cast<unsigned long long>(ff.noc_busy_cycles),
                 static_cast<unsigned long long>(lockstep.noc_busy_cycles));
    return EXIT_FAILURE;
  }

  const auto cycles = static_cast<double>(lockstep.end_cycle);
  // Degenerate runs (0 chains/iters) finish in ~0 cycles and seconds; pin
  // the ratios so the JSON stays finite and parseable.
  const double skipped_frac =
      cycles > 0 ? static_cast<double>(ff.cycles_skipped) / cycles : 0.0;
  const double speedup = ff.secs > 0 ? lockstep.secs / ff.secs : 1.0;
  std::printf(
      "{\"bench\": \"simspeed\", \"k\": %u, \"chains\": %d, \"iters\": %d, "
      "\"sim_cycles\": %llu, \"skipped_fraction\": %.3f, "
      "\"lockstep_secs\": %.6f, \"fastforward_secs\": %.6f, "
      "\"lockstep_cycles_per_sec\": %.0f, \"cycles_per_sec\": %.0f, "
      "\"speedup\": %.2f}\n",
      opt.k, opt.chains, opt.iters,
      static_cast<unsigned long long>(lockstep.end_cycle), skipped_frac,
      lockstep.secs, ff.secs,
      lockstep.secs > 0 ? cycles / lockstep.secs : 0.0,
      ff.secs > 0 ? cycles / ff.secs : 0.0, speedup);
  std::fprintf(stderr,
               "simspeed: %llu simulated cycles; lockstep %.3fs, "
               "fast-forward %.3fs -> %.2fx\n",
               static_cast<unsigned long long>(lockstep.end_cycle),
               lockstep.secs, ff.secs, speedup);
  return EXIT_SUCCESS;
}
