// NoC saturation study: accepted throughput and latency of the flit-level
// mesh under the classic traffic patterns, with and without the bypass
// wires — the raw interconnect capability underneath the Fig 8 results.
//
// Flags: --k=<dim>, --cycles=<n>, --seed=<s>.
#include <cstdio>

#include "common/cli.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "noc/traffic.hpp"

int main(int argc, char** argv) {
  using namespace aurora;
  const CliArgs args(argc, argv, {"k", "cycles", "seed"});
  noc::NocParams params;
  params.k = args.get_uint("k", 8, 2, 64);
  const auto cycles = static_cast<Cycle>(args.get_uint("cycles", 1500, 1));
  const auto seed = std::uint64_t{args.get_uint("seed", 1)};

  std::printf("NoC saturation — %ux%u mesh, %u VCs, 64 B packets\n\n",
              params.k, params.k, params.num_vcs);

  AsciiTable table({"pattern", "offered", "accepted", "avg latency",
                    "saturated"});
  const std::array<noc::TrafficPattern, 5> kPatterns = {
      noc::TrafficPattern::kUniformRandom, noc::TrafficPattern::kTranspose,
      noc::TrafficPattern::kBitComplement, noc::TrafficPattern::kHotspot,
      noc::TrafficPattern::kNeighbor};
  for (const auto pattern : kPatterns) {
    for (const double rate : {0.02, 0.08, 0.2}) {
      const auto r = noc::measure_throughput(params, pattern, rate, cycles,
                                             seed);
      table.add_row({noc::traffic_pattern_name(pattern),
                     to_fixed(r.offered_rate, 3),
                     to_fixed(r.accepted_rate, 3),
                     to_fixed(r.avg_latency, 1),
                     r.saturated ? "yes" : "no"});
    }
  }
  table.print();
  std::printf(
      "\nNeighbor traffic (ring-like, what the weight-stationary dataflow\n"
      "generates) sustains the highest rates; hotspot saturates first —\n"
      "exactly the pressure the degree-aware mapping relieves.\n");
  return 0;
}
