// Mapping ablation (paper Sec IV / VI-C): degree-aware mapping + bypass
// links vs the CGRA-ME-style hashing mapping on a plain mesh.
//
// Runs the cycle-accurate engine at bench scale (exact flit-level
// contention), then the analytic model at paper scale across all datasets.
//
// Flags: --scale=<f> (cycle-run dataset scale, default per dataset),
//        --hidden=<d>, --seed=<s>.
#include <cstdio>

#include "bench_util.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"

namespace {

double cycle_scale(aurora::graph::DatasetId id) {
  using aurora::graph::DatasetId;
  switch (id) {
    case DatasetId::kCora:
    case DatasetId::kCiteseer:
      return 0.2;
    case DatasetId::kPubmed:
      return 0.05;
    case DatasetId::kNell:
      return 0.01;
    case DatasetId::kReddit:
      return 0.002;
  }
  return 0.05;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace aurora;
  const auto options = bench::parse_figure_options(argc, argv);

  std::printf(
      "Mapping ablation — degree-aware (Algorithm 1) + bypass NoC vs "
      "hashing (CGRA-ME) on plain mesh\n\n");

  // ---- cycle-accurate comparison at bench scale --------------------------
  std::printf("cycle-accurate engine (16x16 array, GCN hidden layer):\n");
  AsciiTable cyc({"dataset", "aware cycles", "hash cycles", "speedup",
                  "aware hops", "hash hops", "aware comm", "hash comm"});
  for (graph::DatasetId id : graph::kAllDatasets) {
    const double scale =
        options.scale > 0.0 ? options.scale : cycle_scale(id);
    const graph::Dataset ds = graph::make_dataset(id, scale, options.seed);
    const gnn::LayerConfig layer{64, options.hidden_dim};

    core::AuroraConfig cfg = core::AuroraConfig::bench();
    core::AuroraAccelerator aware(cfg);
    cfg.mapping_policy = core::MappingPolicy::kHashing;
    core::AuroraAccelerator hashed(cfg);

    const auto ma = aware.run_layer(ds, gnn::GnnModel::kGcn, layer, 1);
    const auto mh = hashed.run_layer(ds, gnn::GnnModel::kGcn, layer, 1);
    cyc.add_row({graph::dataset_name(id), std::to_string(ma.total_cycles),
                 std::to_string(mh.total_cycles),
                 to_fixed(static_cast<double>(mh.total_cycles) /
                              static_cast<double>(ma.total_cycles),
                          2) + "x",
                 to_fixed(ma.avg_hops, 2), to_fixed(mh.avg_hops, 2),
                 std::to_string(ma.onchip_comm_cycles),
                 std::to_string(mh.onchip_comm_cycles)});
  }
  cyc.print();

  // ---- router-load heatmaps (Fig 2's congestion story, measured) ----------
  {
    const graph::Dataset ds =
        graph::make_dataset(graph::DatasetId::kCora,
                            options.scale > 0.0 ? options.scale : 0.2,
                            options.seed);
    const gnn::LayerConfig layer{64, options.hidden_dim};
    auto heatmap_of = [&](core::MappingPolicy policy) {
      core::AuroraConfig cfg = core::AuroraConfig::bench();
      cfg.mapping_policy = policy;
      core::AuroraAccelerator accel(cfg);
      return accel.run_layer(ds, gnn::GnnModel::kGcn, layer, 1).noc_heatmap;
    };
    std::printf("\nrouter-load heatmaps (Cora, 16x16; darker = more flits):\n");
    std::printf("degree-aware + bypass:\n%s",
                heatmap_of(core::MappingPolicy::kDegreeAware).c_str());
    std::printf("hashing on plain mesh:\n%s",
                heatmap_of(core::MappingPolicy::kHashing).c_str());
  }

  // ---- analytic comparison at paper scale ---------------------------------
  std::printf("\nanalytic model (32x32 array, paper-scale datasets):\n");
  AsciiTable ana({"dataset", "aware comm", "hash comm", "comm ratio",
                  "aware hops", "hash hops", "bypass msgs"});
  core::AuroraConfig cfg = bench::figure_config(options);
  core::AuroraAccelerator aware(cfg);
  cfg.mapping_policy = core::MappingPolicy::kHashing;
  core::AuroraAccelerator hashed(cfg);
  for (graph::DatasetId id : graph::kAllDatasets) {
    const double scale =
        options.scale > 0.0 ? options.scale : bench::default_scale(id);
    const graph::Dataset ds = graph::make_dataset(id, scale, options.seed);
    const gnn::LayerConfig layer{ds.spec.feature_dim, options.hidden_dim};
    const auto ma = aware.run_layer(ds, gnn::GnnModel::kGcn, layer, 0);
    const auto mh = hashed.run_layer(ds, gnn::GnnModel::kGcn, layer, 0);
    ana.add_row({graph::dataset_name(id),
                 std::to_string(ma.onchip_comm_cycles),
                 std::to_string(mh.onchip_comm_cycles),
                 to_fixed(static_cast<double>(mh.onchip_comm_cycles) /
                              static_cast<double>(
                                  std::max<Cycle>(1, ma.onchip_comm_cycles)),
                          2) + "x",
                 to_fixed(ma.avg_hops, 2), to_fixed(mh.avg_hops, 2),
                 std::to_string(ma.bypass_messages)});
  }
  ana.print();
  return 0;
}
