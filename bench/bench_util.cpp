#include "bench_util.hpp"

#include <algorithm>
#include <cstdio>

#include "common/parallel.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "core/report.hpp"

namespace aurora::bench {

FigureOptions parse_figure_options(int argc, const char* const* argv) {
  const CliArgs args(argc, argv,
                     {"scale", "small", "hidden", "seed", "jobs",
                      "metrics-out"});
  FigureOptions opt;
  opt.scale = args.get_double("scale", 0.0, 0.0, 100.0);
  opt.paper_scale = !args.get_bool("small", false);
  opt.hidden_dim =
      args.get_uint("hidden", 16, 1);
  opt.seed = args.get_uint("seed", 7);
  opt.jobs = args.get_uint("jobs", 0);
  opt.metrics_out = args.get_string("metrics-out", "");
  return opt;
}

double default_scale(graph::DatasetId id) {
  switch (id) {
    case graph::DatasetId::kCora:
    case graph::DatasetId::kCiteseer:
      return 1.0;
    case graph::DatasetId::kPubmed:
      return 1.0;
    case graph::DatasetId::kNell:
      return 0.5;    // 33 k vertices — keeps generation under a second
    case graph::DatasetId::kReddit:
      return 0.008;  // mean degree preserved; 57 M edges is generator-bound
  }
  return 1.0;
}

core::AuroraConfig figure_config(const FigureOptions& options) {
  core::AuroraConfig cfg =
      options.paper_scale ? core::AuroraConfig::paper()
                          : core::AuroraConfig::bench();
  cfg.mode = core::SimMode::kAnalytic;
  return cfg;
}

baselines::ChipParams figure_chip(const FigureOptions& options) {
  const core::AuroraConfig cfg = figure_config(options);
  return baselines::chip_params_matching(cfg.array_dim,
                                         cfg.pe.datapath.num_multipliers,
                                         cfg.pe.bank_buffer_bytes);
}

std::vector<ComparisonRow> run_comparison(const FigureOptions& options) {
  const core::AuroraConfig cfg = figure_config(options);
  const baselines::ChipParams chip = figure_chip(options);
  constexpr std::size_t kNumBaselines = baselines::kAllBaselines.size();
  constexpr std::size_t kAccels = kNumBaselines + 1;  // column 0 = Aurora
  const std::size_t num_datasets = graph::kAllDatasets.size();

  // Generate datasets up front (each is independent too) so every grid cell
  // only reads shared state.
  std::vector<graph::Dataset> datasets(num_datasets);
  parallel_for(num_datasets, options.jobs, [&](std::size_t d) {
    const graph::DatasetId id = graph::kAllDatasets[d];
    const double scale =
        options.scale > 0.0 ? options.scale : default_scale(id);
    datasets[d] = graph::make_dataset(id, scale, options.seed);
  });

  // The grid: each (dataset x accelerator) cell owns its accelerator
  // instance and writes only its preallocated result slot, so cells run
  // concurrently without synchronisation and results match a serial run
  // bit for bit (row order is fixed by kAllDatasets, not completion order).
  std::vector<ComparisonRow> rows(num_datasets);
  for (std::size_t d = 0; d < num_datasets; ++d) {
    rows[d].dataset = graph::kAllDatasets[d];
  }
  parallel_for(num_datasets * kAccels, options.jobs, [&](std::size_t cell) {
    const std::size_t d = cell / kAccels;
    const std::size_t a = cell % kAccels;
    const graph::Dataset& ds = datasets[d];
    const core::GnnJob job = core::GnnJob::two_layer(
        gnn::GnnModel::kGcn, ds.spec, options.hidden_dim);

    if (a == 0) {
      core::AuroraAccelerator aurora_accel(cfg);
      rows[d].aurora = aurora_accel.run(ds, job);
      return;
    }
    const std::size_t b = a - 1;
    const auto model =
        baselines::make_baseline(baselines::kAllBaselines[b], chip);
    core::RunMetrics total;
    for (std::size_t layer = 0; layer < job.layers.size(); ++layer) {
      const auto wf = gnn::generate_workflow(job.model, job.layers[layer],
                                             ds.num_vertices(),
                                             ds.num_edges());
      core::DramTrafficParams traffic;
      traffic.element_bytes = chip.element_bytes;
      traffic.sparse_input_features = (layer == 0);
      traffic.input_feature_density = ds.spec.feature_density;
      total += model->run_layer(ds, wf, traffic);
    }
    rows[d].baseline[b] = total;
  });

  if (!options.metrics_out.empty()) {
    std::vector<core::NamedRun> runs;
    for (const auto& row : rows) {
      const char* ds_name = graph::dataset_name(row.dataset);
      runs.push_back({"Aurora", ds_name, row.aurora});
      for (std::size_t b = 0; b < kNumBaselines; ++b) {
        runs.push_back({baselines::baseline_name(baselines::kAllBaselines[b]),
                        ds_name, row.baseline[b]});
      }
    }
    core::write_json_file(options.metrics_out, core::runs_to_json(runs));
    std::printf("metrics JSON: %s\n", options.metrics_out.c_str());
  }
  return rows;
}

void print_normalized_figure(
    const std::string& title, const std::vector<ComparisonRow>& rows,
    const std::function<double(const core::RunMetrics&)>& metric) {
  std::printf("%s\n", title.c_str());
  std::printf("(normalized to Aurora = 1.00; higher = worse)\n\n");

  std::vector<std::string> header = {"dataset"};
  for (auto id : baselines::kAllBaselines) {
    header.emplace_back(baselines::baseline_name(id));
  }
  header.emplace_back("Aurora");
  AsciiTable table(std::move(header));

  std::vector<double> baseline_ratio_sums(baselines::kAllBaselines.size(),
                                          0.0);
  for (const auto& row : rows) {
    const double aurora_value = metric(row.aurora);
    std::vector<std::string> cells = {graph::dataset_name(row.dataset)};
    double dataset_sum = 0.0;
    for (std::size_t b = 0; b < baselines::kAllBaselines.size(); ++b) {
      const double ratio = metric(row.baseline[b]) / aurora_value;
      baseline_ratio_sums[b] += ratio;
      dataset_sum += ratio;
      cells.push_back(to_fixed(ratio, 2));
    }
    cells.emplace_back("1.00");
    table.add_row(std::move(cells));
    const double avg = dataset_sum /
                       static_cast<double>(baselines::kAllBaselines.size());
    std::printf("  %-9s avg reduction vs baselines: %5.1f %%\n",
                graph::dataset_name(row.dataset), 100.0 * (1.0 - 1.0 / avg));
  }
  std::printf("\n");
  table.print();

  // Bar rendering, one group per dataset (the paper's bar-chart form).
  std::printf("\n");
  for (const auto& row : rows) {
    double max_ratio = 1.0;
    for (std::size_t b = 0; b < baselines::kAllBaselines.size(); ++b) {
      max_ratio = std::max(max_ratio, metric(row.baseline[b]) /
                                          metric(row.aurora));
    }
    std::printf("%s\n", graph::dataset_name(row.dataset));
    auto bar = [&](const char* name, double ratio) {
      const int width = static_cast<int>(48.0 * ratio / max_ratio);
      std::printf("  %-8s %s %s\n", name,
                  std::string(static_cast<std::size_t>(std::max(1, width)),
                              '#')
                      .c_str(),
                  to_fixed(ratio, 2).c_str());
    };
    for (std::size_t b = 0; b < baselines::kAllBaselines.size(); ++b) {
      bar(baselines::baseline_name(baselines::kAllBaselines[b]),
          metric(row.baseline[b]) / metric(row.aurora));
    }
    bar("Aurora", 1.0);
  }

  std::printf("\nper-baseline average reduction achieved by Aurora:\n");
  for (std::size_t b = 0; b < baselines::kAllBaselines.size(); ++b) {
    const double avg =
        baseline_ratio_sums[b] / static_cast<double>(rows.size());
    std::printf("  vs %-8s: %5.1f %%  (Aurora is %.2fx better)\n",
                baselines::baseline_name(baselines::kAllBaselines[b]),
                100.0 * (1.0 - 1.0 / avg), avg);
  }
  std::printf("\n");
}

}  // namespace aurora::bench
