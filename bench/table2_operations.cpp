// Table II: required operations in each execution phase of every GNN model,
// as produced by the adaptive workflow generator.
#include <cstdio>

#include "common/strings.hpp"
#include "common/table.hpp"
#include "gnn/models.hpp"
#include "gnn/workflow.hpp"

int main() {
  using namespace aurora;
  std::printf(
      "Table II — required operations per execution phase "
      "(from the adaptive workflow generator)\n\n");

  AsciiTable table({"model", "category", "edge update", "aggregation",
                    "vertex update"});
  for (gnn::GnnModel m : gnn::kAllModels) {
    const gnn::ModelOps& ops = gnn::model_ops(m);
    table.add_row({gnn::model_name(m),
                   gnn::category_name(gnn::model_category(m)),
                   gnn::format_ops(ops.edge_update),
                   gnn::format_ops(ops.aggregation),
                   gnn::format_ops(ops.vertex_update)});
  }
  table.print();

  // Op-count sanity on a reference workload (hidden layer, F = H = 64, so
  // no update-first reordering obscures the per-phase shares).
  std::printf("\nper-phase operation shares (n = 10k, m = 100k, F = H = 64):\n");
  AsciiTable shares({"model", "O_ue", "O_a", "O_uv", "update-first"});
  for (gnn::GnnModel m : gnn::kAllModels) {
    const auto wf = gnn::generate_workflow(m, {64, 64}, 10000, 100000);
    const double total = static_cast<double>(wf.total_ops());
    auto pct = [&](gnn::Phase p) {
      return to_fixed(100.0 *
                          static_cast<double>(wf.phase(p).total_ops) / total,
                      1) +
             " %";
    };
    shares.add_row({gnn::model_name(m), pct(gnn::Phase::kEdgeUpdate),
                    pct(gnn::Phase::kAggregation),
                    pct(gnn::Phase::kVertexUpdate),
                    wf.update_first ? "yes" : "no"});
  }
  shares.print();
  return 0;
}
