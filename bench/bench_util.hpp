// Shared harness for the figure/table bench binaries.
//
// Every figure bench runs the same experiment grid the paper evaluates —
// the 2-layer GCN benchmark job over the five datasets, on Aurora and the
// five baseline accelerators normalised to the same resources — then prints
// one metric normalised to Aurora, exactly like the paper's bar charts.
#pragma once

#include <array>
#include <functional>
#include <string>
#include <vector>

#include "baselines/baseline.hpp"
#include "common/cli.hpp"
#include "core/aurora.hpp"
#include "graph/datasets.hpp"

namespace aurora::bench {

struct FigureOptions {
  /// 0 keeps the per-dataset default bench scales; otherwise a global
  /// override in (0, 1].
  double scale = 0.0;
  /// Figures default to the paper's 32 x 32 / 100 MB configuration (the
  /// chip the evaluation section describes); --small selects the 16 x 16
  /// bench chip instead.
  bool paper_scale = true;
  std::uint32_t hidden_dim = 16;
  std::uint64_t seed = 7;
  /// Worker threads for the comparison grid (--jobs): 0 = one per hardware
  /// thread; 1 = fully serial reproducibility mode (no threading at all).
  /// Every cell is deterministic either way — the flag only affects
  /// wall-clock time and scheduling, never results.
  unsigned jobs = 0;
  /// When non-empty (--metrics-out), run_comparison writes the full grid's
  /// RunMetrics as a JSON report (one named run per dataset x accelerator
  /// cell, same schema as metrics_to_json) to this path.
  std::string metrics_out;
};

[[nodiscard]] FigureOptions parse_figure_options(int argc,
                                                 const char* const* argv);

/// Per-dataset default scales: full size where the analytic model handles it
/// comfortably, reduced for the two giants (documented in EXPERIMENTS.md).
[[nodiscard]] double default_scale(graph::DatasetId id);

/// Aurora configuration for figure runs: analytic mode (cycle-accurate at
/// these sizes is impractical; the analytic model shares all decisions and
/// is cross-validated against the cycle engine in tests).
[[nodiscard]] core::AuroraConfig figure_config(const FigureOptions& options);

/// Baseline chip normalised to that Aurora configuration.
[[nodiscard]] baselines::ChipParams figure_chip(const FigureOptions& options);

/// Results of the full grid for one dataset.
struct ComparisonRow {
  graph::DatasetId dataset{};
  core::RunMetrics aurora;
  std::array<core::RunMetrics, baselines::kAllBaselines.size()> baseline;
};

/// Run the 2-layer GCN job over every dataset on every accelerator. Every
/// (dataset x accelerator) cell is independent, so the grid runs on a small
/// thread pool sized by options.jobs; results are identical for any job
/// count (each cell owns its accelerator instance and result slot).
[[nodiscard]] std::vector<ComparisonRow> run_comparison(
    const FigureOptions& options);

/// Print `metric` for every accelerator normalised to Aurora (= 1.00), one
/// row per dataset, plus the per-dataset and per-baseline average reductions
/// the paper quotes.
void print_normalized_figure(
    const std::string& title, const std::vector<ComparisonRow>& rows,
    const std::function<double(const core::RunMetrics&)>& metric);

}  // namespace aurora::bench
