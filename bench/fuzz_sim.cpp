// Seed-reproducible differential fuzzer for the simulation core.
//
// Each seed deterministically generates a random chip (NoC bypass/ring
// configuration, DRAM timings including aggressive tREFI), a random graph
// and GNN workload, then runs everything in BOTH scheduler modes — lockstep
// and event-driven fast-forward — with the invariant checker attached, and
// diffs the results bit for bit:
//
//   phase A: raw NoC traffic waves on a randomized mesh/bypass/ring config,
//            every NocStats field compared after every drain;
//   phase B: a full AuroraAccelerator::run_layer, RunMetrics compared via
//            core::diff_run_metrics (which ignores only the scheduler-work
//            counter "sim.cycles_skipped").
//
// Any divergence or invariant violation prints the seed and a one-command
// replay line. Replaying a single seed with --trace-out writes a Perfetto
// trace of the fast-forward engine run for inspection.
//
// --cluster --faults additionally injects a seed-deterministic fault plan:
// link degradation and DRAM stall windows on the cluster run (all four
// engine/scheduler combinations must still agree bit for bit), a
// regenerate-and-compare check on the fault timeline itself, and a serving
// phase with chip fail-stop/fail-recover faults where the full
// ServingReport (retries, failovers, shedding, every request's timing) is
// diffed across the same four flavours.
//
//   ./build/bench/fuzz_sim --seeds=25            # CI smoke
//   ./build/bench/fuzz_sim --seeds=500 --start-seed=1000
//   ./build/bench/fuzz_sim --seed=42 --trace-out=fuzz_42.json
//   ./build/bench/fuzz_sim --cluster --parallel --faults --seeds=25
#include <array>
#include <cstdint>
#include <cstdio>
#include <exception>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster_engine.hpp"
#include "common/cli.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/aurora.hpp"
#include "core/report.hpp"
#include "fault/fault.hpp"
#include "graph/generators.hpp"
#include "noc/network.hpp"
#include "noc/routing.hpp"
#include "serving/serving_engine.hpp"
#include "sim/invariants.hpp"
#include "sim/perfetto.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"

namespace {

using namespace aurora;

constexpr Cycle kGuard = 50'000'000;

// ---------------------------------------------------------------- phase A

struct NocSend {
  noc::NodeId src = 0;
  noc::NodeId dst = 0;
  Bytes bytes = 0;
};

struct NocScenario {
  noc::NocParams params;
  noc::NocConfig config;
  std::vector<std::vector<NocSend>> waves;
};

noc::NocConfig random_noc_config(std::uint32_t k, Rng& rng) {
  noc::NocConfig cfg(k);
  if (rng.next_bool(0.5)) cfg.set_routing(noc::RoutingPolicy::kYXFirst);
  std::vector<std::uint8_t> row_full(k, 0);
  for (std::uint32_t line = 0; line < k; ++line) {
    if (!rng.next_bool(0.6)) continue;
    std::uint32_t from = 0;
    std::uint32_t to = k - 1;
    if (k > 3 && rng.next_bool(0.5)) {
      from = static_cast<std::uint32_t>(rng.next_below(k - 2));
      to = from + 2 +
           static_cast<std::uint32_t>(rng.next_below(k - 2 - from));
    }
    cfg.add_row_segment({line, from, to});
    row_full[line] = (from == 0 && to == k - 1) ? 1 : 0;
  }
  for (std::uint32_t line = 0; line < k; ++line) {
    if (rng.next_bool(0.3)) cfg.add_col_segment({line, 0, k - 1});
  }
  // Ring overlays on rows whose full-span segment provides the wrap link,
  // plus the occasional 2x2 mesh square (always routable on the mesh).
  std::vector<std::uint8_t> used(k * k, 0);
  for (std::uint32_t r = 0; r < k; ++r) {
    if (row_full[r] == 0 || !rng.next_bool(0.5)) continue;
    noc::RingConfig ring;
    for (std::uint32_t c = 0; c < k; ++c) {
      ring.nodes.push_back(r * k + c);
      used[r * k + c] = 1;
    }
    cfg.add_ring(ring);
  }
  if (rng.next_bool(0.4)) {
    const auto r = static_cast<std::uint32_t>(rng.next_below(k - 1));
    const auto c = static_cast<std::uint32_t>(rng.next_below(k - 1));
    const std::array<noc::NodeId, 4> square = {
        r * k + c, r * k + c + 1, (r + 1) * k + c + 1, (r + 1) * k + c};
    bool free = true;
    for (const noc::NodeId n : square) free = free && used[n] == 0;
    if (free) cfg.add_ring({{square[0], square[1], square[2], square[3]}});
  }
  return cfg;
}

NocScenario random_noc_scenario(std::uint64_t seed) {
  Rng rng(seed * 2654435761ull + 1);
  NocScenario s;
  s.params.k = 3 + static_cast<std::uint32_t>(rng.next_below(6));
  s.params.flit_bytes = 16ull << rng.next_below(3);
  s.params.num_vcs = 1 + static_cast<std::uint32_t>(rng.next_below(4));
  s.params.input_buffer_flits =
      2 + static_cast<std::uint32_t>(rng.next_below(7));
  s.params.router_delay = 1 + rng.next_below(3);
  s.params.turn_delay = rng.next_below(3);
  s.params.link_delay = 1 + rng.next_below(2);
  s.config = random_noc_config(s.params.k, rng);
  const std::uint32_t nodes = s.params.k * s.params.k;
  const std::size_t num_waves = 1 + rng.next_below(3);
  for (std::size_t w = 0; w < num_waves; ++w) {
    std::vector<NocSend> wave(1 + rng.next_below(14));
    for (NocSend& send : wave) {
      send.src = static_cast<noc::NodeId>(rng.next_below(nodes));
      do {
        send.dst = static_cast<noc::NodeId>(rng.next_below(nodes));
      } while (send.dst == send.src);
      send.bytes = 8 + rng.next_below(240);
    }
    s.waves.push_back(std::move(wave));
  }
  return s;
}

struct NocOutcome {
  noc::NocStats stats;
  Cycle end_cycle = 0;
};

NocOutcome run_noc_scenario(const NocScenario& s, bool fast_forward) {
  sim::Simulator sim;
  sim.set_fast_forward(fast_forward);
  noc::Network net(s.params);
  sim.add(&net);
  sim::InvariantChecker checker;
  checker.watch(&net);
  net.configure(s.config);
  for (const auto& wave : s.waves) {
    for (const NocSend& send : wave) {
      net.send(send.src, send.dst, send.bytes, 0, sim.now());
    }
    sim.run_until_idle(kGuard);
    checker.check_now(sim.now());
  }
  return {net.stats(), sim.now()};
}

std::vector<std::string> diff_noc(const NocOutcome& a, const NocOutcome& b) {
  std::vector<std::string> diffs;
  const auto u64 = [&diffs](const char* name, std::uint64_t x,
                            std::uint64_t y) {
    if (x != y) {
      diffs.push_back(std::string(name) + ": " + std::to_string(x) + " != " +
                      std::to_string(y));
    }
  };
  const auto num = [&diffs](const char* name, double x, double y) {
    if (x != y) diffs.push_back(std::string(name) + " differs");
  };
  u64("end_cycle", a.end_cycle, b.end_cycle);
  u64("packets_injected", a.stats.packets_injected, b.stats.packets_injected);
  u64("packets_delivered", a.stats.packets_delivered,
      b.stats.packets_delivered);
  u64("flits_injected", a.stats.flits_injected, b.stats.flits_injected);
  u64("flits_ejected", a.stats.flits_ejected, b.stats.flits_ejected);
  u64("flit_hops", a.stats.flit_hops, b.stats.flit_hops);
  u64("bypass_flit_hops", a.stats.bypass_flit_hops,
      b.stats.bypass_flit_hops);
  u64("router_traversals", a.stats.router_traversals,
      b.stats.router_traversals);
  u64("link_bytes", a.stats.link_bytes, b.stats.link_bytes);
  u64("bypass_bytes", a.stats.bypass_bytes, b.stats.bypass_bytes);
  u64("busy_cycles", a.stats.busy_cycles, b.stats.busy_cycles);
  u64("latency.count", a.stats.packet_latency.count(),
      b.stats.packet_latency.count());
  num("latency.sum", a.stats.packet_latency.sum(),
      b.stats.packet_latency.sum());
  num("latency.min", a.stats.packet_latency.min(),
      b.stats.packet_latency.min());
  num("latency.max", a.stats.packet_latency.max(),
      b.stats.packet_latency.max());
  num("hops.sum", a.stats.packet_hops.sum(), b.stats.packet_hops.sum());
  u64("latency_hist.total", a.stats.packet_latency_hist.total(),
      b.stats.packet_latency_hist.total());
  return diffs;
}

/// With some probability, also check that an intentionally broken ring (a
/// full-row overlay whose wrap column has no bypass segment) is rejected at
/// configure time and routes fine via the mesh fallback.
void probe_unroutable_ring(const NocScenario& s, Rng& rng) {
  const std::uint32_t k = s.params.k;
  std::uint32_t row = k;
  for (std::uint32_t r = 0; r < k && row == k; ++r) {
    bool free_row = !s.config.row_segment_at(r, 0).has_value() &&
                    !s.config.row_segment_at(r, k - 1).has_value();
    for (const auto& ring : s.config.rings()) {
      for (const noc::NodeId n : ring.nodes) free_row &= (n / k != r);
    }
    if (free_row) row = r;
  }
  if (row == k || !rng.next_bool(0.5)) return;
  noc::NocConfig broken = s.config;
  noc::RingConfig ring;
  for (std::uint32_t c = 0; c < k; ++c) ring.nodes.push_back(row * k + c);
  broken.add_ring_unchecked(ring);
  const std::size_t idx = broken.rings().size() - 1;
  AURORA_CHECK_MSG(!broken.ring_routable(idx),
                   "fuzz probe: wrap ring without segment marked routable");
  // Mesh fallback must still deliver between ring members without throwing.
  (void)noc::path_hops(row * k, row * k + k - 1, broken);
  noc::Network net(s.params);
  bool threw = false;
  try {
    (void)net.configure(broken);
  } catch (const Error&) {
    threw = true;
  }
  AURORA_CHECK_MSG(threw,
                   "fuzz probe: configure accepted an unroutable ring");
}

// ---------------------------------------------------------------- phase B

core::AuroraConfig random_chip(Rng& rng) {
  core::AuroraConfig cfg = core::AuroraConfig::bench();
  const std::uint32_t dim = rng.next_bool(0.5) ? 4 : 8;
  cfg.array_dim = dim;
  cfg.noc.k = dim;
  cfg.noc.num_vcs = 1 + static_cast<std::uint32_t>(rng.next_below(4));
  cfg.noc.input_buffer_flits =
      2 + static_cast<std::uint32_t>(rng.next_below(7));
  cfg.noc.router_delay = 1 + rng.next_below(3);
  cfg.noc.turn_delay = rng.next_below(2);
  cfg.noc.link_delay = 1 + rng.next_below(2);
  cfg.ring_size = 2 + static_cast<std::uint32_t>(rng.next_below(dim - 1));
  if (rng.next_bool(0.5)) cfg.mapping_policy = core::MappingPolicy::kHashing;
  cfg.dram.num_channels = 1u << rng.next_below(3);
  cfg.dram.banks_per_channel =
      2 + static_cast<std::uint32_t>(rng.next_below(7));
  cfg.dram.queue_depth = 8 + static_cast<std::uint32_t>(rng.next_below(57));
  auto& t = cfg.dram.timing;
  t.t_rcd = 4 + rng.next_below(9);
  t.t_rp = 4 + rng.next_below(9);
  t.t_cl = 4 + rng.next_below(9);
  t.t_burst = 2 + rng.next_below(5);
  t.t_turnaround = rng.next_below(7);
  // Aggressively small refresh interval so refresh scheduling (and the
  // catch-up accounting on idle channels) is exercised constantly;
  // sometimes disabled entirely.
  t.t_refi = rng.next_bool(0.2) ? 0 : 150 + rng.next_below(1200);
  t.t_rfc = 20 + rng.next_below(41);
  cfg.check_invariants = true;
  cfg.invariant_interval =
      rng.next_bool(0.5) ? 0 : 64 * (1 + rng.next_below(32));
  return cfg;
}

graph::Dataset random_dataset(Rng& rng) {
  graph::Dataset ds;
  ds.spec.name = "fuzz";
  ds.spec.feature_dim = 4 + static_cast<std::uint32_t>(rng.next_below(21));
  ds.spec.feature_density = 1.0;
  ds.spec.num_classes = 4;
  const auto n = static_cast<VertexId>(24 + rng.next_below(100));
  const auto m = static_cast<EdgeId>(n) * (1 + rng.next_below(3));
  switch (rng.next_below(6)) {
    case 0:
      ds.graph = graph::generate_erdos_renyi(n, m, rng);
      break;
    case 1: {
      graph::PowerLawParams p;
      p.n = n;
      p.undirected_edges = m;
      ds.graph = graph::generate_power_law(p, rng);
      break;
    }
    case 2: {
      graph::RmatParams p;
      p.scale = 6;
      p.undirected_edges = m;
      ds.graph = graph::generate_rmat(p, rng);
      break;
    }
    case 3:
      ds.graph = graph::generate_grid(
          6, static_cast<VertexId>(4 + rng.next_below(12)));
      break;
    case 4:
      ds.graph = graph::generate_star(n);
      break;
    default:
      ds.graph = graph::generate_ring(n);
      break;
  }
  ds.spec.num_vertices = ds.graph.num_vertices();
  ds.degree_stats = graph::compute_degree_stats(ds.graph);
  return ds;
}

core::RunMetrics run_engine(const core::AuroraConfig& chip,
                            const graph::Dataset& ds, gnn::GnnModel model,
                            const gnn::LayerConfig& layer,
                            std::uint32_t layer_index, bool fast_forward,
                            sim::Tracer* tracer) {
  core::AuroraConfig cfg = chip;
  cfg.fast_forward = fast_forward;
  core::AuroraAccelerator accel(cfg);
  if (tracer != nullptr) accel.set_tracer(tracer);
  return accel.run_layer(ds, model, layer, layer_index);
}

// ---------------------------------------------------------------- cluster

void print_failure(std::uint64_t seed, const char* phase,
                   const std::vector<std::string>& diffs);

/// Differential fuzz of the multi-chip cluster engine: random shard counts,
/// topologies and link parameters; lockstep vs fast-forward must agree on
/// every per-chip RunMetrics field, the cluster clock, and every cluster
/// counter, with the cluster invariant checker attached throughout. With
/// `parallel`, additionally runs the conservative parallel engine (random
/// worker count) in both scheduler modes and bit-diffs it against the
/// serial engine — the tentpole guarantee of the parallel simulator.
///
/// With `faults`, a seed-deterministic fault plan (link degradation + DRAM
/// stall windows) rides along on every cluster run, the plan's timeline is
/// checked to regenerate identically, and a serving phase with chip
/// fail-stop faults diffs the full ServingReport across the same
/// engine/scheduler combinations.
bool run_cluster_seed(std::uint64_t seed, bool verbose, bool parallel,
                      bool faults) {
  try {
    Rng rng(seed * 0xD1B54A32D192ED03ull + 5);
    core::AuroraConfig chip = random_chip(rng);
    chip.check_invariants = true;

    cluster::ClusterParams params;
    params.num_chips = 1 + static_cast<std::uint32_t>(rng.next_below(4));
    params.strategy = rng.next_bool(0.5) ? cluster::ShardStrategy::kRange
                                         : cluster::ShardStrategy::kHash;
    params.link.topology = rng.next_bool(0.5)
                               ? cluster::ClusterTopology::kRing
                               : cluster::ClusterTopology::kFullyConnected;
    params.link.bytes_per_cycle = 8ull << rng.next_below(4);
    params.link.hop_latency = 8 + rng.next_below(121);
    params.link.max_message_bytes = 256ull << rng.next_below(4);

    const graph::Dataset ds = random_dataset(rng);
    const gnn::GnnModel model =
        gnn::kAllModels[rng.next_below(gnn::kAllModels.size())];
    const core::GnnJob job = core::GnnJob::two_layer(
        model, ds.spec, 4 + static_cast<std::uint32_t>(rng.next_below(13)));

    const auto fail = [&](const char* phase,
                          const std::vector<std::string>& diffs) {
      print_failure(seed, phase, diffs);
      std::printf(
          "replay: ./build/bench/fuzz_sim --cluster%s%s --seed=%llu\n",
          parallel ? " --parallel" : "", faults ? " --faults" : "",
          static_cast<unsigned long long>(seed));
      return false;
    };

    std::shared_ptr<const fault::FaultPlan> plan;
    if (faults) {
      fault::FaultParams fp;
      fp.seed = seed * 0xA24BAED4963EE407ull + 9;
      fp.horizon = 2'000'000;
      fp.link_mtbf = 5'000.0 + static_cast<double>(rng.next_below(200'000));
      fp.link_mttr = 2'000.0 + static_cast<double>(rng.next_below(100'000));
      fp.dram_mtbf = 20'000.0 + static_cast<double>(rng.next_below(200'000));
      fp.dram_mttr = 1'000.0 + static_cast<double>(rng.next_below(20'000));
      auto built = std::make_shared<fault::FaultPlan>(
          fault::FaultPlan::generate(fp, params.num_chips));
      // The plan IS the fault timeline: regenerating from the same params
      // must reproduce it event for event, or seed replays are worthless.
      const fault::FaultPlan again =
          fault::FaultPlan::generate(fp, params.num_chips);
      if (built->timeline() != again.timeline()) {
        return fail("fault-plan-determinism",
                    {"regenerated plan timeline differs"});
      }
      // Every cluster chip shares this one AuroraConfig, so chip 0's DRAM
      // stall schedule lands on all of them — the differential only needs
      // the stall path exercised, not per-chip variety.
      for (const fault::DownWindow& w : built->dram_windows(0)) {
        chip.dram.stall_windows.push_back(
            {dram::DramStallWindow::kAllChannels, w.begin, w.end});
      }
      plan = std::move(built);
    }

    if (verbose) {
      std::printf(
          "seed %llu cluster: %u chip(s), %s sharding, %s link "
          "(bpc=%llu, hop=%llu), %s, %u vertices\n",
          static_cast<unsigned long long>(seed), params.num_chips,
          cluster::shard_strategy_name(params.strategy),
          cluster::topology_name(params.link.topology),
          static_cast<unsigned long long>(params.link.bytes_per_cycle),
          static_cast<unsigned long long>(params.link.hop_latency),
          gnn::model_name(model), ds.num_vertices());
    }

    const unsigned jobs = 1 + static_cast<unsigned>(rng.next_below(4));
    const auto run = [&](bool fast_forward, bool parallel_engine) {
      core::AuroraConfig cfg = chip;
      cfg.fast_forward = fast_forward;
      cluster::ClusterParams p = params;
      p.parallel = parallel_engine;
      p.parallel_jobs = parallel_engine ? jobs : 0;
      p.fault_plan = plan;
      cluster::ClusterEngine engine(cfg, p);
      return engine.run(ds, job);
    };

    const cluster::ClusterRunMetrics lock = run(false, false);
    const cluster::ClusterRunMetrics fast = run(true, false);
    const auto diffs = cluster::diff_cluster_run_metrics(lock, fast);
    if (!diffs.empty()) return fail("cluster", diffs);

    if (parallel) {
      const cluster::ClusterRunMetrics par_lock = run(false, true);
      const auto lock_diffs =
          cluster::diff_cluster_run_metrics(lock, par_lock);
      if (!lock_diffs.empty()) {
        return fail("cluster-parallel-lockstep", lock_diffs);
      }
      const cluster::ClusterRunMetrics par_fast = run(true, true);
      const auto fast_diffs =
          cluster::diff_cluster_run_metrics(fast, par_fast);
      if (!fast_diffs.empty()) {
        return fail("cluster-parallel-fast-forward", fast_diffs);
      }
    }

    if (faults) {
      // Serving phase: chip fail-stop/fail-recover faults drive the retry/
      // backoff/failover path; the entire ServingReport (every counter and
      // every served request's placement and timing) must be bit-identical
      // across engine flavours, and the conservation invariants must hold.
      serving::ServingParams sp;
      sp.seed = seed * 0x9E3779B97F4A7C15ull + 11;
      sp.num_requests = 6 + rng.next_below(8);
      sp.queue_depth = 4 + static_cast<std::size_t>(rng.next_below(13));
      sp.max_batch = 1 + static_cast<std::uint32_t>(rng.next_below(4));
      sp.num_tenants = 1 + static_cast<std::uint32_t>(rng.next_below(3));
      sp.arrival.rate_per_mcycle =
          5.0 + static_cast<double>(rng.next_below(300));
      sp.slo_cycles = rng.next_bool(0.5) ? 0 : 50'000 + rng.next_below(950'000);
      sp.mode = params.num_chips > 1 && rng.next_bool(0.5)
                    ? cluster::DispatchMode::kShardParallel
                    : cluster::DispatchMode::kDataParallel;
      sp.max_retries = static_cast<std::uint32_t>(rng.next_below(4));
      sp.retry_backoff_base = Cycle{64} << rng.next_below(5);
      sp.proactive_shedding = rng.next_bool(0.5);
      // Aggressive MTBF relative to these tiny workloads' service times so
      // mid-flight failures (and thus retries/failovers) actually fire in a
      // healthy fraction of seeds; occasional MTTR=0 exercises permanent
      // fail-stop.
      sp.faults.seed = seed * 0xBF58476D1CE4E5B9ull + 13;
      sp.faults.horizon = 8'000'000;
      sp.faults.chip_mtbf =
          10'000.0 + static_cast<double>(rng.next_below(200'000));
      sp.faults.chip_mttr =
          rng.next_bool(0.2)
              ? 0.0
              : 5'000.0 + static_cast<double>(rng.next_below(100'000));
      const std::vector<serving::ModelMixEntry> mix = {{job, "fuzz", 1.0, 0}};
      const auto serve = [&](bool fast_forward, bool parallel_engine) {
        core::AuroraConfig cfg = chip;
        cfg.fast_forward = fast_forward;
        cluster::ClusterParams p = params;
        p.parallel = parallel_engine;
        p.parallel_jobs = parallel_engine ? jobs : 0;
        p.fault_plan = plan;
        serving::ServingEngine engine(cfg, p, sp);
        return engine.run(ds, mix);
      };
      const serving::ServingReport base = serve(false, false);
      const bool conserved =
          base.admitted + base.shed == base.generated &&
          base.admitted == base.served.size() + base.shed_expired +
                               base.failed_permanently;
      if (!conserved) {
        return fail("serving-conservation",
                    {"admitted " + std::to_string(base.admitted) +
                     " shed " + std::to_string(base.shed) + " generated " +
                     std::to_string(base.generated) + " served " +
                     std::to_string(base.served.size()) + " shed_expired " +
                     std::to_string(base.shed_expired) +
                     " failed_permanently " +
                     std::to_string(base.failed_permanently)});
      }
      const serving::ServingReport ff = serve(true, false);
      const auto ff_diffs = serving::diff_serving_reports(base, ff);
      if (!ff_diffs.empty()) return fail("serving-fast-forward", ff_diffs);
      if (parallel) {
        const serving::ServingReport par_lock = serve(false, true);
        const auto pl_diffs = serving::diff_serving_reports(base, par_lock);
        if (!pl_diffs.empty()) return fail("serving-parallel", pl_diffs);
        const serving::ServingReport par_fast = serve(true, true);
        const auto pf_diffs = serving::diff_serving_reports(ff, par_fast);
        if (!pf_diffs.empty()) {
          return fail("serving-parallel-fast-forward", pf_diffs);
        }
      }
      if (verbose) {
        std::printf(
            "seed %llu serving: %zu/%llu completed, %llu failed attempt(s), "
            "%llu retried, %llu permanent, %llu shed expired\n",
            static_cast<unsigned long long>(seed), base.served.size(),
            static_cast<unsigned long long>(base.admitted),
            static_cast<unsigned long long>(base.failed_attempts),
            static_cast<unsigned long long>(base.retries),
            static_cast<unsigned long long>(base.failed_permanently),
            static_cast<unsigned long long>(base.shed_expired));
      }
    }

    if (verbose) {
      std::printf("seed %llu OK: %llu cluster cycles, %llu halo bytes, "
                  "%s bit-identical\n",
                  static_cast<unsigned long long>(seed),
                  static_cast<unsigned long long>(lock.total_cycles),
                  static_cast<unsigned long long>(lock.link.bytes_delivered),
                  parallel ? "all four engine/scheduler combinations"
                           : "both modes");
    }
  } catch (const std::exception& e) {
    std::printf("FUZZ FAILURE seed=%llu (cluster): exception\n  %s\n",
                static_cast<unsigned long long>(seed), e.what());
    std::printf("replay: ./build/bench/fuzz_sim --cluster%s%s --seed=%llu\n",
                parallel ? " --parallel" : "", faults ? " --faults" : "",
                static_cast<unsigned long long>(seed));
    return false;
  }
  return true;
}

// ---------------------------------------------------------------- driver

void print_failure(std::uint64_t seed, const char* phase,
                   const std::vector<std::string>& diffs) {
  std::printf("FUZZ FAILURE seed=%llu phase=%s: lockstep and fast-forward "
              "diverge in %zu field(s)\n",
              static_cast<unsigned long long>(seed), phase, diffs.size());
  for (const auto& d : diffs) std::printf("  %s\n", d.c_str());
}

void print_replay(std::uint64_t seed) {
  std::printf("replay: ./build/bench/fuzz_sim --seed=%llu "
              "--trace-out=fuzz_%llu.json\n",
              static_cast<unsigned long long>(seed),
              static_cast<unsigned long long>(seed));
}

bool run_seed(std::uint64_t seed, bool verbose, const std::string& trace_out) {
  try {
    // ---- phase A: raw NoC differential
    const NocScenario scenario = random_noc_scenario(seed);
    if (verbose) {
      std::printf("seed %llu phase A: k=%u vcs=%u %zu row / %zu col "
                  "segments, %zu ring(s), %zu wave(s)\n",
                  static_cast<unsigned long long>(seed), scenario.params.k,
                  scenario.params.num_vcs,
                  scenario.config.row_segments().size(),
                  scenario.config.col_segments().size(),
                  scenario.config.rings().size(), scenario.waves.size());
    }
    {
      Rng probe_rng(seed * 2654435761ull + 17);
      probe_unroutable_ring(scenario, probe_rng);
    }
    const NocOutcome lock = run_noc_scenario(scenario, false);
    const NocOutcome fast = run_noc_scenario(scenario, true);
    const auto noc_diffs = diff_noc(lock, fast);
    if (!noc_diffs.empty()) {
      print_failure(seed, "noc", noc_diffs);
      print_replay(seed);
      return false;
    }

    // ---- phase B: full engine differential
    Rng rng(seed * 0x9E3779B97F4A7C15ull + 3);
    const core::AuroraConfig chip = random_chip(rng);
    const graph::Dataset ds = random_dataset(rng);
    const gnn::GnnModel model =
        gnn::kAllModels[rng.next_below(gnn::kAllModels.size())];
    const gnn::LayerConfig layer{
        4 + static_cast<std::uint32_t>(rng.next_below(29)),
        4 + static_cast<std::uint32_t>(rng.next_below(29))};
    const auto layer_index =
        static_cast<std::uint32_t>(rng.next_below(2));
    if (verbose) {
      std::printf("seed %llu phase B: %ux%u chip, %s, %u vertices, "
                  "dims %u->%u, tREFI=%llu, interval=%llu\n",
                  static_cast<unsigned long long>(seed), chip.array_dim,
                  chip.array_dim, gnn::model_name(model), ds.num_vertices(),
                  layer.in_dim, layer.out_dim,
                  static_cast<unsigned long long>(chip.dram.timing.t_refi),
                  static_cast<unsigned long long>(chip.invariant_interval));
    }
    const core::RunMetrics lockstep =
        run_engine(chip, ds, model, layer, layer_index, false, nullptr);
    sim::Tracer tracer;
    sim::Tracer* tracer_ptr = nullptr;
    if (!trace_out.empty()) {
      tracer.enable();
      tracer_ptr = &tracer;
    }
    const core::RunMetrics fastfwd =
        run_engine(chip, ds, model, layer, layer_index, true, tracer_ptr);
    if (!trace_out.empty()) {
      sim::write_perfetto_trace(trace_out, tracer);
      std::printf("wrote %s (fast-forward engine run)\n", trace_out.c_str());
    }
    const auto diffs = core::diff_run_metrics(lockstep, fastfwd);
    if (!diffs.empty()) {
      print_failure(seed, "engine", diffs);
      print_replay(seed);
      return false;
    }
    if (verbose) {
      std::printf("seed %llu OK: %llu cycles, both modes bit-identical\n",
                  static_cast<unsigned long long>(seed),
                  static_cast<unsigned long long>(lockstep.total_cycles));
    }
  } catch (const std::exception& e) {
    std::printf("FUZZ FAILURE seed=%llu: exception\n  %s\n",
                static_cast<unsigned long long>(seed), e.what());
    print_replay(seed);
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv,
                     {"help", "cluster", "parallel", "faults", "seed",
                      "seeds", "start-seed", "trace-out"});
  if (args.get_bool("help", false)) {
    std::printf(
        "fuzz_sim — differential fuzzer (lockstep vs fast-forward)\n\n"
        "  --seeds=<n>        number of seeds to run (default 25)\n"
        "  --start-seed=<s>   first seed (default 1)\n"
        "  --seed=<s>         run one seed verbosely (replay mode)\n"
        "  --cluster          fuzz the multi-chip cluster engine instead\n"
        "                     (random shard counts, topologies, link params)\n"
        "  --parallel         with --cluster: also run the parallel\n"
        "                     conservative engine (random worker counts) and\n"
        "                     bit-diff it against the serial engine in both\n"
        "                     scheduler modes\n"
        "  --faults           with --cluster: inject a seed-deterministic\n"
        "                     fault plan (link degradation + DRAM stalls) on\n"
        "                     the cluster run and add a serving phase with\n"
        "                     chip failures; fault timelines and the full\n"
        "                     ServingReport must stay bit-identical across\n"
        "                     every engine flavour\n"
        "  --trace-out=<p>    with --seed: write a Perfetto trace of the\n"
        "                     fast-forward engine run\n");
    return 0;
  }

  const bool cluster_mode = args.get_bool("cluster", false);
  const bool parallel_mode = args.get_bool("parallel", false);
  const bool fault_mode = args.get_bool("faults", false);
  AURORA_CHECK_MSG(!fault_mode || cluster_mode,
                   "--faults requires --cluster");
  if (args.has("seed")) {
    const auto seed = std::uint64_t{args.get_uint("seed", 1)};
    if (cluster_mode) {
      return run_cluster_seed(seed, /*verbose=*/true, parallel_mode,
                              fault_mode)
                 ? 0
                 : 1;
    }
    const std::string trace_out = args.get_string("trace-out", "");
    return run_seed(seed, /*verbose=*/true, trace_out) ? 0 : 1;
  }

  const auto seeds = std::uint64_t{args.get_uint("seeds", 25, 1)};
  const auto start =
      std::uint64_t{args.get_uint("start-seed", 1)};
  for (std::uint64_t seed = start; seed < start + seeds; ++seed) {
    const bool ok = cluster_mode
                        ? run_cluster_seed(seed, /*verbose=*/false,
                                           parallel_mode, fault_mode)
                        : run_seed(seed, /*verbose=*/false, "");
    if (!ok) return 1;
  }
  std::printf("fuzz_sim%s%s%s: %llu seed(s) passed, all engine/scheduler "
              "combinations bit for bit identical\n",
              cluster_mode ? " (cluster)" : "",
              parallel_mode && cluster_mode ? " (parallel differential)" : "",
              fault_mode && cluster_mode ? " (fault injection)" : "",
              static_cast<unsigned long long>(seeds));
  return 0;
}
