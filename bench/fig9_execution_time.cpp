// Figure 9: normalized execution time per layer of the baselines and Aurora.
//
// Paper reference values (average execution-time reduction per baseline):
//   HyGCN 85 % (5.0-37.0x), AWB-GCN 66 % (1.6-3.0x), GCNAX 47 % (1.3-1.9x),
//   ReGNN 28 % (1.1-2.4x), FlowGNN 38 % (1.1-1.7x). Reddit shows the
//   smallest relative gain.
//
// Flags: --scale=<f>, --paper-scale, --hidden=<d>, --seed=<s>.
#include <cstdio>

#include "bench_util.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"

int main(int argc, char** argv) {
  using namespace aurora;
  const auto options = bench::parse_figure_options(argc, argv);
  const auto rows = bench::run_comparison(options);
  bench::print_normalized_figure(
      "Figure 9 — normalized execution time (2-layer GCN)", rows,
      [](const core::RunMetrics& m) {
        return static_cast<double>(m.total_cycles);
      });

  // Per-layer breakdown (the paper reports "each layer"): layer 0 reads the
  // sparse input features, layer 1 the dense hidden features.
  std::printf("Aurora per-layer breakdown:\n");
  AsciiTable per_layer({"dataset", "L0 cycles", "L1 cycles", "L0 DRAM",
                        "L1 DRAM", "L0 a:b", "L1 a:b"});
  core::AuroraAccelerator accel(bench::figure_config(options));
  for (graph::DatasetId id : graph::kAllDatasets) {
    const double scale =
        options.scale > 0.0 ? options.scale : bench::default_scale(id);
    const graph::Dataset ds = graph::make_dataset(id, scale, options.seed);
    const auto job = core::GnnJob::two_layer(gnn::GnnModel::kGcn, ds.spec,
                                             options.hidden_dim);
    const auto l0 = accel.run_layer(ds, job.model, job.layers[0], 0);
    const auto l1 = accel.run_layer(ds, job.model, job.layers[1], 1);
    per_layer.add_row(
        {graph::dataset_name(id), std::to_string(l0.total_cycles),
         std::to_string(l1.total_cycles), human_bytes(l0.dram_bytes),
         human_bytes(l1.dram_bytes),
         std::to_string(l0.partition_a) + ":" + std::to_string(l0.partition_b),
         std::to_string(l1.partition_a) + ":" +
             std::to_string(l1.partition_b)});
  }
  per_layer.print();
  return 0;
}
