// Reordering ablation: Aurora's tiling (halo traffic) and sequential
// mapping (hop counts) both assume vertex ids are community-local. This
// bench quantifies that assumption on a raw R-MAT graph vs the same graph
// BFS-renumbered — the preprocessing every real deployment would apply.
//
// Flags: --rmat-scale=<s>, --edges=<m>, --hidden=<d>, --seed=<s>.
#include <cstdio>

#include "bench_util.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "graph/generators.hpp"
#include "graph/reorder.hpp"

int main(int argc, char** argv) {
  using namespace aurora;
  const CliArgs args(argc, argv, {"rmat-scale", "edges", "hidden", "seed"});
  const auto rmat_scale =
      args.get_uint("rmat-scale", 13, 1, 24);
  const auto edges = static_cast<EdgeId>(args.get_uint(
      "edges", static_cast<std::uint32_t>(8u * (1u << rmat_scale)), 1));
  const auto hidden = args.get_uint("hidden", 16, 1);

  Rng rng(args.get_uint("seed", 7));
  graph::RmatParams rp;
  rp.scale = rmat_scale;
  rp.undirected_edges = edges;
  const graph::CsrGraph raw = graph::generate_rmat(rp, rng);
  const graph::CsrGraph bfs =
      graph::apply_order(raw, graph::bfs_order(raw));

  const VertexId window = raw.num_vertices() / 25;
  std::printf("Reordering ablation — R-MAT scale %u (%u vertices, %llu "
              "directed edges)\n",
              rmat_scale, raw.num_vertices(),
              static_cast<unsigned long long>(raw.num_edges()));
  std::printf("locality score (±%u ids): raw %.3f -> BFS %.3f; "
              "mean id distance: %.0f -> %.0f\n\n",
              window, graph::locality_score(raw, window),
              graph::locality_score(bfs, window),
              graph::mean_id_distance(raw), graph::mean_id_distance(bfs));

  core::AuroraConfig cfg = core::AuroraConfig::paper();
  // Shrink the buffer so the graph needs several tiles — the regime where
  // halo traffic matters.
  cfg.pe.bank_buffer_bytes = 16 * 1024;
  core::AuroraAccelerator accel(cfg);

  AsciiTable table({"graph", "tiles", "DRAM", "avg hops", "comm cycles",
                    "total cycles"});
  auto run_one = [&](const char* name, const graph::CsrGraph& g) {
    graph::Dataset ds;
    ds.spec.name = name;
    ds.spec.feature_dim = 256;
    ds.spec.feature_density = 1.0;
    ds.graph = g;
    ds.degree_stats = graph::compute_degree_stats(g);
    const auto m = accel.run_layer(ds, gnn::GnnModel::kGcn, {256, hidden}, 1);
    table.add_row({name, std::to_string(m.num_subgraphs),
                   human_bytes(m.dram_bytes), to_fixed(m.avg_hops, 2),
                   std::to_string(m.onchip_comm_cycles),
                   std::to_string(m.total_cycles)});
    return m;
  };
  const auto raw_m = run_one("raw ids", raw);
  const auto bfs_m = run_one("BFS reordered", bfs);
  table.print();
  std::printf(
      "\nBFS renumbering: %.2fx shorter hops, %.2fx less DRAM, %.2fx "
      "faster.\nHub vertices are neighbors of most tiles, so halo traffic "
      "is less\nsensitive to ordering than hop counts are.\n",
      raw_m.avg_hops / bfs_m.avg_hops,
      static_cast<double>(raw_m.dram_bytes) /
          static_cast<double>(bfs_m.dram_bytes),
      static_cast<double>(raw_m.total_cycles) /
          static_cast<double>(bfs_m.total_cycles));
  return 0;
}
