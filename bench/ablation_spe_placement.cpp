// S_PE placement ablation (the N-Queen choice in Algorithm 1): placing the
// hotspot PEs like non-attacking queens keeps every row/column bypass wire
// serving exactly one hotspot. This bench compares the queen placement
// against same-row clustering and deterministic pseudo-random placements on
// row/column load balance of the aggregation traffic.
//
// Flags: --scale=<f>, --seed=<s>.
#include <cstdio>

#include "bench_util.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "mapping/nqueen.hpp"
#include "mapping/quality.hpp"

namespace {

using namespace aurora;

/// Replace a mapping's S_PE hosting with an arbitrary placement and remap
/// its high-degree vertices accordingly.
mapping::Mapping with_placement(const mapping::Mapping& base,
                                std::vector<noc::Coord> placement) {
  mapping::Mapping m = base;
  m.s_pes = std::move(placement);
  for (std::size_t i = 0; i < m.high_degree_vertices.size(); ++i) {
    const auto& coord = m.s_pes[i % m.s_pes.size()];
    m.vertex_to_pe[m.high_degree_vertices[i]] =
        noc::to_node(coord, m.region.mesh_k);
  }
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv, {"scale", "seed"});
  const double scale = args.get_double("scale", 0.5, 1e-6, 100.0);
  const auto ds = graph::make_dataset(graph::DatasetId::kCora, scale,
                                      args.get_uint("seed", 7));

  mapping::MapperParams params = mapping::MapperParams::square(16);
  params.c_pe_slots = 4;
  params.pe_vertex_slots = 2 * ds.num_vertices() / 256 + 4;
  const auto base =
      mapping::degree_aware_map(ds.graph, 0, ds.num_vertices(), params);

  std::printf("S_PE placement ablation — %s (scale %.2f), 16x16 region, "
              "%zu high-degree vertices\n\n",
              ds.spec.name, scale, base.high_degree_vertices.size());

  AsciiTable table({"placement", "queen-valid", "max row load",
                    "row imbalance", "max PE load", "avg hops"});
  auto evaluate = [&](const char* name, const mapping::Mapping& m) {
    const auto q = mapping::evaluate_mapping(
        ds.graph, 0, ds.num_vertices(), m, mapping::make_bypass_config(m));
    table.add_row({name,
                   mapping::is_valid_queen_placement(m.s_pes) ? "yes" : "no",
                   std::to_string(q.max_row_load),
                   to_fixed(q.row_load_imbalance(), 2),
                   std::to_string(q.max_pe_load), to_fixed(q.avg_hops, 2)});
  };

  // 1. Algorithm 1's N-Queen placement (the baseline mapping already has it).
  evaluate("N-Queen (Alg. 1)", base);

  // 2. All hotspots clustered in one row — the failure mode the paper warns
  //    about ("multiple high-degree vertices on the same row").
  std::vector<noc::Coord> same_row;
  for (std::uint32_t c = 0; c < 16; ++c) same_row.push_back({0, c});
  evaluate("same row", with_placement(base, same_row));

  // 3. A deterministic scatter without the diagonal constraint.
  std::vector<noc::Coord> scatter;
  for (std::uint32_t i = 0; i < 16; ++i) {
    scatter.push_back({(i * 5) % 16, (i * 5) % 16});  // shared diagonals
  }
  evaluate("diagonal scatter", with_placement(base, scatter));

  table.print();
  std::printf(
      "\nThe queen placement matches the scatter on row balance but also\n"
      "keeps columns and diagonals distinct, so each bypass wire serves one\n"
      "hotspot; same-row clustering concentrates the aggregation traffic.\n");
  return 0;
}
