// Design-space exploration: PE-array dimension sweep. Shows how execution
// time, energy and area trade off as the chip scales from 8x8 to 64x64 at a
// fixed workload — and where Aurora's reconfiguration cost (2K-1) sits in
// that picture.
//
// Flags: --scale=<f>, --hidden=<d>, --seed=<s>.
#include <cstdio>

#include "bench_util.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "energy/area_model.hpp"

int main(int argc, char** argv) {
  using namespace aurora;
  const auto options = bench::parse_figure_options(argc, argv);
  const graph::Dataset ds = graph::make_dataset(
      graph::DatasetId::kPubmed,
      options.scale > 0.0 ? options.scale : 1.0, options.seed);
  std::printf("Array-size sweep — 2-layer GCN on %s (%u vertices)\n\n",
              ds.spec.name, ds.num_vertices());

  AsciiTable table({"array", "cycles", "speedup vs 8x8", "energy (mJ)",
                    "area (mm^2)", "reconfig (cyc)", "perf/area"});
  double base_cycles = 0.0;
  double base_perf_per_area = 0.0;
  for (std::uint32_t k : {8u, 16u, 32u, 64u}) {
    core::AuroraConfig cfg = core::AuroraConfig::paper();
    cfg.array_dim = k;
    cfg.noc.k = k;
    core::AuroraAccelerator accel(cfg);
    const auto m = accel.run(
        ds, core::GnnJob::two_layer(gnn::GnnModel::kGcn, ds.spec,
                                    options.hidden_dim));

    energy::AreaParams ap;
    ap.array_dim = k;
    const double area = energy::compute_area(ap).chip_total_mm2;
    const double cycles = static_cast<double>(m.total_cycles);
    const double perf_per_area = 1.0 / (cycles * area);
    if (base_cycles == 0.0) {
      base_cycles = cycles;
      base_perf_per_area = perf_per_area;
    }
    table.add_row({std::to_string(k) + "x" + std::to_string(k),
                   std::to_string(m.total_cycles),
                   to_fixed(base_cycles / cycles, 2) + "x",
                   to_fixed(m.energy.total_mj(), 3), to_fixed(area, 0),
                   std::to_string(cfg.reconfiguration_cycles()),
                   to_fixed(perf_per_area / base_perf_per_area, 2) + "x"});
  }
  table.print();
  std::printf(
      "\nOnce the run is DRAM-bound, more PEs stop helping; perf/area then\n"
      "favors the smaller arrays. Reconfiguration latency (2K-1) stays\n"
      "negligible at every size.\n");
  return 0;
}
