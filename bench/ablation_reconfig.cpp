// Reconfiguration-cost ablation (paper Sec VI-D/VI-E): latency 2K-1 cycles
// (63 for K = 32), heuristics ~100 cycles (both overlapped with compute),
// and reconfiguration energy < 3 % of total.
//
// Flags: --scale=<f>, --hidden=<d>, --seed=<s>.
#include <cstdio>

#include "bench_util.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"

int main(int argc, char** argv) {
  using namespace aurora;
  const auto options = bench::parse_figure_options(argc, argv);

  std::printf("Reconfiguration overhead\n\n");
  std::printf("latency model (2K-1 cycles per reconfiguration):\n");
  AsciiTable lat({"array", "latency (cycles)", "heuristics (cycles)"});
  for (std::uint32_t k : {8u, 16u, 32u, 64u}) {
    core::AuroraConfig cfg;
    cfg.array_dim = k;
    cfg.noc.k = k;
    lat.add_row({std::to_string(k) + "x" + std::to_string(k),
                 std::to_string(cfg.reconfiguration_cycles()),
                 std::to_string(core::AuroraConfig::kHeuristicCycles)});
  }
  lat.print();
  std::printf("paper reference: 63 cycles for the 32x32 array, ~100 cycles "
              "for mapping/partition, all overlapped with compute.\n\n");

  std::printf("per-dataset reconfiguration accounting (2-layer GCN):\n");
  AsciiTable table({"dataset", "reconfigs", "switch writes",
                    "exposed cycles", "share of time", "share of energy"});
  core::AuroraConfig cfg = bench::figure_config(options);
  core::AuroraAccelerator accel(cfg);
  for (graph::DatasetId id : graph::kAllDatasets) {
    const double scale =
        options.scale > 0.0 ? options.scale : bench::default_scale(id);
    const graph::Dataset ds = graph::make_dataset(id, scale, options.seed);
    const auto job = core::GnnJob::two_layer(gnn::GnnModel::kGcn, ds.spec,
                                             options.hidden_dim);
    const auto m = accel.run(ds, job);
    table.add_row(
        {graph::dataset_name(id), std::to_string(m.reconfigurations),
         std::to_string(m.switch_writes),
         std::to_string(m.reconfig_cycles),
         to_fixed(100.0 * static_cast<double>(m.reconfig_cycles) /
                      static_cast<double>(m.total_cycles),
                  2) + " %",
         to_fixed(100.0 * m.energy.reconfig_pj / m.energy.total_pj(), 3) +
             " %"});
  }
  table.print();
  std::printf("\npaper reference: reconfiguration energy < 3 %% of total.\n");
  return 0;
}
