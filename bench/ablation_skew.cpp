// Degree-skew sweep: the degree-aware mapping exists because real graphs
// are power-law. This bench sweeps the generator's Pareto exponent from
// mild to heavy tails and separates the two effects inside Algorithm 1:
// the sequential (locality-preserving) placement of low-degree vertices and
// the S_PE handling of hubs.
//
// Flags: --n=<vertices>, --edges=<m>, --hidden=<d>, --seed=<s>.
#include <cstdio>

#include "bench_util.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "graph/generators.hpp"

int main(int argc, char** argv) {
  using namespace aurora;
  const CliArgs args(argc, argv, {"n", "edges", "hidden", "seed"});
  const auto n = static_cast<VertexId>(args.get_uint("n", 600, 2));
  const auto edges = static_cast<EdgeId>(args.get_uint("edges", 3000, 1));
  const auto hidden = args.get_uint("hidden", 16, 1);
  const auto seed = std::uint64_t{args.get_uint("seed", 7)};

  std::printf("Degree-skew sweep — cycle engine, 16x16 chip, GCN hidden "
              "layer, n=%u m=%llu\n\n",
              n, static_cast<unsigned long long>(2 * edges));

  AsciiTable table({"alpha", "gini", "max degree", "aware cycles",
                    "hash cycles", "speedup"});
  for (const double alpha : {3.5, 2.8, 2.3, 2.0, 1.8}) {
    Rng rng(seed);
    graph::PowerLawParams gp;
    gp.n = n;
    gp.undirected_edges = edges;
    gp.alpha = alpha;
    gp.locality = 0.6;
    graph::Dataset ds;
    ds.spec.name = "synthetic";
    ds.spec.feature_dim = 64;
    ds.spec.feature_density = 1.0;
    ds.graph = graph::generate_power_law(gp, rng);
    ds.degree_stats = graph::compute_degree_stats(ds.graph);

    core::AuroraConfig cfg = core::AuroraConfig::bench();
    core::AuroraAccelerator aware(cfg);
    cfg.mapping_policy = core::MappingPolicy::kHashing;
    core::AuroraAccelerator hashed(cfg);
    const auto ma = aware.run_layer(ds, gnn::GnnModel::kGcn, {64, hidden}, 1);
    const auto mh = hashed.run_layer(ds, gnn::GnnModel::kGcn, {64, hidden}, 1);
    table.add_row({to_fixed(alpha, 1), to_fixed(ds.degree_stats.gini, 2),
                   std::to_string(ds.degree_stats.max_degree),
                   std::to_string(ma.total_cycles),
                   std::to_string(mh.total_cycles),
                   to_fixed(static_cast<double>(mh.total_cycles) /
                                static_cast<double>(ma.total_cycles),
                            2) + "x"});
  }
  table.print();
  std::printf(
      "\nLower alpha = heavier tail. Measured: the advantage is dominated\n"
      "by the locality-preserving sequential placement (hashing scatters\n"
      "neighbors regardless of skew), and shrinks slightly as hubs\n"
      "concentrate more load on the S_PEs — the bypass wires compensate\n"
      "most, but not all, of that concentration.\n");
  return 0;
}
