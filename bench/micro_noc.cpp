// Micro-benchmarks of the flit-level NoC simulator (google-benchmark):
// simulation throughput under uniform-random and hotspot traffic, with and
// without bypass links.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "noc/network.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace aurora;

void run_traffic(noc::Network& net, sim::Simulator& s, std::uint64_t seed,
                 int packets, bool hotspot) {
  Rng rng(seed);
  const auto n = net.num_nodes();
  for (int i = 0; i < packets; ++i) {
    const auto src = static_cast<noc::NodeId>(rng.next_below(n));
    const auto dst = hotspot && rng.next_bool(0.5)
                         ? noc::NodeId{0}
                         : static_cast<noc::NodeId>(rng.next_below(n));
    net.send(src, dst, 128, i, s.now());
  }
  s.run_until_idle(10'000'000);
}

void BM_NocUniformRandom(benchmark::State& state) {
  noc::NocParams params;
  params.k = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    noc::Network net(params);
    sim::Simulator s;
    s.add(&net);
    run_traffic(net, s, 42, 500, /*hotspot=*/false);
    benchmark::DoNotOptimize(net.stats().packets_delivered);
  }
  state.SetItemsProcessed(state.iterations() * 500);
}
BENCHMARK(BM_NocUniformRandom)->Arg(8)->Arg(16);

void BM_NocHotspot(benchmark::State& state) {
  noc::NocParams params;
  params.k = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    noc::Network net(params);
    sim::Simulator s;
    s.add(&net);
    run_traffic(net, s, 42, 500, /*hotspot=*/true);
    benchmark::DoNotOptimize(net.stats().packets_delivered);
  }
  state.SetItemsProcessed(state.iterations() * 500);
}
BENCHMARK(BM_NocHotspot)->Arg(8)->Arg(16);

void BM_NocWithBypass(benchmark::State& state) {
  noc::NocParams params;
  params.k = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    noc::Network net(params);
    noc::NocConfig cfg(params.k);
    for (std::uint32_t r = 0; r < params.k; ++r) {
      cfg.add_row_segment({r, 0, params.k - 1});
    }
    net.configure(cfg);
    sim::Simulator s;
    s.add(&net);
    run_traffic(net, s, 42, 500, /*hotspot=*/false);
    benchmark::DoNotOptimize(net.stats().bypass_flit_hops);
  }
  state.SetItemsProcessed(state.iterations() * 500);
}
BENCHMARK(BM_NocWithBypass)->Arg(8)->Arg(16);

}  // namespace

BENCHMARK_MAIN();
