// Versatility figure (the thesis behind Table I): execution time per GNN
// model category on Aurora vs every baseline. Baselines execute models
// outside their native coverage by host-side decomposition — the unified,
// reconfigurable architecture is what keeps Aurora's line flat across
// categories.
//
// Flags: --scale=<f>, --hidden=<d>, --seed=<s>.
#include <cstdio>

#include "bench_util.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"

int main(int argc, char** argv) {
  using namespace aurora;
  const auto options = bench::parse_figure_options(argc, argv);
  const graph::Dataset ds = graph::make_dataset(
      graph::DatasetId::kCora, options.scale > 0.0 ? options.scale : 1.0,
      options.seed);

  std::printf("Versatility — normalized execution time per model "
              "(Cora, one hidden layer F = H = %u)\n"
              "'(host)' marks models outside the baseline's native coverage "
              "(Table I)\n\n",
              options.hidden_dim * 2);

  std::vector<std::string> header = {"model", "category"};
  for (auto id : baselines::kAllBaselines) {
    header.emplace_back(baselines::baseline_name(id));
  }
  header.emplace_back("Aurora");
  AsciiTable table(std::move(header));

  core::AuroraConfig cfg = bench::figure_config(options);
  core::AuroraAccelerator aurora_accel(cfg);
  const auto chip = bench::figure_chip(options);

  const gnn::LayerConfig layer{2 * options.hidden_dim, options.hidden_dim};
  std::array<double, baselines::kAllBaselines.size()> native_sum{};
  std::array<int, baselines::kAllBaselines.size()> native_count{};
  for (gnn::GnnModel model : gnn::kAllModels) {
    const auto wf = gnn::generate_workflow(model, layer, ds.num_vertices(),
                                           ds.num_edges());
    const auto aurora_m = aurora_accel.run_layer(ds, model, layer, 1);
    std::vector<std::string> cells = {
        gnn::model_name(model),
        gnn::category_name(gnn::model_category(model))};
    for (std::size_t b = 0; b < baselines::kAllBaselines.size(); ++b) {
      const auto accel =
          baselines::make_baseline(baselines::kAllBaselines[b], chip);
      const auto m = accel->run_layer(ds, wf, {});
      const double ratio = static_cast<double>(m.total_cycles) /
                           static_cast<double>(aurora_m.total_cycles);
      const bool native = accel->supports(model);
      cells.push_back(to_fixed(ratio, 2) + (native ? "" : " (host)"));
      if (native) {
        native_sum[b] += ratio;
        ++native_count[b];
      }
    }
    cells.emplace_back("1.00");
    table.add_row(std::move(cells));
  }
  table.print();

  std::printf("\naverage over each baseline's NATIVE models only:\n");
  for (std::size_t b = 0; b < baselines::kAllBaselines.size(); ++b) {
    std::printf("  %-8s %.2fx Aurora (%d/10 models native)\n",
                baselines::baseline_name(baselines::kAllBaselines[b]),
                native_count[b] > 0 ? native_sum[b] / native_count[b] : 0.0,
                native_count[b]);
  }
  return 0;
}
