// Partition ablation (paper Sec V): Algorithm 2's stall-minimising split vs
// fixed resource splits, for every model in the zoo.
//
// Flags: --scale=<f>, --hidden=<d>, --seed=<s>.
#include <cstdio>

#include "bench_util.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "partition/partition.hpp"

int main(int argc, char** argv) {
  using namespace aurora;
  const auto options = bench::parse_figure_options(argc, argv);
  const double scale = options.scale > 0.0 ? options.scale : 1.0;
  const graph::Dataset ds =
      graph::make_dataset(graph::DatasetId::kCora, scale, options.seed);

  std::printf(
      "Partition ablation — Algorithm 2 vs fixed splits "
      "(Cora, hidden layer F = H = 64, 1024 PEs)\n"
      "stage time = max(T_A, T_B); lower is better; util = pipeline "
      "utilisation\n\n");

  AsciiTable table({"model", "alg2 a:b", "alg2 stage", "alg2 util",
                    "25% stage", "50% stage", "75% stage", "best fixed"});
  constexpr std::uint32_t kPes = 1024;
  for (gnn::GnnModel model : gnn::kAllModels) {
    const auto wf = gnn::generate_workflow(model, {64, 64},
                                           ds.num_vertices(), ds.num_edges());
    const auto in =
        partition::partition_input_from_workflow(wf, kPes, 16.0);
    const auto alg2 = partition::partition(in);

    auto stage_at = [&](double frac) {
      if (alg2.single_accelerator) return alg2.stage_time();
      const auto a = static_cast<std::uint32_t>(frac * kPes);
      const double ta = partition::time_sub_a(in, std::max(1u, a));
      const double tb =
          partition::time_sub_b(in, std::max(1u, kPes - a));
      return std::max(ta, tb);
    };
    const double s25 = stage_at(0.25);
    const double s50 = stage_at(0.50);
    const double s75 = stage_at(0.75);
    const double best_fixed = std::min({s25, s50, s75});

    table.add_row(
        {gnn::model_name(model),
         std::to_string(alg2.a) + ":" + std::to_string(alg2.b),
         to_fixed(alg2.stage_time(), 1),
         to_fixed(100.0 * alg2.utilization(), 1) + " %",
         to_fixed(s25, 1), to_fixed(s50, 1), to_fixed(s75, 1),
         to_fixed(best_fixed / std::max(1e-9, alg2.stage_time()), 2) + "x"});
  }
  table.print();
  std::printf(
      "\n'best fixed' is the best of the three fixed splits relative to "
      "Algorithm 2\n(>= 1.00x means Algorithm 2 is at least as good).\n");
  return 0;
}
