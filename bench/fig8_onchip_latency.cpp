// Figure 8: on-chip communication latency of the baselines and Aurora.
//
// Paper reference values (average on-chip latency reduction per dataset):
//   Cora 75 %, Citeseer 87 %, Pubmed 50 %, Nell 68 %, Reddit 64 %.
//
// Flags: --scale=<f>, --paper-scale, --hidden=<d>, --seed=<s>.
#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace aurora;
  const auto options = bench::parse_figure_options(argc, argv);
  const auto rows = bench::run_comparison(options);
  bench::print_normalized_figure(
      "Figure 8 — on-chip communication latency (2-layer GCN)", rows,
      [](const core::RunMetrics& m) {
        return static_cast<double>(m.onchip_comm_cycles);
      });
  return 0;
}
