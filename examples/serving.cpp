// Social-recommendation serving (one of the paper's motivating domains): a
// mix of C-GNN, A-GNN and MP-GNN inference requests against one user-item
// graph, sharing the array with per-request partition and NoC
// reconfiguration.
//
// Two serving modes:
//
//   * Closed loop (default): a fixed queue of --requests requests replayed
//     back to back, as a capacity benchmark.
//   * Open loop (--arrival=poisson|bursty|diurnal): requests arrive on
//     their own clock from a seed-deterministic arrival process, pass an
//     admission-controlled queue (EDF within priority classes, per-tenant
//     fairness), are coalesced into configuration-compatible batches, and
//     report goodput under SLO, shed rate and the queue-wait vs
//     service-time split behind each latency percentile.
//
// With --chips=N > 1 the queue is served by an Aurora cluster:
//   --mode=data   replicate the graph, least-loaded dispatch (throughput);
//   --mode=shard  shard the graph, every request runs on all chips
//                 cooperating through the inter-chip link (latency).
//
//   ./examples/serving [--scale=0.1] [--requests=6] [--hidden=32]
//                      [--chips=2] [--mode=data|shard] [--parallel-sim]
//                      [--jobs=N]
//   ./examples/serving --arrival=poisson --rate=200000 --slo-us=400
//                      [--seed=1] [--queue-depth=64] [--max-batch=4]
//                      [--tenants=2] [--burst-mult=8] [--burst-frac=0.1]
//                      [--period-us=2000] [--amplitude=0.8]
//                      [--serving-out=report.json]
//
// Dynamic-graph serving (--dynamic): interleaves streaming graph mutations
// with neighbor-sampled mini-batch queries on one arrival clock — the
// recommendation graph churns while being served. --churn sets the
// mutation fraction, --insert-frac the insert/delete split, --fanout the
// per-layer sample caps (CSV, 0 = all), --batch-seeds the seed vertices
// per query; with --chips >= 2 the shard plan is recut when churn drifts
// the cut past --reshard-threshold.
//
//   ./examples/serving --dynamic --churn=0.5 --fanout=10,5
//                      [--batch-seeds=4] [--insert-frac=0.7]
//                      [--reshard-threshold=0.2] [--chips=4] [--rate=...]
//
// Fault injection (open loop): --faults=<seed> makes chips fail-stop on a
// seed-deterministic MTBF clock (--mtbf-us, default 400) and recover after
// --mttr-us (default 60; 0 = fail-stop forever). Failed requests retry with
// capped exponential backoff (--max-retries, default 3) on surviving chips;
// --proactive-shed (on by default with faults) drops queued requests whose
// SLO already expired. The report gains an availability section.
//
// Observability flags (all paths):
//   --trace-out=<path>     write a Chrome/Perfetto trace JSON
//   --metrics-out=<path>   write the per-request metrics JSON report
//   --critpath             print the critical-path attribution table
//   --critpath-out=<path>  write the critical-path report JSON
//   --what-if=<spec>       what-if scenarios, e.g. "link_bw=2x;noc_bw=2x"
//   --allow-truncated-trace  analyze an overflowed trace's suffix anyway
#include <algorithm>
#include <array>
#include <cstdio>
#include <optional>
#include <sstream>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cluster/cluster_scheduler.hpp"
#include "common/cli.hpp"
#include "common/error.hpp"
#include "common/stats.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "core/aurora.hpp"
#include "core/report.hpp"
#include "core/scheduler.hpp"
#include "profile/critpath.hpp"
#include "serving/serving_engine.hpp"
#include "sim/perfetto.hpp"
#include "sim/trace.hpp"
#include "workload/dynamic_graph.hpp"
#include "workload/workload_gen.hpp"

namespace {

using namespace aurora;

void print_latency_percentiles(const std::vector<Cycle>& latencies,
                               double frequency_mhz) {
  std::vector<double> samples;
  samples.reserve(latencies.size());
  for (const Cycle l : latencies) samples.push_back(static_cast<double>(l));
  const auto us = [&](double cycles) { return cycles / frequency_mhz; };
  std::printf("latency percentiles over %zu request(s): "
              "p50 %.2f us, p95 %.2f us, p99 %.2f us\n",
              latencies.size(), us(percentile(samples, 0.50)),
              us(percentile(samples, 0.95)), us(percentile(samples, 0.99)));
}

/// Shared tail of all serving paths: truncation warning, critical-path
/// analysis (table + JSON + counters merged into the last request), the
/// Perfetto trace and the metrics report. Returns a process exit code.
int emit_observability(const CliArgs& args, const sim::Tracer& tracer,
                       std::vector<core::NamedRun>& runs) {
  if (tracer.enabled() && tracer.dropped() > 0) {
    std::fprintf(stderr,
                 "WARNING: trace ring buffer overflowed, %llu records "
                 "dropped — raise the tracer capacity or shrink the "
                 "workload\n",
                 static_cast<unsigned long long>(tracer.dropped()));
  }
  // Published unconditionally: a truncated trace taints every downstream
  // artifact, not just runs without --critpath (which used to silently
  // drop this counter from the metrics report).
  if (tracer.enabled() && !runs.empty()) {
    runs.back().metrics.counters.inc("trace.dropped_records",
                                     tracer.dropped());
  }
  const std::string critpath_out = args.get_string("critpath-out", "");
  const bool critpath =
      args.get_bool("critpath", false) || !critpath_out.empty();
  if (critpath) {
    profile::AnalyzeOptions opts;
    opts.allow_truncated = args.get_bool("allow-truncated-trace", false);
    const std::string what_if = args.get_string("what-if", "");
    opts.scenarios = what_if.empty()
                         ? profile::default_what_if_scenarios()
                         : profile::parse_what_if_list(what_if);
    profile::CritPathReport report;
    try {
      report = profile::analyze_critical_path(tracer, opts);
    } catch (const Error& e) {
      std::fprintf(stderr, "critical-path analysis failed: %s\n", e.what());
      return 1;
    }
    if (!runs.empty()) {
      profile::export_critpath_counters(report,
                                        runs.back().metrics.counters);
    }
    std::printf("\n%s", profile::format_attribution_table(report).c_str());
    if (!critpath_out.empty()) {
      core::write_json_file(critpath_out,
                            profile::critpath_report_json(report));
      std::printf("critical-path JSON: %s\n", critpath_out.c_str());
    }
  }
  const std::string trace_out = args.get_string("trace-out", "");
  if (!trace_out.empty()) {
    sim::write_perfetto_trace(trace_out, tracer);
    std::printf("\nPerfetto trace: %s (open in ui.perfetto.dev)\n",
                trace_out.c_str());
  }
  const std::string metrics_out = args.get_string("metrics-out", "");
  if (!metrics_out.empty()) {
    core::write_json_file(metrics_out, core::runs_to_json(runs));
    std::printf("metrics JSON: %s\n", metrics_out.c_str());
  }
  return 0;
}

/// Dynamic-graph serving (--dynamic): one seed-deterministic event stream
/// interleaves graph mutations (edge/vertex churn applied to a DynamicGraph
/// overlay, --churn of all events) with inference queries (GraphSAGE-style
/// neighbor-sampled mini-batches drawn against the graph as of the query's
/// arrival cycle), then replays the queries through the serving engine.
/// With --chips >= 2 every mutation also updates the shard churn tracker
/// and the graph is recut when the cut drifts past --reshard-threshold.
int run_dynamic(const CliArgs& args, const core::AuroraConfig& config,
                const graph::Dataset& graph_ds, std::uint32_t hidden,
                const cluster::ClusterParams& cluster_params,
                cluster::DispatchMode mode, sim::Tracer& tracer) {
  workload::DynamicWorkloadParams wp;
  const double rate_rps = args.get_double("rate", 100000.0, 1e-3, 1e12);
  wp.arrival.rate_per_mcycle = rate_rps / config.frequency_mhz;
  wp.seed = args.get_uint("seed", 1);
  wp.num_ops = args.get_uint("requests", 24, 1) * 2;
  wp.mutation_fraction = args.get_double("churn", 0.5, 0.0, 1.0);
  wp.insert_fraction = args.get_double("insert-frac", 0.7, 0.0, 1.0);
  wp.num_seeds = args.get_uint("batch-seeds", 4, 1);
  wp.num_tenants = args.get_uint("tenants", 2, 1);
  const double slo_us = args.get_double("slo-us", 0.0, 0.0, 1e9);
  wp.slo_cycles = static_cast<Cycle>(slo_us * config.frequency_mhz);
  wp.num_chips = cluster_params.num_chips;
  wp.reshard_threshold = args.get_double("reshard-threshold", 0.2, 0.0, 1e3);

  // --fanout=10,5 sets the per-layer neighbor caps (0 = take all).
  wp.sampler.seed = wp.seed * 31 + 7;
  const std::string fanout_csv = args.get_string("fanout", "10,5");
  wp.sampler.fanouts.clear();
  std::string cell;
  std::istringstream fanouts(fanout_csv);
  while (std::getline(fanouts, cell, ',')) {
    try {
      wp.sampler.fanouts.push_back(
          static_cast<std::uint32_t>(std::stoul(cell)));
    } catch (const std::exception&) {
      std::fprintf(stderr, "bad --fanout entry '%s' (want e.g. 10,5)\n",
                   cell.c_str());
      return 1;
    }
  }
  if (wp.sampler.fanouts.empty()) {
    std::fprintf(stderr, "--fanout needs at least one layer\n");
    return 1;
  }

  const core::GnnJob job =
      core::GnnJob::two_layer(gnn::GnnModel::kGcn, graph_ds.spec, hidden);
  workload::DynamicGraph dyn(graph_ds.graph);
  const workload::WorkloadGenerator gen(wp);
  const workload::DynamicWorkload wl =
      gen.generate(dyn, graph_ds, job, tracer.enabled() ? &tracer : nullptr);

  serving::ServingParams params;
  params.seed = wp.seed;
  params.queue_depth = args.get_uint("queue-depth", 64);
  params.max_batch = args.get_uint("max-batch", 4, 1);
  params.slo_cycles = wp.slo_cycles;
  params.mode = mode;
  serving::ServingEngine engine(config, cluster_params, params);
  if (tracer.enabled()) engine.set_tracer(&tracer);
  const serving::ServingReport report = engine.replay(graph_ds, wl.queries);

  // Request ids are event-stream indices (mutations interleave), not
  // positions in wl.queries — map them back for the batch-size columns.
  std::unordered_map<std::uint64_t, const serving::ServingRequest*> by_id;
  for (const auto& q : wl.queries) by_id.emplace(q.id, &q);

  AsciiTable table({"query", "chip", "batch |V|", "batch |E|", "arrival",
                    "wait (us)", "service (us)", "SLO"});
  const auto us = [&](Cycle cycles) {
    return to_fixed(static_cast<double>(cycles) / config.frequency_mhz, 2);
  };
  for (const auto& r : report.served) {
    const serving::ServingRequest& q = *by_id.at(r.id);
    const std::string chip_cell =
        mode == cluster::DispatchMode::kShardParallel ? "all"
                                                      : std::to_string(r.chip);
    table.add_row({r.label + (r.batched_follower ? " (batched)" : ""),
                   chip_cell, std::to_string(q.dataset->num_vertices()),
                   std::to_string(q.dataset->num_edges()),
                   std::to_string(r.arrival), us(r.queue_wait()),
                   us(r.service_time()),
                   params.slo_cycles == 0 ? "-" : (r.met_slo() ? "ok" : "MISS")});
  }
  table.print();

  const auto& s = wl.stats;
  std::printf("\ndynamic workload: %llu mutation(s) (%llu edge+, %llu "
              "edge-, %llu vertex+, %llu vertex-), %llu query(ies)\n",
              static_cast<unsigned long long>(s.mutations),
              static_cast<unsigned long long>(s.edge_adds),
              static_cast<unsigned long long>(s.edge_removes),
              static_cast<unsigned long long>(s.vertex_adds),
              static_cast<unsigned long long>(s.vertex_removes),
              static_cast<unsigned long long>(s.queries));
  std::printf("graph: %u -> %u vertices, %llu -> %llu edges; %llu "
              "compaction(s)\n",
              graph_ds.num_vertices(), s.final_vertices,
              static_cast<unsigned long long>(graph_ds.num_edges()),
              static_cast<unsigned long long>(s.final_edges),
              static_cast<unsigned long long>(s.compactions));
  if (wp.num_chips >= 2) {
    std::printf("sharding: %llu reshard(s); final cut %llu edge(s) "
                "(planned %llu)\n",
                static_cast<unsigned long long>(s.reshards),
                static_cast<unsigned long long>(s.final_cut_edges),
                static_cast<unsigned long long>(s.planned_cut_edges));
  }
  const auto pct_us = [&](double cycles) {
    return cycles / config.frequency_mhz;
  };
  std::printf("latency    p50 %.2f us, p95 %.2f us, p99 %.2f us\n",
              pct_us(report.latency_percentile(0.50)),
              pct_us(report.latency_percentile(0.95)),
              pct_us(report.latency_percentile(0.99)));
  if (params.slo_cycles > 0) {
    std::printf("goodput under %.0f us SLO: %llu/%llu queries\n", slo_us,
                static_cast<unsigned long long>(report.met_slo_count()),
                static_cast<unsigned long long>(report.generated));
  }

  const std::string serving_out = args.get_string("serving-out", "");
  if (!serving_out.empty()) {
    core::write_json_file(serving_out, serving::serving_report_json(report));
    std::printf("serving JSON: %s\n", serving_out.c_str());
  }
  std::vector<core::NamedRun> runs;
  for (const auto& r : report.served) {
    runs.push_back({"dynamic", r.label, r.metrics});
  }
  if (!runs.empty()) {
    runs.back().metrics.counters.merge(report.counters());
  }
  return emit_observability(args, tracer, runs);
}

/// Open-loop serving: arrival process -> admission -> batching -> dispatch.
int run_open_loop(const CliArgs& args, const core::AuroraConfig& config,
                  const graph::Dataset& graph_ds,
                  const std::vector<serving::ModelMixEntry>& mix,
                  const cluster::ClusterParams& cluster_params,
                  cluster::DispatchMode mode, sim::Tracer& tracer) {
  const std::string arrival_name = args.get_string("arrival", "poisson");
  const auto kind = serving::arrival_kind_by_name(arrival_name);
  if (!kind.has_value()) {
    std::fprintf(stderr,
                 "unknown --arrival=%s (accepted: poisson, bursty, "
                 "diurnal)\n",
                 arrival_name.c_str());
    return 1;
  }

  serving::ServingParams params;
  params.arrival.kind = *kind;
  // --rate is requests per second; the process wants requests per Mcycle.
  const double rate_rps = args.get_double("rate", 100000.0, 1e-3, 1e12);
  params.arrival.rate_per_mcycle = rate_rps / config.frequency_mhz;
  params.arrival.burst_rate_multiplier =
      args.get_double("burst-mult", 8.0, 1.0, 1e6);
  params.arrival.burst_fraction = args.get_double("burst-frac", 0.1, 0.0, 1.0);
  params.arrival.period_mcycles =
      args.get_double("period-us", 2000.0, 1e-3, 1e9) * config.frequency_mhz /
      1e6;
  params.arrival.amplitude = args.get_double("amplitude", 0.8, 0.0, 1.0);
  params.seed = args.get_uint("seed", 1);
  params.num_requests = args.get_uint("requests", 24, 1);
  params.queue_depth = args.get_uint("queue-depth", 64);
  params.max_batch = args.get_uint("max-batch", 4, 1);
  params.num_tenants = args.get_uint("tenants", 2, 1);
  const double slo_us = args.get_double("slo-us", 0.0, 0.0, 1e9);
  params.slo_cycles = static_cast<Cycle>(slo_us * config.frequency_mhz);
  params.mode = mode;

  // --faults=<seed> switches on seed-deterministic chip fault injection:
  // chips fail per an exponential MTBF clock and (with --mttr-us > 0)
  // recover; the engine retries failed requests with capped exponential
  // backoff and, under --proactive-shed (on by default with faults), drops
  // queued requests whose SLO already expired.
  const bool faults_on = args.has("faults");
  if (faults_on) {
    params.faults.seed =
        args.get_string("faults", "") == "true" ? 1 : args.get_uint("faults", 1);
    const double mtbf_us = args.get_double("mtbf-us", 400.0, 0.1, 1e9);
    const double mttr_us = args.get_double("mttr-us", 60.0, 0.0, 1e9);
    params.faults.chip_mtbf = mtbf_us * config.frequency_mhz;
    params.faults.chip_mttr = mttr_us * config.frequency_mhz;
    // Fault horizon: the expected arrival window with generous headroom for
    // queueing and retries (the plan is inert past its horizon).
    const double expected_cycles = static_cast<double>(params.num_requests) /
                                   rate_rps * config.frequency_mhz * 1e6;
    params.faults.horizon =
        static_cast<Cycle>(expected_cycles * 8.0) + 1000000;
  }
  params.max_retries = args.get_uint("max-retries", 3);
  params.proactive_shedding = args.get_bool("proactive-shed", faults_on);

  serving::ServingEngine engine(config, cluster_params, params);
  if (tracer.enabled()) engine.set_tracer(&tracer);
  const serving::ServingReport report = engine.run(graph_ds, mix);

  AsciiTable table({"request", "tenant", "chip", "arrival", "start",
                    "finish", "wait (us)", "service (us)", "SLO"});
  const auto us = [&](Cycle cycles) {
    return to_fixed(static_cast<double>(cycles) / config.frequency_mhz, 2);
  };
  for (const auto& r : report.served) {
    const std::string chip_cell =
        mode == cluster::DispatchMode::kShardParallel ? "all"
                                                      : std::to_string(r.chip);
    table.add_row({r.label + (r.batched_follower ? " (batched)" : ""),
                   std::to_string(r.tenant), chip_cell,
                   std::to_string(r.arrival), std::to_string(r.start),
                   std::to_string(r.finish), us(r.queue_wait()),
                   us(r.service_time()),
                   params.slo_cycles == 0 ? "-" : (r.met_slo() ? "ok" : "MISS")});
  }
  table.print();

  std::printf("\n%s arrivals at %.0f req/s over %u chip(s), %s dispatch\n",
              serving::arrival_kind_name(*kind), rate_rps,
              cluster_params.num_chips,
              cluster::dispatch_mode_name(mode));
  std::printf("generated %llu, admitted %llu, shed %llu (shed rate %.1f%%)\n",
              static_cast<unsigned long long>(report.generated),
              static_cast<unsigned long long>(report.admitted),
              static_cast<unsigned long long>(report.shed),
              100.0 * report.shed_rate());
  if (params.slo_cycles > 0) {
    std::printf("goodput under %.0f us SLO: %llu/%llu requests (%.0f req/s)\n",
                slo_us,
                static_cast<unsigned long long>(report.met_slo_count()),
                static_cast<unsigned long long>(report.generated),
                report.goodput_rps());
  }
  const auto pct_us = [&](double cycles) {
    return cycles / config.frequency_mhz;
  };
  std::printf("latency    p50 %.2f us, p95 %.2f us, p99 %.2f us\n",
              pct_us(report.latency_percentile(0.50)),
              pct_us(report.latency_percentile(0.95)),
              pct_us(report.latency_percentile(0.99)));
  std::printf("queue wait p50 %.2f us, p95 %.2f us, p99 %.2f us\n",
              pct_us(report.queue_wait_percentile(0.50)),
              pct_us(report.queue_wait_percentile(0.95)),
              pct_us(report.queue_wait_percentile(0.99)));
  std::printf("service    p50 %.2f us, p95 %.2f us, p99 %.2f us\n",
              pct_us(report.service_percentile(0.50)),
              pct_us(report.service_percentile(0.95)),
              pct_us(report.service_percentile(0.99)));
  std::printf("batches %llu (%llu batched follower(s), %llu reconfig "
              "cycles saved); overlap hid %llu cycles\n",
              static_cast<unsigned long long>(report.batches),
              static_cast<unsigned long long>(report.batched_followers),
              static_cast<unsigned long long>(report.reconfig_savings),
              static_cast<unsigned long long>(report.overlap_savings));
  if (faults_on || report.failed_attempts > 0 || report.shed_expired > 0) {
    std::printf("availability: %llu failed attempt(s), %llu retry(ies), "
                "%llu failed over, %llu failed permanently\n",
                static_cast<unsigned long long>(report.failed_attempts),
                static_cast<unsigned long long>(report.retries),
                static_cast<unsigned long long>(report.failed_over),
                static_cast<unsigned long long>(report.failed_permanently));
    std::printf("              %llu shed expired (proactive), %llu shard "
                "fallback(s); completed %zu/%llu admitted\n",
                static_cast<unsigned long long>(report.shed_expired),
                static_cast<unsigned long long>(report.shard_fallbacks),
                report.served.size(),
                static_cast<unsigned long long>(report.admitted));
  }

  const std::string serving_out = args.get_string("serving-out", "");
  if (!serving_out.empty()) {
    core::write_json_file(serving_out, serving::serving_report_json(report));
    std::printf("serving JSON: %s\n", serving_out.c_str());
  }

  std::vector<core::NamedRun> runs;
  for (const auto& r : report.served) {
    runs.push_back({cluster::dispatch_mode_name(mode), r.label, r.metrics});
  }
  if (!runs.empty()) {
    // The serving-level counters ride the last run so --metrics-out and
    // downstream grids see them next to the per-request metrics.
    runs.back().metrics.counters.merge(report.counters());
  }
  return emit_observability(args, tracer, runs);
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(
      argc, argv,
      {"scale", "requests", "hidden", "chips", "mode", "parallel-sim",
       "jobs", "arrival", "rate", "slo-us", "seed", "queue-depth",
       "max-batch", "tenants", "burst-mult", "burst-frac", "period-us",
       "amplitude", "faults", "mtbf-us", "mttr-us", "max-retries",
       "proactive-shed", "serving-out", "trace-out", "metrics-out",
       "critpath", "critpath-out", "what-if", "allow-truncated-trace",
       "dynamic", "churn", "insert-frac", "fanout", "batch-seeds",
       "reshard-threshold"});
  const double scale = args.get_double("scale", 0.1, 1e-6, 100.0);
  const std::uint32_t hidden = args.get_uint("hidden", 32, 1);
  const auto num_requests =
      static_cast<std::size_t>(args.get_uint("requests", 6, 1));
  const std::uint32_t chips = args.get_uint("chips", 1, 1);
  const std::string mode_arg = args.get_string("mode", "data");
  const cluster::DispatchMode mode =
      mode_arg == "shard" ? cluster::DispatchMode::kShardParallel
                          : cluster::DispatchMode::kDataParallel;

  // The "user-item interaction graph": Pubmed-scale structure stands in.
  const graph::Dataset graph_ds =
      graph::make_dataset(graph::DatasetId::kPubmed, scale);
  std::printf("serving on a %u-vertex interaction graph (%llu edges), "
              "%u chip(s)\n\n",
              graph_ds.num_vertices(),
              static_cast<unsigned long long>(graph_ds.num_edges()), chips);

  core::AuroraConfig config = core::AuroraConfig::bench();

  // A request mix: candidate scoring (GCN), re-ranking with attention
  // (AGNN), and a session-graph pass (GraphSAGE-Pool).
  const std::array<std::pair<gnn::GnnModel, const char*>, 3> kMix = {{
      {gnn::GnnModel::kGcn, "candidate-scoring/GCN"},
      {gnn::GnnModel::kAgnn, "re-ranking/AGNN"},
      {gnn::GnnModel::kGraphSagePool, "session/SAGE-Pool"},
  }};

  sim::Tracer tracer;
  if (!args.get_string("trace-out", "").empty() ||
      !args.get_string("critpath-out", "").empty() ||
      args.get_bool("critpath", false)) {
    tracer.enable();
  }

  cluster::ClusterParams params;
  params.num_chips = chips;
  // --parallel-sim runs each shard-parallel inference on the multi-threaded
  // conservative engine (bit-identical results, lower wall clock on
  // multi-core hosts); --jobs caps its worker threads.
  params.parallel = args.get_bool("parallel-sim", false);
  params.parallel_jobs = args.get_uint("jobs", 0);

  if (args.get_bool("dynamic", false)) {
    return run_dynamic(args, config, graph_ds, hidden, params, mode, tracer);
  }

  if (args.has("arrival")) {
    std::vector<serving::ModelMixEntry> mix;
    for (const auto& [model, label] : kMix) {
      mix.push_back({core::GnnJob::two_layer(model, graph_ds.spec, hidden),
                     std::string(label), 1.0, 0});
    }
    return run_open_loop(args, config, graph_ds, mix, params, mode, tracer);
  }

  // Closed loop: a fixed round-robin queue replayed back to back.
  std::vector<core::ScheduledRequest> queue;
  for (std::size_t i = 0; i < num_requests; ++i) {
    const auto& [model, label] = kMix[i % kMix.size()];
    queue.push_back({core::GnnJob::two_layer(model, graph_ds.spec, hidden),
                     std::string(label) + " #" + std::to_string(i)});
  }

  std::vector<Cycle> latencies;
  if (chips <= 1) {
    core::AuroraAccelerator accel(config);
    if (tracer.enabled()) accel.set_tracer(&tracer);
    core::Scheduler scheduler(accel);
    const core::ScheduleResult result = scheduler.run(graph_ds, queue);

    AsciiTable table({"request", "start", "finish", "latency (us)",
                      "a:b split", "energy (uJ)"});
    for (const auto& o : result.outcomes) {
      latencies.push_back(o.latency());
      table.add_row({o.label, std::to_string(o.start_cycle),
                     std::to_string(o.finish_cycle),
                     to_fixed(1e6 * static_cast<double>(o.latency()) /
                                  (config.frequency_mhz * 1e6),
                              2),
                     std::to_string(o.metrics.partition_a) + ":" +
                         std::to_string(o.metrics.partition_b),
                     to_fixed(o.metrics.energy.total_pj() * 1e-6, 1)});
    }
    table.print();
    std::printf("\nmakespan: %llu cycles (%.2f us); overlap saved %llu "
                "cycles; avg latency %.0f cycles\n",
                static_cast<unsigned long long>(result.makespan),
                1e6 * static_cast<double>(result.makespan) /
                    (config.frequency_mhz * 1e6),
                static_cast<unsigned long long>(result.overlap_savings),
                result.avg_latency());
    print_latency_percentiles(latencies, config.frequency_mhz);
    std::printf("Each request reconfigured the same silicon: compare the "
                "a:b splits.\n");
    std::vector<core::NamedRun> runs;
    for (const auto& o : result.outcomes) {
      runs.push_back({"aurora", o.label, o.metrics});
    }
    return emit_observability(args, tracer, runs);
  }

  cluster::ClusterScheduler scheduler(config, params);
  if (tracer.enabled()) scheduler.set_tracer(&tracer);
  const cluster::ClusterScheduleResult result =
      scheduler.run(graph_ds, queue, mode);

  AsciiTable table({"request", "chip", "start", "finish", "latency (us)",
                    "halo (KiB)"});
  for (const auto& o : result.outcomes) {
    latencies.push_back(o.latency());
    const std::string chip_cell =
        result.mode == cluster::DispatchMode::kShardParallel
            ? "all"
            : std::to_string(o.chip);
    table.add_row(
        {o.label, chip_cell, std::to_string(o.start_cycle),
         std::to_string(o.finish_cycle),
         to_fixed(1e6 * static_cast<double>(o.latency()) /
                      (config.frequency_mhz * 1e6),
                  2),
         to_fixed(static_cast<double>(
                      o.metrics.counters.get("cluster.halo_bytes_sent")) /
                      1024.0,
                  1)});
  }
  table.print();
  std::printf("\n%s over %u chips — makespan: %llu cycles (%.2f us); "
              "overlap saved %llu cycles; avg latency %.0f cycles\n",
              dispatch_mode_name(result.mode), chips,
              static_cast<unsigned long long>(result.makespan),
              1e6 * static_cast<double>(result.makespan) /
                  (config.frequency_mhz * 1e6),
              static_cast<unsigned long long>(result.overlap_savings),
              result.avg_latency());
  print_latency_percentiles(latencies, config.frequency_mhz);
  std::vector<core::NamedRun> runs;
  for (const auto& o : result.outcomes) {
    runs.push_back({dispatch_mode_name(result.mode), o.label, o.metrics});
  }
  return emit_observability(args, tracer, runs);
}
