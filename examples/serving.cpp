// Social-recommendation serving (one of the paper's motivating domains): a
// queue of mixed-model inference requests against one user-item graph,
// scheduled on a single Aurora chip. Shows the versatility story end to
// end — C-GNN, A-GNN and MP-GNN requests share the array, each getting its
// own partition and NoC configuration — plus the request-level latencies a
// serving deployment reports.
//
//   ./examples/serving [--scale=0.1] [--requests=6] [--hidden=32]
#include <cstdio>

#include "common/cli.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "core/aurora.hpp"
#include "core/scheduler.hpp"

int main(int argc, char** argv) {
  using namespace aurora;
  const CliArgs args(argc, argv);
  const double scale = args.get_double("scale", 0.1);
  const auto hidden = static_cast<std::uint32_t>(args.get_int("hidden", 32));
  const auto num_requests =
      static_cast<std::size_t>(args.get_int("requests", 6));

  // The "user-item interaction graph": Pubmed-scale structure stands in.
  const graph::Dataset graph_ds =
      graph::make_dataset(graph::DatasetId::kPubmed, scale);
  std::printf("serving on a %u-vertex interaction graph (%llu edges)\n\n",
              graph_ds.num_vertices(),
              static_cast<unsigned long long>(graph_ds.num_edges()));

  core::AuroraConfig config = core::AuroraConfig::bench();
  core::AuroraAccelerator accel(config);
  core::Scheduler scheduler(accel);

  // A request mix: candidate scoring (GCN), re-ranking with attention
  // (AGNN), and a session-graph pass (GraphSAGE-Pool), round-robin.
  const std::array<std::pair<gnn::GnnModel, const char*>, 3> kMix = {{
      {gnn::GnnModel::kGcn, "candidate-scoring/GCN"},
      {gnn::GnnModel::kAgnn, "re-ranking/AGNN"},
      {gnn::GnnModel::kGraphSagePool, "session/SAGE-Pool"},
  }};
  std::vector<core::ScheduledRequest> queue;
  for (std::size_t i = 0; i < num_requests; ++i) {
    const auto& [model, label] = kMix[i % kMix.size()];
    queue.push_back({core::GnnJob::two_layer(model, graph_ds.spec, hidden),
                     std::string(label) + " #" + std::to_string(i)});
  }

  const core::ScheduleResult result = scheduler.run(graph_ds, queue);

  AsciiTable table({"request", "start", "finish", "latency (us)",
                    "a:b split", "energy (uJ)"});
  for (const auto& o : result.outcomes) {
    table.add_row({o.label, std::to_string(o.start_cycle),
                   std::to_string(o.finish_cycle),
                   to_fixed(1e6 * static_cast<double>(o.latency()) /
                                (config.frequency_mhz * 1e6),
                            2),
                   std::to_string(o.metrics.partition_a) + ":" +
                       std::to_string(o.metrics.partition_b),
                   to_fixed(o.metrics.energy.total_pj() * 1e-6, 1)});
  }
  table.print();
  std::printf("\nmakespan: %llu cycles (%.2f us); overlap saved %llu cycles; "
              "avg latency %.0f cycles\n",
              static_cast<unsigned long long>(result.makespan),
              1e6 * static_cast<double>(result.makespan) /
                  (config.frequency_mhz * 1e6),
              static_cast<unsigned long long>(result.overlap_savings),
              result.avg_latency());
  std::printf(
      "Each request reconfigured the same silicon: compare the a:b splits.\n");
  return 0;
}
