// Social-recommendation serving (one of the paper's motivating domains): a
// queue of mixed-model inference requests against one user-item graph.
// Shows the versatility story end to end — C-GNN, A-GNN and MP-GNN requests
// share the array, each getting its own partition and NoC configuration —
// plus the request-level latency distribution a serving deployment reports
// (p50/p95/p99).
//
// With --chips=N > 1 the queue is served by an Aurora cluster instead:
//   --mode=data   replicate the graph, least-loaded dispatch (throughput);
//   --mode=shard  shard the graph, every request runs on all chips
//                 cooperating through the inter-chip link (latency).
//
//   ./examples/serving [--scale=0.1] [--requests=6] [--hidden=32]
//                      [--chips=2] [--mode=data|shard]
//
// Observability flags (both single-chip and cluster serving):
//   --trace-out=<path>     write a Chrome/Perfetto trace JSON
//   --metrics-out=<path>   write the per-request metrics JSON report
//   --critpath             print the critical-path attribution table
//   --critpath-out=<path>  write the critical-path report JSON
//   --what-if=<spec>       what-if scenarios, e.g. "link_bw=2x;noc_bw=2x"
//   --allow-truncated-trace  analyze an overflowed trace's suffix anyway
#include <algorithm>
#include <array>
#include <cstdio>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "cluster/cluster_scheduler.hpp"
#include "common/cli.hpp"
#include "common/error.hpp"
#include "common/stats.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "core/aurora.hpp"
#include "core/report.hpp"
#include "core/scheduler.hpp"
#include "profile/critpath.hpp"
#include "sim/perfetto.hpp"
#include "sim/trace.hpp"

namespace {

using namespace aurora;

void print_latency_percentiles(const std::vector<Cycle>& latencies,
                               double frequency_mhz) {
  // Self-scaling histogram: ~1k-cycle resolution over the observed range.
  Cycle max_latency = 1;
  for (const Cycle l : latencies) max_latency = std::max(max_latency, l);
  const double bucket =
      std::max(1.0, static_cast<double>(max_latency) / 1024.0);
  Histogram hist(bucket, 1100);
  for (const Cycle l : latencies) hist.add(static_cast<double>(l));
  const auto us = [&](double cycles) {
    return 1e6 * cycles / (frequency_mhz * 1e6);
  };
  std::printf("latency percentiles over %zu request(s): "
              "p50 %.2f us, p95 %.2f us, p99 %.2f us\n",
              latencies.size(), us(hist.quantile(0.50)),
              us(hist.quantile(0.95)), us(hist.quantile(0.99)));
}

/// Shared tail of both serving paths: truncation warning, critical-path
/// analysis (table + JSON + counters merged into the last request), the
/// Perfetto trace and the metrics report. Returns a process exit code.
int emit_observability(const CliArgs& args, const sim::Tracer& tracer,
                       std::vector<core::NamedRun>& runs) {
  if (tracer.enabled() && tracer.dropped() > 0) {
    std::fprintf(stderr,
                 "WARNING: trace ring buffer overflowed, %llu records "
                 "dropped — raise the tracer capacity or shrink the "
                 "workload\n",
                 static_cast<unsigned long long>(tracer.dropped()));
  }
  const std::string critpath_out = args.get_string("critpath-out", "");
  const bool critpath =
      args.get_bool("critpath", false) || !critpath_out.empty();
  if (tracer.enabled() && !critpath && !runs.empty()) {
    runs.back().metrics.counters.inc("trace.dropped_records",
                                     tracer.dropped());
  }
  if (critpath) {
    profile::AnalyzeOptions opts;
    opts.allow_truncated = args.get_bool("allow-truncated-trace", false);
    const std::string what_if = args.get_string("what-if", "");
    opts.scenarios = what_if.empty()
                         ? profile::default_what_if_scenarios()
                         : profile::parse_what_if_list(what_if);
    profile::CritPathReport report;
    try {
      report = profile::analyze_critical_path(tracer, opts);
    } catch (const Error& e) {
      std::fprintf(stderr, "critical-path analysis failed: %s\n", e.what());
      return 1;
    }
    if (!runs.empty()) {
      profile::export_critpath_counters(report,
                                        runs.back().metrics.counters);
    }
    std::printf("\n%s", profile::format_attribution_table(report).c_str());
    if (!critpath_out.empty()) {
      core::write_json_file(critpath_out,
                            profile::critpath_report_json(report));
      std::printf("critical-path JSON: %s\n", critpath_out.c_str());
    }
  }
  const std::string trace_out = args.get_string("trace-out", "");
  if (!trace_out.empty()) {
    sim::write_perfetto_trace(trace_out, tracer);
    std::printf("\nPerfetto trace: %s (open in ui.perfetto.dev)\n",
                trace_out.c_str());
  }
  const std::string metrics_out = args.get_string("metrics-out", "");
  if (!metrics_out.empty()) {
    core::write_json_file(metrics_out, core::runs_to_json(runs));
    std::printf("metrics JSON: %s\n", metrics_out.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const double scale = args.get_double("scale", 0.1);
  const auto hidden = static_cast<std::uint32_t>(args.get_int("hidden", 32));
  const auto num_requests =
      static_cast<std::size_t>(args.get_int("requests", 6));
  const auto chips = static_cast<std::uint32_t>(args.get_int("chips", 1));
  const std::string mode_arg = args.get_string("mode", "data");
  const cluster::DispatchMode mode =
      mode_arg == "shard" ? cluster::DispatchMode::kShardParallel
                          : cluster::DispatchMode::kDataParallel;

  // The "user-item interaction graph": Pubmed-scale structure stands in.
  const graph::Dataset graph_ds =
      graph::make_dataset(graph::DatasetId::kPubmed, scale);
  std::printf("serving on a %u-vertex interaction graph (%llu edges), "
              "%u chip(s)\n\n",
              graph_ds.num_vertices(),
              static_cast<unsigned long long>(graph_ds.num_edges()), chips);

  core::AuroraConfig config = core::AuroraConfig::bench();

  // A request mix: candidate scoring (GCN), re-ranking with attention
  // (AGNN), and a session-graph pass (GraphSAGE-Pool), round-robin.
  const std::array<std::pair<gnn::GnnModel, const char*>, 3> kMix = {{
      {gnn::GnnModel::kGcn, "candidate-scoring/GCN"},
      {gnn::GnnModel::kAgnn, "re-ranking/AGNN"},
      {gnn::GnnModel::kGraphSagePool, "session/SAGE-Pool"},
  }};
  std::vector<core::ScheduledRequest> queue;
  for (std::size_t i = 0; i < num_requests; ++i) {
    const auto& [model, label] = kMix[i % kMix.size()];
    queue.push_back({core::GnnJob::two_layer(model, graph_ds.spec, hidden),
                     std::string(label) + " #" + std::to_string(i)});
  }

  sim::Tracer tracer;
  if (!args.get_string("trace-out", "").empty() ||
      !args.get_string("critpath-out", "").empty() ||
      args.get_bool("critpath", false)) {
    tracer.enable();
  }

  std::vector<Cycle> latencies;
  if (chips <= 1) {
    core::AuroraAccelerator accel(config);
    if (tracer.enabled()) accel.set_tracer(&tracer);
    core::Scheduler scheduler(accel);
    const core::ScheduleResult result = scheduler.run(graph_ds, queue);

    AsciiTable table({"request", "start", "finish", "latency (us)",
                      "a:b split", "energy (uJ)"});
    for (const auto& o : result.outcomes) {
      latencies.push_back(o.latency());
      table.add_row({o.label, std::to_string(o.start_cycle),
                     std::to_string(o.finish_cycle),
                     to_fixed(1e6 * static_cast<double>(o.latency()) /
                                  (config.frequency_mhz * 1e6),
                              2),
                     std::to_string(o.metrics.partition_a) + ":" +
                         std::to_string(o.metrics.partition_b),
                     to_fixed(o.metrics.energy.total_pj() * 1e-6, 1)});
    }
    table.print();
    std::printf("\nmakespan: %llu cycles (%.2f us); overlap saved %llu "
                "cycles; avg latency %.0f cycles\n",
                static_cast<unsigned long long>(result.makespan),
                1e6 * static_cast<double>(result.makespan) /
                    (config.frequency_mhz * 1e6),
                static_cast<unsigned long long>(result.overlap_savings),
                result.avg_latency());
    print_latency_percentiles(latencies, config.frequency_mhz);
    std::printf("Each request reconfigured the same silicon: compare the "
                "a:b splits.\n");
    std::vector<core::NamedRun> runs;
    for (const auto& o : result.outcomes) {
      runs.push_back({"aurora", o.label, o.metrics});
    }
    return emit_observability(args, tracer, runs);
  }

  cluster::ClusterParams params;
  params.num_chips = chips;
  // --parallel-sim runs each shard-parallel inference on the multi-threaded
  // conservative engine (bit-identical results, lower wall clock on
  // multi-core hosts); --jobs caps its worker threads.
  params.parallel = args.get_bool("parallel-sim", false);
  params.parallel_jobs = static_cast<unsigned>(args.get_int("jobs", 0));
  cluster::ClusterScheduler scheduler(config, params);
  if (tracer.enabled()) scheduler.set_tracer(&tracer);
  const cluster::ClusterScheduleResult result =
      scheduler.run(graph_ds, queue, mode);

  AsciiTable table({"request", "chip", "start", "finish", "latency (us)",
                    "halo (KiB)"});
  for (const auto& o : result.outcomes) {
    latencies.push_back(o.latency());
    const std::string chip_cell =
        result.mode == cluster::DispatchMode::kShardParallel
            ? "all"
            : std::to_string(o.chip);
    table.add_row(
        {o.label, chip_cell, std::to_string(o.start_cycle),
         std::to_string(o.finish_cycle),
         to_fixed(1e6 * static_cast<double>(o.latency()) /
                      (config.frequency_mhz * 1e6),
                  2),
         to_fixed(static_cast<double>(
                      o.metrics.counters.get("cluster.halo_bytes_sent")) /
                      1024.0,
                  1)});
  }
  table.print();
  std::printf("\n%s over %u chips — makespan: %llu cycles (%.2f us); "
              "overlap saved %llu cycles; avg latency %.0f cycles\n",
              dispatch_mode_name(result.mode), chips,
              static_cast<unsigned long long>(result.makespan),
              1e6 * static_cast<double>(result.makespan) /
                  (config.frequency_mhz * 1e6),
              static_cast<unsigned long long>(result.overlap_savings),
              result.avg_latency());
  print_latency_percentiles(latencies, config.frequency_mhz);
  std::vector<core::NamedRun> runs;
  for (const auto& o : result.outcomes) {
    runs.push_back({dispatch_mode_name(result.mode), o.label, o.metrics});
  }
  return emit_observability(args, tracer, runs);
}
