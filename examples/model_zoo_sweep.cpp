// Versatility demo: run every model in the zoo — C-GNNs, A-GNNs and
// MP-GNNs — through the same unified accelerator, showing how the adaptive
// workflow generator, partition algorithm and sub-accelerator formation
// adapt per model (the paper's core claim).
//
//   ./examples/model_zoo_sweep [--scale=0.1] [--hidden=32]
#include <cstdio>

#include "common/cli.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "core/aurora.hpp"

int main(int argc, char** argv) {
  using namespace aurora;
  const CliArgs args(argc, argv, {"scale", "hidden"});
  const double scale = args.get_double("scale", 0.1, 1e-6, 100.0);
  const auto hidden = args.get_uint("hidden", 32, 1);

  const graph::Dataset dataset =
      graph::make_dataset(graph::DatasetId::kCora, scale);
  std::printf("running all %zu GNN models on %s (scale %.3g), layer %u -> %u\n\n",
              gnn::kAllModels.size(), dataset.spec.name, scale, hidden,
              hidden / 2);

  core::AuroraConfig config = core::AuroraConfig::bench();
  core::AuroraAccelerator accelerator(config);

  AsciiTable table({"model", "category", "phases", "a:b split", "cycles",
                    "comm cycles", "energy (uJ)"});
  for (gnn::GnnModel model : gnn::kAllModels) {
    const gnn::LayerConfig layer{hidden, hidden / 2};
    const auto wf = gnn::generate_workflow(model, layer,
                                           dataset.num_vertices(),
                                           dataset.num_edges());
    std::string phases;
    if (wf.needs_edge_update()) phases += "EU+";
    phases += "AGG";
    if (wf.needs_vertex_update()) phases += "+VU";
    if (wf.update_first) phases += " (update-first)";

    const auto m = accelerator.run_layer(dataset, model, layer, 1);
    table.add_row({gnn::model_name(model),
                   gnn::category_name(gnn::model_category(model)), phases,
                   std::to_string(m.partition_a) + ":" +
                       std::to_string(m.partition_b),
                   std::to_string(m.total_cycles),
                   std::to_string(m.onchip_comm_cycles),
                   to_fixed(m.energy.total_pj() * 1e-6, 1)});
  }
  table.print();
  std::printf(
      "\nNote how EdgeConv models form a single sub-accelerator (no vertex\n"
      "update), edge-heavy MP-GNNs pull PEs into sub-accelerator A, and\n"
      "shrinking convolutional layers switch to the update-first dataflow.\n");
  return 0;
}
