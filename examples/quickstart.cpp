// Quickstart: simulate one GCN layer on the Cora dataset and print what the
// accelerator decided and measured.
//
//   ./examples/quickstart [--scale=0.1] [--model=GCN] [--cycle|--analytic]
#include <cstdio>
#include <string>

#include "common/cli.hpp"
#include "common/strings.hpp"
#include "core/aurora.hpp"

int main(int argc, char** argv) {
  using namespace aurora;
  const CliArgs args(argc, argv, {"scale", "analytic"});

  // 1. A dataset. Datasets are synthesised deterministically to match the
  //    published statistics of the real graphs (see DESIGN.md §1).
  const double scale = args.get_double("scale", 0.1, 1e-6, 100.0);
  const graph::Dataset dataset =
      graph::make_dataset(graph::DatasetId::kCora, scale);
  std::printf("dataset: %s (scale %.3g): %u vertices, %llu directed edges, "
              "max degree %llu\n",
              dataset.spec.name, scale, dataset.num_vertices(),
              static_cast<unsigned long long>(dataset.num_edges()),
              static_cast<unsigned long long>(
                  dataset.degree_stats.max_degree));

  // 2. An accelerator. bench() is a 16x16 array the cycle-accurate engine
  //    handles comfortably; paper() is the 32x32 chip of the paper.
  core::AuroraConfig config = core::AuroraConfig::bench();
  if (args.get_bool("analytic", false)) {
    config.mode = core::SimMode::kAnalytic;
  }
  core::AuroraAccelerator accelerator(config);

  // 3. Run one hidden GCN layer (64 -> 16 features).
  const gnn::LayerConfig layer{64, 16};
  const core::RunMetrics m =
      accelerator.run_layer(dataset, gnn::GnnModel::kGcn, layer,
                            /*layer_index=*/1);

  // 4. Inspect the decisions and the measurements.
  std::printf("\npartition (Algorithm 2): %u PEs -> sub-accelerator A, "
              "%u PEs -> sub-accelerator B\n",
              m.partition_a, m.partition_b);
  std::printf("subgraphs (tiles):        %u\n", m.num_subgraphs);
  std::printf("reconfigurations:         %llu (%llu switch writes)\n",
              static_cast<unsigned long long>(m.reconfigurations),
              static_cast<unsigned long long>(m.switch_writes));
  std::printf("\nexecution time:           %llu cycles (%.2f us at %.0f MHz)\n",
              static_cast<unsigned long long>(m.total_cycles),
              1e6 * m.total_seconds(config.frequency_mhz),
              config.frequency_mhz);
  std::printf("  on-chip communication:  %llu cycles (avg %.2f hops/message)\n",
              static_cast<unsigned long long>(m.onchip_comm_cycles),
              m.avg_hops);
  std::printf("  DRAM time:              %llu cycles (%s moved)\n",
              static_cast<unsigned long long>(m.dram_cycles),
              human_bytes(m.dram_bytes).c_str());
  std::printf("energy:                   %.3f mJ (DRAM %.0f%%, compute %.0f%%, "
              "NoC %.0f%%)\n",
              m.energy.total_mj(),
              100.0 * m.energy.dram_pj / m.energy.total_pj(),
              100.0 * m.energy.compute_pj / m.energy.total_pj(),
              100.0 * m.energy.noc_pj / m.energy.total_pj());
  return 0;
}
