// The paper's walk-through example (Sec III-E), step by step, with the real
// components doing each numbered step:
//   (1) host sends a request to the request dispatcher
//   (2) instructions load into the instruction buffer
//   (3) the adaptive workflow generator decides phases and operation types
//   (4) the partition algorithm splits the PE array
//   (5) the degree-aware mapping algorithm places the subgraph
//   (6) the NoC and PE configuration unit programs the fabric
//   (7) the instruction dispatcher issues, and the layer executes
//
//   ./examples/walkthrough [--scale=0.1]
#include <cstdio>

#include "common/cli.hpp"
#include "common/strings.hpp"
#include "core/aurora.hpp"
#include "core/frontend.hpp"
#include "core/sub_accelerators.hpp"
#include "mapping/mapper.hpp"
#include "partition/partition.hpp"
#include "sim/simulator.hpp"

int main(int argc, char** argv) {
  using namespace aurora;
  const CliArgs args(argc, argv, {"scale"});
  const double scale = args.get_double("scale", 0.1, 1e-6, 100.0);
  const graph::Dataset ds = graph::make_dataset(graph::DatasetId::kCora, scale);
  core::AuroraConfig config = core::AuroraConfig::bench();

  std::printf("Sec III-E walk-through on %s (scale %.2f), %ux%u chip\n\n",
              ds.spec.name, scale, config.array_dim, config.array_dim);

  // (1) host request -> request dispatcher.
  core::RequestDispatcher dispatcher;
  dispatcher.submit({gnn::GnnModel::kGcn, {64, 16}, 0});
  const core::HostRequest request = dispatcher.next();
  std::printf("(1) request #%llu accepted: %s layer %u -> %u\n",
              static_cast<unsigned long long>(request.request_id),
              gnn::model_name(request.model), request.layer.in_dim,
              request.layer.out_dim);

  // (3) adaptive workflow generator.
  const gnn::Workflow wf = gnn::generate_workflow(
      request.model, request.layer, ds.num_vertices(), ds.num_edges());
  std::printf("(3) workflow: EU=%s AGG=%s VU=%s%s; O_ue=%llu O_a=%llu "
              "O_uv=%llu\n",
              wf.needs_edge_update() ? "yes" : "no", "yes",
              wf.needs_vertex_update() ? "yes" : "no",
              wf.update_first ? " (update-first order)" : "",
              static_cast<unsigned long long>(
                  wf.phase(gnn::Phase::kEdgeUpdate).total_ops),
              static_cast<unsigned long long>(
                  wf.phase(gnn::Phase::kAggregation).total_ops),
              static_cast<unsigned long long>(
                  wf.phase(gnn::Phase::kVertexUpdate).total_ops));

  // (4) partition algorithm.
  const auto split = partition::partition(
      partition::partition_input_from_workflow(wf, config.num_pes(),
                                               config.flops_per_pe));
  const core::SubAcceleratorPlan plan = core::make_plan(config, split);
  std::printf("(4) partition: a=%u b=%u (|T_A-T_B|=%.1f, util %.0f %%) -> "
              "sub-A rows [0,%u), sub-B rows [%u,%u), %zu rings\n",
              split.a, split.b, split.diff, 100.0 * split.utilization(),
              plan.sub_a.row_end, plan.sub_b.row_begin, plan.sub_b.row_end,
              plan.rings.size());

  // (5) degree-aware mapping.
  mapping::MapperParams mparams;
  mparams.region = plan.sub_a;
  mparams.pe_vertex_slots = 2 * ds.num_vertices() / plan.sub_a_pes() + 4;
  const auto map =
      mapping::degree_aware_map(ds.graph, 0, ds.num_vertices(), mparams);
  std::printf("(5) mapping: %zu S_PEs (N-Queen), %zu high-degree vertices "
              "spread across them\n",
              map.s_pes.size(), map.high_degree_vertices.size());

  // (6) NoC/PE configuration unit.
  const auto noc_cfg = core::compose_noc_config(plan, map);
  core::ConfigurationUnit unit(config.array_dim);
  const auto writes = unit.apply(noc_cfg);
  std::printf("(6) NoC configured: %zu row segments, %zu col segments, "
              "%zu rings; %llu switch writes, %llu-cycle latency (2K-1)\n",
              noc_cfg.row_segments().size(), noc_cfg.col_segments().size(),
              noc_cfg.rings().size(),
              static_cast<unsigned long long>(writes),
              static_cast<unsigned long long>(
                  unit.latency_per_reconfiguration()));

  // (2)+(7) instruction stream through the buffer and dispatcher.
  const auto stream = core::build_instruction_stream(wf, 1);
  core::InstructionBuffer buffer(stream.size());
  for (const auto& instr : stream) (void)buffer.push(instr);
  core::InstructionDispatcher issue(buffer);
  std::printf("(2) %zu instructions buffered; (7) dispatch order:", stream.size());
  issue.set_issue_callback([](const core::Instruction& i, Cycle) {
    std::printf(" %s", core::instr_kind_name(i.kind));
  });
  sim::Simulator s;
  s.add(&issue);
  s.run_until_idle(1000);
  std::printf("\n");

  // ...and the layer actually executes on the cycle engine.
  core::AuroraAccelerator accel(config);
  const auto m = accel.run_layer(ds, request.model, request.layer, 1);
  std::printf("\nexecuted: %llu cycles (%.2f us), %s DRAM, %.1f uJ, "
              "PE utilization %.0f %%\n",
              static_cast<unsigned long long>(m.total_cycles),
              1e6 * m.total_seconds(config.frequency_mhz),
              human_bytes(m.dram_bytes).c_str(),
              m.energy.total_pj() * 1e-6, 100.0 * m.pe_utilization);
  return 0;
}
