// Bring your own graph: load an edge list from disk, wrap it as a dataset,
// run a GNN layer on Aurora, and dump a machine-readable JSON report.
//
//   ./examples/custom_graph [--graph=path/to/edges.txt] [--json=report.json]
//
// Without --graph, a demo edge list is generated first so the example is
// runnable out of the box.
#include <cstdio>
#include <string>

#include "common/cli.hpp"
#include "common/rng.hpp"
#include "core/aurora.hpp"
#include "core/report.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"

int main(int argc, char** argv) {
  using namespace aurora;
  const CliArgs args(argc, argv, {"graph", "json"});

  std::string path = args.get_string("graph", "");
  if (path.empty()) {
    // No input given: synthesise a small power-law graph and save it, so the
    // example demonstrates the full file round trip.
    path = "/tmp/aurora_demo_graph.txt";
    Rng rng(21);
    graph::PowerLawParams params;
    params.n = 500;
    params.undirected_edges = 2000;
    params.locality = 0.6;
    graph::save_edge_list(path, graph::generate_power_law(params, rng));
    std::printf("no --graph given; wrote a demo edge list to %s\n",
                path.c_str());
  }

  graph::Dataset ds;
  ds.spec.name = "custom";
  ds.spec.feature_dim = 64;
  ds.spec.feature_density = 1.0;
  ds.graph = graph::load_edge_list(path);
  ds.degree_stats = graph::compute_degree_stats(ds.graph);
  std::printf("loaded %s: %u vertices, %llu directed edges, "
              "mean degree %.1f, max %llu\n",
              path.c_str(), ds.num_vertices(),
              static_cast<unsigned long long>(ds.num_edges()),
              ds.degree_stats.mean_degree,
              static_cast<unsigned long long>(ds.degree_stats.max_degree));

  core::AuroraConfig config = core::AuroraConfig::bench();
  core::AuroraAccelerator accel(config);

  std::vector<core::NamedRun> runs;
  for (gnn::GnnModel model :
       {gnn::GnnModel::kGcn, gnn::GnnModel::kGin, gnn::GnnModel::kAgnn}) {
    const auto m = accel.run_layer(ds, model, {64, 16}, 1);
    std::printf("  %-18s %8llu cycles, %6.1f uJ, a:b = %u:%u\n",
                gnn::model_name(model),
                static_cast<unsigned long long>(m.total_cycles),
                m.energy.total_pj() * 1e-6, m.partition_a, m.partition_b);
    runs.push_back({gnn::model_name(model), ds.spec.name, m});
  }

  const std::string json_path =
      args.get_string("json", "/tmp/aurora_custom_graph.json");
  core::write_json_file(json_path, core::runs_to_json(runs));
  std::printf("JSON report written to %s\n", json_path.c_str());
  return 0;
}
