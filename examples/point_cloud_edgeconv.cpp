// Point-cloud processing with EdgeConv (one of the paper's motivating
// domains): a spatial k-NN-like graph runs EdgeConv-1 and EdgeConv-5, which
// have NO vertex-update phase — the partition algorithm forms a single
// sub-accelerator and the whole array works on edge updates (the scenario
// where fixed heterogeneous designs idle their combination engines).
//
//   ./examples/point_cloud_edgeconv [--points=1024] [--features=16]
#include <cmath>
#include <cstdio>

#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"
#include "core/aurora.hpp"
#include "graph/batch.hpp"
#include "graph/generators.hpp"

namespace {

/// A grid-plus-shortcuts graph: the 4-neighborhood models spatial k-NN
/// structure, sprinkled long-range edges model dynamic graph updates
/// (DGCNN recomputes neighborhoods in feature space each layer).
aurora::graph::Dataset make_point_cloud(std::uint32_t points,
                                        std::uint32_t feature_dim) {
  using namespace aurora;
  const auto side = static_cast<VertexId>(std::max(
      2.0, std::sqrt(static_cast<double>(points))));
  graph::CsrGraph grid = graph::generate_grid(side, side);
  Rng rng(11);
  graph::CsrBuilder b(grid.num_vertices());
  for (VertexId v = 0; v < grid.num_vertices(); ++v) {
    for (VertexId u : grid.neighbors(v)) {
      if (u > v) b.add_undirected_edge(v, u);
    }
  }
  for (VertexId i = 0; i < grid.num_vertices() / 8; ++i) {
    const auto u = static_cast<VertexId>(rng.next_below(grid.num_vertices()));
    const auto w = static_cast<VertexId>(rng.next_below(grid.num_vertices()));
    if (u != w) b.add_undirected_edge(u, w);
  }
  graph::Dataset ds;
  ds.spec.name = "PointCloud";
  ds.spec.feature_dim = feature_dim;
  ds.spec.feature_density = 1.0;  // xyz + normals are dense
  ds.graph = std::move(b).build();
  ds.degree_stats = graph::compute_degree_stats(ds.graph);
  return ds;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace aurora;
  const CliArgs args(argc, argv, {"points", "features"});
  const auto points = args.get_uint("points", 1024, 1);
  const auto features =
      args.get_uint("features", 16, 1);

  const graph::Dataset cloud = make_point_cloud(points, features);
  std::printf("point cloud: %u points, %llu neighbor edges, mean degree %.1f\n",
              cloud.num_vertices(),
              static_cast<unsigned long long>(cloud.num_edges()),
              cloud.degree_stats.mean_degree);

  core::AuroraConfig config = core::AuroraConfig::bench();
  core::AuroraAccelerator accel(config);

  for (gnn::GnnModel model :
       {gnn::GnnModel::kEdgeConv1, gnn::GnnModel::kEdgeConv5}) {
    const gnn::LayerConfig layer{features, 2 * features};
    const auto wf = gnn::generate_workflow(model, layer,
                                           cloud.num_vertices(),
                                           cloud.num_edges());
    const auto m = accel.run_layer(cloud, model, layer, 1);
    std::printf("\n%s (edge-MLP, max aggregation):\n", gnn::model_name(model));
    std::printf("  vertex update present: %s -> %s\n",
                wf.needs_vertex_update() ? "yes" : "no",
                m.partition_b == 0
                    ? "single sub-accelerator, whole array on edge updates"
                    : "two sub-accelerators");
    std::printf("  %llu cycles, %s DRAM, %.1f uJ, avg %.2f hops\n",
                static_cast<unsigned long long>(m.total_cycles),
                human_bytes(m.dram_bytes).c_str(),
                m.energy.total_pj() * 1e-6, m.avg_hops);
  }
  // Batched inference: many clouds merged block-diagonally, one mapping
  // pass for the whole batch (how graph-level workloads are actually fed).
  std::vector<graph::CsrGraph> clouds;
  for (int i = 0; i < 8; ++i) {
    clouds.push_back(make_point_cloud(points / 8, features).graph);
  }
  const graph::Batch batch = graph::make_batch(clouds);
  graph::Dataset batched;
  batched.spec.name = "PointCloudBatch";
  batched.spec.feature_dim = features;
  batched.spec.feature_density = 1.0;
  batched.graph = batch.graph;
  batched.degree_stats = graph::compute_degree_stats(batch.graph);
  const auto mb =
      accel.run_layer(batched, gnn::GnnModel::kEdgeConv1,
                      {features, 2 * features}, 1);
  std::printf("\nbatched inference (8 clouds, %u points total): %llu cycles "
              "(%0.2f per-cloud equivalent)\n",
              batch.graph.num_vertices(),
              static_cast<unsigned long long>(mb.total_cycles),
              static_cast<double>(mb.total_cycles) / 8.0);

  std::printf(
      "\nA fixed tandem design (e.g. HyGCN's 1:7 split) would idle 7/8 of\n"
      "its multipliers here; Aurora's partition gives them all to sub-A.\n");
  return 0;
}
