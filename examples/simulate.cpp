// The full-featured simulator driver: pick a dataset (built-in or your own
// edge list), a GNN model, a chip configuration (flags or INI file), an
// execution engine, and get tables plus an optional JSON report.
//
//   ./examples/simulate --dataset=cora --model=GCN --scale=0.1
//   ./examples/simulate --graph=my_edges.txt --model=GIN --mode=analytic
//   ./examples/simulate --config=chip.ini --json=out.json --all-models
//   ./examples/simulate --print-config        # dump the default chip INI
#include <cstdio>
#include <optional>
#include <string>

#include "common/cli.hpp"
#include "common/error.hpp"
#include "common/strings.hpp"
#include "common/table.hpp"
#include "core/aurora.hpp"
#include "core/config_io.hpp"
#include "baselines/baseline.hpp"
#include "core/report.hpp"
#include "profile/critpath.hpp"
#include "sim/perfetto.hpp"
#include "sim/sampler.hpp"
#include "sim/trace.hpp"
#include "graph/io.hpp"

namespace {

using namespace aurora;

std::optional<graph::DatasetId> dataset_by_name(const std::string& name) {
  for (graph::DatasetId id : graph::kAllDatasets) {
    std::string n = graph::dataset_name(id);
    for (char& ch : n) ch = static_cast<char>(std::tolower(ch));
    if (n == name) return id;
  }
  return std::nullopt;
}

std::optional<gnn::GnnModel> model_by_name(const std::string& name) {
  for (gnn::GnnModel m : gnn::kAllModels) {
    if (name == gnn::model_name(m)) return m;
  }
  return std::nullopt;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(
      argc, argv,
      {"help", "dataset", "graph", "scale", "model", "all-models", "hidden",
       "mode", "mapping", "config", "paper-chip", "json", "trace",
       "trace-out", "metrics-out", "sample-interval", "counters", "critpath",
       "critpath-out", "what-if", "allow-truncated-trace", "baselines",
       "print-config", "features", "seed"});

  if (args.get_bool("help", false)) {
    std::printf(
        "simulate — Aurora GNN-accelerator simulator\n\n"
        "  --dataset=<cora|citeseer|pubmed|nell|reddit>   built-in dataset\n"
        "  --graph=<path>         load your own edge list instead\n"
        "  --scale=<f>            dataset scale (built-ins only)\n"
        "  --model=<name>         GNN model (see table1_coverage) or\n"
        "  --all-models           run the whole zoo\n"
        "  --hidden=<d>           hidden width (default 16)\n"
        "  --mode=<cycle|analytic>\n"
        "  --mapping=<degree-aware|hashing>\n"
        "  --config=<path.ini>    chip configuration file\n"
        "  --paper-chip           use the 32x32/100MB paper chip\n"
        "  --json=<path>          write a JSON report\n"
        "  --trace                print an ASCII event timeline (cycle mode)\n"
        "  --trace-out=<path>     write a Chrome/Perfetto trace JSON (cycle\n"
        "                         mode; open in ui.perfetto.dev)\n"
        "  --metrics-out=<path>   write the per-run metrics JSON report\n"
        "  --sample-interval=<n>  sample metric time series every n cycles\n"
        "                         (0 = off; defaults to 64 with --trace-out)\n"
        "  --counters             dump component event counters (cycle mode)\n"
        "  --critpath             print the critical-path attribution table\n"
        "                         (cycle mode)\n"
        "  --critpath-out=<path>  write the critical-path report JSON\n"
        "  --what-if=<spec>       what-if scenarios for the critical-path\n"
        "                         report: 'link_bw=2x,dram_latency=0.5x'\n"
        "                         knobs, ';'-separated scenarios\n"
        "                         (default: one 2x upgrade per knob)\n"
        "  --allow-truncated-trace  analyze a trace that overflowed the ring\n"
        "                         buffer anyway (suffix runs only)\n"
        "  --baselines            run the five baseline accelerators too\n"
        "  --print-config         dump the effective chip INI and exit\n");
    return 0;
  }

  // ---- chip configuration -------------------------------------------------
  core::AuroraConfig config = args.get_bool("paper-chip", false)
                                  ? core::AuroraConfig::paper()
                                  : core::AuroraConfig::bench();
  const std::string config_path = args.get_string("config", "");
  if (!config_path.empty()) {
    config = core::load_config(config_path, config);
  }
  const std::string mode = args.get_string("mode", "");
  if (mode == "cycle") config.mode = core::SimMode::kCycleAccurate;
  if (mode == "analytic") config.mode = core::SimMode::kAnalytic;
  const std::string mapping = args.get_string("mapping", "");
  if (mapping == "hashing") {
    config.mapping_policy = core::MappingPolicy::kHashing;
  }
  if (args.get_bool("print-config", false)) {
    std::fputs(core::config_to_ini(config).c_str(), stdout);
    return 0;
  }

  // ---- dataset --------------------------------------------------------------
  graph::Dataset ds;
  const std::string graph_path = args.get_string("graph", "");
  if (!graph_path.empty()) {
    ds.spec.name = "custom";
    ds.spec.feature_dim =
        args.get_uint("features", 64, 1);
    ds.spec.feature_density = 1.0;
    ds.spec.num_classes = 8;
    ds.graph = graph::load_edge_list(graph_path);
    ds.degree_stats = graph::compute_degree_stats(ds.graph);
  } else {
    const std::string name = args.get_string("dataset", "cora");
    const auto id = dataset_by_name(name);
    if (!id.has_value()) {
      std::fprintf(stderr, "unknown dataset '%s'\n", name.c_str());
      return 1;
    }
    const double default_scale =
        config.mode == core::SimMode::kCycleAccurate ? 0.1 : 1.0;
    ds = graph::make_dataset(*id, args.get_double("scale", default_scale, 1e-6, 100.0),
                             args.get_uint("seed", 7));
  }
  std::printf("dataset %s: %u vertices, %llu directed edges, mean degree "
              "%.1f, gini %.2f\n",
              ds.spec.name, ds.num_vertices(),
              static_cast<unsigned long long>(ds.num_edges()),
              ds.degree_stats.mean_degree, ds.degree_stats.gini);
  std::printf("chip: %ux%u PEs, %s/PE buffer, %s engine, %s mapping\n\n",
              config.array_dim, config.array_dim,
              human_bytes(config.pe.bank_buffer_bytes).c_str(),
              config.mode == core::SimMode::kCycleAccurate ? "cycle-accurate"
                                                           : "analytic",
              config.mapping_policy == core::MappingPolicy::kDegreeAware
                  ? "degree-aware"
                  : "hashing");

  // ---- models ----------------------------------------------------------------
  std::vector<gnn::GnnModel> models;
  if (args.get_bool("all-models", false)) {
    models.assign(gnn::kAllModels.begin(), gnn::kAllModels.end());
  } else {
    const std::string name = args.get_string("model", "GCN");
    const auto model = model_by_name(name);
    if (!model.has_value()) {
      std::fprintf(stderr, "unknown model '%s' (try --all-models)\n",
                   name.c_str());
      return 1;
    }
    models.push_back(*model);
  }

  // ---- run --------------------------------------------------------------------
  core::AuroraAccelerator accel(config);
  sim::Tracer tracer;
  const std::string trace_out = args.get_string("trace-out", "");
  const std::string critpath_out = args.get_string("critpath-out", "");
  const bool critpath =
      args.get_bool("critpath", false) || !critpath_out.empty();
  if (args.get_bool("trace", false) || !trace_out.empty() || critpath) {
    tracer.enable();
    accel.set_tracer(&tracer);
  }
  // Exporting a trace without any counter track would be a hollow timeline,
  // so --trace-out turns sampling on at a default interval unless the user
  // chose one (or explicitly disabled it with --sample-interval=0).
  const std::uint32_t sample_interval =
      args.get_uint("sample-interval", trace_out.empty() ? 0 : 64);
  std::optional<sim::Sampler> sampler;
  if (sample_interval > 0) {
    sampler.emplace(static_cast<Cycle>(sample_interval));
    accel.set_sampler(&*sampler);
  }
  const auto hidden = args.get_uint("hidden", 16, 1);
  AsciiTable table({"model", "a:b", "tiles", "cycles", "time (us)", "DRAM",
                    "avg hops", "energy (uJ)"});
  std::vector<core::NamedRun> runs;
  for (gnn::GnnModel model : models) {
    const gnn::LayerConfig layer{hidden, hidden};
    const auto m = accel.run_layer(ds, model, layer, 1);
    table.add_row({gnn::model_name(model),
                   std::to_string(m.partition_a) + ":" +
                       std::to_string(m.partition_b),
                   std::to_string(m.num_subgraphs),
                   std::to_string(m.total_cycles),
                   to_fixed(1e6 * m.total_seconds(config.frequency_mhz), 2),
                   human_bytes(m.dram_bytes), to_fixed(m.avg_hops, 2),
                   to_fixed(m.energy.total_pj() * 1e-6, 1)});
    runs.push_back({gnn::model_name(model), ds.spec.name, m});
  }
  table.print();

  // Loud truncation warning: an overflowed ring buffer means any post-run
  // analysis only sees a suffix of the execution.
  if (tracer.enabled() && tracer.dropped() > 0) {
    std::fprintf(stderr,
                 "WARNING: trace ring buffer overflowed, %llu records "
                 "dropped — raise the tracer capacity or shrink the "
                 "workload\n",
                 static_cast<unsigned long long>(tracer.dropped()));
  }
  // Published unconditionally: a truncated trace taints every downstream
  // artifact, not just runs without --critpath (which used to silently
  // drop this counter from the metrics report).
  if (tracer.enabled() && !runs.empty()) {
    runs.back().metrics.counters.inc("trace.dropped_records",
                                     tracer.dropped());
  }
  std::optional<profile::CritPathReport> critpath_report;
  if (critpath) {
    profile::AnalyzeOptions opts;
    opts.allow_truncated = args.get_bool("allow-truncated-trace", false);
    const std::string what_if = args.get_string("what-if", "");
    opts.scenarios = what_if.empty()
                         ? profile::default_what_if_scenarios()
                         : profile::parse_what_if_list(what_if);
    try {
      critpath_report = profile::analyze_critical_path(tracer, opts);
    } catch (const Error& e) {
      std::fprintf(stderr, "critical-path analysis failed: %s\n", e.what());
      return 1;
    }
    if (!runs.empty()) {
      profile::export_critpath_counters(*critpath_report,
                                        runs.back().metrics.counters);
    }
  }

  if (args.get_bool("baselines", false)) {
    std::printf("\nbaseline accelerators (same workload, normalized chip):\n");
    const auto chip = baselines::chip_params_matching(
        config.array_dim, config.pe.datapath.num_multipliers,
        config.pe.bank_buffer_bytes);
    AsciiTable bl({"accelerator", "model", "cycles", "DRAM", "energy (uJ)",
                   "native"});
    for (gnn::GnnModel model : models) {
      const auto wf = gnn::generate_workflow(model, {hidden, hidden},
                                             ds.num_vertices(),
                                             ds.num_edges());
      for (baselines::BaselineId id : baselines::kAllBaselines) {
        const auto accel_b = baselines::make_baseline(id, chip);
        const auto mb = accel_b->run_layer(ds, wf, {});
        bl.add_row({accel_b->name(), gnn::model_name(model),
                    std::to_string(mb.total_cycles),
                    human_bytes(mb.dram_bytes),
                    to_fixed(mb.energy.total_pj() * 1e-6, 1),
                    accel_b->supports(model) ? "yes" : "no (host)"});
      }
    }
    bl.print();
  }

  if (args.get_bool("counters", false) && !runs.empty()) {
    std::printf("\ncomponent counters (last run):\n");
    for (const auto& [name, value] : runs.back().metrics.counters.all()) {
      std::printf("  %-26s %llu\n", name.c_str(),
                  static_cast<unsigned long long>(value));
    }
  }

  if (tracer.enabled() && tracer.size() > 0) {
    std::printf("\nevent timeline (last run):\n%s",
                tracer.render_timeline().c_str());
  }

  if (critpath_report.has_value()) {
    std::printf("\n%s",
                profile::format_attribution_table(*critpath_report).c_str());
  }

  const std::string json_path = args.get_string("json", "");
  if (!json_path.empty()) {
    core::write_json_file(json_path, core::runs_to_json(runs));
    std::printf("\nJSON report: %s\n", json_path.c_str());
  }
  if (!trace_out.empty()) {
    sim::write_perfetto_trace(trace_out, tracer,
                              sampler.has_value() ? &*sampler : nullptr);
    std::printf("\nPerfetto trace: %s (open in ui.perfetto.dev)\n",
                trace_out.c_str());
  }
  const std::string metrics_out = args.get_string("metrics-out", "");
  if (!metrics_out.empty()) {
    core::write_json_file(metrics_out, core::runs_to_json(runs));
    std::printf("metrics JSON: %s\n", metrics_out.c_str());
  }
  if (!critpath_out.empty()) {
    core::write_json_file(critpath_out,
                          profile::critpath_report_json(*critpath_report));
    std::printf("critical-path JSON: %s\n", critpath_out.c_str());
  }
  return 0;
}
