// Citation-network node classification, end to end: a 2-layer GCN over a
// Cora-like graph, with BOTH functional execution (the golden reference and
// the structural PE datapath must agree bit-for-bit) and timing/energy
// simulation of the full inference on the accelerator.
//
//   ./examples/citation_inference [--scale=0.05] [--hidden=16]
#include <cstdio>

#include "common/cli.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"
#include "core/aurora.hpp"
#include "gnn/reference.hpp"
#include "pe/datapath.hpp"

int main(int argc, char** argv) {
  using namespace aurora;
  const CliArgs args(argc, argv, {"scale", "hidden"});
  const double scale = args.get_double("scale", 0.05, 1e-6, 100.0);
  const auto hidden = args.get_uint("hidden", 16, 1);

  const graph::Dataset ds = graph::make_dataset(graph::DatasetId::kCora, scale);
  const std::uint32_t classes = ds.spec.num_classes;
  std::printf("citation inference on %s (scale %.3g): %u papers, "
              "%llu citations, %u classes\n",
              ds.spec.name, scale, ds.num_vertices(),
              static_cast<unsigned long long>(ds.num_edges()), classes);

  // --- functional pass -----------------------------------------------------
  // Random input features and weights; layer 1: F -> hidden, layer 2:
  // hidden -> classes.
  Rng rng(99);
  const std::uint32_t in_dim = 32;  // compact stand-in for the sparse inputs
  gnn::Matrix x(ds.num_vertices(), in_dim);
  x.randomize(rng);
  const auto p1 =
      gnn::make_reference_params(gnn::GnnModel::kGcn, in_dim, hidden, rng);
  const auto p2 =
      gnn::make_reference_params(gnn::GnnModel::kGcn, hidden, classes, rng);

  const gnn::Matrix h1 = gnn::reference_layer(gnn::GnnModel::kGcn, ds.graph,
                                              x, p1);
  const gnn::Matrix logits =
      gnn::reference_layer(gnn::GnnModel::kGcn, ds.graph, h1, p2);

  // Cross-check a sample of vertex updates on the structural PE datapath:
  // the reconfigurable MAC array must reproduce the reference MatVec.
  pe::PeDatapath datapath{pe::PeParams{}};
  datapath.configure(pe::PeConfigKind::kMatVec);
  double worst = 0.0;
  for (VertexId v = 0; v < std::min<VertexId>(64, ds.num_vertices()); ++v) {
    const auto row = h1.row(v);
    const gnn::Vector want = gnn::mat_vec(p2.w, row);
    const gnn::Vector got = datapath.run_mat_vec(p2.w, row);
    worst = std::max(worst, gnn::max_abs_diff(got, want));
  }
  std::printf("PE datapath vs reference (64 sampled vertex updates): "
              "max |diff| = %.3g\n", worst);

  // Class histogram of the argmax predictions, as a sanity signal.
  std::vector<int> histogram(classes, 0);
  for (VertexId v = 0; v < ds.num_vertices(); ++v) {
    const auto row = logits.row(v);
    std::size_t best = 0;
    for (std::size_t c = 1; c < row.size(); ++c) {
      if (row[c] > row[best]) best = c;
    }
    ++histogram[best];
  }
  std::printf("predicted class histogram:");
  for (int count : histogram) std::printf(" %d", count);
  std::printf("\n");

  // --- timing/energy pass ----------------------------------------------------
  core::AuroraConfig config = core::AuroraConfig::bench();
  core::AuroraAccelerator accel(config);
  core::GnnJob job;
  job.model = gnn::GnnModel::kGcn;
  job.layers = {{in_dim, hidden}, {hidden, classes}};
  const auto m = accel.run(ds, job);
  std::printf("\nfull 2-layer inference on the accelerator:\n");
  std::printf("  %llu cycles (%.2f us), %s DRAM traffic, %.3f mJ\n",
              static_cast<unsigned long long>(m.total_cycles),
              1e6 * m.total_seconds(config.frequency_mhz),
              human_bytes(m.dram_bytes).c_str(), m.energy.total_mj());
  std::printf("  pipeline utilisation %.0f %%, %u subgraphs, "
              "avg %.2f hops/message\n",
              100.0 * m.utilization, m.num_subgraphs, m.avg_hops);
  return 0;
}
