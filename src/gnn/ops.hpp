// Operation and phase taxonomy (paper Table II).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace aurora::gnn {

/// The three GNN execution phases of the message-passing abstraction
/// (paper Fig 1).
enum class Phase : std::uint8_t {
  kEdgeUpdate,
  kAggregation,
  kVertexUpdate,
};

inline constexpr std::array<Phase, 3> kAllPhases = {
    Phase::kEdgeUpdate, Phase::kAggregation, Phase::kVertexUpdate};

[[nodiscard]] const char* phase_name(Phase p);

/// Fundamental operation kinds a PE datapath must support (Table II legend).
enum class OpKind : std::uint8_t {
  kMatVec,         // M × V
  kVecVec,         // V × V (element-wise producing partial products fed to adders)
  kDotProduct,     // V · V
  kScalarVec,      // Scalar × V
  kElementwiseMul, // V ⊙ V
  kAccumulate,     // Σ V
  kActivation,     // α (ReLU / sigmoid / softmax)
  kConcat,         // V || V
  kElementwiseMax, // max (GraphSAGE-Pool / EdgeConv aggregation)
};

[[nodiscard]] const char* op_kind_name(OpKind k);
/// Table II symbol, e.g. "M×V" or "Σ V".
[[nodiscard]] const char* op_kind_symbol(OpKind k);

/// The operation mix of one phase of one model.
struct PhaseOps {
  Phase phase{};
  /// Empty means the phase is absent ("Null" in Table II).
  std::vector<OpKind> ops;

  [[nodiscard]] bool present() const { return !ops.empty(); }
  [[nodiscard]] bool uses(OpKind k) const;
};

/// Render the op list like the paper's Table II cell, e.g.
/// "Scalar×V, V·V" or "Null".
[[nodiscard]] std::string format_ops(const PhaseOps& ops);

}  // namespace aurora::gnn
