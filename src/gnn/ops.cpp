#include "gnn/ops.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace aurora::gnn {

const char* phase_name(Phase p) {
  switch (p) {
    case Phase::kEdgeUpdate:
      return "EdgeUpdate";
    case Phase::kAggregation:
      return "Aggregation";
    case Phase::kVertexUpdate:
      return "VertexUpdate";
  }
  throw Error("invalid Phase");
}

const char* op_kind_name(OpKind k) {
  switch (k) {
    case OpKind::kMatVec:
      return "MatVec";
    case OpKind::kVecVec:
      return "VecVec";
    case OpKind::kDotProduct:
      return "DotProduct";
    case OpKind::kScalarVec:
      return "ScalarVec";
    case OpKind::kElementwiseMul:
      return "ElementwiseMul";
    case OpKind::kAccumulate:
      return "Accumulate";
    case OpKind::kActivation:
      return "Activation";
    case OpKind::kConcat:
      return "Concat";
    case OpKind::kElementwiseMax:
      return "ElementwiseMax";
  }
  throw Error("invalid OpKind");
}

const char* op_kind_symbol(OpKind k) {
  switch (k) {
    case OpKind::kMatVec:
      return "MxV";
    case OpKind::kVecVec:
      return "VxV";
    case OpKind::kDotProduct:
      return "V.V";
    case OpKind::kScalarVec:
      return "Scalar x V";
    case OpKind::kElementwiseMul:
      return "V(.)V";
    case OpKind::kAccumulate:
      return "Sum V";
    case OpKind::kActivation:
      return "alpha";
    case OpKind::kConcat:
      return "V||V";
    case OpKind::kElementwiseMax:
      return "max";
  }
  throw Error("invalid OpKind");
}

bool PhaseOps::uses(OpKind k) const {
  return std::find(ops.begin(), ops.end(), k) != ops.end();
}

std::string format_ops(const PhaseOps& phase_ops) {
  if (phase_ops.ops.empty()) return "Null";
  std::string out;
  for (std::size_t i = 0; i < phase_ops.ops.size(); ++i) {
    if (i > 0) out += ", ";
    out += op_kind_symbol(phase_ops.ops[i]);
  }
  return out;
}

}  // namespace aurora::gnn
