// Sparse feature matrices (CSR-of-rows).
//
// Layer-0 inputs of the citation datasets are 1-10 % dense; the accelerator
// moves and stores them compressed (the traffic models already account for
// this). This module supplies the matching *value* representation: a
// compressed feature matrix, generators matched to a dataset's density, and
// sparse-aware kernels that must agree with their dense counterparts.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "gnn/tensor.hpp"

namespace aurora::gnn {

/// Row-compressed sparse matrix: per row, sorted column indices + values.
class SparseMatrix {
 public:
  SparseMatrix() = default;
  SparseMatrix(std::size_t rows, std::size_t cols);

  [[nodiscard]] std::size_t rows() const { return row_ptr_.size() - 1; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t nnz() const { return values_.size(); }
  [[nodiscard]] double density() const {
    return rows() * cols_ == 0
               ? 0.0
               : static_cast<double>(nnz()) /
                     (static_cast<double>(rows()) * static_cast<double>(cols_));
  }

  /// Entries of one row: parallel spans of column indices and values.
  [[nodiscard]] std::span<const std::uint32_t> row_indices(
      std::size_t r) const;
  [[nodiscard]] std::span<const double> row_values(std::size_t r) const;

  /// Stored bytes in (index, value) pair format.
  [[nodiscard]] Bytes stored_bytes(Bytes element_bytes = 8) const {
    return nnz() * (element_bytes + 4);
  }

  [[nodiscard]] Matrix to_dense() const;
  [[nodiscard]] static SparseMatrix from_dense(const Matrix& dense,
                                               double zero_epsilon = 0.0);

  /// Random sparse matrix with ~`density` nonzeros per row, values in
  /// [-1, 1). Deterministic in `rng`.
  [[nodiscard]] static SparseMatrix random(std::size_t rows, std::size_t cols,
                                           double density, Rng& rng);

  /// y = W * x_row (sparse row): only the nonzero columns contribute.
  [[nodiscard]] Vector row_mat_vec(const Matrix& w, std::size_t r) const;

  /// acc += scalar * row r (sparse axpy).
  void add_scaled_row(Vector& acc, double scalar, std::size_t r) const;

 private:
  std::size_t cols_ = 0;
  std::vector<std::size_t> row_ptr_ = {0};
  std::vector<std::uint32_t> col_idx_;
  std::vector<double> values_;

  void append_row(const std::vector<std::uint32_t>& idx,
                  const std::vector<double>& val);
};

}  // namespace aurora::gnn
