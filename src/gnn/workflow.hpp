// The Adaptive Workflow Generator (paper Fig 3 (a), step 3).
//
// Given a GNN model, a layer shape and the graph's vertex/edge counts, it
// produces the per-phase workload description consumed by the partition
// algorithm (Algorithm 2), the mapper, the NoC configuration unit and the
// baseline cost models: which phases exist, which datapath ops they need,
// how many arithmetic operations they perform and how much state they move.
#pragma once

#include <array>
#include <cstdint>

#include "common/types.hpp"
#include "gnn/models.hpp"
#include "gnn/ops.hpp"

namespace aurora::gnn {

/// Shape of one GNN layer.
struct LayerConfig {
  /// Input feature width (F).
  std::uint32_t in_dim = 0;
  /// Output feature width (H).
  std::uint32_t out_dim = 0;
  /// Element width in bytes; the paper evaluates in double precision.
  Bytes element_bytes = 8;
};

/// Workload of one execution phase of one layer.
struct PhaseWorkload {
  Phase phase{};
  bool present = false;
  std::vector<OpKind> ops;
  /// Total scalar arithmetic operations (multiplies + adds + activation
  /// evaluations), the paper's "number of operations" O_ue / O_a / O_uv.
  OpCount total_ops = 0;
  /// Weight bytes that must be resident while the phase runs.
  Bytes weight_bytes = 0;
  /// Number of NoC messages the phase generates...
  std::uint64_t num_messages = 0;
  /// ...and the payload size of each.
  Bytes message_bytes = 0;
};

/// Full per-layer workflow.
struct Workflow {
  GnnModel model{};
  LayerConfig layer;
  VertexId num_vertices = 0;
  EdgeId num_edges = 0;
  std::array<PhaseWorkload, 3> phases;  // indexed by Phase

  [[nodiscard]] const PhaseWorkload& phase(Phase p) const {
    return phases[static_cast<std::size_t>(p)];
  }
  [[nodiscard]] PhaseWorkload& phase(Phase p) {
    return phases[static_cast<std::size_t>(p)];
  }

  /// Width of the feature vector that flows edge→aggregation (E_f in
  /// Algorithm 2): the updated edge feature for MP-GNNs, else the vertex
  /// feature width.
  std::uint32_t edge_feature_dim = 0;

  /// Flexible-dataflow reordering (Table I "flexible dataflow in unified
  /// architecture"): for convolutional models the vertex-update transform
  /// commutes with the linear aggregation, so when it *shrinks* the feature
  /// (H < F) the generator schedules it first — sub-B transforms raw
  /// features, and sub-A aggregates the narrow H-wide vectors, slashing
  /// on-chip traffic (the A(XW) vs (AX)W loop-ordering choice).
  bool update_first = false;

  [[nodiscard]] OpCount total_ops() const;
  [[nodiscard]] bool needs_edge_update() const {
    return phase(Phase::kEdgeUpdate).present;
  }
  [[nodiscard]] bool needs_vertex_update() const {
    return phase(Phase::kVertexUpdate).present;
  }
};

/// Build the workflow for (model, layer, graph size). Deterministic and
/// purely analytical — this mirrors the hardware unit, which runs on CSR
/// metadata only, before any feature data arrives.
[[nodiscard]] Workflow generate_workflow(GnnModel model,
                                         const LayerConfig& layer,
                                         VertexId num_vertices,
                                         EdgeId num_edges);

}  // namespace aurora::gnn
