// Minimal dense tensor types for the functional (golden) GNN executor.
//
// These are deliberately simple row-major containers: the reference executor
// exists to verify the simulated PE datapaths, not to be fast.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace aurora::gnn {

using Vector = std::vector<double>;

/// Row-major dense matrix.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

  [[nodiscard]] double& at(std::size_t r, std::size_t c) {
    AURORA_CHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double at(std::size_t r, std::size_t c) const {
    AURORA_CHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  [[nodiscard]] std::span<double> row(std::size_t r) {
    AURORA_CHECK(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }
  [[nodiscard]] std::span<const double> row(std::size_t r) const {
    AURORA_CHECK(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }

  [[nodiscard]] const std::vector<double>& data() const { return data_; }

  /// Fill with uniform values in [-1, 1) from `rng` (deterministic).
  void randomize(Rng& rng);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

// ---- vector kernels (shared by reference executor and PE functional model)

/// y = M * x (rows(M) results).
[[nodiscard]] Vector mat_vec(const Matrix& m, std::span<const double> x);

/// Element-wise a * b.
[[nodiscard]] Vector elementwise_mul(std::span<const double> a,
                                     std::span<const double> b);

/// a · b.
[[nodiscard]] double dot(std::span<const double> a, std::span<const double> b);

/// s * a.
[[nodiscard]] Vector scalar_mul(double s, std::span<const double> a);

/// a + b.
[[nodiscard]] Vector add(std::span<const double> a, std::span<const double> b);

/// acc += a (in place).
void accumulate(Vector& acc, std::span<const double> a);

/// Element-wise max(acc, a) in place.
void elementwise_max(Vector& acc, std::span<const double> a);

/// Concatenate a ++ b.
[[nodiscard]] Vector concat(std::span<const double> a,
                            std::span<const double> b);

[[nodiscard]] Vector relu(std::span<const double> a);
[[nodiscard]] Vector sigmoid(std::span<const double> a);
[[nodiscard]] Vector softmax(std::span<const double> a);

/// Max-norm difference between two vectors (test helper).
[[nodiscard]] double max_abs_diff(std::span<const double> a,
                                  std::span<const double> b);

}  // namespace aurora::gnn
