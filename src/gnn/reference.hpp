// Dense functional (golden) executor for every model in the zoo, plus the
// PolyBench kernels the paper uses as phase benchmarks.
//
// The reference executor computes GNN layers exactly, with plain loops on the
// CPU. Tests run the cycle simulator's functional PE datapaths against these
// results; they must agree to double-precision round-off.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "gnn/models.hpp"
#include "gnn/tensor.hpp"
#include "graph/csr.hpp"

namespace aurora::gnn {

/// Learnable state a reference layer may need; unused members stay empty.
struct ReferenceParams {
  Matrix w;            // main vertex-update weight (shape depends on model)
  Vector bias;
  Matrix w2;           // second MLP layer (GIN)
  Vector bias2;
  Matrix w_u, w_v;     // G-GCN gate transforms
  Matrix w_pool;       // GraphSAGE-Pool projection
  Vector bias_pool;
  std::vector<Matrix> mlp;  // EdgeConv-5 MLP stack
  double epsilon = 0.1;     // GIN epsilon
};

/// Feature width the layer outputs (2F concat handling, EdgeConv H, ...).
[[nodiscard]] std::size_t reference_output_dim(GnnModel model,
                                               std::size_t in_dim,
                                               std::size_t out_dim);

/// Randomly initialised parameters of the right shapes (deterministic).
[[nodiscard]] ReferenceParams make_reference_params(GnnModel model,
                                                    std::size_t in_dim,
                                                    std::size_t out_dim,
                                                    Rng& rng);

/// Execute one layer of `model` on `graph` with input features `x`
/// (num_vertices rows, in_dim columns). Returns the output feature matrix.
[[nodiscard]] Matrix reference_layer(GnnModel model,
                                     const graph::CsrGraph& graph,
                                     const Matrix& x,
                                     const ReferenceParams& params);

// ---- PolyBench benchmark kernels (paper Sec VI-A "Benchmark") -----------

/// gramschmidt: QR decomposition by classical Gram-Schmidt. Returns Q with
/// orthonormal columns; `r` (k x k upper triangular) is filled if non-null.
[[nodiscard]] Matrix kernel_gramschmidt(const Matrix& a, Matrix* r = nullptr);

/// mvt: x1 += A y1 ; x2 += A^T y2.
void kernel_mvt(const Matrix& a, Vector& x1, Vector& x2, const Vector& y1,
                const Vector& y2);

/// gemver: A' = A + u1 v1^T + u2 v2^T ; x = beta A'^T y + z ; w = alpha A' x.
void kernel_gemver(double alpha, double beta, Matrix& a, const Vector& u1,
                   const Vector& v1, const Vector& u2, const Vector& v2,
                   Vector& w, Vector& x, const Vector& y, const Vector& z);

/// gesummv: y = alpha A x + beta B x.
[[nodiscard]] Vector kernel_gesummv(double alpha, double beta, const Matrix& a,
                                    const Matrix& b, const Vector& x);

}  // namespace aurora::gnn
