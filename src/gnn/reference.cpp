#include "gnn/reference.hpp"

#include <cmath>

#include "common/error.hpp"

namespace aurora::gnn {
namespace {

Matrix random_matrix(std::size_t rows, std::size_t cols, Rng& rng) {
  Matrix m(rows, cols);
  m.randomize(rng);
  return m;
}

Vector random_vector(std::size_t n, Rng& rng) {
  Vector v(n);
  for (double& x : v) x = rng.next_double(-1.0, 1.0);
  return v;
}

Vector row_vec(const Matrix& m, std::size_t r) {
  const auto row = m.row(r);
  return {row.begin(), row.end()};
}

}  // namespace

std::size_t reference_output_dim(GnnModel model, std::size_t in_dim,
                                 std::size_t out_dim) {
  switch (model) {
    case GnnModel::kEdgeConv1:
    case GnnModel::kEdgeConv5:
      return out_dim;  // no vertex update; output is the aggregated edge feature
    default:
      (void)in_dim;
      return out_dim;
  }
}

ReferenceParams make_reference_params(GnnModel model, std::size_t in_dim,
                                      std::size_t out_dim, Rng& rng) {
  ReferenceParams p;
  switch (model) {
    case GnnModel::kGcn:
      p.w = random_matrix(out_dim, in_dim, rng);
      p.bias = random_vector(out_dim, rng);
      break;
    case GnnModel::kGraphSageMean:
    case GnnModel::kCommNet:
      p.w = random_matrix(out_dim, in_dim, rng);
      break;
    case GnnModel::kGin:
      p.w = random_matrix(out_dim, in_dim, rng);
      p.bias = random_vector(out_dim, rng);
      p.w2 = random_matrix(out_dim, out_dim, rng);
      p.bias2 = random_vector(out_dim, rng);
      break;
    case GnnModel::kVanillaAttention:
    case GnnModel::kAgnn:
      p.w = random_matrix(out_dim, in_dim, rng);
      break;
    case GnnModel::kGGcn:
      p.w = random_matrix(out_dim, in_dim, rng);
      p.w_u = random_matrix(in_dim, in_dim, rng);
      p.w_v = random_matrix(in_dim, in_dim, rng);
      break;
    case GnnModel::kGraphSagePool:
      p.w = random_matrix(out_dim, 2 * in_dim, rng);
      p.bias = random_vector(out_dim, rng);
      p.w_pool = random_matrix(in_dim, in_dim, rng);
      p.bias_pool = random_vector(in_dim, rng);
      break;
    case GnnModel::kEdgeConv1:
      p.mlp.push_back(random_matrix(out_dim, in_dim, rng));
      break;
    case GnnModel::kEdgeConv5:
      p.mlp.push_back(random_matrix(out_dim, in_dim, rng));
      for (int i = 1; i < 5; ++i) {
        p.mlp.push_back(random_matrix(out_dim, out_dim, rng));
      }
      break;
  }
  return p;
}

Matrix reference_layer(GnnModel model, const graph::CsrGraph& graph,
                       const Matrix& x, const ReferenceParams& params) {
  const std::size_t n = graph.num_vertices();
  AURORA_CHECK(x.rows() == n);
  const std::size_t f = x.cols();

  switch (model) {
    case GnnModel::kGcn: {
      // m_v = Σ_{u ∈ N(v) ∪ {v}} x_u / sqrt(D_u D_v); x' = ReLU(W m_v + b).
      // Degrees include the self edge, as in the renormalisation trick.
      Matrix out(n, params.w.rows());
      for (VertexId v = 0; v < n; ++v) {
        const double dv = static_cast<double>(graph.degree(v)) + 1.0;
        Vector m(f, 0.0);
        accumulate(m, scalar_mul(1.0 / dv, x.row(v)));
        for (VertexId u : graph.neighbors(v)) {
          const double du = static_cast<double>(graph.degree(u)) + 1.0;
          accumulate(m, scalar_mul(1.0 / std::sqrt(du * dv), x.row(u)));
        }
        Vector y = add(mat_vec(params.w, m), params.bias);
        y = relu(y);
        std::copy(y.begin(), y.end(), out.row(v).begin());
      }
      return out;
    }
    case GnnModel::kGraphSageMean: {
      Matrix out(n, params.w.rows());
      for (VertexId v = 0; v < n; ++v) {
        Vector m(f, 0.0);
        const auto nb = graph.neighbors(v);
        if (nb.empty()) {
          m = row_vec(x, v);
        } else {
          for (VertexId u : nb) accumulate(m, x.row(u));
          m = scalar_mul(1.0 / static_cast<double>(nb.size()), m);
        }
        const Vector y = mat_vec(params.w, m);
        std::copy(y.begin(), y.end(), out.row(v).begin());
      }
      return out;
    }
    case GnnModel::kGin: {
      // m_v = (1 + eps) x_v + Σ x_u; x' = MLP(m_v), 2 layers with ReLU.
      Matrix out(n, params.w2.rows());
      for (VertexId v = 0; v < n; ++v) {
        Vector m = scalar_mul(1.0 + params.epsilon, x.row(v));
        for (VertexId u : graph.neighbors(v)) accumulate(m, x.row(u));
        Vector h1 = relu(add(mat_vec(params.w, m), params.bias));
        Vector y = add(mat_vec(params.w2, h1), params.bias2);
        std::copy(y.begin(), y.end(), out.row(v).begin());
      }
      return out;
    }
    case GnnModel::kCommNet: {
      Matrix out(n, params.w.rows());
      for (VertexId v = 0; v < n; ++v) {
        Vector m(f, 0.0);
        for (VertexId u : graph.neighbors(v)) accumulate(m, x.row(u));
        const Vector y = mat_vec(params.w, m);
        std::copy(y.begin(), y.end(), out.row(v).begin());
      }
      return out;
    }
    case GnnModel::kVanillaAttention:
    case GnnModel::kAgnn: {
      // m_v = Σ (x_v · x_u) x_u; x' = SoftMax(W m_v).
      Matrix out(n, params.w.rows());
      for (VertexId v = 0; v < n; ++v) {
        Vector m(f, 0.0);
        for (VertexId u : graph.neighbors(v)) {
          const double a = dot(x.row(v), x.row(u));
          accumulate(m, scalar_mul(a, x.row(u)));
        }
        const Vector y = softmax(mat_vec(params.w, m));
        std::copy(y.begin(), y.end(), out.row(v).begin());
      }
      return out;
    }
    case GnnModel::kGGcn: {
      // m_v = Σ sigma(W_u x_u + W_v x_v) ⊙ x_u; x' = ReLU(W m_v).
      // Hoist the per-vertex transforms, exactly as the accelerator does.
      Matrix gu(n, f), gv(n, f);
      for (VertexId v = 0; v < n; ++v) {
        Vector a = mat_vec(params.w_u, x.row(v));
        Vector b = mat_vec(params.w_v, x.row(v));
        std::copy(a.begin(), a.end(), gu.row(v).begin());
        std::copy(b.begin(), b.end(), gv.row(v).begin());
      }
      Matrix out(n, params.w.rows());
      for (VertexId v = 0; v < n; ++v) {
        Vector m(f, 0.0);
        for (VertexId u : graph.neighbors(v)) {
          const Vector gate = sigmoid(add(gu.row(u), gv.row(v)));
          accumulate(m, elementwise_mul(gate, x.row(u)));
        }
        const Vector y = relu(mat_vec(params.w, m));
        std::copy(y.begin(), y.end(), out.row(v).begin());
      }
      return out;
    }
    case GnnModel::kGraphSagePool: {
      // pool_u = sigma(W_pl x_u + b); m_v = Concat(max_u pool_u, x_v);
      // x' = ReLU(W m_v + b2).
      Matrix pooled(n, f);
      for (VertexId v = 0; v < n; ++v) {
        Vector p = sigmoid(add(mat_vec(params.w_pool, x.row(v)),
                               params.bias_pool));
        std::copy(p.begin(), p.end(), pooled.row(v).begin());
      }
      Matrix out(n, params.w.rows());
      for (VertexId v = 0; v < n; ++v) {
        Vector mx(f, 0.0);
        bool first = true;
        for (VertexId u : graph.neighbors(v)) {
          if (first) {
            mx = row_vec(pooled, u);
            first = false;
          } else {
            elementwise_max(mx, pooled.row(u));
          }
        }
        const Vector m = concat(mx, x.row(v));
        const Vector y = relu(add(mat_vec(params.w, m), params.bias));
        std::copy(y.begin(), y.end(), out.row(v).begin());
      }
      return out;
    }
    case GnnModel::kEdgeConv1:
    case GnnModel::kEdgeConv5: {
      // e_uv = MLP(x_u - x_v); x'_v = max_{u ∈ N(v)} e_uv. No vertex update.
      AURORA_CHECK(!params.mlp.empty());
      const std::size_t h = params.mlp.back().rows();
      Matrix out(n, h);
      for (VertexId v = 0; v < n; ++v) {
        Vector mx(h, 0.0);
        bool first = true;
        for (VertexId u : graph.neighbors(v)) {
          Vector diff(f);
          const auto xu = x.row(u);
          const auto xv = x.row(v);
          for (std::size_t i = 0; i < f; ++i) diff[i] = xu[i] - xv[i];
          Vector e = mat_vec(params.mlp[0], diff);
          for (std::size_t l = 1; l < params.mlp.size(); ++l) {
            e = mat_vec(params.mlp[l], relu(e));
          }
          if (first) {
            mx = e;
            first = false;
          } else {
            elementwise_max(mx, e);
          }
        }
        std::copy(mx.begin(), mx.end(), out.row(v).begin());
      }
      return out;
    }
  }
  throw Error("invalid GnnModel");
}

Matrix kernel_gramschmidt(const Matrix& a, Matrix* r_out) {
  const std::size_t n = a.rows();
  const std::size_t k = a.cols();
  Matrix q = a;
  Matrix r(k, k);
  for (std::size_t j = 0; j < k; ++j) {
    double norm_sq = 0.0;
    for (std::size_t i = 0; i < n; ++i) norm_sq += q.at(i, j) * q.at(i, j);
    const double norm = std::sqrt(norm_sq);
    AURORA_CHECK_MSG(norm > 1e-12, "rank-deficient input to gramschmidt");
    r.at(j, j) = norm;
    for (std::size_t i = 0; i < n; ++i) q.at(i, j) /= norm;
    for (std::size_t l = j + 1; l < k; ++l) {
      double proj = 0.0;
      for (std::size_t i = 0; i < n; ++i) proj += q.at(i, j) * q.at(i, l);
      r.at(j, l) = proj;
      for (std::size_t i = 0; i < n; ++i) q.at(i, l) -= proj * q.at(i, j);
    }
  }
  if (r_out != nullptr) *r_out = std::move(r);
  return q;
}

void kernel_mvt(const Matrix& a, Vector& x1, Vector& x2, const Vector& y1,
                const Vector& y2) {
  const std::size_t n = a.rows();
  AURORA_CHECK(a.cols() == n);
  AURORA_CHECK(x1.size() == n && x2.size() == n);
  AURORA_CHECK(y1.size() == n && y2.size() == n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) x1[i] += a.at(i, j) * y1[j];
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) x2[i] += a.at(j, i) * y2[j];
  }
}

void kernel_gemver(double alpha, double beta, Matrix& a, const Vector& u1,
                   const Vector& v1, const Vector& u2, const Vector& v2,
                   Vector& w, Vector& x, const Vector& y, const Vector& z) {
  const std::size_t n = a.rows();
  AURORA_CHECK(a.cols() == n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      a.at(i, j) += u1[i] * v1[j] + u2[i] * v2[j];
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) x[i] += beta * a.at(j, i) * y[j];
  }
  for (std::size_t i = 0; i < n; ++i) x[i] += z[i];
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) w[i] += alpha * a.at(i, j) * x[j];
  }
}

Vector kernel_gesummv(double alpha, double beta, const Matrix& a,
                      const Matrix& b, const Vector& x) {
  AURORA_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  AURORA_CHECK(a.cols() == x.size());
  Vector y(a.rows(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    double tmp = 0.0;
    double yb = 0.0;
    for (std::size_t j = 0; j < a.cols(); ++j) {
      tmp += a.at(i, j) * x[j];
      yb += b.at(i, j) * x[j];
    }
    y[i] = alpha * tmp + beta * yb;
  }
  return y;
}

}  // namespace aurora::gnn
