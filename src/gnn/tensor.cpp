#include "gnn/tensor.hpp"

#include <algorithm>
#include <cmath>

namespace aurora::gnn {

void Matrix::randomize(Rng& rng) {
  for (double& x : data_) x = rng.next_double(-1.0, 1.0);
}

Vector mat_vec(const Matrix& m, std::span<const double> x) {
  AURORA_CHECK(m.cols() == x.size());
  Vector y(m.rows(), 0.0);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    double acc = 0.0;
    const auto row = m.row(r);
    for (std::size_t c = 0; c < m.cols(); ++c) acc += row[c] * x[c];
    y[r] = acc;
  }
  return y;
}

Vector elementwise_mul(std::span<const double> a, std::span<const double> b) {
  AURORA_CHECK(a.size() == b.size());
  Vector y(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) y[i] = a[i] * b[i];
  return y;
}

double dot(std::span<const double> a, std::span<const double> b) {
  AURORA_CHECK(a.size() == b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

Vector scalar_mul(double s, std::span<const double> a) {
  Vector y(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) y[i] = s * a[i];
  return y;
}

Vector add(std::span<const double> a, std::span<const double> b) {
  AURORA_CHECK(a.size() == b.size());
  Vector y(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) y[i] = a[i] + b[i];
  return y;
}

void accumulate(Vector& acc, std::span<const double> a) {
  AURORA_CHECK(acc.size() == a.size());
  for (std::size_t i = 0; i < a.size(); ++i) acc[i] += a[i];
}

void elementwise_max(Vector& acc, std::span<const double> a) {
  AURORA_CHECK(acc.size() == a.size());
  for (std::size_t i = 0; i < a.size(); ++i) acc[i] = std::max(acc[i], a[i]);
}

Vector concat(std::span<const double> a, std::span<const double> b) {
  Vector y;
  y.reserve(a.size() + b.size());
  y.insert(y.end(), a.begin(), a.end());
  y.insert(y.end(), b.begin(), b.end());
  return y;
}

Vector relu(std::span<const double> a) {
  Vector y(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) y[i] = std::max(0.0, a[i]);
  return y;
}

Vector sigmoid(std::span<const double> a) {
  Vector y(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) y[i] = 1.0 / (1.0 + std::exp(-a[i]));
  return y;
}

Vector softmax(std::span<const double> a) {
  AURORA_CHECK(!a.empty());
  const double m = *std::max_element(a.begin(), a.end());
  Vector y(a.size());
  double total = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    y[i] = std::exp(a[i] - m);
    total += y[i];
  }
  for (double& v : y) v /= total;
  return y;
}

double max_abs_diff(std::span<const double> a, std::span<const double> b) {
  AURORA_CHECK(a.size() == b.size());
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::abs(a[i] - b[i]));
  }
  return worst;
}

}  // namespace aurora::gnn
