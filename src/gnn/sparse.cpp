#include "gnn/sparse.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace aurora::gnn {

SparseMatrix::SparseMatrix(std::size_t rows, std::size_t cols) : cols_(cols) {
  row_ptr_.assign(rows + 1, 0);
}

std::span<const std::uint32_t> SparseMatrix::row_indices(std::size_t r) const {
  AURORA_CHECK(r + 1 < row_ptr_.size());
  return {col_idx_.data() + row_ptr_[r], col_idx_.data() + row_ptr_[r + 1]};
}

std::span<const double> SparseMatrix::row_values(std::size_t r) const {
  AURORA_CHECK(r + 1 < row_ptr_.size());
  return {values_.data() + row_ptr_[r], values_.data() + row_ptr_[r + 1]};
}

void SparseMatrix::append_row(const std::vector<std::uint32_t>& idx,
                              const std::vector<double>& val) {
  AURORA_CHECK(idx.size() == val.size());
  for (std::size_t i = 0; i < idx.size(); ++i) {
    AURORA_CHECK(idx[i] < cols_);
    if (i > 0) AURORA_CHECK_MSG(idx[i - 1] < idx[i], "unsorted sparse row");
    col_idx_.push_back(idx[i]);
    values_.push_back(val[i]);
  }
  row_ptr_.push_back(col_idx_.size());
}

Matrix SparseMatrix::to_dense() const {
  Matrix dense(rows(), cols_);
  for (std::size_t r = 0; r < rows(); ++r) {
    const auto idx = row_indices(r);
    const auto val = row_values(r);
    for (std::size_t i = 0; i < idx.size(); ++i) {
      dense.at(r, idx[i]) = val[i];
    }
  }
  return dense;
}

SparseMatrix SparseMatrix::from_dense(const Matrix& dense,
                                      double zero_epsilon) {
  SparseMatrix s(0, dense.cols());
  s.row_ptr_.assign(1, 0);
  for (std::size_t r = 0; r < dense.rows(); ++r) {
    std::vector<std::uint32_t> idx;
    std::vector<double> val;
    const auto row = dense.row(r);
    for (std::size_t c = 0; c < dense.cols(); ++c) {
      if (std::abs(row[c]) > zero_epsilon) {
        idx.push_back(static_cast<std::uint32_t>(c));
        val.push_back(row[c]);
      }
    }
    s.append_row(idx, val);
  }
  return s;
}

SparseMatrix SparseMatrix::random(std::size_t rows, std::size_t cols,
                                  double density, Rng& rng) {
  AURORA_CHECK(density > 0.0 && density <= 1.0);
  SparseMatrix s(0, cols);
  s.row_ptr_.assign(1, 0);
  const auto nnz_per_row = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::llround(density *
                                               static_cast<double>(cols))));
  std::vector<std::uint32_t> all(cols);
  for (std::size_t c = 0; c < cols; ++c) all[c] = static_cast<std::uint32_t>(c);
  for (std::size_t r = 0; r < rows; ++r) {
    std::vector<std::uint32_t> pick = all;
    rng.shuffle(pick);
    pick.resize(std::min(nnz_per_row, pick.size()));
    std::sort(pick.begin(), pick.end());
    std::vector<double> val(pick.size());
    for (double& v : val) v = rng.next_double(-1.0, 1.0);
    s.append_row(pick, val);
  }
  return s;
}

Vector SparseMatrix::row_mat_vec(const Matrix& w, std::size_t r) const {
  AURORA_CHECK(w.cols() == cols_);
  Vector y(w.rows(), 0.0);
  const auto idx = row_indices(r);
  const auto val = row_values(r);
  for (std::size_t out = 0; out < w.rows(); ++out) {
    double acc = 0.0;
    const auto wrow = w.row(out);
    for (std::size_t i = 0; i < idx.size(); ++i) {
      acc += wrow[idx[i]] * val[i];
    }
    y[out] = acc;
  }
  return y;
}

void SparseMatrix::add_scaled_row(Vector& acc, double scalar,
                                  std::size_t r) const {
  AURORA_CHECK(acc.size() == cols_);
  const auto idx = row_indices(r);
  const auto val = row_values(r);
  for (std::size_t i = 0; i < idx.size(); ++i) {
    acc[idx[i]] += scalar * val[i];
  }
}

}  // namespace aurora::gnn
