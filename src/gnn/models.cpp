#include "gnn/models.hpp"

#include <map>

#include "common/error.hpp"

namespace aurora::gnn {

const char* model_name(GnnModel m) {
  switch (m) {
    case GnnModel::kGcn:
      return "GCN";
    case GnnModel::kGraphSageMean:
      return "GraphSAGE-Mean";
    case GnnModel::kGin:
      return "GIN";
    case GnnModel::kCommNet:
      return "CommNet";
    case GnnModel::kVanillaAttention:
      return "Vanilla-Attention";
    case GnnModel::kAgnn:
      return "AGNN";
    case GnnModel::kGGcn:
      return "G-GCN";
    case GnnModel::kGraphSagePool:
      return "GraphSAGE-Pool";
    case GnnModel::kEdgeConv1:
      return "EdgeConv-1";
    case GnnModel::kEdgeConv5:
      return "EdgeConv-5";
  }
  throw Error("invalid GnnModel");
}

const char* category_name(GnnCategory c) {
  switch (c) {
    case GnnCategory::kConvolutional:
      return "C-GNN";
    case GnnCategory::kAttentional:
      return "A-GNN";
    case GnnCategory::kMessagePassing:
      return "MP-GNN";
  }
  throw Error("invalid GnnCategory");
}

GnnCategory model_category(GnnModel m) {
  switch (m) {
    case GnnModel::kGcn:
    case GnnModel::kGraphSageMean:
    case GnnModel::kGin:
    case GnnModel::kCommNet:
      return GnnCategory::kConvolutional;
    case GnnModel::kVanillaAttention:
    case GnnModel::kAgnn:
      return GnnCategory::kAttentional;
    case GnnModel::kGGcn:
    case GnnModel::kGraphSagePool:
    case GnnModel::kEdgeConv1:
    case GnnModel::kEdgeConv5:
      return GnnCategory::kMessagePassing;
  }
  throw Error("invalid GnnModel");
}

bool model_has_edge_embeddings(GnnModel m) {
  switch (m) {
    case GnnModel::kVanillaAttention:
    case GnnModel::kAgnn:
    case GnnModel::kGGcn:
    case GnnModel::kEdgeConv1:
    case GnnModel::kEdgeConv5:
      return true;
    default:
      return false;
  }
}

const PhaseOps& ModelOps::for_phase(Phase p) const {
  switch (p) {
    case Phase::kEdgeUpdate:
      return edge_update;
    case Phase::kAggregation:
      return aggregation;
    case Phase::kVertexUpdate:
      return vertex_update;
  }
  throw Error("invalid Phase");
}

const ModelOps& model_ops(GnnModel m) {
  // Transcription of Table II. Aggregation is ΣV for every model (element
  // wise max for the pooling/EdgeConv aggregators).
  static const std::map<GnnModel, ModelOps> kTable = [] {
    using K = OpKind;
    std::map<GnnModel, ModelOps> t;
    auto entry = [&](GnnModel model, std::vector<K> eu, std::vector<K> agg,
                     std::vector<K> vu) {
      ModelOps ops;
      ops.edge_update = {Phase::kEdgeUpdate, std::move(eu)};
      ops.aggregation = {Phase::kAggregation, std::move(agg)};
      ops.vertex_update = {Phase::kVertexUpdate, std::move(vu)};
      t.emplace(model, std::move(ops));
    };
    entry(GnnModel::kGcn, {K::kScalarVec}, {K::kAccumulate},
          {K::kMatVec, K::kActivation});
    entry(GnnModel::kGraphSageMean, {}, {K::kAccumulate}, {K::kMatVec});
    entry(GnnModel::kGin, {}, {K::kAccumulate}, {K::kMatVec});
    entry(GnnModel::kCommNet, {}, {K::kAccumulate}, {K::kMatVec});
    entry(GnnModel::kVanillaAttention, {K::kScalarVec, K::kDotProduct},
          {K::kAccumulate}, {K::kMatVec, K::kActivation});
    entry(GnnModel::kAgnn, {K::kScalarVec, K::kDotProduct}, {K::kAccumulate},
          {K::kMatVec, K::kActivation});
    entry(GnnModel::kGGcn, {K::kMatVec, K::kElementwiseMul, K::kActivation},
          {K::kAccumulate}, {K::kMatVec, K::kActivation});
    entry(GnnModel::kGraphSagePool, {K::kMatVec, K::kActivation},
          {K::kElementwiseMax},
          {K::kMatVec, K::kConcat, K::kActivation});
    entry(GnnModel::kEdgeConv1, {K::kMatVec}, {K::kElementwiseMax}, {});
    entry(GnnModel::kEdgeConv5, {K::kMatVec, K::kActivation},
          {K::kElementwiseMax}, {});
    return t;
  }();
  auto it = kTable.find(m);
  AURORA_CHECK(it != kTable.end());
  return it->second;
}

}  // namespace aurora::gnn
