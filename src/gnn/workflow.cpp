#include "gnn/workflow.hpp"

#include "common/error.hpp"

namespace aurora::gnn {

OpCount Workflow::total_ops() const {
  OpCount total = 0;
  for (const auto& p : phases) total += p.total_ops;
  return total;
}

namespace {

/// MLP depth of the vertex/edge update where the model defines one.
constexpr std::uint32_t kGinMlpLayers = 2;
constexpr std::uint32_t kEdgeConv5MlpLayers = 5;

}  // namespace

Workflow generate_workflow(GnnModel model, const LayerConfig& layer,
                           VertexId num_vertices, EdgeId num_edges) {
  AURORA_CHECK(layer.in_dim > 0 && layer.out_dim > 0);
  AURORA_CHECK(num_vertices > 0);

  const auto n = static_cast<OpCount>(num_vertices);
  const auto m = static_cast<OpCount>(num_edges);
  const auto f = static_cast<OpCount>(layer.in_dim);
  const auto h = static_cast<OpCount>(layer.out_dim);
  const Bytes eb = layer.element_bytes;

  Workflow wf;
  wf.model = model;
  wf.layer = layer;
  wf.num_vertices = num_vertices;
  wf.num_edges = num_edges;
  wf.edge_feature_dim = layer.in_dim;

  const ModelOps& ops = model_ops(model);
  for (Phase p : kAllPhases) {
    auto& pw = wf.phase(p);
    pw.phase = p;
    pw.ops = ops.for_phase(p).ops;
    pw.present = !pw.ops.empty();
  }

  auto& eu = wf.phase(Phase::kEdgeUpdate);
  auto& agg = wf.phase(Phase::kAggregation);
  auto& vu = wf.phase(Phase::kVertexUpdate);

  // --- per-model operation counting ------------------------------------
  // Conventions: one multiply = one op, one add = one op (so a length-k dot
  // product is 2k ops and an (r x c) mat-vec is 2rc), one activation
  // evaluation = one op. Per-vertex linear transforms that a dataflow can
  // hoist out of the per-edge loop (G-GCN gates, GraphSAGE-Pool projections)
  // are counted once per vertex, matching how the accelerator executes them.
  switch (model) {
    case GnnModel::kGcn:
      eu.total_ops = m * f;                    // 1/sqrt(DuDv) * x_u per edge
      agg.total_ops = m * f;                   // Σ over incident edges
      vu.total_ops = 2 * n * f * h + 2 * n * h;  // W m_v + b, ReLU
      vu.weight_bytes = (f * h + h) * eb;
      break;
    case GnnModel::kGraphSageMean:
      agg.total_ops = m * f + n * f;           // Σ + 1/deg scaling
      vu.total_ops = 2 * n * f * h;
      vu.weight_bytes = f * h * eb;
      break;
    case GnnModel::kGin:
      agg.total_ops = m * f + n * f;           // Σ + (1+eps) x_v
      // 2-layer MLP: F->H then H->H, ReLU between.
      vu.total_ops = 2 * n * f * h + (kGinMlpLayers - 1) * 2 * n * h * h + n * h;
      vu.weight_bytes = (f * h + (kGinMlpLayers - 1) * h * h) * eb;
      break;
    case GnnModel::kCommNet:
      agg.total_ops = m * f;
      vu.total_ops = 2 * n * f * h;
      vu.weight_bytes = f * h * eb;
      break;
    case GnnModel::kVanillaAttention:
    case GnnModel::kAgnn:
      eu.total_ops = 3 * m * f;                // dot (2f) + scalar*V (f) per edge
      agg.total_ops = m * f;
      vu.total_ops = 2 * n * f * h + 3 * n * h;  // W m_v, softmax (~3 ops/elem)
      vu.weight_bytes = f * h * eb;
      break;
    case GnnModel::kGGcn:
      // Per-vertex gate transforms W_u x_u, W_v x_v (hoisted), then per edge:
      // add + sigmoid + elementwise multiply.
      eu.total_ops = 4 * n * f * f + 3 * m * f;
      eu.weight_bytes = 2 * f * f * eb;
      agg.total_ops = m * f;
      vu.total_ops = 2 * n * f * h + n * h;
      vu.weight_bytes = f * h * eb;
      break;
    case GnnModel::kGraphSagePool:
      // Hoisted pooling projection sigma(W_pl x_u + b) per vertex.
      eu.total_ops = 2 * n * f * f + 2 * n * f;
      eu.weight_bytes = (f * f + f) * eb;
      agg.total_ops = m * f;                   // element-wise max per edge
      // Concat(max-pool, x_v) -> W is (2F x H).
      vu.total_ops = 4 * n * f * h + 2 * n * h;
      vu.weight_bytes = (2 * f * h + h) * eb;
      break;
    case GnnModel::kEdgeConv1:
      // Theta (x_u - x_v) per edge: subtract (f) + mat-vec (2fh).
      eu.total_ops = m * (f + 2 * f * h);
      eu.weight_bytes = f * h * eb;
      agg.total_ops = m * h;                   // max over incident edges
      wf.edge_feature_dim = layer.out_dim;
      break;
    case GnnModel::kEdgeConv5:
      eu.total_ops =
          m * (f + 2 * f * h + (kEdgeConv5MlpLayers - 1) * 2 * h * h +
               kEdgeConv5MlpLayers * h);
      eu.weight_bytes =
          (f * h + (kEdgeConv5MlpLayers - 1) * h * h) * eb;
      agg.total_ops = m * h;
      wf.edge_feature_dim = layer.out_dim;
      break;
  }

  // --- flexible-dataflow reordering ----------------------------------------
  // Convolutional vertex updates are linear in the aggregate, so they
  // commute with the sum; applying them first pays off whenever they shrink
  // the feature width. Attention and MP models need raw neighbor features
  // at the edges and keep the aggregation-first order.
  if (model_category(model) == GnnCategory::kConvolutional && vu.present &&
      h < f && m > 0) {
    wf.update_first = true;
    wf.edge_feature_dim = layer.out_dim;
    // Per-edge work in edge update and aggregation now touches H-wide
    // vectors instead of F-wide ones.
    eu.total_ops = eu.total_ops * h / f;
    agg.total_ops = agg.total_ops * h / f;
  }

  // --- message volumes ---------------------------------------------------
  // Edge update & aggregation move one feature vector per directed edge;
  // the phase boundary crossing streams one vector per vertex (aggregated
  // m_v into sub-B, or — update-first — the transformed vector into sub-A).
  const Bytes edge_vec_bytes = static_cast<Bytes>(wf.edge_feature_dim) * eb;
  if (eu.present) {
    eu.num_messages = m;
    eu.message_bytes =
        wf.update_first ? edge_vec_bytes : static_cast<Bytes>(f) * eb;
  }
  agg.num_messages = m;
  agg.message_bytes = edge_vec_bytes;
  if (vu.present) {
    vu.num_messages = n;
    vu.message_bytes = edge_vec_bytes;
  }

  // Aggregation is always present in the models of Table II.
  AURORA_CHECK(agg.present);
  return wf;
}

}  // namespace aurora::gnn
