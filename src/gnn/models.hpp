// The GNN model zoo (paper Sec II + Table II).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "gnn/ops.hpp"

namespace aurora::gnn {

/// Every model the paper's Table II enumerates.
enum class GnnModel : std::uint8_t {
  kGcn,              // Kipf & Welling GCN          (C-GNN)
  kGraphSageMean,    // GraphSAGE, mean aggregator  (C-GNN)
  kGin,              // Graph Isomorphism Network   (C-GNN)
  kCommNet,          // CommNet                     (C-GNN)
  kVanillaAttention, // dot-product attention       (A-GNN)
  kAgnn,             // Attention-based GNN         (A-GNN)
  kGGcn,             // Gated GCN                   (MP-GNN)
  kGraphSagePool,    // GraphSAGE, pooling aggr.    (MP-GNN)
  kEdgeConv1,        // EdgeConv, 1-layer MLP       (MP-GNN)
  kEdgeConv5,        // EdgeConv, 5-layer MLP       (MP-GNN)
};

inline constexpr std::array<GnnModel, 10> kAllModels = {
    GnnModel::kGcn,           GnnModel::kGraphSageMean,
    GnnModel::kGin,           GnnModel::kCommNet,
    GnnModel::kVanillaAttention, GnnModel::kAgnn,
    GnnModel::kGGcn,          GnnModel::kGraphSagePool,
    GnnModel::kEdgeConv1,     GnnModel::kEdgeConv5};

/// Taxonomy by the form of the vertex-update coefficient (paper Sec II):
/// fixed scalar (C-GNN), learnable scalar (A-GNN), learnable vector (MP-GNN).
enum class GnnCategory : std::uint8_t {
  kConvolutional,
  kAttentional,
  kMessagePassing,
};

[[nodiscard]] const char* model_name(GnnModel m);
[[nodiscard]] const char* category_name(GnnCategory c);
[[nodiscard]] GnnCategory model_category(GnnModel m);

/// Whether the model carries per-edge embeddings through the layer (needed
/// by the tiler and the DRAM traffic model).
[[nodiscard]] bool model_has_edge_embeddings(GnnModel m);

/// The per-phase operation mix — the contents of Table II.
struct ModelOps {
  PhaseOps edge_update;
  PhaseOps aggregation;
  PhaseOps vertex_update;

  [[nodiscard]] const PhaseOps& for_phase(Phase p) const;
};

[[nodiscard]] const ModelOps& model_ops(GnnModel m);

}  // namespace aurora::gnn
