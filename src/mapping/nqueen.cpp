#include "mapping/nqueen.hpp"

#include <cstdlib>

#include "common/error.hpp"

namespace aurora::mapping {
namespace {

bool can_place(const std::vector<std::uint32_t>& cols, std::uint32_t row,
               std::uint32_t col) {
  for (std::uint32_t r = 0; r < row; ++r) {
    const std::uint32_t c = cols[r];
    if (c == col) return false;
    const auto dr = row - r;
    const auto dc = c > col ? c - col : col - c;
    if (dr == dc) return false;
  }
  return true;
}

bool queen(std::vector<std::uint32_t>& cols, std::uint32_t row,
           std::uint32_t rows, std::uint32_t num_cols) {
  if (row == rows) return true;
  for (std::uint32_t c = 0; c < num_cols; ++c) {
    if (can_place(cols, row, c)) {
      cols[row] = c;
      if (queen(cols, row + 1, rows, num_cols)) return true;
    }
  }
  return false;
}

/// Queen columns for `rows` queens on a rows x cols board, or a staggered
/// fallback when no solution exists (tiny boards only).
std::vector<std::uint32_t> queen_columns(std::uint32_t rows,
                                         std::uint32_t num_cols) {
  AURORA_CHECK(rows >= 1 && num_cols >= 1);
  AURORA_CHECK(rows <= num_cols);
  std::vector<std::uint32_t> cols(rows, 0);
  if (queen(cols, 0, rows, num_cols)) return cols;
  // No solution (e.g. 2x2, 3x3, 2x3): stagger columns so rows and columns
  // stay distinct even though diagonals may touch.
  for (std::uint32_t r = 0; r < rows; ++r) cols[r] = r % num_cols;
  return cols;
}

}  // namespace

std::vector<noc::Coord> identify_s_pes(std::uint32_t k) {
  return identify_s_pes(PeRegion::full(k));
}

std::vector<noc::Coord> identify_s_pes(const PeRegion& region) {
  region.validate();
  const std::uint32_t rows = std::min(region.rows(), region.cols());
  const auto cols = queen_columns(rows, region.cols());
  std::vector<noc::Coord> result;
  result.reserve(rows);
  for (std::uint32_t r = 0; r < rows; ++r) {
    result.push_back({region.row_begin + r, cols[r]});
  }
  return result;
}

bool is_valid_queen_placement(const std::vector<noc::Coord>& placement) {
  for (std::size_t i = 0; i < placement.size(); ++i) {
    for (std::size_t j = i + 1; j < placement.size(); ++j) {
      const auto& a = placement[i];
      const auto& b = placement[j];
      if (a.row == b.row || a.col == b.col) return false;
      const auto dr =
          a.row > b.row ? a.row - b.row : b.row - a.row;
      const auto dc =
          a.col > b.col ? a.col - b.col : b.col - a.col;
      if (dr == dc) return false;
    }
  }
  return true;
}

}  // namespace aurora::mapping
