// Vertex-to-PE mapping policies: the paper's degree-aware mapping
// (Algorithm 1) and the CGRA-ME-style hashing baseline.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "graph/csr.hpp"
#include "mapping/region.hpp"
#include "noc/config.hpp"
#include "noc/types.hpp"

namespace aurora::mapping {

struct MapperParams {
  /// The PE slice this subgraph maps onto (sub-accelerator A's allocation).
  PeRegion region;
  /// High-degree vertex slots per S_PE (C_PE): bank-buffer capacity divided
  /// by the feature-vector footprint.
  std::uint32_t c_pe_slots = 4;
  /// Vertex capacity of a regular PE (bounds low-degree packing).
  std::uint32_t pe_vertex_slots = 64;

  /// Convenience: square region over the whole mesh.
  [[nodiscard]] static MapperParams square(std::uint32_t k) {
    MapperParams p;
    p.region = PeRegion::full(k);
    return p;
  }
};

/// Result of mapping one subgraph's vertices onto the PE region.
struct Mapping {
  /// Full-mesh PE node per subgraph-local vertex.
  std::vector<noc::NodeId> vertex_to_pe;
  /// S_PE coordinates in full-mesh space (empty for the hashing policy).
  std::vector<noc::Coord> s_pes;
  /// Subgraph-local ids of the vertices classified as high degree.
  std::vector<VertexId> high_degree_vertices;
  PeRegion region;

  [[nodiscard]] std::size_t num_vertices() const {
    return vertex_to_pe.size();
  }
};

/// Algorithm 1: place S_PEs by N-queen, classify the top
/// N_SPE * C_PE vertices by degree as high-degree, map them to S_PEs
/// hash-sequentially, then pack the rest onto PEs with free slots.
/// The vertex range [begin, end) selects the subgraph within `g`; degrees
/// come from the full graph.
[[nodiscard]] Mapping degree_aware_map(const graph::CsrGraph& g,
                                       VertexId begin, VertexId end,
                                       const MapperParams& params);

/// CGRA-ME-style baseline: vertex i -> region PE (i mod num_pes),
/// degree-blind.
[[nodiscard]] Mapping hashing_map(const graph::CsrGraph& g, VertexId begin,
                                  VertexId end, const MapperParams& params);

/// NoC configuration that backs a degree-aware mapping: a full-width bypass
/// segment for every S_PE row and a region-height column segment for every
/// S_PE column (the paper's "bridge the longest communications" rule). The
/// N-queen placement guarantees one segment per wire. Wires outside the
/// region stay free for other sub-accelerators.
[[nodiscard]] noc::NocConfig make_bypass_config(const Mapping& mapping);

}  // namespace aurora::mapping
