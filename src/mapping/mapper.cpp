#include "mapping/mapper.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "mapping/nqueen.hpp"

namespace aurora::mapping {
namespace {

void check_range(const graph::CsrGraph& g, VertexId begin, VertexId end,
                 const MapperParams& params) {
  params.region.validate();
  AURORA_CHECK(begin < end);
  AURORA_CHECK(end <= g.num_vertices());
  const std::uint64_t capacity =
      static_cast<std::uint64_t>(params.region.num_pes()) *
      params.pe_vertex_slots;
  AURORA_CHECK_MSG(end - begin <= capacity,
                   "subgraph of " << (end - begin)
                                  << " vertices exceeds PE region capacity "
                                  << capacity);
}

/// Region-local PE index (0..num_pes) for iteration order (row-major).
noc::NodeId region_node(const PeRegion& region, std::uint32_t idx) {
  return region.node(idx / region.cols(), idx % region.cols());
}

/// Interleave the low 16 bits of x and y (Morton / Z-order code).
std::uint32_t morton2(std::uint32_t x, std::uint32_t y) {
  auto spread = [](std::uint32_t v) {
    v &= 0xFFFF;
    v = (v | (v << 8)) & 0x00FF00FF;
    v = (v | (v << 4)) & 0x0F0F0F0F;
    v = (v | (v << 2)) & 0x33333333;
    v = (v | (v << 1)) & 0x55555555;
    return v;
  };
  return spread(x) | (spread(y) << 1);
}

/// Region PEs in Z-order: consecutive fill indices land on mesh-adjacent or
/// near-adjacent PEs, so vertex-id locality becomes 2-D mesh locality.
std::vector<noc::NodeId> zorder_nodes(const PeRegion& region) {
  std::vector<std::pair<std::uint32_t, noc::NodeId>> keyed;
  keyed.reserve(region.num_pes());
  for (std::uint32_t r = 0; r < region.rows(); ++r) {
    for (std::uint32_t c = 0; c < region.cols(); ++c) {
      keyed.emplace_back(morton2(c, r), region.node(r, c));
    }
  }
  std::sort(keyed.begin(), keyed.end());
  std::vector<noc::NodeId> order;
  order.reserve(keyed.size());
  for (const auto& [key, node] : keyed) order.push_back(node);
  return order;
}

}  // namespace

Mapping degree_aware_map(const graph::CsrGraph& g, VertexId begin,
                         VertexId end, const MapperParams& params) {
  check_range(g, begin, end, params);
  const VertexId n = end - begin;
  const PeRegion& region = params.region;
  const std::uint32_t num_pes = region.num_pes();

  Mapping m;
  m.region = region;
  m.vertex_to_pe.assign(n, 0);
  m.s_pes = identify_s_pes(region);

  // --- High-degree vertex identification (Algorithm 1 lines 13-25).
  const std::uint64_t n_hn_cap =
      static_cast<std::uint64_t>(m.s_pes.size()) * params.c_pe_slots;
  std::vector<VertexId> order(n);
  for (VertexId i = 0; i < n; ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
    const auto da = g.degree(begin + a);
    const auto db = g.degree(begin + b);
    if (da != db) return da > db;
    return a < b;
  });
  const auto n_hn = static_cast<VertexId>(std::min<std::uint64_t>(n_hn_cap, n));
  m.high_degree_vertices.assign(order.begin(), order.begin() + n_hn);

  // --- Placement. High-degree vertices go to S_PEs hash-sequentially
  // (round-robin keeps every bypass wire equally loaded); the rest fill
  // regular PEs along the Z-order curve.
  const std::vector<noc::NodeId> pe_order = zorder_nodes(region);
  std::vector<std::uint32_t> pos_of_node(
      static_cast<std::size_t>(region.mesh_k) * region.mesh_k, 0);
  for (std::uint32_t i = 0; i < num_pes; ++i) pos_of_node[pe_order[i]] = i;

  std::vector<std::uint32_t> load(num_pes, 0);
  std::vector<bool> is_s_pe(num_pes, false);
  for (const auto& c : m.s_pes) {
    is_s_pe[pos_of_node[noc::to_node(c, region.mesh_k)]] = true;
  }

  for (VertexId i = 0; i < n_hn; ++i) {
    const auto& coord = m.s_pes[i % m.s_pes.size()];
    const noc::NodeId pe = noc::to_node(coord, region.mesh_k);
    m.vertex_to_pe[m.high_degree_vertices[i]] = pe;
    ++load[pos_of_node[pe]];
  }

  // Low-degree vertices map "sequentially" (Algorithm 1): in vertex-id
  // order, filling one PE before moving to the next. Consecutive ids — which
  // share most of their neighborhoods in reordered real graphs — land on the
  // same or adjacent PEs, keeping hop counts short. Per-PE fill is levelled
  // so the tail of the id range does not overload the last PEs.
  const VertexId n_low = n - n_hn;
  const std::uint32_t fill_target = std::max<std::uint32_t>(
      1, (n_low + num_pes - 1) / num_pes);
  std::vector<bool> is_high(n, false);
  for (VertexId hv : m.high_degree_vertices) is_high[hv] = true;
  std::uint32_t cursor = 0;
  for (VertexId v = 0; v < n; ++v) {
    if (is_high[v]) continue;
    // Advance past PEs that reached their fill target (or hard limit).
    std::uint32_t placed = num_pes;
    for (std::uint32_t probe = 0; probe < num_pes; ++probe) {
      const std::uint32_t pe = (cursor + probe) % num_pes;
      const std::uint32_t limit =
          is_s_pe[pe] ? params.pe_vertex_slots + params.c_pe_slots
                      : params.pe_vertex_slots;
      const std::uint32_t target = std::min(limit, fill_target +
                                                       (is_s_pe[pe]
                                                            ? params.c_pe_slots
                                                            : 0));
      if (load[pe] < target) {
        placed = pe;
        cursor = pe;  // keep filling this PE until its target is reached
        break;
      }
    }
    if (placed == num_pes) {
      // All PEs hit the levelled target; fall back to the hard limits.
      for (std::uint32_t probe = 0; probe < num_pes; ++probe) {
        const std::uint32_t pe = (cursor + probe) % num_pes;
        const std::uint32_t limit =
            is_s_pe[pe] ? params.pe_vertex_slots + params.c_pe_slots
                        : params.pe_vertex_slots;
        if (load[pe] < limit) {
          placed = pe;
          cursor = pe;
          break;
        }
      }
    }
    AURORA_CHECK_MSG(placed < num_pes, "no PE slot available for vertex " << v);
    m.vertex_to_pe[v] = pe_order[placed];
    ++load[placed];
  }
  return m;
}

Mapping hashing_map(const graph::CsrGraph& g, VertexId begin, VertexId end,
                    const MapperParams& params) {
  check_range(g, begin, end, params);
  const VertexId n = end - begin;
  Mapping m;
  m.region = params.region;
  m.vertex_to_pe.resize(n);
  const std::uint32_t num_pes = params.region.num_pes();
  for (VertexId i = 0; i < n; ++i) {
    m.vertex_to_pe[i] = region_node(params.region, i % num_pes);
  }
  return m;
}

noc::NocConfig make_bypass_config(const Mapping& mapping) {
  const PeRegion& region = mapping.region;
  region.validate();
  const std::uint32_t k = region.mesh_k;
  noc::NocConfig config(k);
  if (k < 3) return config;  // segments need length >= 2
  // One segment per wire: if a (degenerate) placement puts several S_PEs on
  // one row or column, the shared wire is configured once.
  std::vector<bool> row_done(k, false), col_done(k, false);
  for (const auto& s : mapping.s_pes) {
    if (!row_done[s.row]) {
      config.add_row_segment({s.row, 0, k - 1});
      row_done[s.row] = true;
    }
    // Column segments stay within the region so the wire below remains free
    // for the other sub-accelerator's rings.
    if (!col_done[s.col] && region.row_end - 1 >= region.row_begin + 2) {
      config.add_col_segment({s.col, region.row_begin, region.row_end - 1});
      col_done[s.col] = true;
    }
  }
  return config;
}

}  // namespace aurora::mapping
