#include "mapping/quality.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "noc/routing.hpp"

namespace aurora::mapping {

MappingQuality evaluate_mapping(const graph::CsrGraph& g, VertexId begin,
                                VertexId end, const Mapping& mapping,
                                const noc::NocConfig& config) {
  AURORA_CHECK(end > begin);
  AURORA_CHECK(mapping.vertex_to_pe.size() == end - begin);
  AURORA_CHECK(config.k() == mapping.region.mesh_k);
  const std::uint32_t k = mapping.region.mesh_k;
  const std::uint32_t num_pes = k * k;

  MappingQuality q;
  std::vector<std::uint64_t> pe_load(num_pes, 0);
  std::vector<std::uint64_t> row_load(k, 0);

  // Hop distances repeat heavily (few distinct PE pairs matter); memoise.
  std::vector<std::int32_t> hop_cache(
      static_cast<std::size_t>(num_pes) * num_pes, -1);
  std::vector<std::uint8_t> bypass_cache(
      static_cast<std::size_t>(num_pes) * num_pes, 0);

  for (VertexId v = begin; v < end; ++v) {
    const noc::NodeId src = mapping.vertex_to_pe[v - begin];
    for (VertexId u : g.neighbors(v)) {
      if (u < begin || u >= end) continue;  // halo traffic goes via DRAM
      const noc::NodeId dst = mapping.vertex_to_pe[u - begin];
      if (src == dst) {
        ++q.local_edges;
        continue;
      }
      ++q.cross_pe_messages;
      ++pe_load[src];
      ++pe_load[dst];
      ++row_load[src / k];
      if (dst / k != src / k) ++row_load[dst / k];

      const std::size_t key = static_cast<std::size_t>(src) * num_pes + dst;
      if (hop_cache[key] < 0) {
        std::uint32_t hops = 0;
        bool used_bypass = false;
        noc::NodeId cur = src;
        while (cur != dst) {
          const noc::Port out = noc::route_output(cur, dst, config);
          const noc::Hop hop = noc::resolve_hop(cur, out, config);
          used_bypass = used_bypass || hop.via_bypass;
          cur = hop.next_node;
          ++hops;
        }
        hop_cache[key] = static_cast<std::int32_t>(hops);
        bypass_cache[key] = used_bypass ? 1 : 0;
      }
      q.total_hops += static_cast<std::uint64_t>(hop_cache[key]);
      q.bypass_messages += bypass_cache[key];
    }
  }

  if (q.cross_pe_messages > 0) {
    q.avg_hops = static_cast<double>(q.total_hops) /
                 static_cast<double>(q.cross_pe_messages);
  }
  // Loads average over the PEs/rows the mapping actually uses — the region —
  // not the full mesh, or imbalance would be inflated by idle PEs.
  q.max_pe_load = *std::max_element(pe_load.begin(), pe_load.end());
  q.mean_pe_load = 0.0;
  for (const auto l : pe_load) q.mean_pe_load += static_cast<double>(l);
  q.mean_pe_load /= static_cast<double>(mapping.region.num_pes());
  q.max_row_load = *std::max_element(row_load.begin(), row_load.end());
  for (const auto l : row_load) q.mean_row_load += static_cast<double>(l);
  q.mean_row_load /= static_cast<double>(mapping.region.rows());
  return q;
}

}  // namespace aurora::mapping
