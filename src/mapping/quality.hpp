// Mapping quality metrics: communication load balance and hop counts under a
// given NoC configuration. Used by the mapping ablation (paper Sec VI-C) and
// by the analytic performance model.
#pragma once

#include "graph/csr.hpp"
#include "mapping/mapper.hpp"
#include "noc/config.hpp"

namespace aurora::mapping {

struct MappingQuality {
  /// Messages (directed edges crossing PEs) in the subgraph.
  std::uint64_t cross_pe_messages = 0;
  /// Edges whose endpoints share a PE (no NoC traffic).
  std::uint64_t local_edges = 0;
  /// Total and average hop count over all cross-PE messages.
  std::uint64_t total_hops = 0;
  double avg_hops = 0.0;
  /// Messages that traverse at least one bypass segment.
  std::uint64_t bypass_messages = 0;
  /// Communication load of the busiest PE (incident cross-PE messages) vs
  /// the mean — the imbalance the degree-aware mapping attacks.
  std::uint64_t max_pe_load = 0;
  double mean_pe_load = 0.0;
  /// Busiest mesh row load (messages whose source or destination sits in
  /// that row) vs the mean row load.
  std::uint64_t max_row_load = 0;
  double mean_row_load = 0.0;

  [[nodiscard]] double pe_load_imbalance() const {
    return mean_pe_load > 0.0
               ? static_cast<double>(max_pe_load) / mean_pe_load
               : 0.0;
  }
  [[nodiscard]] double row_load_imbalance() const {
    return mean_row_load > 0.0
               ? static_cast<double>(max_row_load) / mean_row_load
               : 0.0;
  }
};

/// Evaluate `mapping` of subgraph [begin, end) of `g` routed under `config`.
[[nodiscard]] MappingQuality evaluate_mapping(const graph::CsrGraph& g,
                                              VertexId begin, VertexId end,
                                              const Mapping& mapping,
                                              const noc::NocConfig& config);

}  // namespace aurora::mapping
