// N-Queen placement of the special PEs (paper Algorithm 1, lines 1-12).
//
// S_PEs host high-degree vertices. Placing them like non-attacking queens —
// no two in the same row, column or diagonal — guarantees each bypass wire
// (one per row, one per column) serves at most one hotspot.
#pragma once

#include <cstdint>
#include <vector>

#include "mapping/region.hpp"
#include "noc/types.hpp"

namespace aurora::mapping {

/// First solution of the K-queens problem by the recursive backtracking in
/// Algorithm 1 ("Queen(k)"), one S_PE per row. K in {2, 3} has no solution;
/// those sizes fall back to a simple staggered diagonal (documented
/// deviation — a 2x2 or 3x3 array is below any practical configuration).
[[nodiscard]] std::vector<noc::Coord> identify_s_pes(std::uint32_t k);

/// Rectangular variant for a sub-accelerator region: places
/// min(rows, cols) S_PEs, one per region row, mutually non-attacking.
/// Returned coordinates are in FULL-MESH space. Falls back to a stagger when
/// backtracking finds no solution (possible only for tiny regions).
[[nodiscard]] std::vector<noc::Coord> identify_s_pes(const PeRegion& region);

/// True when no two coordinates share a row, column or diagonal.
[[nodiscard]] bool is_valid_queen_placement(
    const std::vector<noc::Coord>& placement);

}  // namespace aurora::mapping
