// A rectangular PE region within the full mesh — the resource slice the
// partition algorithm hands to a sub-accelerator.
#pragma once

#include <cstdint>

#include "common/error.hpp"
#include "noc/types.hpp"

namespace aurora::mapping {

/// Rows [row_begin, row_end) x all K columns of a K x K mesh. Sub-
/// accelerators are row-granular because the DRAM crossbar feeds PE rows
/// (paper Sec III-A).
struct PeRegion {
  std::uint32_t mesh_k = 0;
  std::uint32_t row_begin = 0;
  std::uint32_t row_end = 0;  // exclusive

  [[nodiscard]] static PeRegion full(std::uint32_t k) { return {k, 0, k}; }

  [[nodiscard]] std::uint32_t rows() const { return row_end - row_begin; }
  [[nodiscard]] std::uint32_t cols() const { return mesh_k; }
  [[nodiscard]] std::uint32_t num_pes() const { return rows() * cols(); }

  /// Mesh node id of region-local coordinates.
  [[nodiscard]] noc::NodeId node(std::uint32_t local_row,
                                 std::uint32_t local_col) const {
    AURORA_CHECK(local_row < rows() && local_col < cols());
    return (row_begin + local_row) * mesh_k + local_col;
  }

  [[nodiscard]] bool contains(noc::NodeId n) const {
    const auto row = n / mesh_k;
    return row >= row_begin && row < row_end;
  }

  void validate() const {
    AURORA_CHECK(mesh_k >= 1);
    AURORA_CHECK(row_begin < row_end);
    AURORA_CHECK(row_end <= mesh_k);
  }
};

}  // namespace aurora::mapping
