// Streaming graph maintenance over an immutable CSR base.
//
// The serving scenarios the paper motivates (recommendation graphs under
// load) mutate the graph while requests are in flight, but graph::CsrGraph
// is deliberately immutable — every engine consumes frozen row_ptr/col_idx
// arrays. DynamicGraph bridges the two worlds with a delta overlay: the
// bulk of the adjacency stays in a compact CSR `base`, streaming edge and
// vertex updates accumulate in per-vertex sorted delta lists, and a
// threshold-triggered compaction folds the overlay back into a fresh CSR.
// Compaction is an O(n + m) per-vertex merge whose output is bit-identical
// to rebuilding the CSR from scratch from the logical edge set — the
// invariant the workload tests and fuzzer pin — so downstream consumers
// (sampler, shard planner, engines) never observe a half-updated graph.
//
// Directed-edge semantics mirror CsrBuilder: self loops are rejected and
// duplicate edges are refused (mutators return false instead of silently
// double-counting). The repo stores GNN graphs with both directions
// materialised, so the undirected mutators are the primary interface;
// remove_vertex relies on that symmetry to find in-edges via out-edges.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "graph/csr.hpp"

namespace aurora::workload {

/// Neighbor access shared by frozen and streaming graphs, so the sampler
/// runs unchanged over either. Neighbor lists are always sorted and
/// duplicate-free, matching CsrGraph's contract.
class GraphSource {
 public:
  virtual ~GraphSource() = default;
  [[nodiscard]] virtual VertexId num_vertices() const = 0;
  [[nodiscard]] virtual EdgeId degree(VertexId v) const = 0;
  /// Append v's current neighbors (sorted ascending) to `out`.
  virtual void append_neighbors(VertexId v,
                                std::vector<VertexId>& out) const = 0;
};

/// A frozen CSR as a GraphSource (non-owning view).
class CsrSource final : public GraphSource {
 public:
  explicit CsrSource(const graph::CsrGraph& g) : g_(&g) {}
  [[nodiscard]] VertexId num_vertices() const override {
    return g_->num_vertices();
  }
  [[nodiscard]] EdgeId degree(VertexId v) const override {
    return g_->degree(v);
  }
  void append_neighbors(VertexId v,
                        std::vector<VertexId>& out) const override {
    const auto nb = g_->neighbors(v);
    out.insert(out.end(), nb.begin(), nb.end());
  }

 private:
  const graph::CsrGraph* g_;
};

struct CompactionPolicy {
  /// Compact when overlay entries exceed this fraction of the base edge
  /// count; <= 0 disables automatic compaction (explicit compact() only).
  double threshold_fraction = 0.25;
  /// Overlay entries below this never trigger compaction, so tiny graphs
  /// don't thrash.
  EdgeId min_overlay_edges = 256;
};

/// A mutable graph: immutable CSR base + per-vertex delta overlay.
class DynamicGraph final : public GraphSource {
 public:
  explicit DynamicGraph(graph::CsrGraph base, CompactionPolicy policy = {});

  // -- GraphSource --------------------------------------------------------
  [[nodiscard]] VertexId num_vertices() const override { return n_; }
  [[nodiscard]] EdgeId degree(VertexId v) const override;
  void append_neighbors(VertexId v,
                        std::vector<VertexId>& out) const override;

  // -- queries ------------------------------------------------------------
  /// Logical directed edge count (base minus removals plus additions).
  [[nodiscard]] EdgeId num_edges() const { return logical_edges_; }
  [[nodiscard]] bool has_edge(VertexId u, VertexId v) const;

  // -- mutators (directed) ------------------------------------------------
  /// Insert u -> v. Returns false (and changes nothing) for self loops and
  /// edges already present.
  bool add_edge(VertexId u, VertexId v);
  /// Delete u -> v. Returns false when the edge is absent.
  bool remove_edge(VertexId u, VertexId v);

  // -- mutators (undirected, the GNN-dataset idiom) -----------------------
  /// Insert both directions; returns true when at least one was new.
  bool add_undirected_edge(VertexId u, VertexId v);
  /// Delete both directions; returns true when at least one existed.
  bool remove_undirected_edge(VertexId u, VertexId v);
  /// Append a fresh isolated vertex; returns its id.
  VertexId add_vertex();
  /// Drop every edge incident to v (both directions — the graph must be
  /// symmetric, which the undirected mutators preserve). The id stays valid
  /// with degree 0, so vertex ids never shift under churn. Returns the
  /// number of directed edges removed.
  EdgeId remove_vertex(VertexId v);

  // -- compaction ---------------------------------------------------------
  /// Fold the overlay into a fresh base CSR via a per-vertex sorted merge.
  /// Bit-identical to `snapshot()` (tested + fuzzed). No-op when clean.
  void compact();
  /// From-scratch CSR rebuild of the current logical edge set (reference
  /// semantics for compact(), and the frozen copy handed to planners).
  [[nodiscard]] graph::CsrGraph snapshot() const;
  /// The compacted CSR under the overlay. Only equal to the logical graph
  /// right after compact().
  [[nodiscard]] const graph::CsrGraph& base() const { return base_; }

  // -- accounting ---------------------------------------------------------
  /// Pending overlay entries (added + removed directed edges).
  [[nodiscard]] EdgeId overlay_edges() const { return overlay_edges_; }
  /// Bumps on every successful mutation.
  [[nodiscard]] std::uint64_t version() const { return version_; }
  [[nodiscard]] std::uint64_t compactions() const { return compactions_; }
  [[nodiscard]] const CompactionPolicy& policy() const { return policy_; }

 private:
  struct Delta {
    /// Sorted, disjoint from the base row; edges not yet in the base CSR.
    std::vector<VertexId> added;
    /// Sorted, subset of the base row; edges logically deleted.
    std::vector<VertexId> removed;
  };

  /// v's base-CSR neighbors ([] for vertices appended after the base).
  [[nodiscard]] std::span<const VertexId> base_neighbors(VertexId v) const;
  void maybe_auto_compact();

  graph::CsrGraph base_;
  CompactionPolicy policy_;
  VertexId n_ = 0;
  std::vector<Delta> delta_;
  EdgeId logical_edges_ = 0;
  EdgeId overlay_edges_ = 0;
  std::uint64_t version_ = 0;
  std::uint64_t compactions_ = 0;
};

}  // namespace aurora::workload
