#include "workload/workload_gen.hpp"

#include <algorithm>
#include <memory>
#include <string>
#include <utility>

#include "cluster/shard_churn.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/scheduler.hpp"
#include "graph/degree.hpp"

namespace aurora::workload {

namespace {

/// Decorrelates the op-mix draws from the arrival clock (both take the same
/// user seed).
constexpr std::uint64_t kOpSeedSalt = 0xD1B54A32D192ED03ull;

}  // namespace

WorkloadGenerator::WorkloadGenerator(DynamicWorkloadParams params)
    : params_(std::move(params)) {
  AURORA_CHECK_MSG(params_.num_ops > 0, "workload needs at least one op");
  AURORA_CHECK_MSG(
      params_.mutation_fraction >= 0.0 && params_.mutation_fraction <= 1.0,
      "mutation_fraction must be in [0, 1]");
  AURORA_CHECK_MSG(params_.num_seeds >= 1, "queries need at least one seed");
  AURORA_CHECK_MSG(params_.num_tenants >= 1, "need at least one tenant");
  AURORA_CHECK_MSG(params_.num_chips >= 1, "need at least one chip");
}

DynamicWorkload WorkloadGenerator::generate(DynamicGraph& dyn,
                                            const graph::Dataset& parent,
                                            const core::GnnJob& job,
                                            sim::Tracer* tracer) const {
  serving::ArrivalProcess arrivals(params_.arrival, params_.seed);
  Rng ops(params_.seed + kOpSeedSalt);
  NeighborSampler sampler(params_.sampler);
  const std::string job_sig = core::job_signature(job);

  DynamicWorkload out;
  DynamicWorkloadStats& stats = out.stats;
  const std::uint64_t compactions_before = dyn.compactions();

  // Churn-aware sharding: baseline the tracker on a fresh cut of the
  // current graph. Recuts freeze hash ownership for vertices born between
  // rebases, so kHash keeps tracker counters exactly replayable against a
  // from-scratch plan (the property the tests pin).
  std::unique_ptr<cluster::ShardChurnTracker> tracker;
  const bool track_churn = params_.num_chips >= 2;
  auto plan_dataset = [&]() {
    graph::Dataset ds;
    ds.spec = parent.spec;
    ds.scale = parent.scale;
    ds.graph = dyn.snapshot();
    ds.degree_stats = graph::compute_degree_stats(ds.graph);
    return ds;
  };
  if (track_churn) {
    const graph::Dataset ds = plan_dataset();
    tracker = std::make_unique<cluster::ShardChurnTracker>(
        cluster::make_shard_plan(ds, params_.num_chips,
                                 params_.shard_strategy));
  }

  // Directed-edge mutators gated on DynamicGraph's "actually changed"
  // return, so tracker counts stay exact under duplicate inserts and
  // missing-edge deletes.
  auto add_directed = [&](VertexId u, VertexId v) {
    if (!dyn.add_edge(u, v)) return false;
    if (tracker) tracker->note_edge_added(u, v);
    return true;
  };
  auto remove_directed = [&](VertexId u, VertexId v) {
    if (!dyn.remove_edge(u, v)) return false;
    if (tracker) tracker->note_edge_removed(u, v);
    return true;
  };

  std::vector<VertexId> scratch;
  for (std::uint64_t i = 0; i < params_.num_ops; ++i) {
    const Cycle at = arrivals.next();
    const VertexId n = dyn.num_vertices();

    if (ops.next_bool(params_.mutation_fraction)) {
      GraphMutation m;
      m.at = at;
      ++stats.mutations;
      const bool vertex_op = ops.next_bool(params_.vertex_fraction);
      const bool insert = ops.next_bool(params_.insert_fraction);
      if (vertex_op && insert) {
        m.kind = GraphMutation::Kind::kVertexAdd;
        m.u = dyn.add_vertex();
        m.v = 0;
        m.applied = true;
        ++stats.vertex_adds;
      } else if (vertex_op) {
        m.kind = GraphMutation::Kind::kVertexRemove;
        m.u = static_cast<VertexId>(ops.next_below(n));
        m.v = 0;
        // Manual edge-by-edge removal (instead of dyn.remove_vertex) so the
        // churn tracker sees every directed edge that actually vanished.
        scratch.clear();
        dyn.append_neighbors(m.u, scratch);
        for (const VertexId w : scratch) {
          m.applied |= remove_directed(m.u, w);
          m.applied |= remove_directed(w, m.u);
        }
        ++stats.vertex_removes;
      } else if (insert) {
        m.kind = GraphMutation::Kind::kEdgeAdd;
        m.u = static_cast<VertexId>(ops.next_below(n));
        m.v = static_cast<VertexId>(ops.next_below(n));
        m.applied |= add_directed(m.u, m.v);
        m.applied |= add_directed(m.v, m.u);
        ++stats.edge_adds;
      } else {
        m.kind = GraphMutation::Kind::kEdgeRemove;
        m.u = static_cast<VertexId>(ops.next_below(n));
        scratch.clear();
        dyn.append_neighbors(m.u, scratch);
        if (!scratch.empty()) {
          m.v = scratch[ops.next_below(scratch.size())];
          m.applied |= remove_directed(m.u, m.v);
          m.applied |= remove_directed(m.v, m.u);
        } else {
          m.v = m.u;  // isolated vertex: the delete is generated but inert
        }
        ++stats.edge_removes;
      }

      if (m.applied && tracer != nullptr) {
        tracer->record(m.at, sim::TraceEvent::kGraphMutation,
                       static_cast<std::uint64_t>(m.kind),
                       sim::pack_u32_pair(m.u, m.v), dyn.num_edges());
      }
      out.mutations.push_back(m);

      if (tracker && tracker->should_reshard(params_.reshard_threshold)) {
        const graph::Dataset ds = plan_dataset();
        const cluster::ShardPlan plan = cluster::make_shard_plan(
            ds, params_.num_chips, params_.shard_strategy);
        if (tracer != nullptr) {
          tracer->record(at, sim::TraceEvent::kReshard, params_.num_chips,
                         plan.cut_edges, tracker->cut_edges(),
                         tracker->mutations_since_rebase());
        }
        tracker->rebase(plan);
        ++stats.reshards;
      }
      continue;
    }

    // Query: sample against the graph as of this cycle.
    std::vector<VertexId> seeds;
    seeds.reserve(params_.num_seeds);
    for (std::uint32_t s = 0; s < params_.num_seeds; ++s) {
      seeds.push_back(static_cast<VertexId>(ops.next_below(n)));
    }
    SampledBatch batch = sampler.sample(dyn, seeds, /*salt=*/i);

    serving::ServingRequest request;
    request.id = i;
    request.tenant =
        static_cast<std::uint32_t>(ops.next_below(params_.num_tenants));
    request.job = job;
    request.label = "query #" + std::to_string(i);
    request.dataset_key =
        "q" + std::to_string(i) + ":" + std::to_string(batch.content_hash);
    request.compat_key = request.dataset_key + "|" + job_sig;
    request.arrival = at;
    request.deadline = params_.slo_cycles == 0
                           ? serving::kNoDeadline
                           : at + params_.slo_cycles;
    request.dataset = make_batch_dataset(parent, std::move(batch));
    out.queries.push_back(std::move(request));
    ++stats.queries;
  }

  stats.compactions = dyn.compactions() - compactions_before;
  stats.final_vertices = dyn.num_vertices();
  stats.final_edges = dyn.num_edges();
  if (tracker) {
    stats.final_cut_edges = tracker->cut_edges();
    stats.planned_cut_edges = tracker->planned_cut_edges();
  }
  return out;
}

}  // namespace aurora::workload
