#include "workload/sampler.hpp"

#include <algorithm>
#include <unordered_map>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "graph/degree.hpp"

namespace aurora::workload {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

void fnv_mix(std::uint64_t& h, std::uint64_t x) {
  for (int i = 0; i < 8; ++i) {
    h ^= (x >> (8 * i)) & 0xff;
    h *= kFnvPrime;
  }
}

}  // namespace

NeighborSampler::NeighborSampler(SamplerParams params)
    : params_(std::move(params)) {
  AURORA_CHECK_MSG(!params_.fanouts.empty(),
                   "sampler needs at least one fanout hop");
}

SampledBatch NeighborSampler::sample(const GraphSource& source,
                                     const std::vector<VertexId>& seeds,
                                     std::uint64_t salt) const {
  AURORA_CHECK_MSG(!seeds.empty(), "sampler needs at least one seed vertex");
  const VertexId n = source.num_vertices();

  SampledBatch batch;
  batch.global_ids.reserve(seeds.size() * 8);
  // local_of assigns compact ids in discovery order; seeds claim the first
  // slots (duplicate seeds collapse).
  std::unordered_map<VertexId, VertexId> local_of;
  auto intern = [&](VertexId global) -> VertexId {
    const auto [it, inserted] = local_of.try_emplace(
        global, static_cast<VertexId>(batch.global_ids.size()));
    if (inserted) batch.global_ids.push_back(global);
    return it->second;
  };

  std::vector<VertexId> frontier;
  for (const VertexId s : seeds) {
    AURORA_CHECK_MSG(s < n, "sample seed " << s << " out of range");
    const auto before = batch.global_ids.size();
    intern(s);
    if (batch.global_ids.size() > before) frontier.push_back(s);
  }
  batch.num_seeds = static_cast<std::uint32_t>(batch.global_ids.size());

  Rng rng(params_.seed ^ (salt * 0x9E3779B97F4A7C15ull));
  std::vector<std::pair<VertexId, VertexId>> edges;
  std::vector<VertexId> nbrs;
  std::vector<VertexId> next;

  for (const std::uint32_t fanout : params_.fanouts) {
    next.clear();
    for (const VertexId u : frontier) {
      nbrs.clear();
      source.append_neighbors(u, nbrs);
      if (nbrs.empty()) continue;

      auto visit = [&](VertexId v) {
        ++batch.sampled_edges;
        edges.emplace_back(u, v);
        const auto before = batch.global_ids.size();
        intern(v);
        if (batch.global_ids.size() > before) next.push_back(v);
      };

      if (fanout == 0 || nbrs.size() <= fanout) {
        for (const VertexId v : nbrs) visit(v);
      } else if (params_.with_replacement) {
        for (std::uint32_t i = 0; i < fanout; ++i) {
          visit(nbrs[rng.next_below(nbrs.size())]);
        }
      } else {
        // Partial Fisher-Yates: the first `fanout` slots end up a uniform
        // without-replacement sample.
        for (std::uint32_t i = 0; i < fanout; ++i) {
          const auto j = i + rng.next_below(nbrs.size() - i);
          std::swap(nbrs[i], nbrs[j]);
          visit(nbrs[i]);
        }
      }
    }
    batch.frontier_sizes.push_back(static_cast<std::uint32_t>(next.size()));
    frontier = next;
    if (frontier.empty()) break;
  }
  while (batch.frontier_sizes.size() < params_.fanouts.size()) {
    batch.frontier_sizes.push_back(0);
  }

  // Materialise the induced subgraph symmetrically (the repo's convention:
  // aggregation reads both directions), remapped to local ids.
  graph::CsrBuilder builder(
      static_cast<VertexId>(batch.global_ids.size()));
  for (const auto& [u, v] : edges) {
    builder.add_undirected_edge(local_of.at(u), local_of.at(v));
  }
  batch.subgraph = std::move(builder).build();

  std::uint64_t h = kFnvOffset;
  fnv_mix(h, batch.global_ids.size());
  for (const VertexId g : batch.global_ids) fnv_mix(h, g);
  for (const EdgeId r : batch.subgraph.row_ptr()) fnv_mix(h, r);
  for (const VertexId c : batch.subgraph.col_idx()) fnv_mix(h, c);
  batch.content_hash = h;
  return batch;
}

std::shared_ptr<const graph::Dataset> make_batch_dataset(
    const graph::Dataset& parent, SampledBatch batch) {
  auto ds = std::make_shared<graph::Dataset>();
  ds->spec = parent.spec;
  ds->scale = parent.scale;
  ds->degree_stats = graph::compute_degree_stats(batch.subgraph);
  ds->graph = std::move(batch.subgraph);
  return ds;
}

}  // namespace aurora::workload
