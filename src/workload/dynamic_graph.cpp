#include "workload/dynamic_graph.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace aurora::workload {

namespace {

/// Insert x into a sorted vector, keeping it sorted. Returns false when x is
/// already present.
bool sorted_insert(std::vector<VertexId>& vec, VertexId x) {
  const auto it = std::lower_bound(vec.begin(), vec.end(), x);
  if (it != vec.end() && *it == x) return false;
  vec.insert(it, x);
  return true;
}

/// Erase x from a sorted vector. Returns false when x is absent.
bool sorted_erase(std::vector<VertexId>& vec, VertexId x) {
  const auto it = std::lower_bound(vec.begin(), vec.end(), x);
  if (it == vec.end() || *it != x) return false;
  vec.erase(it);
  return true;
}

bool sorted_contains(const std::vector<VertexId>& vec, VertexId x) {
  return std::binary_search(vec.begin(), vec.end(), x);
}

}  // namespace

DynamicGraph::DynamicGraph(graph::CsrGraph base, CompactionPolicy policy)
    : base_(std::move(base)),
      policy_(policy),
      n_(base_.num_vertices()),
      delta_(n_),
      logical_edges_(base_.num_edges()) {
  AURORA_CHECK_MSG(n_ > 0, "DynamicGraph needs a non-empty base graph");
}

std::span<const VertexId> DynamicGraph::base_neighbors(VertexId v) const {
  if (v >= base_.num_vertices()) return {};
  return base_.neighbors(v);
}

EdgeId DynamicGraph::degree(VertexId v) const {
  AURORA_CHECK(v < n_);
  const auto& d = delta_[v];
  return base_neighbors(v).size() + d.added.size() - d.removed.size();
}

void DynamicGraph::append_neighbors(VertexId v,
                                    std::vector<VertexId>& out) const {
  AURORA_CHECK(v < n_);
  const auto base = base_neighbors(v);
  const auto& d = delta_[v];
  if (d.added.empty() && d.removed.empty()) {
    out.insert(out.end(), base.begin(), base.end());
    return;
  }
  // Merge base \ removed with added; all three inputs are sorted.
  std::size_t bi = 0;
  std::size_t ri = 0;
  std::size_t ai = 0;
  while (bi < base.size() || ai < d.added.size()) {
    if (bi < base.size() &&
        (ai >= d.added.size() || base[bi] < d.added[ai])) {
      const VertexId x = base[bi++];
      if (ri < d.removed.size() && d.removed[ri] == x) {
        ++ri;
        continue;
      }
      out.push_back(x);
    } else {
      out.push_back(d.added[ai++]);
    }
  }
}

bool DynamicGraph::has_edge(VertexId u, VertexId v) const {
  AURORA_CHECK(u < n_ && v < n_);
  const auto& d = delta_[u];
  if (sorted_contains(d.added, v)) return true;
  if (sorted_contains(d.removed, v)) return false;
  const auto base = base_neighbors(u);
  return std::binary_search(base.begin(), base.end(), v);
}

bool DynamicGraph::add_edge(VertexId u, VertexId v) {
  AURORA_CHECK(u < n_ && v < n_);
  if (u == v) return false;
  auto& d = delta_[u];
  // An edge deleted from the base and re-added cancels in the overlay.
  if (sorted_erase(d.removed, v)) {
    ++logical_edges_;
    --overlay_edges_;
    ++version_;
    return true;
  }
  const auto base = base_neighbors(u);
  if (std::binary_search(base.begin(), base.end(), v)) return false;
  if (!sorted_insert(d.added, v)) return false;
  ++logical_edges_;
  ++overlay_edges_;
  ++version_;
  maybe_auto_compact();
  return true;
}

bool DynamicGraph::remove_edge(VertexId u, VertexId v) {
  AURORA_CHECK(u < n_ && v < n_);
  if (u == v) return false;
  auto& d = delta_[u];
  // Removing an overlay-added edge cancels in the overlay.
  if (sorted_erase(d.added, v)) {
    --logical_edges_;
    --overlay_edges_;
    ++version_;
    return true;
  }
  const auto base = base_neighbors(u);
  if (!std::binary_search(base.begin(), base.end(), v)) return false;
  if (!sorted_insert(d.removed, v)) return false;
  --logical_edges_;
  ++overlay_edges_;
  ++version_;
  maybe_auto_compact();
  return true;
}

bool DynamicGraph::add_undirected_edge(VertexId u, VertexId v) {
  const bool fwd = add_edge(u, v);
  const bool rev = add_edge(v, u);
  return fwd || rev;
}

bool DynamicGraph::remove_undirected_edge(VertexId u, VertexId v) {
  const bool fwd = remove_edge(u, v);
  const bool rev = remove_edge(v, u);
  return fwd || rev;
}

VertexId DynamicGraph::add_vertex() {
  AURORA_CHECK_MSG(n_ < kInvalidVertex - 1, "vertex id space exhausted");
  const VertexId id = n_++;
  delta_.emplace_back();
  ++version_;
  return id;
}

EdgeId DynamicGraph::remove_vertex(VertexId v) {
  AURORA_CHECK(v < n_);
  std::vector<VertexId> nbrs;
  append_neighbors(v, nbrs);
  EdgeId removed = 0;
  for (const VertexId u : nbrs) {
    removed += remove_edge(v, u);
    removed += remove_edge(u, v);
  }
  return removed;
}

void DynamicGraph::maybe_auto_compact() {
  if (policy_.threshold_fraction <= 0.0) return;
  if (overlay_edges_ < policy_.min_overlay_edges) return;
  const auto base_edges = std::max<EdgeId>(base_.num_edges(), 1);
  if (static_cast<double>(overlay_edges_) >
      policy_.threshold_fraction * static_cast<double>(base_edges)) {
    compact();
  }
}

void DynamicGraph::compact() {
  if (overlay_edges_ == 0 && n_ == base_.num_vertices()) return;
  // Independent of snapshot() by construction: a streaming per-vertex merge
  // writing row_ptr/col_idx directly, instead of a CsrBuilder sort+dedup
  // over the full COO list. The bit-identity test between the two is only
  // meaningful because the code paths differ.
  std::vector<EdgeId> row_ptr(static_cast<std::size_t>(n_) + 1, 0);
  std::vector<VertexId> col_idx;
  col_idx.reserve(logical_edges_);
  for (VertexId v = 0; v < n_; ++v) {
    append_neighbors(v, col_idx);
    row_ptr[v + 1] = col_idx.size();
  }
  base_ = graph::CsrGraph(std::move(row_ptr), std::move(col_idx));
  for (auto& d : delta_) {
    d.added.clear();
    d.removed.clear();
  }
  overlay_edges_ = 0;
  ++compactions_;
  ++version_;
}

graph::CsrGraph DynamicGraph::snapshot() const {
  graph::CsrBuilder builder(n_);
  std::vector<VertexId> nbrs;
  for (VertexId v = 0; v < n_; ++v) {
    nbrs.clear();
    append_neighbors(v, nbrs);
    for (const VertexId u : nbrs) builder.add_edge(v, u);
  }
  return std::move(builder).build();
}

}  // namespace aurora::workload
