// Interleaved update/query workload generation for dynamic-graph serving.
//
// The generator drives a DynamicGraph and the serving stack with one merged
// event stream on the open-loop arrival clock: each event is either a graph
// mutation (edge/vertex insert/delete, applied to the dynamic graph at its
// arrival cycle) or an inference query (a neighbor-sampled mini-batch drawn
// against the graph *as of that cycle*, materialised as a self-contained
// dataset and serving request). Multi-chip deployments additionally thread
// every mutation through a cluster::ShardChurnTracker and recut the graph
// when the cut drifts past a threshold. Everything draws from aurora::Rng,
// so a fixed seed reproduces the stream — mutations, sampled batches,
// reshard points — bit-for-bit.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/shard.hpp"
#include "common/types.hpp"
#include "core/aurora.hpp"
#include "serving/arrival.hpp"
#include "serving/request_queue.hpp"
#include "sim/trace.hpp"
#include "workload/dynamic_graph.hpp"
#include "workload/sampler.hpp"

namespace aurora::workload {

struct DynamicWorkloadParams {
  serving::ArrivalParams arrival;
  /// Seeds the arrival clock, the op mix and every sampler draw.
  std::uint64_t seed = 7;
  /// Total events (mutations + queries) to generate.
  std::uint64_t num_ops = 256;
  /// Probability an event is a graph mutation (the churn rate knob; the
  /// rest are inference queries).
  double mutation_fraction = 0.5;
  /// Probability a mutation inserts (vs deletes).
  double insert_fraction = 0.7;
  /// Probability a mutation targets a vertex (vs an edge).
  double vertex_fraction = 0.05;
  /// Sampler seed vertices per query.
  std::uint32_t num_seeds = 4;
  SamplerParams sampler;
  /// Query metadata passed through to the serving requests.
  std::uint32_t num_tenants = 1;
  Cycle slo_cycles = 0;
  /// Churn-aware sharding: with num_chips >= 2 every applied mutation is
  /// threaded through a ShardChurnTracker and the graph is recut whenever
  /// the cut drifts by more than reshard_threshold (see
  /// ShardChurnTracker::should_reshard; <= 0 disables recuts).
  std::uint32_t num_chips = 1;
  cluster::ShardStrategy shard_strategy = cluster::ShardStrategy::kHash;
  double reshard_threshold = 0.2;
};

struct GraphMutation {
  /// Matches the kGraphMutation trace encoding (arg0).
  enum class Kind : std::uint8_t {
    kEdgeAdd = 0,
    kEdgeRemove = 1,
    kVertexAdd = 2,
    kVertexRemove = 3,
  };
  Kind kind{};
  Cycle at = 0;
  VertexId u = kInvalidVertex;
  VertexId v = kInvalidVertex;
  /// Whether the mutation changed the graph (an insert of an existing edge
  /// or a delete on an isolated vertex is generated but inert).
  bool applied = false;
};

struct DynamicWorkloadStats {
  std::uint64_t mutations = 0;
  std::uint64_t edge_adds = 0;
  std::uint64_t edge_removes = 0;
  std::uint64_t vertex_adds = 0;
  std::uint64_t vertex_removes = 0;
  std::uint64_t queries = 0;
  /// Dynamic-graph compactions triggered while generating.
  std::uint64_t compactions = 0;
  /// Threshold-triggered recuts (multi-chip only).
  std::uint64_t reshards = 0;
  VertexId final_vertices = 0;
  EdgeId final_edges = 0;
  /// Final drifted/planned cut (0 when churn tracking is off).
  EdgeId final_cut_edges = 0;
  EdgeId planned_cut_edges = 0;
};

struct DynamicWorkload {
  /// Sampled inference requests in arrival order, each carrying its own
  /// mini-batch dataset — ready for ServingEngine::replay.
  std::vector<serving::ServingRequest> queries;
  /// The mutation trace, in arrival order.
  std::vector<GraphMutation> mutations;
  DynamicWorkloadStats stats;
};

class WorkloadGenerator {
 public:
  explicit WorkloadGenerator(DynamicWorkloadParams params);

  /// Generate the event stream, mutating `dyn` in place (it ends in the
  /// post-churn state). `parent` supplies the feature spec inherited by the
  /// batch datasets; `job` is the model every query runs. An enabled
  /// `tracer` receives kGraphMutation / kReshard instants on the arrival
  /// clock.
  [[nodiscard]] DynamicWorkload generate(DynamicGraph& dyn,
                                         const graph::Dataset& parent,
                                         const core::GnnJob& job,
                                         sim::Tracer* tracer = nullptr) const;

  [[nodiscard]] const DynamicWorkloadParams& params() const { return params_; }

 private:
  DynamicWorkloadParams params_;
};

}  // namespace aurora::workload
