// Seed-deterministic GraphSAGE-style neighbor sampling.
//
// Full-graph inference reads every vertex's multi-hop neighborhood; serving
// systems instead answer per-request queries over small sampled subgraphs.
// NeighborSampler expands a seed set hop by hop under per-layer fanout caps
// (with or without replacement), dedups the frontier, and materialises the
// induced subgraph as a self-contained CSR over compact local ids — ready to
// wrap into a graph::Dataset and hand to core::Scheduler or ClusterScheduler
// as an ordinary job. All randomness flows through aurora::Rng seeded from
// (params.seed, salt), so a fixed seed reproduces a batch bit-for-bit across
// serial/parallel and lockstep/fast-forward simulation modes.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.hpp"
#include "graph/datasets.hpp"
#include "workload/dynamic_graph.hpp"

namespace aurora::workload {

struct SamplerParams {
  /// Per-hop neighbor caps, outermost hop first (GraphSAGE convention:
  /// fanouts.size() == number of GNN layers). 0 means "all neighbors".
  std::vector<std::uint32_t> fanouts = {10, 5};
  /// Sample with replacement (duplicates collapse in the induced subgraph,
  /// mirroring how GraphSAGE batches dedup on materialisation).
  bool with_replacement = false;
  std::uint64_t seed = 7;
};

/// One sampled mini-batch: the induced subgraph over compact local ids plus
/// the local -> global vertex mapping.
struct SampledBatch {
  /// Induced symmetric subgraph; local id i corresponds to global_ids[i].
  graph::CsrGraph subgraph;
  /// Seeds first (in request order), then sampled vertices in discovery
  /// order — the layout aggregation kernels expect for seed rows.
  std::vector<VertexId> global_ids;
  std::uint32_t num_seeds = 0;
  /// Frontier size after each hop (diagnostics; frontier_sizes.size() ==
  /// fanouts.size()).
  std::vector<std::uint32_t> frontier_sizes;
  /// Directed edges visited during expansion (pre-dedup traffic proxy).
  EdgeId sampled_edges = 0;
  /// FNV-1a over global_ids and the subgraph arrays; equal hashes <=> equal
  /// batches. The determinism tests compare these across simulation modes.
  std::uint64_t content_hash = 0;
};

class NeighborSampler {
 public:
  explicit NeighborSampler(SamplerParams params);

  /// Expand `seeds` over `source`. `salt` decorrelates batches drawn from
  /// the same sampler (callers pass the query id); the result depends only
  /// on (params, source contents, seeds, salt).
  [[nodiscard]] SampledBatch sample(const GraphSource& source,
                                    const std::vector<VertexId>& seeds,
                                    std::uint64_t salt = 0) const;

  [[nodiscard]] const SamplerParams& params() const { return params_; }

 private:
  SamplerParams params_;
};

/// Wrap a sampled batch into a self-contained Dataset carrying the parent's
/// feature spec and scale (the Shard idiom), so schedulers treat it like any
/// other graph.
[[nodiscard]] std::shared_ptr<const graph::Dataset> make_batch_dataset(
    const graph::Dataset& parent, SampledBatch batch);

}  // namespace aurora::workload
