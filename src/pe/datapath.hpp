// The reconfigurable PE datapath (paper Fig 5/6).
//
// A PE holds `num_multipliers` multipliers and `num_adders` adders joined by
// a reconfigurable interconnect. Each datapath configuration wires them
// differently:
//   * kMatVec / kDotProduct — multipliers paired into adders, adders chained
//     for accumulation (Fig 6 a);
//   * kVecVec / kElementwiseMul / kScalarVec — multipliers write straight
//     back to the buffer, adders bypassed (Fig 6 b);
//   * kAccumulate — multipliers bypassed, adders accumulate (Fig 6 c).
// The structural model executes real arithmetic in that wiring so tests can
// check it against the dense reference executor, and the cost model charges
// cycles for exactly the lane counts the wiring exposes.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "energy/energy_model.hpp"
#include "gnn/ops.hpp"
#include "gnn/tensor.hpp"

namespace aurora::pe {

/// Datapath configurations of Fig 6.
enum class PeConfigKind : std::uint8_t {
  kMatVec,         // M x V   (paired multipliers + adder chain)
  kDotProduct,     // V . V   (same wiring, single output)
  kVecVec,         // V x V   (multipliers only)
  kScalarVec,      // Scalar x V (constant loaded into multipliers)
  kElementwiseMul, // V (.) V (multipliers only)
  kAccumulate,     // Sum V   (adders only)
  kBypass,         // move data, no arithmetic
};

[[nodiscard]] const char* pe_config_name(PeConfigKind k);

/// Datapath configuration required by a Table II op (activation/concat run
/// in the PPU, not the MAC array).
[[nodiscard]] PeConfigKind config_for_op(gnn::OpKind op);

struct PeParams {
  std::uint32_t num_multipliers = 8;
  std::uint32_t num_adders = 8;
  /// Extra pipeline cycles from buffer read to writeback.
  Cycle pipeline_depth = 3;
  /// Cycles to rewire the multiplier/adder interconnect.
  Cycle reconfig_cycles = 2;
};

/// One vector operation submitted to the datapath.
struct MicroOp {
  PeConfigKind kind = PeConfigKind::kBypass;
  /// Vector length (columns for kMatVec).
  std::uint32_t length = 0;
  /// Output rows; only used by kMatVec.
  std::uint32_t rows = 1;
};

/// Cycle cost of `op` on a datapath with `params` (excludes reconfiguration).
[[nodiscard]] Cycle micro_op_cycles(const MicroOp& op, const PeParams& params);

/// Arithmetic event counts of `op` (for the energy model).
[[nodiscard]] energy::EnergyEvents micro_op_events(const MicroOp& op);

/// Structural functional model: executes arithmetic in the configured wiring.
class PeDatapath {
 public:
  explicit PeDatapath(const PeParams& params);

  /// Rewire to `kind`. Returns the reconfiguration cycles spent (0 when the
  /// wiring is unchanged).
  Cycle configure(PeConfigKind kind);

  [[nodiscard]] PeConfigKind config() const { return config_; }
  [[nodiscard]] const PeParams& params() const { return params_; }

  /// M x V with the adder-chain wiring. w is row-major (rows x len).
  [[nodiscard]] gnn::Vector run_mat_vec(const gnn::Matrix& w,
                                        std::span<const double> x);
  /// V . V.
  [[nodiscard]] double run_dot(std::span<const double> a,
                               std::span<const double> b);
  /// V (.) V (also used for V x V).
  [[nodiscard]] gnn::Vector run_elementwise_mul(std::span<const double> a,
                                                std::span<const double> b);
  /// Scalar x V.
  [[nodiscard]] gnn::Vector run_scalar_vec(double scalar,
                                           std::span<const double> x);
  /// acc += x with the adders-only wiring.
  void run_accumulate(gnn::Vector& acc, std::span<const double> x);

  /// acc = max(acc, x) element-wise — the adders double as comparators in
  /// the ΣV wiring (GraphSAGE-Pool / EdgeConv aggregation).
  void run_elementwise_max(gnn::Vector& acc, std::span<const double> x);

  /// a - b with the adders-only wiring (EdgeConv's x_u - x_v).
  [[nodiscard]] gnn::Vector run_subtract(std::span<const double> a,
                                         std::span<const double> b);

  /// Cumulative reconfiguration count (ablation metric).
  [[nodiscard]] std::uint64_t reconfigurations() const { return reconfigs_; }

 private:
  void require_config(PeConfigKind kind) const;

  PeParams params_;
  PeConfigKind config_ = PeConfigKind::kBypass;
  std::uint64_t reconfigs_ = 0;
};

}  // namespace aurora::pe
