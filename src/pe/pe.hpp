// The processing-element timing component: a serial execution engine that
// drains a queue of micro-op tasks through the reconfigurable datapath,
// the PPU and the bank buffer, accounting cycles and energy events.
#pragma once

#include <deque>
#include <functional>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "energy/energy_model.hpp"
#include "pe/buffers.hpp"
#include "pe/datapath.hpp"
#include "pe/ppu.hpp"
#include "sim/component.hpp"

namespace aurora::pe {

/// One unit of work for a PE: a datapath micro-op plus optional
/// post-processing and the bank-buffer traffic it implies.
struct PeTask {
  MicroOp op;
  Activation post_activation = Activation::kNone;
  /// Bank-buffer bytes read as operands / written as results.
  Bytes buffer_read_bytes = 0;
  Bytes buffer_write_bytes = 0;
  /// Opaque handle returned in the completion callback.
  std::uint64_t tag = 0;
};

struct PeStats {
  std::uint64_t tasks_submitted = 0;
  std::uint64_t tasks_completed = 0;
  Cycle busy_cycles = 0;
  Cycle reconfig_cycles = 0;
  energy::EnergyEvents energy;
  /// Queue depth observed at each submit (including the new task) — how
  /// deep work piles up behind a busy PE.
  Histogram queue_depth{kPeQueueDepthBucket, kPeQueueDepthBuckets};
};

struct PeModelParams {
  PeParams datapath;
  PpuParams ppu;
  Bytes bank_buffer_bytes = 100 * 1024;
  std::uint32_t bank_count = 8;
  std::uint32_t reuse_fifo_entries = 16;
};

/// Timing model of one PE. Tasks run one at a time in FIFO order; the
/// completion callback fires on the cycle the result is written back.
class PeModel final : public sim::Component {
 public:
  using CompletionCallback = std::function<void(std::uint64_t tag, Cycle now)>;

  PeModel(std::string name, const PeModelParams& params);

  void submit(PeTask task);
  void set_completion_callback(CompletionCallback cb) {
    on_complete_ = std::move(cb);
  }

  /// Return the PE to its just-constructed state (stats, queue, datapath
  /// wiring, buffer/FIFO counters) so one pool of PEs can be reused across
  /// layer runs without per-run heap churn.
  void reset();

  void tick(Cycle now) override;
  [[nodiscard]] bool idle() const override;
  /// A PE's only event is the completion of the in-flight micro-op; while
  /// one is running every earlier tick is a no-op.
  [[nodiscard]] Cycle next_event_cycle(Cycle now) const override;

  /// Task conservation: submitted == completed + queued + running; after
  /// drain nothing may remain queued or running.
  void verify_invariants(sim::InvariantReport& report) const override;

  [[nodiscard]] const PeStats& stats() const { return stats_; }

  /// Merge this PE's event counts into `out` (prefixed "pe.", summed across
  /// PEs by the caller).
  void export_counters(CounterSet& out) const;

  /// Publish this PE's counters and queue-depth histogram under
  /// "pe.<name>." (requires a non-empty component name; pool-level
  /// aggregates are registered by the engine instead).
  void register_metrics(MetricsRegistry& registry) override;
  [[nodiscard]] const PeModelParams& params() const { return params_; }
  [[nodiscard]] BankBuffer& bank_buffer() { return buffer_; }
  [[nodiscard]] const BankBuffer& bank_buffer() const { return buffer_; }
  [[nodiscard]] ReuseFifo& reuse_fifo() { return fifo_; }
  [[nodiscard]] std::size_t queue_depth() const { return queue_.size(); }

  /// Cycle cost of a task on this PE (static — used by the partitioner's
  /// time estimates as well).
  [[nodiscard]] static Cycle task_cycles(const PeTask& task,
                                         const PeModelParams& params,
                                         PeConfigKind current_config);

 private:
  PeModelParams params_;
  PeDatapath datapath_;
  Ppu ppu_;
  BankBuffer buffer_;
  ReuseFifo fifo_;
  std::deque<PeTask> queue_;
  CompletionCallback on_complete_;
  bool running_ = false;
  Cycle finish_at_ = 0;
  std::uint64_t running_tag_ = 0;
  PeStats stats_;
};

}  // namespace aurora::pe
