#include "pe/ppu.hpp"

#include "common/error.hpp"

namespace aurora::pe {

const char* activation_name(Activation a) {
  switch (a) {
    case Activation::kNone:
      return "none";
    case Activation::kRelu:
      return "relu";
    case Activation::kSigmoid:
      return "sigmoid";
    case Activation::kSoftmax:
      return "softmax";
  }
  throw Error("invalid Activation");
}

Ppu::Ppu(const PpuParams& params) : params_(params) {
  AURORA_CHECK(params.lanes > 0);
}

gnn::Vector Ppu::apply(Activation act, const gnn::Vector& x) const {
  switch (act) {
    case Activation::kNone:
      return x;
    case Activation::kRelu:
      return gnn::relu(x);
    case Activation::kSigmoid:
      return gnn::sigmoid(x);
    case Activation::kSoftmax:
      return gnn::softmax(x);
  }
  throw Error("invalid Activation");
}

Cycle Ppu::activation_cycles(Activation act, std::uint32_t len) const {
  if (act == Activation::kNone || len == 0) return 0;
  const Cycle sweeps = (len + params_.lanes - 1) / params_.lanes;
  if (act == Activation::kSoftmax) {
    // exp sweep + normalisation sweep + reduction overhead.
    return 2 * sweeps + params_.softmax_overhead;
  }
  return sweeps;
}

Cycle Ppu::concat_cycles(std::uint32_t total_len) const {
  return (total_len + params_.lanes - 1) / params_.lanes;
}

OpCount Ppu::activation_ops(Activation act, std::uint32_t len) {
  switch (act) {
    case Activation::kNone:
      return 0;
    case Activation::kRelu:
      return len;
    case Activation::kSigmoid:
      return 3ull * len;  // exp, add, divide
    case Activation::kSoftmax:
      return 3ull * len;
  }
  throw Error("invalid Activation");
}

}  // namespace aurora::pe
