#include "pe/pe.hpp"

#include <string>

#include "common/error.hpp"
#include "common/metrics_registry.hpp"
#include "sim/invariants.hpp"

namespace aurora::pe {

PeModel::PeModel(std::string name, const PeModelParams& params)
    : sim::Component(std::move(name)),
      params_(params),
      datapath_(params.datapath),
      ppu_(params.ppu),
      buffer_(params.bank_buffer_bytes, params.bank_count),
      fifo_(params.reuse_fifo_entries) {}

void PeModel::submit(PeTask task) {
  AURORA_CHECK(task.op.length > 0 || task.op.kind == PeConfigKind::kBypass);
  queue_.push_back(std::move(task));
  ++stats_.tasks_submitted;
  stats_.queue_depth.add(static_cast<double>(queue_.size()));
  wake();
}

void PeModel::reset() {
  datapath_ = PeDatapath(params_.datapath);
  buffer_ = BankBuffer(params_.bank_buffer_bytes, params_.bank_count);
  fifo_ = ReuseFifo(params_.reuse_fifo_entries);
  queue_.clear();
  on_complete_ = nullptr;
  running_ = false;
  finish_at_ = 0;
  running_tag_ = 0;
  stats_ = PeStats{};
}

Cycle PeModel::next_event_cycle(Cycle now) const {
  // While a micro-op is in flight nothing can happen before it completes;
  // a non-empty queue with nothing running starts a task on the very next
  // tick; a drained PE has no event at all until the next submit().
  if (running_) return finish_at_;
  if (!queue_.empty()) return now;
  return sim::kNoEvent;
}

Cycle PeModel::task_cycles(const PeTask& task, const PeModelParams& params,
                           PeConfigKind current_config) {
  Cycle cycles = 0;
  if (task.op.kind != current_config) {
    cycles += params.datapath.reconfig_cycles;
  }
  cycles += micro_op_cycles(task.op, params.datapath);
  const Ppu ppu(params.ppu);
  cycles += ppu.activation_cycles(task.post_activation, task.op.length);
  // Bank-buffer traffic overlaps with compute except for the tail writeback.
  const Bytes per_cycle = BankBuffer::kBankWidth * params.bank_count;
  const Cycle write_tail =
      (task.buffer_write_bytes + per_cycle - 1) / per_cycle;
  return cycles + write_tail / 2;
}

void PeModel::tick(Cycle now) {
  if (running_ && now >= finish_at_) {
    running_ = false;
    ++stats_.tasks_completed;
    if (on_complete_) on_complete_(running_tag_, now);
  }
  if (!running_ && !queue_.empty()) {
    const PeTask task = queue_.front();
    queue_.pop_front();

    Cycle cycles = 0;
    const Cycle reconfig = datapath_.configure(task.op.kind);
    cycles += reconfig;
    stats_.reconfig_cycles += reconfig;
    cycles += micro_op_cycles(task.op, params_.datapath);
    cycles += ppu_.activation_cycles(task.post_activation, task.op.length);
    if (task.buffer_read_bytes > 0) {
      // Operand reads overlap with compute; charge energy only.
      (void)buffer_.access(task.buffer_read_bytes, /*is_write=*/false);
    }
    if (task.buffer_write_bytes > 0) {
      const Cycle wr = buffer_.access(task.buffer_write_bytes, true);
      cycles += wr / 2;  // half the writeback drains after the last op
    }
    cycles = std::max<Cycle>(cycles, 1);

    stats_.busy_cycles += cycles;
    stats_.energy += micro_op_events(task.op);
    stats_.energy.fp_adds +=
        Ppu::activation_ops(task.post_activation, task.op.length);
    stats_.energy.sram_large_bytes +=
        task.buffer_read_bytes + task.buffer_write_bytes;

    running_ = true;
    finish_at_ = now + cycles;
    running_tag_ = task.tag;
  }
}

bool PeModel::idle() const { return !running_ && queue_.empty(); }

void PeModel::verify_invariants(sim::InvariantReport& report) const {
  const std::uint64_t accounted =
      stats_.tasks_completed + queue_.size() + (running_ ? 1 : 0);
  report.require(stats_.tasks_submitted == accounted,
                 "tasks submitted == completed + queued + running",
                 std::to_string(stats_.tasks_submitted) + " != " +
                     std::to_string(accounted));
  if (report.drained()) {
    report.require(!running_ && queue_.empty(),
                   "drained: no queued or running task",
                   std::to_string(queue_.size()) + " queued" +
                       (running_ ? ", one running" : ""));
    report.require(stats_.tasks_submitted == stats_.tasks_completed,
                   "drained: tasks submitted == completed",
                   std::to_string(stats_.tasks_submitted) + " != " +
                       std::to_string(stats_.tasks_completed));
  }
}

void PeModel::export_counters(CounterSet& out) const {
  out.inc("pe.tasks", stats_.tasks_completed);
  out.inc("pe.busy_cycles", stats_.busy_cycles);
  out.inc("pe.reconfig_cycles", stats_.reconfig_cycles);
  out.inc("pe.buffer_bytes_read", buffer_.bytes_read());
  out.inc("pe.buffer_bytes_written", buffer_.bytes_written());
}

void PeModel::register_metrics(MetricsRegistry& registry) {
  AURORA_CHECK_MSG(!name().empty(),
                   "per-PE metrics need a named PE (pooled PEs register "
                   "through the engine's aggregate gauges)");
  const auto s = registry.scope("pe." + name());
  s.counter("tasks", &stats_.tasks_completed);
  s.counter("busy_cycles", &stats_.busy_cycles);
  s.gauge("queue_depth", [this] { return static_cast<double>(queue_.size()); });
  s.histogram("queue_depth_hist", &stats_.queue_depth);
}

}  // namespace aurora::pe
