// Post-Processing Unit (paper Fig 5): non-linear activation and vector
// concatenation applied before writeback to the bank buffer.
#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "gnn/tensor.hpp"

namespace aurora::pe {

enum class Activation : std::uint8_t {
  kNone,
  kRelu,
  kSigmoid,
  kSoftmax,
};

[[nodiscard]] const char* activation_name(Activation a);

struct PpuParams {
  /// SIMD lanes of the PPU.
  std::uint32_t lanes = 4;
  /// Extra cycles per softmax pass (exp + normalise needs two sweeps).
  Cycle softmax_overhead = 4;
};

/// Functional + timing model of the PPU.
class Ppu {
 public:
  explicit Ppu(const PpuParams& params);

  [[nodiscard]] gnn::Vector apply(Activation act,
                                  const gnn::Vector& x) const;

  /// Cycle cost of applying `act` to a length-`len` vector.
  [[nodiscard]] Cycle activation_cycles(Activation act,
                                        std::uint32_t len) const;

  /// Cycle cost of concatenating two vectors (buffer-to-buffer move).
  [[nodiscard]] Cycle concat_cycles(std::uint32_t total_len) const;

  /// Scalar activation op count for the energy model.
  [[nodiscard]] static OpCount activation_ops(Activation act,
                                              std::uint32_t len);

 private:
  PpuParams params_;
};

}  // namespace aurora::pe
