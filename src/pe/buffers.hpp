// PE-local storage: the distributed bank buffer and the reuse FIFO
// (paper Fig 5).
#pragma once

#include <cstdint>
#include <deque>

#include "common/types.hpp"
#include "energy/energy_model.hpp"

namespace aurora::pe {

/// The distributed bank buffer. Multi-banked so aggregation's random access
/// pattern can sustain one access per bank per cycle; tracks occupancy and
/// access bytes for the energy model.
class BankBuffer {
 public:
  BankBuffer(Bytes capacity, std::uint32_t num_banks);

  /// Reserve space; returns false (no state change) when it would overflow.
  [[nodiscard]] bool allocate(Bytes bytes);
  void free(Bytes bytes);

  /// Record an access (read or write) of `bytes`; returns the cycles the
  /// access occupies, assuming perfect bank interleaving.
  Cycle access(Bytes bytes, bool is_write);

  [[nodiscard]] Bytes capacity() const { return capacity_; }
  [[nodiscard]] Bytes used() const { return used_; }
  [[nodiscard]] Bytes free_bytes() const { return capacity_ - used_; }
  [[nodiscard]] Bytes bytes_read() const { return bytes_read_; }
  [[nodiscard]] Bytes bytes_written() const { return bytes_written_; }

  /// Bytes per bank per cycle.
  static constexpr Bytes kBankWidth = 8;

 private:
  Bytes capacity_;
  std::uint32_t num_banks_;
  Bytes used_ = 0;
  Bytes bytes_read_ = 0;
  Bytes bytes_written_ = 0;
};

/// The reuse FIFO: a double buffer holding feature vectors received from
/// neighboring PEs (vertex update) or updated edge features (aggregation),
/// decoupling producer and consumer phases without a global buffer.
class ReuseFifo {
 public:
  explicit ReuseFifo(std::uint32_t capacity_entries);

  [[nodiscard]] bool push(std::uint64_t tag, Bytes bytes);
  /// Pop the oldest entry; returns false when empty.
  [[nodiscard]] bool pop(std::uint64_t& tag, Bytes& bytes);

  [[nodiscard]] bool full() const { return entries_.size() >= capacity_; }
  [[nodiscard]] bool empty() const { return entries_.empty(); }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] std::uint64_t peak_occupancy() const { return peak_; }

 private:
  struct Entry {
    std::uint64_t tag;
    Bytes bytes;
  };
  std::uint32_t capacity_;
  std::deque<Entry> entries_;
  std::uint64_t peak_ = 0;
};

}  // namespace aurora::pe
