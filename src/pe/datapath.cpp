#include "pe/datapath.hpp"

#include "common/error.hpp"

namespace aurora::pe {

const char* pe_config_name(PeConfigKind k) {
  switch (k) {
    case PeConfigKind::kMatVec:
      return "MxV";
    case PeConfigKind::kDotProduct:
      return "V.V";
    case PeConfigKind::kVecVec:
      return "VxV";
    case PeConfigKind::kScalarVec:
      return "ScalarxV";
    case PeConfigKind::kElementwiseMul:
      return "V(.)V";
    case PeConfigKind::kAccumulate:
      return "SumV";
    case PeConfigKind::kBypass:
      return "bypass";
  }
  throw Error("invalid PeConfigKind");
}

PeConfigKind config_for_op(gnn::OpKind op) {
  switch (op) {
    case gnn::OpKind::kMatVec:
      return PeConfigKind::kMatVec;
    case gnn::OpKind::kVecVec:
      return PeConfigKind::kVecVec;
    case gnn::OpKind::kDotProduct:
      return PeConfigKind::kDotProduct;
    case gnn::OpKind::kScalarVec:
      return PeConfigKind::kScalarVec;
    case gnn::OpKind::kElementwiseMul:
      return PeConfigKind::kElementwiseMul;
    case gnn::OpKind::kAccumulate:
    case gnn::OpKind::kElementwiseMax:
      return PeConfigKind::kAccumulate;
    case gnn::OpKind::kActivation:
    case gnn::OpKind::kConcat:
      return PeConfigKind::kBypass;  // handled by the PPU
  }
  throw Error("invalid OpKind");
}

Cycle micro_op_cycles(const MicroOp& op, const PeParams& p) {
  AURORA_CHECK(p.num_multipliers > 0 && p.num_adders > 0);
  const auto mults = static_cast<Cycle>(p.num_multipliers);
  const auto adders = static_cast<Cycle>(p.num_adders);
  const auto len = static_cast<Cycle>(op.length);
  const auto rows = static_cast<Cycle>(op.rows);
  auto ceil_div = [](Cycle a, Cycle b) { return (a + b - 1) / b; };

  switch (op.kind) {
    case PeConfigKind::kMatVec:
      // rows x len MACs streamed through the paired multiplier/adder chain.
      return ceil_div(rows * len, mults) + p.pipeline_depth;
    case PeConfigKind::kDotProduct:
      // len products plus the sequential adder-chain drain.
      return ceil_div(len, mults) + p.pipeline_depth;
    case PeConfigKind::kVecVec:
    case PeConfigKind::kScalarVec:
    case PeConfigKind::kElementwiseMul:
      // Multipliers write straight back; adders bypassed.
      return ceil_div(len, mults) + 1;
    case PeConfigKind::kAccumulate:
      // Multipliers bypassed; adders consume one element per lane per cycle.
      return ceil_div(len, adders) + 1;
    case PeConfigKind::kBypass:
      return ceil_div(len, mults + adders) + 1;
  }
  throw Error("invalid PeConfigKind");
}

energy::EnergyEvents micro_op_events(const MicroOp& op) {
  energy::EnergyEvents e;
  const auto len = static_cast<OpCount>(op.length);
  const auto rows = static_cast<OpCount>(op.rows);
  switch (op.kind) {
    case PeConfigKind::kMatVec:
      e.fp_multiplies = rows * len;
      e.fp_adds = rows * len;  // chained accumulation
      break;
    case PeConfigKind::kDotProduct:
      e.fp_multiplies = len;
      e.fp_adds = len;
      break;
    case PeConfigKind::kVecVec:
    case PeConfigKind::kScalarVec:
    case PeConfigKind::kElementwiseMul:
      e.fp_multiplies = len;
      break;
    case PeConfigKind::kAccumulate:
      e.fp_adds = len;
      break;
    case PeConfigKind::kBypass:
      break;
  }
  return e;
}

PeDatapath::PeDatapath(const PeParams& params) : params_(params) {
  AURORA_CHECK(params.num_multipliers > 0);
  AURORA_CHECK(params.num_adders > 0);
}

Cycle PeDatapath::configure(PeConfigKind kind) {
  if (kind == config_) return 0;
  config_ = kind;
  ++reconfigs_;
  return params_.reconfig_cycles;
}

void PeDatapath::require_config(PeConfigKind kind) const {
  AURORA_CHECK_MSG(config_ == kind, "datapath configured as "
                                        << pe_config_name(config_)
                                        << " but op needs "
                                        << pe_config_name(kind));
}

gnn::Vector PeDatapath::run_mat_vec(const gnn::Matrix& w,
                                    std::span<const double> x) {
  require_config(PeConfigKind::kMatVec);
  AURORA_CHECK(w.cols() == x.size());
  gnn::Vector y(w.rows(), 0.0);
  const std::size_t lanes = params_.num_multipliers;
  // Stream each row through the multiplier lanes; the adder chain reduces
  // each group of lane products, then accumulates groups sequentially.
  for (std::size_t r = 0; r < w.rows(); ++r) {
    const auto row = w.row(r);
    double acc = 0.0;
    for (std::size_t base = 0; base < x.size(); base += lanes) {
      const std::size_t end = std::min(base + lanes, x.size());
      double group = 0.0;
      for (std::size_t i = base; i < end; ++i) group += row[i] * x[i];
      acc += group;
    }
    y[r] = acc;
  }
  return y;
}

double PeDatapath::run_dot(std::span<const double> a,
                           std::span<const double> b) {
  require_config(PeConfigKind::kDotProduct);
  AURORA_CHECK(a.size() == b.size());
  const std::size_t lanes = params_.num_multipliers;
  double acc = 0.0;
  for (std::size_t base = 0; base < a.size(); base += lanes) {
    const std::size_t end = std::min(base + lanes, a.size());
    double group = 0.0;
    for (std::size_t i = base; i < end; ++i) group += a[i] * b[i];
    acc += group;
  }
  return acc;
}

gnn::Vector PeDatapath::run_elementwise_mul(std::span<const double> a,
                                            std::span<const double> b) {
  AURORA_CHECK_MSG(config_ == PeConfigKind::kElementwiseMul ||
                       config_ == PeConfigKind::kVecVec,
                   "elementwise multiply needs the multipliers-only wiring");
  AURORA_CHECK(a.size() == b.size());
  gnn::Vector y(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) y[i] = a[i] * b[i];
  return y;
}

gnn::Vector PeDatapath::run_scalar_vec(double scalar,
                                       std::span<const double> x) {
  require_config(PeConfigKind::kScalarVec);
  gnn::Vector y(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = scalar * x[i];
  return y;
}

void PeDatapath::run_accumulate(gnn::Vector& acc, std::span<const double> x) {
  require_config(PeConfigKind::kAccumulate);
  AURORA_CHECK(acc.size() == x.size());
  for (std::size_t i = 0; i < x.size(); ++i) acc[i] += x[i];
}

void PeDatapath::run_elementwise_max(gnn::Vector& acc,
                                     std::span<const double> x) {
  require_config(PeConfigKind::kAccumulate);
  AURORA_CHECK(acc.size() == x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    acc[i] = acc[i] >= x[i] ? acc[i] : x[i];
  }
}

gnn::Vector PeDatapath::run_subtract(std::span<const double> a,
                                     std::span<const double> b) {
  require_config(PeConfigKind::kAccumulate);
  AURORA_CHECK(a.size() == b.size());
  gnn::Vector y(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) y[i] = a[i] - b[i];
  return y;
}

}  // namespace aurora::pe
