#include "pe/buffers.hpp"

#include "common/error.hpp"

namespace aurora::pe {

BankBuffer::BankBuffer(Bytes capacity, std::uint32_t num_banks)
    : capacity_(capacity), num_banks_(num_banks) {
  AURORA_CHECK(capacity > 0);
  AURORA_CHECK(num_banks > 0);
}

bool BankBuffer::allocate(Bytes bytes) {
  if (used_ + bytes > capacity_) return false;
  used_ += bytes;
  return true;
}

void BankBuffer::free(Bytes bytes) {
  AURORA_CHECK_MSG(bytes <= used_, "freeing more than allocated");
  used_ -= bytes;
}

Cycle BankBuffer::access(Bytes bytes, bool is_write) {
  if (is_write) {
    bytes_written_ += bytes;
  } else {
    bytes_read_ += bytes;
  }
  const Bytes per_cycle = kBankWidth * num_banks_;
  return (bytes + per_cycle - 1) / per_cycle;
}

ReuseFifo::ReuseFifo(std::uint32_t capacity_entries)
    : capacity_(capacity_entries) {
  AURORA_CHECK(capacity_entries > 0);
}

bool ReuseFifo::push(std::uint64_t tag, Bytes bytes) {
  if (full()) return false;
  entries_.push_back({tag, bytes});
  peak_ = std::max<std::uint64_t>(peak_, entries_.size());
  return true;
}

bool ReuseFifo::pop(std::uint64_t& tag, Bytes& bytes) {
  if (entries_.empty()) return false;
  tag = entries_.front().tag;
  bytes = entries_.front().bytes;
  entries_.pop_front();
  return true;
}

}  // namespace aurora::pe
