#include "common/ini.hpp"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace aurora {
namespace {

std::string trim(const std::string& s) {
  const auto first = s.find_first_not_of(" \t\r");
  if (first == std::string::npos) return "";
  const auto last = s.find_last_not_of(" \t\r");
  return s.substr(first, last - first + 1);
}

std::string strip_comment(const std::string& s) {
  const auto pos = s.find_first_of(";#");
  return pos == std::string::npos ? s : s.substr(0, pos);
}

}  // namespace

IniFile IniFile::parse(std::istream& in) {
  IniFile ini;
  std::string line;
  std::string section;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string body = trim(strip_comment(line));
    if (body.empty()) continue;
    if (body.front() == '[') {
      AURORA_CHECK_MSG(body.back() == ']',
                       "unterminated section header at line " << line_no);
      section = trim(body.substr(1, body.size() - 2));
      AURORA_CHECK_MSG(!section.empty(), "empty section at line " << line_no);
      ini.sections_[section];  // sections may be empty
      continue;
    }
    const auto eq = body.find('=');
    AURORA_CHECK_MSG(eq != std::string::npos,
                     "expected key = value at line " << line_no << ": '"
                                                     << body << "'");
    const std::string key = trim(body.substr(0, eq));
    const std::string value = trim(body.substr(eq + 1));
    AURORA_CHECK_MSG(!key.empty(), "empty key at line " << line_no);
    ini.sections_[section][key] = value;
  }
  return ini;
}

IniFile IniFile::load(const std::string& path) {
  std::ifstream in(path);
  AURORA_CHECK_MSG(in.is_open(), "cannot open config file: " << path);
  return parse(in);
}

bool IniFile::has(const std::string& section, const std::string& key) const {
  const auto sit = sections_.find(section);
  return sit != sections_.end() && sit->second.count(key) > 0;
}

std::string IniFile::get_string(const std::string& section,
                                const std::string& key,
                                const std::string& fallback) const {
  const auto sit = sections_.find(section);
  if (sit == sections_.end()) return fallback;
  const auto kit = sit->second.find(key);
  return kit == sit->second.end() ? fallback : kit->second;
}

std::int64_t IniFile::get_int(const std::string& section,
                              const std::string& key,
                              std::int64_t fallback) const {
  if (!has(section, key)) return fallback;
  return std::strtoll(get_string(section, key, "").c_str(), nullptr, 10);
}

double IniFile::get_double(const std::string& section, const std::string& key,
                           double fallback) const {
  if (!has(section, key)) return fallback;
  return std::strtod(get_string(section, key, "").c_str(), nullptr);
}

bool IniFile::get_bool(const std::string& section, const std::string& key,
                       bool fallback) const {
  if (!has(section, key)) return fallback;
  const std::string v = get_string(section, key, "");
  return v == "true" || v == "1" || v == "yes" || v == "on";
}

}  // namespace aurora
