// Hierarchical metrics registry: the one place components publish their
// named counters, gauges and latency histograms so generic tooling (the
// time-series Sampler, reports, debug dumps) can discover them without
// knowing each component's stats struct.
//
// Names are dot-separated paths ("dram.row_hits", "pe.queue_depth"); a
// Scope helper prepends a component's prefix so registration code reads as
// relative names. Probes are non-owning: a registered pointer or lambda
// must outlive every read through the registry, so per-run registries are
// built next to the components they observe and dropped with them.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/stats.hpp"

namespace aurora {

enum class MetricKind : std::uint8_t {
  kCounter,    // monotonic event count
  kGauge,      // instantaneous level (queue depth, flits in flight)
  kHistogram,  // latency/depth distribution
};

[[nodiscard]] const char* metric_kind_name(MetricKind kind);

class MetricsRegistry {
 public:
  /// Reads the metric's current value. Must stay valid for the registry's
  /// (and any attached sampler's) lifetime.
  using Probe = std::function<double()>;

  struct Entry {
    std::string name;
    MetricKind kind{};
    Probe probe;                           // counters and gauges
    const Histogram* histogram = nullptr;  // histograms only
  };

  /// Register a monotonic counter backed by a plain integer member.
  void add_counter(const std::string& name, const std::uint64_t* counter);
  /// Register a counter whose value needs computing (e.g. a sum over PEs).
  void add_counter(const std::string& name, Probe probe);
  void add_gauge(const std::string& name, Probe probe);
  void add_histogram(const std::string& name, const Histogram* histogram);

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] const Entry* find(const std::string& name) const;
  /// Current value of a counter or gauge; throws on unknown names and on
  /// histograms (read those through find()->histogram).
  [[nodiscard]] double value(const std::string& name) const;
  /// Entries whose name starts with `prefix` ("" = all), in name order.
  [[nodiscard]] std::vector<const Entry*> match(
      const std::string& prefix) const;

  void clear() { entries_.clear(); }

  /// Registration helper carrying a name prefix, so a component scoped at
  /// "noc" can write scope.gauge("flits_in_flight", ...) and get
  /// "noc.flits_in_flight".
  class Scope {
   public:
    Scope(MetricsRegistry& registry, std::string prefix)
        : registry_(registry), prefix_(std::move(prefix)) {}
    void counter(const std::string& name, const std::uint64_t* v) const {
      registry_.add_counter(prefix_ + name, v);
    }
    void counter(const std::string& name, Probe probe) const {
      registry_.add_counter(prefix_ + name, std::move(probe));
    }
    void gauge(const std::string& name, Probe probe) const {
      registry_.add_gauge(prefix_ + name, std::move(probe));
    }
    void histogram(const std::string& name, const Histogram* h) const {
      registry_.add_histogram(prefix_ + name, h);
    }

   private:
    MetricsRegistry& registry_;
    std::string prefix_;
  };
  [[nodiscard]] Scope scope(const std::string& prefix) {
    return Scope(*this, prefix.empty() ? prefix : prefix + ".");
  }

 private:
  void insert(Entry entry);
  std::map<std::string, Entry> entries_;  // ordered: stable iteration
};

}  // namespace aurora
