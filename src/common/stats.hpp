// Statistics primitives used by the simulator for metric collection.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace aurora {

/// Online mean/variance/min/max accumulator (Welford).
class RunningStat {
 public:
  void add(double x);
  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double sum() const { return sum_; }
  void merge(const RunningStat& other);
  void reset();

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Fixed-bucket histogram over [0, bucket_width * num_buckets); the last
/// bucket also absorbs overflow so totals are exact.
class Histogram {
 public:
  Histogram(double bucket_width, std::size_t num_buckets);

  void add(double x);
  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const;
  [[nodiscard]] std::size_t num_buckets() const { return counts_.size(); }
  [[nodiscard]] double bucket_width() const { return width_; }
  /// Nearest-rank quantile at bucket resolution: the lower edge of the
  /// bucket holding sample rank max(1, ceil(q * total)). Samples that are
  /// exact bucket-width multiples are reported exactly (a single sample of
  /// 5.0 at width 1 yields 5.0 for every q, not the bucket's upper edge).
  [[nodiscard]] double quantile(double q) const;

  /// Element-wise accumulation. Both histograms must share the exact same
  /// bucket layout (width and count) — merging across layouts would silently
  /// misbin, so a mismatch throws.
  void merge(const Histogram& other);
  void reset();

 private:
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Canonical latency/depth histogram layouts. Component stats and the
/// RunMetrics aggregates must agree on these (Histogram::merge rejects
/// mismatched layouts), so they are named constants rather than per-site
/// literals. The last bucket absorbs overflow, so tails beyond the range
/// still count toward totals and max-bucket quantiles.
inline constexpr double kNocLatencyBucketCycles = 4.0;
inline constexpr std::size_t kNocLatencyBuckets = 256;  // covers 0..1024
inline constexpr double kDramLatencyBucketCycles = 16.0;
inline constexpr std::size_t kDramLatencyBuckets = 256;  // covers 0..4096
inline constexpr double kPeQueueDepthBucket = 1.0;
inline constexpr std::size_t kPeQueueDepthBuckets = 64;
/// Inter-chip link message latency (cluster scale-out): serialization at a
/// few bytes/cycle plus multi-hop flight, so buckets are coarser and the
/// range wider than the on-chip NoC layout.
inline constexpr double kLinkLatencyBucketCycles = 64.0;
inline constexpr std::size_t kLinkLatencyBuckets = 256;  // covers 0..16384

/// Exact nearest-rank percentile over raw samples: the smallest sample with
/// rank >= max(1, ceil(q * n)). Copies and sorts, so it is meant for
/// request-level latency vectors (dozens to a few thousand entries) where
/// histogram bucketing would quantize p50/p95/p99 to bucket edges; streaming
/// paths with large counts should keep using Histogram. Empty input yields
/// 0.
[[nodiscard]] double percentile(std::vector<double> samples, double q);

/// Named monotonic counters; every simulator component registers its event
/// counts here so tests and benches read one consolidated view.
class CounterSet {
 public:
  void inc(const std::string& name, std::uint64_t by = 1);
  [[nodiscard]] std::uint64_t get(const std::string& name) const;
  [[nodiscard]] const std::map<std::string, std::uint64_t>& all() const {
    return counters_;
  }
  void merge(const CounterSet& other);
  void reset();

 private:
  std::map<std::string, std::uint64_t> counters_;
};

}  // namespace aurora
