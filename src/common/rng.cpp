#include "common/rng.hpp"

#include <cmath>

#include "common/error.hpp"

namespace aurora {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  AURORA_CHECK(bound > 0);
  // Lemire's nearly-divisionless rejection method.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::next_range(std::int64_t lo, std::int64_t hi) {
  AURORA_CHECK(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::next_double(double lo, double hi) {
  AURORA_CHECK(lo <= hi);
  return lo + (hi - lo) * next_double();
}

bool Rng::next_bool(double p_true) { return next_double() < p_true; }

double Rng::next_normal() {
  if (have_spare_normal_) {
    have_spare_normal_ = false;
    return spare_normal_;
  }
  double u, v, s;
  do {
    u = next_double(-1.0, 1.0);
    v = next_double(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double k = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * k;
  have_spare_normal_ = true;
  return u * k;
}

std::size_t Rng::next_weighted(const std::vector<double>& weights) {
  AURORA_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    AURORA_CHECK(w >= 0.0);
    total += w;
  }
  AURORA_CHECK(total > 0.0);
  double r = next_double() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r <= 0.0) return i;
  }
  return weights.size() - 1;
}

std::uint64_t Rng::next_power_law(double alpha, std::uint64_t x_max) {
  AURORA_CHECK(alpha > 1.0);
  AURORA_CHECK(x_max >= 1);
  // Inverse-CDF sampling of the continuous Pareto, rounded down and clamped;
  // rejection keeps the tail bounded at x_max without distorting the head.
  for (;;) {
    const double u = 1.0 - next_double();  // (0, 1]
    const double x = std::pow(u, -1.0 / (alpha - 1.0));
    if (x <= static_cast<double>(x_max)) {
      return static_cast<std::uint64_t>(x);
    }
  }
}

Rng Rng::fork() { return Rng(next_u64()); }

}  // namespace aurora
