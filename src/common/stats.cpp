#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace aurora {

void RunningStat::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStat::mean() const { return n_ == 0 ? 0.0 : mean_; }

double RunningStat::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double RunningStat::min() const { return min_; }

double RunningStat::max() const { return max_; }

void RunningStat::merge(const RunningStat& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(n_);
  const auto n2 = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  mean_ = (mean_ * n1 + other.mean_ * n2) / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStat::reset() { *this = RunningStat{}; }

Histogram::Histogram(double bucket_width, std::size_t num_buckets)
    : width_(bucket_width), counts_(num_buckets, 0) {
  AURORA_CHECK(bucket_width > 0.0);
  AURORA_CHECK(num_buckets > 0);
}

void Histogram::add(double x) {
  AURORA_CHECK(x >= 0.0);
  auto idx = static_cast<std::size_t>(x / width_);
  idx = std::min(idx, counts_.size() - 1);
  ++counts_[idx];
  ++total_;
}

std::uint64_t Histogram::bucket_count(std::size_t i) const {
  AURORA_CHECK(i < counts_.size());
  return counts_[i];
}

double Histogram::quantile(double q) const {
  AURORA_CHECK(q >= 0.0 && q <= 1.0);
  if (total_ == 0) return 0.0;
  // Nearest-rank: the bucket holding sample number max(1, ceil(q*total)).
  // Truncating q*total (the old code) returned rank 0 for small q, so p50
  // of a single sample — or q=0.0 of anything — reported bucket 0's edge
  // even when the leading buckets were empty.
  auto target =
      static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(total_)));
  target = std::max<std::uint64_t>(1, std::min(target, total_));
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cum += counts_[i];
    // The bucket's lower edge: samples that are exact multiples of the
    // width land on it exactly; reporting the upper edge (the old code)
    // overstated every quantile by one bucket.
    if (cum >= target) return static_cast<double>(i) * width_;
  }
  return static_cast<double>(counts_.size() - 1) * width_;
}

void Histogram::merge(const Histogram& other) {
  AURORA_CHECK_MSG(width_ == other.width_ &&
                       counts_.size() == other.counts_.size(),
                   "Histogram::merge: mismatched bucket layout ("
                       << width_ << "x" << counts_.size() << " vs "
                       << other.width_ << "x" << other.counts_.size() << ")");
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  total_ += other.total_;
}

void Histogram::reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  total_ = 0;
}

double percentile(std::vector<double> samples, double q) {
  AURORA_CHECK(q >= 0.0 && q <= 1.0);
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  auto rank =
      static_cast<std::size_t>(std::ceil(q * static_cast<double>(samples.size())));
  rank = std::max<std::size_t>(1, std::min(rank, samples.size()));
  return samples[rank - 1];
}

void CounterSet::inc(const std::string& name, std::uint64_t by) {
  counters_[name] += by;
}

std::uint64_t CounterSet::get(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

void CounterSet::merge(const CounterSet& other) {
  for (const auto& [k, v] : other.counters_) counters_[k] += v;
}

void CounterSet::reset() { counters_.clear(); }

}  // namespace aurora
