// Core scalar type aliases shared across all Aurora modules.
#pragma once

#include <cstdint>

namespace aurora {

/// Vertex identifier within a graph (or subgraph-local index).
using VertexId = std::uint32_t;
/// Edge identifier (index into CSR adjacency arrays).
using EdgeId = std::uint64_t;
/// Simulation time in accelerator clock cycles.
using Cycle = std::uint64_t;
/// Size or address in bytes.
using Bytes = std::uint64_t;
/// Operation counts (MACs, flops, ...).
using OpCount = std::uint64_t;

/// Sentinel for "no vertex".
inline constexpr VertexId kInvalidVertex = 0xFFFFFFFFu;

}  // namespace aurora
