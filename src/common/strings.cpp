#include "common/strings.hpp"

#include <array>
#include <cstdio>

namespace aurora {

std::string to_fixed(double x, int digits) {
  std::array<char, 64> buf{};
  std::snprintf(buf.data(), buf.size(), "%.*f", digits, x);
  return buf.data();
}

std::string human_bytes(std::uint64_t bytes) {
  static constexpr std::array<const char*, 5> kUnits = {"B", "KB", "MB", "GB",
                                                        "TB"};
  double v = static_cast<double>(bytes);
  std::size_t unit = 0;
  while (v >= 1024.0 && unit + 1 < kUnits.size()) {
    v /= 1024.0;
    ++unit;
  }
  const int digits = unit == 0 ? 0 : (v < 10 ? 2 : 1);
  return to_fixed(v, digits) + " " + kUnits[unit];
}

std::string human_count(double value) {
  static constexpr std::array<const char*, 4> kUnits = {"", " K", " M", " G"};
  double v = value;
  std::size_t unit = 0;
  while (v >= 1000.0 && unit + 1 < kUnits.size()) {
    v /= 1000.0;
    ++unit;
  }
  return to_fixed(v, v < 10 ? 2 : 1) + kUnits[unit];
}

std::string pad_right(const std::string& s, std::size_t width) {
  return s.size() >= width ? s : s + std::string(width - s.size(), ' ');
}

std::string pad_left(const std::string& s, std::size_t width) {
  return s.size() >= width ? s : std::string(width - s.size(), ' ') + s;
}

}  // namespace aurora
