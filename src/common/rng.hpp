// Deterministic random number generation.
//
// All stochastic pieces of the library (graph generators, traffic generators,
// tie-breaking) draw from Rng so a fixed seed reproduces a run bit-for-bit.
// The engine is xoshiro256** seeded via SplitMix64 — fast, high quality, and
// independent of the standard library's unspecified distributions.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace aurora {

/// xoshiro256** engine with SplitMix64 seeding and explicit, portable
/// distribution implementations.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Raw 64 random bits.
  std::uint64_t next_u64();

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_range(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform double in [lo, hi).
  double next_double(double lo, double hi);

  /// Bernoulli trial.
  bool next_bool(double p_true);

  /// Standard normal via Box-Muller.
  double next_normal();

  /// Sample an index from the (unnormalised, non-negative) weight vector.
  std::size_t next_weighted(const std::vector<double>& weights);

  /// Discrete power-law sample in [1, x_max]: P(x) ∝ x^-alpha.
  /// Used to synthesise realistic vertex degree distributions.
  std::uint64_t next_power_law(double alpha, std::uint64_t x_max);

  /// Split off an independent stream (for parallel generation).
  Rng fork();

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(next_below(i));
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  std::array<std::uint64_t, 4> state_{};
  bool have_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace aurora
