// Minimal fork-join parallelism for embarrassingly parallel grids.
//
// The bench binaries run independent (dataset x accelerator) cells; a full
// task system would be overkill. parallel_for() hands out indices from an
// atomic counter to a small std::thread pool, so uneven cell costs balance
// naturally, and rethrows the first worker exception in the caller.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace aurora {

/// Resolve a --jobs style request: 0 means "one per hardware thread"
/// (falling back to 1 when the runtime cannot tell), anything else is taken
/// literally.
inline unsigned resolve_jobs(unsigned requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

/// Invoke fn(i) for every i in [0, count), spread over up to `jobs` threads
/// (0 = hardware concurrency). jobs == 1 runs everything inline in the
/// caller thread — the reproducibility mode: no thread scheduling at all.
/// fn must be safe to call concurrently for distinct indices; writes to
/// distinct result slots need no synchronisation. The first exception thrown
/// by any invocation is rethrown here after all workers have stopped
/// (remaining indices are abandoned).
template <typename Fn>
void parallel_for(std::size_t count, unsigned jobs, Fn&& fn) {
  const unsigned workers = resolve_jobs(jobs);
  if (count <= 1 || workers <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr error;
  std::mutex error_mutex;
  auto run = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        fn(i);
      } catch (...) {
        {
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (!error) error = std::current_exception();
        }
        next.store(count, std::memory_order_relaxed);  // stop all workers
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  const std::size_t helpers =
      std::min<std::size_t>(workers, count) - 1;  // caller is worker #0
  pool.reserve(helpers);
  for (std::size_t t = 0; t < helpers; ++t) pool.emplace_back(run);
  run();
  for (auto& t : pool) t.join();
  if (error) std::rethrow_exception(error);
}

}  // namespace aurora
