// Fork-join parallelism for bench grids and the parallel cluster simulator.
//
// Two layers:
//   * parallel_for() — one-shot index fan-out over a small std::thread pool,
//     used by the embarrassingly parallel bench grids;
//   * ThreadPool — a persistent pool with a barrier-style run(), used by the
//     parallel discrete-event coordinator (sim/parallel_sim.hpp), where one
//     fork-join happens per conservative time window and spawning threads
//     per window would dominate.
//
// Oversubscription policy. Nested users compose: a bench grid running with
// --jobs=J may execute cluster cells that each spin up a per-chip simulator
// pool. Every helper thread — from either layer — is charged against one
// process-wide WorkerBudget capped at hardware_concurrency, so the total
// helper count never exceeds the machine regardless of nesting depth. The
// calling thread is never charged (it exists either way) and always
// participates, so an inner pool that gets no budget degrades gracefully to
// inline execution instead of stacking threads. Budget is acquired at pool
// construction (or parallel_for entry) and released at destruction (or
// exit), so siblings re-balance as pools come and go.
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace aurora {

/// Resolve a --jobs style request: 0 means "one per hardware thread"
/// (falling back to 1 when the runtime cannot tell), anything else is taken
/// literally.
inline unsigned resolve_jobs(unsigned requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

/// Process-wide helper-thread budget (see the oversubscription policy in
/// the header comment). acquire() grants at most `want` slots, bounded so
/// the total outstanding grant never exceeds the cap; callers run inline
/// with whatever they are granted (possibly 0 helpers).
class WorkerBudget {
 public:
  static WorkerBudget& instance() {
    static WorkerBudget budget;
    return budget;
  }

  /// Grant up to `want` helper slots; returns the number actually granted.
  [[nodiscard]] unsigned acquire(unsigned want) {
    if (want == 0) return 0;
    unsigned used = in_use_.load(std::memory_order_relaxed);
    for (;;) {
      const unsigned cap = cap_.load(std::memory_order_relaxed);
      const unsigned free = cap > used ? cap - used : 0;
      const unsigned grant = std::min(want, free);
      if (grant == 0) return 0;
      if (in_use_.compare_exchange_weak(used, used + grant,
                                        std::memory_order_relaxed)) {
        return grant;
      }
    }
  }

  void release(unsigned n) {
    if (n > 0) in_use_.fetch_sub(n, std::memory_order_relaxed);
  }

  /// Helper slots currently granted (diagnostic / tests).
  [[nodiscard]] unsigned in_use() const {
    return in_use_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] unsigned cap() const {
    return cap_.load(std::memory_order_relaxed);
  }
  /// Override the cap (tests; 0 restores the hardware default).
  void set_cap(unsigned cap) {
    cap_.store(cap > 0 ? cap : default_cap(), std::memory_order_relaxed);
  }

 private:
  static unsigned default_cap() {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
  }

  WorkerBudget() : cap_(default_cap()) {}
  std::atomic<unsigned> in_use_{0};
  std::atomic<unsigned> cap_;
};

/// Persistent fork-join pool. Construction acquires up to
/// `requested_helpers` threads from the WorkerBudget (possibly fewer, down
/// to zero); destruction releases them. run() executes fn(i) for every
/// i in [0, count) across the helpers plus the calling thread and returns
/// when all invocations finished, rethrowing the first exception (remaining
/// indices still run — tasks are assumed independent). run() is not
/// reentrant and must always be called from the same ownership context.
class ThreadPool {
 public:
  explicit ThreadPool(unsigned requested_helpers) {
    const unsigned granted =
        WorkerBudget::instance().acquire(requested_helpers);
    workers_.reserve(granted);
    for (unsigned t = 0; t < granted; ++t) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    work_cv_.notify_all();
    for (auto& t : workers_) t.join();
    WorkerBudget::instance().release(
        static_cast<unsigned>(workers_.size()));
  }

  /// Helper threads actually granted (0 = run() executes inline).
  [[nodiscard]] unsigned helpers() const {
    return static_cast<unsigned>(workers_.size());
  }

  void run(std::size_t count, const std::function<void(std::size_t)>& fn) {
    if (count == 0) return;
    if (workers_.empty() || count == 1) {
      for (std::size_t i = 0; i < count; ++i) fn(i);
      return;
    }
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      job_ = &fn;
      count_ = count;
      next_.store(0, std::memory_order_relaxed);
      completed_ = 0;
      error_ = nullptr;
      ++epoch_;
    }
    work_cv_.notify_all();
    drain(&fn, count);
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock,
                  [&] { return completed_ == count_ && active_ == 0; });
    job_ = nullptr;
    if (error_) {
      std::exception_ptr e = error_;
      error_ = nullptr;
      std::rethrow_exception(e);
    }
  }

 private:
  void drain(const std::function<void(std::size_t)>* job, std::size_t count) {
    for (;;) {
      const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        (*job)(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(mutex_);
        if (!error_) error_ = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(mutex_);
      if (++completed_ == count_) done_cv_.notify_all();
    }
  }

  void worker_loop() {
    std::uint64_t seen = 0;
    for (;;) {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] { return stop_ || epoch_ != seen; });
      if (stop_) return;
      seen = epoch_;
      const auto* job = job_;
      const std::size_t count = count_;
      if (job == nullptr) continue;  // epoch already fully retired
      ++active_;
      lock.unlock();
      drain(job, count);
      lock.lock();
      if (--active_ == 0) done_cv_.notify_all();
    }
  }

  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> workers_;
  bool stop_ = false;
  std::uint64_t epoch_ = 0;
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::size_t count_ = 0;
  std::atomic<std::size_t> next_{0};
  std::size_t completed_ = 0;
  unsigned active_ = 0;
  std::exception_ptr error_;
};

/// Invoke fn(i) for every i in [0, count), spread over up to `jobs` threads
/// (0 = hardware concurrency). jobs == 1 runs everything inline in the
/// caller thread — the reproducibility mode: no thread scheduling at all.
/// Helper threads are drawn from the process-wide WorkerBudget, so nested
/// parallel_for / ThreadPool users never oversubscribe the machine; when no
/// budget is free the loop runs inline. fn must be safe to call
/// concurrently for distinct indices; writes to distinct result slots need
/// no synchronisation. The first exception thrown by any invocation is
/// rethrown here after all workers have stopped (remaining indices are
/// abandoned).
template <typename Fn>
void parallel_for(std::size_t count, unsigned jobs, Fn&& fn) {
  const unsigned workers = resolve_jobs(jobs);
  if (count <= 1 || workers <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  const unsigned helpers = WorkerBudget::instance().acquire(
      static_cast<unsigned>(std::min<std::size_t>(workers, count)) - 1);
  if (helpers == 0) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr error;
  std::mutex error_mutex;
  auto run = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        fn(i);
      } catch (...) {
        {
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (!error) error = std::current_exception();
        }
        next.store(count, std::memory_order_relaxed);  // stop all workers
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(helpers);
  for (unsigned t = 0; t < helpers; ++t) pool.emplace_back(run);
  run();
  for (auto& t : pool) t.join();
  WorkerBudget::instance().release(helpers);
  if (error) std::rethrow_exception(error);
}

}  // namespace aurora
