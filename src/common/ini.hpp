// Minimal INI parsing for accelerator configuration files.
//
//   [section]
//   key = value      ; or # starts a comment
//
// Values are strings; typed accessors convert on demand.
#pragma once

#include <iosfwd>
#include <map>
#include <string>

namespace aurora {

class IniFile {
 public:
  /// Parse from a stream; throws on malformed lines.
  static IniFile parse(std::istream& in);
  static IniFile load(const std::string& path);

  [[nodiscard]] bool has(const std::string& section,
                         const std::string& key) const;
  [[nodiscard]] std::string get_string(const std::string& section,
                                       const std::string& key,
                                       const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& section,
                                     const std::string& key,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& section,
                                  const std::string& key,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& section,
                              const std::string& key, bool fallback) const;

  [[nodiscard]] std::size_t num_sections() const { return sections_.size(); }

 private:
  std::map<std::string, std::map<std::string, std::string>> sections_;
};

}  // namespace aurora
