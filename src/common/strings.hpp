// Small string/formatting helpers shared by benches and reports.
#pragma once

#include <cstdint>
#include <string>

namespace aurora {

/// Format `x` with `digits` decimal places.
std::string to_fixed(double x, int digits);

/// "12.3 KB" / "4.56 GB" style humanisation of a byte count.
std::string human_bytes(std::uint64_t bytes);

/// "1.23 M" / "45.6 K" humanisation of a plain count.
std::string human_count(double value);

/// Multiply suffix padding: pad `s` on the right to `width` columns.
std::string pad_right(const std::string& s, std::size_t width);

/// Pad `s` on the left to `width` columns.
std::string pad_left(const std::string& s, std::size_t width);

}  // namespace aurora
