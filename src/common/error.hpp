// Lightweight invariant checking used throughout the library.
//
// AURORA_CHECK is active in all build types: simulator correctness depends on
// these invariants and their cost is negligible next to cycle simulation.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace aurora {

/// Exception thrown when a library invariant or precondition is violated.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void fail_check(const char* expr, const char* file, int line,
                                    const std::string& msg) {
  std::ostringstream os;
  os << "AURORA_CHECK failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

}  // namespace detail
}  // namespace aurora

#define AURORA_CHECK(cond)                                                  \
  do {                                                                      \
    if (!(cond)) ::aurora::detail::fail_check(#cond, __FILE__, __LINE__, {}); \
  } while (false)

#define AURORA_CHECK_MSG(cond, msg)                                       \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::ostringstream os_;                                             \
      os_ << msg;                                                         \
      ::aurora::detail::fail_check(#cond, __FILE__, __LINE__, os_.str()); \
    }                                                                     \
  } while (false)
