#include "common/cli.hpp"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdlib>

#include "common/error.hpp"

namespace aurora {

CliArgs::CliArgs(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    AURORA_CHECK_MSG(arg.rfind("--", 0) == 0,
                     "unexpected positional argument: " << arg);
    const auto eq = arg.find('=');
    if (eq == std::string::npos) {
      values_[arg.substr(2)] = "true";
    } else {
      values_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
    }
  }
}

CliArgs::CliArgs(int argc, const char* const* argv,
                 std::initializer_list<const char*> known)
    : CliArgs(argc, argv) {
  const std::vector<std::string> unknown = unknown_flags(known);
  if (unknown.empty()) return;
  std::string msg = "unknown flag";
  if (unknown.size() > 1) msg += 's';
  for (const std::string& f : unknown) msg += " --" + f;
  msg += "; accepted flags:";
  std::vector<std::string> sorted(known.begin(), known.end());
  std::sort(sorted.begin(), sorted.end());
  for (const std::string& f : sorted) msg += " --" + f;
  throw Error(msg);
}

std::vector<std::string> CliArgs::unknown_flags(
    std::initializer_list<const char*> known) const {
  std::vector<std::string> unknown;
  for (const auto& [name, value] : values_) {
    if (std::find_if(known.begin(), known.end(), [&](const char* k) {
          return name == k;
        }) == known.end()) {
      unknown.push_back(name);
    }
  }
  return unknown;
}

bool CliArgs::has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string CliArgs::get_string(const std::string& name,
                                const std::string& fallback) const {
  auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t CliArgs::get_int(const std::string& name,
                              std::int64_t fallback) const {
  auto it = values_.find(name);
  return it == values_.end() ? fallback : std::strtoll(it->second.c_str(), nullptr, 10);
}

double CliArgs::get_double(const std::string& name, double fallback,
                           double min, double max) const {
  auto it = values_.find(name);
  if (it == values_.end()) {
    AURORA_CHECK_MSG(fallback >= min && fallback <= max,
                     "--" << name << " default " << fallback
                          << " outside [" << min << ", " << max << "]");
    return fallback;
  }
  const std::string& text = it->second;
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(text.c_str(), &end);
  AURORA_CHECK_MSG(end != text.c_str() && *end == '\0' && errno == 0,
                   "--" << name << "=" << text << " is not a number");
  AURORA_CHECK_MSG(std::isfinite(parsed),
                   "--" << name << "=" << text << " must be finite");
  AURORA_CHECK_MSG(parsed >= min && parsed <= max,
                   "--" << name << "=" << text << " outside [" << min << ", "
                        << max << "]");
  return parsed;
}

bool CliArgs::get_bool(const std::string& name, bool fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::uint32_t CliArgs::get_uint(const std::string& name,
                                std::uint32_t fallback, std::uint32_t min,
                                std::uint32_t max) const {
  auto it = values_.find(name);
  if (it == values_.end()) {
    AURORA_CHECK_MSG(fallback >= min && fallback <= max,
                     "--" << name << " default " << fallback
                          << " outside [" << min << ", " << max << "]");
    return fallback;
  }
  const std::string& text = it->second;
  errno = 0;
  char* end = nullptr;
  const long long parsed = std::strtoll(text.c_str(), &end, 10);
  AURORA_CHECK_MSG(end != text.c_str() && *end == '\0' && errno == 0,
                   "--" << name << "=" << text
                        << " is not an unsigned integer");
  AURORA_CHECK_MSG(parsed >= 0, "--" << name << "=" << text
                                     << " must be non-negative");
  AURORA_CHECK_MSG(
      parsed >= static_cast<long long>(min) &&
          static_cast<unsigned long long>(parsed) <= max,
      "--" << name << "=" << text << " outside [" << min << ", " << max
           << "]");
  return static_cast<std::uint32_t>(parsed);
}

}  // namespace aurora
