#include "common/cli.hpp"

#include <cstdlib>

#include "common/error.hpp"

namespace aurora {

CliArgs::CliArgs(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    AURORA_CHECK_MSG(arg.rfind("--", 0) == 0,
                     "unexpected positional argument: " << arg);
    const auto eq = arg.find('=');
    if (eq == std::string::npos) {
      values_[arg.substr(2)] = "true";
    } else {
      values_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
    }
  }
}

bool CliArgs::has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string CliArgs::get_string(const std::string& name,
                                const std::string& fallback) const {
  auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t CliArgs::get_int(const std::string& name,
                              std::int64_t fallback) const {
  auto it = values_.find(name);
  return it == values_.end() ? fallback : std::strtoll(it->second.c_str(), nullptr, 10);
}

double CliArgs::get_double(const std::string& name, double fallback) const {
  auto it = values_.find(name);
  return it == values_.end() ? fallback : std::strtod(it->second.c_str(), nullptr);
}

bool CliArgs::get_bool(const std::string& name, bool fallback) const {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

}  // namespace aurora
