#include "common/metrics_registry.hpp"

#include "common/error.hpp"

namespace aurora {

const char* metric_kind_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  throw Error("invalid MetricKind");
}

void MetricsRegistry::insert(Entry entry) {
  AURORA_CHECK_MSG(!entry.name.empty(), "metric name must not be empty");
  const auto [it, inserted] = entries_.emplace(entry.name, std::move(entry));
  AURORA_CHECK_MSG(inserted, "duplicate metric registration: " << it->first);
}

void MetricsRegistry::add_counter(const std::string& name,
                                  const std::uint64_t* counter) {
  AURORA_CHECK(counter != nullptr);
  insert({name, MetricKind::kCounter,
          [counter] { return static_cast<double>(*counter); }, nullptr});
}

void MetricsRegistry::add_counter(const std::string& name, Probe probe) {
  AURORA_CHECK(probe != nullptr);
  insert({name, MetricKind::kCounter, std::move(probe), nullptr});
}

void MetricsRegistry::add_gauge(const std::string& name, Probe probe) {
  AURORA_CHECK(probe != nullptr);
  insert({name, MetricKind::kGauge, std::move(probe), nullptr});
}

void MetricsRegistry::add_histogram(const std::string& name,
                                    const Histogram* histogram) {
  AURORA_CHECK(histogram != nullptr);
  insert({name, MetricKind::kHistogram, nullptr, histogram});
}

const MetricsRegistry::Entry* MetricsRegistry::find(
    const std::string& name) const {
  const auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : &it->second;
}

double MetricsRegistry::value(const std::string& name) const {
  const Entry* e = find(name);
  AURORA_CHECK_MSG(e != nullptr, "unknown metric: " << name);
  AURORA_CHECK_MSG(e->kind != MetricKind::kHistogram,
                   "metric " << name << " is a histogram; read it via find()");
  return e->probe();
}

std::vector<const MetricsRegistry::Entry*> MetricsRegistry::match(
    const std::string& prefix) const {
  std::vector<const Entry*> out;
  for (auto it = entries_.lower_bound(prefix); it != entries_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    out.push_back(&it->second);
  }
  return out;
}

}  // namespace aurora
