#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace aurora {

AsciiTable::AsciiTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  AURORA_CHECK(!header_.empty());
}

void AsciiTable::add_row(std::vector<std::string> cells) {
  AURORA_CHECK_MSG(cells.size() == header_.size(),
                   "row width " << cells.size() << " != header width "
                                << header_.size());
  rows_.push_back(std::move(cells));
}

std::string AsciiTable::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      // First column is the label column: left-align it, right-align numbers.
      os << (c == 0 ? pad_right(row[c], widths[c]) : pad_left(row[c], widths[c]));
    }
    os << " |\n";
  };
  emit_row(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << (c == 0 ? "|-" : "-|-") << std::string(widths[c], '-');
  }
  os << "-|\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

void AsciiTable::print() const { std::fputs(to_string().c_str(), stdout); }

}  // namespace aurora
