// ASCII table rendering for the figure/table bench harnesses.
#pragma once

#include <string>
#include <vector>

namespace aurora {

/// Column-aligned ASCII table. Rows are added as strings; numeric helpers
/// format doubles consistently. Used by every bench binary so figure output
/// is uniform and diff-able.
class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  /// Render with a header rule and column padding.
  [[nodiscard]] std::string to_string() const;
  void print() const;

  [[nodiscard]] std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace aurora
