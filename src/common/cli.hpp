// Minimal --key=value command-line parsing for examples and bench binaries.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace aurora {

/// Parses flags of the form `--name=value` or boolean `--name`. Positional
/// arguments are rejected: every bench is fully flag-driven so runs are
/// self-describing.
class CliArgs {
 public:
  CliArgs(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] std::string get_string(const std::string& name,
                                       const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback) const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace aurora
