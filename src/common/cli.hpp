// Minimal --key=value command-line parsing for examples and bench binaries.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <limits>
#include <map>
#include <string>
#include <vector>

namespace aurora {

/// Parses flags of the form `--name=value` or boolean `--name`. Positional
/// arguments are rejected: every bench is fully flag-driven so runs are
/// self-describing.
///
/// Mains pass their accepted flag list so a typo (`--critpath-oot=x`)
/// errors with the accepted flags instead of silently no-opping — unknown
/// flags used to be stored and never read.
class CliArgs {
 public:
  /// Parse without a known-flag check (library/test use).
  CliArgs(int argc, const char* const* argv);
  /// Parse and reject any flag not in `known` (throws Error listing the
  /// accepted flags).
  CliArgs(int argc, const char* const* argv,
          std::initializer_list<const char*> known);

  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] std::string get_string(const std::string& name,
                                       const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t fallback) const;
  /// Strict double flag: rejects non-numeric values, trailing garbage
  /// (`--rate=1.5x` used to parse as 1.5), NaN/infinity, and values outside
  /// [min, max]. Throws Error naming the offending flag. The fallback is
  /// range-checked too, so a main cannot ship an out-of-range default.
  [[nodiscard]] double get_double(
      const std::string& name, double fallback,
      double min = std::numeric_limits<double>::lowest(),
      double max = std::numeric_limits<double>::max()) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback) const;
  /// Strict unsigned flag: rejects negatives (which used to wrap through
  /// static_cast<uint32_t>, e.g. `--chips=-1`), non-numeric values, and
  /// values outside [min, max]. Throws Error with the offending flag.
  [[nodiscard]] std::uint32_t get_uint(const std::string& name,
                                       std::uint32_t fallback,
                                       std::uint32_t min = 0,
                                       std::uint32_t max = UINT32_MAX) const;

  /// Flags present on the command line but absent from `known` (sorted).
  /// Exposed for tests; the checking constructor throws when non-empty.
  [[nodiscard]] std::vector<std::string> unknown_flags(
      std::initializer_list<const char*> known) const;

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace aurora
