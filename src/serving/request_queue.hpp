// Admission-controlled request queue with SLO-aware scheduling.
//
// The serving front end between the arrival process and the dispatch
// timeline: a bounded queue that sheds on overflow (admission control — an
// overloaded open-loop system must drop work somewhere, and an explicit
// shed counter beats unbounded queue growth), and a pop policy that picks
// the next request by strict priority class, then per-tenant fairness
// (least-served tenant first), then earliest deadline (EDF), with arrival
// and id as deterministic tie-breaks.
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "core/scheduler.hpp"

namespace aurora::serving {

/// "No deadline": sorts after every real deadline under EDF.
inline constexpr Cycle kNoDeadline = std::numeric_limits<Cycle>::max();

struct ServingRequest {
  /// Generation order; the final deterministic tie-break.
  std::uint64_t id = 0;
  std::uint32_t tenant = 0;
  /// Strict priority class; lower values are served first.
  std::uint32_t priority = 0;
  core::GnnJob job;
  std::string label;
  /// Batch-compatibility key: equal keys share a partition/NoC
  /// configuration. core::job_signature of `job` for ambient-dataset
  /// requests; dynamic workloads prefix it with the dataset key (a
  /// configuration is only shareable over the same subgraph).
  std::string compat_key;
  /// Per-request dataset (a sampled mini-batch); null requests run over the
  /// serving engine's ambient dataset.
  std::shared_ptr<const graph::Dataset> dataset;
  /// Identity of `dataset` for service caching; empty when null.
  std::string dataset_key;
  Cycle arrival = 0;
  /// Absolute deadline (arrival + SLO), or kNoDeadline.
  Cycle deadline = kNoDeadline;
  /// Dispatch attempts that failed so far (fault retries); drives the
  /// serving engine's exponential backoff and its retry cap.
  std::uint32_t retries = 0;
  /// Earliest re-dispatch cycle (the retry backoff expiry); 0 for fresh
  /// requests. Keeps a retry from starting on an idle chip before its
  /// previous attempt even failed.
  Cycle not_before = 0;
};

class RequestQueue {
 public:
  /// `depth_cap` bounds the number of waiting requests; admissions beyond
  /// it are shed. 0 means unbounded. `proactive_shedding` drops waiting
  /// requests whose deadline has already passed at pop time (the dispatch
  /// could not possibly meet the SLO, so the cycles are better spent on a
  /// request that still can) — they count as shed_expired(), distinct from
  /// admission-control shedding.
  explicit RequestQueue(std::size_t depth_cap, bool proactive_shedding = false)
      : depth_cap_(depth_cap), proactive_shedding_(proactive_shedding) {}

  /// Admit `request`, or shed it if the queue is at capacity. Returns
  /// whether the request was admitted.
  bool admit(ServingRequest request);

  /// Re-enter a request whose dispatch attempt failed (fault retry).
  /// Bypasses admission control — the request was already admitted once,
  /// and shedding a retry would break the admitted == completed +
  /// shed_expired + failed_permanently conservation.
  void readmit(ServingRequest request);

  /// Remove and return the next request under the scheduling policy
  /// (priority class, then least-served tenant, then EDF); nullopt when
  /// empty. Counts toward the winning tenant's served total. Under
  /// proactive shedding, requests with deadline < `now` are expired first.
  [[nodiscard]] std::optional<ServingRequest> pop(Cycle now = 0);

  /// pop() a head, then up to `max_batch - 1` waiting requests with the
  /// head's compat_key, in EDF order. The batch shares one array
  /// configuration, so only the head pays reconfiguration. Empty vector
  /// when the queue is empty; max_batch <= 1 degenerates to pop().
  [[nodiscard]] std::vector<ServingRequest> pop_batch(std::uint32_t max_batch,
                                                      Cycle now = 0);

  [[nodiscard]] std::size_t size() const { return waiting_.size(); }
  [[nodiscard]] bool empty() const { return waiting_.empty(); }
  [[nodiscard]] std::uint64_t admitted() const { return admitted_; }
  [[nodiscard]] std::uint64_t shed() const { return shed_; }
  /// Admitted requests dropped by proactive shedding (deadline already
  /// missed when a dispatch slot opened).
  [[nodiscard]] std::uint64_t shed_expired() const { return shed_expired_; }

 private:
  /// Index of the best waiting request under the pop() policy.
  [[nodiscard]] std::size_t best_index() const;
  ServingRequest take(std::size_t index);
  /// Proactive shedding sweep: drop every waiting request whose deadline
  /// precedes `now`. No-op unless enabled.
  void expire(Cycle now);

  std::size_t depth_cap_;
  bool proactive_shedding_;
  std::vector<ServingRequest> waiting_;
  std::map<std::uint32_t, std::uint64_t> served_per_tenant_;
  std::uint64_t admitted_ = 0;
  std::uint64_t shed_ = 0;
  std::uint64_t shed_expired_ = 0;
};

}  // namespace aurora::serving
