#include "serving/arrival.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace aurora::serving {

namespace {

constexpr double kPi = 3.14159265358979323846;

}  // namespace

const char* arrival_kind_name(ArrivalKind kind) {
  switch (kind) {
    case ArrivalKind::kPoisson:
      return "poisson";
    case ArrivalKind::kBursty:
      return "bursty";
    case ArrivalKind::kDiurnal:
      return "diurnal";
  }
  throw Error("invalid ArrivalKind");
}

std::optional<ArrivalKind> arrival_kind_by_name(const std::string& name) {
  for (ArrivalKind kind : {ArrivalKind::kPoisson, ArrivalKind::kBursty,
                           ArrivalKind::kDiurnal}) {
    if (name == arrival_kind_name(kind)) return kind;
  }
  return std::nullopt;
}

ArrivalProcess::ArrivalProcess(const ArrivalParams& params, std::uint64_t seed)
    : params_(params), rng_(seed) {
  AURORA_CHECK_MSG(params.rate_per_mcycle > 0.0,
                   "arrival rate must be positive");
  AURORA_CHECK_MSG(params.burst_fraction > 0.0 && params.burst_fraction < 1.0,
                   "burst_fraction must be in (0, 1)");
  AURORA_CHECK_MSG(params.burst_rate_multiplier >= 1.0,
                   "burst_rate_multiplier must be >= 1");
  AURORA_CHECK_MSG(params.mean_burst_mcycles > 0.0,
                   "mean_burst_mcycles must be positive");
  AURORA_CHECK_MSG(params.period_mcycles > 0.0,
                   "period_mcycles must be positive");
  AURORA_CHECK_MSG(params.amplitude >= 0.0 && params.amplitude < 1.0,
                   "amplitude must be in [0, 1)");
}

double ArrivalProcess::next_poisson_gap(double rate_per_cycle) {
  // Inverse-CDF exponential; 1 - u in (0, 1] avoids log(0).
  const double u = rng_.next_double();
  return -std::log(1.0 - u) / rate_per_cycle;
}

double ArrivalProcess::next_bursty() {
  // Two-state Markov-modulated Poisson. The off-state rate is derived so
  // the long-run mean equals rate_per_mcycle:
  //   f * mult * base_on + (1 - f) * base_off = rate  with base_on = mult * r0.
  const double f = params_.burst_fraction;
  const double mult = params_.burst_rate_multiplier;
  const double mean = params_.rate_per_mcycle / 1e6;
  // Solve r_off from mean = f * mult * r_off_base ... simpler: pick the
  // off rate r_off and on rate r_on = mult * r_off with
  // f*r_on + (1-f)*r_off = mean  =>  r_off = mean / (f*mult + 1 - f).
  const double r_off = mean / (f * mult + 1.0 - f);
  const double r_on = mult * r_off;
  const double mean_burst = params_.mean_burst_mcycles * 1e6;
  // Off sojourn mean chosen so the time fraction in bursts is f.
  const double mean_off = mean_burst * (1.0 - f) / f;

  while (true) {
    if (now_ >= state_until_) {
      // Enter the next sojourn (memoryless, so drawing at the boundary is
      // exact).
      in_burst_ = state_until_ > 0.0 ? !in_burst_ : false;
      const double sojourn =
          next_poisson_gap(1.0 / (in_burst_ ? mean_burst : mean_off));
      state_until_ = now_ + sojourn;
    }
    const double gap = next_poisson_gap(in_burst_ ? r_on : r_off);
    if (now_ + gap <= state_until_) {
      now_ += gap;
      return now_;
    }
    // The candidate arrival crosses the state boundary: advance to the
    // boundary and redraw under the new state's rate (exponentials are
    // memoryless, so discarding the overshoot keeps the process exact).
    now_ = state_until_;
  }
}

double ArrivalProcess::next_diurnal() {
  // Lewis thinning for the nonhomogeneous rate
  //   lambda(t) = mean * (1 + amplitude * sin(2*pi*t / period)).
  const double mean = params_.rate_per_mcycle / 1e6;
  const double period = params_.period_mcycles * 1e6;
  const double lambda_max = mean * (1.0 + params_.amplitude);
  while (true) {
    now_ += next_poisson_gap(lambda_max);
    const double lambda_now =
        mean * (1.0 + params_.amplitude * std::sin(2.0 * kPi * now_ / period));
    if (rng_.next_double() * lambda_max <= lambda_now) return now_;
  }
}

Cycle ArrivalProcess::next() {
  double at = 0.0;
  switch (params_.kind) {
    case ArrivalKind::kPoisson:
      now_ += next_poisson_gap(params_.rate_per_mcycle / 1e6);
      at = now_;
      break;
    case ArrivalKind::kBursty:
      at = next_bursty();
      break;
    case ArrivalKind::kDiurnal:
      at = next_diurnal();
      break;
  }
  return static_cast<Cycle>(at);
}

}  // namespace aurora::serving
