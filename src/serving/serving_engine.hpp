// Open-loop serving engine: arrival process -> admission queue -> dynamic
// batching -> cluster dispatch.
//
// Drives the existing dispatch layers (core::Scheduler's overlap model via
// cluster::ClusterScheduler, both data-parallel and shard-parallel, serial
// or parallel simulation) with requests that arrive on their own clock, and
// reports what a deployment actually tunes against: goodput under SLO, shed
// rate, and the queue-wait vs service-time split behind each latency
// percentile. Fully deterministic for a fixed seed.
//
// The event loop is intentionally simple: advance to the earliest cycle a
// serving unit frees up, admit everything that has arrived by then, pop a
// batch (EDF within priority classes, per-tenant fairness; followers share
// the head's partition/NoC configuration and skip reconfiguration), and
// dispatch it. With batching off and all arrivals at cycle 0 this collapses
// to core::Scheduler::run bit-for-bit — the equivalence the tests pin.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster_scheduler.hpp"
#include "fault/fault.hpp"
#include "serving/arrival.hpp"
#include "serving/request_queue.hpp"

namespace aurora::serving {

/// One entry of the served model mix; requests draw from the mix with
/// probability proportional to `weight`.
struct ModelMixEntry {
  core::GnnJob job;
  std::string label;
  double weight = 1.0;
  /// Priority class for every request of this entry (lower = more urgent).
  std::uint32_t priority = 0;
};

struct ServingParams {
  ArrivalParams arrival;
  /// Seeds the arrival process and the mix/tenant draws.
  std::uint64_t seed = 1;
  /// Number of requests to generate for an open-loop run().
  std::uint64_t num_requests = 64;
  /// Admission cap on waiting requests (0 = unbounded, never sheds).
  std::size_t queue_depth = 64;
  /// Largest batch of configuration-compatible requests dispatched
  /// together; <= 1 disables batching.
  std::uint32_t max_batch = 4;
  /// Requests are attributed round-robin-free to this many tenants
  /// (uniform random draw); the queue balances service across them.
  std::uint32_t num_tenants = 1;
  /// Latency SLO in cycles; 0 means no deadline (everything is goodput).
  Cycle slo_cycles = 0;
  cluster::DispatchMode mode = cluster::DispatchMode::kDataParallel;
  /// Chip fault injection: when enabled() (horizon > 0 and a chip MTBF is
  /// set), serve_all generates a seed-deterministic fault::FaultPlan over
  /// the serving clock and attaches it to the cluster scheduler — dispatch
  /// avoids down chips, mid-flight failures trigger the retry path below.
  /// Disabled (the default) leaves serving bit-identical to a faultless
  /// engine. Link/DRAM fault windows act on the cluster-run / chip-local
  /// clocks and are wired by the caller (ClusterParams::fault_plan,
  /// DramConfig::stall_windows), not here.
  fault::FaultParams faults;
  /// Failed dispatch attempts allowed per request beyond the first; a
  /// request that fails max_retries + 1 times counts failed_permanently.
  std::uint32_t max_retries = 3;
  /// Capped exponential backoff before a failed request re-enters the
  /// queue: base * 2^retries cycles after the failure, at most the cap.
  Cycle retry_backoff_base = 256;
  Cycle retry_backoff_cap = Cycle{1} << 16;
  /// Proactive SLO shedding: drop waiting requests whose deadline already
  /// passed when a dispatch slot opens (see RequestQueue), counted as
  /// shed_expired rather than served late.
  bool proactive_shedding = false;
};

struct ServedRequest {
  std::uint64_t id = 0;
  std::uint32_t tenant = 0;
  std::uint32_t priority = 0;
  std::string label;
  /// Serving chip (data-parallel; 0 under shard-parallel).
  std::uint32_t chip = 0;
  Cycle arrival = 0;
  Cycle start = 0;
  Cycle finish = 0;
  Cycle deadline = kNoDeadline;
  /// Whether the request rode a batch head's configuration.
  bool batched_follower = false;
  Cycle overlap_hidden = 0;
  Cycle reconfig_saved = 0;
  /// Dispatch attempts that failed before this one completed.
  std::uint32_t retries = 0;
  /// Completed after at least one failed attempt (re-dispatched onto
  /// whatever chip the fault-aware scheduler picked next).
  bool failed_over = false;
  core::RunMetrics metrics;

  [[nodiscard]] Cycle queue_wait() const { return start - arrival; }
  [[nodiscard]] Cycle service_time() const { return finish - start; }
  [[nodiscard]] Cycle latency() const { return finish - arrival; }
  [[nodiscard]] bool met_slo() const { return finish <= deadline; }
};

struct ServingReport {
  /// Completed requests in dispatch order.
  std::vector<ServedRequest> served;
  std::uint64_t generated = 0;
  std::uint64_t admitted = 0;
  std::uint64_t shed = 0;
  /// Dispatched batches and how many requests rode as followers.
  std::uint64_t batches = 0;
  std::uint64_t batched_followers = 0;
  // Availability accounting (all zero without a fault plan). Conservation:
  // admitted == served.size() + shed_expired + failed_permanently.
  /// Dispatch attempts that ended in a mid-flight chip failure.
  std::uint64_t failed_attempts = 0;
  /// Re-dispatches scheduled by the retry/backoff path.
  std::uint64_t retries = 0;
  /// Requests that completed after at least one failed attempt.
  std::uint64_t failed_over = 0;
  /// Requests dropped after exhausting retries (or when every chip was
  /// permanently down).
  std::uint64_t failed_permanently = 0;
  /// Admitted requests dropped by proactive SLO shedding.
  std::uint64_t shed_expired = 0;
  /// Shard-parallel dispatches re-routed through a data-parallel placement
  /// because a gang chip was down.
  std::uint64_t shard_fallbacks = 0;
  Cycle overlap_savings = 0;
  Cycle reconfig_savings = 0;
  /// Last finish cycle (the serving horizon).
  Cycle horizon = 0;
  Cycle slo_cycles = 0;
  double frequency_mhz = 0.0;
  ArrivalKind arrival_kind = ArrivalKind::kPoisson;
  cluster::DispatchMode mode = cluster::DispatchMode::kDataParallel;
  std::uint32_t num_chips = 1;

  [[nodiscard]] double shed_rate() const;
  [[nodiscard]] std::uint64_t met_slo_count() const;
  /// Requests completed within their SLO per second of serving horizon.
  [[nodiscard]] double goodput_rps() const;
  /// Exact nearest-rank percentiles over the served requests.
  [[nodiscard]] double latency_percentile(double q) const;
  [[nodiscard]] double queue_wait_percentile(double q) const;
  [[nodiscard]] double service_percentile(double q) const;
  /// The report's scalars as "serving.*" counters, for merging into a run's
  /// CounterSet so --metrics-out and the registry surfaces carry them.
  [[nodiscard]] CounterSet counters() const;
};

/// The report as a JSON object (schema "aurora.serving.v1").
[[nodiscard]] std::string serving_report_json(const ServingReport& report);

/// Field-by-field comparison of two serving reports: every scalar
/// (admission, batching, availability and savings counters, horizon) and
/// every served request's identity, placement, timing and retry fields.
/// Returns human-readable mismatch lines; empty means bit-identical.
/// Shared by the differential fuzzer and the bit-identity tests.
[[nodiscard]] std::vector<std::string> diff_serving_reports(
    const ServingReport& a, const ServingReport& b);

class ServingEngine {
 public:
  ServingEngine(const core::AuroraConfig& config,
                const cluster::ClusterParams& cluster_params,
                const ServingParams& params);

  /// Generate `params.num_requests` open-loop arrivals over `mix` (seed-
  /// deterministic) and serve them. Exposed separately so tests can pin the
  /// generated stream itself.
  [[nodiscard]] std::vector<ServingRequest> generate(
      const std::vector<ModelMixEntry>& mix) const;
  [[nodiscard]] ServingReport run(const graph::Dataset& dataset,
                                  const std::vector<ModelMixEntry>& mix);

  /// Serve a pre-built request list (closed-loop replay and tests).
  /// Requests must be sorted by arrival; compat_key may be left empty and
  /// is filled from the job.
  [[nodiscard]] ServingReport replay(const graph::Dataset& dataset,
                                     std::vector<ServingRequest> requests);

  /// Trace every request's execution (see ClusterScheduler::set_tracer).
  void set_tracer(sim::Tracer* tracer) { tracer_ = tracer; }

  /// Override the fault plan instead of generating one from
  /// params.faults — lets tests and benchmarks serve against a plan they
  /// have already inspected. Null reverts to params.faults.
  void set_fault_plan(std::shared_ptr<const fault::FaultPlan> plan) {
    fault_plan_ = std::move(plan);
  }

 private:
  [[nodiscard]] ServingReport serve_all(const graph::Dataset& dataset,
                                        std::vector<ServingRequest> requests);

  core::AuroraConfig config_;
  cluster::ClusterParams cluster_params_;
  ServingParams params_;
  sim::Tracer* tracer_ = nullptr;
  std::shared_ptr<const fault::FaultPlan> fault_plan_;
};

}  // namespace aurora::serving
