#include "serving/request_queue.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"

namespace aurora::serving {

namespace {

/// EDF comparison with deterministic tie-breaks.
bool earlier_deadline(const ServingRequest& a, const ServingRequest& b) {
  if (a.deadline != b.deadline) return a.deadline < b.deadline;
  if (a.arrival != b.arrival) return a.arrival < b.arrival;
  return a.id < b.id;
}

}  // namespace

bool RequestQueue::admit(ServingRequest request) {
  if (depth_cap_ != 0 && waiting_.size() >= depth_cap_) {
    ++shed_;
    return false;
  }
  ++admitted_;
  waiting_.push_back(std::move(request));
  return true;
}

void RequestQueue::readmit(ServingRequest request) {
  waiting_.push_back(std::move(request));
}

void RequestQueue::expire(Cycle now) {
  if (!proactive_shedding_) return;
  std::size_t kept = 0;
  for (std::size_t i = 0; i < waiting_.size(); ++i) {
    if (waiting_[i].deadline < now) {
      ++shed_expired_;
      continue;
    }
    if (kept != i) waiting_[kept] = std::move(waiting_[i]);
    ++kept;
  }
  waiting_.resize(kept);
}

std::size_t RequestQueue::best_index() const {
  AURORA_CHECK(!waiting_.empty());
  std::size_t best = 0;
  for (std::size_t i = 1; i < waiting_.size(); ++i) {
    const ServingRequest& cand = waiting_[i];
    const ServingRequest& cur = waiting_[best];
    if (cand.priority != cur.priority) {
      if (cand.priority < cur.priority) best = i;
      continue;
    }
    // Fairness within the class: favour the tenant served least so far.
    const auto served = [this](std::uint32_t tenant) {
      const auto it = served_per_tenant_.find(tenant);
      return it == served_per_tenant_.end() ? std::uint64_t{0} : it->second;
    };
    const std::uint64_t cand_served = served(cand.tenant);
    const std::uint64_t cur_served = served(cur.tenant);
    if (cand_served != cur_served) {
      if (cand_served < cur_served) best = i;
      continue;
    }
    if (earlier_deadline(cand, cur)) best = i;
  }
  return best;
}

ServingRequest RequestQueue::take(std::size_t index) {
  ServingRequest request = std::move(waiting_[index]);
  waiting_.erase(waiting_.begin() + static_cast<std::ptrdiff_t>(index));
  ++served_per_tenant_[request.tenant];
  return request;
}

std::optional<ServingRequest> RequestQueue::pop(Cycle now) {
  expire(now);
  if (waiting_.empty()) return std::nullopt;
  return take(best_index());
}

std::vector<ServingRequest> RequestQueue::pop_batch(std::uint32_t max_batch,
                                                    Cycle now) {
  std::vector<ServingRequest> batch;
  expire(now);
  if (waiting_.empty()) return batch;
  batch.push_back(take(best_index()));
  while (batch.size() < std::max<std::uint32_t>(max_batch, 1)) {
    // Best compatible follower in EDF order (priority/fairness already
    // spoke through the head; followers ride its configuration).
    std::size_t follower = waiting_.size();
    for (std::size_t i = 0; i < waiting_.size(); ++i) {
      if (waiting_[i].compat_key != batch.front().compat_key) continue;
      if (follower == waiting_.size() ||
          earlier_deadline(waiting_[i], waiting_[follower])) {
        follower = i;
      }
    }
    if (follower == waiting_.size()) break;
    batch.push_back(take(follower));
  }
  return batch;
}

}  // namespace aurora::serving
