// Open-loop arrival processes for the serving engine.
//
// Open-loop means requests arrive on their own clock — millions of users do
// not wait for the accelerator to free up — so queueing delay, shed rate
// and goodput-under-SLO become visible, which a closed-loop replay of a
// fixed request list structurally cannot show. Three processes cover the
// paper's recommendation-serving story: Poisson (steady independent users),
// bursty (a two-state modulated Poisson: flash crowds over a quiet
// baseline), and diurnal (sinusoidal rate over a day-like period). All
// draw from common/rng, so a fixed seed reproduces the arrival trace
// bit-for-bit.
#pragma once

#include <optional>
#include <string>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace aurora::serving {

enum class ArrivalKind : std::uint8_t {
  kPoisson,
  kBursty,
  kDiurnal,
};

[[nodiscard]] const char* arrival_kind_name(ArrivalKind kind);
[[nodiscard]] std::optional<ArrivalKind> arrival_kind_by_name(
    const std::string& name);

struct ArrivalParams {
  ArrivalKind kind = ArrivalKind::kPoisson;
  /// Long-run mean arrival rate in requests per million cycles. All three
  /// processes honour it: bursty and diurnal modulate around this mean.
  double rate_per_mcycle = 50.0;

  /// Bursty: rate multiplier while a burst is on. The off-state rate is
  /// derived so the long-run mean stays `rate_per_mcycle`.
  double burst_rate_multiplier = 8.0;
  /// Long-run fraction of time spent inside bursts, in (0, 1).
  double burst_fraction = 0.1;
  /// Mean burst duration in million cycles (exponential sojourns).
  double mean_burst_mcycles = 0.05;

  /// Diurnal: modulation period in million cycles ("one day").
  double period_mcycles = 2.0;
  /// Modulation depth in [0, 1): rate swings between (1-a) and (1+a) times
  /// the mean.
  double amplitude = 0.8;
};

/// Generates a strictly non-decreasing stream of arrival cycles.
class ArrivalProcess {
 public:
  ArrivalProcess(const ArrivalParams& params, std::uint64_t seed);

  /// The next arrival's cycle.
  [[nodiscard]] Cycle next();

 private:
  [[nodiscard]] double next_poisson_gap(double rate_per_cycle);
  [[nodiscard]] double next_bursty();
  [[nodiscard]] double next_diurnal();

  ArrivalParams params_;
  Rng rng_;
  /// Continuous simulation time in cycles (kept in double so sub-cycle
  /// arrival spacing at high rates does not collapse to zero gaps).
  double now_ = 0.0;
  bool in_burst_ = false;
  /// End of the current bursty-state sojourn.
  double state_until_ = 0.0;
};

}  // namespace aurora::serving
