#include "serving/serving_engine.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"

namespace aurora::serving {

namespace {

/// Decorrelates the mix/tenant draws from the arrival process without
/// coupling their stream positions (SplitMix64-style golden-ratio offset).
constexpr std::uint64_t kMixSeedSalt = 0x9E3779B97F4A7C15ull;

template <typename Selector>
double percentile_of(const std::vector<ServedRequest>& served,
                     double q, Selector select) {
  std::vector<double> samples;
  samples.reserve(served.size());
  for (const ServedRequest& r : served) {
    samples.push_back(static_cast<double>(select(r)));
  }
  return percentile(std::move(samples), q);
}

}  // namespace

double ServingReport::shed_rate() const {
  return generated == 0
             ? 0.0
             : static_cast<double>(shed) / static_cast<double>(generated);
}

std::uint64_t ServingReport::met_slo_count() const {
  std::uint64_t met = 0;
  for (const ServedRequest& r : served) met += r.met_slo() ? 1 : 0;
  return met;
}

double ServingReport::goodput_rps() const {
  if (horizon == 0 || frequency_mhz <= 0.0) return 0.0;
  const double seconds =
      static_cast<double>(horizon) / (frequency_mhz * 1e6);
  return static_cast<double>(met_slo_count()) / seconds;
}

double ServingReport::latency_percentile(double q) const {
  return percentile_of(served, q,
                       [](const ServedRequest& r) { return r.latency(); });
}

double ServingReport::queue_wait_percentile(double q) const {
  return percentile_of(served, q,
                       [](const ServedRequest& r) { return r.queue_wait(); });
}

double ServingReport::service_percentile(double q) const {
  return percentile_of(
      served, q, [](const ServedRequest& r) { return r.service_time(); });
}

CounterSet ServingReport::counters() const {
  CounterSet counters;
  counters.inc("serving.generated", generated);
  counters.inc("serving.admitted", admitted);
  counters.inc("serving.shed", shed);
  counters.inc("serving.met_slo", met_slo_count());
  counters.inc("serving.batches", batches);
  counters.inc("serving.batched_followers", batched_followers);
  counters.inc("serving.failed_attempts", failed_attempts);
  counters.inc("serving.retries", retries);
  counters.inc("serving.failed_over", failed_over);
  counters.inc("serving.failed_permanently", failed_permanently);
  counters.inc("serving.shed_expired", shed_expired);
  counters.inc("serving.shard_fallbacks", shard_fallbacks);
  counters.inc("serving.overlap_saved_cycles", overlap_savings);
  counters.inc("serving.reconfig_saved_cycles", reconfig_savings);
  counters.inc("serving.horizon_cycles", horizon);
  return counters;
}

std::string serving_report_json(const ServingReport& report) {
  std::ostringstream os;
  const auto kv = [&os](const char* key, auto value, bool last = false) {
    os << "\"" << key << "\": " << value << (last ? "" : ", ");
  };
  const auto kv_str = [&os](const char* key, const std::string& value,
                            bool last = false) {
    os << "\"" << key << "\": \"" << value << "\"" << (last ? "" : ", ");
  };
  os << "{";
  kv_str("schema", "aurora.serving.v1");
  kv_str("arrival", arrival_kind_name(report.arrival_kind));
  kv_str("mode", cluster::dispatch_mode_name(report.mode));
  kv("chips", report.num_chips);
  kv("generated", report.generated);
  kv("admitted", report.admitted);
  kv("shed", report.shed);
  kv("shed_rate", report.shed_rate());
  kv("slo_cycles", static_cast<std::uint64_t>(report.slo_cycles));
  kv("met_slo", report.met_slo_count());
  kv("goodput_rps", report.goodput_rps());
  kv("batches", report.batches);
  kv("batched_followers", report.batched_followers);
  kv("failed_attempts", report.failed_attempts);
  kv("retries", report.retries);
  kv("failed_over", report.failed_over);
  kv("failed_permanently", report.failed_permanently);
  kv("shed_expired", report.shed_expired);
  kv("shard_fallbacks", report.shard_fallbacks);
  kv("overlap_saved_cycles",
     static_cast<std::uint64_t>(report.overlap_savings));
  kv("reconfig_saved_cycles",
     static_cast<std::uint64_t>(report.reconfig_savings));
  kv("horizon_cycles", static_cast<std::uint64_t>(report.horizon));
  kv("latency_p50_cycles", report.latency_percentile(0.50));
  kv("latency_p95_cycles", report.latency_percentile(0.95));
  kv("latency_p99_cycles", report.latency_percentile(0.99));
  kv("queue_wait_p50_cycles", report.queue_wait_percentile(0.50));
  kv("queue_wait_p95_cycles", report.queue_wait_percentile(0.95));
  kv("queue_wait_p99_cycles", report.queue_wait_percentile(0.99));
  kv("service_p50_cycles", report.service_percentile(0.50));
  kv("service_p95_cycles", report.service_percentile(0.95));
  kv("service_p99_cycles", report.service_percentile(0.99));
  os << "\"requests\": [";
  for (std::size_t i = 0; i < report.served.size(); ++i) {
    const ServedRequest& r = report.served[i];
    os << "{";
    kv("id", r.id);
    kv_str("label", r.label);
    kv("tenant", r.tenant);
    kv("priority", r.priority);
    kv("chip", r.chip);
    kv("arrival", static_cast<std::uint64_t>(r.arrival));
    kv("start", static_cast<std::uint64_t>(r.start));
    kv("finish", static_cast<std::uint64_t>(r.finish));
    kv("queue_wait", static_cast<std::uint64_t>(r.queue_wait()));
    kv("service", static_cast<std::uint64_t>(r.service_time()));
    kv("batched_follower", r.batched_follower ? "true" : "false");
    kv("retries", r.retries);
    kv("failed_over", r.failed_over ? "true" : "false");
    kv("met_slo", r.met_slo() ? "true" : "false", /*last=*/true);
    os << (i + 1 < report.served.size() ? "}, " : "}");
  }
  os << "]}";
  return os.str();
}

std::vector<std::string> diff_serving_reports(const ServingReport& a,
                                              const ServingReport& b) {
  std::vector<std::string> diffs;
  const auto field = [&diffs](const std::string& name, auto va, auto vb) {
    if (va == vb) return;
    std::ostringstream os;
    os << name << ": " << va << " vs " << vb;
    diffs.push_back(os.str());
  };
  field("generated", a.generated, b.generated);
  field("admitted", a.admitted, b.admitted);
  field("shed", a.shed, b.shed);
  field("batches", a.batches, b.batches);
  field("batched_followers", a.batched_followers, b.batched_followers);
  field("failed_attempts", a.failed_attempts, b.failed_attempts);
  field("retries", a.retries, b.retries);
  field("failed_over", a.failed_over, b.failed_over);
  field("failed_permanently", a.failed_permanently, b.failed_permanently);
  field("shed_expired", a.shed_expired, b.shed_expired);
  field("shard_fallbacks", a.shard_fallbacks, b.shard_fallbacks);
  field("overlap_savings", a.overlap_savings, b.overlap_savings);
  field("reconfig_savings", a.reconfig_savings, b.reconfig_savings);
  field("horizon", a.horizon, b.horizon);
  field("served.size", a.served.size(), b.served.size());
  const std::size_t n = std::min(a.served.size(), b.served.size());
  for (std::size_t i = 0; i < n; ++i) {
    const ServedRequest& ra = a.served[i];
    const ServedRequest& rb = b.served[i];
    const std::string p = "served[" + std::to_string(i) + "].";
    field(p + "id", ra.id, rb.id);
    field(p + "label", ra.label, rb.label);
    field(p + "tenant", ra.tenant, rb.tenant);
    field(p + "priority", ra.priority, rb.priority);
    field(p + "chip", ra.chip, rb.chip);
    field(p + "arrival", ra.arrival, rb.arrival);
    field(p + "start", ra.start, rb.start);
    field(p + "finish", ra.finish, rb.finish);
    field(p + "deadline", ra.deadline, rb.deadline);
    field(p + "batched_follower", ra.batched_follower, rb.batched_follower);
    field(p + "overlap_hidden", ra.overlap_hidden, rb.overlap_hidden);
    field(p + "reconfig_saved", ra.reconfig_saved, rb.reconfig_saved);
    field(p + "retries", ra.retries, rb.retries);
    field(p + "failed_over", ra.failed_over, rb.failed_over);
    field(p + "total_cycles", ra.metrics.total_cycles,
          rb.metrics.total_cycles);
  }
  return diffs;
}

ServingEngine::ServingEngine(const core::AuroraConfig& config,
                             const cluster::ClusterParams& cluster_params,
                             const ServingParams& params)
    : config_(config), cluster_params_(cluster_params), params_(params) {
  AURORA_CHECK_MSG(params.num_tenants >= 1, "need at least one tenant");
}

std::vector<ServingRequest> ServingEngine::generate(
    const std::vector<ModelMixEntry>& mix) const {
  AURORA_CHECK_MSG(!mix.empty(), "model mix must not be empty");
  std::vector<double> weights;
  weights.reserve(mix.size());
  for (const ModelMixEntry& entry : mix) {
    AURORA_CHECK_MSG(entry.weight >= 0.0, "mix weights must be >= 0");
    weights.push_back(entry.weight);
  }

  ArrivalProcess arrivals(params_.arrival, params_.seed);
  Rng draw(params_.seed + kMixSeedSalt);
  std::vector<ServingRequest> requests;
  requests.reserve(params_.num_requests);
  for (std::uint64_t i = 0; i < params_.num_requests; ++i) {
    const ModelMixEntry& entry = mix[draw.next_weighted(weights)];
    ServingRequest request;
    request.id = i;
    request.tenant =
        static_cast<std::uint32_t>(draw.next_below(params_.num_tenants));
    request.priority = entry.priority;
    request.job = entry.job;
    request.label = entry.label + " #" + std::to_string(i);
    request.compat_key = core::job_signature(entry.job);
    request.arrival = arrivals.next();
    request.deadline = params_.slo_cycles == 0
                           ? kNoDeadline
                           : request.arrival + params_.slo_cycles;
    requests.push_back(std::move(request));
  }
  return requests;
}

ServingReport ServingEngine::run(const graph::Dataset& dataset,
                                 const std::vector<ModelMixEntry>& mix) {
  return serve_all(dataset, generate(mix));
}

ServingReport ServingEngine::replay(const graph::Dataset& dataset,
                                    std::vector<ServingRequest> requests) {
  for (ServingRequest& request : requests) {
    if (request.compat_key.empty()) {
      request.compat_key = core::job_signature(request.job);
      if (!request.dataset_key.empty()) {
        request.compat_key = request.dataset_key + "|" + request.compat_key;
      }
    }
  }
  return serve_all(dataset, std::move(requests));
}

ServingReport ServingEngine::serve_all(const graph::Dataset& dataset,
                                       std::vector<ServingRequest> requests) {
  for (std::size_t i = 1; i < requests.size(); ++i) {
    AURORA_CHECK_MSG(requests[i - 1].arrival <= requests[i].arrival,
                     "serving requests must be sorted by arrival");
  }

  cluster::ClusterScheduler scheduler(config_, cluster_params_);
  if (tracer_ != nullptr) scheduler.set_tracer(tracer_);
  RequestQueue queue(params_.queue_depth, params_.proactive_shedding);

  // Chip fault plan: an explicit override wins, otherwise generate one from
  // params.faults (inert unless enabled). Attaching an empty plan changes
  // nothing — the scheduler treats it as absent.
  std::shared_ptr<const fault::FaultPlan> plan = fault_plan_;
  if (plan == nullptr && params_.faults.enabled()) {
    plan = std::make_shared<fault::FaultPlan>(fault::FaultPlan::generate(
        params_.faults, cluster_params_.num_chips));
  }
  const bool faulty = plan != nullptr && !plan->empty();
  if (faulty) {
    scheduler.set_fault_plan(plan);
    if (tracer_ != nullptr) {
      // Annotate the serving clock with the chip availability timeline so
      // trace viewers can line failures up with dispatch gaps.
      for (const fault::FaultEvent& e : plan->events()) {
        if (e.kind == fault::FaultKind::kChipDown) {
          tracer_->record(e.at, sim::TraceEvent::kChipDown, e.chip);
        } else if (e.kind == fault::FaultKind::kChipUp) {
          tracer_->record(e.at, sim::TraceEvent::kChipUp, e.chip);
        }
      }
    }
  }

  ServingReport report;
  report.generated = requests.size();
  report.slo_cycles = params_.slo_cycles;
  report.frequency_mhz = config_.frequency_mhz;
  report.arrival_kind = params_.arrival.kind;
  report.mode = params_.mode;
  report.num_chips = cluster_params_.num_chips;

  // Failed attempts wait out their backoff here before re-entering the
  // queue; a min-heap on (eligible cycle, id) keeps re-admission order
  // deterministic.
  struct PendingRetry {
    Cycle eligible_at = 0;
    ServingRequest request;
  };
  const auto retry_after = [](const PendingRetry& a, const PendingRetry& b) {
    if (a.eligible_at != b.eligible_at) return a.eligible_at > b.eligible_at;
    return a.request.id > b.request.id;
  };
  std::vector<PendingRetry> retry_heap;
  const auto backoff_of = [this](std::uint32_t attempt) {
    Cycle b = params_.retry_backoff_base;
    for (std::uint32_t i = 0; i < attempt && b < params_.retry_backoff_cap;
         ++i) {
      b *= 2;
    }
    return std::min(b, params_.retry_backoff_cap);
  };

  std::size_t next = 0;
  const auto admit_until = [&](Cycle t) {
    // Merge fresh arrivals and due retries in cycle order; an arrival wins
    // ties (a retry re-enters behind traffic that arrived with it). Retries
    // bypass the admission cap — they were admitted once already.
    while (true) {
      const Cycle arr =
          next < requests.size() ? requests[next].arrival : fault::kNever;
      const Cycle ret =
          retry_heap.empty() ? fault::kNever : retry_heap.front().eligible_at;
      if (arr > t && ret > t) break;
      if (arr <= ret) {
        queue.admit(std::move(requests[next++]));
      } else {
        std::pop_heap(retry_heap.begin(), retry_heap.end(), retry_after);
        queue.readmit(std::move(retry_heap.back().request));
        retry_heap.pop_back();
      }
    }
  };

  while (next < requests.size() || !queue.empty() || !retry_heap.empty()) {
    // The dispatch clock: the earliest cycle a serving unit frees up.
    // Everything that has arrived by then is eligible (and subject to the
    // admission cap, in arrival order); if nothing waits, idle forward to
    // the next arrival or retry-eligibility cycle.
    Cycle clock = scheduler.next_free(params_.mode);
    admit_until(clock);
    if (queue.empty()) {
      Cycle idle_to =
          next < requests.size() ? requests[next].arrival : fault::kNever;
      if (!retry_heap.empty()) {
        idle_to = std::min(idle_to, retry_heap.front().eligible_at);
      }
      clock = std::max(clock, idle_to);
      admit_until(clock);
      if (queue.empty()) continue;  // the whole tranche was shed
    }

    std::vector<ServingRequest> batch =
        queue.pop_batch(params_.max_batch, clock);
    if (batch.empty()) continue;  // proactive shedding expired the backlog
    ++report.batches;
    std::optional<std::uint32_t> pin_chip;
    bool follower = false;
    for (ServingRequest& request : batch) {
      // Dynamic workloads attach a per-request mini-batch dataset; its key
      // rides along so the service cache never aliases across subgraphs.
      const graph::Dataset& request_dataset =
          request.dataset != nullptr ? *request.dataset : dataset;
      cluster::ClusterOutcome outcome = scheduler.serve(
          request_dataset,
          {request.job, request.label, request.dataset_key}, params_.mode,
          std::max(request.arrival, request.not_before), follower, pin_chip);
      if (outcome.shard_fallback) ++report.shard_fallbacks;
      if (outcome.failed) {
        // The attempt still occupied its chip until the failure instant.
        report.horizon = std::max(report.horizon, outcome.finish_cycle);
        if (!outcome.no_capacity) ++report.failed_attempts;
        if (outcome.no_capacity || request.retries >= params_.max_retries) {
          ++report.failed_permanently;
        } else {
          // Capped exponential backoff from the failure instant; the heap
          // holds the request until the dispatch clock passes eligibility.
          const Cycle eligible = outcome.failed_at + backoff_of(request.retries);
          ++report.retries;
          request.retries += 1;
          request.not_before = eligible;
          retry_heap.push_back({eligible, std::move(request)});
          std::push_heap(retry_heap.begin(), retry_heap.end(), retry_after);
        }
        // The batch head's configuration was lost with the failed chip, so
        // the follower/pin state is left untouched: the next batch member
        // dispatches as a fresh head.
        continue;
      }
      if (follower) ++report.batched_followers;
      if (!follower && params_.mode == cluster::DispatchMode::kDataParallel) {
        pin_chip = outcome.chip;
      }

      ServedRequest served;
      served.id = request.id;
      served.tenant = request.tenant;
      served.priority = request.priority;
      served.label = std::move(request.label);
      served.chip = outcome.chip;
      served.arrival = request.arrival;
      served.start = outcome.start_cycle;
      served.finish = outcome.finish_cycle;
      served.deadline = request.deadline;
      served.batched_follower = follower;
      served.overlap_hidden = outcome.overlap_hidden;
      served.reconfig_saved = outcome.reconfig_saved;
      served.retries = request.retries;
      served.failed_over = request.retries > 0;
      if (served.failed_over) ++report.failed_over;
      served.metrics = std::move(outcome.metrics);
      report.overlap_savings += served.overlap_hidden;
      report.reconfig_savings += served.reconfig_saved;
      report.horizon = std::max(report.horizon, served.finish);
      report.served.push_back(std::move(served));
      follower = true;
    }
  }

  report.admitted = queue.admitted();
  report.shed = queue.shed();
  report.shed_expired = queue.shed_expired();
  AURORA_CHECK(report.admitted + report.shed == report.generated);
  // Every admitted request is accounted for exactly once: it completed,
  // expired under proactive shedding, or failed permanently.
  AURORA_CHECK(report.admitted == report.served.size() +
                                      report.shed_expired +
                                      report.failed_permanently);
  return report;
}

}  // namespace aurora::serving
