#include "graph/csr.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace aurora::graph {

CsrGraph::CsrGraph(std::vector<EdgeId> row_ptr, std::vector<VertexId> col_idx)
    : row_ptr_(std::move(row_ptr)), col_idx_(std::move(col_idx)) {
  validate();
}

bool CsrGraph::has_edge(VertexId u, VertexId v) const {
  const auto nb = neighbors(u);
  return std::binary_search(nb.begin(), nb.end(), v);
}

void CsrGraph::validate() const {
  AURORA_CHECK(!row_ptr_.empty());
  AURORA_CHECK(row_ptr_.front() == 0);
  AURORA_CHECK(row_ptr_.back() == col_idx_.size());
  const VertexId n = num_vertices();
  for (VertexId v = 0; v < n; ++v) {
    AURORA_CHECK_MSG(row_ptr_[v] <= row_ptr_[v + 1],
                     "row_ptr not monotone at vertex " << v);
    const auto nb = neighbors(v);
    for (std::size_t i = 0; i < nb.size(); ++i) {
      AURORA_CHECK_MSG(nb[i] < n, "neighbor out of range at vertex " << v);
      AURORA_CHECK_MSG(nb[i] != v, "self loop at vertex " << v);
      if (i > 0) {
        AURORA_CHECK_MSG(nb[i - 1] < nb[i],
                         "unsorted or duplicate neighbor at vertex " << v);
      }
    }
  }
}

CsrBuilder::CsrBuilder(VertexId num_vertices) : n_(num_vertices) {
  AURORA_CHECK(num_vertices > 0);
}

void CsrBuilder::add_edge(VertexId u, VertexId v) {
  AURORA_CHECK(u < n_ && v < n_);
  if (u == v) return;
  edges_.emplace_back(u, v);
}

void CsrBuilder::add_undirected_edge(VertexId u, VertexId v) {
  add_edge(u, v);
  add_edge(v, u);
}

CsrGraph CsrBuilder::build() && {
  std::sort(edges_.begin(), edges_.end());
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());

  std::vector<EdgeId> row_ptr(static_cast<std::size_t>(n_) + 1, 0);
  for (const auto& [u, v] : edges_) {
    (void)v;
    ++row_ptr[u + 1];
  }
  for (VertexId v = 0; v < n_; ++v) row_ptr[v + 1] += row_ptr[v];

  std::vector<VertexId> col_idx(edges_.size());
  for (std::size_t i = 0; i < edges_.size(); ++i) col_idx[i] = edges_[i].second;

  return CsrGraph(std::move(row_ptr), std::move(col_idx));
}

}  // namespace aurora::graph
