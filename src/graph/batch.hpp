// Graph batching: merging many small graphs into one block-diagonal graph.
//
// Graph-level workloads (point clouds, molecules) process thousands of small
// independent graphs; accelerators batch them into one disconnected graph so
// a single mapping/tiling pass covers the batch (the standard PyG trick).
#pragma once

#include <vector>

#include "common/types.hpp"
#include "graph/csr.hpp"

namespace aurora::graph {

struct Batch {
  CsrGraph graph;
  /// Vertex-id offset of each member graph; offsets[i+1] - offsets[i] is
  /// member i's vertex count (offsets.size() == members + 1).
  std::vector<VertexId> offsets;

  [[nodiscard]] std::size_t num_members() const {
    return offsets.empty() ? 0 : offsets.size() - 1;
  }
  /// Member index owning vertex v.
  [[nodiscard]] std::size_t member_of(VertexId v) const;
  /// Member-local id of vertex v.
  [[nodiscard]] VertexId local_id(VertexId v) const;
};

/// Concatenate graphs block-diagonally (no cross-member edges).
[[nodiscard]] Batch make_batch(const std::vector<CsrGraph>& members);

/// Extract member i back out of the batch (inverse of make_batch).
[[nodiscard]] CsrGraph extract_member(const Batch& batch, std::size_t i);

}  // namespace aurora::graph
