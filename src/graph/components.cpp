#include "graph/components.hpp"

#include <algorithm>
#include <deque>

#include "common/error.hpp"

namespace aurora::graph {

ComponentStats connected_components(const CsrGraph& g) {
  const VertexId n = g.num_vertices();
  AURORA_CHECK(n > 0);
  ComponentStats stats;
  stats.component_of.assign(n, 0xFFFFFFFFu);

  // Union endpoints in both directions: build reverse adjacency counts so a
  // one-directional edge still joins its endpoints.
  std::vector<std::vector<VertexId>> reverse(n);
  for (VertexId v = 0; v < n; ++v) {
    for (VertexId u : g.neighbors(v)) reverse[u].push_back(v);
  }

  std::uint32_t current = 0;
  std::deque<VertexId> frontier;
  std::vector<VertexId> sizes;
  for (VertexId root = 0; root < n; ++root) {
    if (stats.component_of[root] != 0xFFFFFFFFu) continue;
    VertexId size = 0;
    frontier.push_back(root);
    stats.component_of[root] = current;
    while (!frontier.empty()) {
      const VertexId v = frontier.front();
      frontier.pop_front();
      ++size;
      auto visit = [&](VertexId u) {
        if (stats.component_of[u] == 0xFFFFFFFFu) {
          stats.component_of[u] = current;
          frontier.push_back(u);
        }
      };
      for (VertexId u : g.neighbors(v)) visit(u);
      for (VertexId u : reverse[v]) visit(u);
    }
    sizes.push_back(size);
    ++current;
  }
  stats.num_components = sizes.size();
  stats.largest_component = *std::max_element(sizes.begin(), sizes.end());
  for (VertexId v = 0; v < n; ++v) {
    stats.isolated_vertices += (g.degree(v) == 0 && reverse[v].empty());
  }
  return stats;
}

}  // namespace aurora::graph
