// Degree-distribution statistics used by the mapping heuristics and dataset
// generators.
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.hpp"
#include "graph/csr.hpp"

namespace aurora::graph {

/// Summary of a graph's degree distribution.
struct DegreeStats {
  EdgeId min_degree = 0;
  EdgeId max_degree = 0;
  double mean_degree = 0.0;
  double stddev_degree = 0.0;
  /// Degree below which 99 % of vertices fall.
  EdgeId p99_degree = 0;
  /// Gini coefficient of the degree distribution — 0 is perfectly balanced,
  /// values near 1 indicate extreme skew (power-law graphs score high).
  double gini = 0.0;
};

[[nodiscard]] DegreeStats compute_degree_stats(const CsrGraph& g);

/// Vertex ids ordered by descending degree (ties by ascending id, so results
/// are deterministic). `top_k == 0` returns all vertices.
[[nodiscard]] std::vector<VertexId> vertices_by_degree(const CsrGraph& g,
                                                       std::size_t top_k = 0);

}  // namespace aurora::graph
