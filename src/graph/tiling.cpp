#include "graph/tiling.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace aurora::graph {

EdgeId Tiling::total_cut_edges() const {
  EdgeId total = 0;
  for (const auto& t : tiles) total += t.num_cut_edges;
  return total;
}

VertexId Tiling::total_halo_vertices() const {
  VertexId total = 0;
  for (const auto& t : tiles) total += t.num_halo_vertices;
  return total;
}

Bytes tile_footprint_bytes(const Tile& tile, const TilingParams& params) {
  return (static_cast<Bytes>(tile.num_vertices()) + tile.num_halo_vertices) *
             params.feature_bytes +
         tile.num_edges * params.edge_bytes;
}

Tiling tile_graph(const CsrGraph& g, const TilingParams& params) {
  AURORA_CHECK(params.capacity_bytes > 0);
  AURORA_CHECK(params.feature_bytes > 0);
  const VertexId n = g.num_vertices();

  // last_seen[v] = tile index that most recently counted v as halo/owned;
  // gives O(m) halo counting without per-tile hash sets.
  std::vector<std::uint32_t> last_seen(n, 0xFFFFFFFFu);

  Tiling tiling;
  VertexId v = 0;
  while (v < n) {
    const auto tile_idx = static_cast<std::uint32_t>(tiling.tiles.size());
    Tile tile;
    tile.vertex_begin = v;
    Bytes used = 0;
    while (v < n) {
      // Cost of admitting v: its feature vector, its adjacency, plus halo
      // features for neighbors not yet resident in this tile. Neighbors with
      // id >= current end may become owned later; counting them as halo
      // first makes the estimate conservative (never under-capacity).
      Bytes add = params.feature_bytes + g.degree(v) * params.edge_bytes;
      VertexId new_halo = 0;
      for (VertexId u : g.neighbors(v)) {
        if (last_seen[u] != tile_idx) ++new_halo;
      }
      add += static_cast<Bytes>(new_halo) * params.feature_bytes;

      if (used + add > params.capacity_bytes && tile.vertex_end > tile.vertex_begin) {
        break;  // tile full; v starts the next tile
      }
      // A single vertex whose neighborhood exceeds capacity gets a tile of
      // its own; its halo features stream through the buffer in passes
      // instead of being resident (giant hubs in power-law graphs).
      for (VertexId u : g.neighbors(v)) last_seen[u] = tile_idx;
      last_seen[v] = tile_idx;
      used += add;
      tile.num_edges += g.degree(v);
      tile.vertex_end = v + 1;
      ++v;
    }

    // Second pass over the finished tile for exact cut/halo counts.
    std::vector<std::uint32_t> halo_seen;
    tile.num_cut_edges = 0;
    VertexId halo = 0;
    for (VertexId w = tile.vertex_begin; w < tile.vertex_end; ++w) {
      for (VertexId u : g.neighbors(w)) {
        if (u >= tile.vertex_begin && u < tile.vertex_end) continue;
        ++tile.num_cut_edges;
        if (last_seen[u] == tile_idx) {
          last_seen[u] = tile_idx | 0x80000000u;  // mark counted once
          ++halo;
        }
      }
    }
    tile.num_halo_vertices = halo;
    tiling.tiles.push_back(tile);
  }

  // Invariant: tiles cover [0, n) without gaps or overlap.
  AURORA_CHECK(!tiling.tiles.empty());
  AURORA_CHECK(tiling.tiles.front().vertex_begin == 0);
  AURORA_CHECK(tiling.tiles.back().vertex_end == n);
  for (std::size_t i = 1; i < tiling.tiles.size(); ++i) {
    AURORA_CHECK(tiling.tiles[i].vertex_begin == tiling.tiles[i - 1].vertex_end);
  }
  return tiling;
}

std::vector<VertexId> balanced_edge_ranges(const CsrGraph& g,
                                           std::uint32_t parts) {
  AURORA_CHECK(parts >= 1);
  const VertexId n = g.num_vertices();
  const EdgeId m = g.num_edges();
  std::vector<VertexId> boundaries(parts + 1, 0);
  boundaries[parts] = n;
  VertexId v = 0;
  for (std::uint32_t p = 1; p < parts; ++p) {
    // Target prefix: p/parts of the edge mass; the boundary vertex itself is
    // admitted when that lands the prefix closer to the target.
    const EdgeId target = (m * p) / parts;
    while (v < n && g.edge_end(v) < target) ++v;
    if (v < n && target > g.edge_begin(v) &&
        target - g.edge_begin(v) > g.edge_end(v) - target) {
      ++v;
    }
    // Keep every range non-empty while vertices remain: lower-bound at one
    // vertex past the previous boundary, upper-bound so each later range
    // still gets a vertex.
    const VertexId prev = boundaries[p - 1];
    const VertexId lo = prev < n ? prev + 1 : n;
    VertexId hi = n > (parts - p) ? n - (parts - p) : 0;
    hi = std::max(hi, lo);
    boundaries[p] = std::clamp(v, lo, hi);
  }
  return boundaries;
}

}  // namespace aurora::graph
