// Connected-component analysis. Synthetic generators can leave isolated
// vertices or fragments; tiling, mapping and the functional engine must all
// behave on disconnected inputs, and dataset diagnostics report the
// component structure.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "graph/csr.hpp"

namespace aurora::graph {

struct ComponentStats {
  std::size_t num_components = 0;
  VertexId largest_component = 0;
  VertexId isolated_vertices = 0;  // degree-0 vertices
  /// Component id per vertex (ids are dense, assigned in discovery order).
  std::vector<std::uint32_t> component_of;
};

/// Union of undirected components (edges are treated as bidirectional even
/// if only one direction is materialised).
[[nodiscard]] ComponentStats connected_components(const CsrGraph& g);

}  // namespace aurora::graph
