// Graph tiling: splitting a large graph into subgraphs that fit on-chip.
//
// The paper tiles graphs "based on on-chip memory size" and re-runs the
// mapping/partition heuristics per subgraph (Sec IV). A tile owns a
// contiguous vertex range; edges whose far endpoint lies outside the tile
// reference *halo* vertices whose features must be fetched from DRAM.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "graph/csr.hpp"

namespace aurora::graph {

/// One tile of a tiled graph.
struct Tile {
  VertexId vertex_begin = 0;
  VertexId vertex_end = 0;  // exclusive
  /// Edges incident to owned vertices (every owned vertex's full adjacency).
  EdgeId num_edges = 0;
  /// Edges whose far endpoint is owned by another tile.
  EdgeId num_cut_edges = 0;
  /// Distinct non-owned endpoints referenced by this tile's edges.
  VertexId num_halo_vertices = 0;

  [[nodiscard]] VertexId num_vertices() const {
    return vertex_end - vertex_begin;
  }
};

struct TilingParams {
  /// On-chip bytes available for one tile's working set.
  Bytes capacity_bytes = 0;
  /// Bytes of one vertex feature vector.
  Bytes feature_bytes = 0;
  /// Bytes of adjacency metadata per edge (CSR column index + edge feature
  /// slot if the model keeps edge embeddings).
  Bytes edge_bytes = 8;
};

struct Tiling {
  std::vector<Tile> tiles;

  [[nodiscard]] std::size_t num_tiles() const { return tiles.size(); }
  [[nodiscard]] EdgeId total_cut_edges() const;
  [[nodiscard]] VertexId total_halo_vertices() const;
};

/// Working-set bytes of a tile: owned features + halo features + adjacency.
[[nodiscard]] Bytes tile_footprint_bytes(const Tile& tile,
                                         const TilingParams& params);

/// Greedy contiguous tiling: grow each tile until adding the next vertex
/// would exceed `capacity_bytes`. Every tile holds at least one vertex, so
/// the tiling always succeeds (a single vertex larger than capacity is a
/// configuration error and throws).
[[nodiscard]] Tiling tile_graph(const CsrGraph& g, const TilingParams& params);

/// Split [0, n) into `parts` contiguous ranges balanced by edge count (the
/// quantity that drives both compute and halo traffic). Returns `parts + 1`
/// boundaries with boundaries[0] == 0 and boundaries[parts] == n; a range
/// may be empty only when parts > n. Used by the cluster shard planner's
/// range strategy; balancing by edges rather than vertices keeps power-law
/// shards within a constant factor of each other's work.
[[nodiscard]] std::vector<VertexId> balanced_edge_ranges(const CsrGraph& g,
                                                         std::uint32_t parts);

}  // namespace aurora::graph
