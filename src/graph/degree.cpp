#include "graph/degree.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace aurora::graph {

DegreeStats compute_degree_stats(const CsrGraph& g) {
  const VertexId n = g.num_vertices();
  AURORA_CHECK(n > 0);
  std::vector<EdgeId> degrees(n);
  RunningStat rs;
  for (VertexId v = 0; v < n; ++v) {
    degrees[v] = g.degree(v);
    rs.add(static_cast<double>(degrees[v]));
  }
  std::sort(degrees.begin(), degrees.end());

  DegreeStats s;
  s.min_degree = degrees.front();
  s.max_degree = degrees.back();
  s.mean_degree = rs.mean();
  s.stddev_degree = rs.stddev();
  s.p99_degree = degrees[static_cast<std::size_t>(0.99 * (n - 1))];

  // Gini over the sorted degree sequence:
  //   G = (2 * sum_i i*d_i) / (n * sum_i d_i) - (n + 1) / n, i is 1-based.
  double weighted = 0.0;
  double total = 0.0;
  for (VertexId i = 0; i < n; ++i) {
    weighted += static_cast<double>(i + 1) * static_cast<double>(degrees[i]);
    total += static_cast<double>(degrees[i]);
  }
  if (total > 0.0) {
    const double dn = static_cast<double>(n);
    s.gini = (2.0 * weighted) / (dn * total) - (dn + 1.0) / dn;
  }
  return s;
}

std::vector<VertexId> vertices_by_degree(const CsrGraph& g, std::size_t top_k) {
  std::vector<VertexId> order(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) order[v] = v;
  std::stable_sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
    if (g.degree(a) != g.degree(b)) return g.degree(a) > g.degree(b);
    return a < b;
  });
  if (top_k > 0 && top_k < order.size()) order.resize(top_k);
  return order;
}

}  // namespace aurora::graph
