// Graph file I/O: plain edge lists (one "u v" pair per line, '#' comments)
// and a compact binary CSR container. Lets users run the simulator on their
// own graphs instead of the synthetic dataset models.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/csr.hpp"

namespace aurora::graph {

/// Parse an edge-list stream. Lines: "u v" (whitespace separated); blank
/// lines and lines starting with '#' are skipped. Vertex ids are 0-based;
/// the vertex count is max id + 1 unless `num_vertices` forces more.
/// With `symmetrize` every edge is added in both directions (the usual GNN
/// convention).
[[nodiscard]] CsrGraph read_edge_list(std::istream& in, bool symmetrize = true,
                                      VertexId num_vertices = 0);
[[nodiscard]] CsrGraph load_edge_list(const std::string& path,
                                      bool symmetrize = true,
                                      VertexId num_vertices = 0);

/// Write "u v" lines (every directed edge).
void write_edge_list(std::ostream& out, const CsrGraph& g);
void save_edge_list(const std::string& path, const CsrGraph& g);

/// Binary CSR container: magic "ACSR", version, n, m, row_ptr, col_idx.
/// Round-trips exactly.
void write_csr_binary(std::ostream& out, const CsrGraph& g);
[[nodiscard]] CsrGraph read_csr_binary(std::istream& in);
void save_csr_binary(const std::string& path, const CsrGraph& g);
[[nodiscard]] CsrGraph load_csr_binary(const std::string& path);

}  // namespace aurora::graph
