#include "graph/batch.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace aurora::graph {

std::size_t Batch::member_of(VertexId v) const {
  AURORA_CHECK(!offsets.empty() && v < offsets.back());
  const auto it = std::upper_bound(offsets.begin(), offsets.end(), v);
  return static_cast<std::size_t>(it - offsets.begin()) - 1;
}

VertexId Batch::local_id(VertexId v) const {
  return v - offsets[member_of(v)];
}

Batch make_batch(const std::vector<CsrGraph>& members) {
  AURORA_CHECK_MSG(!members.empty(), "batch needs at least one graph");
  Batch batch;
  batch.offsets.push_back(0);
  VertexId total = 0;
  for (const auto& g : members) {
    total += g.num_vertices();
    batch.offsets.push_back(total);
  }
  CsrBuilder b(total);
  for (std::size_t i = 0; i < members.size(); ++i) {
    const VertexId base = batch.offsets[i];
    const CsrGraph& g = members[i];
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      for (VertexId u : g.neighbors(v)) b.add_edge(base + v, base + u);
    }
  }
  batch.graph = std::move(b).build();
  return batch;
}

CsrGraph extract_member(const Batch& batch, std::size_t i) {
  AURORA_CHECK(i < batch.num_members());
  const VertexId begin = batch.offsets[i];
  const VertexId end = batch.offsets[i + 1];
  AURORA_CHECK(end > begin);
  CsrBuilder b(end - begin);
  for (VertexId v = begin; v < end; ++v) {
    for (VertexId u : batch.graph.neighbors(v)) {
      AURORA_CHECK_MSG(u >= begin && u < end,
                       "batch member has a cross-member edge");
      b.add_edge(v - begin, u - begin);
    }
  }
  return std::move(b).build();
}

}  // namespace aurora::graph
