#include "graph/io.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "common/error.hpp"

namespace aurora::graph {
namespace {

constexpr char kMagic[4] = {'A', 'C', 'S', 'R'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ostream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::istream& in) {
  T value{};
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  AURORA_CHECK_MSG(static_cast<bool>(in), "truncated CSR binary stream");
  return value;
}

}  // namespace

CsrGraph read_edge_list(std::istream& in, bool symmetrize,
                        VertexId num_vertices) {
  std::vector<std::pair<VertexId, VertexId>> edges;
  VertexId max_id = 0;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    std::istringstream ls(line);
    std::uint64_t u = 0, v = 0;
    AURORA_CHECK_MSG(static_cast<bool>(ls >> u >> v),
                     "malformed edge-list line " << line_no << ": '" << line
                                                 << "'");
    AURORA_CHECK_MSG(u < kInvalidVertex && v < kInvalidVertex,
                     "vertex id out of range at line " << line_no);
    if (num_vertices > 0) {
      // A forced vertex count turns stray ids into a loud load-time error
      // instead of a CsrBuilder range failure with no line context.
      AURORA_CHECK_MSG(u < num_vertices && v < num_vertices,
                       "edge (" << u << ", " << v << ") at line " << line_no
                                << " exceeds the declared vertex count "
                                << num_vertices);
    }
    edges.emplace_back(static_cast<VertexId>(u), static_cast<VertexId>(v));
    max_id = std::max({max_id, static_cast<VertexId>(u),
                       static_cast<VertexId>(v)});
  }
  AURORA_CHECK_MSG(!edges.empty(), "edge list contains no edges");
  // Repeated directed edges would be silently collapsed by CsrBuilder's
  // dedup, corrupting degree counts relative to the input's intent; reject
  // them here where the offense is attributable. (Symmetrised loads still
  // accept "u v" together with "v u" — write_edge_list emits both.)
  {
    auto sorted = edges;
    std::sort(sorted.begin(), sorted.end());
    const auto dup = std::adjacent_find(sorted.begin(), sorted.end());
    AURORA_CHECK_MSG(dup == sorted.end(),
                     "duplicate edge (" << dup->first << ", " << dup->second
                                        << ") in edge list");
  }
  const VertexId n = std::max<VertexId>(num_vertices, max_id + 1);
  CsrBuilder b(n);
  for (const auto& [u, v] : edges) {
    if (symmetrize) {
      b.add_undirected_edge(u, v);
    } else {
      b.add_edge(u, v);
    }
  }
  return std::move(b).build();
}

CsrGraph load_edge_list(const std::string& path, bool symmetrize,
                        VertexId num_vertices) {
  std::ifstream in(path);
  AURORA_CHECK_MSG(in.is_open(), "cannot open edge list: " << path);
  return read_edge_list(in, symmetrize, num_vertices);
}

void write_edge_list(std::ostream& out, const CsrGraph& g) {
  out << "# " << g.num_vertices() << " vertices, " << g.num_edges()
      << " directed edges\n";
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (VertexId u : g.neighbors(v)) out << v << ' ' << u << '\n';
  }
}

void save_edge_list(const std::string& path, const CsrGraph& g) {
  std::ofstream out(path);
  AURORA_CHECK_MSG(out.is_open(), "cannot write edge list: " << path);
  write_edge_list(out, g);
}

void write_csr_binary(std::ostream& out, const CsrGraph& g) {
  out.write(kMagic, sizeof(kMagic));
  write_pod(out, kVersion);
  write_pod(out, static_cast<std::uint64_t>(g.num_vertices()));
  write_pod(out, static_cast<std::uint64_t>(g.num_edges()));
  out.write(reinterpret_cast<const char*>(g.row_ptr().data()),
            static_cast<std::streamsize>(g.row_ptr().size() * sizeof(EdgeId)));
  out.write(reinterpret_cast<const char*>(g.col_idx().data()),
            static_cast<std::streamsize>(g.col_idx().size() *
                                         sizeof(VertexId)));
  AURORA_CHECK_MSG(static_cast<bool>(out), "CSR binary write failed");
}

CsrGraph read_csr_binary(std::istream& in) {
  char magic[4] = {};
  in.read(magic, sizeof(magic));
  AURORA_CHECK_MSG(static_cast<bool>(in) &&
                       std::memcmp(magic, kMagic, sizeof(kMagic)) == 0,
                   "not an ACSR file");
  const auto version = read_pod<std::uint32_t>(in);
  AURORA_CHECK_MSG(version == kVersion,
                   "unsupported ACSR version " << version);
  const auto n = read_pod<std::uint64_t>(in);
  const auto m = read_pod<std::uint64_t>(in);
  AURORA_CHECK(n >= 1 && n < kInvalidVertex);
  std::vector<EdgeId> row_ptr(n + 1);
  in.read(reinterpret_cast<char*>(row_ptr.data()),
          static_cast<std::streamsize>(row_ptr.size() * sizeof(EdgeId)));
  std::vector<VertexId> col_idx(m);
  in.read(reinterpret_cast<char*>(col_idx.data()),
          static_cast<std::streamsize>(col_idx.size() * sizeof(VertexId)));
  AURORA_CHECK_MSG(static_cast<bool>(in), "truncated ACSR file");
  return CsrGraph(std::move(row_ptr), std::move(col_idx));
}

void save_csr_binary(const std::string& path, const CsrGraph& g) {
  std::ofstream out(path, std::ios::binary);
  AURORA_CHECK_MSG(out.is_open(), "cannot write CSR binary: " << path);
  write_csr_binary(out, g);
}

CsrGraph load_csr_binary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  AURORA_CHECK_MSG(in.is_open(), "cannot open CSR binary: " << path);
  return read_csr_binary(in);
}

}  // namespace aurora::graph
