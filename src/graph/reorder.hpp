// Vertex reordering utilities.
//
// The tiling/halo and mapping-locality behaviour of the accelerator depends
// on vertex ids being community-local (DESIGN.md §1). Real graph pipelines
// achieve this by reordering; these utilities provide the standard
// renumberings plus the locality metric the rest of the stack cares about.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "graph/csr.hpp"

namespace aurora::graph {

/// BFS order from `start` (unreached components appended in id order). The
/// classic locality-restoring renumbering: neighbors get nearby ids.
[[nodiscard]] std::vector<VertexId> bfs_order(const CsrGraph& g,
                                              VertexId start = 0);

/// Vertices sorted by descending degree (ids of equal degree keep id order).
/// Groups hubs together — good for hub-caching schemes, bad for locality.
[[nodiscard]] std::vector<VertexId> degree_order(const CsrGraph& g);

/// Renumber: `order[i]` is the OLD id that becomes new id `i`. `order` must
/// be a permutation of [0, n).
[[nodiscard]] CsrGraph apply_order(const CsrGraph& g,
                                   const std::vector<VertexId>& order);

/// Fraction of directed edges whose endpoints' ids differ by at most
/// `window` — the statistic the tiler and the sequential mapper exploit.
[[nodiscard]] double locality_score(const CsrGraph& g, VertexId window);

/// Average |u - v| over all directed edges (lower = more local).
[[nodiscard]] double mean_id_distance(const CsrGraph& g);

}  // namespace aurora::graph
