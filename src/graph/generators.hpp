// Synthetic graph generators.
//
// Real GNN benchmark graphs (Cora, Reddit, ...) are not shipped with this
// repository; instead the dataset layer (datasets.hpp) instantiates these
// generators with parameters matched to each dataset's published statistics.
// All generators are deterministic given a seed.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "graph/csr.hpp"

namespace aurora::graph {

/// Erdos-Renyi G(n, m): m undirected edges chosen uniformly.
[[nodiscard]] CsrGraph generate_erdos_renyi(VertexId n, EdgeId undirected_edges,
                                            Rng& rng);

/// Chung-Lu power-law graph: vertex weights w_i ~ power-law(alpha) capped at
/// `max_degree`, edges sampled with probability proportional to w_u * w_v.
/// Produces the heavy-tailed degree distributions of citation/social graphs.
struct PowerLawParams {
  VertexId n = 0;
  EdgeId undirected_edges = 0;
  /// Pareto exponent of the weight distribution (2.0-3.0 for real graphs;
  /// smaller = heavier tail).
  double alpha = 2.3;
  /// Cap on any single vertex weight, as a fraction of n (guards against a
  /// single vertex absorbing most edges in small scaled graphs).
  double max_weight_fraction = 0.25;
  /// Fraction of edges whose far endpoint is drawn from a local id window —
  /// models the community structure (locality after reordering) of real
  /// graphs, which bounds tile halo sizes. 0 disables locality.
  double locality = 0.0;
  /// Half-width of the local window as a fraction of n.
  double locality_window = 0.04;
};

[[nodiscard]] CsrGraph generate_power_law(const PowerLawParams& params,
                                          Rng& rng);

/// Recursive-matrix (R-MAT) generator — the Graph500 standard for scale-free
/// graphs. Edge endpoints are drawn by recursively descending a 2x2
/// probability matrix (a, b, c, d); a > d skews mass toward low vertex ids,
/// producing power-law degrees with natural community structure.
struct RmatParams {
  /// log2 of the vertex count (n = 2^scale).
  std::uint32_t scale = 10;
  EdgeId undirected_edges = 0;
  double a = 0.57;
  double b = 0.19;
  double c = 0.19;  // d = 1 - a - b - c
};

[[nodiscard]] CsrGraph generate_rmat(const RmatParams& params, Rng& rng);

/// 2-D grid graph (4-neighborhood) — a pathological *low-variance* degree
/// case used by tests and the mapping ablation.
[[nodiscard]] CsrGraph generate_grid(VertexId rows, VertexId cols);

/// Star graph: vertex 0 connected to all others — the extreme high-degree
/// hotspot case.
[[nodiscard]] CsrGraph generate_star(VertexId n);

/// Ring (cycle) graph.
[[nodiscard]] CsrGraph generate_ring(VertexId n);

}  // namespace aurora::graph
