// The five evaluation datasets of the Aurora paper, synthesised to match
// their published statistics.
//
// Substitution note (see DESIGN.md §1): the paper evaluates on the real
// Cora/Citeseer/Pubmed/Nell/Reddit graphs. This repository ships no dataset
// files; each dataset is generated deterministically with a power-law degree
// distribution matched to the real graph's vertex count, edge count, feature
// width, feature density and degree skew. A `scale` knob shrinks vertex and
// edge counts proportionally (preserving average degree and feature width)
// so the cycle-accurate simulator finishes quickly; scale = 1 reproduces the
// full published sizes.
#pragma once

#include <array>
#include <string>

#include "graph/csr.hpp"
#include "graph/degree.hpp"

namespace aurora::graph {

enum class DatasetId {
  kCora,
  kCiteseer,
  kPubmed,
  kNell,
  kReddit,
};

inline constexpr std::array<DatasetId, 5> kAllDatasets = {
    DatasetId::kCora, DatasetId::kCiteseer, DatasetId::kPubmed,
    DatasetId::kNell, DatasetId::kReddit};

[[nodiscard]] const char* dataset_name(DatasetId id);

/// Published statistics of the real dataset (directed edge counts, i.e. both
/// directions of each undirected edge).
struct DatasetSpec {
  DatasetId id{};
  const char* name = "";
  VertexId num_vertices = 0;
  EdgeId num_directed_edges = 0;
  std::uint32_t feature_dim = 0;
  /// Fraction of nonzero entries in the input feature matrix.
  double feature_density = 0.0;
  std::uint32_t num_classes = 0;
  /// Power-law exponent used for the synthetic degree distribution.
  double degree_alpha = 0.0;
  /// Fraction of edges drawn within a local id window (community structure
  /// / post-reordering locality of the real graph).
  double locality = 0.0;
};

[[nodiscard]] const DatasetSpec& dataset_spec(DatasetId id);

/// A generated dataset instance: structure plus feature metadata.
struct Dataset {
  DatasetSpec spec;
  /// Actual generated sizes (== spec sizes when scale == 1).
  double scale = 1.0;
  CsrGraph graph;
  DegreeStats degree_stats;

  [[nodiscard]] VertexId num_vertices() const { return graph.num_vertices(); }
  [[nodiscard]] EdgeId num_edges() const { return graph.num_edges(); }
  /// Bytes of one dense feature vector at the given element width.
  [[nodiscard]] Bytes feature_bytes(Bytes element_bytes) const {
    return static_cast<Bytes>(spec.feature_dim) * element_bytes;
  }
};

/// Generate a dataset at `scale` in (0, 1]. Deterministic in (id, scale,
/// seed). Vertex/edge counts scale together so the average degree — the
/// statistic that drives aggregation traffic — is preserved; feature width,
/// density and class count are never scaled.
[[nodiscard]] Dataset make_dataset(DatasetId id, double scale = 1.0,
                                   std::uint64_t seed = 7);

}  // namespace aurora::graph
