#include "graph/datasets.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "graph/generators.hpp"

namespace aurora::graph {
namespace {

// Published statistics; directed edge counts follow the convention of the
// GNN accelerator literature (both directions counted). Degree exponents are
// fit so the synthetic graphs reproduce each dataset's skew: citation graphs
// are strongly heavy-tailed, Reddit is dense with an enormous mean degree.
constexpr std::array<DatasetSpec, 5> kSpecs = {{
    {DatasetId::kCora, "Cora", 2708, 10556, 1433, 0.0127, 7, 2.4, 0.70},
    {DatasetId::kCiteseer, "Citeseer", 3327, 9104, 3703, 0.0085, 6, 2.6, 0.72},
    {DatasetId::kPubmed, "Pubmed", 19717, 88648, 500, 0.1000, 3, 2.3, 0.68},
    {DatasetId::kNell, "Nell", 65755, 251550, 5414, 0.0011, 210, 2.2, 0.65},
    {DatasetId::kReddit, "Reddit", 232965, 114615892, 602, 0.5160, 41, 1.9,
     0.55},
}};

}  // namespace

const char* dataset_name(DatasetId id) { return dataset_spec(id).name; }

const DatasetSpec& dataset_spec(DatasetId id) {
  for (const auto& spec : kSpecs) {
    if (spec.id == id) return spec;
  }
  throw Error("unknown dataset id");
}

Dataset make_dataset(DatasetId id, double scale, std::uint64_t seed) {
  AURORA_CHECK_MSG(scale > 0.0 && scale <= 1.0,
                   "dataset scale must be in (0, 1], got " << scale);
  const DatasetSpec& spec = dataset_spec(id);

  const auto n = std::max<VertexId>(
      32, static_cast<VertexId>(static_cast<double>(spec.num_vertices) * scale));
  const EdgeId undirected_full = spec.num_directed_edges / 2;
  auto undirected =
      std::max<EdgeId>(static_cast<EdgeId>(n),
                       static_cast<EdgeId>(static_cast<double>(undirected_full) *
                                           scale));
  // A scaled graph cannot hold more than n*(n-1)/2 undirected edges; this
  // only binds for aggressive down-scales of the dense Reddit graph.
  const EdgeId max_edges =
      static_cast<EdgeId>(n) * (static_cast<EdgeId>(n) - 1) / 2;
  undirected = std::min(undirected, max_edges / 2);

  Rng rng(seed ^ (static_cast<std::uint64_t>(id) << 32));
  PowerLawParams params;
  params.n = n;
  params.undirected_edges = undirected;
  params.alpha = spec.degree_alpha;
  params.locality = spec.locality;

  Dataset ds;
  ds.spec = spec;
  ds.scale = scale;
  ds.graph = generate_power_law(params, rng);
  ds.degree_stats = compute_degree_stats(ds.graph);
  return ds;
}

}  // namespace aurora::graph
