// Compressed-sparse-row graph representation.
//
// This is the graph substrate every other module consumes. Graphs are
// immutable after construction (built through CsrBuilder), matching the
// paper's setting where the host ships CSR metadata to the accelerator.
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"

namespace aurora::graph {

/// Immutable directed graph in CSR form. GNN datasets are stored with both
/// edge directions materialised, so `neighbors(v)` is the in/out neighborhood
/// used by aggregation.
class CsrGraph {
 public:
  CsrGraph() = default;
  CsrGraph(std::vector<EdgeId> row_ptr, std::vector<VertexId> col_idx);

  [[nodiscard]] VertexId num_vertices() const {
    return row_ptr_.empty() ? 0 : static_cast<VertexId>(row_ptr_.size() - 1);
  }
  [[nodiscard]] EdgeId num_edges() const {
    return row_ptr_.empty() ? 0 : row_ptr_.back();
  }

  [[nodiscard]] EdgeId degree(VertexId v) const {
    return row_ptr_[v + 1] - row_ptr_[v];
  }

  /// Sorted neighbor list of v.
  [[nodiscard]] std::span<const VertexId> neighbors(VertexId v) const {
    return {col_idx_.data() + row_ptr_[v],
            col_idx_.data() + row_ptr_[v + 1]};
  }

  /// Offset of v's first edge — edge ids are CSR positions.
  [[nodiscard]] EdgeId edge_begin(VertexId v) const { return row_ptr_[v]; }
  [[nodiscard]] EdgeId edge_end(VertexId v) const { return row_ptr_[v + 1]; }

  [[nodiscard]] const std::vector<EdgeId>& row_ptr() const { return row_ptr_; }
  [[nodiscard]] const std::vector<VertexId>& col_idx() const { return col_idx_; }

  [[nodiscard]] bool has_edge(VertexId u, VertexId v) const;

  /// Structural validation: monotone row_ptr, in-range and sorted columns,
  /// no self loops, no duplicate edges. Throws on violation.
  void validate() const;

 private:
  std::vector<EdgeId> row_ptr_;   // size n+1
  std::vector<VertexId> col_idx_; // size m
};

/// Incremental COO builder that deduplicates, removes self loops, optionally
/// symmetrises, and emits a validated CsrGraph.
class CsrBuilder {
 public:
  explicit CsrBuilder(VertexId num_vertices);

  /// Queue one directed edge u -> v. Self loops are dropped.
  void add_edge(VertexId u, VertexId v);

  /// Queue both u -> v and v -> u.
  void add_undirected_edge(VertexId u, VertexId v);

  [[nodiscard]] VertexId num_vertices() const { return n_; }

  /// Sort, deduplicate, and build. The builder is consumed.
  [[nodiscard]] CsrGraph build() &&;

 private:
  VertexId n_;
  std::vector<std::pair<VertexId, VertexId>> edges_;
};

}  // namespace aurora::graph
