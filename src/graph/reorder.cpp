#include "graph/reorder.hpp"

#include <algorithm>
#include <cstdlib>
#include <deque>

#include "common/error.hpp"

namespace aurora::graph {

std::vector<VertexId> bfs_order(const CsrGraph& g, VertexId start) {
  const VertexId n = g.num_vertices();
  AURORA_CHECK(start < n);
  std::vector<VertexId> order;
  order.reserve(n);
  std::vector<bool> visited(n, false);
  std::deque<VertexId> frontier;

  auto visit_from = [&](VertexId root) {
    frontier.push_back(root);
    visited[root] = true;
    while (!frontier.empty()) {
      const VertexId v = frontier.front();
      frontier.pop_front();
      order.push_back(v);
      for (VertexId u : g.neighbors(v)) {
        if (!visited[u]) {
          visited[u] = true;
          frontier.push_back(u);
        }
      }
    }
  };

  visit_from(start);
  for (VertexId v = 0; v < n; ++v) {
    if (!visited[v]) visit_from(v);
  }
  AURORA_CHECK(order.size() == n);
  return order;
}

std::vector<VertexId> degree_order(const CsrGraph& g) {
  std::vector<VertexId> order(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) order[v] = v;
  std::stable_sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
    return g.degree(a) > g.degree(b);
  });
  return order;
}

CsrGraph apply_order(const CsrGraph& g, const std::vector<VertexId>& order) {
  const VertexId n = g.num_vertices();
  AURORA_CHECK_MSG(order.size() == n, "order size mismatch");
  // new_id[old] inverts order (order[new] = old).
  std::vector<VertexId> new_id(n, kInvalidVertex);
  for (VertexId i = 0; i < n; ++i) {
    AURORA_CHECK_MSG(order[i] < n && new_id[order[i]] == kInvalidVertex,
                     "order is not a permutation");
    new_id[order[i]] = i;
  }
  CsrBuilder b(n);
  for (VertexId v = 0; v < n; ++v) {
    for (VertexId u : g.neighbors(v)) b.add_edge(new_id[v], new_id[u]);
  }
  return std::move(b).build();
}

double locality_score(const CsrGraph& g, VertexId window) {
  if (g.num_edges() == 0) return 0.0;
  EdgeId local = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (VertexId u : g.neighbors(v)) {
      const auto d = v > u ? v - u : u - v;
      local += (d <= window);
    }
  }
  return static_cast<double>(local) / static_cast<double>(g.num_edges());
}

double mean_id_distance(const CsrGraph& g) {
  if (g.num_edges() == 0) return 0.0;
  double total = 0.0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (VertexId u : g.neighbors(v)) {
      total += static_cast<double>(v > u ? v - u : u - v);
    }
  }
  return total / static_cast<double>(g.num_edges());
}

}  // namespace aurora::graph
