#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/error.hpp"

namespace aurora::graph {

CsrGraph generate_erdos_renyi(VertexId n, EdgeId undirected_edges, Rng& rng) {
  AURORA_CHECK(n >= 2);
  const EdgeId max_edges =
      static_cast<EdgeId>(n) * (static_cast<EdgeId>(n) - 1) / 2;
  AURORA_CHECK_MSG(undirected_edges <= max_edges,
                   "too many edges requested for n=" << n);
  CsrBuilder b(n);
  std::set<std::pair<VertexId, VertexId>> seen;
  while (seen.size() < undirected_edges) {
    auto u = static_cast<VertexId>(rng.next_below(n));
    auto v = static_cast<VertexId>(rng.next_below(n));
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    if (seen.emplace(u, v).second) b.add_undirected_edge(u, v);
  }
  return std::move(b).build();
}

CsrGraph generate_power_law(const PowerLawParams& params, Rng& rng) {
  AURORA_CHECK(params.n >= 2);
  AURORA_CHECK(params.undirected_edges >= 1);
  AURORA_CHECK(params.alpha > 1.0);

  const VertexId n = params.n;
  const auto max_weight = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(params.max_weight_fraction *
                                    static_cast<double>(n)));

  // Draw Pareto weights, then build an alias-free cumulative table for
  // weighted endpoint sampling.
  std::vector<double> weights(n);
  for (VertexId v = 0; v < n; ++v) {
    weights[v] =
        static_cast<double>(rng.next_power_law(params.alpha, max_weight));
  }
  std::vector<double> cum(n);
  double total = 0.0;
  for (VertexId v = 0; v < n; ++v) {
    total += weights[v];
    cum[v] = total;
  }

  auto sample_vertex = [&]() -> VertexId {
    const double r = rng.next_double() * total;
    const auto it = std::lower_bound(cum.begin(), cum.end(), r);
    return static_cast<VertexId>(it - cum.begin());
  };

  const auto window = std::max<std::int64_t>(
      2, static_cast<std::int64_t>(params.locality_window *
                                   static_cast<double>(n)));
  auto sample_local = [&](VertexId u) -> VertexId {
    const auto base = static_cast<std::int64_t>(u);
    const std::int64_t lo = std::max<std::int64_t>(0, base - window);
    const std::int64_t hi =
        std::min<std::int64_t>(static_cast<std::int64_t>(n) - 1, base + window);
    return static_cast<VertexId>(rng.next_range(lo, hi));
  };

  CsrBuilder b(n);
  std::set<std::pair<VertexId, VertexId>> seen;
  // Bound the rejection loop: very dense requests on tiny graphs could
  // otherwise spin forever once the weighted pairs are exhausted.
  const EdgeId max_attempts = params.undirected_edges * 64;
  EdgeId attempts = 0;
  while (seen.size() < params.undirected_edges && attempts < max_attempts) {
    ++attempts;
    auto u = sample_vertex();
    auto v = (params.locality > 0.0 && rng.next_bool(params.locality))
                 ? sample_local(u)
                 : sample_vertex();
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    if (seen.emplace(u, v).second) b.add_undirected_edge(u, v);
  }
  AURORA_CHECK_MSG(!seen.empty(), "power-law generator produced no edges");
  return std::move(b).build();
}

CsrGraph generate_rmat(const RmatParams& params, Rng& rng) {
  AURORA_CHECK(params.scale >= 2 && params.scale <= 26);
  AURORA_CHECK(params.undirected_edges >= 1);
  const double d = 1.0 - params.a - params.b - params.c;
  AURORA_CHECK_MSG(params.a > 0 && params.b >= 0 && params.c >= 0 && d > 0,
                   "R-MAT quadrant probabilities must form a distribution");
  const VertexId n = VertexId{1} << params.scale;

  auto draw_endpoint_pair = [&]() {
    VertexId u = 0, v = 0;
    for (std::uint32_t level = 0; level < params.scale; ++level) {
      const double r = rng.next_double();
      const VertexId bit = VertexId{1} << (params.scale - 1 - level);
      if (r < params.a) {
        // top-left: neither bit set
      } else if (r < params.a + params.b) {
        v |= bit;
      } else if (r < params.a + params.b + params.c) {
        u |= bit;
      } else {
        u |= bit;
        v |= bit;
      }
    }
    return std::pair<VertexId, VertexId>{u, v};
  };

  CsrBuilder b(n);
  std::set<std::pair<VertexId, VertexId>> seen;
  const EdgeId max_attempts = params.undirected_edges * 64;
  EdgeId attempts = 0;
  while (seen.size() < params.undirected_edges && attempts < max_attempts) {
    ++attempts;
    auto [u, v] = draw_endpoint_pair();
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    if (seen.emplace(u, v).second) b.add_undirected_edge(u, v);
  }
  AURORA_CHECK_MSG(!seen.empty(), "R-MAT generator produced no edges");
  return std::move(b).build();
}

CsrGraph generate_grid(VertexId rows, VertexId cols) {
  AURORA_CHECK(rows >= 1 && cols >= 1);
  AURORA_CHECK(static_cast<EdgeId>(rows) * cols >= 2);
  CsrBuilder b(rows * cols);
  auto id = [cols](VertexId r, VertexId c) { return r * cols + c; };
  for (VertexId r = 0; r < rows; ++r) {
    for (VertexId c = 0; c < cols; ++c) {
      if (c + 1 < cols) b.add_undirected_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) b.add_undirected_edge(id(r, c), id(r + 1, c));
    }
  }
  return std::move(b).build();
}

CsrGraph generate_star(VertexId n) {
  AURORA_CHECK(n >= 2);
  CsrBuilder b(n);
  for (VertexId v = 1; v < n; ++v) b.add_undirected_edge(0, v);
  return std::move(b).build();
}

CsrGraph generate_ring(VertexId n) {
  AURORA_CHECK(n >= 3);
  CsrBuilder b(n);
  for (VertexId v = 0; v < n; ++v) {
    b.add_undirected_edge(v, static_cast<VertexId>((v + 1) % n));
  }
  return std::move(b).build();
}

}  // namespace aurora::graph
