#include "core/report.hpp"

#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace aurora::core {
namespace {

void append_kv(std::ostringstream& os, const char* key, double value,
               bool last = false) {
  os << "\"" << key << "\": " << value << (last ? "" : ", ");
}

void append_kv(std::ostringstream& os, const char* key, std::uint64_t value,
               bool last = false) {
  os << "\"" << key << "\": " << value << (last ? "" : ", ");
}

std::string escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

std::string metrics_to_json(const RunMetrics& m) {
  std::ostringstream os;
  os << "{";
  append_kv(os, "total_cycles", static_cast<std::uint64_t>(m.total_cycles));
  append_kv(os, "compute_cycles",
            static_cast<std::uint64_t>(m.compute_cycles));
  append_kv(os, "onchip_comm_cycles",
            static_cast<std::uint64_t>(m.onchip_comm_cycles));
  append_kv(os, "dram_cycles", static_cast<std::uint64_t>(m.dram_cycles));
  append_kv(os, "reconfig_cycles",
            static_cast<std::uint64_t>(m.reconfig_cycles));
  append_kv(os, "dram_bytes", static_cast<std::uint64_t>(m.dram_bytes));
  append_kv(os, "dram_accesses", m.dram_accesses);
  append_kv(os, "noc_messages", m.noc_messages);
  append_kv(os, "avg_hops", m.avg_hops);
  append_kv(os, "bypass_messages", m.bypass_messages);
  append_kv(os, "partition_a", static_cast<std::uint64_t>(m.partition_a));
  append_kv(os, "partition_b", static_cast<std::uint64_t>(m.partition_b));
  append_kv(os, "num_subgraphs",
            static_cast<std::uint64_t>(m.num_subgraphs));
  append_kv(os, "reconfigurations", m.reconfigurations);
  append_kv(os, "switch_writes", m.switch_writes);
  append_kv(os, "utilization", m.utilization);
  // Latency percentiles from the component histograms (bucket resolution;
  // zero when the engine did not measure them, e.g. analytic runs). Key
  // order is fixed — consumers and the check.sh schema smoke rely on it.
  const auto append_latency = [&os](const char* key, const Histogram& h) {
    os << "\"" << key << "\": {";
    append_kv(os, "p50", h.quantile(0.50));
    append_kv(os, "p95", h.quantile(0.95));
    append_kv(os, "p99", h.quantile(0.99));
    append_kv(os, "count", h.total(), /*last=*/true);
    os << "}, ";
  };
  append_latency("noc_packet_latency", m.noc_packet_latency);
  append_latency("dram_request_latency", m.dram_request_latency);
  os << "\"phases\": {";
  static constexpr const char* kPhaseKeys[] = {"edge_update", "aggregation",
                                               "vertex_update"};
  for (std::size_t p = 0; p < m.phases.size(); ++p) {
    os << "\"" << kPhaseKeys[p] << "\": {";
    append_kv(os, "active_cycles",
              static_cast<std::uint64_t>(m.phases[p].active_cycles));
    append_kv(os, "dram_bytes",
              static_cast<std::uint64_t>(m.phases[p].dram_bytes));
    append_kv(os, "noc_messages", m.phases[p].noc_messages, /*last=*/true);
    os << (p + 1 < m.phases.size() ? "}, " : "}");
  }
  os << "}, ";
  os << "\"energy_pj\": {";
  append_kv(os, "compute", m.energy.compute_pj);
  append_kv(os, "sram", m.energy.sram_pj);
  append_kv(os, "dram", m.energy.dram_pj);
  append_kv(os, "noc", m.energy.noc_pj);
  append_kv(os, "reconfig", m.energy.reconfig_pj);
  append_kv(os, "leakage", m.energy.leakage_pj);
  append_kv(os, "total", m.energy.total_pj(), /*last=*/true);
  os << "}}";
  return os.str();
}

std::string runs_to_json(const std::vector<NamedRun>& runs) {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    if (i > 0) os << ",\n ";
    os << "{\"accelerator\": \"" << escape(runs[i].accelerator)
       << "\", \"workload\": \"" << escape(runs[i].workload)
       << "\", \"metrics\": " << metrics_to_json(runs[i].metrics) << "}";
  }
  os << "]";
  return os.str();
}

void write_json_file(const std::string& path, const std::string& json) {
  std::ofstream out(path);
  AURORA_CHECK_MSG(out.is_open(), "cannot write JSON report: " << path);
  out << json << '\n';
  AURORA_CHECK_MSG(static_cast<bool>(out), "JSON report write failed");
}

}  // namespace aurora::core
