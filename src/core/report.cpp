#include "core/report.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace aurora::core {
namespace {

void append_kv(std::ostringstream& os, const char* key, double value,
               bool last = false) {
  os << "\"" << key << "\": " << value << (last ? "" : ", ");
}

void append_kv(std::ostringstream& os, const char* key, std::uint64_t value,
               bool last = false) {
  os << "\"" << key << "\": " << value << (last ? "" : ", ");
}

std::string escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

std::string metrics_to_json(const RunMetrics& m) {
  std::ostringstream os;
  os << "{";
  append_kv(os, "total_cycles", static_cast<std::uint64_t>(m.total_cycles));
  append_kv(os, "compute_cycles",
            static_cast<std::uint64_t>(m.compute_cycles));
  append_kv(os, "onchip_comm_cycles",
            static_cast<std::uint64_t>(m.onchip_comm_cycles));
  append_kv(os, "dram_cycles", static_cast<std::uint64_t>(m.dram_cycles));
  append_kv(os, "reconfig_cycles",
            static_cast<std::uint64_t>(m.reconfig_cycles));
  append_kv(os, "dram_bytes", static_cast<std::uint64_t>(m.dram_bytes));
  append_kv(os, "dram_accesses", m.dram_accesses);
  append_kv(os, "noc_messages", m.noc_messages);
  append_kv(os, "avg_hops", m.avg_hops);
  append_kv(os, "bypass_messages", m.bypass_messages);
  append_kv(os, "partition_a", static_cast<std::uint64_t>(m.partition_a));
  append_kv(os, "partition_b", static_cast<std::uint64_t>(m.partition_b));
  append_kv(os, "num_subgraphs",
            static_cast<std::uint64_t>(m.num_subgraphs));
  append_kv(os, "reconfigurations", m.reconfigurations);
  append_kv(os, "switch_writes", m.switch_writes);
  append_kv(os, "utilization", m.utilization);
  // Latency percentiles from the component histograms (bucket resolution;
  // zero when the engine did not measure them, e.g. analytic runs). Key
  // order is fixed — consumers and the check.sh schema smoke rely on it.
  const auto append_latency = [&os](const char* key, const Histogram& h) {
    os << "\"" << key << "\": {";
    append_kv(os, "p50", h.quantile(0.50));
    append_kv(os, "p95", h.quantile(0.95));
    append_kv(os, "p99", h.quantile(0.99));
    append_kv(os, "count", h.total(), /*last=*/true);
    os << "}, ";
  };
  append_latency("noc_packet_latency", m.noc_packet_latency);
  append_latency("dram_request_latency", m.dram_request_latency);
  os << "\"phases\": {";
  static constexpr const char* kPhaseKeys[] = {"edge_update", "aggregation",
                                               "vertex_update"};
  for (std::size_t p = 0; p < m.phases.size(); ++p) {
    os << "\"" << kPhaseKeys[p] << "\": {";
    append_kv(os, "active_cycles",
              static_cast<std::uint64_t>(m.phases[p].active_cycles));
    append_kv(os, "dram_bytes",
              static_cast<std::uint64_t>(m.phases[p].dram_bytes));
    append_kv(os, "noc_messages", m.phases[p].noc_messages, /*last=*/true);
    os << (p + 1 < m.phases.size() ? "}, " : "}");
  }
  os << "}, ";
  os << "\"energy_pj\": {";
  append_kv(os, "compute", m.energy.compute_pj);
  append_kv(os, "sram", m.energy.sram_pj);
  append_kv(os, "dram", m.energy.dram_pj);
  append_kv(os, "noc", m.energy.noc_pj);
  append_kv(os, "reconfig", m.energy.reconfig_pj);
  append_kv(os, "leakage", m.energy.leakage_pj);
  append_kv(os, "total", m.energy.total_pj(), /*last=*/true);
  os << "}";
  // Named counters (cluster.* halo traffic, profile.critpath.* attribution,
  // trace.dropped_records, ...). CounterSet::all() returns a sorted map, so
  // the key order is deterministic. Omitted entirely when empty to keep the
  // plain single-chip schema unchanged.
  const auto& counters = m.counters.all();
  if (!counters.empty()) {
    os << ", \"counters\": {";
    std::size_t i = 0;
    for (const auto& [name, value] : counters) {
      os << "\"" << escape(name) << "\": " << value;
      if (++i < counters.size()) os << ", ";
    }
    os << "}";
  }
  os << "}";
  return os.str();
}

std::string runs_to_json(const std::vector<NamedRun>& runs) {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    if (i > 0) os << ",\n ";
    os << "{\"accelerator\": \"" << escape(runs[i].accelerator)
       << "\", \"workload\": \"" << escape(runs[i].workload)
       << "\", \"metrics\": " << metrics_to_json(runs[i].metrics) << "}";
  }
  os << "]";
  return os.str();
}

std::vector<std::string> diff_run_metrics(const RunMetrics& a,
                                          const RunMetrics& b) {
  std::vector<std::string> diffs;
  const auto num = [&diffs](const char* name, double x, double y) {
    // Exact comparison on purpose: both runs execute the same deterministic
    // arithmetic, so even doubles must match bit for bit.
    if (x != y) {
      std::ostringstream os;
      os << name << ": " << x << " != " << y;
      diffs.push_back(os.str());
    }
  };
  const auto u64 = [&diffs](const std::string& name, std::uint64_t x,
                            std::uint64_t y) {
    if (x != y) {
      diffs.push_back(name + ": " + std::to_string(x) + " != " +
                      std::to_string(y));
    }
  };
  const auto str = [&diffs](const char* name, const std::string& x,
                            const std::string& y) {
    if (x != y) diffs.push_back(std::string(name) + ": text differs");
  };
  const auto hist = [&](const std::string& name, const Histogram& x,
                        const Histogram& y) {
    u64(name + ".total", x.total(), y.total());
    const std::size_t n = std::min(x.num_buckets(), y.num_buckets());
    for (std::size_t i = 0; i < n; ++i) {
      u64(name + ".bucket[" + std::to_string(i) + "]", x.bucket_count(i),
          y.bucket_count(i));
    }
  };

  u64("total_cycles", a.total_cycles, b.total_cycles);
  u64("compute_cycles", a.compute_cycles, b.compute_cycles);
  u64("onchip_comm_cycles", a.onchip_comm_cycles, b.onchip_comm_cycles);
  u64("dram_cycles", a.dram_cycles, b.dram_cycles);
  u64("reconfig_cycles", a.reconfig_cycles, b.reconfig_cycles);
  u64("dram_bytes", a.dram_bytes, b.dram_bytes);
  u64("dram_accesses", a.dram_accesses, b.dram_accesses);
  u64("noc_messages", a.noc_messages, b.noc_messages);
  num("avg_hops", a.avg_hops, b.avg_hops);
  u64("bypass_messages", a.bypass_messages, b.bypass_messages);
  u64("events.fp_multiplies", a.events.fp_multiplies, b.events.fp_multiplies);
  u64("events.fp_adds", a.events.fp_adds, b.events.fp_adds);
  u64("events.sram_small_bytes", a.events.sram_small_bytes,
      b.events.sram_small_bytes);
  u64("events.sram_large_bytes", a.events.sram_large_bytes,
      b.events.sram_large_bytes);
  u64("events.dram_bytes", a.events.dram_bytes, b.events.dram_bytes);
  u64("events.noc_link_bytes", a.events.noc_link_bytes,
      b.events.noc_link_bytes);
  u64("events.router_bytes", a.events.router_bytes, b.events.router_bytes);
  u64("events.bypass_link_bytes", a.events.bypass_link_bytes,
      b.events.bypass_link_bytes);
  u64("events.reconfig_switch_writes", a.events.reconfig_switch_writes,
      b.events.reconfig_switch_writes);
  u64("events.active_cycles", a.events.active_cycles,
      b.events.active_cycles);
  num("energy.compute_pj", a.energy.compute_pj, b.energy.compute_pj);
  num("energy.sram_pj", a.energy.sram_pj, b.energy.sram_pj);
  num("energy.dram_pj", a.energy.dram_pj, b.energy.dram_pj);
  num("energy.noc_pj", a.energy.noc_pj, b.energy.noc_pj);
  num("energy.reconfig_pj", a.energy.reconfig_pj, b.energy.reconfig_pj);
  num("energy.leakage_pj", a.energy.leakage_pj, b.energy.leakage_pj);
  u64("partition_a", a.partition_a, b.partition_a);
  u64("partition_b", a.partition_b, b.partition_b);
  u64("num_subgraphs", a.num_subgraphs, b.num_subgraphs);
  u64("reconfigurations", a.reconfigurations, b.reconfigurations);
  u64("switch_writes", a.switch_writes, b.switch_writes);
  num("utilization", a.utilization, b.utilization);
  num("pe_utilization", a.pe_utilization, b.pe_utilization);
  str("noc_heatmap", a.noc_heatmap, b.noc_heatmap);
  str("pe_heatmap", a.pe_heatmap, b.pe_heatmap);
  for (std::size_t p = 0; p < a.phases.size(); ++p) {
    const std::string tag = "phases[" + std::to_string(p) + "]";
    u64(tag + ".active_cycles", a.phases[p].active_cycles,
        b.phases[p].active_cycles);
    u64(tag + ".dram_bytes", a.phases[p].dram_bytes, b.phases[p].dram_bytes);
    u64(tag + ".noc_messages", a.phases[p].noc_messages,
        b.phases[p].noc_messages);
  }
  hist("noc_packet_latency", a.noc_packet_latency, b.noc_packet_latency);
  hist("dram_request_latency", a.dram_request_latency,
       b.dram_request_latency);

  // Counters, minus the scheduler-work counter that legitimately differs
  // between lockstep and fast-forward.
  auto ca = a.counters.all();
  auto cb = b.counters.all();
  ca.erase("sim.cycles_skipped");
  cb.erase("sim.cycles_skipped");
  for (const auto& [name, value] : ca) {
    const auto it = cb.find(name);
    if (it == cb.end()) {
      diffs.push_back("counter " + name + ": present only in first run");
    } else {
      u64("counter " + name, value, it->second);
    }
  }
  for (const auto& [name, value] : cb) {
    (void)value;
    if (ca.find(name) == ca.end()) {
      diffs.push_back("counter " + name + ": present only in second run");
    }
  }
  return diffs;
}

void write_json_file(const std::string& path, const std::string& json) {
  std::ofstream out(path);
  AURORA_CHECK_MSG(out.is_open(), "cannot write JSON report: " << path);
  out << json << '\n';
  AURORA_CHECK_MSG(static_cast<bool>(out), "JSON report write failed");
}

}  // namespace aurora::core
