// Run metrics reported by the Aurora simulator and by the baseline models —
// the quantities every figure of the paper is built from.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "energy/energy_model.hpp"
#include "gnn/ops.hpp"

namespace aurora::core {

/// Per-GNN-phase attribution of a run's activity (paper Fig 1's
/// edge-update / aggregation / vertex-update taxonomy). Both engines fill
/// the same schema: the cycle engine from observed event spans and send
/// sites, the analytic model from its closed-form terms.
struct PhaseMetrics {
  /// Cycles during which the phase had activity (first to last event of the
  /// phase, summed over tiles). Phases overlap in a pipelined run, so these
  /// do not sum to total_cycles.
  Cycle active_cycles = 0;
  /// DRAM bytes attributed to the phase (loads feed the first phase that
  /// consumes them; weights and output stores belong to the producer of the
  /// final features). Sums to dram_bytes across phases.
  Bytes dram_bytes = 0;
  /// NoC messages sent on behalf of the phase. Sums to noc_messages.
  std::uint64_t noc_messages = 0;

  PhaseMetrics& operator+=(const PhaseMetrics& other) {
    active_cycles += other.active_cycles;
    dram_bytes += other.dram_bytes;
    noc_messages += other.noc_messages;
    return *this;
  }
};

/// Metrics of one layer (or one full run when layers are accumulated).
struct RunMetrics {
  /// End-to-end execution time in accelerator cycles (Fig 9).
  Cycle total_cycles = 0;
  /// Cycle breakdown.
  Cycle compute_cycles = 0;
  Cycle onchip_comm_cycles = 0;  // Fig 8
  Cycle dram_cycles = 0;
  Cycle reconfig_cycles = 0;     // non-overlapped reconfiguration time

  /// Off-package traffic (Fig 7): total bytes moved and burst-granular
  /// access count.
  Bytes dram_bytes = 0;
  std::uint64_t dram_accesses = 0;

  /// On-chip traffic detail.
  std::uint64_t noc_messages = 0;
  double avg_hops = 0.0;
  std::uint64_t bypass_messages = 0;

  /// Raw event counts + converted energy (Fig 10).
  energy::EnergyEvents events;
  energy::EnergyBreakdown energy;

  /// Decisions taken.
  std::uint32_t partition_a = 0;
  std::uint32_t partition_b = 0;
  std::uint32_t num_subgraphs = 0;
  std::uint64_t reconfigurations = 0;
  std::uint64_t switch_writes = 0;

  /// Pipeline utilisation estimate (1.0 = perfectly balanced stages).
  double utilization = 0.0;

  /// ASCII router-load heatmap (cycle engine only; empty otherwise).
  std::string noc_heatmap;
  /// ASCII per-PE busy-cycle heatmap (cycle engine only).
  std::string pe_heatmap;
  /// Fine-grained component event counters (cycle engine only).
  CounterSet counters;
  /// Mean fraction of execution time the PEs spent busy (cycle engine).
  double pe_utilization = 0.0;

  /// Per-phase attribution, indexed by gnn::Phase via phase().
  std::array<PhaseMetrics, gnn::kAllPhases.size()> phases{};
  [[nodiscard]] PhaseMetrics& phase(gnn::Phase p) {
    return phases[static_cast<std::size_t>(p)];
  }
  [[nodiscard]] const PhaseMetrics& phase(gnn::Phase p) const {
    return phases[static_cast<std::size_t>(p)];
  }

  /// Latency distributions measured by the cycle engine (canonical
  /// layouts; zero-total in analytic runs so the report schema is
  /// identical either way).
  Histogram noc_packet_latency{kNocLatencyBucketCycles, kNocLatencyBuckets};
  Histogram dram_request_latency{kDramLatencyBucketCycles,
                                 kDramLatencyBuckets};

  RunMetrics& operator+=(const RunMetrics& other);

  [[nodiscard]] double total_seconds(double frequency_mhz) const {
    return static_cast<double>(total_cycles) / (frequency_mhz * 1e6);
  }
};

}  // namespace aurora::core
