// Run metrics reported by the Aurora simulator and by the baseline models —
// the quantities every figure of the paper is built from.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "energy/energy_model.hpp"

namespace aurora::core {

/// Metrics of one layer (or one full run when layers are accumulated).
struct RunMetrics {
  /// End-to-end execution time in accelerator cycles (Fig 9).
  Cycle total_cycles = 0;
  /// Cycle breakdown.
  Cycle compute_cycles = 0;
  Cycle onchip_comm_cycles = 0;  // Fig 8
  Cycle dram_cycles = 0;
  Cycle reconfig_cycles = 0;     // non-overlapped reconfiguration time

  /// Off-package traffic (Fig 7): total bytes moved and burst-granular
  /// access count.
  Bytes dram_bytes = 0;
  std::uint64_t dram_accesses = 0;

  /// On-chip traffic detail.
  std::uint64_t noc_messages = 0;
  double avg_hops = 0.0;
  std::uint64_t bypass_messages = 0;

  /// Raw event counts + converted energy (Fig 10).
  energy::EnergyEvents events;
  energy::EnergyBreakdown energy;

  /// Decisions taken.
  std::uint32_t partition_a = 0;
  std::uint32_t partition_b = 0;
  std::uint32_t num_subgraphs = 0;
  std::uint64_t reconfigurations = 0;
  std::uint64_t switch_writes = 0;

  /// Pipeline utilisation estimate (1.0 = perfectly balanced stages).
  double utilization = 0.0;

  /// ASCII router-load heatmap (cycle engine only; empty otherwise).
  std::string noc_heatmap;
  /// ASCII per-PE busy-cycle heatmap (cycle engine only).
  std::string pe_heatmap;
  /// Fine-grained component event counters (cycle engine only).
  CounterSet counters;
  /// Mean fraction of execution time the PEs spent busy (cycle engine).
  double pe_utilization = 0.0;

  RunMetrics& operator+=(const RunMetrics& other);

  [[nodiscard]] double total_seconds(double frequency_mhz) const {
    return static_cast<double>(total_cycles) / (frequency_mhz * 1e6);
  }
};

}  // namespace aurora::core
