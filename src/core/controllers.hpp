// Front-end controllers of the Aurora accelerator (paper Fig 3 (a) and the
// walk-through of Sec III-E): request dispatcher, instruction buffer,
// instruction dispatcher and the NoC/PE configuration unit.
//
// The heavy lifting (mapping, partition, workflow generation) lives in its
// own modules; these classes model the control-plane sequencing and its
// (small) timing and energy contribution.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "gnn/models.hpp"
#include "gnn/workflow.hpp"
#include "graph/datasets.hpp"
#include "noc/config.hpp"

namespace aurora::core {

/// A host request: run one GNN layer over one graph (Sec III-E step 1).
struct HostRequest {
  gnn::GnnModel model{};
  gnn::LayerConfig layer;
  std::uint64_t request_id = 0;
};

/// Decoded control instructions (Sec III-E step 2); the instruction
/// dispatcher issues them per subgraph.
enum class InstrKind : std::uint8_t {
  kConfigureNoc,
  kConfigurePes,
  kLoadSubgraph,
  kRunEdgeUpdate,
  kRunAggregation,
  kRunVertexUpdate,
  kStoreOutputs,
};

[[nodiscard]] const char* instr_kind_name(InstrKind k);

struct Instruction {
  InstrKind kind{};
  std::uint32_t subgraph = 0;
};

/// Accepts host requests and hands them to the pipeline in FIFO order.
class RequestDispatcher {
 public:
  void submit(HostRequest request);
  [[nodiscard]] bool has_pending() const { return !queue_.empty(); }
  [[nodiscard]] HostRequest next();
  [[nodiscard]] std::uint64_t accepted() const { return accepted_; }

 private:
  std::deque<HostRequest> queue_;
  std::uint64_t accepted_ = 0;
};

/// Fixed-capacity instruction buffer fed by the host (step 2) and drained by
/// the instruction dispatcher (step 7).
class InstructionBuffer {
 public:
  explicit InstructionBuffer(std::size_t capacity);

  [[nodiscard]] bool push(Instruction instr);
  [[nodiscard]] bool pop(Instruction& instr);
  [[nodiscard]] bool empty() const { return buffer_.empty(); }
  [[nodiscard]] bool full() const { return buffer_.size() >= capacity_; }
  [[nodiscard]] std::size_t size() const { return buffer_.size(); }

 private:
  std::size_t capacity_;
  std::deque<Instruction> buffer_;
};

/// Emits the per-subgraph instruction sequence for a workflow: configure,
/// load, run present phases, store.
[[nodiscard]] std::vector<Instruction> build_instruction_stream(
    const gnn::Workflow& workflow, std::uint32_t num_subgraphs);

/// The NoC/PE configuration unit: applies a configuration and tracks the
/// cumulative reconfiguration cost (2K-1 cycles each, paper Sec VI-D; the
/// cost is overlapped with the previous subgraph's compute except for the
/// very first configuration).
class ConfigurationUnit {
 public:
  explicit ConfigurationUnit(std::uint32_t array_dim);

  /// Record a reconfiguration to `config`. Returns the switch writes.
  std::uint64_t apply(const noc::NocConfig& config);

  [[nodiscard]] Cycle latency_per_reconfiguration() const {
    return 2ull * array_dim_ - 1;
  }
  /// Cycles NOT hidden by compute overlap (the first configuration).
  [[nodiscard]] Cycle exposed_cycles() const {
    return count_ == 0 ? 0 : latency_per_reconfiguration();
  }
  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] std::uint64_t total_switch_writes() const {
    return switch_writes_;
  }
  [[nodiscard]] const noc::NocConfig& current() const { return current_; }

 private:
  std::uint32_t array_dim_;
  noc::NocConfig current_;
  std::uint64_t count_ = 0;
  std::uint64_t switch_writes_ = 0;
};

}  // namespace aurora::core
