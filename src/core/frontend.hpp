// The instruction-dispatch front end (paper Fig 3 (a), step 7 of the
// walk-through): once the NoC/PE configuration unit finishes, the dispatcher
// drains the instruction buffer and issues instructions "as conventional
// accelerators" — one decode per cycle group, stalling when the buffer runs
// dry or the back end is busy.
#pragma once

#include <functional>

#include "core/controllers.hpp"
#include "sim/component.hpp"

namespace aurora::core {

class InstructionDispatcher final : public sim::Component {
 public:
  using IssueCallback = std::function<void(const Instruction&, Cycle)>;

  /// `buffer` outlives the dispatcher. `decode_cycles` is the issue cadence.
  InstructionDispatcher(InstructionBuffer& buffer, Cycle decode_cycles = 1);

  void set_issue_callback(IssueCallback cb) { on_issue_ = std::move(cb); }

  /// Block issue (back end busy / configuration in flight).
  void set_stalled(bool stalled) { externally_stalled_ = stalled; }

  void tick(Cycle now) override;
  [[nodiscard]] bool idle() const override;

  [[nodiscard]] std::uint64_t issued() const { return issued_; }
  /// Cycles spent unable to issue (empty buffer or external stall) while
  /// work remained outstanding at some point.
  [[nodiscard]] Cycle stall_cycles() const { return stall_cycles_; }

 private:
  InstructionBuffer& buffer_;
  Cycle decode_cycles_;
  Cycle next_issue_at_ = 0;
  bool externally_stalled_ = false;
  IssueCallback on_issue_;
  std::uint64_t issued_ = 0;
  Cycle stall_cycles_ = 0;
};

}  // namespace aurora::core
