// Roofline analysis: classify a run as compute-, DRAM- or NoC-bound and
// report how close it came to each ceiling — the standard lens for judging
// whether the accelerator configuration matches the workload.
#pragma once

#include <string>

#include "core/config.hpp"
#include "core/metrics.hpp"

namespace aurora::core {

enum class Bound : std::uint8_t {
  kCompute,
  kDram,
  kNoc,
};

[[nodiscard]] const char* bound_name(Bound b);

struct RooflineAnalysis {
  /// Arithmetic intensity: ops per DRAM byte.
  double arithmetic_intensity = 0.0;
  /// Ops/cycle the chip could sustain at peak.
  double peak_ops_per_cycle = 0.0;
  /// Ops/cycle the DRAM stream permits at this intensity.
  double dram_ceiling_ops_per_cycle = 0.0;
  /// Achieved ops/cycle.
  double achieved_ops_per_cycle = 0.0;
  /// Which ceiling the run sat under.
  Bound bound{};
  /// Achieved / min(applicable ceiling): 1.0 = at the roof.
  double efficiency = 0.0;

  [[nodiscard]] std::string summary() const;
};

/// Analyse a finished run under `config`'s ceilings.
[[nodiscard]] RooflineAnalysis analyze_roofline(const RunMetrics& metrics,
                                                const AuroraConfig& config);

}  // namespace aurora::core
