#include "core/config_io.hpp"

#include <sstream>

#include "common/error.hpp"

namespace aurora::core {

AuroraConfig config_from_ini(const IniFile& ini, AuroraConfig base) {
  AuroraConfig c = base;
  auto u32 = [&](const char* sec, const char* key, std::uint32_t fallback) {
    return static_cast<std::uint32_t>(ini.get_int(sec, key, fallback));
  };

  c.array_dim = u32("chip", "array_dim", c.array_dim);
  c.noc.k = c.array_dim;
  c.frequency_mhz = ini.get_double("chip", "frequency_mhz", c.frequency_mhz);
  c.element_bytes = u32("chip", "element_bytes",
                        static_cast<std::uint32_t>(c.element_bytes));
  c.ring_size = u32("chip", "ring_size", c.ring_size);
  c.buffer_fill_fraction =
      ini.get_double("chip", "buffer_fill_fraction", c.buffer_fill_fraction);
  c.flops_per_pe = ini.get_double("chip", "flops_per_pe", c.flops_per_pe);
  const std::string mode = ini.get_string(
      "chip", "mode",
      c.mode == SimMode::kCycleAccurate ? "cycle" : "analytic");
  AURORA_CHECK_MSG(mode == "cycle" || mode == "analytic",
                   "chip.mode must be 'cycle' or 'analytic', got " << mode);
  c.mode = mode == "cycle" ? SimMode::kCycleAccurate : SimMode::kAnalytic;
  c.fast_forward = ini.get_bool("chip", "fast_forward", c.fast_forward);
  const std::string mapping = ini.get_string(
      "chip", "mapping",
      c.mapping_policy == MappingPolicy::kDegreeAware ? "degree-aware"
                                                      : "hashing");
  AURORA_CHECK_MSG(mapping == "degree-aware" || mapping == "hashing",
                   "chip.mapping must be 'degree-aware' or 'hashing'");
  c.mapping_policy = mapping == "degree-aware" ? MappingPolicy::kDegreeAware
                                               : MappingPolicy::kHashing;

  c.pe.datapath.num_multipliers =
      u32("pe", "multipliers", c.pe.datapath.num_multipliers);
  c.pe.datapath.num_adders = u32("pe", "adders", c.pe.datapath.num_adders);
  c.pe.datapath.pipeline_depth =
      u32("pe", "pipeline_depth",
          static_cast<std::uint32_t>(c.pe.datapath.pipeline_depth));
  c.pe.bank_buffer_bytes =
      1024ull * u32("pe", "bank_buffer_kib",
                    static_cast<std::uint32_t>(c.pe.bank_buffer_bytes / 1024));
  c.pe.bank_count = u32("pe", "bank_count", c.pe.bank_count);
  c.pe.reuse_fifo_entries =
      u32("pe", "reuse_fifo_entries", c.pe.reuse_fifo_entries);

  c.noc.flit_bytes = u32("noc", "flit_bytes",
                         static_cast<std::uint32_t>(c.noc.flit_bytes));
  c.noc.num_vcs = u32("noc", "num_vcs", c.noc.num_vcs);
  c.noc.input_buffer_flits =
      u32("noc", "input_buffer_flits", c.noc.input_buffer_flits);
  c.noc.router_delay = u32("noc", "router_delay",
                           static_cast<std::uint32_t>(c.noc.router_delay));

  c.dram.num_channels = u32("dram", "channels", c.dram.num_channels);
  c.dram.banks_per_channel = u32("dram", "banks", c.dram.banks_per_channel);
  c.dram.row_bytes = u32("dram", "row_bytes",
                         static_cast<std::uint32_t>(c.dram.row_bytes));
  c.dram.burst_bytes = u32("dram", "burst_bytes",
                           static_cast<std::uint32_t>(c.dram.burst_bytes));
  auto cyc = [&](const char* key, Cycle fallback) {
    return static_cast<Cycle>(
        ini.get_int("dram", key, static_cast<std::int64_t>(fallback)));
  };
  c.dram.timing.t_rcd = cyc("t_rcd", c.dram.timing.t_rcd);
  c.dram.timing.t_rp = cyc("t_rp", c.dram.timing.t_rp);
  c.dram.timing.t_cl = cyc("t_cl", c.dram.timing.t_cl);
  c.dram.timing.t_burst = cyc("t_burst", c.dram.timing.t_burst);
  c.dram.timing.t_refi = cyc("t_refi", c.dram.timing.t_refi);
  c.dram.timing.t_rfc = cyc("t_rfc", c.dram.timing.t_rfc);
  return c;
}

AuroraConfig load_config(const std::string& path, AuroraConfig base) {
  return config_from_ini(IniFile::load(path), base);
}

std::string config_to_ini(const AuroraConfig& c) {
  std::ostringstream os;
  os << "[chip]\n"
     << "array_dim = " << c.array_dim << "\n"
     << "frequency_mhz = " << c.frequency_mhz << "\n"
     << "element_bytes = " << c.element_bytes << "\n"
     << "ring_size = " << c.ring_size << "\n"
     << "buffer_fill_fraction = " << c.buffer_fill_fraction << "\n"
     << "flops_per_pe = " << c.flops_per_pe << "\n"
     << "mode = "
     << (c.mode == SimMode::kCycleAccurate ? "cycle" : "analytic") << "\n"
     << "fast_forward = " << (c.fast_forward ? "true" : "false") << "\n"
     << "mapping = "
     << (c.mapping_policy == MappingPolicy::kDegreeAware ? "degree-aware"
                                                         : "hashing")
     << "\n\n[pe]\n"
     << "multipliers = " << c.pe.datapath.num_multipliers << "\n"
     << "adders = " << c.pe.datapath.num_adders << "\n"
     << "pipeline_depth = " << c.pe.datapath.pipeline_depth << "\n"
     << "bank_buffer_kib = " << c.pe.bank_buffer_bytes / 1024 << "\n"
     << "bank_count = " << c.pe.bank_count << "\n"
     << "reuse_fifo_entries = " << c.pe.reuse_fifo_entries << "\n"
     << "\n[noc]\n"
     << "flit_bytes = " << c.noc.flit_bytes << "\n"
     << "num_vcs = " << c.noc.num_vcs << "\n"
     << "input_buffer_flits = " << c.noc.input_buffer_flits << "\n"
     << "router_delay = " << c.noc.router_delay << "\n"
     << "\n[dram]\n"
     << "channels = " << c.dram.num_channels << "\n"
     << "banks = " << c.dram.banks_per_channel << "\n"
     << "row_bytes = " << c.dram.row_bytes << "\n"
     << "burst_bytes = " << c.dram.burst_bytes << "\n"
     << "t_rcd = " << c.dram.timing.t_rcd << "\n"
     << "t_rp = " << c.dram.timing.t_rp << "\n"
     << "t_cl = " << c.dram.timing.t_cl << "\n"
     << "t_burst = " << c.dram.timing.t_burst << "\n"
     << "t_refi = " << c.dram.timing.t_refi << "\n"
     << "t_rfc = " << c.dram.timing.t_rfc << "\n";
  return os.str();
}

}  // namespace aurora::core
