// AuroraConfig <-> INI file bridge, so experiments can pin chip
// configurations in version-controlled files.
//
// Recognised keys (all optional; unset keys keep their defaults):
//   [chip]  array_dim, frequency_mhz, element_bytes, ring_size,
//           buffer_fill_fraction, flops_per_pe, mode (cycle|analytic),
//           mapping (degree-aware|hashing)
//   [pe]    multipliers, adders, bank_buffer_kib, bank_count,
//           reuse_fifo_entries, pipeline_depth
//   [noc]   flit_bytes, num_vcs, input_buffer_flits, router_delay
//   [dram]  channels, banks, row_bytes, burst_bytes, t_rcd, t_rp, t_cl,
//           t_burst, t_refi, t_rfc
#pragma once

#include <iosfwd>
#include <string>

#include "common/ini.hpp"
#include "core/config.hpp"

namespace aurora::core {

/// Apply an INI file on top of `base` (defaults for anything unset).
[[nodiscard]] AuroraConfig config_from_ini(const IniFile& ini,
                                           AuroraConfig base = {});

[[nodiscard]] AuroraConfig load_config(const std::string& path,
                                       AuroraConfig base = {});

/// Serialise every recognised key (round-trips through config_from_ini).
[[nodiscard]] std::string config_to_ini(const AuroraConfig& config);

}  // namespace aurora::core
