#include "core/cycle_engine.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <deque>
#include <functional>

#include "common/error.hpp"
#include "common/metrics_registry.hpp"
#include "core/controllers.hpp"
#include "core/sub_accelerators.hpp"
#include "dram/dram.hpp"
#include "mapping/mapper.hpp"
#include "noc/network.hpp"
#include "partition/partition.hpp"
#include "pe/pe.hpp"
#include "sim/invariants.hpp"
#include "sim/sampler.hpp"
#include "sim/simulator.hpp"

namespace aurora::core {
namespace {

/// What to do when a PE task or a NoC packet finishes — the dataflow's
/// dependency edges. Tags index into the run's action table.
enum class ActionType : std::uint8_t {
  kEdgeUpdateDone,  // PE: edge feature computed at the source PE
  kAggMessage,      // NoC: edge feature arrived at the owner PE
  kAccumulateDone,  // PE: one neighbor folded into the aggregate
  kSliceMessage,    // NoC: an m_v slice arrived at its weight-stationary PE
  kRingMessage,     // NoC: the rotating H-wide partial reached the next PE
  kRingStageDone,   // PE: one weight-stationary slice computed
  kXformMessage,    // NoC: (update-first) a transformed vector reached its
                    // owner PE in sub-A and can fan out along its edges
};

struct Action {
  ActionType type{};
  VertexId v_local = 0;
  noc::NodeId src_pe = 0;
  noc::NodeId dst_pe = 0;
  std::uint32_t ring_stage = 0;
};

/// Fold an arbitrary per-item op count into a datapath micro-op whose cycle
/// cost matches `ops / flops_per_pe`. The multipliers-only wiring executes
/// `length` ops in length / num_multipliers cycles, so length = ops / 2
/// reproduces a full MAC pipe's throughput.
pe::MicroOp synth_op(OpCount ops, pe::PeConfigKind kind) {
  pe::MicroOp op;
  op.kind = kind;
  op.length = std::max<std::uint32_t>(
      1, static_cast<std::uint32_t>(ops / 2));
  return op;
}

/// Which GNN phase an action belongs to, for per-phase attribution: edge
/// updates compute per-edge features, agg messages/accumulations gather
/// them, and everything on the weight-stationary rings (slices, rotating
/// partials, transformed vectors) is vertex update.
gnn::Phase action_phase(ActionType type) {
  switch (type) {
    case ActionType::kEdgeUpdateDone:
      return gnn::Phase::kEdgeUpdate;
    case ActionType::kAggMessage:
    case ActionType::kAccumulateDone:
      return gnn::Phase::kAggregation;
    default:
      return gnn::Phase::kVertexUpdate;
  }
}

}  // namespace

/// Cross-run state: the PE pool. PEs are timing components with per-run
/// state that reset() clears, so one pool constructed on first use serves
/// every layer run — the per-layer heap churn of num_pes() allocations (and
/// "pe<N>" name strings) measurably showed in profiles. Names are only
/// materialised when a tracer is attached; nothing else reads them.
struct CycleEngine::Impl {
  std::deque<pe::PeModel> pes;  // deque: PeModel is pinned (non-movable)
};

CycleEngine::CycleEngine(const AuroraConfig& config)
    : impl_(std::make_unique<Impl>()), config_(config) {
  AURORA_CHECK(config.array_dim >= 2);
  AURORA_CHECK(config.noc.k == config.array_dim);
}

CycleEngine::~CycleEngine() = default;

RunMetrics CycleEngine::run_layer(const graph::Dataset& dataset,
                                  const gnn::Workflow& wf,
                                  const DramTrafficParams& traffic_params) {
  const AuroraConfig& cfg = config_;
  const graph::CsrGraph& g = dataset.graph;
  const std::uint32_t k = cfg.array_dim;
  const Bytes elem = cfg.element_bytes;
  const auto fv = wf.edge_feature_dim;           // aggregation vector width
  const auto out_dim = wf.layer.out_dim;

  // ---- decisions: partition, plan, tiling --------------------------------
  const auto split = partition::partition(
      partition::partition_input_from_workflow(wf, cfg.num_pes(),
                                               cfg.flops_per_pe));
  const SubAcceleratorPlan plan = make_plan(cfg, split);

  graph::TilingParams tparams;
  tparams.feature_bytes =
      feature_vector_bytes(wf.layer.in_dim, traffic_params);
  tparams.edge_bytes = 8;
  // Tiles size against the WHOLE distributed buffer: features spread across
  // both sub-accelerators (the DRAM crossbar feeds every PE row), with
  // weights confined to sub-B (paper Sec VI-B: "fully utilize the on-chip
  // buffer capacity").
  tparams.capacity_bytes = static_cast<Bytes>(
      cfg.buffer_fill_fraction * static_cast<double>(cfg.total_buffer_bytes()));
  const graph::Tiling tiling = graph::tile_graph(g, tparams);
  const DramTraffic traffic =
      aurora_dram_traffic(dataset, wf, tiling, traffic_params);

  // ---- components --------------------------------------------------------
  sim::Simulator sim;
  sim.set_fast_forward(cfg.fast_forward);
  noc::Network net(cfg.noc);
  dram::DramModel dram(cfg.dram);
  std::deque<pe::PeModel>& pes = impl_->pes;
  if (pes.size() != cfg.num_pes()) {
    pes.clear();
    for (std::uint32_t i = 0; i < cfg.num_pes(); ++i) {
      pes.emplace_back(
          tracer_ != nullptr ? "pe" + std::to_string(i) : std::string(),
          cfg.pe);
    }
  } else {
    for (auto& p : pes) p.reset();
  }
  sim.add(&net);
  sim.add(&dram);
  for (auto& p : pes) sim.add(&p);

  // ---- observability: per-run registry + optional sampler ----------------
  // The registry and its probes reference this run's stack-local components,
  // so the sampler's probes are detached again before returning.
  MetricsRegistry registry;
  net.register_metrics(registry);
  dram.register_metrics(registry);
  {
    // Pooled PEs are unnamed (names cost allocations nothing else reads),
    // so per-PE registration is unavailable; publish pool aggregates.
    const auto pe_scope = registry.scope("pe");
    pe_scope.counter("tasks_total", [&pes] {
      double total = 0.0;
      for (const auto& p : pes) {
        total += static_cast<double>(p.stats().tasks_completed);
      }
      return total;
    });
    pe_scope.counter("busy_cycles_total", [&pes] {
      double total = 0.0;
      for (const auto& p : pes) {
        total += static_cast<double>(p.stats().busy_cycles);
      }
      return total;
    });
    pe_scope.gauge("queue_depth_total", [&pes] {
      double total = 0.0;
      for (const auto& p : pes) total += static_cast<double>(p.queue_depth());
      return total;
    });
  }
  if (sampler_ != nullptr) {
    sampler_->watch_registry(registry);
    // Added last so every sample observes the post-tick state of the cycle
    // it lands on, identically under lockstep and fast-forward.
    sim.add(sampler_);
  }
  sim::InvariantChecker checker(cfg.invariant_interval);
  if (cfg.check_invariants) {
    checker.watch(&net);
    checker.watch(&dram);
    for (auto& p : pes) checker.watch(&p);
    // After the sampler, so interval checks see fully post-tick state.
    sim.add(&checker);
  }
  // Drain-point check: run after every run_until_idle return below.
  auto check_drained = [&] {
    if (cfg.check_invariants) checker.check_now(sim.now());
  };

  ConfigurationUnit config_unit(k);

  // ---- per-tile dataflow state -------------------------------------------
  std::vector<Action> actions;
  std::vector<std::uint32_t> pending;   // remaining accumulations per vertex
  std::vector<noc::NodeId> vertex_pe;   // owner PE per tile-local vertex
  // ring_deps[v][stage]: inputs a weight-stationary stage still waits for —
  // its m_v slice, plus (for stage > 0) the rotating partial.
  std::vector<std::vector<std::uint8_t>> ring_deps;
  VertexId tile_begin = 0;
  VertexId tile_end = 0;
  std::uint64_t vertices_remaining = 0;

  // Per-phase attribution state, tracked unconditionally so RunMetrics are
  // bit-identical whether or not a tracer/sampler is attached. Activity
  // windows (first..last event cycle of each phase, per tile) feed
  // PhaseMetrics::active_cycles and kPhaseSpan trace events; send-site
  // counts feed PhaseMetrics::noc_messages.
  constexpr std::size_t kNumPhases = gnn::kAllPhases.size();
  std::array<Cycle, kNumPhases> phase_first{};
  std::array<Cycle, kNumPhases> phase_last{};
  std::array<bool, kNumPhases> phase_seen{};
  std::array<std::uint64_t, kNumPhases> phase_msgs{};
  auto touch_phase = [&](gnn::Phase p, Cycle now) {
    const auto i = static_cast<std::size_t>(p);
    if (!phase_seen[i]) {
      phase_seen[i] = true;
      phase_first[i] = now;
    }
    phase_last[i] = now;
  };
  auto count_phase_msg = [&](gnn::Phase p) {
    ++phase_msgs[static_cast<std::size_t>(p)];
  };

  const OpCount m_total = std::max<OpCount>(1, wf.num_edges);
  const OpCount n_total = std::max<OpCount>(1, wf.num_vertices);
  const OpCount eu_ops_per_edge =
      wf.phase(gnn::Phase::kEdgeUpdate).total_ops / m_total;
  const OpCount vu_ops_per_vertex =
      wf.phase(gnn::Phase::kVertexUpdate).total_ops / n_total;

  const bool has_eu = wf.needs_edge_update();
  const bool has_vu = wf.needs_vertex_update();
  // Aggregation messages travel in their stored format: sparse input
  // features stay compressed on chip unless an edge-update transform
  // densifies them (MatVec-style edge updates do; scalar/dot ones do not).
  const bool update_first = wf.update_first;
  const auto& eu_op_list = wf.phase(gnn::Phase::kEdgeUpdate).ops;
  const bool eu_densifies =
      std::find(eu_op_list.begin(), eu_op_list.end(), gnn::OpKind::kMatVec) !=
      eu_op_list.end();
  // Update-first traffic is dense H-wide transformed vectors; otherwise raw
  // features travel in stored (possibly sparse) form unless densified.
  const Bytes agg_msg_bytes =
      (update_first || eu_densifies)
          ? static_cast<Bytes>(fv) * elem
          : feature_vector_bytes(wf.layer.in_dim, traffic_params);
  const auto& vu_ops = wf.phase(gnn::Phase::kVertexUpdate).ops;
  const bool vu_has_act = std::find(vu_ops.begin(), vu_ops.end(),
                                    gnn::OpKind::kActivation) != vu_ops.end();
  const pe::Activation vu_act =
      vu_has_act
          ? (gnn::model_category(wf.model) == gnn::GnnCategory::kAttentional
                 ? pe::Activation::kSoftmax
                 : pe::Activation::kRelu)
          : pe::Activation::kNone;

  auto new_action = [&](ActionType type, VertexId v, noc::NodeId src,
                        noc::NodeId dst, std::uint32_t stage = 0) {
    actions.push_back({type, v, src, dst, stage});
    return static_cast<std::uint64_t>(actions.size() - 1);
  };

  auto submit_accumulate = [&](noc::NodeId at, VertexId v) {
    pe::PeTask task;
    task.op.kind = pe::PeConfigKind::kAccumulate;
    task.op.length = fv;
    task.buffer_read_bytes = agg_msg_bytes;
    task.buffer_write_bytes = agg_msg_bytes;
    task.tag = new_action(ActionType::kAccumulateDone, v, at, at);
    pes[at].submit(std::move(task));
  };

  auto submit_ring_stage = [&](noc::NodeId at, VertexId v,
                               std::uint32_t stage) {
    const auto& ring = plan.ring_for(tile_begin + v);
    const auto s = static_cast<std::uint32_t>(ring.nodes.size());
    pe::PeTask task;
    task.op.kind = pe::PeConfigKind::kMatVec;
    task.op.rows = std::max<std::uint32_t>(1, out_dim);
    task.op.length = std::max<std::uint32_t>(
        1, static_cast<std::uint32_t>(vu_ops_per_vertex / s /
                                      (2 * std::max<std::uint32_t>(
                                               1, out_dim))));
    if (stage + 1 == s) task.post_activation = vu_act;
    task.buffer_read_bytes =
        static_cast<Bytes>(task.op.length + out_dim) * elem;
    task.buffer_write_bytes = static_cast<Bytes>(out_dim) * elem;
    task.tag = new_action(ActionType::kRingStageDone, v, at, at, stage);
    pes[at].submit(std::move(task));
  };

  auto vertex_done = [&]() {
    AURORA_CHECK(vertices_remaining > 0);
    --vertices_remaining;
  };

  auto ring_dep_arrived = [&](VertexId v, std::uint32_t stage) {
    AURORA_CHECK(ring_deps[v][stage] > 0);
    if (--ring_deps[v][stage] == 0) {
      const auto& ring = plan.ring_for(tile_begin + v);
      submit_ring_stage(ring.nodes[stage], v, stage);
    }
  };

  // Fan a transformed (update-first) or raw vector of vertex u out along
  // its edges: local neighbors accumulate directly, remote ones get a
  // message.
  std::function<void(VertexId, Cycle)> fan_out_edges;

  // Weight-stationary hand-off: each ring PE holds its weight column slice;
  // the owner PE scatters the matching m_v slices directly, and only the
  // H-wide partial result rotates around the ring.
  auto aggregation_done = [&](VertexId v, Cycle now) {
    if (!has_vu || update_first) {
      vertex_done();  // update-first: the transform already ran in sub-B
      return;
    }
    const auto& ring = plan.ring_for(tile_begin + v);
    const auto s = static_cast<std::uint32_t>(ring.nodes.size());
    const std::uint32_t slice = (fv + s - 1) / s;
    const noc::NodeId src = vertex_pe[v];
    ring_deps[v].assign(s, 2);
    ring_deps[v][0] = 1;  // stage 0 waits only for its slice
    for (std::uint32_t j = 0; j < s; ++j) {
      const std::uint32_t lo = j * slice;
      const std::uint32_t len = lo < fv ? std::min(slice, fv - lo) : 0;
      count_phase_msg(gnn::Phase::kVertexUpdate);
      net.send(src, ring.nodes[j],
               static_cast<Bytes>(std::max<std::uint32_t>(1, len)) * elem,
               new_action(ActionType::kSliceMessage, v, src, ring.nodes[j], j),
               now);
    }
  };

  auto ring_stage_done = [&](const Action& a, Cycle now) {
    const auto& ring = plan.ring_for(tile_begin + a.v_local);
    const auto s = static_cast<std::uint32_t>(ring.nodes.size());
    if (a.ring_stage + 1 >= s) {
      if (update_first) {
        // Transformed vector streams back to the owner PE in sub-A.
        const noc::NodeId owner = vertex_pe[a.v_local];
        count_phase_msg(gnn::Phase::kVertexUpdate);
        net.send(a.dst_pe, owner, static_cast<Bytes>(out_dim) * elem,
                 new_action(ActionType::kXformMessage, a.v_local, a.dst_pe,
                            owner),
                 now);
      } else {
        vertex_done();
      }
      return;
    }
    const noc::NodeId next = ring.nodes[a.ring_stage + 1];
    count_phase_msg(gnn::Phase::kVertexUpdate);
    net.send(a.dst_pe, next, static_cast<Bytes>(out_dim) * elem,
             new_action(ActionType::kRingMessage, a.v_local, a.dst_pe, next,
                        a.ring_stage + 1),
             now);
  };

  fan_out_edges = [&](VertexId ul, Cycle now) {
    const VertexId u = tile_begin + ul;
    const noc::NodeId src = vertex_pe[ul];
    for (VertexId w : g.neighbors(u)) {
      if (w < tile_begin || w >= tile_end) continue;
      const VertexId wl = w - tile_begin;
      const noc::NodeId dst = vertex_pe[wl];
      if (src == dst) {
        submit_accumulate(dst, wl);
      } else {
        count_phase_msg(gnn::Phase::kAggregation);
        net.send(src, dst, agg_msg_bytes,
                 new_action(ActionType::kAggMessage, wl, src, dst), now);
      }
    }
  };

  // PE completions and NoC deliveries drive the dependency graph.
  auto on_pe_complete = [&](std::uint64_t tag, Cycle now) {
    const Action a = actions[tag];
    touch_phase(action_phase(a.type), now);
    if (tracer_ != nullptr) {
      tracer_->record(now, sim::TraceEvent::kTaskComplete,
                      static_cast<std::uint64_t>(a.type), a.dst_pe);
    }
    switch (a.type) {
      case ActionType::kEdgeUpdateDone:
        if (a.src_pe == a.dst_pe) {
          submit_accumulate(a.dst_pe, a.v_local);
        } else {
          count_phase_msg(gnn::Phase::kAggregation);
          net.send(a.src_pe, a.dst_pe, agg_msg_bytes,
                   new_action(ActionType::kAggMessage, a.v_local, a.src_pe,
                              a.dst_pe),
                   now);
        }
        return;
      case ActionType::kAccumulateDone:
        AURORA_CHECK(pending[a.v_local] > 0);
        if (--pending[a.v_local] == 0) aggregation_done(a.v_local, now);
        return;
      case ActionType::kRingStageDone:
        ring_stage_done(a, now);
        return;
      default:
        throw Error("unexpected PE completion action");
    }
  };
  for (auto& p : pes) p.set_completion_callback(on_pe_complete);

  net.set_delivery_callback([&](const noc::Packet& pkt, Cycle now) {
    if (tracer_ != nullptr) {
      tracer_->record(pkt.injected_at, sim::TraceEvent::kPacketInjected,
                      pkt.src, pkt.payload_bytes);
      tracer_->record(now, sim::TraceEvent::kPacketDelivered, pkt.dst,
                      pkt.payload_bytes);
    }
    const Action a = actions[pkt.tag];
    touch_phase(action_phase(a.type), now);
    switch (a.type) {
      case ActionType::kAggMessage:
        submit_accumulate(a.dst_pe, a.v_local);
        return;
      case ActionType::kSliceMessage:
      case ActionType::kRingMessage:
        ring_dep_arrived(a.v_local, a.ring_stage);
        return;
      case ActionType::kXformMessage:
        fan_out_edges(a.v_local, now);
        return;
      default:
        (void)now;
        throw Error("unexpected NoC delivery action");
    }
  });

  // ---- run tiles through the load/compute pipeline ------------------------
  if (tracer_ != nullptr) {
    tracer_->record(0, sim::TraceEvent::kRunBegin, sim::kRunKindChip,
                    tiling.num_tiles());
  }
  RunMetrics metrics;
  metrics.partition_a = plan.sub_a_pes();
  metrics.partition_b = plan.sub_b_pes();
  metrics.num_subgraphs = static_cast<std::uint32_t>(tiling.num_tiles());
  metrics.utilization = split.single_accelerator ? 1.0 : split.utilization();

  mapping::MapperParams mparams;
  mparams.region = plan.sub_a;
  // C_PE: buffer capacity reserved per S_PE for high-degree vertices,
  // capped so hotspot vertices spread over the S_PEs instead of piling onto
  // a few (Algorithm 1 maps them round-robin).
  mparams.c_pe_slots = std::clamp<std::uint32_t>(
      static_cast<std::uint32_t>(cfg.pe.bank_buffer_bytes /
                                 std::max<Bytes>(1, tparams.feature_bytes) /
                                 16),
      1, 8);

  Bytes next_addr = 0;
  auto enqueue_stream = [&](Bytes bytes) {
    // Chunk a bulk transfer into 4 KiB requests at sequential addresses.
    constexpr Bytes kChunk = 4096;
    Cycle now = sim.now();
    if (tracer_ != nullptr) {
      tracer_->record(now, sim::TraceEvent::kDramRequest, next_addr, bytes);
    }
    while (bytes > 0) {
      const Bytes take = std::min(bytes, kChunk);
      dram::DramRequest req;
      req.addr = next_addr;
      req.bytes = take;
      dram.enqueue(std::move(req), now);
      next_addr += take;
      bytes -= take;
    }
  };

  Cycle dram_free = 0;
  Cycle compute_free = 0;
  const Cycle kGuard = 200'000'000ull;

  for (std::size_t ti = 0; ti < tiling.tiles.size(); ++ti) {
    const graph::Tile& tile = tiling.tiles[ti];
    tile_begin = tile.vertex_begin;
    tile_end = tile.vertex_end;
    const VertexId tile_n = tile.num_vertices();

    // -- mapping + NoC reconfiguration (overlapped except for tile 0).
    mparams.pe_vertex_slots =
        std::max<std::uint32_t>(4, 2 * tile_n / plan.sub_a_pes() + 2);
    const mapping::Mapping map =
        cfg.mapping_policy == MappingPolicy::kDegreeAware
            ? mapping::degree_aware_map(g, tile.vertex_begin, tile.vertex_end,
                                        mparams)
            : mapping::hashing_map(g, tile.vertex_begin, tile.vertex_end,
                                   mparams);
    // The hashing mapping has no S_PEs, so compose yields a plain mesh plus
    // the sub-B rings — exactly the CGRA-ME baseline configuration.
    const noc::NocConfig noc_cfg = compose_noc_config(plan, map);
    const std::uint64_t writes = config_unit.apply(noc_cfg);
    metrics.switch_writes += writes;
    net.configure(noc_cfg);
    ++metrics.reconfigurations;
    if (tracer_ != nullptr) {
      tracer_->record(sim.now(), sim::TraceEvent::kReconfigure, ti, writes);
      tracer_->record(sim.now(), sim::TraceEvent::kTileStart, ti, tile_n);
    }

    // -- DRAM load of this tile's working set.
    Bytes load_bytes =
        static_cast<Bytes>(tile_n + tile.num_halo_vertices) *
            tparams.feature_bytes +
        static_cast<Bytes>(tile_n) * 8 + tile.num_edges * 4;
    if (gnn::model_has_edge_embeddings(wf.model)) {
      load_bytes += tile.num_edges * static_cast<Bytes>(fv) * elem;
    }
    if (ti == 0) load_bytes += traffic.weights;  // weights once per layer
    const Cycle load_start = sim.now();
    const std::uint64_t load_hits = dram.stats().row_hits;
    const std::uint64_t load_misses = dram.stats().row_misses;
    const std::uint64_t load_conflicts = dram.stats().row_conflicts;
    enqueue_stream(load_bytes);
    sim.run_until_idle(kGuard);
    check_drained();
    const Cycle load_cycles = sim.now() - load_start;
    if (tracer_ != nullptr) {
      tracer_->record(
          load_start, sim::TraceEvent::kDramSpan, load_bytes, load_cycles,
          dram.stats().row_hits - load_hits,
          sim::pack_u32_pair(dram.stats().row_misses - load_misses,
                             dram.stats().row_conflicts - load_conflicts));
    }

    // -- seed the tile's dataflow.
    actions.clear();
    pending.assign(tile_n, 0);
    ring_deps.assign(tile_n, {});
    vertex_pe.assign(map.vertex_to_pe.begin(), map.vertex_to_pe.end());
    vertices_remaining = tile_n;
    phase_seen.fill(false);

    const Cycle compute_start = sim.now();
    const Cycle net_busy_before = net.stats().busy_cycles;
    std::uint64_t pe_busy_before = 0;
    if (tracer_ != nullptr) {
      for (const auto& p : pes) pe_busy_before += p.stats().busy_cycles;
    }
    if (update_first && has_vu) {
      // Update-first: every vertex's transform ring chain starts right away
      // (its feature slices are already resident in the ring PEs' buffers).
      for (VertexId v = tile.vertex_begin; v < tile.vertex_end; ++v) {
        const VertexId vl = v - tile.vertex_begin;
        const auto& ring = plan.ring_for(v);
        const auto s = static_cast<std::uint32_t>(ring.nodes.size());
        ring_deps[vl].assign(s, 1);
        ring_deps[vl][0] = 0;
        submit_ring_stage(ring.nodes[0], vl, 0);
      }
    }
    for (VertexId v = tile.vertex_begin; v < tile.vertex_end; ++v) {
      const VertexId vl = v - tile.vertex_begin;
      const auto nb = g.neighbors(v);
      pending[vl] = static_cast<std::uint32_t>(nb.size());
      if (nb.empty()) {
        aggregation_done(vl, sim.now());
        continue;
      }
      for (VertexId u : nb) {
        const bool u_local = (u >= tile.vertex_begin && u < tile.vertex_end);
        const noc::NodeId dst = vertex_pe[vl];
        const noc::NodeId src =
            u_local ? vertex_pe[u - tile.vertex_begin] : dst;
        if (update_first && has_vu) {
          // In-tile contributions flow after u's transform completes (the
          // fan-out above); halo contributions are staged locally at load.
          if (!u_local) submit_accumulate(dst, vl);
          continue;
        }
        if (has_eu) {
          pe::PeTask task;
          task.op = synth_op(std::max<OpCount>(1, eu_ops_per_edge),
                             pe::PeConfigKind::kVecVec);
          task.buffer_read_bytes =
              static_cast<Bytes>(wf.layer.in_dim) * elem;
          task.buffer_write_bytes = static_cast<Bytes>(fv) * elem;
          task.tag =
              new_action(ActionType::kEdgeUpdateDone, vl, src, dst);
          pes[src].submit(std::move(task));
        } else if (src == dst) {
          submit_accumulate(dst, vl);
        } else {
          count_phase_msg(gnn::Phase::kAggregation);
          net.send(src, dst, agg_msg_bytes,
                   new_action(ActionType::kAggMessage, vl, src, dst),
                   sim.now());
        }
      }
    }
    sim.run_until_idle(kGuard);
    check_drained();
    AURORA_CHECK_MSG(vertices_remaining == 0,
                     "tile " << ti << " finished with "
                             << vertices_remaining << " vertices stuck");
    const Cycle compute_cycles = sim.now() - compute_start;
    metrics.onchip_comm_cycles += net.stats().busy_cycles - net_busy_before;
    if (tracer_ != nullptr) {
      std::uint64_t pe_busy_after = 0;
      for (const auto& p : pes) pe_busy_after += p.stats().busy_cycles;
      tracer_->record(compute_start, sim::TraceEvent::kComputeSpan, ti,
                      compute_cycles,
                      net.stats().busy_cycles - net_busy_before,
                      pe_busy_after - pe_busy_before);
    }
    // Fold this tile's phase activity windows into the per-phase totals.
    for (std::size_t p = 0; p < kNumPhases; ++p) {
      if (!phase_seen[p]) continue;
      const Cycle span = phase_last[p] - phase_first[p] + 1;
      metrics.phases[p].active_cycles += span;
      if (tracer_ != nullptr) {
        tracer_->record(phase_first[p], sim::TraceEvent::kPhaseSpan, p, span);
      }
    }

    // -- writeback of this tile's outputs (streams while the next tile
    //    loads; accounted on the DRAM timeline).
    Bytes store_bytes =
        static_cast<Bytes>(tile_n) * out_dim * elem;
    if (gnn::model_has_edge_embeddings(wf.model)) {
      store_bytes += tile.num_edges * static_cast<Bytes>(fv) * elem;
    }
    const Cycle store_start = sim.now();
    const std::uint64_t store_hits = dram.stats().row_hits;
    const std::uint64_t store_misses = dram.stats().row_misses;
    const std::uint64_t store_conflicts = dram.stats().row_conflicts;
    enqueue_stream(store_bytes);
    sim.run_until_idle(kGuard);
    check_drained();
    const Cycle store_cycles = sim.now() - store_start;
    if (tracer_ != nullptr) {
      tracer_->record(
          store_start, sim::TraceEvent::kDramSpan, store_bytes, store_cycles,
          dram.stats().row_hits - store_hits,
          sim::pack_u32_pair(dram.stats().row_misses - store_misses,
                             dram.stats().row_conflicts - store_conflicts));
    }

    // -- pipeline composition: tile loads overlap the previous compute.
    const Cycle load_done = std::max(dram_free, compute_free) + load_cycles;
    dram_free = load_done + store_cycles;
    const Cycle start = std::max(compute_free, load_done);
    compute_free = start + compute_cycles;

    metrics.compute_cycles += compute_cycles;
    metrics.dram_cycles += load_cycles + store_cycles;
  }

  // ---- final metrics ------------------------------------------------------
  metrics.total_cycles = std::max(compute_free, dram_free) +
                         config_unit.exposed_cycles() +
                         AuroraConfig::kHeuristicCycles;
  metrics.reconfig_cycles =
      config_unit.exposed_cycles() + AuroraConfig::kHeuristicCycles;
  if (tracer_ != nullptr) {
    tracer_->record(metrics.total_cycles, sim::TraceEvent::kRunEnd,
                    metrics.total_cycles, metrics.reconfig_cycles);
  }

  metrics.noc_heatmap = net.render_load_heatmap();
  net.export_counters(metrics.counters);
  dram.export_counters(metrics.counters);
  // Scheduler diagnostics: how much of the run fast-forward skipped. Equal
  // ticked+skipped totals are part of the lockstep-equivalence contract
  // (skipped is simply 0 when fast_forward is off).
  metrics.counters.inc("sim.cycles_total", sim.now());
  metrics.counters.inc("sim.cycles_skipped", sim.cycles_skipped());
  for (const auto& p : pes) p.export_counters(metrics.counters);
  {
    // Per-PE busy heatmap + mean utilization over the run.
    static constexpr const char* kGlyphs = " .:-=+*#%@";
    Cycle peak = 0;
    double busy_sum = 0.0;
    for (const auto& p : pes) {
      peak = std::max(peak, p.stats().busy_cycles);
      busy_sum += static_cast<double>(p.stats().busy_cycles);
    }
    std::string heat;
    for (std::uint32_t r = 0; r < k; ++r) {
      heat.push_back('|');
      for (std::uint32_t c = 0; c < k; ++c) {
        const Cycle b = pes[r * k + c].stats().busy_cycles;
        const auto level =
            peak == 0 || b == 0
                ? 0
                : 1 + static_cast<std::size_t>(8.0 * static_cast<double>(b) /
                                               static_cast<double>(peak));
        heat.push_back(kGlyphs[std::min<std::size_t>(level, 9)]);
      }
      heat.append("|\n");
    }
    metrics.pe_heatmap = std::move(heat);
    metrics.pe_utilization =
        busy_sum / (static_cast<double>(cfg.num_pes()) *
                    std::max(1.0, static_cast<double>(metrics.total_cycles)));
  }
  metrics.dram_bytes = traffic.total();
  metrics.dram_accesses = dram.stats().bursts;
  metrics.noc_messages = net.stats().packets_injected;
  metrics.avg_hops = net.stats().avg_hops();
  metrics.bypass_messages = net.stats().bypass_flit_hops;

  // Per-phase attribution. NoC messages were counted at each send site, so
  // their sum equals noc_messages. DRAM bytes follow a consumer rule — tile
  // loads (features, halos, adjacency, edge state) feed the first phase
  // that reads them; weights and output stores belong to the producer of
  // the final features — and sum exactly to dram_bytes.
  for (std::size_t p = 0; p < kNumPhases; ++p) {
    metrics.phases[p].noc_messages = phase_msgs[p];
  }
  const gnn::Phase load_phase =
      has_eu ? gnn::Phase::kEdgeUpdate : gnn::Phase::kAggregation;
  const gnn::Phase out_phase =
      has_vu ? gnn::Phase::kVertexUpdate : load_phase;
  metrics.phase(load_phase).dram_bytes +=
      traffic.input_features + traffic.halo_features + traffic.adjacency +
      traffic.edge_embeddings;
  metrics.phase(out_phase).dram_bytes +=
      traffic.weights + traffic.output_features + traffic.intermediate_spill;
  metrics.noc_packet_latency.merge(net.stats().packet_latency_hist);
  metrics.dram_request_latency.merge(dram.stats().request_latency_hist);

  // Energy events: exact op counts from the workflow, measured traffic from
  // the component stats (see DESIGN.md §2, energy row).
  metrics.events.fp_multiplies = wf.total_ops() / 2;
  metrics.events.fp_adds = wf.total_ops() - metrics.events.fp_multiplies;
  metrics.events.dram_bytes = metrics.dram_bytes;
  metrics.events.noc_link_bytes = net.stats().link_bytes;
  metrics.events.bypass_link_bytes = net.stats().bypass_bytes;
  metrics.events.router_bytes =
      net.stats().router_traversals * cfg.noc.flit_bytes;
  Bytes sram_bytes = 0;
  for (const auto& p : pes) {
    sram_bytes += p.bank_buffer().bytes_read() +
                  p.bank_buffer().bytes_written();
  }
  metrics.events.sram_large_bytes = sram_bytes;
  metrics.events.reconfig_switch_writes = metrics.switch_writes;
  metrics.events.active_cycles = metrics.total_cycles;
  metrics.energy = energy::compute_energy(metrics.events, energy::EnergyTable{});
  // The sampler's probes point into this run's components; keep the sampled
  // data but drop the dangling probes.
  if (sampler_ != nullptr) sampler_->detach();
  return metrics;
}

}  // namespace aurora::core
