#include "core/functional_engine.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "core/dram_traffic.hpp"
#include "core/sub_accelerators.hpp"
#include "gnn/workflow.hpp"
#include "graph/tiling.hpp"
#include "mapping/mapper.hpp"
#include "partition/partition.hpp"
#include "pe/datapath.hpp"
#include "pe/ppu.hpp"

namespace aurora::core {
namespace {

/// Column slice [lo, hi) of w, copied into the ring PE's local weight store.
gnn::Matrix column_slice(const gnn::Matrix& w, std::size_t lo,
                         std::size_t hi) {
  gnn::Matrix s(w.rows(), hi - lo);
  for (std::size_t r = 0; r < w.rows(); ++r) {
    for (std::size_t c = lo; c < hi; ++c) s.at(r, c - lo) = w.at(r, c);
  }
  return s;
}

}  // namespace

FunctionalEngine::FunctionalEngine(const AuroraConfig& config)
    : config_(config) {
  AURORA_CHECK(config.array_dim >= 2);
}

gnn::Matrix FunctionalEngine::run_layer(const graph::Dataset& dataset,
                                        gnn::GnnModel model,
                                        const gnn::Matrix& x,
                                        const gnn::ReferenceParams& params) {
  const graph::CsrGraph& g = dataset.graph;
  const std::size_t n = g.num_vertices();
  AURORA_CHECK(x.rows() == n);
  const std::size_t f = x.cols();
  stats_ = {};

  pe::PeDatapath dp{config_.pe.datapath};
  const pe::Ppu ppu{config_.pe.ppu};

  // --- the same decisions the timing engines take ---------------------------
  const std::size_t out_cols =
      gnn::reference_output_dim(model, f, params.w.rows() > 0
                                              ? params.w.rows()
                                              : (params.mlp.empty()
                                                     ? f
                                                     : params.mlp.back().rows()));
  const gnn::LayerConfig layer{static_cast<std::uint32_t>(f),
                               static_cast<std::uint32_t>(out_cols)};
  const gnn::Workflow wf = gnn::generate_workflow(
      model, layer, g.num_vertices(), g.num_edges());
  const auto split = partition::partition(
      partition::partition_input_from_workflow(wf, config_.num_pes(),
                                               config_.flops_per_pe));
  const SubAcceleratorPlan plan = make_plan(config_, split);

  graph::TilingParams tparams;
  tparams.feature_bytes = static_cast<Bytes>(f) * config_.element_bytes;
  tparams.capacity_bytes = static_cast<Bytes>(
      config_.buffer_fill_fraction *
      static_cast<double>(config_.total_buffer_bytes()));
  const graph::Tiling tiling = graph::tile_graph(g, tparams);

  stats_.tiles = static_cast<std::uint32_t>(tiling.num_tiles());
  stats_.sub_a_pes = plan.sub_a_pes();
  stats_.sub_b_pes = plan.sub_b_pes();

  const std::uint32_t default_stages =
      std::clamp<std::uint32_t>(config_.ring_size, 2, config_.array_dim);
  auto stages_for = [&](VertexId v) -> std::uint32_t {
    if (plan.single_accelerator) return default_stages;
    return static_cast<std::uint32_t>(plan.ring_for(v).nodes.size());
  };

  // Weight-stationary ring execution of y = w * in: the weight columns are
  // sliced across `stages` PEs; each computes the partial product of its
  // m_v slice and the H-wide partial accumulates around the ring.
  auto ring_mat_vec = [&](const gnn::Matrix& w, std::span<const double> in,
                          std::uint32_t stages) {
    AURORA_CHECK(w.cols() == in.size());
    const std::size_t slice = (w.cols() + stages - 1) / stages;
    gnn::Vector partial(w.rows(), 0.0);
    for (std::uint32_t j = 0; j < stages; ++j) {
      const std::size_t lo = static_cast<std::size_t>(j) * slice;
      if (lo >= w.cols()) break;
      const std::size_t hi = std::min(w.cols(), lo + slice);
      const gnn::Matrix ws = column_slice(w, lo, hi);
      dp.configure(pe::PeConfigKind::kMatVec);
      const gnn::Vector part = dp.run_mat_vec(ws, in.subspan(lo, hi - lo));
      dp.configure(pe::PeConfigKind::kAccumulate);
      dp.run_accumulate(partial, part);
      ++stats_.ring_stages;
    }
    return partial;
  };

  auto accumulate = [&](gnn::Vector& acc, std::span<const double> v) {
    dp.configure(pe::PeConfigKind::kAccumulate);
    dp.run_accumulate(acc, v);
    ++stats_.accumulations;
  };
  auto scalar_vec = [&](double s, std::span<const double> v) {
    dp.configure(pe::PeConfigKind::kScalarVec);
    ++stats_.edge_tasks;
    return dp.run_scalar_vec(s, v);
  };
  auto activate = [&](pe::Activation act, const gnn::Vector& v) {
    ++stats_.ppu_activations;
    return ppu.apply(act, v);
  };

  gnn::Matrix out(n, out_cols);
  auto store = [&](VertexId v, const gnn::Vector& y) {
    AURORA_CHECK(y.size() == out_cols);
    std::copy(y.begin(), y.end(), out.row(v).begin());
  };

  // G-GCN / GraphSAGE-Pool hoist a per-vertex transform; compute it tile by
  // tile through the ring path like the hardware would.
  gnn::Matrix gate_u, gate_v, pooled;
  if (model == gnn::GnnModel::kGGcn) {
    gate_u = gnn::Matrix(n, f);
    gate_v = gnn::Matrix(n, f);
    for (VertexId v = 0; v < n; ++v) {
      const auto a = ring_mat_vec(params.w_u, x.row(v), stages_for(v));
      const auto b = ring_mat_vec(params.w_v, x.row(v), stages_for(v));
      std::copy(a.begin(), a.end(), gate_u.row(v).begin());
      std::copy(b.begin(), b.end(), gate_v.row(v).begin());
    }
  }
  if (model == gnn::GnnModel::kGraphSagePool) {
    pooled = gnn::Matrix(n, f);
    for (VertexId v = 0; v < n; ++v) {
      gnn::Vector p = ring_mat_vec(params.w_pool, x.row(v), stages_for(v));
      accumulate(p, params.bias_pool);
      p = activate(pe::Activation::kSigmoid, p);
      std::copy(p.begin(), p.end(), pooled.row(v).begin());
    }
  }

  // --- per-tile distributed execution ---------------------------------------
  for (const graph::Tile& tile : tiling.tiles) {
    for (VertexId v = tile.vertex_begin; v < tile.vertex_end; ++v) {
      const auto nb = g.neighbors(v);
      switch (model) {
        case gnn::GnnModel::kGcn: {
          const double dv = static_cast<double>(g.degree(v)) + 1.0;
          gnn::Vector m(f, 0.0);
          accumulate(m, scalar_vec(1.0 / dv, x.row(v)));
          for (VertexId u : nb) {
            const double du = static_cast<double>(g.degree(u)) + 1.0;
            accumulate(m, scalar_vec(1.0 / std::sqrt(du * dv), x.row(u)));
          }
          gnn::Vector y = ring_mat_vec(params.w, m, stages_for(v));
          accumulate(y, params.bias);
          store(v, activate(pe::Activation::kRelu, y));
          break;
        }
        case gnn::GnnModel::kGraphSageMean: {
          gnn::Vector m(f, 0.0);
          if (nb.empty()) {
            accumulate(m, x.row(v));
          } else {
            for (VertexId u : nb) accumulate(m, x.row(u));
            m = scalar_vec(1.0 / static_cast<double>(nb.size()), m);
          }
          store(v, ring_mat_vec(params.w, m, stages_for(v)));
          break;
        }
        case gnn::GnnModel::kGin: {
          gnn::Vector m = scalar_vec(1.0 + params.epsilon, x.row(v));
          for (VertexId u : nb) accumulate(m, x.row(u));
          gnn::Vector h1 = ring_mat_vec(params.w, m, stages_for(v));
          accumulate(h1, params.bias);
          h1 = activate(pe::Activation::kRelu, h1);
          gnn::Vector y = ring_mat_vec(params.w2, h1, stages_for(v));
          accumulate(y, params.bias2);
          store(v, y);
          break;
        }
        case gnn::GnnModel::kCommNet: {
          gnn::Vector m(f, 0.0);
          for (VertexId u : nb) accumulate(m, x.row(u));
          store(v, ring_mat_vec(params.w, m, stages_for(v)));
          break;
        }
        case gnn::GnnModel::kVanillaAttention:
        case gnn::GnnModel::kAgnn: {
          gnn::Vector m(f, 0.0);
          for (VertexId u : nb) {
            dp.configure(pe::PeConfigKind::kDotProduct);
            const double a = dp.run_dot(x.row(v), x.row(u));
            ++stats_.edge_tasks;
            accumulate(m, scalar_vec(a, x.row(u)));
          }
          store(v, activate(pe::Activation::kSoftmax,
                            ring_mat_vec(params.w, m, stages_for(v))));
          break;
        }
        case gnn::GnnModel::kGGcn: {
          gnn::Vector m(f, 0.0);
          for (VertexId u : nb) {
            gnn::Vector gate(f, 0.0);
            accumulate(gate, gate_u.row(u));
            accumulate(gate, gate_v.row(v));
            gate = activate(pe::Activation::kSigmoid, gate);
            dp.configure(pe::PeConfigKind::kElementwiseMul);
            ++stats_.edge_tasks;
            accumulate(m, dp.run_elementwise_mul(gate, x.row(u)));
          }
          store(v, activate(pe::Activation::kRelu,
                            ring_mat_vec(params.w, m, stages_for(v))));
          break;
        }
        case gnn::GnnModel::kGraphSagePool: {
          gnn::Vector mx(f, 0.0);
          bool first = true;
          for (VertexId u : nb) {
            if (first) {
              mx.assign(pooled.row(u).begin(), pooled.row(u).end());
              first = false;
            } else {
              dp.configure(pe::PeConfigKind::kAccumulate);
              dp.run_elementwise_max(mx, pooled.row(u));
              ++stats_.accumulations;
            }
          }
          const gnn::Vector m = gnn::concat(mx, x.row(v));  // PPU concat
          ++stats_.ppu_activations;
          gnn::Vector y = ring_mat_vec(params.w, m, stages_for(v));
          accumulate(y, params.bias);
          store(v, activate(pe::Activation::kRelu, y));
          break;
        }
        case gnn::GnnModel::kEdgeConv1:
        case gnn::GnnModel::kEdgeConv5: {
          AURORA_CHECK(!params.mlp.empty());
          const std::size_t h = params.mlp.back().rows();
          gnn::Vector mx(h, 0.0);
          bool first = true;
          for (VertexId u : nb) {
            dp.configure(pe::PeConfigKind::kAccumulate);
            gnn::Vector e = dp.run_subtract(x.row(u), x.row(v));
            ++stats_.edge_tasks;
            e = ring_mat_vec(params.mlp[0], e, stages_for(v));
            for (std::size_t l = 1; l < params.mlp.size(); ++l) {
              e = ring_mat_vec(params.mlp[l],
                               activate(pe::Activation::kRelu, e),
                               stages_for(v));
            }
            if (first) {
              mx = e;
              first = false;
            } else {
              dp.configure(pe::PeConfigKind::kAccumulate);
              dp.run_elementwise_max(mx, e);
              ++stats_.accumulations;
            }
          }
          store(v, mx);
          break;
        }
      }
    }
  }
  return out;
}

gnn::Matrix FunctionalEngine::run_layer_sparse(
    const graph::Dataset& dataset, gnn::GnnModel model,
    const gnn::SparseMatrix& x, const gnn::ReferenceParams& params) {
  AURORA_CHECK_MSG(
      gnn::model_category(model) == gnn::GnnCategory::kConvolutional,
      "sparse layer-0 execution is defined for the convolutional models");
  const graph::CsrGraph& g = dataset.graph;
  const std::size_t n = g.num_vertices();
  AURORA_CHECK(x.rows() == n);
  const std::size_t f = x.cols();

  pe::PeDatapath dp{config_.pe.datapath};
  const pe::Ppu ppu{config_.pe.ppu};
  const std::uint32_t stages =
      std::clamp<std::uint32_t>(config_.ring_size, 2, config_.array_dim);

  auto ring_mat_vec = [&](const gnn::Matrix& w, std::span<const double> in) {
    const std::size_t slice = (w.cols() + stages - 1) / stages;
    gnn::Vector partial(w.rows(), 0.0);
    for (std::uint32_t j = 0; j < stages; ++j) {
      const std::size_t lo = static_cast<std::size_t>(j) * slice;
      if (lo >= w.cols()) break;
      const std::size_t hi = std::min(w.cols(), lo + slice);
      const gnn::Matrix ws = column_slice(w, lo, hi);
      dp.configure(pe::PeConfigKind::kMatVec);
      const gnn::Vector part = dp.run_mat_vec(ws, in.subspan(lo, hi - lo));
      dp.configure(pe::PeConfigKind::kAccumulate);
      dp.run_accumulate(partial, part);
      ++stats_.ring_stages;
    }
    return partial;
  };

  const std::size_t out_cols = params.w.rows();
  gnn::Matrix out(n, model == gnn::GnnModel::kGin ? params.w2.rows()
                                                  : out_cols);
  for (VertexId v = 0; v < n; ++v) {
    const auto nb = g.neighbors(v);
    // Aggregate directly in the compressed domain: sparse axpy per neighbor
    // into a dense accumulator (the owner PE's bank-buffer row).
    gnn::Vector m(f, 0.0);
    switch (model) {
      case gnn::GnnModel::kGcn: {
        const double dv = static_cast<double>(g.degree(v)) + 1.0;
        x.add_scaled_row(m, 1.0 / dv, v);
        for (VertexId u : nb) {
          const double du = static_cast<double>(g.degree(u)) + 1.0;
          x.add_scaled_row(m, 1.0 / std::sqrt(du * dv), u);
          ++stats_.edge_tasks;
        }
        break;
      }
      case gnn::GnnModel::kGraphSageMean: {
        if (nb.empty()) {
          x.add_scaled_row(m, 1.0, v);
        } else {
          for (VertexId u : nb) {
            x.add_scaled_row(m, 1.0 / static_cast<double>(nb.size()), u);
            ++stats_.edge_tasks;
          }
        }
        break;
      }
      case gnn::GnnModel::kGin: {
        x.add_scaled_row(m, 1.0 + params.epsilon, v);
        for (VertexId u : nb) {
          x.add_scaled_row(m, 1.0, u);
          ++stats_.edge_tasks;
        }
        break;
      }
      case gnn::GnnModel::kCommNet: {
        for (VertexId u : nb) {
          x.add_scaled_row(m, 1.0, u);
          ++stats_.edge_tasks;
        }
        break;
      }
      default:
        throw Error("unsupported model in sparse path");
    }
    ++stats_.accumulations;

    gnn::Vector y = ring_mat_vec(params.w, m);
    switch (model) {
      case gnn::GnnModel::kGcn: {
        dp.configure(pe::PeConfigKind::kAccumulate);
        dp.run_accumulate(y, params.bias);
        y = ppu.apply(pe::Activation::kRelu, y);
        ++stats_.ppu_activations;
        break;
      }
      case gnn::GnnModel::kGin: {
        dp.configure(pe::PeConfigKind::kAccumulate);
        dp.run_accumulate(y, params.bias);
        y = ppu.apply(pe::Activation::kRelu, y);
        ++stats_.ppu_activations;
        gnn::Vector y2 = ring_mat_vec(params.w2, y);
        dp.configure(pe::PeConfigKind::kAccumulate);
        dp.run_accumulate(y2, params.bias2);
        y = std::move(y2);
        break;
      }
      default:
        break;
    }
    std::copy(y.begin(), y.end(), out.row(v).begin());
  }
  return out;
}

}  // namespace aurora::core
