// Sub-accelerator formation: turning Algorithm 2's PE split into concrete
// mesh regions, weight-stationary rings, and a composed NoC configuration.
//
// Sub-accelerator A (edge update + aggregation) takes the top rows of the
// mesh; sub-accelerator B (vertex update) the remaining rows, organised into
// per-row rings whose wrap links ride the row bypass wires. Regions are
// row-granular because the DRAM crossbar feeds whole PE rows.
#pragma once

#include <cstdint>
#include <vector>

#include "core/config.hpp"
#include "mapping/mapper.hpp"
#include "mapping/region.hpp"
#include "noc/config.hpp"
#include "partition/partition.hpp"

namespace aurora::core {

struct SubAcceleratorPlan {
  mapping::PeRegion sub_a;
  /// Invalid (rows() == 0) when the partition formed a single accelerator.
  mapping::PeRegion sub_b;
  bool single_accelerator = false;
  /// Weight-stationary rings within sub-B, row-major order.
  std::vector<noc::RingConfig> rings;

  [[nodiscard]] std::uint32_t sub_a_pes() const { return sub_a.num_pes(); }
  [[nodiscard]] std::uint32_t sub_b_pes() const {
    return single_accelerator ? 0 : sub_b.num_pes();
  }
  /// Ring handling vertex v (round-robin assignment).
  [[nodiscard]] const noc::RingConfig& ring_for(VertexId v) const;
};

/// Quantise the partition split to rows and build the rings.
[[nodiscard]] SubAcceleratorPlan make_plan(
    const AuroraConfig& config, const partition::PartitionResult& split);

/// Compose the full NoC configuration for one subgraph: sub-A bypass
/// segments from the degree-aware mapping plus sub-B ring wrap segments and
/// ring overlays.
[[nodiscard]] noc::NocConfig compose_noc_config(
    const SubAcceleratorPlan& plan, const mapping::Mapping& mapping);

}  // namespace aurora::core
