#include "core/dram_traffic.hpp"

#include <cmath>

#include "common/error.hpp"

namespace aurora::core {

Bytes feature_vector_bytes(std::uint32_t feature_dim,
                           const DramTrafficParams& params) {
  if (!params.sparse_input_features) {
    return static_cast<Bytes>(feature_dim) * params.element_bytes;
  }
  // Sparse rows store (index, value) pairs for the nonzeros.
  const double nnz = params.input_feature_density * feature_dim;
  const auto pair_bytes = static_cast<double>(params.element_bytes + 4);
  return static_cast<Bytes>(std::ceil(nnz * pair_bytes));
}

DramTraffic aurora_dram_traffic(const graph::Dataset& dataset,
                                const gnn::Workflow& workflow,
                                const graph::Tiling& tiling,
                                const DramTrafficParams& params) {
  AURORA_CHECK(!tiling.tiles.empty());
  DramTraffic t;
  const auto n = static_cast<Bytes>(dataset.num_vertices());
  const auto m = static_cast<Bytes>(dataset.num_edges());
  const Bytes in_vec = feature_vector_bytes(workflow.layer.in_dim, params);

  t.input_features = n * in_vec;
  t.halo_features =
      static_cast<Bytes>(tiling.total_halo_vertices()) * in_vec;
  // CSR metadata: 8-byte row offsets + 4-byte column ids.
  t.adjacency = n * 8 + m * 4;
  if (gnn::model_has_edge_embeddings(workflow.model)) {
    // Edge features are produced by the edge-update phase and written back
    // for the next layer: one read of the previous value + one write.
    t.edge_embeddings = 2 * m *
                        static_cast<Bytes>(workflow.edge_feature_dim) *
                        params.element_bytes;
  }
  for (const auto& phase : workflow.phases) t.weights += phase.weight_bytes;
  t.output_features = n *
                      static_cast<Bytes>(workflow.layer.out_dim) *
                      params.element_bytes;
  return t;
}

}  // namespace aurora::core
