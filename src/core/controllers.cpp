#include "core/controllers.hpp"

#include "common/error.hpp"

namespace aurora::core {

const char* instr_kind_name(InstrKind k) {
  switch (k) {
    case InstrKind::kConfigureNoc:
      return "CONFIGURE_NOC";
    case InstrKind::kConfigurePes:
      return "CONFIGURE_PES";
    case InstrKind::kLoadSubgraph:
      return "LOAD_SUBGRAPH";
    case InstrKind::kRunEdgeUpdate:
      return "RUN_EDGE_UPDATE";
    case InstrKind::kRunAggregation:
      return "RUN_AGGREGATION";
    case InstrKind::kRunVertexUpdate:
      return "RUN_VERTEX_UPDATE";
    case InstrKind::kStoreOutputs:
      return "STORE_OUTPUTS";
  }
  throw Error("invalid InstrKind");
}

void RequestDispatcher::submit(HostRequest request) {
  request.request_id = ++accepted_;
  queue_.push_back(request);
}

HostRequest RequestDispatcher::next() {
  AURORA_CHECK_MSG(!queue_.empty(), "no pending host request");
  HostRequest r = queue_.front();
  queue_.pop_front();
  return r;
}

InstructionBuffer::InstructionBuffer(std::size_t capacity)
    : capacity_(capacity) {
  AURORA_CHECK(capacity > 0);
}

bool InstructionBuffer::push(Instruction instr) {
  if (full()) return false;
  buffer_.push_back(instr);
  return true;
}

bool InstructionBuffer::pop(Instruction& instr) {
  if (buffer_.empty()) return false;
  instr = buffer_.front();
  buffer_.pop_front();
  return true;
}

std::vector<Instruction> build_instruction_stream(
    const gnn::Workflow& workflow, std::uint32_t num_subgraphs) {
  AURORA_CHECK(num_subgraphs >= 1);
  std::vector<Instruction> stream;
  for (std::uint32_t sg = 0; sg < num_subgraphs; ++sg) {
    stream.push_back({InstrKind::kConfigureNoc, sg});
    stream.push_back({InstrKind::kConfigurePes, sg});
    stream.push_back({InstrKind::kLoadSubgraph, sg});
    if (workflow.needs_edge_update()) {
      stream.push_back({InstrKind::kRunEdgeUpdate, sg});
    }
    stream.push_back({InstrKind::kRunAggregation, sg});
    if (workflow.needs_vertex_update()) {
      stream.push_back({InstrKind::kRunVertexUpdate, sg});
    }
    stream.push_back({InstrKind::kStoreOutputs, sg});
  }
  return stream;
}

ConfigurationUnit::ConfigurationUnit(std::uint32_t array_dim)
    : array_dim_(array_dim), current_(array_dim) {
  AURORA_CHECK(array_dim >= 1);
}

std::uint64_t ConfigurationUnit::apply(const noc::NocConfig& config) {
  const std::uint64_t writes =
      noc::NocConfig::switch_writes_between(current_, config);
  current_ = config;
  ++count_;
  switch_writes_ += writes;
  return writes;
}

}  // namespace aurora::core
