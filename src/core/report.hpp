// Machine-readable reporting: RunMetrics (and comparison grids) as JSON, so
// bench output can feed plotting scripts and regression tracking.
#pragma once

#include <string>
#include <vector>

#include "core/metrics.hpp"

namespace aurora::core {

/// One named run in a comparison report.
struct NamedRun {
  std::string accelerator;
  std::string workload;
  RunMetrics metrics;
};

/// RunMetrics as a single JSON object (stable key order).
[[nodiscard]] std::string metrics_to_json(const RunMetrics& metrics);

/// Field-by-field comparison of two RunMetrics, one "name: a != b" line per
/// mismatching field (empty = bit-identical). Covers every scalar, phase,
/// histogram bucket, counter and heatmap. The "sim.cycles_skipped" counter
/// is ignored: it reports scheduler work (how many cycles fast-forward
/// jumped), not modelled behaviour, and legitimately differs between
/// lockstep and fast-forward runs. Used by the differential fuzzer and the
/// scheduler-equivalence tests.
[[nodiscard]] std::vector<std::string> diff_run_metrics(const RunMetrics& a,
                                                        const RunMetrics& b);

/// A list of named runs as a JSON array.
[[nodiscard]] std::string runs_to_json(const std::vector<NamedRun>& runs);

/// Write `json` to `path` (overwrites).
void write_json_file(const std::string& path, const std::string& json);

}  // namespace aurora::core
