// Machine-readable reporting: RunMetrics (and comparison grids) as JSON, so
// bench output can feed plotting scripts and regression tracking.
#pragma once

#include <string>
#include <vector>

#include "core/metrics.hpp"

namespace aurora::core {

/// One named run in a comparison report.
struct NamedRun {
  std::string accelerator;
  std::string workload;
  RunMetrics metrics;
};

/// RunMetrics as a single JSON object (stable key order).
[[nodiscard]] std::string metrics_to_json(const RunMetrics& metrics);

/// A list of named runs as a JSON array.
[[nodiscard]] std::string runs_to_json(const std::vector<NamedRun>& runs);

/// Write `json` to `path` (overwrites).
void write_json_file(const std::string& path, const std::string& json);

}  // namespace aurora::core
