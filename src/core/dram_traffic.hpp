// Off-package traffic accounting for the Aurora dataflow.
//
// Aurora's DRAM advantage (paper Sec VI-B) comes from three decisions this
// model makes explicit:
//   * weights live only in sub-accelerator B — never duplicated per PE;
//   * sub-A output streams straight into sub-B reuse FIFOs — aggregated
//     features are never spilled to DRAM between phases;
//   * tiles sized to the distributed buffer bound halo re-reads.
#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "gnn/workflow.hpp"
#include "graph/datasets.hpp"
#include "graph/tiling.hpp"

namespace aurora::core {

/// Per-layer DRAM traffic, by source.
struct DramTraffic {
  Bytes input_features = 0;   // owned vertex features, read once
  Bytes halo_features = 0;    // remote endpoints re-read per tile
  Bytes adjacency = 0;        // CSR metadata
  Bytes edge_embeddings = 0;  // models with edge state: read + write
  Bytes weights = 0;          // loaded once per layer into sub-B
  Bytes intermediate_spill = 0;  // always 0 for Aurora (fused phases)
  Bytes output_features = 0;  // written once

  [[nodiscard]] Bytes total() const {
    return input_features + halo_features + adjacency + edge_embeddings +
           weights + intermediate_spill + output_features;
  }
};

struct DramTrafficParams {
  Bytes element_bytes = 8;
  /// True for the first layer, whose input feature matrix is sparse on disk;
  /// hidden layers are dense.
  bool sparse_input_features = false;
  /// Nonzero density of the sparse input features (dataset metadata).
  double input_feature_density = 1.0;
};

/// Aurora's per-layer traffic given the tiling actually used.
[[nodiscard]] DramTraffic aurora_dram_traffic(const graph::Dataset& dataset,
                                              const gnn::Workflow& workflow,
                                              const graph::Tiling& tiling,
                                              const DramTrafficParams& params);

/// Bytes of one vertex's input feature vector under the storage format
/// (sparse CSR-of-features for layer 0, dense otherwise).
[[nodiscard]] Bytes feature_vector_bytes(std::uint32_t feature_dim,
                                         const DramTrafficParams& params);

}  // namespace aurora::core
