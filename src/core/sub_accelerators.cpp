#include "core/sub_accelerators.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace aurora::core {

const noc::RingConfig& SubAcceleratorPlan::ring_for(VertexId v) const {
  AURORA_CHECK_MSG(!rings.empty(), "plan has no vertex-update rings");
  return rings[v % rings.size()];
}

SubAcceleratorPlan make_plan(const AuroraConfig& config,
                             const partition::PartitionResult& split) {
  const std::uint32_t k = config.array_dim;
  AURORA_CHECK(k >= 2);
  SubAcceleratorPlan plan;

  if (split.single_accelerator) {
    plan.single_accelerator = true;
    plan.sub_a = mapping::PeRegion::full(k);
    plan.sub_b = {k, 0, 0};
    return plan;
  }

  // Quantise the PE split to rows, keeping at least one row per side.
  const double frac = static_cast<double>(split.a) /
                      static_cast<double>(split.a + split.b);
  auto rows_a = static_cast<std::uint32_t>(
      std::lround(frac * static_cast<double>(k)));
  rows_a = std::clamp<std::uint32_t>(rows_a, 1, k - 1);
  plan.sub_a = {k, 0, rows_a};
  plan.sub_b = {k, rows_a, k};

  // Rings: split each sub-B row into chunks of ring_size consecutive PEs.
  const std::uint32_t ring_size = std::clamp<std::uint32_t>(
      std::min(config.ring_size, k), 2, k);
  for (std::uint32_t row = rows_a; row < k; ++row) {
    std::uint32_t col = 0;
    while (col < k) {
      std::uint32_t len = std::min(ring_size, k - col);
      // A trailing single PE cannot form a ring; fold it into the previous
      // chunk by extending this one.
      if (k - col - len == 1) ++len;
      noc::RingConfig ring;
      for (std::uint32_t c = col; c < col + len && c < k; ++c) {
        ring.nodes.push_back(row * k + c);
      }
      if (ring.nodes.size() >= 2) {
        plan.rings.push_back(std::move(ring));
      }
      col += len;
    }
  }
  AURORA_CHECK(!plan.rings.empty());
  return plan;
}

noc::NocConfig compose_noc_config(const SubAcceleratorPlan& plan,
                                  const mapping::Mapping& mapping) {
  // Start from the degree-aware bypass configuration for sub-A...
  noc::NocConfig config = mapping::make_bypass_config(mapping);
  if (plan.single_accelerator) return config;

  // ...then add the ring wrap segments and ring overlays for sub-B. Rings of
  // length 2 wrap over the mesh link itself and need no segment.
  for (const auto& ring : plan.rings) {
    const auto k = mapping.region.mesh_k;
    const noc::NodeId first = ring.nodes.front();
    const noc::NodeId last = ring.nodes.back();
    const std::uint32_t row = first / k;
    const std::uint32_t c0 = first % k;
    const std::uint32_t c1 = last % k;
    if (c1 - c0 >= 2) {
      config.add_row_segment({row, c0, c1});
    }
    config.add_ring(ring);
  }
  return config;
}

}  // namespace aurora::core
