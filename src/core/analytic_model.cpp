#include "core/analytic_model.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/error.hpp"
#include "core/controllers.hpp"
#include "core/sub_accelerators.hpp"
#include "mapping/mapper.hpp"
#include "mapping/quality.hpp"
#include "partition/partition.hpp"

namespace aurora::core {

AnalyticModel::AnalyticModel(const AuroraConfig& config,
                             const AnalyticCalibration& calibration)
    : config_(config), cal_(calibration) {
  AURORA_CHECK(config.array_dim >= 2);
}

RunMetrics AnalyticModel::run_layer(const graph::Dataset& dataset,
                                    const gnn::Workflow& wf,
                                    const DramTrafficParams& traffic) const {
  return run_impl(dataset, wf, traffic, /*degree_aware=*/true);
}

RunMetrics AnalyticModel::run_layer_hashing(
    const graph::Dataset& dataset, const gnn::Workflow& wf,
    const DramTrafficParams& traffic) const {
  return run_impl(dataset, wf, traffic, /*degree_aware=*/false);
}

RunMetrics AnalyticModel::run_impl(const graph::Dataset& dataset,
                                   const gnn::Workflow& wf,
                                   const DramTrafficParams& traffic_params,
                                   bool degree_aware) const {
  const AuroraConfig& cfg = config_;
  const graph::CsrGraph& g = dataset.graph;
  const Bytes elem = cfg.element_bytes;
  const auto fv = wf.edge_feature_dim;

  // ---- decisions (identical to the cycle engine) --------------------------
  const auto split = partition::partition(
      partition::partition_input_from_workflow(wf, cfg.num_pes(),
                                               cfg.flops_per_pe));
  const SubAcceleratorPlan plan = make_plan(cfg, split);

  graph::TilingParams tparams;
  tparams.feature_bytes = feature_vector_bytes(wf.layer.in_dim, traffic_params);
  tparams.edge_bytes = 8;
  // Tiles size against the WHOLE distributed buffer: features spread across
  // both sub-accelerators (the DRAM crossbar feeds every PE row), with
  // weights confined to sub-B (paper Sec VI-B: "fully utilize the on-chip
  // buffer capacity").
  tparams.capacity_bytes = static_cast<Bytes>(
      cfg.buffer_fill_fraction * static_cast<double>(cfg.total_buffer_bytes()));
  const graph::Tiling tiling = graph::tile_graph(g, tparams);
  const DramTraffic traffic =
      aurora_dram_traffic(dataset, wf, tiling, traffic_params);

  // ---- sample tiles for mapping quality -----------------------------------
  mapping::MapperParams mparams;
  mparams.region = plan.sub_a;
  // C_PE: buffer capacity reserved per S_PE for high-degree vertices,
  // capped so hotspot vertices spread over the S_PEs instead of piling onto
  // a few (Algorithm 1 maps them round-robin).
  mparams.c_pe_slots = std::clamp<std::uint32_t>(
      static_cast<std::uint32_t>(cfg.pe.bank_buffer_bytes /
                                 std::max<Bytes>(1, tparams.feature_bytes) /
                                 16),
      1, 8);

  const std::size_t num_tiles = tiling.num_tiles();
  const std::size_t samples = std::min<std::size_t>(cal_.sampled_tiles,
                                                    num_tiles);
  double sum_avg_hops = 0.0;
  double sum_cross_frac = 0.0;
  double sum_imbalance = 0.0;
  double sum_bypass_frac = 0.0;
  std::uint64_t switch_writes_per_tile = 0;
  for (std::size_t i = 0; i < samples; ++i) {
    const std::size_t ti = i * num_tiles / samples;
    const graph::Tile& tile = tiling.tiles[ti];
    mparams.pe_vertex_slots = std::max<std::uint32_t>(
        4, 2 * tile.num_vertices() / plan.sub_a_pes() + 2);
    const mapping::Mapping map =
        degree_aware
            ? mapping::degree_aware_map(g, tile.vertex_begin, tile.vertex_end,
                                        mparams)
            : mapping::hashing_map(g, tile.vertex_begin, tile.vertex_end,
                                   mparams);
    const noc::NocConfig noc_cfg =
        degree_aware ? compose_noc_config(plan, map)
                     : noc::NocConfig(cfg.array_dim);
    const auto q = mapping::evaluate_mapping(g, tile.vertex_begin,
                                             tile.vertex_end, map, noc_cfg);
    const double msgs = static_cast<double>(q.cross_pe_messages);
    const double all_edges =
        std::max(1.0, static_cast<double>(q.cross_pe_messages + q.local_edges));
    sum_avg_hops += q.avg_hops;
    sum_cross_frac += msgs / all_edges;
    sum_imbalance += q.pe_load_imbalance();
    sum_bypass_frac +=
        msgs > 0.0 ? static_cast<double>(q.bypass_messages) / msgs : 0.0;
    switch_writes_per_tile =
        std::max(switch_writes_per_tile, noc_cfg.total_switch_states());
  }
  const double avg_hops = sum_avg_hops / static_cast<double>(samples);
  const double cross_frac = sum_cross_frac / static_cast<double>(samples);
  const double imbalance = sum_imbalance / static_cast<double>(samples);
  const double bypass_frac = sum_bypass_frac / static_cast<double>(samples);

  // ---- per-layer totals ----------------------------------------------------
  const double m = static_cast<double>(wf.num_edges);
  const double n = static_cast<double>(wf.num_vertices);
  auto flits_of = [&](double bytes) {
    return std::ceil(bytes / static_cast<double>(cfg.noc.flit_bytes));
  };
  // Aggregation messages move in stored format: sparse input features stay
  // compressed on chip unless a MatVec-style edge update densifies them
  // (mirrors the cycle engine's message sizing).
  const auto& eu_op_list = wf.phase(gnn::Phase::kEdgeUpdate).ops;
  const bool eu_densifies =
      std::find(eu_op_list.begin(), eu_op_list.end(), gnn::OpKind::kMatVec) !=
      eu_op_list.end();
  const double msg_bytes =
      (wf.update_first || eu_densifies)
          ? static_cast<double>(fv) * static_cast<double>(elem)
          : static_cast<double>(
                feature_vector_bytes(wf.layer.in_dim, traffic_params));
  const double flits_per_msg = flits_of(msg_bytes);
  const double cross_msgs = m * cross_frac;

  // Flit-hop volume of the three traffic classes: aggregation gathers
  // (sampled hop counts), m_v slices scattering to the weight-stationary
  // ring PEs just across the region boundary, and the single-hop H-wide
  // partial rotations inside the rings (mirrors the cycle engine dataflow).
  const double agg_flit_hops = cross_msgs * flits_per_msg * avg_hops;
  double mv_flit_hops = 0.0;
  double ring_flit_hops = 0.0;
  const auto ring_size =
      static_cast<double>(std::clamp<std::uint32_t>(cfg.ring_size, 2,
                                                    cfg.array_dim));
  if (!plan.single_accelerator) {
    const double boundary_hops =
        static_cast<double>(plan.sub_a.rows()) / 2.0 + 3.0;
    const double h_bytes = static_cast<double>(wf.layer.out_dim) *
                           static_cast<double>(elem);
    if (wf.update_first) {
      // Transform runs on locally-resident slices; only the H-wide
      // transformed vector crosses back into sub-A.
      mv_flit_hops = n * flits_of(h_bytes) * boundary_hops;
    } else {
      const double slice = std::ceil(static_cast<double>(fv) / ring_size);
      mv_flit_hops = n * ring_size *
                     flits_of(slice * static_cast<double>(elem)) *
                     boundary_hops;
    }
    ring_flit_hops = n * (ring_size - 1.0) * flits_of(h_bytes);
  }
  const double total_flit_hops =
      agg_flit_hops + mv_flit_hops + ring_flit_hops;

  // On-chip communication time: array-level transport throughput, bounded
  // below by the hotspot PE's ejection serialisation.
  const double a_pes = static_cast<double>(plan.sub_a_pes());
  const double active_pes =
      plan.single_accelerator ? a_pes
                              : static_cast<double>(cfg.num_pes());
  const double transport =
      total_flit_hops / (cal_.flit_hops_per_cycle_per_pe * active_pes);
  // Hotspot PEs under the degree-aware policy sit on S_PEs whose row and
  // column bypass endpoints roughly triple their usable ingress bandwidth.
  const double hotspot_ports = degree_aware ? 3.0 : 1.0;
  const double hotspot = (2.0 * cross_msgs / std::max(1.0, a_pes)) *
                         imbalance * flits_per_msg *
                         cal_.hotspot_serialization / hotspot_ports;
  const double comm_cycles = std::max(transport, hotspot);
  if (std::getenv("AURORA_DEBUG_ANALYTIC") != nullptr) {
    std::fprintf(stderr,
                 "[analytic] n=%u m=%llu uf=%d msg=%.0f flits=%.0f cross=%.0f "
                 "hops=%.2f imb=%.2f agg=%.0f mv=%.0f ring=%.0f transport=%.0f "
                 "hotspot=%.0f\n",
                 wf.num_vertices, (unsigned long long)wf.num_edges,
                 (int)wf.update_first, msg_bytes, flits_per_msg, cross_msgs,
                 avg_hops, imbalance, agg_flit_hops, mv_flit_hops,
                 ring_flit_hops, transport, hotspot);
  }

  // Compute time per stage (Algorithm 2's estimates plus task overheads).
  const double ops_a =
      static_cast<double>(wf.phase(gnn::Phase::kEdgeUpdate).total_ops +
                          wf.phase(gnn::Phase::kAggregation).total_ops);
  const double ops_b =
      static_cast<double>(wf.phase(gnn::Phase::kVertexUpdate).total_ops);
  const double tasks_a =
      m * (wf.needs_edge_update() ? 2.0 : 1.0);  // EU task + accumulate
  double compute_a = ops_a / (a_pes * cfg.flops_per_pe) +
                     tasks_a * cal_.per_task_overhead /
                         std::max(1.0, a_pes);
  // Per-PE serialization: the busiest PE executes its vertices' edge tasks
  // one after another. With per-edge work w and E_max incident edges on the
  // hotspot PE, that PE alone needs E_max * w cycles — the critical path
  // for edge-heavy models (EdgeConv, pooling) regardless of array size.
  {
    const double per_edge_ops =
        m > 0 ? ops_a / m : 0.0;  // edge update + accumulate per edge
    const double max_pe_edges =
        imbalance * cross_msgs / std::max(1.0, a_pes);
    const double hotspot_compute =
        max_pe_edges * (per_edge_ops / cfg.flops_per_pe +
                        cal_.per_task_overhead);
    compute_a = std::max(compute_a, hotspot_compute);
  }
  const double b_pes = std::max(1.0, static_cast<double>(plan.sub_b_pes()));
  const double compute_b =
      plan.single_accelerator
          ? 0.0
          : ops_b / (b_pes * cfg.flops_per_pe) +
                static_cast<double>(wf.num_vertices) *
                    static_cast<double>(std::min<std::uint32_t>(
                        cfg.ring_size, cfg.array_dim)) *
                    cal_.per_task_overhead / b_pes;

  // DRAM time: streamed at calibrated efficiency.
  const double dram_cycles =
      static_cast<double>(traffic.total()) /
      (cfg.dram.peak_bytes_per_cycle() * cal_.dram_efficiency);

  // The three engines (DRAM, sub-A with its NoC, sub-B) run as a pipeline
  // over tiles: steady-state throughput is set by the slowest stage.
  const double stage = std::max({compute_a, comm_cycles, compute_b});
  const double fill = (compute_a + comm_cycles + compute_b - stage) /
                      std::max(1.0, static_cast<double>(num_tiles));
  const double total = std::max(stage + fill, dram_cycles);

  // ---- metrics -------------------------------------------------------------
  RunMetrics metrics;
  metrics.partition_a = plan.sub_a_pes();
  metrics.partition_b = plan.sub_b_pes();
  metrics.num_subgraphs = static_cast<std::uint32_t>(num_tiles);
  metrics.utilization = split.single_accelerator ? 1.0 : split.utilization();
  metrics.compute_cycles = static_cast<Cycle>(compute_a + compute_b);
  metrics.onchip_comm_cycles = static_cast<Cycle>(comm_cycles);
  metrics.dram_cycles = static_cast<Cycle>(dram_cycles);
  metrics.reconfig_cycles =
      cfg.reconfiguration_cycles() + AuroraConfig::kHeuristicCycles;
  metrics.total_cycles =
      static_cast<Cycle>(total) + metrics.reconfig_cycles;
  metrics.dram_bytes = traffic.total();
  metrics.dram_accesses = traffic.total() / cfg.dram.burst_bytes;
  metrics.noc_messages = static_cast<std::uint64_t>(cross_msgs);
  metrics.avg_hops = avg_hops;
  metrics.bypass_messages =
      static_cast<std::uint64_t>(cross_msgs * bypass_frac);
  metrics.reconfigurations = num_tiles;
  metrics.switch_writes = switch_writes_per_tile * num_tiles;

  // Per-phase attribution from the closed-form terms — same schema and the
  // same sum invariants as the cycle engine (phase dram_bytes sum to
  // dram_bytes, phase noc_messages to noc_messages). Sub-A's compute is
  // split between edge update and aggregation by op count; aggregation also
  // owns the gather traffic's transport time, vertex update sub-B's ring
  // compute. Cross-PE gather messages are aggregation; the slice/ring/
  // transform traffic is not separately counted in cross_msgs, so vertex
  // update reports zero messages here.
  {
    const double eu_ops =
        static_cast<double>(wf.phase(gnn::Phase::kEdgeUpdate).total_ops);
    const double eu_frac = ops_a > 0.0 ? eu_ops / ops_a : 0.0;
    metrics.phase(gnn::Phase::kEdgeUpdate).active_cycles =
        static_cast<Cycle>(compute_a * eu_frac);
    metrics.phase(gnn::Phase::kAggregation).active_cycles =
        static_cast<Cycle>(compute_a * (1.0 - eu_frac) + comm_cycles);
    metrics.phase(gnn::Phase::kVertexUpdate).active_cycles =
        static_cast<Cycle>(compute_b);
    metrics.phase(gnn::Phase::kAggregation).noc_messages =
        metrics.noc_messages;
    const gnn::Phase load_phase = wf.needs_edge_update()
                                      ? gnn::Phase::kEdgeUpdate
                                      : gnn::Phase::kAggregation;
    const gnn::Phase out_phase = wf.needs_vertex_update()
                                     ? gnn::Phase::kVertexUpdate
                                     : load_phase;
    metrics.phase(load_phase).dram_bytes +=
        traffic.input_features + traffic.halo_features + traffic.adjacency +
        traffic.edge_embeddings;
    metrics.phase(out_phase).dram_bytes +=
        traffic.weights + traffic.output_features + traffic.intermediate_spill;
  }

  metrics.events.fp_multiplies = wf.total_ops() / 2;
  metrics.events.fp_adds = wf.total_ops() - metrics.events.fp_multiplies;
  metrics.events.dram_bytes = metrics.dram_bytes;
  // Energy charges payload bytes x hops (header/padding excluded), matching
  // the baselines' accounting granularity.
  const double payload_hops =
      cross_msgs * msg_bytes * avg_hops +
      (mv_flit_hops + ring_flit_hops) * static_cast<double>(cfg.noc.flit_bytes);
  const auto payload_hop_bytes = static_cast<Bytes>(payload_hops);
  metrics.events.bypass_link_bytes =
      static_cast<Bytes>(static_cast<double>(payload_hop_bytes) * bypass_frac);
  metrics.events.noc_link_bytes =
      payload_hop_bytes - metrics.events.bypass_link_bytes;
  metrics.events.router_bytes = payload_hop_bytes;
  // Operand + result traffic through the distributed bank buffers.
  metrics.events.sram_large_bytes =
      2 * static_cast<Bytes>(cross_msgs) * fv * elem +
      2 * traffic.input_features + traffic.output_features;
  metrics.events.reconfig_switch_writes = metrics.switch_writes;
  metrics.events.active_cycles = metrics.total_cycles;
  metrics.energy =
      energy::compute_energy(metrics.events, energy::EnergyTable{});
  return metrics;
}

}  // namespace aurora::core
