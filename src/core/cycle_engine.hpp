// The cycle-accurate execution engine: simulates one GNN layer at
// flit/task granularity over the PE array, the reconfigurable NoC and the
// DRAM model, driven by the degree-aware mapping and partition decisions.
//
// Execution of one tile (subgraph), mirroring Fig 2:
//   1. degree-aware mapping of the tile onto sub-accelerator A;
//   2. NoC reconfiguration (bypass segments + sub-B rings);
//   3. DRAM load of the tile's working set (overlapped with the previous
//      tile's compute via the pipeline composition in run_layer);
//   4. edge update at each source PE -> message per cross-PE edge ->
//      accumulation at the owner PE -> aggregated vector streams into a
//      weight-stationary ring of sub-accelerator B -> activation ->
//      writeback.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/config.hpp"
#include "core/dram_traffic.hpp"
#include "core/metrics.hpp"
#include "graph/datasets.hpp"
#include "gnn/workflow.hpp"
#include "sim/trace.hpp"

namespace aurora::sim {
class Sampler;
}  // namespace aurora::sim

namespace aurora::core {

class CycleEngine {
 public:
  explicit CycleEngine(const AuroraConfig& config);
  ~CycleEngine();

  CycleEngine(const CycleEngine&) = delete;
  CycleEngine& operator=(const CycleEngine&) = delete;

  /// Simulate one layer end to end. Deterministic.
  [[nodiscard]] RunMetrics run_layer(const graph::Dataset& dataset,
                                     const gnn::Workflow& workflow,
                                     const DramTrafficParams& traffic);

  /// Attach an event tracer (may be null). The engine records tile starts,
  /// reconfigurations, DRAM streams, packet injection/delivery and PE task
  /// completions when the tracer is enabled.
  void set_tracer(sim::Tracer* tracer) { tracer_ = tracer; }

  /// Attach a time-series sampler (may be null). Each run registers its
  /// components' metrics in a per-run registry, points the sampler's probes
  /// at them, and detaches the probes again before returning (the components
  /// are run-local). Sampling never changes simulated behaviour: the sampler
  /// is a read-only component whose ticks are no-ops for everything else.
  void set_sampler(sim::Sampler* sampler) { sampler_ = sampler; }

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  AuroraConfig config_;
  sim::Tracer* tracer_ = nullptr;
  sim::Sampler* sampler_ = nullptr;
};

}  // namespace aurora::core
