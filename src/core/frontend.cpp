#include "core/frontend.hpp"

#include "common/error.hpp"

namespace aurora::core {

InstructionDispatcher::InstructionDispatcher(InstructionBuffer& buffer,
                                             Cycle decode_cycles)
    : sim::Component("instruction-dispatcher"),
      buffer_(buffer),
      decode_cycles_(decode_cycles) {
  AURORA_CHECK(decode_cycles >= 1);
}

void InstructionDispatcher::tick(Cycle now) {
  if (buffer_.empty()) return;
  if (externally_stalled_ || now < next_issue_at_) {
    ++stall_cycles_;
    return;
  }
  Instruction instr;
  const bool ok = buffer_.pop(instr);
  AURORA_CHECK(ok);
  ++issued_;
  next_issue_at_ = now + decode_cycles_;
  if (on_issue_) on_issue_(instr, now);
}

bool InstructionDispatcher::idle() const { return buffer_.empty(); }

}  // namespace aurora::core
