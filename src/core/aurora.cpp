#include "core/aurora.hpp"

#include "common/error.hpp"

namespace aurora::core {

AuroraConfig AuroraConfig::paper() {
  AuroraConfig c;
  c.array_dim = 32;
  c.noc.k = 32;
  c.pe.bank_buffer_bytes = 100 * 1024;
  c.mode = SimMode::kAnalytic;  // cycle-accurate at paper scale is untenable
  return c;
}

AuroraConfig AuroraConfig::bench() {
  AuroraConfig c;
  c.array_dim = 16;
  c.noc.k = 16;
  c.pe.bank_buffer_bytes = 100 * 1024;
  c.mode = SimMode::kCycleAccurate;
  return c;
}

GnnJob GnnJob::two_layer(gnn::GnnModel model, const graph::DatasetSpec& spec,
                         std::uint32_t hidden_dim) {
  GnnJob job;
  job.model = model;
  job.layers.push_back({spec.feature_dim, hidden_dim});
  job.layers.push_back({hidden_dim, spec.num_classes});
  return job;
}

GnnJob GnnJob::preset(gnn::GnnModel model, const graph::DatasetSpec& spec,
                      std::uint32_t hidden_dim) {
  std::size_t depth = 2;
  switch (model) {
    case gnn::GnnModel::kGin:
      depth = 5;
      break;
    case gnn::GnnModel::kEdgeConv1:
    case gnn::GnnModel::kEdgeConv5:
      depth = 4;
      break;
    default:
      break;
  }
  GnnJob job;
  job.model = model;
  job.layers.push_back({spec.feature_dim, hidden_dim});
  for (std::size_t i = 2; i < depth; ++i) {
    job.layers.push_back({hidden_dim, hidden_dim});
  }
  job.layers.push_back({hidden_dim, std::max<std::uint32_t>(
                                        1, spec.num_classes)});
  return job;
}

RunMetrics& RunMetrics::operator+=(const RunMetrics& other) {
  total_cycles += other.total_cycles;
  compute_cycles += other.compute_cycles;
  onchip_comm_cycles += other.onchip_comm_cycles;
  dram_cycles += other.dram_cycles;
  reconfig_cycles += other.reconfig_cycles;
  dram_bytes += other.dram_bytes;
  dram_accesses += other.dram_accesses;
  noc_messages += other.noc_messages;
  // Weighted by message count so the combined average stays meaningful.
  const double total_msgs =
      static_cast<double>(noc_messages);
  if (total_msgs > 0) {
    avg_hops = (avg_hops * (total_msgs -
                            static_cast<double>(other.noc_messages)) +
                other.avg_hops * static_cast<double>(other.noc_messages)) /
               total_msgs;
  }
  bypass_messages += other.bypass_messages;
  events += other.events;
  energy += other.energy;
  partition_a = other.partition_a;  // keep the latest layer's decision
  partition_b = other.partition_b;
  num_subgraphs += other.num_subgraphs;
  reconfigurations += other.reconfigurations;
  switch_writes += other.switch_writes;
  utilization = (utilization + other.utilization) / 2.0;
  if (!other.noc_heatmap.empty()) noc_heatmap = other.noc_heatmap;
  if (!other.pe_heatmap.empty()) pe_heatmap = other.pe_heatmap;
  counters.merge(other.counters);
  pe_utilization = (pe_utilization + other.pe_utilization) / 2.0;
  for (std::size_t p = 0; p < phases.size(); ++p) phases[p] += other.phases[p];
  noc_packet_latency.merge(other.noc_packet_latency);
  dram_request_latency.merge(other.dram_request_latency);
  return *this;
}

AuroraAccelerator::AuroraAccelerator(const AuroraConfig& config)
    : config_(config), cycle_engine_(config), analytic_model_(config) {
  AURORA_CHECK_MSG(config.noc.k == config.array_dim,
                   "NoC mesh size must match the PE array dimension");
}

RunMetrics AuroraAccelerator::run_layer(const graph::Dataset& dataset,
                                        gnn::GnnModel model,
                                        const gnn::LayerConfig& layer,
                                        std::uint32_t layer_index) {
  const gnn::Workflow wf = gnn::generate_workflow(
      model, layer, dataset.num_vertices(), dataset.num_edges());
  DramTrafficParams traffic;
  traffic.element_bytes = config_.element_bytes;
  traffic.sparse_input_features = (layer_index == 0);
  traffic.input_feature_density = dataset.spec.feature_density;
  if (config_.mode == SimMode::kCycleAccurate) {
    return cycle_engine_.run_layer(dataset, wf, traffic);
  }
  if (config_.mapping_policy == MappingPolicy::kHashing) {
    return analytic_model_.run_layer_hashing(dataset, wf, traffic);
  }
  return analytic_model_.run_layer(dataset, wf, traffic);
}

RunMetrics AuroraAccelerator::run(const graph::Dataset& dataset,
                                  const GnnJob& job) {
  AURORA_CHECK(!job.layers.empty());
  RunMetrics total;
  for (std::size_t i = 0; i < job.layers.size(); ++i) {
    total += run_layer(dataset, job.model, job.layers[i],
                       static_cast<std::uint32_t>(i));
  }
  return total;
}

std::vector<RunMetrics> AuroraAccelerator::run_pending(
    const graph::Dataset& dataset) {
  std::vector<RunMetrics> results;
  while (dispatcher_.has_pending()) {
    const HostRequest req = dispatcher_.next();
    results.push_back(run_layer(dataset, req.model, req.layer));
  }
  return results;
}

}  // namespace aurora::core
