#include "core/scheduler.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"

namespace aurora::core {

std::string job_signature(const GnnJob& job) {
  std::string key = gnn::model_name(job.model);
  for (const gnn::LayerConfig& layer : job.layers) {
    key += '/';
    key += std::to_string(layer.in_dim);
    key += 'x';
    key += std::to_string(layer.out_dim);
    key += '@';
    key += std::to_string(layer.element_bytes);
  }
  return key;
}

double ScheduleResult::avg_latency() const {
  if (outcomes.empty()) return 0.0;
  double total = 0.0;
  for (const auto& o : outcomes) total += static_cast<double>(o.latency());
  return total / static_cast<double>(outcomes.size());
}

Cycle Scheduler::lead_dram_cycles(const RunMetrics& metrics) {
  return metrics.dram_cycles / std::max<Cycle>(1, metrics.num_subgraphs);
}

Cycle Scheduler::tail_compute_cycles(const RunMetrics& metrics) {
  return metrics.compute_cycles / std::max<Cycle>(1, metrics.num_subgraphs);
}

Cycle Scheduler::overlap_cycles(Cycle prev_compute_tail,
                                const RunMetrics& next) {
  return std::min(prev_compute_tail, lead_dram_cycles(next));
}

RequestOutcome Scheduler::place(ChipTimeline& timeline, std::string label,
                                RunMetrics metrics, Cycle not_before,
                                bool share_configuration) {
  RequestOutcome outcome;
  outcome.label = std::move(label);
  if (share_configuration) {
    outcome.reconfig_saved = metrics.reconfig_cycles;
    metrics.total_cycles -= metrics.reconfig_cycles;
    metrics.reconfig_cycles = 0;
  }
  outcome.metrics = std::move(metrics);

  // The request's leading DRAM phase can hide under the previous request's
  // trailing compute (the PE array is still busy while the DRAM channels
  // idle out).
  outcome.overlap_hidden =
      overlap_cycles(timeline.prev_compute_tail, outcome.metrics);
  const Cycle earliest = timeline.busy_until >= outcome.overlap_hidden
                             ? timeline.busy_until - outcome.overlap_hidden
                             : 0;
  outcome.start_cycle = std::max(not_before, earliest);
  outcome.finish_cycle = outcome.start_cycle + outcome.metrics.total_cycles;
  timeline.busy_until = outcome.finish_cycle;
  // Tail compute of this request (last tile's compute not overlapped with
  // any following DRAM yet).
  timeline.prev_compute_tail = tail_compute_cycles(outcome.metrics);
  return outcome;
}

RequestOutcome Scheduler::serve_on(AuroraAccelerator& accelerator,
                                   ChipTimeline& timeline,
                                   const graph::Dataset& dataset,
                                   ScheduledRequest request, Cycle not_before,
                                   bool share_configuration) {
  return place(timeline, std::move(request.label),
               accelerator.run(dataset, request.job), not_before,
               share_configuration);
}

RequestOutcome Scheduler::serve(ChipTimeline& timeline,
                                const graph::Dataset& dataset,
                                ScheduledRequest request, Cycle not_before,
                                bool share_configuration) {
  return serve_on(accelerator_, timeline, dataset, std::move(request),
                  not_before, share_configuration);
}

ScheduleResult Scheduler::run(const graph::Dataset& dataset,
                              std::vector<ScheduledRequest> queue) {
  AURORA_CHECK(!queue.empty());
  ScheduleResult result;
  ChipTimeline timeline;
  for (auto& req : queue) {
    RequestOutcome outcome = serve(timeline, dataset, std::move(req));
    result.overlap_savings += outcome.overlap_hidden;
    result.outcomes.push_back(std::move(outcome));
  }
  result.makespan = timeline.busy_until;
  return result;
}

}  // namespace aurora::core
