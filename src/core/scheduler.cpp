#include "core/scheduler.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace aurora::core {

double ScheduleResult::avg_latency() const {
  if (outcomes.empty()) return 0.0;
  double total = 0.0;
  for (const auto& o : outcomes) total += static_cast<double>(o.latency());
  return total / static_cast<double>(outcomes.size());
}

Cycle Scheduler::lead_dram_cycles(const RunMetrics& metrics) {
  return metrics.dram_cycles / std::max<Cycle>(1, metrics.num_subgraphs);
}

Cycle Scheduler::tail_compute_cycles(const RunMetrics& metrics) {
  return metrics.compute_cycles / std::max<Cycle>(1, metrics.num_subgraphs);
}

Cycle Scheduler::overlap_cycles(Cycle prev_compute_tail,
                                const RunMetrics& next) {
  return std::min(prev_compute_tail, lead_dram_cycles(next));
}

ScheduleResult Scheduler::run(const graph::Dataset& dataset,
                              std::vector<ScheduledRequest> queue) {
  AURORA_CHECK(!queue.empty());
  ScheduleResult result;
  Cycle timeline = 0;
  Cycle prev_compute_tail = 0;

  for (auto& req : queue) {
    RequestOutcome outcome;
    outcome.label = std::move(req.label);
    outcome.metrics = accelerator_.run(dataset, req.job);

    // The request's leading DRAM phase can hide under the previous
    // request's trailing compute (the PE array is still busy while the DRAM
    // channels idle out).
    const Cycle overlap = overlap_cycles(prev_compute_tail, outcome.metrics);
    result.overlap_savings += overlap;

    outcome.start_cycle = timeline >= overlap ? timeline - overlap : 0;
    outcome.finish_cycle = outcome.start_cycle + outcome.metrics.total_cycles;
    timeline = outcome.finish_cycle;

    // Tail compute of this request (last tile's compute not overlapped with
    // any following DRAM yet).
    prev_compute_tail = tail_compute_cycles(outcome.metrics);
    result.outcomes.push_back(std::move(outcome));
  }
  result.makespan = timeline;
  return result;
}

}  // namespace aurora::core
