// Functional execution of a GNN layer through the MAPPED, DISTRIBUTED
// dataflow.
//
// Where the cycle engine models *time* and abstracts values, this engine
// models *values* and abstracts time: it walks the exact same decisions —
// Algorithm 2 partition, sub-accelerator plan, tiling, Algorithm 1 mapping —
// and executes the real arithmetic the dataflow implies:
//   * per-edge updates run through the structural PE datapath (scalar,
//     dot-product, gate, MLP wirings) at the source vertex's PE;
//   * aggregation accumulates (or max-reduces) at the owner PE in the
//     adders-only wiring;
//   * the vertex update is computed weight-stationary: the weight matrix is
//     column-sliced across the ring PEs, each computes its partial on its
//     m_v slice, and the H-wide partial accumulates stage by stage around
//     the ring, finishing in the last PE's PPU (activation / concat).
//
// Tests require its output to match the dense golden executor to
// double-precision round-off for every model in the zoo — the paper's
// "unified architecture supports all these models" claim, checked on values
// rather than asserted.
#pragma once

#include "core/config.hpp"
#include "gnn/reference.hpp"
#include "gnn/sparse.hpp"
#include "gnn/tensor.hpp"
#include "graph/datasets.hpp"

namespace aurora::core {

/// Per-run statistics proving the distributed path was actually exercised.
struct FunctionalStats {
  std::uint64_t edge_tasks = 0;       // per-edge datapath executions
  std::uint64_t accumulations = 0;    // owner-PE reduce steps
  std::uint64_t ring_stages = 0;      // weight-stationary partial products
  std::uint64_t ppu_activations = 0;  // PPU invocations
  std::uint32_t tiles = 0;
  std::uint32_t sub_a_pes = 0;
  std::uint32_t sub_b_pes = 0;
};

class FunctionalEngine {
 public:
  explicit FunctionalEngine(const AuroraConfig& config);

  /// Execute one layer of `model` over `dataset.graph` with input features
  /// `x` and parameters `params` (same structures the golden executor
  /// takes). Returns the output feature matrix.
  [[nodiscard]] gnn::Matrix run_layer(const graph::Dataset& dataset,
                                      gnn::GnnModel model,
                                      const gnn::Matrix& x,
                                      const gnn::ReferenceParams& params);

  /// Layer-0 variant: input features arrive in their stored sparse format
  /// and every edge/aggregation kernel operates on compressed rows — the
  /// value-level counterpart of the traffic models' sparse accounting.
  /// Supported for the convolutional models (whose aggregation is linear);
  /// the result must equal run_layer on the densified input.
  [[nodiscard]] gnn::Matrix run_layer_sparse(
      const graph::Dataset& dataset, gnn::GnnModel model,
      const gnn::SparseMatrix& x, const gnn::ReferenceParams& params);

  [[nodiscard]] const FunctionalStats& stats() const { return stats_; }

 private:
  AuroraConfig config_;
  FunctionalStats stats_;
};

}  // namespace aurora::core
