// The Aurora accelerator facade: the public entry point tying together the
// controllers, workflow generation, partition, mapping, NoC/PE configuration
// and the execution engines.
#pragma once

#include <vector>

#include "core/analytic_model.hpp"
#include "core/config.hpp"
#include "core/controllers.hpp"
#include "core/cycle_engine.hpp"
#include "core/dram_traffic.hpp"
#include "core/metrics.hpp"
#include "gnn/models.hpp"
#include "gnn/workflow.hpp"
#include "graph/datasets.hpp"

namespace aurora::core {

/// A multi-layer GNN inference job.
struct GnnJob {
  gnn::GnnModel model{};
  /// Layer shapes, first to last. Layer 0 reads the dataset's (sparse)
  /// input features; later layers read the previous layer's dense output.
  std::vector<gnn::LayerConfig> layers;

  /// The canonical 2-layer benchmark configuration used throughout the
  /// evaluation: input -> hidden -> classes.
  [[nodiscard]] static GnnJob two_layer(gnn::GnnModel model,
                                        const graph::DatasetSpec& spec,
                                        std::uint32_t hidden_dim = 16);

  /// Literature-conventional depth per model: GCN/attention 2 layers,
  /// GIN 5 (as in the GIN paper), EdgeConv 4 (DGCNN), others 2.
  [[nodiscard]] static GnnJob preset(gnn::GnnModel model,
                                     const graph::DatasetSpec& spec,
                                     std::uint32_t hidden_dim = 16);
};

class AuroraAccelerator {
 public:
  explicit AuroraAccelerator(const AuroraConfig& config);

  [[nodiscard]] const AuroraConfig& config() const { return config_; }

  /// Run a single layer; `layer_index` 0 reads sparse input features.
  [[nodiscard]] RunMetrics run_layer(const graph::Dataset& dataset,
                                     gnn::GnnModel model,
                                     const gnn::LayerConfig& layer,
                                     std::uint32_t layer_index = 0);

  /// Run all layers of a job and accumulate the metrics.
  [[nodiscard]] RunMetrics run(const graph::Dataset& dataset,
                               const GnnJob& job);

  /// Attach a trace recorder to the cycle engine (no effect in analytic
  /// mode). Enable the tracer before running.
  void set_tracer(sim::Tracer* tracer) { cycle_engine_.set_tracer(tracer); }

  /// Attach a metrics sampler to the cycle engine (no effect in analytic
  /// mode); samples accumulate across layer runs on one time axis.
  void set_sampler(sim::Sampler* sampler) {
    cycle_engine_.set_sampler(sampler);
  }

  /// Host-side request queue (walk-through example, Sec III-E). Requests
  /// submitted here are drained by run_pending().
  [[nodiscard]] RequestDispatcher& request_dispatcher() { return dispatcher_; }
  /// Drain every queued request against `dataset`; returns per-request
  /// metrics in submission order.
  [[nodiscard]] std::vector<RunMetrics> run_pending(
      const graph::Dataset& dataset);

 private:
  AuroraConfig config_;
  CycleEngine cycle_engine_;
  AnalyticModel analytic_model_;
  RequestDispatcher dispatcher_;
};

}  // namespace aurora::core
