// Multi-request scheduling on one Aurora chip.
//
// The paper's front end accepts a queue of host requests (Fig 3 (a));
// because mapping/partition/reconfiguration overlap with compute, the next
// request's DRAM prefetch can also ride under the current request's compute
// tail. This scheduler sequences a queue of multi-layer jobs, applying that
// overlap, and reports per-request latencies plus the makespan — the numbers
// a serving deployment cares about.
//
// Two entry points share one placement model: run() replays a fixed queue
// back to back (closed loop), while serve() places one request at a time
// against an explicit ChipTimeline so the serving engine can dispatch
// open-loop arrivals as chips free up. run() is literally a serve() loop,
// which is what makes the serving engine bit-identical to it on a
// closed-loop trace.
#pragma once

#include <string>
#include <vector>

#include "core/aurora.hpp"

namespace aurora::core {

struct ScheduledRequest {
  GnnJob job;
  std::string label;
  /// Identity of the dataset this request runs over, when it is not the
  /// engine's ambient dataset (dynamic workloads dispatch per-request
  /// sampled mini-batches). Folded into the cluster scheduler's service
  /// cache key so equal-shaped jobs over different subgraphs never alias;
  /// empty for the ambient dataset.
  std::string dataset_key{};
};

/// Stable identity of the partition/NoC configuration a job induces (the
/// dataset is fixed per serving engine): model plus exact layer shapes.
/// Requests with equal signatures are batch-compatible — they reuse the
/// same array configuration, so only the first pays reconfiguration — and
/// their service metrics are identical (the engines are deterministic and
/// stateless across runs), which also makes this the service-cache key.
[[nodiscard]] std::string job_signature(const GnnJob& job);

struct RequestOutcome {
  std::string label;
  RunMetrics metrics;
  /// When the request started/finished on the shared chip timeline.
  Cycle start_cycle = 0;
  Cycle finish_cycle = 0;
  /// DRAM-under-compute overlap window claimed against the predecessor.
  Cycle overlap_hidden = 0;
  /// Reconfiguration cycles not paid because the request joined a batch
  /// whose head already applied the same configuration.
  Cycle reconfig_saved = 0;

  [[nodiscard]] Cycle latency() const { return finish_cycle - start_cycle; }
};

/// Rolling placement state of one chip: when it frees up and how much
/// trailing compute the last request left for the next one to hide its
/// DRAM streaming under.
struct ChipTimeline {
  Cycle busy_until = 0;
  Cycle prev_compute_tail = 0;
};

struct ScheduleResult {
  std::vector<RequestOutcome> outcomes;
  Cycle makespan = 0;
  /// Cycles saved by overlapping consecutive requests' DRAM and compute,
  /// relative to running them back to back.
  Cycle overlap_savings = 0;

  [[nodiscard]] double avg_latency() const;
};

class Scheduler {
 public:
  explicit Scheduler(AuroraAccelerator& accelerator)
      : accelerator_(accelerator) {}

  /// Run the queue in order on `dataset`. Consecutive requests overlap: the
  /// next request's DRAM loading hides under the tail of the current
  /// request's compute, bounded by the smaller of the two.
  [[nodiscard]] ScheduleResult run(const graph::Dataset& dataset,
                                   std::vector<ScheduledRequest> queue);

  /// Place one request on `timeline`: simulate it, then start it at the
  /// earliest of (timeline minus the overlap window) but never before
  /// `not_before` (a serving dispatch cannot begin before the request
  /// arrived). `share_configuration` marks a batched follower whose
  /// partition/NoC configuration was already applied by the batch head —
  /// its exposed reconfiguration cycles are not paid again.
  [[nodiscard]] RequestOutcome serve(ChipTimeline& timeline,
                                     const graph::Dataset& dataset,
                                     ScheduledRequest request,
                                     Cycle not_before = 0,
                                     bool share_configuration = false);

  /// serve() with the accelerator made explicit, for callers owning a chip
  /// pool (the cluster scheduler's data-parallel dispatch).
  [[nodiscard]] static RequestOutcome serve_on(AuroraAccelerator& accelerator,
                                               ChipTimeline& timeline,
                                               const graph::Dataset& dataset,
                                               ScheduledRequest request,
                                               Cycle not_before = 0,
                                               bool share_configuration =
                                                   false);

  /// Pure placement step: fold already-measured service metrics into
  /// `timeline`. Split out so a serving engine with a service-metrics cache
  /// (identical jobs are deterministic) can skip re-simulation.
  [[nodiscard]] static RequestOutcome place(ChipTimeline& timeline,
                                            std::string label,
                                            RunMetrics metrics,
                                            Cycle not_before,
                                            bool share_configuration);

  /// The request's leading DRAM span — the first subgraph's streaming,
  /// which can hide under a predecessor's trailing compute. Shared with the
  /// cluster scheduler so single-chip and scale-out serving apply one
  /// overlap model.
  [[nodiscard]] static Cycle lead_dram_cycles(const RunMetrics& metrics);
  /// The request's trailing compute span — the last subgraph's compute,
  /// under which a successor's DRAM streaming can hide.
  [[nodiscard]] static Cycle tail_compute_cycles(const RunMetrics& metrics);
  /// Cycles saved by back-to-back scheduling of `prev` then `next`.
  [[nodiscard]] static Cycle overlap_cycles(Cycle prev_compute_tail,
                                            const RunMetrics& next);

 private:
  AuroraAccelerator& accelerator_;
};

}  // namespace aurora::core
