// Multi-request scheduling on one Aurora chip.
//
// The paper's front end accepts a queue of host requests (Fig 3 (a));
// because mapping/partition/reconfiguration overlap with compute, the next
// request's DRAM prefetch can also ride under the current request's compute
// tail. This scheduler sequences a queue of multi-layer jobs, applying that
// overlap, and reports per-request latencies plus the makespan — the numbers
// a serving deployment cares about.
#pragma once

#include <string>
#include <vector>

#include "core/aurora.hpp"

namespace aurora::core {

struct ScheduledRequest {
  GnnJob job;
  std::string label;
};

struct RequestOutcome {
  std::string label;
  RunMetrics metrics;
  /// When the request started/finished on the shared chip timeline.
  Cycle start_cycle = 0;
  Cycle finish_cycle = 0;

  [[nodiscard]] Cycle latency() const { return finish_cycle - start_cycle; }
};

struct ScheduleResult {
  std::vector<RequestOutcome> outcomes;
  Cycle makespan = 0;
  /// Cycles saved by overlapping consecutive requests' DRAM and compute,
  /// relative to running them back to back.
  Cycle overlap_savings = 0;

  [[nodiscard]] double avg_latency() const;
};

class Scheduler {
 public:
  explicit Scheduler(AuroraAccelerator& accelerator)
      : accelerator_(accelerator) {}

  /// Run the queue in order on `dataset`. Consecutive requests overlap: the
  /// next request's DRAM loading hides under the tail of the current
  /// request's compute, bounded by the smaller of the two.
  [[nodiscard]] ScheduleResult run(const graph::Dataset& dataset,
                                   std::vector<ScheduledRequest> queue);

  /// The request's leading DRAM span — the first subgraph's streaming,
  /// which can hide under a predecessor's trailing compute. Shared with the
  /// cluster scheduler so single-chip and scale-out serving apply one
  /// overlap model.
  [[nodiscard]] static Cycle lead_dram_cycles(const RunMetrics& metrics);
  /// The request's trailing compute span — the last subgraph's compute,
  /// under which a successor's DRAM streaming can hide.
  [[nodiscard]] static Cycle tail_compute_cycles(const RunMetrics& metrics);
  /// Cycles saved by back-to-back scheduling of `prev` then `next`.
  [[nodiscard]] static Cycle overlap_cycles(Cycle prev_compute_tail,
                                            const RunMetrics& next);

 private:
  AuroraAccelerator& accelerator_;
};

}  // namespace aurora::core
