// Top-level Aurora accelerator configuration (paper Sec VI-A).
#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "dram/dram.hpp"
#include "noc/network.hpp"
#include "pe/pe.hpp"

namespace aurora::core {

/// How a run is executed.
enum class SimMode : std::uint8_t {
  /// Full flit/task-level simulation of NoC + PEs + DRAM. Exact but only
  /// practical at reduced dataset scales.
  kCycleAccurate,
  /// Closed-form model driven by the same mapping/partition/tiling decisions
  /// and the same traffic counts, with contention factors calibrated against
  /// the cycle-accurate engine. Practical at full dataset scale.
  kAnalytic,
};

/// Vertex placement policy (Sec IV; the hashing policy is the CGRA-ME
/// baseline used by the mapping ablation).
enum class MappingPolicy : std::uint8_t {
  kDegreeAware,
  kHashing,
};

struct AuroraConfig {
  /// PE array dimension K (paper: 32; bench default 16 to keep the
  /// cycle-accurate engine fast on laptop-class hosts).
  std::uint32_t array_dim = 16;
  /// Core clock in MHz (for reporting; the simulator is cycle-based).
  double frequency_mhz = 700.0;
  /// Element width: the paper evaluates double precision.
  Bytes element_bytes = 8;

  pe::PeModelParams pe;
  noc::NocParams noc;
  dram::DramConfig dram;

  SimMode mode = SimMode::kCycleAccurate;
  MappingPolicy mapping_policy = MappingPolicy::kDegreeAware;

  /// Event-driven idle-cycle fast-forwarding in the cycle engine's
  /// scheduler. Bit-identical to lockstep (the component hooks only skip
  /// provably dead cycles — see docs/architecture.md, "Simulation
  /// scheduler"); disable to run the original tick-every-cycle engine,
  /// e.g. when debugging a component's tick logic.
  bool fast_forward = true;

  /// Attach a sim::InvariantChecker to every cycle-accurate run: each
  /// component's conservation laws (flit/packet/credit balances, DRAM burst
  /// and refresh accounting, PE task conservation) are verified at the
  /// engine's drain points, and violations throw with a full listing. Off
  /// by default: the drain checks walk every router buffer.
  bool check_invariants = false;
  /// With check_invariants, additionally verify every `invariant_interval`
  /// cycles mid-run (always-true laws only). 0 = drain points only; the
  /// checker then never perturbs the fast-forward schedule.
  Cycle invariant_interval = 0;

  /// Weight-stationary ring size in sub-accelerator B (rings never span
  /// rows, so this is clamped to K).
  std::uint32_t ring_size = 8;
  /// Fraction of the distributed buffer usable for a tile's working set
  /// (the rest holds weights, edge embeddings and double-buffered staging).
  double buffer_fill_fraction = 0.5;
  /// Operations per cycle per PE (the paper's Flops parameter): one MAC per
  /// multiplier per cycle = 2 ops x 8 multipliers... kept explicit.
  double flops_per_pe = 16.0;

  [[nodiscard]] std::uint32_t num_pes() const { return array_dim * array_dim; }
  [[nodiscard]] Bytes total_buffer_bytes() const {
    return static_cast<Bytes>(num_pes()) * pe.bank_buffer_bytes;
  }

  /// NoC/PE reconfiguration latency (paper: 2K-1 cycles, 63 for K=32).
  [[nodiscard]] Cycle reconfiguration_cycles() const {
    return 2ull * array_dim - 1;
  }
  /// Mapping + partition heuristic latency (paper: ~100 cycles).
  static constexpr Cycle kHeuristicCycles = 100;

  /// The paper's hardware configuration: 32 x 32 PEs, 100 KB buffer per PE.
  [[nodiscard]] static AuroraConfig paper();
  /// Bench-friendly configuration: 16 x 16 PEs (used by tests and default
  /// bench runs so the cycle engine stays fast).
  [[nodiscard]] static AuroraConfig bench();
};

}  // namespace aurora::core
