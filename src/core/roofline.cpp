#include "core/roofline.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace aurora::core {

const char* bound_name(Bound b) {
  switch (b) {
    case Bound::kCompute:
      return "compute-bound";
    case Bound::kDram:
      return "DRAM-bound";
    case Bound::kNoc:
      return "NoC-bound";
  }
  throw Error("invalid Bound");
}

RooflineAnalysis analyze_roofline(const RunMetrics& m,
                                  const AuroraConfig& config) {
  AURORA_CHECK(m.total_cycles > 0);
  RooflineAnalysis a;
  const double ops = static_cast<double>(m.events.fp_multiplies +
                                         m.events.fp_adds);
  const double dram_bytes = std::max(1.0, static_cast<double>(m.dram_bytes));
  a.arithmetic_intensity = ops / dram_bytes;
  a.peak_ops_per_cycle =
      static_cast<double>(config.num_pes()) * config.flops_per_pe;
  a.dram_ceiling_ops_per_cycle =
      a.arithmetic_intensity * config.dram.peak_bytes_per_cycle();
  a.achieved_ops_per_cycle = ops / static_cast<double>(m.total_cycles);

  // Which ceiling binds: the lower of compute and DRAM rooflines; a run
  // whose communication time dominates both is NoC-bound.
  const double roof =
      std::min(a.peak_ops_per_cycle, a.dram_ceiling_ops_per_cycle);
  const bool comm_dominates =
      m.onchip_comm_cycles > m.dram_cycles &&
      m.onchip_comm_cycles > m.compute_cycles &&
      m.onchip_comm_cycles * 2 > m.total_cycles;
  if (comm_dominates) {
    a.bound = Bound::kNoc;
  } else if (a.dram_ceiling_ops_per_cycle < a.peak_ops_per_cycle) {
    a.bound = Bound::kDram;
  } else {
    a.bound = Bound::kCompute;
  }
  a.efficiency = roof > 0.0 ? a.achieved_ops_per_cycle / roof : 0.0;
  return a;
}

std::string RooflineAnalysis::summary() const {
  std::ostringstream os;
  os << bound_name(bound) << ": " << to_fixed(achieved_ops_per_cycle, 1)
     << " ops/cycle achieved, roof "
     << to_fixed(std::min(peak_ops_per_cycle, dram_ceiling_ops_per_cycle), 1)
     << " (compute " << to_fixed(peak_ops_per_cycle, 0) << ", DRAM "
     << to_fixed(dram_ceiling_ops_per_cycle, 1) << " at AI "
     << to_fixed(arithmetic_intensity, 2) << " ops/B), efficiency "
     << to_fixed(100.0 * efficiency, 1) << " %";
  return os.str();
}

}  // namespace aurora::core
