// The analytic performance/energy model.
//
// Shares every *decision* with the cycle engine — workflow, Algorithm 2
// partition, tiling, Algorithm 1 mapping, NoC configuration — and replaces
// only the flit/task simulation with closed-form estimates driven by the
// mapping-quality statistics of sampled tiles. Contention constants are
// calibrated against the cycle engine (see tests/test_core.cpp's
// cross-validation test and bench/ablation_mapping).
//
// Use it where the cycle engine is impractical: full-scale datasets
// (Fig 7-10 at paper sizes) and wide parameter sweeps.
#pragma once

#include "core/config.hpp"
#include "core/dram_traffic.hpp"
#include "core/metrics.hpp"
#include "gnn/workflow.hpp"
#include "graph/datasets.hpp"

namespace aurora::core {

/// Calibration constants of the analytic model.
struct AnalyticCalibration {
  /// Fraction of peak DRAM bandwidth sustained on streaming loads.
  double dram_efficiency = 0.85;
  /// Sustained flit-hops per cycle per PE under steady pipelined traffic
  /// (~20 % utilisation of the ~4 directed links per node). The cycle
  /// engine's small bursty runs drain far below this because dependency
  /// stalls dominate there — and those stalls are charged to the compute
  /// term, not to transport.
  double flit_hops_per_cycle_per_pe = 0.8;
  /// Fraction of a hotspot PE's incident messages that serialise at its
  /// ejection port (the rest overlaps with transport).
  double hotspot_serialization = 0.35;
  /// Extra cycles per PE task (queueing + reconfiguration churn).
  double per_task_overhead = 3.0;
  /// How many tiles to map/evaluate exactly before extrapolating.
  std::uint32_t sampled_tiles = 8;
};

class AnalyticModel {
 public:
  AnalyticModel(const AuroraConfig& config,
                const AnalyticCalibration& calibration = {});

  [[nodiscard]] RunMetrics run_layer(const graph::Dataset& dataset,
                                     const gnn::Workflow& workflow,
                                     const DramTrafficParams& traffic) const;

  /// Variant used by the mapping ablation: run with the hashing baseline
  /// mapping and a plain mesh instead of Algorithm 1 + bypass links.
  [[nodiscard]] RunMetrics run_layer_hashing(
      const graph::Dataset& dataset, const gnn::Workflow& workflow,
      const DramTrafficParams& traffic) const;

 private:
  [[nodiscard]] RunMetrics run_impl(const graph::Dataset& dataset,
                                    const gnn::Workflow& workflow,
                                    const DramTrafficParams& traffic,
                                    bool degree_aware) const;

  AuroraConfig config_;
  AnalyticCalibration cal_;
};

}  // namespace aurora::core
