// Concrete baseline accelerator models. See baseline.hpp for the modeling
// approach and per-baseline dataflow summaries.
#pragma once

#include "baselines/baseline.hpp"

namespace aurora::baselines {

/// HyGCN (Yan et al., HPCA 2020): hybrid architecture with a SIMD
/// aggregation engine and a systolic combination engine in tandem,
/// multipliers split 1:7 (its original configuration, kept by the Aurora
/// paper's normalisation), edge-centric sliding-window sharding.
class HyGcnModel final : public AcceleratorModel {
 public:
  using AcceleratorModel::AcceleratorModel;
  [[nodiscard]] const char* name() const override { return "HyGCN"; }
  [[nodiscard]] CoverageRow coverage() const override;
  [[nodiscard]] core::RunMetrics run_layer(
      const graph::Dataset& dataset, const gnn::Workflow& workflow,
      const core::DramTrafficParams& traffic) const override;
};

/// AWB-GCN (Geng et al., MICRO 2020): column-wise-product SpMM with runtime
/// autotuned workload rebalancing (distribution smoothing, remote
/// switching, evil-row handling); weights duplicated per PE group;
/// X*W intermediate staged through DRAM between the two SpMM passes.
class AwbGcnModel final : public AcceleratorModel {
 public:
  using AcceleratorModel::AcceleratorModel;
  [[nodiscard]] const char* name() const override { return "AWB-GCN"; }
  [[nodiscard]] CoverageRow coverage() const override;
  [[nodiscard]] core::RunMetrics run_layer(
      const graph::Dataset& dataset, const gnn::Workflow& workflow,
      const core::DramTrafficParams& traffic) const override;
};

/// GCNAX (Li et al., HPCA 2021): flexible loop order and tiling chosen per
/// dataset to minimise DRAM volume; phase-separated execution with a small
/// intermediate spill; no message passing / edge updates.
class GcnaxModel final : public AcceleratorModel {
 public:
  using AcceleratorModel::AcceleratorModel;
  [[nodiscard]] const char* name() const override { return "GCNAX"; }
  [[nodiscard]] CoverageRow coverage() const override;
  [[nodiscard]] core::RunMetrics run_layer(
      const graph::Dataset& dataset, const gnn::Workflow& workflow,
      const core::DramTrafficParams& traffic) const override;
};

/// ReGNN (Chen et al., HPCA 2022): redundancy-eliminated neighborhood
/// message passing — overlapping neighborhoods are aggregated once and
/// reused — on heterogeneous graph/neural engines.
class RegnnModel final : public AcceleratorModel {
 public:
  using AcceleratorModel::AcceleratorModel;
  [[nodiscard]] const char* name() const override { return "ReGNN"; }
  [[nodiscard]] CoverageRow coverage() const override;
  [[nodiscard]] core::RunMetrics run_layer(
      const graph::Dataset& dataset, const gnn::Workflow& workflow,
      const core::DramTrafficParams& traffic) const override;
};

/// FlowGNN (Sarkar et al., HPCA 2023): generic message-passing dataflow
/// with node/edge queues and multi-level parallelism; real-time oriented —
/// streams dense features, no graph preprocessing, mux-based interconnect.
class FlowGnnModel final : public AcceleratorModel {
 public:
  using AcceleratorModel::AcceleratorModel;
  [[nodiscard]] const char* name() const override { return "FlowGNN"; }
  [[nodiscard]] CoverageRow coverage() const override;
  [[nodiscard]] core::RunMetrics run_layer(
      const graph::Dataset& dataset, const gnn::Workflow& workflow,
      const core::DramTrafficParams& traffic) const override;
};

}  // namespace aurora::baselines
