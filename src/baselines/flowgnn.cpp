#include <algorithm>
#include <cmath>

#include "baselines/models.hpp"

namespace aurora::baselines {

CoverageRow FlowGnnModel::coverage() const {
  CoverageRow row;
  row.c_gnn = true;
  row.a_gnn = true;
  row.mp_gnn = true;       // fully generic message passing
  row.message_passing = true;
  return row;
}

core::RunMetrics FlowGnnModel::run_layer(
    const graph::Dataset& ds, const gnn::Workflow& wf,
    const core::DramTrafficParams& traffic) const {
  const double eb = static_cast<double>(chip_.element_bytes);
  const double n = ds.num_vertices();
  const double f = wf.layer.in_dim;
  const double gini = ds.degree_stats.gini;

  // --- DRAM ---------------------------------------------------------------
  // The message-passing dataflow avoids inter-phase spills, but weights are
  // duplicated per processing unit (shrinking queue/feature capacity) and
  // the real-time orientation does no gather coalescing.
  const double x_stored = stored_feature_bytes(ds, wf.layer.in_dim, traffic);
  const double x_onchip = dense_feature_bytes(ds, wf.layer.in_dim);
  const double weight_bytes =
      static_cast<double>(wf.phase(gnn::Phase::kVertexUpdate).weight_bytes +
                          wf.phase(gnn::Phase::kEdgeUpdate).weight_bytes);
  constexpr double kProcessingUnits = 16.0;
  const double eff_buffer =
      std::max(1.0, static_cast<double>(chip_.onchip_buffer_bytes) -
                        kProcessingUnits * weight_bytes);
  const double feature_reads =
      x_stored * capacity_refetch(x_onchip, eff_buffer, 0.4) +
      gather_miss_bytes(static_cast<double>(ds.num_edges()), x_stored / n,
                        x_onchip, eff_buffer, 0.35);
  // Node/edge queues overflow only transiently; the dataflow is fused.
  const double queue_spill = std::min(0.05 * n * f * eb, 4.0e6);
  const double outputs = n * wf.layer.out_dim * eb;

  Estimates est;
  est.dram_bytes = feature_reads + adjacency_bytes(ds) + weight_bytes +
                   queue_spill + outputs;

  // --- compute --------------------------------------------------------------
  // Multi-level parallelism keeps units busy, but there is no workload
  // rebalancing: degree skew stalls the node queues.
  const double util = std::clamp(0.88 - 0.25 * gini, 0.55, 0.88);
  est.compute_cycles = static_cast<double>(wf.total_ops()) /
                       (chip_.peak_ops_per_cycle() * util);

  // --- on-chip communication -------------------------------------------------
  // The mux-based interconnect (no NoC) serialises gathers toward each
  // node-update unit.
  const double gather_bytes =
      static_cast<double>(wf.phase(gnn::Phase::kAggregation).num_messages) *
      static_cast<double>(wf.phase(gnn::Phase::kAggregation).message_bytes);
  est.comm_cycles = gather_bytes / 1024.0 * (1.0 + 1.0 * gini);

  est.serial_fraction = 0.2;  // deeply pipelined message flow
  est.sram_amplification = 2.0;
  est.avg_hops = 1.5;
  return assemble(est, wf);
}

}  // namespace aurora::baselines
