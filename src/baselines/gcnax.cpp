#include <algorithm>
#include <cmath>

#include "baselines/models.hpp"

namespace aurora::baselines {

CoverageRow GcnaxModel::coverage() const {
  CoverageRow row;
  row.c_gnn = true;
  row.flexible_dataflow = true;  // its defining feature: loop-order search
  return row;
}

core::RunMetrics GcnaxModel::run_layer(
    const graph::Dataset& ds, const gnn::Workflow& wf,
    const core::DramTrafficParams& traffic) const {
  const double eb = static_cast<double>(chip_.element_bytes);
  const double n = ds.num_vertices();
  const double h = wf.layer.out_dim;
  const double gini = ds.degree_stats.gini;
  const double buffer = static_cast<double>(chip_.onchip_buffer_bytes);

  // --- DRAM ---------------------------------------------------------------
  // The loop-order/tiling search gets close to compulsory traffic: inputs,
  // adjacency and weights stream once. What remains above Aurora:
  //  * the two SpMM phases are distinct loop nests, so a fraction of the
  //    X*W intermediate still round-trips DRAM at tile boundaries;
  //  * oversized feature matrices incur a mild re-read at tile edges.
  const double x_read = stored_feature_bytes(ds, wf.layer.in_dim, traffic);
  const double weight_bytes =
      static_cast<double>(wf.phase(gnn::Phase::kVertexUpdate).weight_bytes +
                          wf.phase(gnn::Phase::kEdgeUpdate).weight_bytes);
  const double intermediate = n * h * eb;
  const double spill = 0.3 * intermediate;
  const double refetch = capacity_refetch(x_read, buffer, 0.2);
  const double gather =
      gather_miss_bytes(static_cast<double>(ds.num_edges()), h * eb,
                        x_read + intermediate, buffer, 0.05);
  const double outputs = n * h * eb;

  Estimates est;
  est.dram_bytes = x_read * refetch + gather + adjacency_bytes(ds) +
                   weight_bytes + spill + outputs;

  // --- compute --------------------------------------------------------------
  const double util = 0.9;  // single well-pipelined SpMM engine
  est.compute_cycles = static_cast<double>(wf.total_ops()) /
                       (chip_.peak_ops_per_cycle() * util);

  // --- on-chip communication -------------------------------------------------
  // Mostly local buffer traffic; gathers cross a modest crossbar and the
  // hashing placement leaves hotspot rows contended.
  const double gather_bytes =
      static_cast<double>(wf.phase(gnn::Phase::kAggregation).num_messages) *
      static_cast<double>(wf.phase(gnn::Phase::kAggregation).message_bytes);
  est.comm_cycles = gather_bytes / 768.0 * (1.0 + 1.2 * gini);

  est.serial_fraction = 0.3;
  est.sram_amplification = 2.0;
  est.avg_hops = 2.0;
  return assemble(est, wf);
}

}  // namespace aurora::baselines
