// Baseline accelerator cost models.
//
// Substitution note (DESIGN.md §1): none of the five comparison accelerators
// has a public cycle model, so each is reconstructed from its paper as a
// behavioral cost model over the same inputs Aurora sees. All baselines are
// normalised to Aurora's resources, following the Aurora paper's
// methodology: same multiplier count, same DRAM bandwidth, same 100 MB
// on-chip storage, double precision.
//
// Each model makes its paper's *dataflow decisions* explicit:
//   HyGCN    — tandem SIMD+systolic engines split 1:7, sliding-window edge
//              sharding, dense input features, inter-engine buffering;
//   AWB-GCN  — column-wise-product SpMM with runtime workload rebalancing,
//              weights duplicated per PE group, X*W intermediate spill;
//   GCNAX    — flexible loop order + tiling search minimising DRAM volume,
//              phase-separated execution (aggregation buffer spill);
//   ReGNN    — redundancy-eliminated neighborhood aggregation with
//              heterogeneous engines;
//   FlowGNN  — message-passing dataflow with node/edge queues, multi-level
//              parallelism, mux-based interconnect, weight duplication.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>

#include "core/dram_traffic.hpp"
#include "core/metrics.hpp"
#include "gnn/workflow.hpp"
#include "graph/datasets.hpp"

namespace aurora::baselines {

enum class BaselineId : std::uint8_t {
  kHyGcn,
  kAwbGcn,
  kGcnax,
  kRegnn,
  kFlowGnn,
};

inline constexpr std::array<BaselineId, 5> kAllBaselines = {
    BaselineId::kHyGcn, BaselineId::kAwbGcn, BaselineId::kGcnax,
    BaselineId::kRegnn, BaselineId::kFlowGnn};

[[nodiscard]] const char* baseline_name(BaselineId id);

/// Resources every accelerator is normalised to (paper Sec VI-A).
struct ChipParams {
  /// Total multipliers (Aurora: 1024 PEs x 8).
  std::uint32_t num_multipliers = 8192;
  /// Ops per multiplier per cycle (MAC = multiply + add).
  double ops_per_multiplier = 2.0;
  Bytes onchip_buffer_bytes = 100ull * 1024 * 1024;
  /// Sustained DRAM bandwidth in bytes per core cycle (match Aurora's DRAM
  /// model at its calibrated efficiency).
  double dram_bytes_per_cycle = 54.4;  // 4 ch x 16 B/cyc x 0.85
  Bytes element_bytes = 8;

  [[nodiscard]] double peak_ops_per_cycle() const {
    return num_multipliers * ops_per_multiplier;
  }
};

/// Feature coverage (paper Table I).
struct CoverageRow {
  bool c_gnn = false;
  bool a_gnn = false;
  bool mp_gnn = false;
  bool flexible_in_unified = false;
  bool flexible_dataflow = false;
  bool flexible_noc = false;
  bool message_passing = false;
};

class AcceleratorModel {
 public:
  explicit AcceleratorModel(const ChipParams& chip) : chip_(chip) {}
  virtual ~AcceleratorModel() = default;

  [[nodiscard]] virtual const char* name() const = 0;
  [[nodiscard]] virtual CoverageRow coverage() const = 0;

  /// Whether the architecture natively supports the model (Table I); all
  /// models still *execute* (the host decomposes unsupported phases), at the
  /// penalty each cost model charges.
  [[nodiscard]] bool supports(gnn::GnnModel model) const;

  [[nodiscard]] virtual core::RunMetrics run_layer(
      const graph::Dataset& dataset, const gnn::Workflow& workflow,
      const core::DramTrafficParams& traffic) const = 0;

  [[nodiscard]] const ChipParams& chip() const { return chip_; }

 protected:
  /// Shared metric assembly: converts the model's primitive estimates into
  /// RunMetrics with the common energy accounting.
  struct Estimates {
    double compute_cycles = 0.0;
    double comm_cycles = 0.0;
    double dram_bytes = 0.0;
    /// Fraction of compute that cannot overlap communication (phase
    /// serialisation in non-pipelined designs).
    double serial_fraction = 0.3;
    /// On-chip bytes moved per payload byte (duplication, spills).
    double sram_amplification = 2.0;
    /// Average interconnect hops (for NoC energy).
    double avg_hops = 2.0;
    /// Total arithmetic ops actually executed (ReGNN eliminates some).
    OpCount total_ops = 0;
  };
  [[nodiscard]] core::RunMetrics assemble(const Estimates& est,
                                          const gnn::Workflow& workflow) const;

  /// Dense feature-matrix bytes (baselines without sparse-input handling).
  [[nodiscard]] double dense_feature_bytes(const graph::Dataset& ds,
                                           std::uint32_t dim) const;
  /// Capacity-pressure re-read multiplier: 1 while `working_set` fits in
  /// `usable` buffer bytes, growing with slope `alpha` beyond (capped 8x).
  [[nodiscard]] static double capacity_refetch(double working_set,
                                               double usable, double alpha);
  /// Gather-miss DRAM bytes: aggregation fetches one far-endpoint feature
  /// vector per edge; the fraction missing on chip is set by how much of
  /// the (dense, on-chip format) feature matrix the usable buffer holds.
  /// `beta` is the architecture's gather efficiency (prefetch, coalescing).
  [[nodiscard]] static double gather_miss_bytes(double num_edges,
                                                double stored_vec_bytes,
                                                double onchip_matrix_bytes,
                                                double usable, double beta);
  /// Feature bytes honouring the sparse input format of layer 0.
  [[nodiscard]] double stored_feature_bytes(
      const graph::Dataset& ds, std::uint32_t dim,
      const core::DramTrafficParams& traffic) const;
  /// CSR adjacency bytes.
  [[nodiscard]] static double adjacency_bytes(const graph::Dataset& ds);

  ChipParams chip_;
};

[[nodiscard]] std::unique_ptr<AcceleratorModel> make_baseline(
    BaselineId id, const ChipParams& chip = {});

/// Chip parameters equivalent to an Aurora configuration (for fair
/// normalisation in the benches).
[[nodiscard]] ChipParams chip_params_matching(std::uint32_t array_dim,
                                              std::uint32_t macs_per_pe,
                                              Bytes pe_buffer_bytes);

}  // namespace aurora::baselines
