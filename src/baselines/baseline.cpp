#include "baselines/baseline.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "baselines/models.hpp"

namespace aurora::baselines {

const char* baseline_name(BaselineId id) {
  switch (id) {
    case BaselineId::kHyGcn:
      return "HyGCN";
    case BaselineId::kAwbGcn:
      return "AWB-GCN";
    case BaselineId::kGcnax:
      return "GCNAX";
    case BaselineId::kRegnn:
      return "ReGNN";
    case BaselineId::kFlowGnn:
      return "FlowGNN";
  }
  throw Error("invalid BaselineId");
}

bool AcceleratorModel::supports(gnn::GnnModel model) const {
  const CoverageRow row = coverage();
  switch (gnn::model_category(model)) {
    case gnn::GnnCategory::kConvolutional:
      return row.c_gnn;
    case gnn::GnnCategory::kAttentional:
      return row.a_gnn;
    case gnn::GnnCategory::kMessagePassing:
      return row.mp_gnn;
  }
  throw Error("invalid category");
}

double AcceleratorModel::dense_feature_bytes(const graph::Dataset& ds,
                                             std::uint32_t dim) const {
  return static_cast<double>(ds.num_vertices()) * dim *
         static_cast<double>(chip_.element_bytes);
}

double AcceleratorModel::stored_feature_bytes(
    const graph::Dataset& ds, std::uint32_t dim,
    const core::DramTrafficParams& traffic) const {
  return static_cast<double>(ds.num_vertices()) *
         static_cast<double>(core::feature_vector_bytes(dim, traffic));
}

double AcceleratorModel::capacity_refetch(double working_set, double usable,
                                          double alpha) {
  AURORA_CHECK(usable > 0.0);
  return 1.0 + std::min(7.0, alpha * std::max(0.0, working_set / usable - 1.0));
}

double AcceleratorModel::gather_miss_bytes(double num_edges,
                                           double stored_vec_bytes,
                                           double onchip_matrix_bytes,
                                           double usable, double beta) {
  AURORA_CHECK(usable > 0.0);
  const double hit_rate =
      std::clamp(usable / std::max(1.0, onchip_matrix_bytes), 0.05, 0.95);
  return beta * num_edges * stored_vec_bytes * (1.0 - hit_rate);
}

double AcceleratorModel::adjacency_bytes(const graph::Dataset& ds) {
  return static_cast<double>(ds.num_vertices()) * 8.0 +
         static_cast<double>(ds.num_edges()) * 4.0;
}

core::RunMetrics AcceleratorModel::assemble(
    const Estimates& est, const gnn::Workflow& workflow) const {
  core::RunMetrics m;
  double dram_bytes = est.dram_bytes;
  double compute_cycles = est.compute_cycles;
  double serial_extra = 0.0;

  // Models with per-edge state (attention coefficients, gated messages,
  // EdgeConv features) read and write it every layer regardless of the
  // architecture executing them.
  if (gnn::model_has_edge_embeddings(workflow.model)) {
    dram_bytes += 2.0 * static_cast<double>(workflow.num_edges) *
                  static_cast<double>(workflow.edge_feature_dim) *
                  static_cast<double>(chip_.element_bytes);
  }

  // Phases outside the architecture's native coverage (Table I) fall back to
  // host-side decomposition: the edge-update operands and results round-trip
  // DRAM and the host executes at a fraction of the chip's throughput.
  if (!supports(workflow.model)) {
    const auto& eu = workflow.phase(gnn::Phase::kEdgeUpdate);
    if (eu.present) {
      constexpr double kHostThroughputFraction = 0.1;
      serial_extra += static_cast<double>(eu.total_ops) /
                      (chip_.peak_ops_per_cycle() * kHostThroughputFraction);
      dram_bytes += 2.0 * static_cast<double>(eu.num_messages) *
                    static_cast<double>(eu.message_bytes);
    }
  }

  m.compute_cycles = static_cast<Cycle>(compute_cycles + serial_extra);
  m.onchip_comm_cycles = static_cast<Cycle>(est.comm_cycles);
  const double dram_cycles = dram_bytes / chip_.dram_bytes_per_cycle;
  m.dram_cycles = static_cast<Cycle>(dram_cycles);

  // Composition: the overlappable portion of compute hides behind the
  // larger of DRAM and communication; the serial fraction and any host
  // round-trips add on top.
  const double overlapped =
      std::max({dram_cycles, est.comm_cycles,
                compute_cycles * (1.0 - est.serial_fraction)});
  m.total_cycles = static_cast<Cycle>(
      overlapped + compute_cycles * est.serial_fraction + serial_extra);

  m.dram_bytes = static_cast<Bytes>(dram_bytes);
  m.dram_accesses = m.dram_bytes / 64;
  m.avg_hops = est.avg_hops;

  const OpCount ops = est.total_ops > 0 ? est.total_ops : workflow.total_ops();
  m.events.fp_multiplies = ops / 2;
  m.events.fp_adds = ops - m.events.fp_multiplies;
  m.events.dram_bytes = m.dram_bytes;
  // On-chip movement: aggregation payload crossing the interconnect.
  const double payload =
      static_cast<double>(workflow.phase(gnn::Phase::kAggregation).num_messages) *
      static_cast<double>(workflow.phase(gnn::Phase::kAggregation).message_bytes);
  m.events.noc_link_bytes = static_cast<Bytes>(payload * est.avg_hops);
  m.events.router_bytes = static_cast<Bytes>(payload * est.avg_hops);
  // Buffer traffic: staging amplification on the DRAM stream plus the
  // read-modify-write of the per-vertex accumulator on every gather (the
  // same charge Aurora's accounting carries).
  m.events.sram_large_bytes = static_cast<Bytes>(
      dram_bytes * est.sram_amplification + 2.0 * payload);
  m.events.active_cycles = m.total_cycles;
  m.energy = energy::compute_energy(m.events, energy::EnergyTable{});
  m.utilization = est.compute_cycles > 0
                      ? static_cast<double>(workflow.total_ops()) /
                            (est.compute_cycles * chip_.peak_ops_per_cycle())
                      : 0.0;
  return m;
}

std::unique_ptr<AcceleratorModel> make_baseline(BaselineId id,
                                                const ChipParams& chip) {
  switch (id) {
    case BaselineId::kHyGcn:
      return std::make_unique<HyGcnModel>(chip);
    case BaselineId::kAwbGcn:
      return std::make_unique<AwbGcnModel>(chip);
    case BaselineId::kGcnax:
      return std::make_unique<GcnaxModel>(chip);
    case BaselineId::kRegnn:
      return std::make_unique<RegnnModel>(chip);
    case BaselineId::kFlowGnn:
      return std::make_unique<FlowGnnModel>(chip);
  }
  throw Error("invalid BaselineId");
}

ChipParams chip_params_matching(std::uint32_t array_dim,
                                std::uint32_t macs_per_pe,
                                Bytes pe_buffer_bytes) {
  ChipParams chip;
  chip.num_multipliers = array_dim * array_dim * macs_per_pe;
  chip.onchip_buffer_bytes =
      static_cast<Bytes>(array_dim) * array_dim * pe_buffer_bytes;
  return chip;
}

}  // namespace aurora::baselines
