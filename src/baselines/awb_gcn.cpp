#include <algorithm>
#include <cmath>

#include "baselines/models.hpp"

namespace aurora::baselines {

CoverageRow AwbGcnModel::coverage() const {
  CoverageRow row;
  row.c_gnn = true;  // GCN-family SpMM only
  return row;
}

core::RunMetrics AwbGcnModel::run_layer(
    const graph::Dataset& ds, const gnn::Workflow& wf,
    const core::DramTrafficParams& traffic) const {
  const double eb = static_cast<double>(chip_.element_bytes);
  const double n = ds.num_vertices();
  const double h = wf.layer.out_dim;
  const double gini = ds.degree_stats.gini;

  // --- DRAM ---------------------------------------------------------------
  // Column-product SpMM is sparse-aware: X is read in its stored format.
  const double x_read = stored_feature_bytes(ds, wf.layer.in_dim, traffic);
  // Weights are duplicated into every PE group's local buffer; the
  // duplication eats on-chip capacity and forces feature re-reads once the
  // working set no longer fits the remainder.
  const double weight_bytes =
      static_cast<double>(wf.phase(gnn::Phase::kVertexUpdate).weight_bytes +
                          wf.phase(gnn::Phase::kEdgeUpdate).weight_bytes);
  constexpr double kPeGroups = 64.0;
  const double eff_buffer =
      std::max(1.0, static_cast<double>(chip_.onchip_buffer_bytes) -
                        kPeGroups * weight_bytes);
  const double working = x_read + n * h * eb;
  const double refetch = capacity_refetch(working, eff_buffer, 0.5);
  // Gathers of XW rows during A*(XW) miss when the intermediate plus the
  // duplicated weights overflow the buffer.
  const double gather =
      gather_miss_bytes(static_cast<double>(ds.num_edges()), h * eb,
                        working, eff_buffer, 0.3);
  // Two SpMM passes: X*W writes the intermediate, A*(XW) reads it back —
  // the passes are phase-separated, so the intermediate stages via DRAM.
  const double intermediate = 2.0 * n * h * eb;
  const double outputs = n * h * eb;

  Estimates est;
  est.dram_bytes = x_read * refetch + gather + weight_bytes +
                   adjacency_bytes(ds) + intermediate + outputs;

  // --- compute --------------------------------------------------------------
  // Runtime rebalancing (distribution smoothing + remote switching) recovers
  // most of the power-law imbalance; residual skew costs a few percent.
  const double util = std::clamp(0.9 - 0.15 * gini, 0.6, 0.9);
  est.compute_cycles = static_cast<double>(wf.total_ops()) /
                       (chip_.peak_ops_per_cycle() * util);

  // --- on-chip communication -------------------------------------------------
  // Every nonzero of A consumes one XW row; the omega-style network
  // broadcasts rows across PE groups.
  const double xw_traffic = static_cast<double>(ds.num_edges()) * h * eb;
  est.comm_cycles = xw_traffic / 1024.0 * (1.0 + 0.4 * gini);

  est.serial_fraction = 0.45;  // the two SpMM passes serialise
  est.sram_amplification = 2.2;
  est.avg_hops = 3.0;  // multi-stage network
  return assemble(est, wf);
}

}  // namespace aurora::baselines
