#include <algorithm>
#include <cmath>

#include "baselines/models.hpp"

namespace aurora::baselines {

CoverageRow RegnnModel::coverage() const {
  CoverageRow row;
  row.c_gnn = true;
  row.mp_gnn = true;      // neighborhood message passing
  row.message_passing = true;
  return row;
}

core::RunMetrics RegnnModel::run_layer(
    const graph::Dataset& ds, const gnn::Workflow& wf,
    const core::DramTrafficParams& traffic) const {
  const double eb = static_cast<double>(chip_.element_bytes);
  const double n = ds.num_vertices();
  const double f = wf.layer.in_dim;
  const double gini = ds.degree_stats.gini;
  const double avg_deg = ds.degree_stats.mean_degree;
  const double buffer = static_cast<double>(chip_.onchip_buffer_bytes);

  // Redundancy elimination: overlapping neighborhoods are aggregated once
  // and reused. Dense, clustered graphs expose more overlap; rho is the
  // fraction of aggregation work that remains.
  const double rho = std::clamp(0.85 - 0.2 * std::min(1.0, avg_deg / 50.0) -
                                    0.1 * gini,
                                0.5, 0.9);

  // --- DRAM ---------------------------------------------------------------
  // The redundancy cache cuts a share of neighbor fetches; the fixed
  // graph-engine buffer partition misses the rest, and the heterogeneous
  // engines spill part of the intermediate between graph and neural stages.
  const double x_stored = stored_feature_bytes(ds, wf.layer.in_dim, traffic);
  const double x_onchip = dense_feature_bytes(ds, wf.layer.in_dim);
  const double graph_buffer = 0.5 * buffer;  // fixed engine partition
  const double feature_reads =
      x_stored * capacity_refetch(x_onchip, graph_buffer, 0.4) +
      gather_miss_bytes(static_cast<double>(ds.num_edges()), x_stored / n,
                        x_onchip, graph_buffer, 0.5 * rho);
  // ReGNN pipelines aggregation into combination (no m_v spill); its extra
  // DRAM cost is the redundancy-search metadata stream.
  const double redundancy_metadata = static_cast<double>(ds.num_edges()) * 8.0;
  const double weight_bytes =
      static_cast<double>(wf.phase(gnn::Phase::kVertexUpdate).weight_bytes +
                          wf.phase(gnn::Phase::kEdgeUpdate).weight_bytes);
  const double outputs = n * wf.layer.out_dim * eb;

  Estimates est;
  est.dram_bytes = feature_reads + adjacency_bytes(ds) + redundancy_metadata +
                   weight_bytes * 2.0 + outputs;

  // --- compute --------------------------------------------------------------
  // Redundancy elimination removes (1 - rho) of the aggregation operations;
  // the heterogeneous 1:3 engine split mismatches some workloads.
  const double peak = chip_.peak_ops_per_cycle();
  const double ops_graph =
      (static_cast<double>(wf.phase(gnn::Phase::kAggregation).total_ops) +
       static_cast<double>(wf.phase(gnn::Phase::kEdgeUpdate).total_ops)) *
      rho;
  const double ops_neural =
      static_cast<double>(wf.phase(gnn::Phase::kVertexUpdate).total_ops);
  est.compute_cycles =
      std::max(ops_graph / (peak * 0.25), ops_neural / (peak * 0.75));
  est.total_ops = static_cast<OpCount>(ops_graph + ops_neural);

  // --- on-chip communication -------------------------------------------------
  const double gather_bytes =
      static_cast<double>(wf.phase(gnn::Phase::kAggregation).num_messages) *
      static_cast<double>(wf.phase(gnn::Phase::kAggregation).message_bytes) *
      rho;
  est.comm_cycles = gather_bytes / 768.0 * (1.0 + 0.8 * gini);

  est.serial_fraction = 0.3;
  est.sram_amplification = 2.2;
  est.avg_hops = 2.0;
  return assemble(est, wf);
}

}  // namespace aurora::baselines
