#include <algorithm>
#include <cmath>

#include "baselines/models.hpp"

namespace aurora::baselines {

CoverageRow HyGcnModel::coverage() const {
  CoverageRow row;
  row.c_gnn = true;  // C-GCN only; no edge embeddings, no message passing
  return row;
}

core::RunMetrics HyGcnModel::run_layer(
    const graph::Dataset& ds, const gnn::Workflow& wf,
    const core::DramTrafficParams& traffic) const {
  const double eb = static_cast<double>(chip_.element_bytes);
  const double n = ds.num_vertices();
  const double f = wf.layer.in_dim;
  const double gini = ds.degree_stats.gini;

  // Fixed buffer partition between the two engines mirrors the fixed 1:7
  // compute split; neither side can borrow the other's idle capacity.
  const double agg_buffer = 0.4 * static_cast<double>(chip_.onchip_buffer_bytes);
  const double comb_buffer = 0.6 * static_cast<double>(chip_.onchip_buffer_bytes);

  // --- DRAM ---------------------------------------------------------------
  // Features live densely on chip (HyGCN's interval-shard format), so the
  // fixed 40 % aggregation buffer covers little of the matrix; edge-centric
  // gathers miss accordingly, and capacity pressure re-reads the stored X.
  const double x_stored = stored_feature_bytes(ds, wf.layer.in_dim, traffic);
  const double x_onchip = dense_feature_bytes(ds, wf.layer.in_dim);
  const double vec_stored = x_stored / n;
  const double feature_reads =
      x_stored * capacity_refetch(x_onchip, agg_buffer, 0.8) +
      gather_miss_bytes(static_cast<double>(ds.num_edges()), vec_stored,
                        x_onchip, agg_buffer, 1.0);
  // Aggregated (dense, F-wide) vectors cross engines through a bounded
  // buffer; the overflow round-trips DRAM — the inter-phase spill Aurora's
  // fused sub-accelerators avoid entirely.
  const double m_v = n * f * eb;
  const double spill = 1.2 * std::max(0.0, m_v - 0.5 * comb_buffer);
  // The systolic engine reloads the weight tile per vertex shard.
  const double shards = std::max(1.0, std::ceil(m_v / comb_buffer));
  const double weight_reads =
      static_cast<double>(wf.phase(gnn::Phase::kVertexUpdate).weight_bytes +
                          wf.phase(gnn::Phase::kEdgeUpdate).weight_bytes) *
      shards;
  const double outputs = n * wf.layer.out_dim * eb;

  Estimates est;
  est.dram_bytes =
      feature_reads + adjacency_bytes(ds) + spill + weight_reads + outputs;

  // --- compute --------------------------------------------------------------
  // Tandem engines at the fixed 1:7 multiplier split: the phase whose share
  // mismatches its engine stalls the pipeline. Phases HyGCN has no engine
  // for (edge updates) fall onto the SIMD cores at half efficiency.
  const double peak = chip_.peak_ops_per_cycle();
  const double ops_agg =
      static_cast<double>(wf.phase(gnn::Phase::kAggregation).total_ops) +
      2.0 * static_cast<double>(wf.phase(gnn::Phase::kEdgeUpdate).total_ops);
  const double ops_comb =
      static_cast<double>(wf.phase(gnn::Phase::kVertexUpdate).total_ops);
  est.compute_cycles =
      std::max(ops_agg / (peak / 8.0), ops_comb / (peak * 7.0 / 8.0));
  // The edge-centric sliding window walks one vertex interval at a time;
  // each window pays a fixed setup/drain cost, which dominates on small
  // graphs (the paper's Cora case, HyGCN's worst).
  constexpr double kWindowSetupCycles = 48.0;
  est.compute_cycles += n * kWindowSetupCycles;

  // --- on-chip communication -------------------------------------------------
  // Gathered neighbor vectors plus the inter-engine stream cross a crossbar
  // of bounded width; power-law skew concentrates the traffic.
  const double gather_bytes =
      static_cast<double>(wf.phase(gnn::Phase::kAggregation).num_messages) *
      static_cast<double>(wf.phase(gnn::Phase::kAggregation).message_bytes);
  // Gathers contend on the crossbar; the inter-engine m_v stream rides a
  // dedicated coordination buffer port.
  const double xbar_bytes_per_cycle = 512.0;
  const double inter_engine_bytes_per_cycle = 2048.0;
  est.comm_cycles =
      gather_bytes / xbar_bytes_per_cycle * (1.0 + 1.5 * gini) +
      m_v / inter_engine_bytes_per_cycle;

  est.serial_fraction = 0.35;  // shard-granular overlap only
  est.sram_amplification = 2.5;
  est.avg_hops = 2.0;
  return assemble(est, wf);
}

}  // namespace aurora::baselines
