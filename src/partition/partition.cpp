#include "partition/partition.hpp"

#include <cmath>

#include "common/error.hpp"

namespace aurora::partition {

PartitionInput partition_input_from_workflow(const gnn::Workflow& wf,
                                             std::uint32_t total_pes,
                                             double flops_per_pe) {
  PartitionInput in;
  in.ops_edge_update = wf.phase(gnn::Phase::kEdgeUpdate).total_ops;
  in.ops_aggregation = wf.phase(gnn::Phase::kAggregation).total_ops;
  in.ops_vertex_update = wf.phase(gnn::Phase::kVertexUpdate).total_ops;
  in.edge_feature_dim = wf.edge_feature_dim;
  in.num_edges = wf.num_edges;
  in.total_pes = total_pes;
  in.flops_per_pe = flops_per_pe;
  return in;
}

double time_sub_a(const PartitionInput& in, std::uint32_t a) {
  AURORA_CHECK(a >= 1);
  AURORA_CHECK(in.flops_per_pe > 0.0);
  const double capacity = static_cast<double>(a) * in.flops_per_pe;
  // AComp1: edge update (0 when the model has no edge update).
  const double comp1 = static_cast<double>(in.ops_edge_update) / capacity;
  // AComp3: the edge-feature reduction that closes aggregation.
  const auto edge_feature_ops =
      static_cast<double>(in.edge_feature_dim) *
      static_cast<double>(in.num_edges);
  // AComp2: the remaining aggregation work; saturates at zero when the
  // aggregation is exactly the edge-feature reduction.
  const double remaining =
      std::max(0.0, static_cast<double>(in.ops_aggregation) - edge_feature_ops);
  const double comp2 = remaining / capacity;
  const double comp3 = edge_feature_ops / capacity;
  return std::max(comp1, comp2) + comp3;
}

double time_sub_b(const PartitionInput& in, std::uint32_t b) {
  AURORA_CHECK(b >= 1);
  return static_cast<double>(in.ops_vertex_update) /
         (static_cast<double>(b) * in.flops_per_pe);
}

PartitionResult partition(const PartitionInput& in) {
  AURORA_CHECK(in.total_pes >= 2);
  PartitionResult best;

  if (in.ops_vertex_update == 0) {
    // EdgeConv-style models: the whole array runs edge update + aggregation.
    best.a = in.total_pes;
    best.b = 0;
    best.t_a = time_sub_a(in, best.a);
    best.t_b = 0.0;
    best.diff = best.t_a;
    best.single_accelerator = true;
    return best;
  }

  best.diff = -1.0;
  for (std::uint32_t a = 1; a <= in.total_pes - 1; ++a) {
    const double t_a = time_sub_a(in, a);
    const double t_b = time_sub_b(in, in.total_pes - a);
    const double diff = std::abs(t_a - t_b);
    if (best.diff < 0.0 || diff < best.diff) {
      best.a = a;
      best.b = in.total_pes - a;
      best.t_a = t_a;
      best.t_b = t_b;
      best.diff = diff;
    }
  }
  return best;
}

}  // namespace aurora::partition
