// The resource partition heuristic (paper Algorithm 2).
//
// Splits the P-PE array into sub-accelerator A (edge update + aggregation)
// and sub-accelerator B (vertex update) so their pipeline stage times match,
// maximising utilisation and minimising inter-phase stalls.
#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "gnn/workflow.hpp"

namespace aurora::partition {

struct PartitionInput {
  /// O_ue, O_a, O_uv — per-phase scalar operation counts.
  OpCount ops_edge_update = 0;
  OpCount ops_aggregation = 0;
  OpCount ops_vertex_update = 0;
  /// E_f and m of Algorithm 2 (edge feature width, edge count).
  std::uint32_t edge_feature_dim = 0;
  EdgeId num_edges = 0;
  /// P and Flops (operations per cycle per PE).
  std::uint32_t total_pes = 0;
  double flops_per_pe = 8.0;
};

/// Build the partition input straight from a workflow.
[[nodiscard]] PartitionInput partition_input_from_workflow(
    const gnn::Workflow& workflow, std::uint32_t total_pes,
    double flops_per_pe);

struct PartitionResult {
  /// PEs assigned to sub-accelerator A / B (a + b == P).
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  /// Estimated stage times (cycles) at the chosen split.
  double t_a = 0.0;
  double t_b = 0.0;
  /// |T_A - T_B| at the chosen split.
  double diff = 0.0;
  /// True when vertex update is absent and the whole array forms one
  /// sub-accelerator (paper: "only one accelerator will be formed").
  bool single_accelerator = false;

  /// Pipeline stage time (the slower of the two stages).
  [[nodiscard]] double stage_time() const { return t_a > t_b ? t_a : t_b; }
  /// Utilisation of a balanced pipeline: useful work over capacity.
  [[nodiscard]] double utilization() const {
    const double total = t_a + t_b;
    return total > 0.0 ? total / (2.0 * stage_time()) : 1.0;
  }
};

/// T_A at a given sub-accelerator A size (Algorithm 2 lines 2-7).
[[nodiscard]] double time_sub_a(const PartitionInput& in, std::uint32_t a);
/// T_B at a given sub-accelerator B size (Algorithm 2 lines 9-11).
[[nodiscard]] double time_sub_b(const PartitionInput& in, std::uint32_t b);

/// Algorithm 2: scan a in [1, P-1] minimising |T_A - T_B|.
[[nodiscard]] PartitionResult partition(const PartitionInput& in);

}  // namespace aurora::partition
