// Parametric area model (paper Sec VI-F).
//
// Substitution note (DESIGN.md §1): the paper reports component ratios from
// Synopsys Design Compiler synthesis at TSMC 40 nm. We reproduce the same
// breakdown with an explicit parametric model: per-unit areas are calibrated
// so that the default configuration (32x32 PEs, 8 DP MACs and 100 KB buffer
// per PE) lands on the published ratios — MAC array 7.1 % of PE area, memory
// 82.9 %, control + reconfigurable switches 3.7 %; at chip level PE array
// 62.74 %, controller 0.9 %, flexible interconnect 5.2 %.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace aurora::energy {

/// Knobs of the area model. Defaults are the paper configuration.
struct AreaParams {
  std::uint32_t array_dim = 32;          // K (K x K PEs)
  std::uint32_t macs_per_pe = 8;         // double-precision MAC units per PE
  std::uint32_t pe_buffer_kib = 100;     // distributed bank buffer per PE

  // Per-unit areas in mm^2 at 40 nm (calibrated, see header comment).
  double mac_mm2 = 0.00214;              // one DP multiplier + adder
  double sram_mm2_per_kib = 0.0020;      // bank-buffer SRAM density
  double pe_control_mm2 = 0.00893;       // PE control + reconfig switches
  double pe_misc_mm2 = 0.01520;          // router interface, reuse FIFO, PPU
  double router_mm2 = 0.0166;            // one flexible router
  double bypass_link_mm2_per_row = 0.0543;  // segmented bypass wire + switches
  double controller_mm2 = 3.544;         // global controller block
  double dram_xbar_mm2_per_pe_row = 3.834;  // DRAM-interface crossbar slice
};

/// One line of the area report.
struct AreaComponent {
  std::string name;
  double mm2 = 0.0;
  double fraction_of_parent = 0.0;
};

struct AreaReport {
  // PE-level breakdown.
  double pe_total_mm2 = 0.0;
  std::vector<AreaComponent> pe_components;
  // Chip-level breakdown.
  double chip_total_mm2 = 0.0;
  std::vector<AreaComponent> chip_components;
};

[[nodiscard]] AreaReport compute_area(const AreaParams& params);

}  // namespace aurora::energy
