#include "energy/energy_model.hpp"

namespace aurora::energy {

EnergyEvents& EnergyEvents::operator+=(const EnergyEvents& other) {
  fp_multiplies += other.fp_multiplies;
  fp_adds += other.fp_adds;
  sram_small_bytes += other.sram_small_bytes;
  sram_large_bytes += other.sram_large_bytes;
  dram_bytes += other.dram_bytes;
  noc_link_bytes += other.noc_link_bytes;
  router_bytes += other.router_bytes;
  bypass_link_bytes += other.bypass_link_bytes;
  reconfig_switch_writes += other.reconfig_switch_writes;
  active_cycles += other.active_cycles;
  return *this;
}

EnergyBreakdown& EnergyBreakdown::operator+=(const EnergyBreakdown& other) {
  compute_pj += other.compute_pj;
  sram_pj += other.sram_pj;
  dram_pj += other.dram_pj;
  noc_pj += other.noc_pj;
  reconfig_pj += other.reconfig_pj;
  leakage_pj += other.leakage_pj;
  return *this;
}

EnergyBreakdown compute_energy(const EnergyEvents& e, const EnergyTable& t) {
  EnergyBreakdown b;
  b.compute_pj = static_cast<double>(e.fp_multiplies) * t.fp_mul_pj +
                 static_cast<double>(e.fp_adds) * t.fp_add_pj;
  b.sram_pj = static_cast<double>(e.sram_small_bytes) * t.sram_small_pj_per_byte +
              static_cast<double>(e.sram_large_bytes) * t.sram_large_pj_per_byte;
  b.dram_pj = static_cast<double>(e.dram_bytes) * t.dram_pj_per_byte;
  b.noc_pj = static_cast<double>(e.noc_link_bytes) * t.noc_link_pj_per_byte +
             static_cast<double>(e.router_bytes) * t.router_pj_per_byte +
             static_cast<double>(e.bypass_link_bytes) * t.bypass_link_pj_per_byte;
  b.reconfig_pj =
      static_cast<double>(e.reconfig_switch_writes) * t.reconfig_pj_per_switch;
  b.leakage_pj = static_cast<double>(e.active_cycles) * t.leakage_pj_per_cycle;
  return b;
}

}  // namespace aurora::energy
