#include "energy/area_model.hpp"

#include "common/error.hpp"

namespace aurora::energy {

AreaReport compute_area(const AreaParams& p) {
  AURORA_CHECK(p.array_dim > 0 && p.macs_per_pe > 0);
  AreaReport r;

  const double mac_array = p.macs_per_pe * p.mac_mm2;
  const double memory = p.pe_buffer_kib * p.sram_mm2_per_kib;
  const double control = p.pe_control_mm2;
  const double misc = p.pe_misc_mm2;
  r.pe_total_mm2 = mac_array + memory + control + misc;
  auto pe_frac = [&](double a) { return a / r.pe_total_mm2; };
  r.pe_components = {
      {"MAC array", mac_array, pe_frac(mac_array)},
      {"memory (SMB + IDMB/ODMB)", memory, pe_frac(memory)},
      {"PE control + reconfigurable switches", control, pe_frac(control)},
      {"router interface + reuse FIFO + PPU", misc, pe_frac(misc)},
  };

  const double num_pes = static_cast<double>(p.array_dim) * p.array_dim;
  const double pe_array = num_pes * r.pe_total_mm2;
  const double routers = num_pes * p.router_mm2;
  // One bypass link per row and per column.
  const double bypass = 2.0 * p.array_dim * p.bypass_link_mm2_per_row;
  const double interconnect = routers + bypass;
  const double controller = p.controller_mm2;
  const double dram_xbar = p.array_dim * p.dram_xbar_mm2_per_pe_row;
  r.chip_total_mm2 = pe_array + interconnect + controller + dram_xbar;
  auto chip_frac = [&](double a) { return a / r.chip_total_mm2; };
  r.chip_components = {
      {"PE array", pe_array, chip_frac(pe_array)},
      {"flexible interconnect (routers + bypass links)", interconnect,
       chip_frac(interconnect)},
      {"controller", controller, chip_frac(controller)},
      {"DRAM-interface crossbar + global wiring", dram_xbar,
       chip_frac(dram_xbar)},
  };
  return r;
}

}  // namespace aurora::energy
