// Energy accounting.
//
// Substitution note (DESIGN.md §1): the paper derives energy from Synopsys
// PrimeTime PX with activity traces, using Horowitz's per-operation energy
// table for on/off-chip events. We reproduce the same *accounting structure*:
// the simulator counts events (arithmetic ops, SRAM/DRAM accesses, NoC hops,
// router traversals) and this model converts counts to energy with a
// parameterised per-event table seeded from the Horowitz 45 nm numbers,
// scaled to 40 nm double precision.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "common/types.hpp"

namespace aurora::energy {

/// Per-event energies in picojoules. Defaults follow Horowitz (ISSCC 2014),
/// scaled: 64-bit FP ops cost ~4x the 32-bit figures; SRAM access energy
/// grows roughly with sqrt(capacity).
struct EnergyTable {
  double fp_mul_pj = 14.8;       // 64-bit multiply (4 x 3.7 pJ)
  double fp_add_pj = 3.6;        // 64-bit add      (4 x 0.9 pJ)
  double sram_small_pj_per_byte = 1.25;  // <= 8 KB banks (register-file like)
  double sram_large_pj_per_byte = 6.0;   // ~100 KB distributed bank buffer
  double dram_pj_per_byte = 162.5;       // ~1.3 nJ per 64-bit word
  double noc_link_pj_per_byte = 0.4;     // one hop over a mesh link
  double router_pj_per_byte = 0.6;       // buffering + crossbar traversal
  double bypass_link_pj_per_byte = 0.3;  // segmented bypass wire (no router)
  double reconfig_pj_per_switch = 5.0;   // writing one link-switch/PE config bit
  /// Static power as a fraction of a fully-active accelerator's dynamic
  /// power; multiplied by execution cycles.
  double leakage_pj_per_cycle = 250.0;
};

/// Event counts the simulator produces.
struct EnergyEvents {
  OpCount fp_multiplies = 0;
  OpCount fp_adds = 0;
  Bytes sram_small_bytes = 0;
  Bytes sram_large_bytes = 0;
  Bytes dram_bytes = 0;
  Bytes noc_link_bytes = 0;      // payload-bytes x hops over regular links
  Bytes router_bytes = 0;        // payload-bytes x router traversals
  Bytes bypass_link_bytes = 0;   // payload-bytes x bypass-segment traversals
  std::uint64_t reconfig_switch_writes = 0;
  Cycle active_cycles = 0;

  EnergyEvents& operator+=(const EnergyEvents& other);
};

/// Energy in picojoules, broken down by source.
struct EnergyBreakdown {
  double compute_pj = 0.0;
  double sram_pj = 0.0;
  double dram_pj = 0.0;
  double noc_pj = 0.0;
  double reconfig_pj = 0.0;
  double leakage_pj = 0.0;

  [[nodiscard]] double total_pj() const {
    return compute_pj + sram_pj + dram_pj + noc_pj + reconfig_pj + leakage_pj;
  }
  [[nodiscard]] double total_mj() const { return total_pj() * 1e-9; }
  EnergyBreakdown& operator+=(const EnergyBreakdown& other);
};

/// Convert event counts to energy under `table`.
[[nodiscard]] EnergyBreakdown compute_energy(const EnergyEvents& events,
                                             const EnergyTable& table);

}  // namespace aurora::energy
