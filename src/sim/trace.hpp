// Execution tracing for the cycle engine: a low-overhead event recorder and
// an ASCII timeline renderer, so a run's phase structure (DRAM loads,
// message waves, PE task bursts, reconfigurations) is inspectable without a
// waveform viewer.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace aurora::sim {

enum class TraceEvent : std::uint8_t {
  kPacketInjected,
  kPacketDelivered,
  kTaskComplete,
  kDramRequest,
  kReconfigure,
  kTileStart,
};

[[nodiscard]] const char* trace_event_name(TraceEvent e);

struct TraceRecord {
  Cycle at = 0;
  TraceEvent kind{};
  /// Event-specific payloads (node id, byte count, tile index, ...).
  std::uint64_t arg0 = 0;
  std::uint64_t arg1 = 0;
};

/// Event recorder. Disabled tracers drop events with a single branch, so a
/// tracer can always be plumbed through and only pay when switched on.
class Tracer {
 public:
  void enable(bool on = true) { enabled_ = on; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  void record(Cycle at, TraceEvent kind, std::uint64_t arg0 = 0,
              std::uint64_t arg1 = 0) {
    if (!enabled_) return;
    records_.push_back({at, kind, arg0, arg1});
  }

  void clear() { records_.clear(); }
  [[nodiscard]] std::size_t size() const { return records_.size(); }
  [[nodiscard]] const std::vector<TraceRecord>& records() const {
    return records_;
  }
  [[nodiscard]] std::uint64_t count(TraceEvent kind) const;

  /// ASCII timeline: one row per event kind, `buckets` columns over the
  /// run's cycle span, glyph darkness ~ event density.
  [[nodiscard]] std::string render_timeline(std::size_t buckets = 64) const;

  /// "cycle,event,arg0,arg1" rows with a header.
  void write_csv(std::ostream& out) const;

 private:
  bool enabled_ = false;
  std::vector<TraceRecord> records_;
};

}  // namespace aurora::sim
