// Execution tracing for the cycle engine: a low-overhead event recorder and
// an ASCII timeline renderer, so a run's phase structure (DRAM loads,
// message waves, PE task bursts, reconfigurations) is inspectable without a
// waveform viewer.
#pragma once

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <string>

#include "common/types.hpp"

namespace aurora::sim {

enum class TraceEvent : std::uint8_t {
  kPacketInjected,
  kPacketDelivered,
  kTaskComplete,
  kDramRequest,
  kReconfigure,
  kTileStart,
  /// A span of GNN-phase activity: `at` is the span's first active cycle,
  /// arg0 the phase index (0 edge-update, 1 aggregation, 2 vertex-update),
  /// arg1 the span length in cycles.
  kPhaseSpan,
  /// A DRAM bulk stream: `at` is the stream's start cycle, arg0 the byte
  /// count, arg1 the cycles until the stream drained.
  kDramSpan,
  /// Cluster scale-out events (recorded by the ClusterEngine on the shared
  /// cluster clock). A chip execution segment: `at` is the segment's start
  /// cycle, arg0 encodes chip * 4 + kind (0 compute-pre, 1 halo-wait,
  /// 2 compute-post), arg1 the duration in cycles.
  kClusterSegment,
  /// A halo message entering the inter-chip link: arg0 encodes
  /// src_chip * 256 + dst_chip, arg1 the payload bytes.
  kHaloSent,
  /// A halo message delivered at its destination chip (same encoding).
  kHaloDelivered,
};

[[nodiscard]] const char* trace_event_name(TraceEvent e);

struct TraceRecord {
  Cycle at = 0;
  TraceEvent kind{};
  /// Event-specific payloads (node id, byte count, tile index, ...).
  std::uint64_t arg0 = 0;
  std::uint64_t arg1 = 0;
};

/// Event recorder. Disabled tracers drop events with a single branch, so a
/// tracer can always be plumbed through and only pay when switched on.
/// Memory is bounded: past `capacity()` records the oldest are evicted
/// (ring-buffer style) and `dropped()` counts what was lost, so tracing a
/// long run degrades to a suffix trace instead of exhausting memory.
class Tracer {
 public:
  /// ~48 MiB of records at the default — far beyond any test workload, yet
  /// a hard ceiling for production-scale runs.
  static constexpr std::size_t kDefaultCapacity = std::size_t{1} << 21;

  void enable(bool on = true) { enabled_ = on; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  void record(Cycle at, TraceEvent kind, std::uint64_t arg0 = 0,
              std::uint64_t arg1 = 0) {
    if (!enabled_) return;
    if (records_.size() >= capacity_) {
      records_.pop_front();
      ++dropped_;
    }
    records_.push_back({at, kind, arg0, arg1});
  }

  /// Maximum records retained; older records are evicted beyond it.
  void set_capacity(std::size_t capacity);
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  /// Records evicted since the last clear().
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

  void clear() {
    records_.clear();
    dropped_ = 0;
  }
  [[nodiscard]] std::size_t size() const { return records_.size(); }
  [[nodiscard]] const std::deque<TraceRecord>& records() const {
    return records_;
  }
  [[nodiscard]] std::uint64_t count(TraceEvent kind) const;

  /// ASCII timeline: one row per event kind, `buckets` columns over the
  /// run's cycle span, glyph darkness ~ event density.
  [[nodiscard]] std::string render_timeline(std::size_t buckets = 64) const;

  /// "cycle,event,arg0,arg1" rows with a header.
  void write_csv(std::ostream& out) const;

 private:
  bool enabled_ = false;
  std::size_t capacity_ = kDefaultCapacity;
  std::deque<TraceRecord> records_;
  std::uint64_t dropped_ = 0;
};

}  // namespace aurora::sim
