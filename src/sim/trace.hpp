// Execution tracing for the cycle engine: a low-overhead event recorder and
// an ASCII timeline renderer, so a run's phase structure (DRAM loads,
// message waves, PE task bursts, reconfigurations) is inspectable without a
// waveform viewer.
#pragma once

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <string>

#include "common/types.hpp"

namespace aurora::sim {

enum class TraceEvent : std::uint8_t {
  kPacketInjected,
  kPacketDelivered,
  kTaskComplete,
  kDramRequest,
  kReconfigure,
  kTileStart,
  /// A span of GNN-phase activity: `at` is the span's first active cycle,
  /// arg0 the phase index (0 edge-update, 1 aggregation, 2 vertex-update),
  /// arg1 the span length in cycles.
  kPhaseSpan,
  /// A DRAM bulk stream: `at` is the stream's start cycle, arg0 the byte
  /// count, arg1 the cycles until the stream drained. Enriched for the
  /// critical-path profiler: arg2 carries the row-hit count of the stream,
  /// arg3 packs (row misses << 32 | row conflicts), both saturating.
  kDramSpan,
  /// One tile's compute window (everything between the tile's DRAM load and
  /// its writeback): `at` is the window's start cycle, arg0 the tile index,
  /// arg1 the window length in cycles, arg2 the NoC busy cycles inside the
  /// window, arg3 the summed PE busy cycles inside the window.
  kComputeSpan,
  /// Cluster scale-out events (recorded by the ClusterEngine on the shared
  /// cluster clock). A chip execution segment: `at` is the segment's start
  /// cycle, arg0 encodes chip * 4 + kind (0 compute-pre, 1 halo-wait,
  /// 2 compute-post), arg1 the duration in cycles. Compute-pre segments are
  /// enriched with the chip-local engine's breakdown of the segment: arg2 =
  /// DRAM cycles, arg3 packs (NoC busy cycles << 32 | reconfig cycles),
  /// both saturating. Zero-length segments are recorded too, so the
  /// profiler can rely on the strict per-chip pre/wait/post layer cadence.
  kClusterSegment,
  /// A halo message entering the inter-chip link: arg0 encodes
  /// src_chip * 256 + dst_chip, arg1 the payload bytes, arg2 the GNN layer
  /// the halo belongs to.
  kHaloSent,
  /// A halo message delivered at its destination chip (same encoding).
  kHaloDelivered,
  /// Run delimiters bracketing one engine run so a tracer shared across
  /// layers/requests can be segmented (each run's cycle axis restarts at
  /// 0). kRunBegin: arg0 = run kind (0 single-chip layer, 1 cluster run),
  /// arg1 = tile count (chip runs) or chip count (cluster runs). kRunEnd:
  /// `at` and arg0 = the run's total cycles, arg1 = the non-overlapped
  /// reconfiguration tail (chip runs; 0 for cluster runs).
  kRunBegin,
  kRunEnd,
  /// Fault-plan annotations (src/fault). Chip transitions are recorded on
  /// the control-plane (serving) clock: arg0 = chip index. Link transitions
  /// on the cluster-run clock: arg0 = src_chip * 256 + dst_chip, arg1 = the
  /// degradation multiplier in permille (1500 = 1.5x; 1000 on restore).
  kChipDown,
  kChipUp,
  kLinkDegraded,
  kLinkRestored,
  /// Dynamic-graph workload annotations (src/workload), recorded on the
  /// control-plane (serving/arrival) clock. A streaming graph mutation:
  /// arg0 = mutation kind (0 edge-add, 1 edge-remove, 2 vertex-add,
  /// 3 vertex-remove), arg1 = pack_u32_pair(u, v) (v = 0 for vertex ops),
  /// arg2 = the logical directed edge count after the mutation.
  kGraphMutation,
  /// The shard churn tracker crossed its drift threshold and the planner
  /// recut the graph: arg0 = chip count, arg1 = the fresh plan's cut edges,
  /// arg2 = the drifted cut-edge count that triggered the recut, arg3 = the
  /// mutations absorbed since the previous plan.
  kReshard,
};

/// Run kinds carried in kRunBegin's arg0.
inline constexpr std::uint64_t kRunKindChip = 0;
inline constexpr std::uint64_t kRunKindCluster = 1;

/// Saturating (hi << 32 | lo) packing for enriched trace args carrying two
/// counts in one 64-bit payload.
[[nodiscard]] constexpr std::uint64_t pack_u32_pair(std::uint64_t hi,
                                                    std::uint64_t lo) {
  constexpr std::uint64_t kMax = 0xffffffffull;
  return ((hi < kMax ? hi : kMax) << 32) | (lo < kMax ? lo : kMax);
}
[[nodiscard]] constexpr std::uint64_t unpack_u32_hi(std::uint64_t packed) {
  return packed >> 32;
}
[[nodiscard]] constexpr std::uint64_t unpack_u32_lo(std::uint64_t packed) {
  return packed & 0xffffffffull;
}

[[nodiscard]] const char* trace_event_name(TraceEvent e);

struct TraceRecord {
  Cycle at = 0;
  TraceEvent kind{};
  /// Event-specific payloads (node id, byte count, tile index, ...).
  std::uint64_t arg0 = 0;
  std::uint64_t arg1 = 0;
  /// Enrichment payloads carrying the dependency/attribution detail the
  /// critical-path profiler consumes (see the event docs above); zero for
  /// events that don't use them.
  std::uint64_t arg2 = 0;
  std::uint64_t arg3 = 0;
};

/// Event recorder. Disabled tracers drop events with a single branch, so a
/// tracer can always be plumbed through and only pay when switched on.
/// Memory is bounded: past `capacity()` records the oldest are evicted
/// (ring-buffer style) and `dropped()` counts what was lost, so tracing a
/// long run degrades to a suffix trace instead of exhausting memory.
class Tracer {
 public:
  /// ~96 MiB of records at the default — far beyond any test workload, yet
  /// a hard ceiling for production-scale runs.
  static constexpr std::size_t kDefaultCapacity = std::size_t{1} << 21;

  void enable(bool on = true) { enabled_ = on; }
  [[nodiscard]] bool enabled() const { return enabled_; }

  void record(Cycle at, TraceEvent kind, std::uint64_t arg0 = 0,
              std::uint64_t arg1 = 0, std::uint64_t arg2 = 0,
              std::uint64_t arg3 = 0) {
    if (!enabled_) return;
    if (records_.size() >= capacity_) {
      records_.pop_front();
      ++dropped_;
    }
    records_.push_back({at, kind, arg0, arg1, arg2, arg3});
  }

  /// Maximum records retained; older records are evicted beyond it.
  void set_capacity(std::size_t capacity);
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  /// Records evicted since the last clear().
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

  void clear() {
    records_.clear();
    dropped_ = 0;
  }
  [[nodiscard]] std::size_t size() const { return records_.size(); }
  [[nodiscard]] const std::deque<TraceRecord>& records() const {
    return records_;
  }
  [[nodiscard]] std::uint64_t count(TraceEvent kind) const;

  /// ASCII timeline: one row per event kind, `buckets` columns over the
  /// run's cycle span, glyph darkness ~ event density.
  [[nodiscard]] std::string render_timeline(std::size_t buckets = 64) const;

  /// "cycle,event,arg0,arg1,arg2,arg3" rows with a header.
  void write_csv(std::ostream& out) const;

 private:
  bool enabled_ = false;
  std::size_t capacity_ = kDefaultCapacity;
  std::deque<TraceRecord> records_;
  std::uint64_t dropped_ = 0;
};

}  // namespace aurora::sim
