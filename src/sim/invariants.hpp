// Simulation invariant checking: conservation laws that must hold at every
// observation point of a run, regardless of configuration or scheduler mode.
//
// Every Component may implement verify_invariants() to self-check its
// conserved quantities (see docs/architecture.md, "Invariants"): the NoC's
// flit/packet/credit balances, the DRAM model's burst and refresh
// accounting, the PEs' task conservation. The InvariantChecker is a
// read-only sim::Component (same pattern as the Sampler) that runs those
// checks at a configurable cadence and — through check_now() — at drain
// points, throwing an Error that lists every violated rule.
//
// Fast-forward awareness: with interval == 0 (the default) the checker has
// no events of its own and never perturbs the scheduler; with interval > 0
// its next_event_cycle() pins clock jumps to check boundaries, so mid-run
// checks observe the same cycles under lockstep and fast-forward. Either
// way the checker reports idle() always and never prolongs a run, and a run
// with the checker attached reports bit-identical RunMetrics to one
// without.
#pragma once

#include <string>
#include <vector>

#include "sim/component.hpp"

namespace aurora::sim {

/// One violated conservation law.
struct InvariantViolation {
  std::string component;
  std::string rule;
  std::string detail;
  Cycle cycle = 0;
};

/// Collects violations across the components of one check pass. Passed to
/// Component::verify_invariants(); components call require() per rule.
class InvariantReport {
 public:
  InvariantReport(Cycle now, bool drained) : now_(now), drained_(drained) {}

  /// Cycle the check runs at.
  [[nodiscard]] Cycle now() const { return now_; }
  /// True at drain points (run_until_idle returned): drain-only laws —
  /// empty FIFOs, restored credits, zero in-flight work — apply.
  [[nodiscard]] bool drained() const { return drained_; }

  /// Name attributed to subsequent require() calls (set by the checker to
  /// the component under test before each verify_invariants call).
  void set_subject(std::string name) { subject_ = std::move(name); }

  /// Record a violation of `rule` unless `ok`. Returns `ok` so callers can
  /// guard dependent checks.
  bool require(bool ok, std::string rule, std::string detail = {});

  [[nodiscard]] bool ok() const { return violations_.empty(); }
  [[nodiscard]] const std::vector<InvariantViolation>& violations() const {
    return violations_;
  }
  /// Multi-line human-readable listing of every violation.
  [[nodiscard]] std::string to_string() const;

 private:
  Cycle now_;
  bool drained_;
  std::string subject_;
  std::vector<InvariantViolation> violations_;
};

/// Runs verify_invariants() over a set of watched components. Attach with
/// Simulator::add() (after the real components, so interval checks observe
/// post-tick state) for mid-run cadence checks, and call check_now() at
/// drain points.
class InvariantChecker final : public Component {
 public:
  /// `interval` > 0 additionally checks every `interval` cycles mid-run
  /// (always-true laws only); 0 = drain-point checks only, in which case
  /// the checker's ticks are all no-ops and it never wakes the scheduler.
  explicit InvariantChecker(Cycle interval = 0);

  void watch(Component* component);
  /// Drop all watched components (they are about to be destroyed).
  void clear();

  /// Run a check pass at `now`; throws Error listing every violation.
  /// `drained` enables the drain-only rules — only pass true when
  /// run_until_idle has returned.
  void check_now(Cycle now, bool drained = true) const;

  [[nodiscard]] Cycle interval() const { return interval_; }
  /// Check passes executed (mid-run + drain), for tests.
  [[nodiscard]] std::uint64_t checks_run() const { return checks_run_; }

  void tick(Cycle now) override;
  /// Never keeps the simulation alive: checking happens only while real
  /// components still have work (plus explicit check_now calls).
  [[nodiscard]] bool idle() const override { return true; }
  /// Pins fast-forward jumps to the next check boundary (no events at all
  /// when interval == 0); ticks strictly inside an interval are no-ops.
  [[nodiscard]] Cycle next_event_cycle(Cycle now) const override;

 private:
  /// Runs every watched component's checks; throws on any violation.
  void run_checks(Cycle now, bool drained) const;

  Cycle interval_;
  Cycle next_check_at_;
  std::vector<Component*> watched_;
  mutable std::uint64_t checks_run_ = 0;
};

}  // namespace aurora::sim
