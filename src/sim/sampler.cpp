#include "sim/sampler.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/metrics_registry.hpp"

namespace aurora::sim {

Sampler::Sampler(Cycle interval)
    : Component("sampler"), interval_(interval) {
  AURORA_CHECK_MSG(interval > 0, "sampler interval must be positive");
}

void Sampler::watch(const std::string& name, Probe probe) {
  AURORA_CHECK(probe != nullptr);
  for (std::size_t i = 0; i < series_.size(); ++i) {
    if (series_[i].name == name) {
      probes_[i] = std::move(probe);
      return;
    }
  }
  series_.push_back({name, std::vector<double>(cycles_.size(), 0.0)});
  probes_.push_back(std::move(probe));
}

void Sampler::watch_registry(const MetricsRegistry& registry,
                             const std::string& prefix) {
  for (const auto* entry : registry.match(prefix)) {
    if (entry->kind == MetricKind::kHistogram) continue;
    watch(entry->name, entry->probe);
  }
}

void Sampler::detach() {
  for (auto& p : probes_) p = nullptr;
}

void Sampler::clear() {
  probes_.clear();
  series_.clear();
  cycles_.clear();
  next_sample_at_ = 0;
}

void Sampler::tick(Cycle now) {
  if (now < next_sample_at_) return;
  cycles_.push_back(now);
  for (std::size_t i = 0; i < probes_.size(); ++i) {
    series_[i].values.push_back(probes_[i] ? probes_[i]() : 0.0);
  }
  // Stay on interval multiples even if a boundary was somehow overshot
  // (cannot happen under the scheduler's jump rule, but cheap to be exact).
  do {
    next_sample_at_ += interval_;
  } while (next_sample_at_ <= now);
}

Cycle Sampler::next_event_cycle(Cycle now) const {
  return std::max(now, next_sample_at_);
}

}  // namespace aurora::sim
