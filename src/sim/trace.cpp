#include "sim/trace.hpp"

#include <algorithm>
#include <array>
#include <ostream>
#include <sstream>
#include <vector>

#include "common/error.hpp"
#include "common/strings.hpp"

namespace aurora::sim {

const char* trace_event_name(TraceEvent e) {
  switch (e) {
    case TraceEvent::kPacketInjected:
      return "packet-injected";
    case TraceEvent::kPacketDelivered:
      return "packet-delivered";
    case TraceEvent::kTaskComplete:
      return "task-complete";
    case TraceEvent::kDramRequest:
      return "dram-request";
    case TraceEvent::kReconfigure:
      return "reconfigure";
    case TraceEvent::kTileStart:
      return "tile-start";
    case TraceEvent::kPhaseSpan:
      return "phase-span";
    case TraceEvent::kDramSpan:
      return "dram-span";
    case TraceEvent::kComputeSpan:
      return "compute-span";
    case TraceEvent::kClusterSegment:
      return "cluster-segment";
    case TraceEvent::kHaloSent:
      return "halo-sent";
    case TraceEvent::kHaloDelivered:
      return "halo-delivered";
    case TraceEvent::kRunBegin:
      return "run-begin";
    case TraceEvent::kRunEnd:
      return "run-end";
    case TraceEvent::kChipDown:
      return "chip-down";
    case TraceEvent::kChipUp:
      return "chip-up";
    case TraceEvent::kLinkDegraded:
      return "link-degraded";
    case TraceEvent::kLinkRestored:
      return "link-restored";
    case TraceEvent::kGraphMutation:
      return "graph-mutation";
    case TraceEvent::kReshard:
      return "reshard";
  }
  throw Error("invalid TraceEvent");
}

void Tracer::set_capacity(std::size_t capacity) {
  AURORA_CHECK_MSG(capacity > 0, "tracer capacity must be positive");
  capacity_ = capacity;
  while (records_.size() > capacity_) {
    records_.pop_front();
    ++dropped_;
  }
}

std::uint64_t Tracer::count(TraceEvent kind) const {
  std::uint64_t total = 0;
  for (const auto& r : records_) total += (r.kind == kind);
  return total;
}

std::string Tracer::render_timeline(std::size_t buckets) const {
  AURORA_CHECK(buckets >= 2);
  if (records_.empty()) return "(empty trace)\n";

  Cycle max_cycle = 1;
  for (const auto& r : records_) max_cycle = std::max(max_cycle, r.at);

  static constexpr std::array<TraceEvent, 18> kKinds = {
      TraceEvent::kRunBegin,       TraceEvent::kTileStart,
      TraceEvent::kReconfigure,    TraceEvent::kPhaseSpan,
      TraceEvent::kComputeSpan,    TraceEvent::kDramSpan,
      TraceEvent::kDramRequest,    TraceEvent::kPacketInjected,
      TraceEvent::kPacketDelivered, TraceEvent::kTaskComplete,
      TraceEvent::kClusterSegment, TraceEvent::kHaloSent,
      TraceEvent::kHaloDelivered,  TraceEvent::kChipDown,
      TraceEvent::kChipUp,         TraceEvent::kLinkDegraded,
      TraceEvent::kLinkRestored,   TraceEvent::kRunEnd};
  static constexpr const char* kGlyphs = " .:-=+*#%@";

  std::ostringstream os;
  os << "cycles 0.." << max_cycle << " (" << buckets << " buckets)\n";
  for (TraceEvent kind : kKinds) {
    std::vector<std::uint64_t> hist(buckets, 0);
    std::uint64_t total = 0;
    for (const auto& r : records_) {
      if (r.kind != kind) continue;
      const auto b = static_cast<std::size_t>(
          static_cast<double>(r.at) / static_cast<double>(max_cycle + 1) *
          static_cast<double>(buckets));
      ++hist[std::min(b, buckets - 1)];
      ++total;
    }
    if (total == 0) continue;
    const std::uint64_t peak = *std::max_element(hist.begin(), hist.end());
    os << pad_right(trace_event_name(kind), 18) << " |";
    for (const auto h : hist) {
      const auto level =
          h == 0 ? 0
                 : 1 + static_cast<std::size_t>(8.0 * static_cast<double>(h) /
                                                static_cast<double>(peak));
      os << kGlyphs[std::min<std::size_t>(level, 9)];
    }
    os << "| " << total << " events\n";
  }
  return os.str();
}

void Tracer::write_csv(std::ostream& out) const {
  out << "cycle,event,arg0,arg1,arg2,arg3\n";
  for (const auto& r : records_) {
    out << r.at << ',' << trace_event_name(r.kind) << ',' << r.arg0 << ','
        << r.arg1 << ',' << r.arg2 << ',' << r.arg3 << '\n';
  }
}

}  // namespace aurora::sim
