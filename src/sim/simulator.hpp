// The cycle-driven simulation scheduler.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"
#include "sim/component.hpp"

namespace aurora::sim {

/// Runs a set of Components in lockstep. Ownership of components stays with
/// the caller (they are typically members of an accelerator object); the
/// simulator only sequences them.
class Simulator {
 public:
  /// Register a component. Components tick in registration order each cycle;
  /// correctness must not depend on that order (enforced by the two-phase
  /// queue discipline in each component).
  void add(Component* c);

  /// Run until all components are idle or `max_cycles` elapse.
  /// Returns the cycle count at stop. Throws if the deadline is hit while
  /// work remains (deadlock / livelock guard).
  Cycle run_until_idle(Cycle max_cycles);

  /// Run exactly `n` cycles regardless of idleness.
  void run_cycles(Cycle n);

  /// Step a single cycle.
  void step();

  [[nodiscard]] Cycle now() const { return now_; }
  [[nodiscard]] bool all_idle() const;

 private:
  std::vector<Component*> components_;
  Cycle now_ = 0;
};

}  // namespace aurora::sim
