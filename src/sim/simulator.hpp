// The cycle-driven simulation scheduler.
//
// Two execution modes share one code path:
//   * lockstep — every component ticks every cycle (the original engine);
//   * event-driven fast-forward (default) — after each step the scheduler
//     asks every active component for its next event cycle and, when all of
//     them agree nothing can happen in between, jumps the clock straight
//     there. Components whose hooks keep the lockstep default ("tick me
//     every cycle") pin the clock, so mixing legacy and event-aware
//     components stays correct.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"
#include "sim/component.hpp"

namespace aurora::sim {

/// Runs a set of Components in lockstep. Ownership of components stays with
/// the caller (they are typically members of an accelerator object); the
/// simulator only sequences them.
class Simulator {
 public:
  /// Register a component. Components tick in registration order each cycle;
  /// correctness must not depend on that order (enforced by the two-phase
  /// queue discipline in each component).
  void add(Component* c);

  /// Enable/disable idle-cycle fast-forwarding (enabled by default).
  /// Disabling reproduces the pure lockstep engine tick for tick; with the
  /// component hooks implemented correctly both modes yield bit-identical
  /// results (asserted by the equivalence tests).
  void set_fast_forward(bool enabled) { fast_forward_ = enabled; }
  [[nodiscard]] bool fast_forward() const { return fast_forward_; }

  /// Run until all components are idle or `max_cycles` elapse.
  /// Returns the cycle count at stop. Throws if the deadline is hit while
  /// work remains (deadlock / livelock guard).
  Cycle run_until_idle(Cycle max_cycles);

  /// Run exactly `n` cycles regardless of idleness (always lockstep: a
  /// caller asking for N ticks gets N ticks).
  void run_cycles(Cycle n);

  /// Step a single cycle.
  void step();

  [[nodiscard]] Cycle now() const { return now_; }
  [[nodiscard]] bool all_idle() const;

  /// Cycles skipped by fast-forward jumps since construction (diagnostic).
  [[nodiscard]] Cycle cycles_skipped() const { return cycles_skipped_; }

  // -- Window API (used by the ParallelSimulator coordinator) --------------

  /// Minimum next-event cycle over all active components (clamped >= now);
  /// kNoEvent when every active component is drained. Retires drained
  /// components exactly like the fast-forward probe does.
  [[nodiscard]] Cycle next_event() { return earliest_event(); }

  /// Jump the clock straight to `target` (>= now) without ticking: every
  /// active component gets skip_cycles(now, target). The caller guarantees
  /// no component has an event in [now, target) — in the parallel engine
  /// the coordinator jumps to the global minimum next-event cycle, which
  /// satisfies this for every partition.
  void jump_to(Cycle target);

  /// Run the conservative window [now, end): lockstep mode ticks every
  /// cycle; fast-forward mode probes and jumps exactly like
  /// run_until_idle, but never past `end` and without the idle exit (a
  /// drained partition still advances its clock to the barrier). Leaves
  /// now() == end.
  void run_window(Cycle end);

 private:
  /// Minimum next-event cycle over all active components, clamped to
  /// >= now_; kNoEvent when every active component is drained.
  [[nodiscard]] Cycle earliest_event();

  std::vector<Component*> components_;
  Cycle now_ = 0;
  Cycle cycles_skipped_ = 0;
  bool fast_forward_ = true;
};

}  // namespace aurora::sim
