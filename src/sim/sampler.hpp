// Cycle-driven time-series sampler: a sim::Component that snapshots a set
// of metric probes every `interval` cycles, turning end-of-run aggregates
// into time-resolved series (NoC occupancy over a run, DRAM traffic per
// window, PE queue depths) without touching any component's hot path.
//
// Fast-forward awareness: the sampler's next_event_cycle() names the next
// sample boundary, so the scheduler's clock jumps land exactly on sample
// points instead of being disabled — between boundaries the sampler's ticks
// are no-ops, satisfying the fast-forward contract. Because every other
// component's ticks in the jumped span were provably no-ops too, the state
// observed at each boundary is bit-identical to a lockstep run, and a run
// with the sampler attached reports the same RunMetrics as one without
// (asserted by the observability equivalence tests).
//
// The sampler never prolongs a run: it reports idle() always, so
// run_until_idle() stops when the real components drain, mid-interval or
// not.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "sim/component.hpp"

namespace aurora::sim {

class Sampler final : public Component {
 public:
  using Probe = std::function<double()>;

  struct Series {
    std::string name;
    std::vector<double> values;  // parallel to sample_cycles()
  };

  explicit Sampler(Cycle interval);

  [[nodiscard]] Cycle interval() const { return interval_; }

  /// Add a series fed by `probe` at every sample point. Re-watching an
  /// existing name rebinds its probe and keeps the recorded values (used
  /// when components are rebuilt between layer runs).
  void watch(const std::string& name, Probe probe);
  /// Watch every counter and gauge in `registry` whose name starts with
  /// `prefix` ("" = all). Histograms are skipped: a distribution has no
  /// single value to plot per sample point.
  void watch_registry(const MetricsRegistry& registry,
                      const std::string& prefix = "");
  /// Drop all probes but keep the recorded series. Call when the observed
  /// components are about to be destroyed (probes point into them).
  void detach();
  /// Drop probes, series and samples; restart the sample clock at 0.
  void clear();

  [[nodiscard]] const std::vector<Cycle>& sample_cycles() const {
    return cycles_;
  }
  [[nodiscard]] const std::vector<Series>& series() const { return series_; }
  [[nodiscard]] std::size_t num_samples() const { return cycles_.size(); }

  void tick(Cycle now) override;
  /// Never keeps the simulation alive: sampling happens only while real
  /// components still have work.
  [[nodiscard]] bool idle() const override { return true; }
  /// Pins fast-forward jumps to the next sample boundary; ticks strictly
  /// inside an interval are no-ops, so the jump contract holds.
  [[nodiscard]] Cycle next_event_cycle(Cycle now) const override;

 private:
  Cycle interval_;
  Cycle next_sample_at_ = 0;
  std::vector<Probe> probes_;  // parallel to series_
  std::vector<Series> series_;
  std::vector<Cycle> cycles_;
};

}  // namespace aurora::sim
