#include "sim/invariants.hpp"

#include <sstream>

#include "common/error.hpp"

namespace aurora::sim {

bool InvariantReport::require(bool ok, std::string rule, std::string detail) {
  if (!ok) {
    violations_.push_back(
        {subject_, std::move(rule), std::move(detail), now_});
  }
  return ok;
}

std::string InvariantReport::to_string() const {
  std::ostringstream os;
  os << violations_.size() << " invariant violation"
     << (violations_.size() == 1 ? "" : "s") << " at cycle " << now_
     << (drained_ ? " (drained)" : "");
  for (const auto& v : violations_) {
    os << "\n  [" << v.component << "] " << v.rule;
    if (!v.detail.empty()) os << ": " << v.detail;
  }
  return os.str();
}

InvariantChecker::InvariantChecker(Cycle interval)
    : Component("invariants"), interval_(interval), next_check_at_(interval) {}

void InvariantChecker::watch(Component* component) {
  AURORA_CHECK(component != nullptr);
  watched_.push_back(component);
}

void InvariantChecker::clear() { watched_.clear(); }

void InvariantChecker::run_checks(Cycle now, bool drained) const {
  ++checks_run_;
  InvariantReport report(now, drained);
  for (const Component* c : watched_) {
    report.set_subject(c->name());
    c->verify_invariants(report);
  }
  if (!report.ok()) throw Error(report.to_string());
}

void InvariantChecker::check_now(Cycle now, bool drained) const {
  run_checks(now, drained);
}

void InvariantChecker::tick(Cycle now) {
  if (interval_ == 0 || now < next_check_at_) return;
  // Catch-up keeps the boundary grid stable even if a drain gap left
  // several boundaries behind; one check covers them all.
  while (next_check_at_ <= now) next_check_at_ += interval_;
  run_checks(now, /*drained=*/false);
}

Cycle InvariantChecker::next_event_cycle(Cycle now) const {
  if (interval_ == 0) return kNoEvent;
  return next_check_at_ <= now ? now : next_check_at_;
}

}  // namespace aurora::sim
