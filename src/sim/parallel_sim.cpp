#include "sim/parallel_sim.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/parallel.hpp"

namespace aurora::sim {

ParallelSimulator::ParallelSimulator(Cycle lookahead) : lookahead_(lookahead) {
  AURORA_CHECK_MSG(lookahead >= 1,
                   "conservative windows need lookahead >= 1 cycle");
}

Simulator& ParallelSimulator::add_partition() {
  partitions_.push_back(std::make_unique<Simulator>());
  partitions_.back()->set_fast_forward(fast_forward_);
  return *partitions_.back();
}

void ParallelSimulator::set_fast_forward(bool enabled) {
  fast_forward_ = enabled;
  for (auto& p : partitions_) p->set_fast_forward(enabled);
}

Cycle ParallelSimulator::run_until_idle(Cycle max_cycles, unsigned jobs) {
  AURORA_CHECK(!partitions_.empty());
  const Cycle deadline = now_ + max_cycles;
  const unsigned want = std::min<unsigned>(
      resolve_jobs(jobs), static_cast<unsigned>(partitions_.size()));
  ThreadPool pool(want > 0 ? want - 1 : 0);

  std::vector<Cycle> next(partitions_.size(), kNoEvent);
  for (;;) {
    // Barrier: move cross-partition messages, then look for the next event.
    // Both run single-threaded — no partition is executing here.
    if (exchange_) exchange_();
    Cycle global_next = kNoEvent;
    bool idle = true;
    for (std::size_t i = 0; i < partitions_.size(); ++i) {
      next[i] = partitions_[i]->next_event();
      global_next = std::min(global_next, next[i]);
      idle = idle && partitions_[i]->all_idle();
    }
    // Exit on idleness alone, exactly like Simulator::run_until_idle: an
    // idle component may still advertise events (the invariant checker's
    // next interval boundary), and those must not keep the cluster alive.
    if (idle) return now_;

    // kFarFuture components ("waiting on a delivery that is not coming")
    // push global_next near the deadline and trip the guard below — the
    // same deadlock report a serial run produces.
    const Cycle start = fast_forward_ ? std::max(now_, global_next) : now_;
    AURORA_CHECK_MSG(start < deadline,
                     "simulation exceeded " << max_cycles
                                            << " cycles without draining; "
                                               "likely deadlock");
    const Cycle end = std::min(start + lookahead_, deadline);

    if (fast_forward_) {
      // Global jump to the earliest event anywhere — exactly the serial
      // jump rule (every partition guaranteed no-ops before its own next
      // event, and start <= every next event). Partitions with nothing
      // inside the window just jump across it; the rest run concurrently.
      std::vector<Simulator*> active;
      for (std::size_t i = 0; i < partitions_.size(); ++i) {
        partitions_[i]->jump_to(start);
        if (next[i] < end) {
          active.push_back(partitions_[i].get());
        } else {
          partitions_[i]->jump_to(end);
        }
      }
      pool.run(active.size(),
               [&](std::size_t i) { active[i]->run_window(end); });
    } else {
      // Lockstep: every partition ticks every cycle; the clock never jumps.
      pool.run(partitions_.size(),
               [&](std::size_t i) { partitions_[i]->run_window(end); });
    }
    now_ = end;
    ++windows_run_;
  }
}

}  // namespace aurora::sim
