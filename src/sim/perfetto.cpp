#include "sim/perfetto.hpp"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "sim/sampler.hpp"

namespace aurora::sim {
namespace {

// Track (thread) layout inside the single "aurora-sim" process.
constexpr int kPid = 0;
constexpr int kTidControl = 0;   // tile starts, reconfigurations
constexpr int kTidPhase0 = 1;    // + phase index: 1..3
constexpr int kTidDram = 4;
constexpr const char* kPhaseNames[3] = {"edge-update", "aggregation",
                                        "vertex-update"};

/// Cap per derived counter track so a flit-level trace of millions of
/// packets still exports in bounded size; points are stride-sampled.
constexpr std::size_t kMaxCounterPoints = 4096;

std::string escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

/// Emits one JSON event object per call, inserting commas between events.
class EventWriter {
 public:
  explicit EventWriter(std::ostringstream& os) : os_(os) {}

  std::ostringstream& begin() {
    if (!first_) os_ << ",\n  ";
    first_ = false;
    os_ << "{";
    return os_;
  }
  void end() { os_ << "}"; }

 private:
  std::ostringstream& os_;
  bool first_ = true;
};

void meta_thread_name(EventWriter& w, int tid, const char* name) {
  w.begin() << "\"ph\": \"M\", \"pid\": " << kPid << ", \"tid\": " << tid
            << ", \"name\": \"thread_name\", \"args\": {\"name\": \"" << name
            << "\"}";
  w.end();
}

void counter_point(EventWriter& w, const std::string& name, Cycle ts,
                   double value) {
  w.begin() << "\"ph\": \"C\", \"pid\": " << kPid << ", \"ts\": " << ts
            << ", \"name\": \"" << escape(name) << "\", \"args\": {\"value\": "
            << value << "}";
  w.end();
}

/// A (cycle, level) step series compacted to at most kMaxCounterPoints.
void emit_counter_series(EventWriter& w, const std::string& name,
                         const std::vector<std::pair<Cycle, double>>& points) {
  if (points.empty()) return;
  const std::size_t stride =
      (points.size() + kMaxCounterPoints - 1) / kMaxCounterPoints;
  for (std::size_t i = 0; i < points.size(); i += stride) {
    counter_point(w, name, points[i].first, points[i].second);
  }
  // Always close with the final level so the track ends where the run did.
  if ((points.size() - 1) % stride != 0) {
    counter_point(w, name, points.back().first, points.back().second);
  }
}

}  // namespace

std::string perfetto_trace_json(const Tracer& tracer, const Sampler* sampler) {
  std::ostringstream os;
  os << "{\"displayTimeUnit\": \"ms\",\n \"traceEvents\": [\n  ";
  EventWriter w(os);

  w.begin() << "\"ph\": \"M\", \"pid\": " << kPid
            << ", \"name\": \"process_name\", \"args\": {\"name\": "
               "\"aurora-sim\"}";
  w.end();
  meta_thread_name(w, kTidControl, "control");
  for (int p = 0; p < 3; ++p) meta_thread_name(w, kTidPhase0 + p, kPhaseNames[p]);
  meta_thread_name(w, kTidDram, "dram-stream");

  // Raw records -> spans and instants; packet/DRAM events accumulate into
  // the two derived counter tracks.
  std::vector<std::pair<Cycle, double>> inflight_deltas;
  std::vector<std::pair<Cycle, double>> dram_bytes;
  for (const auto& r : tracer.records()) {
    switch (r.kind) {
      case TraceEvent::kPhaseSpan: {
        const auto phase = std::min<std::uint64_t>(r.arg0, 2);
        w.begin() << "\"ph\": \"X\", \"pid\": " << kPid
                  << ", \"tid\": " << kTidPhase0 + static_cast<int>(phase)
                  << ", \"ts\": " << r.at
                  << ", \"dur\": " << std::max<std::uint64_t>(r.arg1, 1)
                  << ", \"name\": \"" << kPhaseNames[phase] << "\"";
        w.end();
        break;
      }
      case TraceEvent::kDramSpan:
        w.begin() << "\"ph\": \"X\", \"pid\": " << kPid
                  << ", \"tid\": " << kTidDram << ", \"ts\": " << r.at
                  << ", \"dur\": " << std::max<std::uint64_t>(r.arg1, 1)
                  << ", \"name\": \"dram-stream\", \"args\": {\"bytes\": "
                  << r.arg0 << "}";
        w.end();
        break;
      case TraceEvent::kReconfigure:
        w.begin() << "\"ph\": \"i\", \"s\": \"t\", \"pid\": " << kPid
                  << ", \"tid\": " << kTidControl << ", \"ts\": " << r.at
                  << ", \"name\": \"reconfigure\", \"args\": {\"tile\": "
                  << r.arg0 << ", \"switch_writes\": " << r.arg1 << "}";
        w.end();
        break;
      case TraceEvent::kTileStart:
        w.begin() << "\"ph\": \"i\", \"s\": \"t\", \"pid\": " << kPid
                  << ", \"tid\": " << kTidControl << ", \"ts\": " << r.at
                  << ", \"name\": \"tile-start\", \"args\": {\"tile\": "
                  << r.arg0 << ", \"vertices\": " << r.arg1 << "}";
        w.end();
        break;
      case TraceEvent::kPacketInjected:
        inflight_deltas.emplace_back(r.at, 1.0);
        break;
      case TraceEvent::kPacketDelivered:
        inflight_deltas.emplace_back(r.at, -1.0);
        break;
      case TraceEvent::kDramRequest:
        dram_bytes.emplace_back(r.at, static_cast<double>(r.arg1));
        break;
      case TraceEvent::kTaskComplete:
        break;  // per-task instants would swamp the view; counters cover it
    }
  }

  // Derived counter track 1: NoC packets in flight over time. Injection
  // records are written at delivery time, so deltas arrive out of order —
  // sort by cycle with -1s after +1s at the same cycle (a packet delivered
  // the cycle another is injected should not dip below zero).
  std::stable_sort(inflight_deltas.begin(), inflight_deltas.end(),
                   [](const auto& a, const auto& b) {
                     if (a.first != b.first) return a.first < b.first;
                     return a.second > b.second;
                   });
  std::vector<std::pair<Cycle, double>> inflight;
  double level = 0.0;
  for (const auto& [at, delta] : inflight_deltas) {
    level += delta;
    if (!inflight.empty() && inflight.back().first == at) {
      inflight.back().second = level;
    } else {
      inflight.emplace_back(at, level);
    }
  }
  emit_counter_series(w, "noc.packets_in_flight", inflight);

  // Derived counter track 2: cumulative DRAM bytes requested.
  std::vector<std::pair<Cycle, double>> dram_cum;
  double bytes = 0.0;
  for (const auto& [at, b] : dram_bytes) {
    bytes += b;
    if (!dram_cum.empty() && dram_cum.back().first == at) {
      dram_cum.back().second = bytes;
    } else {
      dram_cum.emplace_back(at, bytes);
    }
  }
  emit_counter_series(w, "dram.bytes_requested", dram_cum);

  // Sampled series -> one counter track each.
  if (sampler != nullptr) {
    for (const auto& s : sampler->series()) {
      for (std::size_t i = 0; i < s.values.size(); ++i) {
        counter_point(w, s.name, sampler->sample_cycles()[i], s.values[i]);
      }
    }
  }

  os << "\n ]}";
  return os.str();
}

void write_perfetto_trace(const std::string& path, const Tracer& tracer,
                          const Sampler* sampler) {
  std::ofstream out(path);
  AURORA_CHECK_MSG(out.is_open(), "cannot write trace: " << path);
  out << perfetto_trace_json(tracer, sampler) << '\n';
  AURORA_CHECK_MSG(static_cast<bool>(out), "trace write failed: " << path);
}

}  // namespace aurora::sim
