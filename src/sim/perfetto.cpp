#include "sim/perfetto.hpp"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "sim/sampler.hpp"

namespace aurora::sim {
namespace {

// Track (thread) layout inside each process.
constexpr int kTidControl = 0;   // tile starts, reconfigurations, run marks
constexpr int kTidPhase0 = 1;    // + phase index: 1..3
constexpr int kTidDram = 4;
constexpr int kTidCompute = 5;   // per-tile compute windows
/// Cluster chip-segment tracks sit above the single-chip tids so a process
/// carrying both kinds of records never collides.
constexpr int kTidClusterBase = 8;
constexpr const char* kPhaseNames[3] = {"edge-update", "aggregation",
                                        "vertex-update"};
constexpr const char* kSegmentNames[3] = {"compute-pre", "halo-wait",
                                          "compute-post"};

/// Cap per derived counter track so a flit-level trace of millions of
/// packets still exports in bounded size; points are stride-sampled.
constexpr std::size_t kMaxCounterPoints = 4096;

std::string escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

/// Emits one JSON event object per call, inserting commas between events.
class EventWriter {
 public:
  explicit EventWriter(std::ostringstream& os) : os_(os) {}

  std::ostringstream& begin() {
    if (!first_) os_ << ",\n  ";
    first_ = false;
    os_ << "{";
    return os_;
  }
  void end() { os_ << "}"; }

 private:
  std::ostringstream& os_;
  bool first_ = true;
};

void meta_thread_name(EventWriter& w, int pid, int tid, const std::string& name) {
  w.begin() << "\"ph\": \"M\", \"pid\": " << pid << ", \"tid\": " << tid
            << ", \"name\": \"thread_name\", \"args\": {\"name\": \""
            << escape(name) << "\"}";
  w.end();
}

void counter_point(EventWriter& w, int pid, const std::string& name, Cycle ts,
                   double value) {
  w.begin() << "\"ph\": \"C\", \"pid\": " << pid << ", \"ts\": " << ts
            << ", \"name\": \"" << escape(name) << "\", \"args\": {\"value\": "
            << value << "}";
  w.end();
}

/// A (cycle, level) step series compacted to at most kMaxCounterPoints.
void emit_counter_series(EventWriter& w, int pid, const std::string& name,
                         const std::vector<std::pair<Cycle, double>>& points) {
  if (points.empty()) return;
  const std::size_t stride =
      (points.size() + kMaxCounterPoints - 1) / kMaxCounterPoints;
  for (std::size_t i = 0; i < points.size(); i += stride) {
    counter_point(w, pid, name, points[i].first, points[i].second);
  }
  // Always close with the final level so the track ends where the run did.
  if ((points.size() - 1) % stride != 0) {
    counter_point(w, pid, name, points.back().first, points.back().second);
  }
}

/// Accumulate (cycle, delta) events into a running-level step series.
std::vector<std::pair<Cycle, double>> levels_from_deltas(
    std::vector<std::pair<Cycle, double>> deltas) {
  // Deltas may arrive out of order (injections are recorded at delivery
  // time) — sort by cycle with -1s after +1s at the same cycle so the level
  // never dips below zero transiently.
  std::stable_sort(deltas.begin(), deltas.end(),
                   [](const auto& a, const auto& b) {
                     if (a.first != b.first) return a.first < b.first;
                     return a.second > b.second;
                   });
  std::vector<std::pair<Cycle, double>> series;
  double level = 0.0;
  for (const auto& [at, delta] : deltas) {
    level += delta;
    if (!series.empty() && series.back().first == at) {
      series.back().second = level;
    } else {
      series.emplace_back(at, level);
    }
  }
  return series;
}

void emit_process(EventWriter& w, int pid, const TraceProcess& proc) {
  w.begin() << "\"ph\": \"M\", \"pid\": " << pid
            << ", \"name\": \"process_name\", \"args\": {\"name\": \""
            << escape(proc.name) << "\"}";
  w.end();

  // Thread metas: the single-chip tracks always, cluster chip tracks only
  // for the chips that actually appear in the records.
  meta_thread_name(w, pid, kTidControl, "control");
  for (int p = 0; p < 3; ++p) {
    meta_thread_name(w, pid, kTidPhase0 + p, kPhaseNames[p]);
  }
  meta_thread_name(w, pid, kTidDram, "dram-stream");
  meta_thread_name(w, pid, kTidCompute, "tile-compute");
  if (proc.tracer != nullptr) {
    std::uint64_t max_chip = 0;
    bool any_cluster = false;
    for (const auto& r : proc.tracer->records()) {
      if (r.kind == TraceEvent::kClusterSegment) {
        any_cluster = true;
        max_chip = std::max(max_chip, r.arg0 / 4);
      }
    }
    if (any_cluster) {
      for (std::uint64_t c = 0; c <= max_chip; ++c) {
        meta_thread_name(w, pid, kTidClusterBase + static_cast<int>(c),
                         "chip" + std::to_string(c));
      }
    }
  }

  // Raw records -> spans and instants; packet/DRAM/halo events accumulate
  // into derived counter tracks.
  std::vector<std::pair<Cycle, double>> inflight_deltas;
  std::vector<std::pair<Cycle, double>> dram_bytes;
  std::vector<std::pair<Cycle, double>> halo_deltas;
  std::vector<std::pair<Cycle, double>> halo_sent;
  if (proc.tracer != nullptr) {
    for (const auto& r : proc.tracer->records()) {
      switch (r.kind) {
        case TraceEvent::kPhaseSpan: {
          const auto phase = std::min<std::uint64_t>(r.arg0, 2);
          w.begin() << "\"ph\": \"X\", \"pid\": " << pid
                    << ", \"tid\": " << kTidPhase0 + static_cast<int>(phase)
                    << ", \"ts\": " << r.at
                    << ", \"dur\": " << std::max<std::uint64_t>(r.arg1, 1)
                    << ", \"name\": \"" << kPhaseNames[phase] << "\"";
          w.end();
          break;
        }
        case TraceEvent::kDramSpan:
          w.begin() << "\"ph\": \"X\", \"pid\": " << pid
                    << ", \"tid\": " << kTidDram << ", \"ts\": " << r.at
                    << ", \"dur\": " << std::max<std::uint64_t>(r.arg1, 1)
                    << ", \"name\": \"dram-stream\", \"args\": {\"bytes\": "
                    << r.arg0 << "}";
          w.end();
          break;
        case TraceEvent::kReconfigure:
          w.begin() << "\"ph\": \"i\", \"s\": \"t\", \"pid\": " << pid
                    << ", \"tid\": " << kTidControl << ", \"ts\": " << r.at
                    << ", \"name\": \"reconfigure\", \"args\": {\"tile\": "
                    << r.arg0 << ", \"switch_writes\": " << r.arg1 << "}";
          w.end();
          break;
        case TraceEvent::kTileStart:
          w.begin() << "\"ph\": \"i\", \"s\": \"t\", \"pid\": " << pid
                    << ", \"tid\": " << kTidControl << ", \"ts\": " << r.at
                    << ", \"name\": \"tile-start\", \"args\": {\"tile\": "
                    << r.arg0 << ", \"vertices\": " << r.arg1 << "}";
          w.end();
          break;
        case TraceEvent::kComputeSpan:
          w.begin() << "\"ph\": \"X\", \"pid\": " << pid
                    << ", \"tid\": " << kTidCompute << ", \"ts\": " << r.at
                    << ", \"dur\": " << std::max<std::uint64_t>(r.arg1, 1)
                    << ", \"name\": \"tile-compute\", \"args\": {\"tile\": "
                    << r.arg0 << ", \"noc_busy\": " << r.arg2
                    << ", \"pe_busy\": " << r.arg3 << "}";
          w.end();
          break;
        case TraceEvent::kRunBegin:
          w.begin() << "\"ph\": \"i\", \"s\": \"t\", \"pid\": " << pid
                    << ", \"tid\": " << kTidControl << ", \"ts\": " << r.at
                    << ", \"name\": \"run-begin\", \"args\": {\"kind\": "
                    << r.arg0 << "}";
          w.end();
          break;
        case TraceEvent::kRunEnd:
          w.begin() << "\"ph\": \"i\", \"s\": \"t\", \"pid\": " << pid
                    << ", \"tid\": " << kTidControl << ", \"ts\": " << r.at
                    << ", \"name\": \"run-end\", \"args\": {\"total_cycles\": "
                    << r.arg0 << "}";
          w.end();
          break;
        case TraceEvent::kClusterSegment: {
          if (r.arg1 == 0) break;  // zero-length barrier/segment records
          const auto chip = static_cast<int>(r.arg0 / 4);
          const auto seg = std::min<std::uint64_t>(r.arg0 % 4, 2);
          w.begin() << "\"ph\": \"X\", \"pid\": " << pid
                    << ", \"tid\": " << kTidClusterBase + chip
                    << ", \"ts\": " << r.at
                    << ", \"dur\": " << std::max<std::uint64_t>(r.arg1, 1)
                    << ", \"name\": \"" << kSegmentNames[seg] << "\"";
          w.end();
          break;
        }
        case TraceEvent::kHaloSent:
          halo_deltas.emplace_back(r.at, static_cast<double>(r.arg1));
          halo_sent.emplace_back(r.at, static_cast<double>(r.arg1));
          break;
        case TraceEvent::kHaloDelivered:
          halo_deltas.emplace_back(r.at, -static_cast<double>(r.arg1));
          break;
        case TraceEvent::kPacketInjected:
          inflight_deltas.emplace_back(r.at, 1.0);
          break;
        case TraceEvent::kPacketDelivered:
          inflight_deltas.emplace_back(r.at, -1.0);
          break;
        case TraceEvent::kDramRequest:
          dram_bytes.emplace_back(r.at, static_cast<double>(r.arg1));
          break;
        case TraceEvent::kChipDown:
        case TraceEvent::kChipUp:
          w.begin() << "\"ph\": \"i\", \"s\": \"t\", \"pid\": " << pid
                    << ", \"tid\": " << kTidControl << ", \"ts\": " << r.at
                    << ", \"name\": \""
                    << (r.kind == TraceEvent::kChipDown ? "chip-down"
                                                        : "chip-up")
                    << "\", \"args\": {\"chip\": " << r.arg0 << "}";
          w.end();
          break;
        case TraceEvent::kLinkDegraded:
        case TraceEvent::kLinkRestored:
          w.begin() << "\"ph\": \"i\", \"s\": \"t\", \"pid\": " << pid
                    << ", \"tid\": " << kTidControl << ", \"ts\": " << r.at
                    << ", \"name\": \""
                    << (r.kind == TraceEvent::kLinkDegraded ? "link-degraded"
                                                            : "link-restored")
                    << "\", \"args\": {\"src\": " << r.arg0 / 256
                    << ", \"dst\": " << r.arg0 % 256
                    << ", \"multiplier_permille\": " << r.arg1 << "}";
          w.end();
          break;
        case TraceEvent::kGraphMutation: {
          static constexpr const char* kMutationNames[] = {
              "edge-add", "edge-remove", "vertex-add", "vertex-remove"};
          const auto kind = std::min<std::uint64_t>(r.arg0, 3);
          w.begin() << "\"ph\": \"i\", \"s\": \"t\", \"pid\": " << pid
                    << ", \"tid\": " << kTidControl << ", \"ts\": " << r.at
                    << ", \"name\": \"graph-mutation\", \"args\": {\"kind\": "
                    << "\"" << kMutationNames[kind] << "\", \"u\": "
                    << unpack_u32_hi(r.arg1)
                    << ", \"v\": " << unpack_u32_lo(r.arg1)
                    << ", \"edges\": " << r.arg2 << "}";
          w.end();
          break;
        }
        case TraceEvent::kReshard:
          w.begin() << "\"ph\": \"i\", \"s\": \"t\", \"pid\": " << pid
                    << ", \"tid\": " << kTidControl << ", \"ts\": " << r.at
                    << ", \"name\": \"reshard\", \"args\": {\"chips\": "
                    << r.arg0 << ", \"cut_edges\": " << r.arg1
                    << ", \"drifted_cut_edges\": " << r.arg2
                    << ", \"mutations_absorbed\": " << r.arg3 << "}";
          w.end();
          break;
        case TraceEvent::kTaskComplete:
          break;  // per-task instants would swamp the view; counters cover it
      }
    }
  }

  // Derived counter track 1: NoC packets in flight over time.
  emit_counter_series(w, pid, "noc.packets_in_flight",
                      levels_from_deltas(std::move(inflight_deltas)));

  // Derived counter track 2: cumulative DRAM bytes requested.
  std::vector<std::pair<Cycle, double>> dram_cum;
  double bytes = 0.0;
  for (const auto& [at, b] : dram_bytes) {
    bytes += b;
    if (!dram_cum.empty() && dram_cum.back().first == at) {
      dram_cum.back().second = bytes;
    } else {
      dram_cum.emplace_back(at, bytes);
    }
  }
  emit_counter_series(w, pid, "dram.bytes_requested", dram_cum);

  // Derived counter tracks 3+4 (cluster runs): halo bytes in flight on the
  // inter-chip link and cumulative halo bytes sent.
  emit_counter_series(w, pid, "link.halo_bytes_in_flight",
                      levels_from_deltas(std::move(halo_deltas)));
  std::vector<std::pair<Cycle, double>> halo_cum;
  double halo_total = 0.0;
  std::stable_sort(halo_sent.begin(), halo_sent.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  for (const auto& [at, b] : halo_sent) {
    halo_total += b;
    if (!halo_cum.empty() && halo_cum.back().first == at) {
      halo_cum.back().second = halo_total;
    } else {
      halo_cum.emplace_back(at, halo_total);
    }
  }
  emit_counter_series(w, pid, "link.halo_bytes_sent", halo_cum);

  // Sampled series -> one counter track each.
  if (proc.sampler != nullptr) {
    for (const auto& s : proc.sampler->series()) {
      for (std::size_t i = 0; i < s.values.size(); ++i) {
        counter_point(w, pid, s.name, proc.sampler->sample_cycles()[i],
                      s.values[i]);
      }
    }
  }
}

}  // namespace

std::string perfetto_trace_json(const std::vector<TraceProcess>& processes) {
  std::ostringstream os;
  os << "{\"displayTimeUnit\": \"ms\",\n \"traceEvents\": [\n  ";
  EventWriter w(os);
  for (std::size_t pid = 0; pid < processes.size(); ++pid) {
    emit_process(w, static_cast<int>(pid), processes[pid]);
  }
  os << "\n ]}";
  return os.str();
}

std::string perfetto_trace_json(const Tracer& tracer, const Sampler* sampler) {
  return perfetto_trace_json(
      std::vector<TraceProcess>{{"aurora-sim", &tracer, sampler}});
}

void write_perfetto_trace(const std::string& path,
                          const std::vector<TraceProcess>& processes) {
  std::ofstream out(path);
  AURORA_CHECK_MSG(out.is_open(), "cannot write trace: " << path);
  out << perfetto_trace_json(processes) << '\n';
  AURORA_CHECK_MSG(static_cast<bool>(out), "trace write failed: " << path);
}

void write_perfetto_trace(const std::string& path, const Tracer& tracer,
                          const Sampler* sampler) {
  write_perfetto_trace(path,
                       std::vector<TraceProcess>{{"aurora-sim", &tracer, sampler}});
}

}  // namespace aurora::sim
