// Conservative parallel discrete-event coordinator.
//
// Partitions a simulation into independent Simulator instances (one per
// chip in the cluster engine) and advances them in barrier-synchronized
// time windows: within a window of `lookahead` cycles no partition can
// affect another — the cluster's guarantee is the inter-chip wire, whose
// earliest cross-partition effect is serialization (>= 1 cycle, visible
// from the cycle after enqueue) plus the hop latency — so the partitions
// of one window may run concurrently on worker threads. At each barrier an
// exchange hook (the LinkFabric flush) moves timestamped messages between
// partitions, then the coordinator picks the next window.
//
// Scheduler-mode fidelity: in lockstep mode every partition ticks every
// cycle of every window and the clock never jumps; in fast-forward mode
// the coordinator jumps all partitions to the global minimum next-event
// cycle between windows (exactly the serial engine's jump rule — the
// minimum is taken across *all* partitions, so no partition's hook is
// trusted beyond its own no-op guarantee) and partitions fast-forward
// freely inside their window. Either way the per-cycle behaviour of every
// component is identical to running all partitions on one serial
// Simulator, which is what makes parallel runs bit-identical (asserted by
// the cluster tests and the differential fuzzer).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "sim/simulator.hpp"

namespace aurora::sim {

class ParallelSimulator {
 public:
  /// `lookahead` is the conservative window width: the minimum number of
  /// cycles between a cross-partition send and its earliest effect on the
  /// receiving partition. Must be >= 1.
  explicit ParallelSimulator(Cycle lookahead);

  /// Add a partition; returns its Simulator for component registration.
  /// The reference stays valid for the ParallelSimulator's lifetime.
  Simulator& add_partition();

  /// Lockstep vs fast-forward, applied to every partition (mirrors
  /// Simulator::set_fast_forward).
  void set_fast_forward(bool enabled);

  /// Barrier exchange hook, invoked once before every window (and once
  /// before the idle check that ends the run) on the coordinator thread —
  /// single-threaded, no partition running. The cluster engine points this
  /// at LinkFabric::flush.
  void set_exchange(std::function<void()> hook) { exchange_ = std::move(hook); }

  /// Run until every partition is idle with no pending exchange, or throw
  /// after `max_cycles` (deadlock guard, mirroring Simulator's). Windows
  /// are dispatched over up to `jobs` worker threads (0 = hardware
  /// concurrency; helpers come from the process-wide WorkerBudget, so 1 CPU
  /// or an exhausted budget degrades to inline execution with identical
  /// results). Returns the global clock at stop.
  Cycle run_until_idle(Cycle max_cycles, unsigned jobs = 0);

  [[nodiscard]] Cycle now() const { return now_; }
  [[nodiscard]] Cycle lookahead() const { return lookahead_; }
  [[nodiscard]] std::size_t num_partitions() const {
    return partitions_.size();
  }
  /// Windows executed across all run_until_idle calls (diagnostic).
  [[nodiscard]] std::uint64_t windows_run() const { return windows_run_; }

 private:
  Cycle lookahead_;
  Cycle now_ = 0;
  bool fast_forward_ = true;
  std::uint64_t windows_run_ = 0;
  std::function<void()> exchange_;
  std::vector<std::unique_ptr<Simulator>> partitions_;
};

}  // namespace aurora::sim
