#include "sim/simulator.hpp"

namespace aurora::sim {

void Simulator::add(Component* c) {
  AURORA_CHECK(c != nullptr);
  components_.push_back(c);
}

bool Simulator::all_idle() const {
  for (const auto* c : components_) {
    if (!c->idle()) return false;
  }
  return true;
}

void Simulator::step() {
  for (auto* c : components_) c->tick(now_);
  ++now_;
}

void Simulator::run_cycles(Cycle n) {
  for (Cycle i = 0; i < n; ++i) step();
}

Cycle Simulator::run_until_idle(Cycle max_cycles) {
  const Cycle deadline = now_ + max_cycles;
  while (!all_idle()) {
    AURORA_CHECK_MSG(now_ < deadline,
                     "simulation exceeded " << max_cycles
                                            << " cycles without draining; "
                                               "likely deadlock");
    step();
  }
  return now_;
}

}  // namespace aurora::sim
