#include "sim/simulator.hpp"

#include <algorithm>
#include <cassert>

namespace aurora::sim {

void Simulator::add(Component* c) {
  AURORA_CHECK(c != nullptr);
  c->quiescent_ = false;  // components may be reused across simulators
  components_.push_back(c);
}

bool Simulator::all_idle() const {
  for (const auto* c : components_) {
    if (c->quiescent_) {
      // A quiescent component is drained by construction (it reported
      // idle() with no pending event and has not been woken since).
      assert(c->idle());
      continue;
    }
    if (!c->idle()) return false;
  }
  return true;
}

void Simulator::step() {
  for (auto* c : components_) {
    if (c->quiescent_) continue;
    c->tick(now_);
  }
  ++now_;
}

void Simulator::run_cycles(Cycle n) {
  for (Cycle i = 0; i < n; ++i) step();
}

Cycle Simulator::earliest_event() {
  Cycle next = kNoEvent;
  for (auto* c : components_) {
    if (c->quiescent_) continue;
    const Cycle n = c->next_event_cycle(now_);
    if (n == kNoEvent) {
      // Fully drained: retire the component from the tick loop until an
      // external stimulus calls wake(). kNoEvent while work remains would
      // stall that component forever, so it is a contract violation.
      assert(c->idle());
      c->quiescent_ = true;
      continue;
    }
    // A hook may legally answer "now or earlier" (work pending this very
    // cycle); clamp rather than trust it to be monotone.
    next = std::min(next, std::max(n, now_));
    if (next == now_) break;  // a component pins the clock: no jump possible
  }
  return next;
}

void Simulator::jump_to(Cycle target) {
  AURORA_CHECK(target >= now_);
  if (target == now_) return;
  for (auto* c : components_) {
    if (!c->quiescent_) c->skip_cycles(now_, target);
  }
  cycles_skipped_ += target - now_;
  now_ = target;
}

void Simulator::run_window(Cycle end) {
  // Same probe throttle as run_until_idle (see there); kept separate
  // because windows are short (a link hop) and have no idle exit.
  Cycle probe_at = now_;
  Cycle backoff = 1;
  constexpr Cycle kMaxBackoff = 8;
  while (now_ < end) {
    step();
    if (!fast_forward_ || now_ < probe_at) continue;
    const Cycle next = earliest_event();
    if (next <= now_) {
      probe_at = now_ + backoff;
      backoff = std::min(backoff * 2, kMaxBackoff);
      continue;
    }
    backoff = 1;
    // kNoEvent (partition drained) still advances to the barrier: cross-
    // partition messages flushed there may wake it.
    const Cycle target = std::min(next, end);
    if (target <= now_) continue;
    for (auto* c : components_) {
      if (!c->quiescent_) c->skip_cycles(now_, target);
    }
    cycles_skipped_ += target - now_;
    now_ = target;
  }
}

Cycle Simulator::run_until_idle(Cycle max_cycles) {
  const Cycle deadline = now_ + max_cycles;
  // Probe throttle: asking every component for its next event costs about as
  // much as a tick, so when the answer keeps coming back "no jump possible"
  // (dense phases — some NoC flit is always ready), exponentially back off
  // before asking again. Jumping is an optimisation, never a correctness
  // requirement, so delaying a probe by a few (cheap, lockstep) ticks only
  // trades a sliver of the jump; a successful jump resets the backoff.
  // Purely a function of simulation state, so runs stay deterministic.
  Cycle probe_at = now_;
  Cycle backoff = 1;
  // Capped well below the shortest interesting span (a DRAM CAS+ACT gap is
  // ~20 cycles) so throttling never swallows a whole jump opportunity.
  constexpr Cycle kMaxBackoff = 8;
  while (!all_idle()) {
    AURORA_CHECK_MSG(now_ < deadline,
                     "simulation exceeded " << max_cycles
                                            << " cycles without draining; "
                                               "likely deadlock");
    step();
    if (!fast_forward_ || now_ < probe_at) continue;
    // Once drained the run is over at exactly this cycle; jumping here would
    // drag the clock to a scheduled-but-irrelevant event (e.g. an idle DRAM
    // channel's next refresh deadline) that lockstep never reaches.
    if (all_idle()) break;

    const Cycle next = earliest_event();
    if (next == kNoEvent || next <= now_) {
      probe_at = now_ + backoff;
      backoff = std::min(backoff * 2, kMaxBackoff);
      continue;
    }
    backoff = 1;
    // Every active component guarantees ticks in [now_, next) are no-ops:
    // jump the clock. Clamp to the deadline so a livelocked system still
    // trips the guard exactly like lockstep would.
    const Cycle target = std::min(next, deadline);
    if (target <= now_) continue;
    for (auto* c : components_) {
      if (!c->quiescent_) c->skip_cycles(now_, target);
    }
    cycles_skipped_ += target - now_;
    now_ = target;
    // The landing cycle is not necessarily an *event*: hooks may answer with
    // a conservative recheck point (e.g. DRAM's booking-horizon reopen when
    // the bank is also not ready yet), in which case the next iteration
    // simply probes again and jumps further. Progress is guaranteed because
    // step() advances now_ and answers are clamped to >= now_. Exactness of
    // the no-op guarantee itself is enforced differentially: the equivalence
    // tests compare every metric of a fast-forwarded run against lockstep.
  }
  return now_;
}

}  // namespace aurora::sim
