// Cycle-driven component interface.
//
// Every hardware block (router, PE, DRAM channel, dispatcher) implements
// Component. The Simulator advances all components one clock edge at a time;
// within a cycle, components communicate through explicit queues so
// evaluation order does not change behaviour (two-phase update: components
// read inputs enqueued in cycle N-1 and enqueue outputs visible in N+1).
//
// Event-driven fast-forwarding: a component may additionally implement
// next_event_cycle() to tell the scheduler the earliest future cycle at
// which its tick() could do anything. When every registered component agrees
// that nothing can happen before cycle T, the Simulator jumps the clock
// straight to T instead of ticking through the dead cycles. The default
// implementation returns `now` ("tick me every cycle"), so components that
// do not opt in remain lockstep-correct unmodified.
#pragma once

#include <limits>
#include <string>

#include "common/types.hpp"

namespace aurora {
class MetricsRegistry;
}

namespace aurora::sim {

class InvariantReport;

/// Sentinel returned by next_event_cycle() when a component is fully
/// drained: no internal event is pending and ticks are no-ops until new
/// external stimulus arrives.
inline constexpr Cycle kNoEvent = std::numeric_limits<Cycle>::max();

class Component {
 public:
  explicit Component(std::string name) : name_(std::move(name)) {}
  virtual ~Component() = default;

  Component(const Component&) = delete;
  Component& operator=(const Component&) = delete;

  /// Advance one clock cycle. `now` is the cycle being executed.
  virtual void tick(Cycle now) = 0;

  /// True when the component has no pending work; the Simulator stops when
  /// every component is idle and no external stimulus remains.
  [[nodiscard]] virtual bool idle() const = 0;

  /// The earliest cycle >= `now` at which tick() may change this
  /// component's state or produce an externally visible effect, assuming no
  /// new external stimulus (send/submit/enqueue) arrives before then.
  ///
  /// Contract (the fast-forward invariant): for every cycle c in
  /// [now, next_event_cycle(now)), tick(c) must be a no-op — no state
  /// change, no callback, no stats. The scheduler is then free to skip
  /// those ticks entirely; skip_cycles() is the hook for accounting that
  /// still wants to observe the skipped span (e.g. busy-cycle counters).
  /// The returned cycle need not itself be an event: a conservative
  /// "recheck point" (the earliest cycle at which the answer could change)
  /// is legal — the scheduler re-probes there and jumps again. Only the
  /// no-op guarantee for the skipped span is load-bearing.
  /// Return kNoEvent when fully drained (requires idle() == true); the
  /// scheduler may then stop ticking this component altogether until an
  /// external stimulus calls wake().
  ///
  /// The default keeps legacy components in pure lockstep.
  [[nodiscard]] virtual Cycle next_event_cycle(Cycle now) const {
    return now;
  }

  /// Notification that the scheduler skipped the ticks in [from, to) —
  /// every one of them guaranteed a no-op by next_event_cycle(). Override
  /// to keep per-cycle accounting (busy-cycle counters) identical to a
  /// lockstep run. Must not change behaviourally relevant state.
  virtual void skip_cycles(Cycle from, Cycle to) {
    (void)from;
    (void)to;
  }

  /// Self-check the component's conservation laws (flit/packet/burst
  /// accounting, credit balances, refresh cadence, ...) and record any
  /// violation in `report` (sim/invariants.hpp). Called by an attached
  /// InvariantChecker at configurable intervals and at drain points;
  /// `report.drained()` distinguishes always-true laws from those that only
  /// hold once the component has no work in flight (empty FIFOs, restored
  /// credits). Must be read-only. Default: checks nothing.
  virtual void verify_invariants(InvariantReport& report) const {
    (void)report;
  }

  /// Publish this component's counters/gauges/histograms into `registry`
  /// (conventionally under a scope named after the component kind). The
  /// registered probes point into live component state: they must not be
  /// read after the component is destroyed, so registries are built per run
  /// next to the components they observe. Default: publishes nothing.
  virtual void register_metrics(MetricsRegistry& registry) {
    (void)registry;
  }

  [[nodiscard]] const std::string& name() const { return name_; }

 protected:
  /// Components call this when external stimulus arrives (a packet send, a
  /// task submit, a request enqueue) so a quiescent component re-enters the
  /// scheduler's tick loop. Cheap and non-virtual: safe on every hot path.
  void wake() noexcept { quiescent_ = false; }

 private:
  friend class Simulator;
  std::string name_;
  /// Managed by the Simulator: set once the component reports idle() with
  /// no pending event, cleared by wake(). A quiescent component is skipped
  /// by the scheduler without even a virtual call per cycle.
  bool quiescent_ = false;
};

}  // namespace aurora::sim
