// Cycle-driven component interface.
//
// Every hardware block (router, PE, DRAM channel, dispatcher) implements
// Component. The Simulator advances all components one clock edge at a time;
// within a cycle, components communicate through explicit queues so
// evaluation order does not change behaviour (two-phase update: components
// read inputs enqueued in cycle N-1 and enqueue outputs visible in N+1).
#pragma once

#include <string>

#include "common/types.hpp"

namespace aurora::sim {

class Component {
 public:
  explicit Component(std::string name) : name_(std::move(name)) {}
  virtual ~Component() = default;

  Component(const Component&) = delete;
  Component& operator=(const Component&) = delete;

  /// Advance one clock cycle. `now` is the cycle being executed.
  virtual void tick(Cycle now) = 0;

  /// True when the component has no pending work; the Simulator stops when
  /// every component is idle and no external stimulus remains.
  [[nodiscard]] virtual bool idle() const = 0;

  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  std::string name_;
};

}  // namespace aurora::sim
