// Chrome/Perfetto trace_event JSON export, layered on the Tracer's raw
// event records and (optionally) a Sampler's time series. The output loads
// directly in ui.perfetto.dev or chrome://tracing:
//
//   * phase spans (edge-update / aggregation / vertex-update) and DRAM
//     streams become duration ("X") events on named tracks;
//   * reconfigurations and tile starts become instant events;
//   * sampled series become counter ("C") tracks, as do two series derived
//     from the raw packet/DRAM records (packets in flight, bytes
//     requested), so a trace has counter tracks even without a sampler;
//   * cluster records (kClusterSegment / kHaloSent / kHaloDelivered) become
//     per-chip segment tracks plus halo-byte counter tracks, so a scale-out
//     run renders every chip and the inter-chip link side by side.
//
// Multi-process layout: each TraceProcess becomes one trace process (pid =
// index), so a cluster run exports the shared-clock cluster timeline as one
// process and every chip's cycle-engine trace as its own. The single-tracer
// overloads wrap one process, preserving the original schema.
//
// Timebase: one simulated cycle is rendered as one microsecond of trace
// time (the trace_event format's native unit).
#pragma once

#include <string>
#include <vector>

#include "sim/trace.hpp"

namespace aurora::sim {

class Sampler;

/// One process of a multi-process trace: a name for the track group, the
/// raw records, and optionally a sampler whose series render as counters.
struct TraceProcess {
  std::string name;
  const Tracer* tracer = nullptr;
  const Sampler* sampler = nullptr;
};

/// Render the trace (and optional sampled series) as a trace_event JSON
/// object: {"displayTimeUnit": ..., "traceEvents": [...]}.
[[nodiscard]] std::string perfetto_trace_json(const Tracer& tracer,
                                              const Sampler* sampler = nullptr);

/// Multi-process variant: one trace process per entry, pid = index.
[[nodiscard]] std::string perfetto_trace_json(
    const std::vector<TraceProcess>& processes);

/// perfetto_trace_json + write to `path` (throws on I/O failure).
void write_perfetto_trace(const std::string& path, const Tracer& tracer,
                          const Sampler* sampler = nullptr);

/// Multi-process variant of the file writer.
void write_perfetto_trace(const std::string& path,
                          const std::vector<TraceProcess>& processes);

}  // namespace aurora::sim
