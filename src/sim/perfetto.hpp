// Chrome/Perfetto trace_event JSON export, layered on the Tracer's raw
// event records and (optionally) a Sampler's time series. The output loads
// directly in ui.perfetto.dev or chrome://tracing:
//
//   * phase spans (edge-update / aggregation / vertex-update) and DRAM
//     streams become duration ("X") events on named tracks;
//   * reconfigurations and tile starts become instant events;
//   * sampled series become counter ("C") tracks, as do two series derived
//     from the raw packet/DRAM records (packets in flight, bytes
//     requested), so a trace has counter tracks even without a sampler.
//
// Timebase: one simulated cycle is rendered as one microsecond of trace
// time (the trace_event format's native unit).
#pragma once

#include <string>

#include "sim/trace.hpp"

namespace aurora::sim {

class Sampler;

/// Render the trace (and optional sampled series) as a trace_event JSON
/// object: {"displayTimeUnit": ..., "traceEvents": [...]}.
[[nodiscard]] std::string perfetto_trace_json(const Tracer& tracer,
                                              const Sampler* sampler = nullptr);

/// perfetto_trace_json + write to `path` (throws on I/O failure).
void write_perfetto_trace(const std::string& path, const Tracer& tracer,
                          const Sampler* sampler = nullptr);

}  // namespace aurora::sim
