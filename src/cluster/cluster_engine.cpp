#include "cluster/cluster_engine.hpp"

#include <algorithm>
#include <cmath>
#include <string>
#include <tuple>
#include <utility>

#include "common/error.hpp"
#include "common/metrics_registry.hpp"
#include "common/parallel.hpp"
#include "core/report.hpp"
#include "gnn/workflow.hpp"
#include "sim/invariants.hpp"
#include "sim/parallel_sim.hpp"
#include "sim/simulator.hpp"

namespace aurora::cluster {
namespace {

/// "No internal event, waiting on link deliveries": far enough that the
/// link's own events always bound the jump, but not kNoEvent — the proxy is
/// not drained and must not be retired from the tick loop.
constexpr Cycle kFarFuture = sim::kNoEvent - 1;

}  // namespace

ChipProxy::ChipProxy(std::uint32_t chip, std::vector<ChipLayerPlan> layers,
                     HaloSender* link, sim::Tracer* tracer, TraceShard* shard)
    : sim::Component("chip" + std::to_string(chip)),
      chip_(chip),
      layers_(std::move(layers)),
      link_(link),
      tracer_(tracer),
      shard_(shard),
      arrived_(layers_.size(), 0),
      last_arrival_(layers_.size(), 0) {
  AURORA_CHECK(link_ != nullptr);
  AURORA_CHECK_MSG(tracer_ == nullptr || shard_ == nullptr,
                   "direct and sharded tracing are exclusive");
  if (layers_.empty()) {
    state_ = State::kDone;
  } else {
    seg_end_ = layers_[0].seg_pre;
  }
}

void ChipProxy::trace_segment(std::uint32_t kind, Cycle start, Cycle end,
                              Cycle now) const {
  if (tracer_ == nullptr && shard_ == nullptr) return;
  const auto arg0 = static_cast<std::uint64_t>(chip_) * 4 + kind;
  // Compute-pre segments carry the chip-local engine's breakdown of the
  // layer so the profiler can attribute the segment without the chip trace.
  std::uint64_t arg2 = 0;
  std::uint64_t arg3 = 0;
  if (kind == 0) {
    const ChipLayerPlan& plan = layers_[layer_];
    arg2 = plan.dram_cycles;
    arg3 = sim::pack_u32_pair(plan.noc_busy_cycles, plan.reconfig_cycles);
  }
  if (shard_ != nullptr) {
    shard_->record(now, 0, chip_, start, sim::TraceEvent::kClusterSegment,
                   arg0, end - start, arg2, arg3);
  } else {
    tracer_->record(start, sim::TraceEvent::kClusterSegment, arg0,
                    end - start, arg2, arg3);
  }
}

void ChipProxy::on_halo(const LinkMessage& msg, Cycle now) {
  AURORA_CHECK_MSG(msg.layer < layers_.size(),
                   "halo chunk for layer beyond the chip's plan");
  ++arrived_[msg.layer];
  last_arrival_[msg.layer] = std::max(last_arrival_[msg.layer], now);
  halo_bytes_received_ += msg.bytes;
  wake();
}

void ChipProxy::tick(Cycle now) {
  bool progress = true;
  while (progress) {
    progress = false;
    switch (state_) {
      case State::kPre:
        if (now >= seg_end_) {
          trace_segment(0, seg_start_, seg_end_, now);
          for (LinkMessage msg : layers_[layer_].outgoing) {
            halo_bytes_sent_ += msg.bytes;
            const auto route =
                static_cast<std::uint64_t>(msg.src) * 256 + msg.dst;
            if (shard_ != nullptr) {
              shard_->record(now, 0, chip_, now, sim::TraceEvent::kHaloSent,
                             route, msg.bytes, msg.layer);
            } else if (tracer_ != nullptr) {
              tracer_->record(now, sim::TraceEvent::kHaloSent, route,
                              msg.bytes, msg.layer);
            }
            link_->send(msg, now);
          }
          wait_start_ = now;
          state_ = State::kWaitHalo;
          progress = true;
        }
        break;
      case State::kWaitHalo: {
        const ChipLayerPlan& plan = layers_[layer_];
        if (arrived_[layer_] >= plan.expected_chunks &&
            (plan.expected_chunks == 0 || now > last_arrival_[layer_])) {
          halo_wait_cycles_ += now - wait_start_;
          trace_segment(1, wait_start_, now, now);
          state_ = State::kPost;
          seg_start_ = now;
          seg_end_ = now + plan.seg_post;
          progress = true;
        }
        break;
      }
      case State::kPost:
        if (now >= seg_end_) {
          trace_segment(2, seg_start_, seg_end_, now);
          ++layer_;
          if (layer_ == layers_.size()) {
            state_ = State::kDone;
            finish_cycle_ = now;
          } else {
            state_ = State::kPre;
            seg_start_ = now;
            seg_end_ = now + layers_[layer_].seg_pre;
            progress = true;
          }
        }
        break;
      case State::kDone:
        break;
    }
  }
}

Cycle ChipProxy::next_event_cycle(Cycle now) const {
  switch (state_) {
    case State::kPre:
    case State::kPost:
      return seg_end_;
    case State::kWaitHalo:
      if (arrived_[layer_] < layers_[layer_].expected_chunks) {
        return kFarFuture;  // unblocked only by a delivery (external stimulus)
      }
      return layers_[layer_].expected_chunks == 0 ? now
                                                  : last_arrival_[layer_] + 1;
    case State::kDone:
      return sim::kNoEvent;
  }
  throw Error("invalid ChipProxy state");
}

void ChipProxy::verify_invariants(sim::InvariantReport& report) const {
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    report.require(arrived_[l] <= layers_[l].expected_chunks,
                   "halo arrivals bounded by expectations",
                   "layer " + std::to_string(l) + ": " +
                       std::to_string(arrived_[l]) + " > " +
                       std::to_string(layers_[l].expected_chunks));
  }
  if (report.drained()) {
    report.require(state_ == State::kDone, "chip finished its plan");
    for (std::size_t l = 0; l < layers_.size(); ++l) {
      report.require(arrived_[l] == layers_[l].expected_chunks,
                     "every halo barrier fully satisfied",
                     "layer " + std::to_string(l));
    }
  }
}

void ChipProxy::register_metrics(MetricsRegistry& registry) {
  const auto scope =
      registry.scope("cluster.chip" + std::to_string(chip_));
  scope.counter("halo_bytes_sent", &halo_bytes_sent_);
  scope.counter("halo_bytes_received", &halo_bytes_received_);
  scope.counter("halo_wait_cycles", &halo_wait_cycles_);
  scope.gauge("layer", [this] { return static_cast<double>(layer_); });
}

Cycle ClusterRunMetrics::max_halo_wait_cycles() const {
  Cycle m = 0;
  for (const ChipRun& c : chips) m = std::max(m, c.halo_wait_cycles);
  return m;
}

ClusterEngine::ClusterEngine(const core::AuroraConfig& config,
                             const ClusterParams& params)
    : config_(config), params_(params) {
  AURORA_CHECK(params.num_chips >= 1);
}

void ClusterEngine::set_chip_tracer(std::uint32_t chip, sim::Tracer* tracer) {
  AURORA_CHECK(chip < params_.num_chips);
  if (chip_tracers_.size() < params_.num_chips) {
    chip_tracers_.resize(params_.num_chips, nullptr);
  }
  chip_tracers_[chip] = tracer;
}

ClusterRunMetrics ClusterEngine::run(const graph::Dataset& dataset,
                                     const core::GnnJob& job) {
  AURORA_CHECK(!job.layers.empty());
  const std::uint32_t n = params_.num_chips;
  const ShardPlan plan = make_shard_plan(dataset, n, params_.strategy);

  ClusterRunMetrics out;
  out.cut_edges = plan.cut_edges;
  out.ghost_vertices = plan.total_ghosts;
  out.replication_factor = plan.replication_factor;
  out.chips.resize(n);

  // Phase A: chip-local engine runs fix each chip's exact per-layer timing
  // and split it at the halo-exchange point. The chips are independent
  // (each gets its own accelerator, shard and result slot), so the
  // parallel mode fans them out — this is where the wall-clock dominates.
  std::vector<std::vector<ChipLayerPlan>> chip_plans(n);
  parallel_for(n, params_.parallel ? params_.parallel_jobs : 1,
               [&](std::size_t c) {
    core::AuroraAccelerator accelerator(config_);
    if (c < chip_tracers_.size() && chip_tracers_[c] != nullptr) {
      accelerator.set_tracer(chip_tracers_[c]);
    }
    chip_plans[c].resize(job.layers.size());
    for (std::size_t l = 0; l < job.layers.size(); ++l) {
      core::RunMetrics m =
          accelerator.run_layer(plan.shards[c].dataset, job.model,
                                job.layers[l], static_cast<std::uint32_t>(l));
      const Cycle post = std::min(
          m.phase(gnn::Phase::kVertexUpdate).active_cycles, m.total_cycles);
      chip_plans[c][l].seg_post = post;
      chip_plans[c][l].seg_pre = m.total_cycles - post;
      chip_plans[c][l].dram_cycles = m.dram_cycles;
      chip_plans[c][l].noc_busy_cycles = m.onchip_comm_cycles;
      chip_plans[c][l].reconfig_cycles = m.reconfig_cycles;
      out.chips[c].metrics += m;
    }
  });

  // Halo widths per layer: the feature width flowing into vertex-update
  // under the layer's (possibly update-first) dataflow.
  std::vector<std::uint32_t> halo_dims(job.layers.size());
  for (std::size_t l = 0; l < job.layers.size(); ++l) {
    const gnn::Workflow wf =
        gnn::generate_workflow(job.model, job.layers[l], dataset.num_vertices(),
                               dataset.num_edges());
    halo_dims[l] = std::max<std::uint32_t>(1, wf.edge_feature_dim);
  }

  // Phase B: outgoing chunks and per-chip expectations, chunked to the
  // link's message size so one fat halo cannot monopolise a ring wire.
  for (std::size_t l = 0; l < job.layers.size(); ++l) {
    for (std::uint32_t src = 0; src < n; ++src) {
      for (std::uint32_t dst = 0; dst < n; ++dst) {
        if (src == dst) continue;
        Bytes remaining =
            plan.halo_bytes(src, dst, halo_dims[l], config_.element_bytes);
        while (remaining > 0) {
          LinkMessage msg;
          msg.src = src;
          msg.dst = dst;
          msg.bytes = std::min(remaining, params_.link.max_message_bytes);
          msg.layer = static_cast<std::uint32_t>(l);
          remaining -= msg.bytes;
          chip_plans[src][l].outgoing.push_back(msg);
          ++chip_plans[dst][l].expected_chunks;
        }
      }
    }
  }

  // Deadlock guard headroom: every segment plus every chunk's worst-case
  // serialisation, queueing-free flight and per-hop forwarding gap. A fault
  // plan can stretch every serialisation by its largest multiplier, so the
  // per-chunk term scales by that worst case.
  const Cycle serialize_scale =
      params_.fault_plan == nullptr
          ? 1
          : static_cast<Cycle>(
                std::ceil(params_.fault_plan->max_link_multiplier()));
  Cycle bound = 1000;
  for (std::uint32_t c = 0; c < n; ++c) {
    for (const ChipLayerPlan& lp : chip_plans[c]) {
      bound += lp.seg_pre + lp.seg_post;
      for (const LinkMessage& msg : lp.outgoing) {
        bound += (link_serialize_cycles(params_.link, msg.bytes) *
                      serialize_scale +
                  params_.link.hop_latency + 2) *
                 link_route_hops(params_.link, n, msg.src, msg.dst);
      }
    }
  }
  bound *= 2;

  // Phase C: replay on the shared cluster clock — one serial simulator, or
  // one partition per chip under the conservative parallel coordinator.
  if (tracer_ != nullptr) {
    tracer_->record(0, sim::TraceEvent::kRunBegin, sim::kRunKindCluster, n);
    // Annotate the run with the plan's link fault windows (cluster clock)
    // so the profiler and trace viewers can attribute degraded stretches.
    if (params_.fault_plan != nullptr) {
      for (const fault::FaultEvent& e : params_.fault_plan->events()) {
        if (e.kind == fault::FaultKind::kLinkDegraded) {
          tracer_->record(
              e.at, sim::TraceEvent::kLinkDegraded,
              static_cast<std::uint64_t>(e.chip) * 256 + e.peer,
              static_cast<std::uint64_t>(std::llround(e.multiplier * 1000.0)));
        } else if (e.kind == fault::FaultKind::kLinkRestored) {
          tracer_->record(e.at, sim::TraceEvent::kLinkRestored,
                          static_cast<std::uint64_t>(e.chip) * 256 + e.peer,
                          1000);
        }
      }
    }
  }
  if (params_.parallel) {
    link_.reset();
    run_timeline_parallel(std::move(chip_plans), bound);
    out.link = fabric_->stats();
  } else {
    fabric_.reset();
    shards_.clear();
    run_timeline_serial(std::move(chip_plans), bound);
    out.link = link_->stats();
  }

  for (std::uint32_t c = 0; c < n; ++c) {
    ChipRun& chip = out.chips[c];
    chip.finish_cycle = proxies_[c]->finish_cycle();
    chip.halo_wait_cycles = proxies_[c]->halo_wait_cycles();
    chip.halo_bytes_sent = proxies_[c]->halo_bytes_sent();
    chip.halo_bytes_received = proxies_[c]->halo_bytes_received();
    out.total_cycles = std::max(out.total_cycles, chip.finish_cycle);
  }
  if (tracer_ != nullptr) {
    tracer_->record(out.total_cycles, sim::TraceEvent::kRunEnd,
                    out.total_cycles, 0);
  }

  out.counters.inc("cluster.chips", n);
  out.counters.inc("cluster.cut_edges", plan.cut_edges);
  out.counters.inc("cluster.ghost_vertices", plan.total_ghosts);
  out.counters.inc("cluster.halo_messages_sent", out.link.messages_sent);
  out.counters.inc("cluster.halo_messages_delivered",
                   out.link.messages_delivered);
  out.counters.inc("cluster.halo_bytes_sent", out.link.bytes_sent);
  out.counters.inc("cluster.halo_bytes_delivered", out.link.bytes_delivered);
  out.counters.inc("cluster.link_hops", out.link.hops);
  out.counters.inc("cluster.link_serialize_cycles",
                   out.link.serialize_cycles);
  out.counters.inc("cluster.link_stall_cycles", out.link.stall_cycles);
  out.counters.inc("cluster.link_degraded_sends", out.link.degraded_sends);
  out.counters.inc("cluster.link_degraded_extra_cycles",
                   out.link.degraded_extra_cycles);
  Cycle barrier_total = 0;
  for (const ChipRun& chip : out.chips) barrier_total += chip.halo_wait_cycles;
  out.counters.inc("cluster.barrier_wait_cycles", barrier_total);
  return out;
}

void ClusterEngine::run_timeline_serial(
    std::vector<std::vector<ChipLayerPlan>>&& chip_plans, Cycle bound) {
  const std::uint32_t n = params_.num_chips;
  link_ = std::make_unique<InterChipLink>(n, params_.link);
  link_->set_fault_plan(params_.fault_plan.get());
  proxies_.clear();
  for (std::uint32_t c = 0; c < n; ++c) {
    proxies_.push_back(std::make_unique<ChipProxy>(
        c, std::move(chip_plans[c]), link_.get(), tracer_));
  }
  link_->set_delivery_callback([this](const LinkMessage& msg, Cycle now) {
    if (tracer_ != nullptr) {
      tracer_->record(now, sim::TraceEvent::kHaloDelivered,
                      static_cast<std::uint64_t>(msg.src) * 256 + msg.dst,
                      msg.bytes, msg.layer);
    }
    proxies_[msg.dst]->on_halo(msg, now);
  });

  sim::Simulator simulator;
  simulator.set_fast_forward(config_.fast_forward);
  for (auto& proxy : proxies_) simulator.add(proxy.get());
  simulator.add(link_.get());

  sim::InvariantChecker checker(config_.invariant_interval);
  if (config_.check_invariants) {
    for (auto& proxy : proxies_) checker.watch(proxy.get());
    checker.watch(link_.get());
    simulator.add(&checker);
  }

  simulator.run_until_idle(bound);
  if (config_.check_invariants) checker.check_now(simulator.now(), true);
}

void ClusterEngine::run_timeline_parallel(
    std::vector<std::vector<ChipLayerPlan>>&& chip_plans, Cycle bound) {
  const std::uint32_t n = params_.num_chips;
  fabric_ = std::make_unique<LinkFabric>(n, params_.link);
  fabric_->set_fault_plan(params_.fault_plan.get());
  shards_.clear();
  const bool sharded_trace = tracer_ != nullptr;
  if (sharded_trace) shards_.resize(n);
  proxies_.clear();
  for (std::uint32_t c = 0; c < n; ++c) {
    proxies_.push_back(std::make_unique<ChipProxy>(
        c, std::move(chip_plans[c]), &fabric_->endpoint(c), nullptr,
        sharded_trace ? &shards_[c] : nullptr));
  }
  for (std::uint32_t c = 0; c < n; ++c) {
    fabric_->endpoint(c).set_delivery_callback(
        [this, c](const LinkMessage& msg, Cycle now, std::size_t via_wire) {
          if (c < shards_.size()) {
            shards_[c].record(
                now, 1, via_wire, now, sim::TraceEvent::kHaloDelivered,
                static_cast<std::uint64_t>(msg.src) * 256 + msg.dst,
                msg.bytes, msg.layer);
          }
          proxies_[c]->on_halo(msg, now);
        });
  }

  // Lookahead: a message posted in a window starting at T serialises no
  // earlier than T (>= 1 cycle) and then flies hop_latency cycles, so its
  // arrival is >= T + hop_latency + 1 — the safe window width.
  sim::ParallelSimulator psim(params_.link.hop_latency + 1);
  psim.set_fast_forward(config_.fast_forward);
  std::vector<std::unique_ptr<sim::InvariantChecker>> checkers;
  for (std::uint32_t c = 0; c < n; ++c) {
    sim::Simulator& partition = psim.add_partition();
    partition.add(proxies_[c].get());
    partition.add(&fabric_->endpoint(c));
    if (config_.check_invariants) {
      checkers.push_back(std::make_unique<sim::InvariantChecker>(
          config_.invariant_interval));
      checkers.back()->watch(proxies_[c].get());
      checkers.back()->watch(&fabric_->endpoint(c));
      partition.add(checkers.back().get());
    }
  }
  psim.set_exchange([this] { fabric_->flush(); });
  psim.run_until_idle(bound, params_.parallel_jobs);

  if (config_.check_invariants) {
    // Partition-local laws at the drain point, then the fabric-wide
    // conservation no single partition can see.
    for (auto& checker : checkers) checker->check_now(psim.now(), true);
    sim::InvariantReport report(psim.now(), true);
    report.set_subject("interchip-fabric");
    fabric_->verify_drained(report);
    if (!report.ok()) {
      throw Error("invariant check failed:\n" + report.to_string());
    }
  }

  if (sharded_trace) {
    std::vector<const TraceShard::Entry*> order;
    std::size_t total = 0;
    for (const TraceShard& s : shards_) total += s.entries.size();
    order.reserve(total);
    for (const TraceShard& s : shards_) {
      for (const TraceShard::Entry& e : s.entries) order.push_back(&e);
    }
    std::stable_sort(
        order.begin(), order.end(),
        [](const TraceShard::Entry* a, const TraceShard::Entry* b) {
          return std::tie(a->record_cycle, a->cls, a->subkey) <
                 std::tie(b->record_cycle, b->cls, b->subkey);
        });
    for (const TraceShard::Entry* e : order) {
      tracer_->record(e->record.at, e->record.kind, e->record.arg0,
                      e->record.arg1, e->record.arg2, e->record.arg3);
    }
  }
}

void ClusterEngine::register_metrics(MetricsRegistry& registry) {
  AURORA_CHECK_MSG(link_ != nullptr || fabric_ != nullptr,
                   "register_metrics needs a completed cluster run");
  if (link_ != nullptr) {
    link_->register_metrics(registry);
  } else {
    fabric_->register_metrics(registry);
  }
  for (auto& proxy : proxies_) proxy->register_metrics(registry);
}

namespace {

void diff_field(std::vector<std::string>& out, const std::string& name,
                std::uint64_t a, std::uint64_t b) {
  if (a != b) {
    out.push_back(name + ": " + std::to_string(a) + " != " +
                  std::to_string(b));
  }
}

void diff_link_stats(std::vector<std::string>& out, const std::string& prefix,
                     const LinkStats& a, const LinkStats& b) {
  diff_field(out, prefix + ".messages_sent", a.messages_sent,
             b.messages_sent);
  diff_field(out, prefix + ".messages_delivered", a.messages_delivered,
             b.messages_delivered);
  diff_field(out, prefix + ".bytes_sent", a.bytes_sent, b.bytes_sent);
  diff_field(out, prefix + ".bytes_delivered", a.bytes_delivered,
             b.bytes_delivered);
  diff_field(out, prefix + ".hops", a.hops, b.hops);
  diff_field(out, prefix + ".bytes_hopped", a.bytes_hopped, b.bytes_hopped);
  diff_field(out, prefix + ".serialize_cycles", a.serialize_cycles,
             b.serialize_cycles);
  diff_field(out, prefix + ".stall_cycles", a.stall_cycles, b.stall_cycles);
  diff_field(out, prefix + ".degraded_sends", a.degraded_sends,
             b.degraded_sends);
  diff_field(out, prefix + ".degraded_extra_cycles", a.degraded_extra_cycles,
             b.degraded_extra_cycles);
  diff_field(out, prefix + ".latency.total", a.latency.total(),
             b.latency.total());
  for (std::size_t i = 0; i < a.latency.num_buckets(); ++i) {
    diff_field(out, prefix + ".latency.bucket" + std::to_string(i),
               a.latency.bucket_count(i), b.latency.bucket_count(i));
  }
}

}  // namespace

std::vector<std::string> diff_cluster_run_metrics(const ClusterRunMetrics& a,
                                                  const ClusterRunMetrics& b) {
  std::vector<std::string> out;
  diff_field(out, "total_cycles", a.total_cycles, b.total_cycles);
  diff_field(out, "cut_edges", a.cut_edges, b.cut_edges);
  diff_field(out, "ghost_vertices", a.ghost_vertices, b.ghost_vertices);
  if (a.replication_factor != b.replication_factor) {
    out.push_back("replication_factor differs");
  }
  diff_field(out, "chips.size", a.chips.size(), b.chips.size());
  if (a.chips.size() == b.chips.size()) {
    for (std::size_t c = 0; c < a.chips.size(); ++c) {
      const std::string prefix = "chip" + std::to_string(c);
      for (const std::string& d :
           core::diff_run_metrics(a.chips[c].metrics, b.chips[c].metrics)) {
        out.push_back(prefix + ".metrics." + d);
      }
      diff_field(out, prefix + ".finish_cycle", a.chips[c].finish_cycle,
                 b.chips[c].finish_cycle);
      diff_field(out, prefix + ".halo_wait_cycles",
                 a.chips[c].halo_wait_cycles, b.chips[c].halo_wait_cycles);
      diff_field(out, prefix + ".halo_bytes_sent", a.chips[c].halo_bytes_sent,
                 b.chips[c].halo_bytes_sent);
      diff_field(out, prefix + ".halo_bytes_received",
                 a.chips[c].halo_bytes_received,
                 b.chips[c].halo_bytes_received);
    }
  }
  diff_link_stats(out, "link", a.link, b.link);
  for (const auto& [name, value] : a.counters.all()) {
    diff_field(out, "counter." + name, value, b.counters.get(name));
  }
  for (const auto& [name, value] : b.counters.all()) {
    if (a.counters.all().count(name) == 0) {
      out.push_back("counter." + name + ": missing != " +
                    std::to_string(value));
    }
  }
  return out;
}

}  // namespace aurora::cluster
