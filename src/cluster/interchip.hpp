// Cycle-level inter-chip interconnect for multi-chip scale-out.
//
// The link fabric is a set of directed point-to-point wires between chips —
// a bidirectional ring (2N wires, store-and-forward shortest-direction
// routing, ties broken clockwise) or a fully-connected mesh (N·(N-1) wires,
// single hop). Each wire serialises one message at a time at
// `bytes_per_cycle` and then flies it for `hop_latency` cycles; flight
// overlaps the next serialisation (pipelined wire), so a wire's occupancy
// is its serialisation time only.
//
// The component obeys the engine's two-phase discipline: a message handed
// to send() at cycle t becomes eligible to start serialising at t+1 (same
// convention as noc::Network), and a message forwarded at an intermediate
// hop at cycle t re-enters the next wire's queue with the same one-cycle
// eligibility gap — so results never depend on component registration
// order. All statistics accumulate at event points (transmission start,
// delivery), which makes lockstep and fast-forward runs bit-identical
// without any skip_cycles accounting.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "fault/fault.hpp"
#include "sim/component.hpp"

namespace aurora::sim {
class InvariantReport;
}

namespace aurora::cluster {

enum class ClusterTopology : std::uint8_t {
  kRing,
  kFullyConnected,
};

[[nodiscard]] const char* topology_name(ClusterTopology t);

struct LinkParams {
  ClusterTopology topology = ClusterTopology::kRing;
  /// Serialisation bandwidth of one directed wire.
  Bytes bytes_per_cycle = 32;
  /// Flight latency per hop once serialised.
  Cycle hop_latency = 64;
  /// Halo payloads above this are chunked into multiple messages, bounding
  /// head-of-line blocking on shared ring wires.
  Bytes max_message_bytes = 8192;
};

/// One halo message. `sent_at` is the original injection cycle (end-to-end
/// latency accounting); `enqueued_at` is the arrival cycle at the current
/// wire's tail and governs the two-phase eligibility gap.
struct LinkMessage {
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  Bytes bytes = 0;
  /// GNN layer this halo exchange belongs to (receivers may lag senders).
  std::uint32_t layer = 0;
  Cycle sent_at = 0;
  Cycle enqueued_at = 0;
};

// Topology/wire helpers shared by the serial InterChipLink and the
// per-chip LinkEndpoint of the parallel engine (cluster/parallel_link.hpp).
// Free functions so both engines provably route, index and serialise
// identically — the bit-identity guarantee leans on this.

/// Serialisation cycles for `bytes` on one wire (>= 1).
[[nodiscard]] Cycle link_serialize_cycles(const LinkParams& params,
                                          Bytes bytes);
/// The chip a message at `at` heads to next en route to `dst` (ring:
/// shortest direction, ties clockwise; fully-connected: dst).
[[nodiscard]] std::uint32_t link_next_hop(const LinkParams& params,
                                          std::uint32_t num_chips,
                                          std::uint32_t at, std::uint32_t dst);
/// Wire traversals a message (src -> dst) makes under the topology.
[[nodiscard]] std::uint32_t link_route_hops(const LinkParams& params,
                                            std::uint32_t num_chips,
                                            std::uint32_t src,
                                            std::uint32_t dst);
/// Global index of the directed wire from -> to. Ring: wire 2i = i -> i+1
/// (clockwise), 2i+1 = i -> i-1; fully-connected: row-major by source.
/// Chip c's outgoing wires are contiguous-by-construction in neither
/// layout, but their global indices are what orders same-cycle arrivals.
[[nodiscard]] std::size_t link_wire_index(const LinkParams& params,
                                          std::uint32_t num_chips,
                                          std::uint32_t from, std::uint32_t to);
/// Total directed wires under the topology.
[[nodiscard]] std::size_t link_num_wires(const LinkParams& params,
                                         std::uint32_t num_chips);

/// Serialisation timing of one transmission starting at `now` on the
/// directed wire from -> to, with the fault plan's degradation multiplier
/// (if any) applied. The multiplier is sampled once, at the transmission-
/// start event point, and stretches the serialisation duration only: start
/// times never move (next_event_cycle stays exact under fast-forward) and
/// hop flight is untouched (per-wire arrival order stays monotone, and the
/// parallel simulator's hop_latency lookahead stays a lower bound).
struct LinkTransmitTiming {
  Cycle serialize = 0;
  /// Extra cycles degradation added over the healthy timing (0 if healthy).
  Cycle degraded_extra = 0;
};
[[nodiscard]] LinkTransmitTiming link_transmit_timing(
    const LinkParams& params, const fault::FaultPlan* plan, std::uint32_t from,
    std::uint32_t to, Bytes bytes, Cycle now);

/// Injection interface a ChipProxy sends halos through — implemented by the
/// serial InterChipLink and by the parallel engine's per-chip LinkEndpoint.
class HaloSender {
 public:
  virtual ~HaloSender() = default;
  /// Inject a message at its source chip. Eligible to serialise from now+1.
  virtual void send(LinkMessage msg, Cycle now) = 0;
};

struct LinkStats {
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_delivered = 0;
  Bytes bytes_sent = 0;
  Bytes bytes_delivered = 0;
  /// Wire traversals (a delivered 2-hop message counts 2) and the bytes they
  /// moved.
  std::uint64_t hops = 0;
  Bytes bytes_hopped = 0;
  /// Cycles wires spent serialising (summed over wires; concurrent wires
  /// each count).
  Cycle serialize_cycles = 0;
  /// Cycles messages spent queued behind a busy wire past their eligibility.
  Cycle stall_cycles = 0;
  /// Transmissions that started inside a fault-plan degradation window, and
  /// the extra cycles degradation added to their serialisation + flight.
  std::uint64_t degraded_sends = 0;
  Cycle degraded_extra_cycles = 0;
  /// Injection-to-delivery latency distribution (canonical cluster layout).
  Histogram latency{kLinkLatencyBucketCycles, kLinkLatencyBuckets};
};

class InterChipLink final : public sim::Component, public HaloSender {
 public:
  using DeliveryCallback = std::function<void(const LinkMessage&, Cycle)>;

  InterChipLink(std::uint32_t num_chips, const LinkParams& params);

  void set_delivery_callback(DeliveryCallback cb) {
    on_delivery_ = std::move(cb);
  }

  /// Attach a fault plan whose link degradation windows stretch this link's
  /// transmissions (cluster-run clock). Null (the default) is fully inert.
  /// The plan must outlive the link.
  void set_fault_plan(const fault::FaultPlan* plan) { fault_plan_ = plan; }

  /// Inject a message at its source chip. Eligible to serialise from now+1.
  void send(LinkMessage msg, Cycle now) override;

  [[nodiscard]] std::uint64_t messages_in_flight() const;
  [[nodiscard]] Bytes bytes_in_flight() const;
  [[nodiscard]] const LinkStats& stats() const { return stats_; }
  [[nodiscard]] std::uint32_t num_wires() const {
    return static_cast<std::uint32_t>(wires_.size());
  }
  [[nodiscard]] const LinkParams& params() const { return params_; }

  /// Serialisation cycles for `bytes` on one wire (>= 1).
  [[nodiscard]] Cycle serialize_cycles(Bytes bytes) const;
  /// Hops message (src -> dst) traverses under the configured topology.
  [[nodiscard]] std::uint32_t route_hops(std::uint32_t src,
                                         std::uint32_t dst) const;

  void tick(Cycle now) override;
  [[nodiscard]] bool idle() const override;
  [[nodiscard]] Cycle next_event_cycle(Cycle now) const override;
  /// Conservation: messages/bytes sent == delivered + in flight; histogram
  /// totals match deliveries; after drain, every queue and wire is empty.
  void verify_invariants(sim::InvariantReport& report) const override;
  /// Counters, the in-flight gauge and the latency histogram under
  /// "cluster.link.".
  void register_metrics(MetricsRegistry& registry) override;

 private:
  struct Flying {
    LinkMessage msg;
    Cycle arrives_at = 0;
  };
  /// One directed wire. `flying` is ordered by arrival (serialisation start
  /// times are increasing and flight latency is constant).
  struct Wire {
    std::uint32_t from = 0;
    std::uint32_t to = 0;
    std::deque<LinkMessage> queue;
    std::deque<Flying> flying;
    Cycle free_at = 0;
  };

  [[nodiscard]] std::uint32_t next_hop(std::uint32_t at,
                                       std::uint32_t dst) const;
  [[nodiscard]] std::size_t wire_index(std::uint32_t from,
                                       std::uint32_t to) const;
  void arrive(const LinkMessage& msg, std::uint32_t at, Cycle now);

  std::uint32_t num_chips_;
  LinkParams params_;
  std::vector<Wire> wires_;
  DeliveryCallback on_delivery_;
  const fault::FaultPlan* fault_plan_ = nullptr;
  LinkStats stats_;
};

}  // namespace aurora::cluster
