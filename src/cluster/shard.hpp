// Graph sharding for multi-chip scale-out: cut one dataset into per-chip
// subgraphs with explicit halo (ghost) vertex sets and replication metadata.
//
// The cut is an edge-cut vertex partition: every vertex has exactly one
// owner chip; an owned vertex's full neighbor list stays on its owner, and
// neighbors owned elsewhere materialise locally as ghost vertices whose
// rows mirror the cut edges back into the owned side — the shard stays an
// undirected (symmetric) CSR, which the cycle engine's dataflow relies on.
// Ghost features are replicated from their owners through the inter-chip
// link once per layer (boundary replication, the DistGNN/AliGraph idiom),
// and ghosts also incur replicated vertex-update compute on the chips that
// host them; the replication factor below quantifies that overhead.
//
// A 1-chip plan is the identity: the single shard's CSR is bit-identical to
// the input dataset's (same row_ptr/col_idx vectors), which is what lets the
// cluster engine's single-chip runs reproduce the plain engine exactly.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "graph/datasets.hpp"

namespace aurora::cluster {

/// How vertices are assigned to owner chips.
enum class ShardStrategy : std::uint8_t {
  /// Contiguous vertex ranges balanced by edge count (reuses the tiler's
  /// balanced_edge_ranges). Preserves any locality the vertex order carries,
  /// so reordered graphs cut fewer edges.
  kRange,
  /// owner(v) = v mod num_chips — the locality-oblivious baseline, bounding
  /// the halo traffic a bad placement can produce.
  kHash,
};

[[nodiscard]] const char* shard_strategy_name(ShardStrategy s);

/// One chip's subgraph: owned vertices first (local ids [0, num_owned)),
/// then ghosts (local ids [num_owned, num_owned + num_ghosts)), both in
/// ascending global-id order.
struct Shard {
  std::uint32_t chip = 0;
  /// Local dataset: owned rows keep their full (remapped) neighbor lists,
  /// ghost rows hold the mirrored cut edges into their owned neighbors.
  /// Spec and scale are inherited from the input so feature metadata
  /// (width, density) is preserved.
  graph::Dataset dataset;
  VertexId num_owned = 0;
  VertexId num_ghosts = 0;
  /// local id -> global id, size num_owned + num_ghosts.
  std::vector<VertexId> global_ids;
  /// ghosts_from[s] = number of this shard's ghosts owned by chip s
  /// (ghosts_from[chip] == 0): the per-source halo-exchange footprint.
  std::vector<VertexId> ghosts_from;
  /// Edges from owned vertices into ghosts (this shard's side of the cut).
  EdgeId cut_edges = 0;
};

struct ShardPlan {
  ShardStrategy strategy = ShardStrategy::kRange;
  std::uint32_t num_chips = 1;
  std::vector<Shard> shards;
  /// Directed edges crossing chip boundaries, summed over shards.
  EdgeId cut_edges = 0;
  /// Ghost vertices summed over shards.
  VertexId total_ghosts = 0;
  /// (owned + ghost vertices across shards) / global vertices; 1.0 = no
  /// replication.
  double replication_factor = 1.0;

  /// Halo payload owner chip `src` ships to chip `dst` per layer: one
  /// `feature_dim`-wide vector per ghost of `dst` owned by `src`.
  [[nodiscard]] Bytes halo_bytes(std::uint32_t src, std::uint32_t dst,
                                 std::uint32_t feature_dim,
                                 Bytes element_bytes) const;
};

/// Cut `dataset` into `num_chips` shards. Deterministic; num_chips == 1
/// returns the identity plan regardless of strategy.
[[nodiscard]] ShardPlan make_shard_plan(const graph::Dataset& dataset,
                                        std::uint32_t num_chips,
                                        ShardStrategy strategy);

}  // namespace aurora::cluster
