#include "cluster/shard.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"
#include "graph/degree.hpp"
#include "graph/tiling.hpp"

namespace aurora::cluster {
namespace {

constexpr VertexId kUnmapped = std::numeric_limits<VertexId>::max();

/// Owner chip per vertex for the chosen strategy.
std::vector<std::uint32_t> assign_owners(const graph::CsrGraph& g,
                                         std::uint32_t num_chips,
                                         ShardStrategy strategy) {
  const VertexId n = g.num_vertices();
  std::vector<std::uint32_t> owner(n, 0);
  if (strategy == ShardStrategy::kHash) {
    for (VertexId v = 0; v < n; ++v) owner[v] = v % num_chips;
    return owner;
  }
  const std::vector<VertexId> bounds =
      graph::balanced_edge_ranges(g, num_chips);
  for (std::uint32_t c = 0; c < num_chips; ++c) {
    for (VertexId v = bounds[c]; v < bounds[c + 1]; ++v) owner[v] = c;
  }
  return owner;
}

}  // namespace

const char* shard_strategy_name(ShardStrategy s) {
  switch (s) {
    case ShardStrategy::kRange:
      return "range";
    case ShardStrategy::kHash:
      return "hash";
  }
  throw Error("invalid ShardStrategy");
}

Bytes ShardPlan::halo_bytes(std::uint32_t src, std::uint32_t dst,
                            std::uint32_t feature_dim,
                            Bytes element_bytes) const {
  AURORA_CHECK(src < num_chips && dst < num_chips);
  return static_cast<Bytes>(shards[dst].ghosts_from[src]) * feature_dim *
         element_bytes;
}

ShardPlan make_shard_plan(const graph::Dataset& dataset,
                          std::uint32_t num_chips, ShardStrategy strategy) {
  AURORA_CHECK_MSG(num_chips >= 1, "a cluster needs at least one chip");
  AURORA_CHECK_MSG(num_chips <= 256,
                   "halo trace encoding caps the cluster at 256 chips");
  const graph::CsrGraph& g = dataset.graph;
  const VertexId n = g.num_vertices();
  AURORA_CHECK_MSG(num_chips <= std::max<VertexId>(n, 1),
                   "more chips (" << num_chips << ") than vertices (" << n
                                  << ")");

  ShardPlan plan;
  plan.strategy = strategy;
  plan.num_chips = num_chips;
  plan.shards.resize(num_chips);

  const std::vector<std::uint32_t> owner =
      assign_owners(g, num_chips, strategy);

  // Owned vertices per chip, ascending global id.
  std::vector<std::vector<VertexId>> owned(num_chips);
  for (VertexId v = 0; v < n; ++v) owned[owner[v]].push_back(v);

  std::vector<VertexId> global_to_local(n, kUnmapped);
  for (std::uint32_t c = 0; c < num_chips; ++c) {
    Shard& shard = plan.shards[c];
    shard.chip = c;
    shard.num_owned = static_cast<VertexId>(owned[c].size());
    shard.ghosts_from.assign(num_chips, 0);

    // Ghosts: remote-owned aggregation sources of this chip's vertices.
    std::vector<VertexId> ghosts;
    for (const VertexId v : owned[c]) {
      for (const VertexId u : g.neighbors(v)) {
        if (owner[u] != c) {
          ghosts.push_back(u);
          ++shard.cut_edges;
        }
      }
    }
    std::sort(ghosts.begin(), ghosts.end());
    ghosts.erase(std::unique(ghosts.begin(), ghosts.end()), ghosts.end());
    shard.num_ghosts = static_cast<VertexId>(ghosts.size());

    shard.global_ids = owned[c];
    shard.global_ids.insert(shard.global_ids.end(), ghosts.begin(),
                            ghosts.end());
    for (VertexId local = 0; local < shard.global_ids.size(); ++local) {
      global_to_local[shard.global_ids[local]] = local;
    }
    for (const VertexId ghost : ghosts) ++shard.ghosts_from[owner[ghost]];

    // Local CSR: owned rows carry the remapped neighbor list (re-sorted —
    // ghost local ids sit above owned ids, so remapping can unsort a row);
    // ghost rows mirror the cut edges back into their owned neighbors, so
    // the shard stays symmetric (the engine's undirected-CSR dataflow fans
    // contributions out along a vertex's own row). For num_chips == 1 the
    // remap is the identity and the vectors come out bit-identical to the
    // input's.
    std::vector<std::vector<VertexId>> ghost_rows(shard.num_ghosts);
    std::vector<EdgeId> row_ptr;
    std::vector<VertexId> col_idx;
    row_ptr.reserve(shard.global_ids.size() + 1);
    row_ptr.push_back(0);
    for (const VertexId v : owned[c]) {
      const auto row_begin = static_cast<std::ptrdiff_t>(col_idx.size());
      for (const VertexId u : g.neighbors(v)) {
        const VertexId ul = global_to_local[u];
        col_idx.push_back(ul);
        if (ul >= shard.num_owned) {
          ghost_rows[ul - shard.num_owned].push_back(global_to_local[v]);
        }
      }
      std::sort(col_idx.begin() + row_begin, col_idx.end());
      row_ptr.push_back(static_cast<EdgeId>(col_idx.size()));
    }
    for (auto& row : ghost_rows) {
      std::sort(row.begin(), row.end());
      col_idx.insert(col_idx.end(), row.begin(), row.end());
      row_ptr.push_back(static_cast<EdgeId>(col_idx.size()));
    }

    shard.dataset.spec = dataset.spec;
    shard.dataset.scale = dataset.scale;
    shard.dataset.graph =
        graph::CsrGraph(std::move(row_ptr), std::move(col_idx));
    shard.dataset.degree_stats =
        graph::compute_degree_stats(shard.dataset.graph);

    // Reset only the slots this shard used; the map is shared across shards.
    for (const VertexId v : shard.global_ids) global_to_local[v] = kUnmapped;

    plan.cut_edges += shard.cut_edges;
    plan.total_ghosts += shard.num_ghosts;
  }

  plan.replication_factor =
      n == 0 ? 1.0
             : static_cast<double>(n + plan.total_ghosts) /
                   static_cast<double>(n);
  return plan;
}

}  // namespace aurora::cluster
