// Per-chip split of the inter-chip link for the parallel cluster engine.
//
// The serial InterChipLink owns every directed wire and ticks them all on
// one clock. Here each chip gets a LinkEndpoint — a sim::Component living
// in that chip's simulator partition — owning exactly the wires the serial
// link indexes with from == chip. Serialisation (phase 2) runs where the
// wire lives; the finished hop is posted as a timestamped PendingArrival
// into the *target* endpoint's mutex-guarded inbox, and the target executes
// it (delivery or store-and-forward) in its own phase 1 when its clock
// reaches the arrival cycle. The LinkFabric wires the endpoints together
// and flushes every inbox at the coordinator's barriers — single-threaded,
// so inbox locks are only ever contended between posting senders.
//
// Bit-identity with the serial link: a hop posted during window [T, T+L)
// arrives no earlier than T+L (lookahead L = hop_latency + 1; the earliest
// serialisation start in the window is T, lasting >= 1 cycle), so every
// arrival is in its target's pending set before the target can reach the
// arrival cycle. Same-cycle arrivals execute in (arrival cycle, global wire
// index, per-wire sequence) order — exactly the serial link's phase-1
// iteration (wires in global index order, FIFO per wire). All stats
// accumulate at the same event points as the serial link, in per-endpoint
// shards the fabric sums into one LinkStats.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "cluster/interchip.hpp"
#include "sim/component.hpp"

namespace aurora::cluster {

class LinkFabric;

/// Chip-local half of the fabric: one per chip, thread-confined to that
/// chip's simulator partition apart from the inbox (see header comment).
class LinkEndpoint final : public sim::Component, public HaloSender {
 public:
  /// Delivery callback also reports the final hop's global wire index —
  /// the key that orders same-cycle trace records like the serial engine.
  using DeliveryCallback =
      std::function<void(const LinkMessage&, Cycle, std::size_t via_wire)>;

  void set_delivery_callback(DeliveryCallback cb) {
    on_delivery_ = std::move(cb);
  }

  /// Inject a message at this (source) chip. Eligible to serialise from
  /// now+1, exactly like InterChipLink::send.
  void send(LinkMessage msg, Cycle now) override;

  [[nodiscard]] std::uint32_t chip() const { return chip_; }
  /// This endpoint's stats shard (sent at source, serialise/stall at the
  /// transmitting wire, hop/delivery at the receiving chip).
  [[nodiscard]] const LinkStats& stats() const { return stats_; }
  [[nodiscard]] std::uint64_t messages_held() const;
  [[nodiscard]] Bytes bytes_held() const;

  /// A completed hop en route to (or at) this chip, posted by the sending
  /// endpoint; `wire` is the global index of the traversed wire and `seq`
  /// its per-wire FIFO sequence number. (wire, seq) with the arrival cycle
  /// forms the deterministic total order arrivals execute in.
  struct PendingArrival {
    LinkMessage msg;
    Cycle arrives_at = 0;
    std::size_t wire = 0;
    std::uint64_t seq = 0;
  };

  void tick(Cycle now) override;
  [[nodiscard]] bool idle() const override;
  [[nodiscard]] Cycle next_event_cycle(Cycle now) const override;
  /// Local laws only: pending arrivals ordered, queue eligibility sane.
  /// Conservation spans endpoints — see LinkFabric::verify_drained.
  void verify_invariants(sim::InvariantReport& report) const override;

 private:
  friend class LinkFabric;

  struct OutWire {
    std::uint32_t to = 0;
    std::size_t global_index = 0;
    std::uint64_t next_seq = 0;
    std::deque<LinkMessage> queue;
    Cycle free_at = 0;
  };

  LinkEndpoint(LinkFabric* fabric, std::uint32_t chip);
  void enqueue_toward(const LinkMessage& msg);

  LinkFabric* fabric_;
  std::uint32_t chip_ = 0;
  std::vector<OutWire> wires_;  // ascending global index
  DeliveryCallback on_delivery_;
  LinkStats stats_;

  // Cross-thread mailbox: senders post under the lock, the fabric drains it
  // into pending_ at barriers.
  std::mutex inbox_mutex_;
  std::vector<PendingArrival> inbox_;
  // Sorted by (arrives_at, wire, seq); consumed from pending_next_.
  std::vector<PendingArrival> pending_;
  std::size_t pending_next_ = 0;
};

/// Owns the endpoints of one cluster run and the barrier exchange between
/// them.
class LinkFabric {
 public:
  LinkFabric(std::uint32_t num_chips, const LinkParams& params);

  /// Attach a fault plan whose link degradation windows stretch wire
  /// serialisation on every endpoint (same sampling as the serial link's
  /// set_fault_plan). Null is inert; the plan must outlive the fabric.
  void set_fault_plan(const fault::FaultPlan* plan) { fault_plan_ = plan; }
  [[nodiscard]] const fault::FaultPlan* fault_plan() const {
    return fault_plan_;
  }

  [[nodiscard]] std::uint32_t num_chips() const { return num_chips_; }
  [[nodiscard]] const LinkParams& params() const { return params_; }
  [[nodiscard]] LinkEndpoint& endpoint(std::uint32_t chip) {
    return *endpoints_[chip];
  }

  /// Barrier exchange: drain every inbox into its endpoint's sorted pending
  /// set and wake endpoints that received work. Coordinator thread only.
  void flush();

  /// Sum of the per-endpoint shards — field-for-field identical to the
  /// serial InterChipLink's stats for the same run.
  [[nodiscard]] LinkStats stats() const;
  [[nodiscard]] std::uint64_t messages_in_flight() const;
  [[nodiscard]] Bytes bytes_in_flight() const;

  /// Fabric-wide conservation (message/byte totals, latency counts, empty
  /// at drain) — the cross-endpoint laws no single partition can check.
  void verify_drained(sim::InvariantReport& report) const;

  /// Merged counters/gauges/histogram under "cluster.link.", matching the
  /// serial link's registration. Snapshot-based: call after the run.
  void register_metrics(MetricsRegistry& registry);

 private:
  friend class LinkEndpoint;
  void post(std::uint32_t target, LinkEndpoint::PendingArrival arrival);

  std::uint32_t num_chips_;
  LinkParams params_;
  const fault::FaultPlan* fault_plan_ = nullptr;
  std::vector<std::unique_ptr<LinkEndpoint>> endpoints_;
  /// Snapshot backing the registered metric pointers (non-owning probes
  /// need stable addresses; refreshed by register_metrics).
  LinkStats merged_;
};

}  // namespace aurora::cluster
