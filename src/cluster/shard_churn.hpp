// Incremental shard maintenance under graph churn.
//
// A ShardPlan freezes an owner assignment and the ghost sets / cut edges it
// induces. When the graph mutates underneath it, the plan's quality drifts:
// new edges may cross chip boundaries (growing halo traffic), deletions may
// strand ghosts. Recutting on every mutation would be absurd, so the
// tracker maintains the drifted cut incrementally — exact ghost-set
// refcounts and cut-edge counts under streaming edge insert/delete — and
// exposes a re-shard trigger that fires when the drift crosses a threshold.
// After a recut, rebase() adopts the fresh plan as the new baseline.
//
// Ownership is a pure function frozen at rebase time: vertices the plan
// knew keep their planned owner; vertices born later get hash ownership
// (v mod num_chips). For ShardStrategy::kHash the two coincide, which is
// what makes the tracker's counters exactly comparable to a from-scratch
// make_shard_plan over the mutated graph — the property the workload tests
// pin.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "cluster/shard.hpp"
#include "common/types.hpp"

namespace aurora::cluster {

class ShardChurnTracker {
 public:
  /// Baseline the tracker on `plan` (which partitioned `num_vertices`
  /// vertices).
  explicit ShardChurnTracker(const ShardPlan& plan);

  /// Owner chip of v under the frozen assignment (hash ownership for
  /// vertices unknown to the baseline plan).
  [[nodiscard]] std::uint32_t owner(VertexId v) const;

  /// Record a directed edge mutation that actually happened (callers gate on
  /// DynamicGraph's mutators returning true). For undirected mutations call
  /// once per direction, mirroring how the planner counts cut edges.
  void note_edge_added(VertexId u, VertexId v);
  void note_edge_removed(VertexId u, VertexId v);

  // -- drifted state ------------------------------------------------------
  /// Directed cut edges of the current (mutated) graph under the frozen
  /// owner assignment.
  [[nodiscard]] EdgeId cut_edges() const { return cut_edges_; }
  /// Ghost vertices currently required, summed over chips (a global vertex
  /// ghosted on k chips counts k times) — comparable to
  /// ShardPlan::total_ghosts.
  [[nodiscard]] VertexId total_ghosts() const {
    return static_cast<VertexId>(ghost_refs_.size());
  }
  /// The baseline plan's cut at rebase time.
  [[nodiscard]] EdgeId planned_cut_edges() const { return planned_cut_; }
  /// |current cut - planned cut|: the drift magnitude driving the trigger.
  [[nodiscard]] EdgeId cut_drift() const {
    return cut_edges_ > planned_cut_ ? cut_edges_ - planned_cut_
                                     : planned_cut_ - cut_edges_;
  }
  /// Mutations recorded since the last rebase.
  [[nodiscard]] std::uint64_t mutations_since_rebase() const {
    return mutations_;
  }

  /// True when the cut drifted by more than `threshold` (a fraction of the
  /// planned cut; e.g. 0.2 = recut after 20% drift). Never fires for
  /// single-chip plans or non-positive thresholds.
  [[nodiscard]] bool should_reshard(double threshold) const;

  /// Adopt a freshly computed plan as the new baseline and reset drift.
  void rebase(const ShardPlan& plan);

 private:
  void set_baseline(const ShardPlan& plan);
  /// Ghost refcount key: which chip ghosts which global vertex.
  [[nodiscard]] static std::uint64_t ghost_key(std::uint32_t chip,
                                               VertexId global) {
    return (static_cast<std::uint64_t>(chip) << 32) | global;
  }

  std::uint32_t num_chips_ = 1;
  /// Frozen owner per vertex known to the baseline plan.
  std::vector<std::uint32_t> planned_owner_;
  EdgeId planned_cut_ = 0;
  EdgeId cut_edges_ = 0;
  /// (chip, global vertex) -> number of that chip's owned->remote cut edges
  /// targeting the vertex; the vertex is a ghost on the chip iff the count
  /// is positive.
  std::unordered_map<std::uint64_t, EdgeId> ghost_refs_;
  std::uint64_t mutations_ = 0;
};

}  // namespace aurora::cluster
