// Cluster-level serving: dispatch a queue of multi-layer GNN requests over
// N Aurora chips. Extends the single-chip scheduling layer (core::Scheduler
// supplies the DRAM/compute overlap model) with two dispatch policies:
//
//   * data-parallel — the dataset is replicated on every chip; each request
//     runs whole on the least-loaded chip. Maximises throughput: requests
//     proceed concurrently and each chip reuses its accelerator's partition
//     state across the requests it serves.
//   * shard-parallel — every request runs on all chips at once over the
//     sharded graph (ClusterEngine). Minimises per-request latency at the
//     cost of halo traffic and barrier waits.
//
// Like core::Scheduler, the closed-loop run() is a loop over the
// incremental serve() API, which places one request at a time against
// persistent chip timelines — the serving engine's entry point for
// open-loop dispatch (requests arrive while chips are busy, batched
// followers skip reconfiguration, and a request can be pinned to its batch
// head's chip).
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cluster/cluster_engine.hpp"
#include "core/scheduler.hpp"
#include "fault/fault.hpp"

namespace aurora::cluster {

enum class DispatchMode : std::uint8_t {
  kDataParallel,
  kShardParallel,
};

[[nodiscard]] const char* dispatch_mode_name(DispatchMode m);

struct ClusterOutcome {
  std::string label;
  /// Data-parallel: the serving chip's metrics. Shard-parallel: all chips'
  /// metrics accumulated, with total_cycles overridden to the cluster
  /// makespan of the request.
  core::RunMetrics metrics;
  /// Serving chip (data-parallel); 0 for shard-parallel (all chips serve).
  std::uint32_t chip = 0;
  Cycle start_cycle = 0;
  Cycle finish_cycle = 0;
  /// DRAM-under-compute overlap window claimed against the predecessor.
  Cycle overlap_hidden = 0;
  /// Reconfiguration cycles skipped as a batched follower.
  Cycle reconfig_saved = 0;
  /// The serving chip (or, shard-parallel, any gang member) fail-stopped
  /// mid-request: the attempt's work is lost, finish_cycle collapses to the
  /// failure instant and the caller must re-dispatch (the serving engine's
  /// retry path). Only set when a fault plan is attached.
  bool failed = false;
  Cycle failed_at = 0;
  /// Shard-parallel dispatch found a gang chip down at the probed start and
  /// re-routed the request through a data-parallel placement on a survivor.
  bool shard_fallback = false;
  /// Every chip is permanently down — the request can never be served.
  /// Implies `failed`; no simulation was attempted.
  bool no_capacity = false;

  [[nodiscard]] Cycle latency() const { return finish_cycle - start_cycle; }
};

struct ClusterScheduleResult {
  DispatchMode mode = DispatchMode::kDataParallel;
  /// Outcomes in submission order.
  std::vector<ClusterOutcome> outcomes;
  Cycle makespan = 0;
  Cycle overlap_savings = 0;
  /// Final per-chip timeline position (busy-until), data-parallel only.
  std::vector<Cycle> chip_timeline;

  [[nodiscard]] double avg_latency() const;
};

class ClusterScheduler {
 public:
  ClusterScheduler(const core::AuroraConfig& config,
                   const ClusterParams& params);

  /// Run the queue on `dataset` under `mode`. Outcomes keep submission
  /// order even when data-parallel dispatch interleaves chips. Resets any
  /// serving state first, so every run() starts from fresh chips.
  [[nodiscard]] ClusterScheduleResult run(
      const graph::Dataset& dataset,
      std::vector<core::ScheduledRequest> queue, DispatchMode mode);

  /// Place one request. Data-parallel: on the least-loaded chip (or
  /// `pin_chip`, used to keep a batch on its head's chip); shard-parallel:
  /// on the whole cluster. The request starts no earlier than `not_before`
  /// (its arrival) and no earlier than the chip frees up minus the overlap
  /// window. `share_configuration` marks a batched follower that skips its
  /// exposed reconfiguration cycles. Chip pools / the cluster engine
  /// persist across calls; reset() drops them.
  [[nodiscard]] ClusterOutcome serve(
      const graph::Dataset& dataset, core::ScheduledRequest request,
      DispatchMode mode, Cycle not_before = 0,
      bool share_configuration = false,
      std::optional<std::uint32_t> pin_chip = std::nullopt);

  /// Earliest cycle at which any serving unit frees up (0 before the first
  /// serve call): min over chip timelines (data-parallel) or the cluster
  /// timeline (shard-parallel).
  [[nodiscard]] Cycle next_free(DispatchMode mode) const;

  /// Drop all serving state: chip pools, the cluster engine, timelines and
  /// the service-metrics cache.
  void reset();

  /// Attach a fault plan: chip down windows (on the serving clock) steer
  /// dispatch away from dead chips, push starts past repair windows, and
  /// fail requests whose window a failure begins inside. Null or empty
  /// plans are fully inert — placements are bit-identical to a scheduler
  /// without one. The plan is configuration, not serving state: reset()
  /// keeps it.
  void set_fault_plan(std::shared_ptr<const fault::FaultPlan> plan) {
    fault_plan_ = std::move(plan);
  }

  /// Trace every request's execution into `tracer` (enable it first).
  /// Shard-parallel: the cluster-clock trace (segments, halos, run
  /// delimiters). Data-parallel: every chip engine records into the shared
  /// tracer — requests are dispatched one at a time, so records do not
  /// interleave. Tracing disables the service-metrics cache (a cache hit
  /// would record nothing), so traced runs re-simulate every request.
  void set_tracer(sim::Tracer* tracer) {
    tracer_ = tracer;
    reset();
  }

 private:
  struct CachedService {
    core::RunMetrics metrics;
    /// Shard-parallel overlap bounds (min over chips); recomputed from
    /// `metrics` for data-parallel outcomes.
    Cycle lead = 0;
    Cycle tail = 0;
    /// Shard-parallel batching discount: the smallest per-chip exposed
    /// reconfiguration span. Every chip skips at least this much when the
    /// configuration is shared, so the cluster makespan conservatively
    /// shrinks by it.
    Cycle min_chip_reconfig = 0;
  };

  void ensure_chips();
  void ensure_engine();
  [[nodiscard]] ClusterOutcome serve_data_parallel(
      const graph::Dataset& dataset, core::ScheduledRequest& request,
      Cycle not_before, bool share_configuration,
      std::optional<std::uint32_t> pin_chip);
  [[nodiscard]] ClusterOutcome serve_shard_parallel(
      const graph::Dataset& dataset, core::ScheduledRequest& request,
      Cycle not_before, bool share_configuration);
  /// Deterministic engines make identical jobs yield identical metrics, so
  /// serving caches service measurements by job signature. Disabled while a
  /// tracer is attached. Returns nullptr on miss.
  [[nodiscard]] const CachedService* cache_lookup(const std::string& key)
      const;
  /// The attached fault plan when it has any events; nullptr otherwise.
  [[nodiscard]] const fault::FaultPlan* active_fault_plan() const {
    return fault_plan_ != nullptr && !fault_plan_->empty() ? fault_plan_.get()
                                                           : nullptr;
  }

  core::AuroraConfig config_;
  ClusterParams params_;
  sim::Tracer* tracer_ = nullptr;
  std::shared_ptr<const fault::FaultPlan> fault_plan_;

  // Serving state (persists across serve() calls, dropped by reset()).
  std::vector<std::unique_ptr<core::AuroraAccelerator>> chips_;
  std::vector<core::ChipTimeline> chip_timelines_;
  std::unique_ptr<ClusterEngine> engine_;
  core::ChipTimeline shard_timeline_;
  std::map<std::string, CachedService> service_cache_;
};

}  // namespace aurora::cluster
