// Cluster-level serving: dispatch a queue of multi-layer GNN requests over
// N Aurora chips. Extends the single-chip scheduling layer (core::Scheduler
// supplies the DRAM/compute overlap model) with two dispatch policies:
//
//   * data-parallel — the dataset is replicated on every chip; each request
//     runs whole on the least-loaded chip. Maximises throughput: requests
//     proceed concurrently and each chip reuses its accelerator's partition
//     state across the requests it serves.
//   * shard-parallel — every request runs on all chips at once over the
//     sharded graph (ClusterEngine). Minimises per-request latency at the
//     cost of halo traffic and barrier waits.
#pragma once

#include <string>
#include <vector>

#include "cluster/cluster_engine.hpp"
#include "core/scheduler.hpp"

namespace aurora::cluster {

enum class DispatchMode : std::uint8_t {
  kDataParallel,
  kShardParallel,
};

[[nodiscard]] const char* dispatch_mode_name(DispatchMode m);

struct ClusterOutcome {
  std::string label;
  /// Data-parallel: the serving chip's metrics. Shard-parallel: all chips'
  /// metrics accumulated, with total_cycles overridden to the cluster
  /// makespan of the request.
  core::RunMetrics metrics;
  /// Serving chip (data-parallel); 0 for shard-parallel (all chips serve).
  std::uint32_t chip = 0;
  Cycle start_cycle = 0;
  Cycle finish_cycle = 0;

  [[nodiscard]] Cycle latency() const { return finish_cycle - start_cycle; }
};

struct ClusterScheduleResult {
  DispatchMode mode = DispatchMode::kDataParallel;
  /// Outcomes in submission order.
  std::vector<ClusterOutcome> outcomes;
  Cycle makespan = 0;
  Cycle overlap_savings = 0;
  /// Final per-chip timeline position (busy-until), data-parallel only.
  std::vector<Cycle> chip_timeline;

  [[nodiscard]] double avg_latency() const;
};

class ClusterScheduler {
 public:
  ClusterScheduler(const core::AuroraConfig& config,
                   const ClusterParams& params);

  /// Run the queue on `dataset` under `mode`. Outcomes keep submission
  /// order even when data-parallel dispatch interleaves chips.
  [[nodiscard]] ClusterScheduleResult run(
      const graph::Dataset& dataset,
      std::vector<core::ScheduledRequest> queue, DispatchMode mode);

  /// Trace every request's execution into `tracer` (enable it first).
  /// Shard-parallel: the cluster-clock trace (segments, halos, run
  /// delimiters). Data-parallel: every chip engine records into the shared
  /// tracer — requests are dispatched one at a time, so records do not
  /// interleave.
  void set_tracer(sim::Tracer* tracer) { tracer_ = tracer; }

 private:
  [[nodiscard]] ClusterScheduleResult run_data_parallel(
      const graph::Dataset& dataset,
      std::vector<core::ScheduledRequest>& queue);
  [[nodiscard]] ClusterScheduleResult run_shard_parallel(
      const graph::Dataset& dataset,
      std::vector<core::ScheduledRequest>& queue);

  core::AuroraConfig config_;
  ClusterParams params_;
  sim::Tracer* tracer_ = nullptr;
};

}  // namespace aurora::cluster
