// Multi-chip cluster execution: N Aurora chips cooperate on one inference
// over a sharded graph, exchanging halo features through the cycle-level
// InterChipLink under one shared clock.
//
// Execution model. Each chip first runs its shard's layers through its own
// cycle-accurate (or analytic) engine — that fixes the chip-local timing
// exactly, including the replicated ghost compute the shard carries. The
// cluster timeline then replays every chip as a ChipProxy component on a
// shared Simulator together with the link. Per layer a chip contributes two
// timed segments split at the halo-exchange point:
//
//   compute-pre  — DRAM streaming, edge-update and aggregation
//                  (total_cycles minus the vertex-update span);
//   [halo barrier: ship aggregates for remote ghosts, wait for own ghosts]
//   compute-post — the vertex-update span.
//
// At the end of compute-pre the owner ships one feature vector per remote
// ghost (edge_feature_dim wide — the width that actually flows into
// vertex-update, honouring the update-first dataflow), chunked to the
// link's max_message_bytes; a chip enters compute-post only after every
// expected chunk for that layer has arrived. The exchange is the only
// synchronisation point per layer, so chips drift apart in between and
// per-layer arrivals are tagged to keep early senders and lagging receivers
// consistent. With one chip the plan is the identity, nothing is exchanged,
// and the cluster run reproduces the plain engine's metrics bit for bit in
// both scheduler modes.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cluster/interchip.hpp"
#include "cluster/parallel_link.hpp"
#include "cluster/shard.hpp"
#include "core/aurora.hpp"
#include "sim/trace.hpp"

namespace aurora::cluster {

struct ClusterParams {
  std::uint32_t num_chips = 2;
  ShardStrategy strategy = ShardStrategy::kRange;
  LinkParams link;
  /// Run the cluster on the parallel conservative engine: the per-chip
  /// engine runs fan out over worker threads and the cluster timeline
  /// executes as one simulator partition per chip under a
  /// sim::ParallelSimulator. Results are bit-identical to the serial
  /// engine (asserted by tests and the differential fuzzer).
  bool parallel = false;
  /// Worker threads for the parallel engine (0 = hardware concurrency;
  /// capped by the process-wide WorkerBudget either way).
  unsigned parallel_jobs = 0;
  /// Optional fault plan: its link degradation windows stretch wire
  /// serialisation on the cluster-run clock (serial and parallel engines
  /// sample the same windows at the same event points, so runs stay
  /// bit-identical across all four engine flavours). Null is fully inert.
  std::shared_ptr<const fault::FaultPlan> fault_plan;
};

/// One chip's per-layer replay plan on the cluster clock.
struct ChipLayerPlan {
  Cycle seg_pre = 0;
  Cycle seg_post = 0;
  /// Chip-local engine breakdown of the layer (DRAM stream cycles, NoC busy
  /// cycles, reconfiguration cycles) — carried into the enriched
  /// compute-pre kClusterSegment record for the critical-path profiler.
  Cycle dram_cycles = 0;
  Cycle noc_busy_cycles = 0;
  Cycle reconfig_cycles = 0;
  /// Halo chunks this chip ships at the exchange point (dst/bytes/layer
  /// filled in; timing stamped at send).
  std::vector<LinkMessage> outgoing;
  /// Halo chunks this chip must receive before compute-post may start.
  std::uint32_t expected_chunks = 0;
};

/// One partition's trace buffer under the parallel engine. The serial
/// engine records into the shared Tracer in component-execution order;
/// parallel partitions instead append keyed records into their own shard,
/// and the engine merges shards by (record cycle, class, subkey) — class 0
/// = proxy records subkeyed by chip, class 1 = delivery records subkeyed by
/// the final hop's global wire index. That key totally orders records from
/// *different* shards exactly like serial execution did (proxies tick in
/// chip order before the link's deliveries run in wire order), while a
/// stable sort preserves each shard's own append order — so the merged
/// Tracer is bit-identical to a serial run's.
struct TraceShard {
  struct Entry {
    Cycle record_cycle = 0;
    std::uint32_t cls = 0;
    std::uint64_t subkey = 0;
    sim::TraceRecord record;
  };
  std::vector<Entry> entries;

  void record(Cycle record_cycle, std::uint32_t cls, std::uint64_t subkey,
              Cycle at, sim::TraceEvent kind, std::uint64_t arg0,
              std::uint64_t arg1, std::uint64_t arg2 = 0,
              std::uint64_t arg3 = 0) {
    entries.push_back(
        {record_cycle, cls, subkey, {at, kind, arg0, arg1, arg2, arg3}});
  }
};

/// Replays one chip's timed segments on the shared cluster clock,
/// participating in both lockstep and fast-forward scheduling. All state
/// transitions are pinned to arrival-plus-one boundaries, so results are
/// independent of component registration order.
class ChipProxy final : public sim::Component {
 public:
  /// Sends halos through `link` (the serial InterChipLink or this chip's
  /// LinkEndpoint). At most one of `tracer` (serial) / `shard` (parallel)
  /// may be set.
  ChipProxy(std::uint32_t chip, std::vector<ChipLayerPlan> layers,
            HaloSender* link, sim::Tracer* tracer,
            TraceShard* shard = nullptr);

  /// Arrival of one halo chunk (called from the link's delivery path).
  void on_halo(const LinkMessage& msg, Cycle now);

  [[nodiscard]] bool done() const { return state_ == State::kDone; }
  [[nodiscard]] Cycle finish_cycle() const { return finish_cycle_; }
  /// Cycles spent blocked at halo barriers, summed over layers.
  [[nodiscard]] Cycle halo_wait_cycles() const { return halo_wait_cycles_; }
  [[nodiscard]] Bytes halo_bytes_sent() const { return halo_bytes_sent_; }
  [[nodiscard]] Bytes halo_bytes_received() const {
    return halo_bytes_received_;
  }

  void tick(Cycle now) override;
  [[nodiscard]] bool idle() const override { return state_ == State::kDone; }
  [[nodiscard]] Cycle next_event_cycle(Cycle now) const override;
  /// Per-layer arrivals never exceed expectations; after drain every layer's
  /// barrier was fully satisfied and the chip finished its plan.
  void verify_invariants(sim::InvariantReport& report) const override;
  /// Halo byte counters and the barrier-wait counter under
  /// "cluster.chip<i>.".
  void register_metrics(MetricsRegistry& registry) override;

 private:
  enum class State : std::uint8_t { kPre, kWaitHalo, kPost, kDone };

  /// `now` is the cycle the record is made at (the transition cycle) — the
  /// shard merge key; `start`/`end` delimit the traced span itself.
  void trace_segment(std::uint32_t kind, Cycle start, Cycle end,
                     Cycle now) const;

  std::uint32_t chip_;
  std::vector<ChipLayerPlan> layers_;
  HaloSender* link_;
  sim::Tracer* tracer_;
  TraceShard* shard_;

  State state_ = State::kPre;
  std::size_t layer_ = 0;
  Cycle seg_start_ = 0;
  Cycle seg_end_ = 0;
  Cycle wait_start_ = 0;
  Cycle finish_cycle_ = 0;
  Cycle halo_wait_cycles_ = 0;
  Bytes halo_bytes_sent_ = 0;
  Bytes halo_bytes_received_ = 0;
  std::vector<std::uint32_t> arrived_;
  std::vector<Cycle> last_arrival_;
};

/// One chip's outcome of a cluster run.
struct ChipRun {
  /// Chip-local engine metrics accumulated over layers — for a 1-chip
  /// cluster, bit-identical to a plain AuroraAccelerator::run.
  core::RunMetrics metrics;
  /// When the chip finished its last layer on the shared cluster clock.
  Cycle finish_cycle = 0;
  Cycle halo_wait_cycles = 0;
  Bytes halo_bytes_sent = 0;
  Bytes halo_bytes_received = 0;
};

struct ClusterRunMetrics {
  /// Cluster makespan on the shared clock (latest chip finish).
  Cycle total_cycles = 0;
  std::vector<ChipRun> chips;
  /// Final link statistics of the run.
  LinkStats link;
  /// Cluster-level counters (halo traffic, link stalls, barrier waits,
  /// shard metadata), mirroring the per-chip RunMetrics::counters idiom.
  CounterSet counters;
  EdgeId cut_edges = 0;
  VertexId ghost_vertices = 0;
  double replication_factor = 1.0;

  [[nodiscard]] Cycle max_halo_wait_cycles() const;
};

class ClusterEngine {
 public:
  ClusterEngine(const core::AuroraConfig& config, const ClusterParams& params);

  /// Shard `dataset`, run every chip's layers, then replay the cluster
  /// timeline. Honours config.fast_forward (both the per-chip engines and
  /// the shared cluster clock) and config.check_invariants (an
  /// InvariantChecker watches the link and every proxy).
  [[nodiscard]] ClusterRunMetrics run(const graph::Dataset& dataset,
                                      const core::GnnJob& job);

  /// Cluster-clock tracer: chip segments (kClusterSegment) and halo
  /// send/delivery events. Enable before running.
  void set_tracer(sim::Tracer* tracer) { tracer_ = tracer; }
  /// Per-chip engine tracer, forwarded to that chip's accelerator.
  void set_chip_tracer(std::uint32_t chip, sim::Tracer* tracer);

  /// Publish the last run's link and per-chip probes. Entries point into
  /// components owned by this engine and stay valid until the next run().
  void register_metrics(MetricsRegistry& registry);

  [[nodiscard]] const ClusterParams& params() const { return params_; }

 private:
  /// Phase C on the serial shared-clock simulator (the reference engine).
  void run_timeline_serial(std::vector<std::vector<ChipLayerPlan>>&& chip_plans,
                           Cycle bound);
  /// Phase C on the ParallelSimulator: one partition per chip, lookahead
  /// hop_latency + 1, shard-merged traces. Bit-identical to the serial
  /// path.
  void run_timeline_parallel(
      std::vector<std::vector<ChipLayerPlan>>&& chip_plans, Cycle bound);

  core::AuroraConfig config_;
  ClusterParams params_;
  sim::Tracer* tracer_ = nullptr;
  std::vector<sim::Tracer*> chip_tracers_;
  std::unique_ptr<InterChipLink> link_;
  std::unique_ptr<LinkFabric> fabric_;  // outlives proxies_ (declared first)
  std::vector<std::unique_ptr<ChipProxy>> proxies_;
  std::vector<TraceShard> shards_;
};

/// Field-by-field comparison of two cluster runs: total cycles, shard
/// metadata, per-chip engine metrics and halo fields, link stats including
/// every latency histogram bucket, and the counter sets. Returns
/// human-readable mismatch lines; empty means bit-identical. Shared by the
/// differential fuzzer, the bit-identity tests and the microbenchmark.
[[nodiscard]] std::vector<std::string> diff_cluster_run_metrics(
    const ClusterRunMetrics& a, const ClusterRunMetrics& b);

}  // namespace aurora::cluster
