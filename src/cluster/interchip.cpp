#include "cluster/interchip.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/metrics_registry.hpp"
#include "sim/invariants.hpp"

namespace aurora::cluster {

const char* topology_name(ClusterTopology t) {
  switch (t) {
    case ClusterTopology::kRing:
      return "ring";
    case ClusterTopology::kFullyConnected:
      return "fully-connected";
  }
  throw Error("invalid ClusterTopology");
}

Cycle link_serialize_cycles(const LinkParams& params, Bytes bytes) {
  return std::max<Cycle>(
      1, (bytes + params.bytes_per_cycle - 1) / params.bytes_per_cycle);
}

std::uint32_t link_next_hop(const LinkParams& params, std::uint32_t num_chips,
                            std::uint32_t at, std::uint32_t dst) {
  if (params.topology == ClusterTopology::kFullyConnected) return dst;
  const std::uint32_t cw = (dst + num_chips - at) % num_chips;
  const std::uint32_t ccw = (at + num_chips - dst) % num_chips;
  return cw <= ccw ? (at + 1) % num_chips : (at + num_chips - 1) % num_chips;
}

std::uint32_t link_route_hops(const LinkParams& params, std::uint32_t num_chips,
                              std::uint32_t src, std::uint32_t dst) {
  AURORA_CHECK(src < num_chips && dst < num_chips && src != dst);
  if (params.topology == ClusterTopology::kFullyConnected) return 1;
  const std::uint32_t cw = (dst + num_chips - src) % num_chips;
  const std::uint32_t ccw = (src + num_chips - dst) % num_chips;
  return std::min(cw, ccw);
}

std::size_t link_wire_index(const LinkParams& params, std::uint32_t num_chips,
                            std::uint32_t from, std::uint32_t to) {
  if (params.topology == ClusterTopology::kRing) {
    return 2 * static_cast<std::size_t>(from) +
           (to == (from + 1) % num_chips ? 0 : 1);
  }
  return static_cast<std::size_t>(from) * (num_chips - 1) +
         (to < from ? to : to - 1);
}

std::size_t link_num_wires(const LinkParams& params, std::uint32_t num_chips) {
  if (num_chips < 2) return 0;
  if (params.topology == ClusterTopology::kRing) {
    return 2 * static_cast<std::size_t>(num_chips);
  }
  return static_cast<std::size_t>(num_chips) * (num_chips - 1);
}

LinkTransmitTiming link_transmit_timing(const LinkParams& params,
                                        const fault::FaultPlan* plan,
                                        std::uint32_t from, std::uint32_t to,
                                        Bytes bytes, Cycle now) {
  LinkTransmitTiming t;
  t.serialize = link_serialize_cycles(params, bytes);
  if (plan == nullptr || plan->empty()) return t;
  const double mult = plan->wire_multiplier_at(from, to, now);
  if (mult <= 1.0) return t;
  // Degradation only ever lengthens (mult >= 1 by construction), so the
  // parallel simulator's hop_latency-based lookahead stays a lower bound.
  const auto stretched = static_cast<Cycle>(
      std::ceil(static_cast<double>(t.serialize) * mult));
  t.degraded_extra = stretched - t.serialize;
  t.serialize = stretched;
  return t;
}

InterChipLink::InterChipLink(std::uint32_t num_chips, const LinkParams& params)
    : sim::Component("interchip-link"), num_chips_(num_chips), params_(params) {
  AURORA_CHECK(num_chips >= 1);
  AURORA_CHECK_MSG(params.bytes_per_cycle > 0,
                   "link bandwidth must be positive");
  if (num_chips < 2) return;  // single chip: no wires, all ticks no-ops
  if (params_.topology == ClusterTopology::kRing) {
    // Wire 2i = i -> i+1 (clockwise), wire 2i+1 = i -> i-1.
    for (std::uint32_t i = 0; i < num_chips; ++i) {
      wires_.push_back({i, (i + 1) % num_chips, {}, {}, 0});
      wires_.push_back({i, (i + num_chips - 1) % num_chips, {}, {}, 0});
    }
  } else {
    for (std::uint32_t from = 0; from < num_chips; ++from) {
      for (std::uint32_t to = 0; to < num_chips; ++to) {
        if (to != from) wires_.push_back({from, to, {}, {}, 0});
      }
    }
  }
}

Cycle InterChipLink::serialize_cycles(Bytes bytes) const {
  return link_serialize_cycles(params_, bytes);
}

std::uint32_t InterChipLink::next_hop(std::uint32_t at,
                                      std::uint32_t dst) const {
  return link_next_hop(params_, num_chips_, at, dst);
}

std::uint32_t InterChipLink::route_hops(std::uint32_t src,
                                        std::uint32_t dst) const {
  return link_route_hops(params_, num_chips_, src, dst);
}

std::size_t InterChipLink::wire_index(std::uint32_t from,
                                      std::uint32_t to) const {
  return link_wire_index(params_, num_chips_, from, to);
}

void InterChipLink::send(LinkMessage msg, Cycle now) {
  AURORA_CHECK(msg.src < num_chips_ && msg.dst < num_chips_);
  AURORA_CHECK_MSG(msg.src != msg.dst,
                   "local halo traffic never enters the link");
  msg.sent_at = now;
  msg.enqueued_at = now;
  stats_.messages_sent += 1;
  stats_.bytes_sent += msg.bytes;
  wires_[wire_index(msg.src, next_hop(msg.src, msg.dst))].queue.push_back(
      msg);
  wake();
}

void InterChipLink::arrive(const LinkMessage& msg, std::uint32_t at,
                           Cycle now) {
  stats_.hops += 1;
  stats_.bytes_hopped += msg.bytes;
  if (at == msg.dst) {
    stats_.messages_delivered += 1;
    stats_.bytes_delivered += msg.bytes;
    stats_.latency.add(static_cast<double>(now - msg.sent_at));
    if (on_delivery_) on_delivery_(msg, now);
    return;
  }
  LinkMessage forwarded = msg;
  forwarded.enqueued_at = now;
  wires_[wire_index(at, next_hop(at, msg.dst))].queue.push_back(forwarded);
}

void InterChipLink::tick(Cycle now) {
  // Phase 1: arrivals (fixed wire order, FIFO within a wire). A forwarded
  // message re-enters a queue with enqueued_at = now, so phase 2 below
  // cannot start it until the next cycle.
  for (Wire& w : wires_) {
    while (!w.flying.empty() && w.flying.front().arrives_at <= now) {
      const LinkMessage msg = w.flying.front().msg;
      w.flying.pop_front();
      arrive(msg, w.to, now);
    }
  }
  // Phase 2: transmission starts. Start/stall accounting happens here, at
  // event points, so fast-forward needs no per-cycle bookkeeping.
  for (Wire& w : wires_) {
    if (w.queue.empty() || w.free_at > now) continue;
    const LinkMessage& front = w.queue.front();
    if (front.enqueued_at >= now) continue;  // eligible from enqueued_at + 1
    stats_.stall_cycles += now - (front.enqueued_at + 1);
    const LinkTransmitTiming timing = link_transmit_timing(
        params_, fault_plan_, w.from, w.to, front.bytes, now);
    stats_.serialize_cycles += timing.serialize;
    if (timing.degraded_extra > 0) {
      stats_.degraded_sends += 1;
      stats_.degraded_extra_cycles += timing.degraded_extra;
    }
    w.free_at = now + timing.serialize;
    w.flying.push_back({front, now + timing.serialize + params_.hop_latency});
    w.queue.pop_front();
  }
}

bool InterChipLink::idle() const {
  for (const Wire& w : wires_) {
    if (!w.queue.empty() || !w.flying.empty()) return false;
  }
  return true;
}

Cycle InterChipLink::next_event_cycle(Cycle now) const {
  Cycle next = sim::kNoEvent;
  for (const Wire& w : wires_) {
    if (!w.flying.empty()) {
      next = std::min(next, w.flying.front().arrives_at);
    }
    if (!w.queue.empty()) {
      const Cycle start = std::max(
          {w.free_at, w.queue.front().enqueued_at + 1, now});
      next = std::min(next, start);
    }
    if (next <= now) return now;
  }
  return next;
}

std::uint64_t InterChipLink::messages_in_flight() const {
  std::uint64_t n = 0;
  for (const Wire& w : wires_) n += w.queue.size() + w.flying.size();
  return n;
}

Bytes InterChipLink::bytes_in_flight() const {
  Bytes b = 0;
  for (const Wire& w : wires_) {
    for (const LinkMessage& m : w.queue) b += m.bytes;
    for (const Flying& f : w.flying) b += f.msg.bytes;
  }
  return b;
}

void InterChipLink::verify_invariants(sim::InvariantReport& report) const {
  report.require(
      stats_.messages_sent == stats_.messages_delivered + messages_in_flight(),
      "halo message conservation",
      "sent " + std::to_string(stats_.messages_sent) + " != delivered " +
          std::to_string(stats_.messages_delivered) + " + in flight " +
          std::to_string(messages_in_flight()));
  report.require(
      stats_.bytes_sent == stats_.bytes_delivered + bytes_in_flight(),
      "halo byte conservation",
      "sent " + std::to_string(stats_.bytes_sent) + " != delivered " +
          std::to_string(stats_.bytes_delivered) + " + in flight " +
          std::to_string(bytes_in_flight()));
  report.require(stats_.latency.total() == stats_.messages_delivered,
                 "latency histogram counts deliveries");
  for (const Wire& w : wires_) {
    for (std::size_t i = 1; i < w.flying.size(); ++i) {
      report.require(w.flying[i - 1].arrives_at <= w.flying[i].arrives_at,
                     "wire arrivals ordered");
    }
  }
  if (report.drained()) {
    report.require(messages_in_flight() == 0,
                   "drained link holds no messages");
  }
}

void InterChipLink::register_metrics(MetricsRegistry& registry) {
  const auto scope = registry.scope("cluster.link");
  scope.counter("messages_sent", &stats_.messages_sent);
  scope.counter("messages_delivered", &stats_.messages_delivered);
  scope.counter("bytes_sent", &stats_.bytes_sent);
  scope.counter("bytes_delivered", &stats_.bytes_delivered);
  scope.counter("hops", &stats_.hops);
  scope.counter("serialize_cycles", &stats_.serialize_cycles);
  scope.counter("stall_cycles", &stats_.stall_cycles);
  scope.counter("degraded_sends", &stats_.degraded_sends);
  scope.counter("degraded_extra_cycles", &stats_.degraded_extra_cycles);
  scope.gauge("messages_in_flight", [this] {
    return static_cast<double>(messages_in_flight());
  });
  scope.gauge("bytes_in_flight",
              [this] { return static_cast<double>(bytes_in_flight()); });
  scope.histogram("latency", &stats_.latency);
}

}  // namespace aurora::cluster
