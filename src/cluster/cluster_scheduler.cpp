#include "cluster/cluster_scheduler.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "common/error.hpp"

namespace aurora::cluster {

const char* dispatch_mode_name(DispatchMode m) {
  switch (m) {
    case DispatchMode::kDataParallel:
      return "data-parallel";
    case DispatchMode::kShardParallel:
      return "shard-parallel";
  }
  throw Error("invalid DispatchMode");
}

double ClusterScheduleResult::avg_latency() const {
  if (outcomes.empty()) return 0.0;
  double total = 0.0;
  for (const auto& o : outcomes) total += static_cast<double>(o.latency());
  return total / static_cast<double>(outcomes.size());
}

ClusterScheduler::ClusterScheduler(const core::AuroraConfig& config,
                                   const ClusterParams& params)
    : config_(config), params_(params) {
  AURORA_CHECK(params.num_chips >= 1);
}

void ClusterScheduler::reset() {
  chips_.clear();
  chip_timelines_.clear();
  engine_.reset();
  shard_timeline_ = core::ChipTimeline{};
  service_cache_.clear();
}

void ClusterScheduler::ensure_chips() {
  if (!chips_.empty()) return;
  const std::uint32_t n = params_.num_chips;
  // One accelerator per chip, reused across the requests it serves, so
  // partition/mapping state carries over exactly as on a single chip.
  chips_.reserve(n);
  for (std::uint32_t c = 0; c < n; ++c) {
    chips_.push_back(std::make_unique<core::AuroraAccelerator>(config_));
    if (tracer_ != nullptr) chips_.back()->set_tracer(tracer_);
  }
  chip_timelines_.assign(n, core::ChipTimeline{});
}

void ClusterScheduler::ensure_engine() {
  if (engine_ != nullptr) return;
  engine_ = std::make_unique<ClusterEngine>(config_, params_);
  if (tracer_ != nullptr) engine_->set_tracer(tracer_);
}

const ClusterScheduler::CachedService* ClusterScheduler::cache_lookup(
    const std::string& key) const {
  if (tracer_ != nullptr) return nullptr;
  const auto it = service_cache_.find(key);
  return it == service_cache_.end() ? nullptr : &it->second;
}

Cycle ClusterScheduler::next_free(DispatchMode mode) const {
  if (mode == DispatchMode::kShardParallel) {
    // Dispatch-time fallback covers gang chips that are down when the next
    // request probes its start, so the shard timeline needs no adjustment.
    return shard_timeline_.busy_until;
  }
  if (chips_.empty()) return 0;
  const fault::FaultPlan* plan = active_fault_plan();
  Cycle free = fault::kNever;
  for (std::size_t c = 0; c < chip_timelines_.size(); ++c) {
    Cycle f = chip_timelines_[c].busy_until;
    if (plan != nullptr) {
      f = plan->chip_up_after(static_cast<std::uint32_t>(c), f);
      if (f == fault::kNever) continue;
    }
    free = std::min(free, f);
  }
  if (free == fault::kNever) {
    // Every chip is permanently down. Keep the clock finite — dispatches
    // will report no_capacity and the queue drains as permanent failures.
    free = chip_timelines_[0].busy_until;
    for (const core::ChipTimeline& t : chip_timelines_) {
      free = std::min(free, t.busy_until);
    }
  }
  return free;
}

ClusterOutcome ClusterScheduler::serve(const graph::Dataset& dataset,
                                       core::ScheduledRequest request,
                                       DispatchMode mode, Cycle not_before,
                                       bool share_configuration,
                                       std::optional<std::uint32_t> pin_chip) {
  return mode == DispatchMode::kDataParallel
             ? serve_data_parallel(dataset, request, not_before,
                                   share_configuration, pin_chip)
             : serve_shard_parallel(dataset, request, not_before,
                                    share_configuration);
}

ClusterOutcome ClusterScheduler::serve_data_parallel(
    const graph::Dataset& dataset, core::ScheduledRequest& request,
    Cycle not_before, bool share_configuration,
    std::optional<std::uint32_t> pin_chip) {
  ensure_chips();
  const fault::FaultPlan* plan = active_fault_plan();
  // Least-loaded dispatch, ties to the lowest chip index; a pinned chip
  // (batch follower) overrides. Under a fault plan the load is
  // fault-adjusted: a chip's cost is the cycle it is both free and up, and
  // permanently dead chips are never selected.
  std::uint32_t chip = 0;
  bool have_chip = false;
  if (pin_chip.has_value()) {
    AURORA_CHECK(*pin_chip < chips_.size());
    chip = *pin_chip;
    have_chip = true;
    if (plan != nullptr &&
        plan->chip_up_after(chip, std::max(chip_timelines_[chip].busy_until,
                                           not_before)) == fault::kNever) {
      // The batch head's chip died for good: break the pin, and the
      // configuration share with it — the replacement chip never applied
      // the head's configuration.
      have_chip = false;
      share_configuration = false;
    }
  }
  if (!have_chip && plan == nullptr) {
    for (std::uint32_t c = 1; c < chips_.size(); ++c) {
      if (chip_timelines_[c].busy_until < chip_timelines_[chip].busy_until) {
        chip = c;
      }
    }
    have_chip = true;
  }
  if (!have_chip) {
    Cycle best = fault::kNever;
    for (std::uint32_t c = 0; c < chips_.size(); ++c) {
      const Cycle eff = plan->chip_up_after(
          c, std::max(chip_timelines_[c].busy_until, not_before));
      if (eff < best) {
        best = eff;
        chip = c;
        have_chip = true;
      }
    }
    if (!have_chip) {
      // Every chip is permanently down: nothing can serve this request, now
      // or ever. Report the capacity loss without simulating.
      ClusterOutcome outcome;
      outcome.label = std::move(request.label);
      outcome.start_cycle = not_before;
      outcome.finish_cycle = not_before;
      outcome.failed = true;
      outcome.failed_at = not_before;
      outcome.no_capacity = true;
      return outcome;
    }
  }

  const std::string key =
      "data:" + request.dataset_key + ":" + core::job_signature(request.job);
  core::RunMetrics metrics;
  if (const CachedService* cached = cache_lookup(key)) {
    metrics = cached->metrics;
  } else {
    metrics = chips_[chip]->run(dataset, request.job);
    if (tracer_ == nullptr) {
      service_cache_[key] = {metrics, core::Scheduler::lead_dram_cycles(metrics),
                             core::Scheduler::tail_compute_cycles(metrics)};
    }
  }

  Cycle adjusted_not_before = not_before;
  if (plan != nullptr) {
    // Probe the placement on a scratch copy of the timeline: if the chip is
    // down at the tentative start, push the start to the repair cycle and
    // place for real. A window's end never falls inside another window, so
    // one push suffices.
    core::ChipTimeline probe_timeline = chip_timelines_[chip];
    const core::RequestOutcome probe = core::Scheduler::place(
        probe_timeline, "", metrics, not_before, share_configuration);
    const Cycle up = plan->chip_up_after(chip, probe.start_cycle);
    AURORA_CHECK(up != fault::kNever);
    adjusted_not_before = std::max(not_before, up);
  }

  const core::RequestOutcome placed = core::Scheduler::place(
      chip_timelines_[chip], std::move(request.label), std::move(metrics),
      adjusted_not_before, share_configuration);

  ClusterOutcome outcome;
  outcome.label = placed.label;
  outcome.metrics = placed.metrics;
  outcome.chip = chip;
  outcome.start_cycle = placed.start_cycle;
  outcome.finish_cycle = placed.finish_cycle;
  outcome.overlap_hidden = placed.overlap_hidden;
  outcome.reconfig_saved = placed.reconfig_saved;
  if (plan != nullptr) {
    const Cycle down = plan->chip_down_in(chip, outcome.start_cycle,
                                          outcome.finish_cycle);
    if (down != fault::kNever) {
      // The chip fail-stopped mid-request: the attempt's work is lost, the
      // timeline collapses to the failure instant, and no compute tail is
      // left for a successor to hide its DRAM streaming under.
      outcome.failed = true;
      outcome.failed_at = down;
      outcome.finish_cycle = down;
      chip_timelines_[chip].busy_until = down;
      chip_timelines_[chip].prev_compute_tail = 0;
    }
  }
  return outcome;
}

ClusterOutcome ClusterScheduler::serve_shard_parallel(
    const graph::Dataset& dataset, core::ScheduledRequest& request,
    Cycle not_before, bool share_configuration) {
  ensure_engine();
  const fault::FaultPlan* plan = active_fault_plan();

  const std::string key =
      "shard:" + request.dataset_key + ":" + core::job_signature(request.job);
  CachedService service;
  if (const CachedService* cached = cache_lookup(key)) {
    service = *cached;
  } else {
    const ClusterRunMetrics cluster = engine_->run(dataset, request.job);
    for (const ChipRun& chip : cluster.chips) service.metrics += chip.metrics;
    service.metrics.total_cycles = cluster.total_cycles;
    service.metrics.counters.merge(cluster.counters);
    // Every chip must be free before the next request's barriers can line
    // up, so the request-level overlap is the weakest chip-level one.
    service.lead = cluster.chips.empty() ? 0 : sim::kNoEvent;
    service.tail = cluster.chips.empty() ? 0 : sim::kNoEvent;
    service.min_chip_reconfig = cluster.chips.empty() ? 0 : sim::kNoEvent;
    for (const ChipRun& chip : cluster.chips) {
      service.lead = std::min(service.lead,
                              core::Scheduler::lead_dram_cycles(chip.metrics));
      service.tail = std::min(
          service.tail, core::Scheduler::tail_compute_cycles(chip.metrics));
      service.min_chip_reconfig =
          std::min(service.min_chip_reconfig, chip.metrics.reconfig_cycles);
    }
    if (tracer_ == nullptr) service_cache_[key] = service;
  }

  const Cycle overlap =
      std::min(shard_timeline_.prev_compute_tail, service.lead);
  const Cycle earliest = shard_timeline_.busy_until >= overlap
                             ? shard_timeline_.busy_until - overlap
                             : 0;
  const Cycle start = std::max(not_before, earliest);
  if (plan != nullptr) {
    for (std::uint32_t c = 0; c < params_.num_chips; ++c) {
      if (plan->chip_up_after(c, start) != start) {
        // A gang chip is down (possibly forever) at the cycle the gang
        // would start, and a shard-parallel request needs every chip:
        // fail over to a data-parallel placement on a surviving chip. The
        // configuration share does not carry — the chip pool never applied
        // the gang's configuration.
        ClusterOutcome outcome = serve_data_parallel(
            dataset, request, not_before, /*share_configuration=*/false,
            std::nullopt);
        outcome.shard_fallback = true;
        return outcome;
      }
    }
  }

  ClusterOutcome outcome;
  outcome.label = std::move(request.label);
  outcome.metrics = std::move(service.metrics);
  if (share_configuration) {
    // Each chip skips its own reconfiguration; the cluster makespan shrinks
    // conservatively by the smallest per-chip skip (the critical chip is
    // unknown without re-simulating).
    const Cycle saved =
        std::min(service.min_chip_reconfig, outcome.metrics.total_cycles);
    outcome.reconfig_saved = saved;
    outcome.metrics.total_cycles -= saved;
    outcome.metrics.reconfig_cycles -= saved;
  }

  outcome.overlap_hidden = overlap;
  outcome.start_cycle = start;
  outcome.finish_cycle = outcome.start_cycle + outcome.metrics.total_cycles;
  shard_timeline_.busy_until = outcome.finish_cycle;
  shard_timeline_.prev_compute_tail = service.tail;
  if (plan != nullptr) {
    Cycle down = fault::kNever;
    for (std::uint32_t c = 0; c < params_.num_chips; ++c) {
      down = std::min(down, plan->chip_down_in(c, outcome.start_cycle,
                                               outcome.finish_cycle));
    }
    if (down != fault::kNever) {
      // Any gang member failing kills the whole shard-parallel attempt.
      outcome.failed = true;
      outcome.failed_at = down;
      outcome.finish_cycle = down;
      shard_timeline_.busy_until = down;
      shard_timeline_.prev_compute_tail = 0;
    }
  }
  return outcome;
}

ClusterScheduleResult ClusterScheduler::run(
    const graph::Dataset& dataset, std::vector<core::ScheduledRequest> queue,
    DispatchMode mode) {
  AURORA_CHECK(!queue.empty());
  reset();
  ClusterScheduleResult result;
  result.mode = mode;
  for (auto& req : queue) {
    ClusterOutcome outcome = serve(dataset, std::move(req), mode);
    result.overlap_savings += outcome.overlap_hidden;
    result.outcomes.push_back(std::move(outcome));
  }
  if (mode == DispatchMode::kDataParallel) {
    result.chip_timeline.reserve(chip_timelines_.size());
    for (const core::ChipTimeline& t : chip_timelines_) {
      result.chip_timeline.push_back(t.busy_until);
      result.makespan = std::max(result.makespan, t.busy_until);
    }
  } else {
    result.makespan = shard_timeline_.busy_until;
  }
  return result;
}

}  // namespace aurora::cluster
