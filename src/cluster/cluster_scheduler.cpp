#include "cluster/cluster_scheduler.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "common/error.hpp"

namespace aurora::cluster {

const char* dispatch_mode_name(DispatchMode m) {
  switch (m) {
    case DispatchMode::kDataParallel:
      return "data-parallel";
    case DispatchMode::kShardParallel:
      return "shard-parallel";
  }
  throw Error("invalid DispatchMode");
}

double ClusterScheduleResult::avg_latency() const {
  if (outcomes.empty()) return 0.0;
  double total = 0.0;
  for (const auto& o : outcomes) total += static_cast<double>(o.latency());
  return total / static_cast<double>(outcomes.size());
}

ClusterScheduler::ClusterScheduler(const core::AuroraConfig& config,
                                   const ClusterParams& params)
    : config_(config), params_(params) {
  AURORA_CHECK(params.num_chips >= 1);
}

void ClusterScheduler::reset() {
  chips_.clear();
  chip_timelines_.clear();
  engine_.reset();
  shard_timeline_ = core::ChipTimeline{};
  service_cache_.clear();
}

void ClusterScheduler::ensure_chips() {
  if (!chips_.empty()) return;
  const std::uint32_t n = params_.num_chips;
  // One accelerator per chip, reused across the requests it serves, so
  // partition/mapping state carries over exactly as on a single chip.
  chips_.reserve(n);
  for (std::uint32_t c = 0; c < n; ++c) {
    chips_.push_back(std::make_unique<core::AuroraAccelerator>(config_));
    if (tracer_ != nullptr) chips_.back()->set_tracer(tracer_);
  }
  chip_timelines_.assign(n, core::ChipTimeline{});
}

void ClusterScheduler::ensure_engine() {
  if (engine_ != nullptr) return;
  engine_ = std::make_unique<ClusterEngine>(config_, params_);
  if (tracer_ != nullptr) engine_->set_tracer(tracer_);
}

const ClusterScheduler::CachedService* ClusterScheduler::cache_lookup(
    const std::string& key) const {
  if (tracer_ != nullptr) return nullptr;
  const auto it = service_cache_.find(key);
  return it == service_cache_.end() ? nullptr : &it->second;
}

Cycle ClusterScheduler::next_free(DispatchMode mode) const {
  if (mode == DispatchMode::kShardParallel) {
    return shard_timeline_.busy_until;
  }
  if (chips_.empty()) return 0;
  Cycle free = chip_timelines_[0].busy_until;
  for (const core::ChipTimeline& t : chip_timelines_) {
    free = std::min(free, t.busy_until);
  }
  return free;
}

ClusterOutcome ClusterScheduler::serve(const graph::Dataset& dataset,
                                       core::ScheduledRequest request,
                                       DispatchMode mode, Cycle not_before,
                                       bool share_configuration,
                                       std::optional<std::uint32_t> pin_chip) {
  return mode == DispatchMode::kDataParallel
             ? serve_data_parallel(dataset, request, not_before,
                                   share_configuration, pin_chip)
             : serve_shard_parallel(dataset, request, not_before,
                                    share_configuration);
}

ClusterOutcome ClusterScheduler::serve_data_parallel(
    const graph::Dataset& dataset, core::ScheduledRequest& request,
    Cycle not_before, bool share_configuration,
    std::optional<std::uint32_t> pin_chip) {
  ensure_chips();
  // Least-loaded dispatch, ties to the lowest chip index; a pinned chip
  // (batch follower) overrides.
  std::uint32_t chip = 0;
  if (pin_chip.has_value()) {
    AURORA_CHECK(*pin_chip < chips_.size());
    chip = *pin_chip;
  } else {
    for (std::uint32_t c = 1; c < chips_.size(); ++c) {
      if (chip_timelines_[c].busy_until < chip_timelines_[chip].busy_until) {
        chip = c;
      }
    }
  }

  const std::string key = core::job_signature(request.job);
  core::RunMetrics metrics;
  if (const CachedService* cached = cache_lookup(key)) {
    metrics = cached->metrics;
  } else {
    metrics = chips_[chip]->run(dataset, request.job);
    if (tracer_ == nullptr) {
      service_cache_[key] = {metrics, core::Scheduler::lead_dram_cycles(metrics),
                             core::Scheduler::tail_compute_cycles(metrics)};
    }
  }

  const core::RequestOutcome placed = core::Scheduler::place(
      chip_timelines_[chip], std::move(request.label), std::move(metrics),
      not_before, share_configuration);

  ClusterOutcome outcome;
  outcome.label = placed.label;
  outcome.metrics = placed.metrics;
  outcome.chip = chip;
  outcome.start_cycle = placed.start_cycle;
  outcome.finish_cycle = placed.finish_cycle;
  outcome.overlap_hidden = placed.overlap_hidden;
  outcome.reconfig_saved = placed.reconfig_saved;
  return outcome;
}

ClusterOutcome ClusterScheduler::serve_shard_parallel(
    const graph::Dataset& dataset, core::ScheduledRequest& request,
    Cycle not_before, bool share_configuration) {
  ensure_engine();

  const std::string key = core::job_signature(request.job);
  CachedService service;
  if (const CachedService* cached = cache_lookup(key)) {
    service = *cached;
  } else {
    const ClusterRunMetrics cluster = engine_->run(dataset, request.job);
    for (const ChipRun& chip : cluster.chips) service.metrics += chip.metrics;
    service.metrics.total_cycles = cluster.total_cycles;
    service.metrics.counters.merge(cluster.counters);
    // Every chip must be free before the next request's barriers can line
    // up, so the request-level overlap is the weakest chip-level one.
    service.lead = cluster.chips.empty() ? 0 : sim::kNoEvent;
    service.tail = cluster.chips.empty() ? 0 : sim::kNoEvent;
    service.min_chip_reconfig = cluster.chips.empty() ? 0 : sim::kNoEvent;
    for (const ChipRun& chip : cluster.chips) {
      service.lead = std::min(service.lead,
                              core::Scheduler::lead_dram_cycles(chip.metrics));
      service.tail = std::min(
          service.tail, core::Scheduler::tail_compute_cycles(chip.metrics));
      service.min_chip_reconfig =
          std::min(service.min_chip_reconfig, chip.metrics.reconfig_cycles);
    }
    if (tracer_ == nullptr) service_cache_[key] = service;
  }

  ClusterOutcome outcome;
  outcome.label = std::move(request.label);
  outcome.metrics = std::move(service.metrics);
  if (share_configuration) {
    // Each chip skips its own reconfiguration; the cluster makespan shrinks
    // conservatively by the smallest per-chip skip (the critical chip is
    // unknown without re-simulating).
    const Cycle saved =
        std::min(service.min_chip_reconfig, outcome.metrics.total_cycles);
    outcome.reconfig_saved = saved;
    outcome.metrics.total_cycles -= saved;
    outcome.metrics.reconfig_cycles -= saved;
  }

  outcome.overlap_hidden =
      std::min(shard_timeline_.prev_compute_tail, service.lead);
  const Cycle earliest = shard_timeline_.busy_until >= outcome.overlap_hidden
                             ? shard_timeline_.busy_until -
                                   outcome.overlap_hidden
                             : 0;
  outcome.start_cycle = std::max(not_before, earliest);
  outcome.finish_cycle = outcome.start_cycle + outcome.metrics.total_cycles;
  shard_timeline_.busy_until = outcome.finish_cycle;
  shard_timeline_.prev_compute_tail = service.tail;
  return outcome;
}

ClusterScheduleResult ClusterScheduler::run(
    const graph::Dataset& dataset, std::vector<core::ScheduledRequest> queue,
    DispatchMode mode) {
  AURORA_CHECK(!queue.empty());
  reset();
  ClusterScheduleResult result;
  result.mode = mode;
  for (auto& req : queue) {
    ClusterOutcome outcome = serve(dataset, std::move(req), mode);
    result.overlap_savings += outcome.overlap_hidden;
    result.outcomes.push_back(std::move(outcome));
  }
  if (mode == DispatchMode::kDataParallel) {
    result.chip_timeline.reserve(chip_timelines_.size());
    for (const core::ChipTimeline& t : chip_timelines_) {
      result.chip_timeline.push_back(t.busy_until);
      result.makespan = std::max(result.makespan, t.busy_until);
    }
  } else {
    result.makespan = shard_timeline_.busy_until;
  }
  return result;
}

}  // namespace aurora::cluster
