#include "cluster/cluster_scheduler.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "common/error.hpp"

namespace aurora::cluster {

const char* dispatch_mode_name(DispatchMode m) {
  switch (m) {
    case DispatchMode::kDataParallel:
      return "data-parallel";
    case DispatchMode::kShardParallel:
      return "shard-parallel";
  }
  throw Error("invalid DispatchMode");
}

double ClusterScheduleResult::avg_latency() const {
  if (outcomes.empty()) return 0.0;
  double total = 0.0;
  for (const auto& o : outcomes) total += static_cast<double>(o.latency());
  return total / static_cast<double>(outcomes.size());
}

ClusterScheduler::ClusterScheduler(const core::AuroraConfig& config,
                                   const ClusterParams& params)
    : config_(config), params_(params) {
  AURORA_CHECK(params.num_chips >= 1);
}

ClusterScheduleResult ClusterScheduler::run(
    const graph::Dataset& dataset, std::vector<core::ScheduledRequest> queue,
    DispatchMode mode) {
  AURORA_CHECK(!queue.empty());
  return mode == DispatchMode::kDataParallel
             ? run_data_parallel(dataset, queue)
             : run_shard_parallel(dataset, queue);
}

ClusterScheduleResult ClusterScheduler::run_data_parallel(
    const graph::Dataset& dataset,
    std::vector<core::ScheduledRequest>& queue) {
  ClusterScheduleResult result;
  result.mode = DispatchMode::kDataParallel;
  const std::uint32_t n = params_.num_chips;

  // One accelerator per chip, reused across the requests it serves, so
  // partition/mapping state carries over exactly as on a single chip.
  std::vector<std::unique_ptr<core::AuroraAccelerator>> chips;
  chips.reserve(n);
  for (std::uint32_t c = 0; c < n; ++c) {
    chips.push_back(std::make_unique<core::AuroraAccelerator>(config_));
    if (tracer_ != nullptr) chips.back()->set_tracer(tracer_);
  }
  result.chip_timeline.assign(n, 0);
  std::vector<Cycle> prev_tail(n, 0);

  for (auto& req : queue) {
    // Least-loaded dispatch, ties to the lowest chip index.
    std::uint32_t chip = 0;
    for (std::uint32_t c = 1; c < n; ++c) {
      if (result.chip_timeline[c] < result.chip_timeline[chip]) chip = c;
    }

    ClusterOutcome outcome;
    outcome.label = std::move(req.label);
    outcome.chip = chip;
    outcome.metrics = chips[chip]->run(dataset, req.job);

    const Cycle overlap =
        core::Scheduler::overlap_cycles(prev_tail[chip], outcome.metrics);
    result.overlap_savings += overlap;
    const Cycle timeline = result.chip_timeline[chip];
    outcome.start_cycle = timeline >= overlap ? timeline - overlap : 0;
    outcome.finish_cycle = outcome.start_cycle + outcome.metrics.total_cycles;
    result.chip_timeline[chip] = outcome.finish_cycle;
    prev_tail[chip] = core::Scheduler::tail_compute_cycles(outcome.metrics);
    result.outcomes.push_back(std::move(outcome));
  }
  for (const Cycle t : result.chip_timeline) {
    result.makespan = std::max(result.makespan, t);
  }
  return result;
}

ClusterScheduleResult ClusterScheduler::run_shard_parallel(
    const graph::Dataset& dataset,
    std::vector<core::ScheduledRequest>& queue) {
  ClusterScheduleResult result;
  result.mode = DispatchMode::kShardParallel;
  ClusterEngine engine(config_, params_);
  if (tracer_ != nullptr) engine.set_tracer(tracer_);

  Cycle timeline = 0;
  Cycle prev_tail = 0;
  for (auto& req : queue) {
    const ClusterRunMetrics cluster = engine.run(dataset, req.job);

    ClusterOutcome outcome;
    outcome.label = std::move(req.label);
    for (const ChipRun& chip : cluster.chips) outcome.metrics += chip.metrics;
    outcome.metrics.total_cycles = cluster.total_cycles;
    outcome.metrics.counters.merge(cluster.counters);

    // Every chip must be free before the next request's barriers can line
    // up, so the request-level overlap is the weakest chip-level one.
    Cycle lead = cluster.chips.empty() ? 0 : sim::kNoEvent;
    Cycle tail = cluster.chips.empty() ? 0 : sim::kNoEvent;
    for (const ChipRun& chip : cluster.chips) {
      lead = std::min(lead, core::Scheduler::lead_dram_cycles(chip.metrics));
      tail = std::min(tail,
                      core::Scheduler::tail_compute_cycles(chip.metrics));
    }
    const Cycle overlap = std::min(prev_tail, lead);
    result.overlap_savings += overlap;
    outcome.start_cycle = timeline >= overlap ? timeline - overlap : 0;
    outcome.finish_cycle = outcome.start_cycle + cluster.total_cycles;
    timeline = outcome.finish_cycle;
    prev_tail = tail;
    result.outcomes.push_back(std::move(outcome));
  }
  result.makespan = timeline;
  return result;
}

}  // namespace aurora::cluster
