#include "cluster/parallel_link.hpp"

#include <algorithm>
#include <string>
#include <tuple>
#include <utility>

#include "common/error.hpp"
#include "common/metrics_registry.hpp"
#include "sim/invariants.hpp"

namespace aurora::cluster {
namespace {

[[nodiscard]] bool arrival_before(const LinkEndpoint::PendingArrival& a,
                                  const LinkEndpoint::PendingArrival& b) {
  return std::tie(a.arrives_at, a.wire, a.seq) <
         std::tie(b.arrives_at, b.wire, b.seq);
}

}  // namespace

LinkEndpoint::LinkEndpoint(LinkFabric* fabric, std::uint32_t chip)
    : sim::Component("link-endpoint" + std::to_string(chip)),
      fabric_(fabric),
      chip_(chip) {
  // Own the wires the serial link models as from == chip, in global index
  // order (ring: 2c then 2c+1; fully-connected: row c is contiguous).
  const std::uint32_t n = fabric->num_chips();
  const LinkParams& p = fabric->params();
  if (n < 2) return;
  std::vector<std::uint32_t> targets;
  if (p.topology == ClusterTopology::kRing) {
    targets = {(chip + 1) % n, (chip + n - 1) % n};
  } else {
    for (std::uint32_t to = 0; to < n; ++to) {
      if (to != chip) targets.push_back(to);
    }
  }
  for (const std::uint32_t to : targets) {
    OutWire w;
    w.to = to;
    w.global_index = link_wire_index(p, n, chip, to);
    wires_.push_back(std::move(w));
  }
  std::sort(wires_.begin(), wires_.end(),
            [](const OutWire& a, const OutWire& b) {
              return a.global_index < b.global_index;
            });
}

void LinkEndpoint::enqueue_toward(const LinkMessage& msg) {
  const std::uint32_t hop = link_next_hop(fabric_->params(),
                                          fabric_->num_chips(), chip_, msg.dst);
  for (OutWire& w : wires_) {
    if (w.to == hop) {
      w.queue.push_back(msg);
      return;
    }
  }
  throw Error("no wire from chip " + std::to_string(chip_) + " toward " +
              std::to_string(hop));
}

void LinkEndpoint::send(LinkMessage msg, Cycle now) {
  AURORA_CHECK(msg.src == chip_ && msg.dst < fabric_->num_chips());
  AURORA_CHECK_MSG(msg.src != msg.dst,
                   "local halo traffic never enters the link");
  msg.sent_at = now;
  msg.enqueued_at = now;
  stats_.messages_sent += 1;
  stats_.bytes_sent += msg.bytes;
  enqueue_toward(msg);
  wake();
}

void LinkEndpoint::tick(Cycle now) {
  // Phase 1: due arrivals, already sorted into serial phase-1 order
  // (arrival cycle, then global wire index, then per-wire FIFO). A
  // forwarded message re-enters a local queue with enqueued_at = now, so
  // phase 2 below cannot start it until the next cycle — the same
  // store-and-forward gap as the serial link.
  while (pending_next_ < pending_.size() &&
         pending_[pending_next_].arrives_at <= now) {
    const PendingArrival a = pending_[pending_next_++];
    stats_.hops += 1;
    stats_.bytes_hopped += a.msg.bytes;
    if (a.msg.dst == chip_) {
      stats_.messages_delivered += 1;
      stats_.bytes_delivered += a.msg.bytes;
      stats_.latency.add(static_cast<double>(now - a.msg.sent_at));
      if (on_delivery_) on_delivery_(a.msg, now, a.wire);
    } else {
      LinkMessage forwarded = a.msg;
      forwarded.enqueued_at = now;
      enqueue_toward(forwarded);
    }
  }
  if (pending_next_ == pending_.size()) {
    pending_.clear();
    pending_next_ = 0;
  }
  // Phase 2: transmission starts on this chip's wires, in global index
  // order. Identical start/stall/serialise accounting to the serial link;
  // the completed hop is posted to the target endpoint instead of a local
  // flying queue.
  for (OutWire& w : wires_) {
    if (w.queue.empty() || w.free_at > now) continue;
    const LinkMessage& front = w.queue.front();
    if (front.enqueued_at >= now) continue;  // eligible from enqueued_at + 1
    stats_.stall_cycles += now - (front.enqueued_at + 1);
    const LinkTransmitTiming timing =
        link_transmit_timing(fabric_->params(), fabric_->fault_plan(), chip_,
                             w.to, front.bytes, now);
    stats_.serialize_cycles += timing.serialize;
    if (timing.degraded_extra > 0) {
      stats_.degraded_sends += 1;
      stats_.degraded_extra_cycles += timing.degraded_extra;
    }
    w.free_at = now + timing.serialize;
    PendingArrival arrival;
    arrival.msg = front;
    arrival.arrives_at = now + timing.serialize + fabric_->params().hop_latency;
    arrival.wire = w.global_index;
    arrival.seq = w.next_seq++;
    fabric_->post(w.to, std::move(arrival));
    w.queue.pop_front();
  }
}

bool LinkEndpoint::idle() const {
  if (pending_next_ < pending_.size()) return false;
  for (const OutWire& w : wires_) {
    if (!w.queue.empty()) return false;
  }
  return true;
}

Cycle LinkEndpoint::next_event_cycle(Cycle now) const {
  Cycle next = sim::kNoEvent;
  if (pending_next_ < pending_.size()) {
    next = pending_[pending_next_].arrives_at;
  }
  for (const OutWire& w : wires_) {
    if (!w.queue.empty()) {
      const Cycle start =
          std::max({w.free_at, w.queue.front().enqueued_at + 1, now});
      next = std::min(next, start);
    }
    if (next <= now) return now;
  }
  return next;
}

std::uint64_t LinkEndpoint::messages_held() const {
  std::uint64_t n = pending_.size() - pending_next_;
  for (const OutWire& w : wires_) n += w.queue.size();
  return n;
}

Bytes LinkEndpoint::bytes_held() const {
  Bytes b = 0;
  for (std::size_t i = pending_next_; i < pending_.size(); ++i) {
    b += pending_[i].msg.bytes;
  }
  for (const OutWire& w : wires_) {
    for (const LinkMessage& m : w.queue) b += m.bytes;
  }
  return b;
}

void LinkEndpoint::verify_invariants(sim::InvariantReport& report) const {
  for (std::size_t i = pending_next_ + 1; i < pending_.size(); ++i) {
    report.require(arrival_before(pending_[i - 1], pending_[i]),
                   "pending arrivals strictly ordered",
                   "index " + std::to_string(i) + " at chip " +
                       std::to_string(chip_));
  }
  if (report.drained()) {
    report.require(messages_held() == 0,
                   "drained endpoint holds no messages",
                   std::to_string(messages_held()) + " held at chip " +
                       std::to_string(chip_));
  }
}

LinkFabric::LinkFabric(std::uint32_t num_chips, const LinkParams& params)
    : num_chips_(num_chips), params_(params) {
  AURORA_CHECK(num_chips >= 1);
  AURORA_CHECK_MSG(params.bytes_per_cycle > 0,
                   "link bandwidth must be positive");
  endpoints_.reserve(num_chips);
  for (std::uint32_t c = 0; c < num_chips; ++c) {
    endpoints_.emplace_back(new LinkEndpoint(this, c));
  }
}

void LinkFabric::post(std::uint32_t target,
                      LinkEndpoint::PendingArrival arrival) {
  LinkEndpoint& ep = *endpoints_[target];
  const std::lock_guard<std::mutex> lock(ep.inbox_mutex_);
  ep.inbox_.push_back(std::move(arrival));
}

void LinkFabric::flush() {
  for (auto& ep : endpoints_) {
    std::vector<LinkEndpoint::PendingArrival> incoming;
    {
      const std::lock_guard<std::mutex> lock(ep->inbox_mutex_);
      incoming.swap(ep->inbox_);
    }
    if (incoming.empty()) continue;
    // Compact the consumed prefix, append, and restore the total order.
    ep->pending_.erase(ep->pending_.begin(),
                       ep->pending_.begin() +
                           static_cast<std::ptrdiff_t>(ep->pending_next_));
    ep->pending_next_ = 0;
    ep->pending_.insert(ep->pending_.end(),
                        std::make_move_iterator(incoming.begin()),
                        std::make_move_iterator(incoming.end()));
    std::sort(ep->pending_.begin(), ep->pending_.end(), arrival_before);
    ep->wake();
  }
}

LinkStats LinkFabric::stats() const {
  LinkStats merged;
  for (const auto& ep : endpoints_) {
    const LinkStats& s = ep->stats();
    merged.messages_sent += s.messages_sent;
    merged.messages_delivered += s.messages_delivered;
    merged.bytes_sent += s.bytes_sent;
    merged.bytes_delivered += s.bytes_delivered;
    merged.hops += s.hops;
    merged.bytes_hopped += s.bytes_hopped;
    merged.serialize_cycles += s.serialize_cycles;
    merged.stall_cycles += s.stall_cycles;
    merged.degraded_sends += s.degraded_sends;
    merged.degraded_extra_cycles += s.degraded_extra_cycles;
    merged.latency.merge(s.latency);
  }
  return merged;
}

std::uint64_t LinkFabric::messages_in_flight() const {
  std::uint64_t n = 0;
  for (const auto& ep : endpoints_) n += ep->messages_held();
  return n;
}

Bytes LinkFabric::bytes_in_flight() const {
  Bytes b = 0;
  for (const auto& ep : endpoints_) b += ep->bytes_held();
  return b;
}

void LinkFabric::verify_drained(sim::InvariantReport& report) const {
  const LinkStats merged = stats();
  report.require(
      merged.messages_sent == merged.messages_delivered + messages_in_flight(),
      "halo message conservation",
      "sent " + std::to_string(merged.messages_sent) + " != delivered " +
          std::to_string(merged.messages_delivered) + " + in flight " +
          std::to_string(messages_in_flight()));
  report.require(
      merged.bytes_sent == merged.bytes_delivered + bytes_in_flight(),
      "halo byte conservation");
  report.require(merged.latency.total() == merged.messages_delivered,
                 "latency histogram counts deliveries");
  if (report.drained()) {
    report.require(messages_in_flight() == 0,
                   "drained fabric holds no messages");
  }
}

void LinkFabric::register_metrics(MetricsRegistry& registry) {
  merged_ = stats();
  const auto scope = registry.scope("cluster.link");
  scope.counter("messages_sent", &merged_.messages_sent);
  scope.counter("messages_delivered", &merged_.messages_delivered);
  scope.counter("bytes_sent", &merged_.bytes_sent);
  scope.counter("bytes_delivered", &merged_.bytes_delivered);
  scope.counter("hops", &merged_.hops);
  scope.counter("serialize_cycles", &merged_.serialize_cycles);
  scope.counter("stall_cycles", &merged_.stall_cycles);
  scope.counter("degraded_sends", &merged_.degraded_sends);
  scope.counter("degraded_extra_cycles", &merged_.degraded_extra_cycles);
  scope.gauge("messages_in_flight", [this] {
    return static_cast<double>(messages_in_flight());
  });
  scope.gauge("bytes_in_flight",
              [this] { return static_cast<double>(bytes_in_flight()); });
  scope.histogram("latency", &merged_.latency);
}

}  // namespace aurora::cluster
