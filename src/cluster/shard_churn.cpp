#include "cluster/shard_churn.hpp"

#include "common/error.hpp"

namespace aurora::cluster {

ShardChurnTracker::ShardChurnTracker(const ShardPlan& plan) {
  set_baseline(plan);
}

void ShardChurnTracker::set_baseline(const ShardPlan& plan) {
  AURORA_CHECK_MSG(!plan.shards.empty(), "tracker needs a built shard plan");
  num_chips_ = plan.num_chips;
  planned_cut_ = plan.cut_edges;
  cut_edges_ = plan.cut_edges;
  mutations_ = 0;

  VertexId n = 0;
  for (const auto& shard : plan.shards) {
    for (VertexId local = 0; local < shard.num_owned; ++local) {
      n = std::max<VertexId>(n, shard.global_ids[local] + 1);
    }
  }
  planned_owner_.assign(n, 0);
  for (const auto& shard : plan.shards) {
    for (VertexId local = 0; local < shard.num_owned; ++local) {
      planned_owner_[shard.global_ids[local]] = shard.chip;
    }
  }

  // Seed the ghost refcounts from the plan's own cut: every owned->remote
  // edge contributes one reference to (owner chip, remote vertex).
  ghost_refs_.clear();
  for (const auto& shard : plan.shards) {
    const auto& g = shard.dataset.graph;
    for (VertexId local = 0; local < shard.num_owned; ++local) {
      for (const VertexId ul : g.neighbors(local)) {
        if (ul >= shard.num_owned) {
          ++ghost_refs_[ghost_key(shard.chip, shard.global_ids[ul])];
        }
      }
    }
  }
}

std::uint32_t ShardChurnTracker::owner(VertexId v) const {
  if (v < planned_owner_.size()) return planned_owner_[v];
  return v % num_chips_;
}

void ShardChurnTracker::note_edge_added(VertexId u, VertexId v) {
  ++mutations_;
  const auto cu = owner(u);
  const auto cv = owner(v);
  if (cu == cv) return;
  ++cut_edges_;
  ++ghost_refs_[ghost_key(cu, v)];
}

void ShardChurnTracker::note_edge_removed(VertexId u, VertexId v) {
  ++mutations_;
  const auto cu = owner(u);
  const auto cv = owner(v);
  if (cu == cv) return;
  AURORA_CHECK_MSG(cut_edges_ > 0, "cut-edge underflow in churn tracker");
  --cut_edges_;
  const auto it = ghost_refs_.find(ghost_key(cu, v));
  AURORA_CHECK_MSG(it != ghost_refs_.end() && it->second > 0,
                   "ghost refcount underflow for vertex " << v);
  if (--it->second == 0) ghost_refs_.erase(it);
}

bool ShardChurnTracker::should_reshard(double threshold) const {
  if (num_chips_ < 2 || threshold <= 0.0) return false;
  const auto baseline = std::max<EdgeId>(planned_cut_, 1);
  return static_cast<double>(cut_drift()) >
         threshold * static_cast<double>(baseline);
}

void ShardChurnTracker::rebase(const ShardPlan& plan) {
  AURORA_CHECK_MSG(plan.num_chips == num_chips_,
                   "rebase must keep the chip count");
  set_baseline(plan);
}

}  // namespace aurora::cluster
