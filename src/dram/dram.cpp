#include "dram/dram.hpp"

#include <algorithm>
#include <string>

#include "common/error.hpp"
#include "common/metrics_registry.hpp"
#include "sim/invariants.hpp"

namespace aurora::dram {

DramModel::DramModel(const DramConfig& config)
    : sim::Component("dram"), config_(config) {
  AURORA_CHECK(config.num_channels > 0);
  AURORA_CHECK(config.banks_per_channel > 0);
  AURORA_CHECK(config.burst_bytes > 0);
  AURORA_CHECK(config.row_bytes % config.burst_bytes == 0);
  channels_.resize(config.num_channels);
  for (auto& ch : channels_) {
    ch.banks.resize(config.banks_per_channel);
    ch.next_refresh_at = config.timing.t_refi;
  }
  for (const DramStallWindow& w : config.stall_windows) {
    AURORA_CHECK_MSG(w.channel == DramStallWindow::kAllChannels ||
                         w.channel < config.num_channels,
                     "stall window addresses a missing channel");
    AURORA_CHECK_MSG(w.end > w.begin, "stall window must be non-empty");
  }
}

Cycle DramModel::stall_until(std::uint32_t channel, Cycle now) const {
  // Latest end among windows covering `now` for this channel (windows may
  // overlap when per-channel and all-channel faults coincide). The list is
  // tiny (fault plans schedule a handful of windows), so a linear scan at
  // event points only is cheap.
  Cycle until = 0;
  for (const DramStallWindow& w : config_.stall_windows) {
    if (w.channel != DramStallWindow::kAllChannels && w.channel != channel) {
      continue;
    }
    if (w.begin <= now && now < w.end) until = std::max(until, w.end);
  }
  return until;
}

std::uint32_t DramModel::channel_of(Bytes addr) const {
  // Burst-interleaved channel mapping spreads sequential streams across all
  // channels, the common high-bandwidth accelerator configuration.
  return static_cast<std::uint32_t>((addr / config_.burst_bytes) %
                                    config_.num_channels);
}

std::uint32_t DramModel::bank_of(Bytes addr) const {
  // Row-granular bank mapping: a sequential stream fills a whole row in one
  // bank before moving on, preserving row-buffer locality.
  return static_cast<std::uint32_t>(
      (addr / (config_.row_bytes * config_.num_channels)) %
      config_.banks_per_channel);
}

Bytes DramModel::row_of(Bytes addr) const {
  return addr / (config_.row_bytes * config_.num_channels *
                 config_.banks_per_channel);
}

void DramModel::enqueue(DramRequest request, Cycle now) {
  AURORA_CHECK(request.bytes > 0);
  const Bytes first = request.addr / config_.burst_bytes;
  const Bytes last = (request.addr + request.bytes - 1) / config_.burst_bytes;
  const auto num_bursts = static_cast<std::uint32_t>(last - first + 1);

  Inflight inf;
  inf.request = std::move(request);
  inf.bursts_remaining = num_bursts;
  inf.enqueued_at = now;
  const auto parent = static_cast<std::uint32_t>(inflight_.size());
  const bool is_write = inf.request.is_write;
  inflight_.push_back(std::move(inf));

  for (std::uint32_t i = 0; i < num_bursts; ++i) {
    Burst b;
    b.addr = (first + i) * config_.burst_bytes;
    b.is_write = is_write;
    b.enqueued_at = now;
    b.parent = parent;
    channels_[channel_of(b.addr)].queue.push_back(b);
    ++pending_bursts_;
  }
  wake();
  ++stats_.requests;
  stats_.bursts += num_bursts;
  if (is_write) {
    stats_.bytes_written += inflight_[parent].request.bytes;
  } else {
    stats_.bytes_read += inflight_[parent].request.bytes;
  }
}

void DramModel::try_issue(Channel& ch, std::uint32_t index, Cycle now) {
  // Refresh: at each t_refi boundary the channel blocks for t_rfc and every
  // row buffer closes. A refresh on a fully idle channel (no queued work,
  // all rows closed) changes no observable state, so it is neither counted
  // nor scheduled (see next_event_cycle); the catch-up loop below re-syncs
  // the deadline — stepping t_refi at a time so it stays on the tREFI grid —
  // and accounts every missed interval once activity resumes. Lockstep and
  // fast-forward therefore agree on stats_.refreshes at every cycle.
  const DramTiming& timing = config_.timing;
  if (timing.t_refi > 0 && now >= ch.next_refresh_at &&
      (!ch.queue.empty() || ch.open_rows > 0)) {
    Cycle deadline = ch.next_refresh_at;
    while (deadline <= now) {
      ch.refresh_until = deadline + timing.t_rfc;
      ++ch.refreshes;
      ++stats_.refreshes;
      deadline += timing.t_refi;
    }
    ch.next_refresh_at = deadline;
    for (auto& bank : ch.banks) {
      bank.row_open = false;
      bank.ready_at = std::max(bank.ready_at, ch.refresh_until);
    }
    ch.open_rows = 0;
  }
  if (now < ch.refresh_until) return;
  // Fault stall: no new column commands during the window. Checked after
  // the refresh block above so refresh bookkeeping (row closes, counters)
  // stays on the tREFI grid through a stall — the refresh invariants hold
  // under fault injection too.
  if (now < stall_until(index, now)) return;
  if (ch.queue.empty()) return;
  // Column commands pipeline ahead of the data bus, but only within a short
  // booking horizon — deep command queues ahead of data would be optimistic.
  // The horizon must cover CAS latency plus one burst or the bus can never
  // be fully saturated.
  if (ch.bus_free_at >
      now + config_.timing.t_cl + 2 * config_.timing.t_burst) {
    return;
  }

  const std::size_t window = std::min<std::size_t>(ch.queue.size(),
                                                   config_.queue_depth);
  // FR-FCFS: oldest row-hit burst first; if none is ready, oldest burst whose
  // bank can accept a command.
  std::size_t pick = window;  // sentinel: nothing issuable
  for (std::size_t i = 0; i < window; ++i) {
    const Burst& b = ch.queue[i];
    const BankState& bank = ch.banks[bank_of(b.addr)];
    if (bank.ready_at > now) continue;
    if (bank.row_open && bank.open_row == row_of(b.addr)) {
      pick = i;
      break;  // first ready row hit wins
    }
    if (pick == window) pick = i;  // remember oldest ready as fallback
  }
  if (pick == window) return;

  const Burst burst = ch.queue[pick];
  ch.queue.erase(ch.queue.begin() + static_cast<std::ptrdiff_t>(pick));

  BankState& bank = ch.banks[bank_of(burst.addr)];
  const Bytes row = row_of(burst.addr);
  const DramTiming& t = config_.timing;
  Cycle access_delay;
  Histogram* burst_latency;
  if (bank.row_open && bank.open_row == row) {
    access_delay = t.t_cl;
    ++stats_.row_hits;
    burst_latency = &stats_.burst_latency_hit;
  } else if (!bank.row_open) {
    access_delay = t.t_rcd + t.t_cl;
    ++stats_.row_misses;
    burst_latency = &stats_.burst_latency_miss;
  } else {
    access_delay = t.t_rp + t.t_rcd + t.t_cl;
    ++stats_.row_conflicts;
    burst_latency = &stats_.burst_latency_conflict;
  }
  if (!bank.row_open) ++ch.open_rows;
  bank.row_open = true;
  bank.open_row = row;

  // Read<->write switches pay the bus turnaround penalty.
  Cycle turnaround = 0;
  if (ch.bus_used && ch.last_was_write != burst.is_write) {
    turnaround = t.t_turnaround;
    ++stats_.bus_turnarounds;
  }
  ch.last_was_write = burst.is_write;
  ch.bus_used = true;

  const Cycle data_start =
      std::max(now + access_delay, ch.bus_free_at + turnaround);
  const Cycle completion = data_start + t.t_burst;
  ch.bus_free_at = completion;
  // Column commands to an open row pipeline at the burst rate (tCCD); only
  // the activate/precharge portion of the access serialises the bank.
  bank.ready_at = now + (access_delay - t.t_cl) + t.t_burst;
  last_completion_ = std::max(last_completion_, completion);

  burst_latency->add(static_cast<double>(completion - burst.enqueued_at));
  complete_burst(burst, completion);
}

void DramModel::complete_burst(const Burst& burst, Cycle completion) {
  --pending_bursts_;
  ++completed_bursts_;
  Inflight& inf = inflight_[burst.parent];
  AURORA_CHECK(inf.bursts_remaining > 0);
  if (--inf.bursts_remaining == 0) {
    inf.done = true;
    if (inf.request.is_write) {
      completed_bytes_written_ += inf.request.bytes;
    } else {
      completed_bytes_read_ += inf.request.bytes;
    }
    stats_.request_latency.add(static_cast<double>(completion - inf.enqueued_at));
    stats_.request_latency_hist.add(
        static_cast<double>(completion - inf.enqueued_at));
    if (inf.request.on_complete) inf.request.on_complete(completion);
    inf.request.on_complete = nullptr;  // release captured state
  }
}

void DramModel::tick(Cycle now) {
  for (std::size_t i = 0; i < channels_.size(); ++i) {
    try_issue(channels_[i], static_cast<std::uint32_t>(i), now);
  }
  // The model stays busy until the last scheduled data beat has returned,
  // even though completions are computed at issue time.
  busy_ = pending_bursts_ > 0 || now + 1 < last_completion_;
  // Compact the inflight table opportunistically once everything drained,
  // keeping long simulations from growing without bound.
  if (pending_bursts_ == 0 && inflight_.size() > 4096) inflight_.clear();
}

bool DramModel::idle() const { return !busy_ && pending_bursts_ == 0; }

Cycle DramModel::next_event_cycle(Cycle now) const {
  const DramTiming& t = config_.timing;
  Cycle next = sim::kNoEvent;
  for (std::size_t i = 0; i < channels_.size(); ++i) {
    const Channel& ch = channels_[i];
    // A refresh deadline is an event only while it can change observable
    // state: queued work to delay, or open rows to close. On a fully idle
    // channel refresh is a no-op (try_issue's liveness guard matches), so
    // the model can go quiescent instead of waking every tREFI.
    if (t.t_refi > 0 && (!ch.queue.empty() || ch.open_rows > 0)) {
      next = std::min(next, ch.next_refresh_at);
    }
    if (ch.queue.empty()) continue;
    if (now < ch.refresh_until) {
      next = std::min(next, ch.refresh_until);
      continue;
    }
    // Fault stall mirror of try_issue: the channel can do nothing but
    // refresh bookkeeping until the window ends.
    const Cycle stall = stall_until(static_cast<std::uint32_t>(i), now);
    if (now < stall) {
      next = std::min(next, stall);
      continue;
    }
    // Command booking horizon: no column command issues while the data bus
    // is booked too far ahead; it reopens at a known cycle.
    const Cycle horizon = t.t_cl + 2 * t.t_burst;
    if (ch.bus_free_at > now + horizon) {
      next = std::min(next, ch.bus_free_at - horizon);
      continue;
    }
    // FR-FCFS window: a burst whose bank is ready issues on the next tick;
    // otherwise the earliest bank-ready cycle is exact from tRCD/tRP/tCL.
    const std::size_t window =
        std::min<std::size_t>(ch.queue.size(), config_.queue_depth);
    for (std::size_t q = 0; q < window; ++q) {
      const Cycle ready = ch.banks[bank_of(ch.queue[q].addr)].ready_at;
      if (ready <= now) return now;
      next = std::min(next, ready);
    }
  }
  // The busy flag clears on the tick after the last scheduled data beat;
  // everything in between is a no-op.
  if (pending_bursts_ == 0 && busy_ && last_completion_ > 0) {
    next = std::min(next, last_completion_ - 1);
  }
  return next;
}

void DramModel::verify_invariants(sim::InvariantReport& report) const {
  const DramTiming& t = config_.timing;
  const Cycle now = report.now();

  std::uint64_t queued = 0;
  for (const auto& ch : channels_) queued += ch.queue.size();
  report.require(stats_.bursts == completed_bursts_ + pending_bursts_,
                 "bursts enqueued == completed + pending",
                 std::to_string(stats_.bursts) + " != " +
                     std::to_string(completed_bursts_) + " + " +
                     std::to_string(pending_bursts_));
  report.require(pending_bursts_ == queued,
                 "pending bursts == sum of channel queues",
                 std::to_string(pending_bursts_) + " != " +
                     std::to_string(queued));
  report.require(completed_bytes_read_ <= stats_.bytes_read &&
                     completed_bytes_written_ <= stats_.bytes_written,
                 "completed request bytes <= enqueued bytes");

  std::uint64_t channel_refreshes = 0;
  for (std::size_t i = 0; i < channels_.size(); ++i) {
    const Channel& ch = channels_[i];
    const std::string tag = "channel " + std::to_string(i) + ": ";
    channel_refreshes += ch.refreshes;
    std::uint32_t rows = 0;
    for (const auto& bank : ch.banks) rows += bank.row_open ? 1 : 0;
    report.require(ch.open_rows == rows,
                   "open-row cache matches bank state",
                   tag + std::to_string(ch.open_rows) + " != " +
                       std::to_string(rows));
    if (t.t_refi == 0) {
      report.require(ch.refreshes == 0, "no refreshes with tREFI disabled",
                     tag + std::to_string(ch.refreshes));
      continue;
    }
    // The drift bug this guards against: rescheduling as now + tREFI walks
    // the deadline off the grid of tREFI multiples.
    report.require(
        ch.next_refresh_at > 0 && ch.next_refresh_at % t.t_refi == 0,
        "refresh deadline stays on the tREFI grid",
        tag + "next_refresh_at=" + std::to_string(ch.next_refresh_at) +
            " tREFI=" + std::to_string(t.t_refi));
    report.require(ch.refreshes + 1 == ch.next_refresh_at / t.t_refi,
                   "refresh count consistent with next deadline",
                   tag + std::to_string(ch.refreshes) + " + 1 != " +
                       std::to_string(ch.next_refresh_at / t.t_refi));
    report.require(ch.refreshes <= now / t.t_refi,
                   "refresh count bounded by elapsed/tREFI",
                   tag + std::to_string(ch.refreshes) + " > " +
                       std::to_string(now / t.t_refi));
    // A channel with open rows has a refresh event pending, so it has been
    // ticked through every deadline it has reached and must be exactly
    // caught up. Which deadlines it has reached depends on context: an
    // interval check runs inside the tick at `now` (after this model's own
    // tick), so deadlines <= now are counted; a drain check runs after
    // run_until_idle, whose ticks cover cycles < now, so a deadline landing
    // exactly on the drain cycle is legitimately still pending.
    if (ch.open_rows > 0) {
      const Cycle ticked_through = report.drained() && now > 0 ? now - 1 : now;
      report.require(ch.refreshes == ticked_through / t.t_refi,
                     "open-row channel refresh count == elapsed/tREFI",
                     tag + std::to_string(ch.refreshes) + " != " +
                         std::to_string(ticked_through / t.t_refi));
    }
  }
  report.require(channel_refreshes == stats_.refreshes,
                 "per-channel refresh counts sum to the stats counter",
                 std::to_string(channel_refreshes) + " != " +
                     std::to_string(stats_.refreshes));

  if (report.drained()) {
    report.require(pending_bursts_ == 0 && queued == 0,
                   "drained: no pending bursts",
                   std::to_string(pending_bursts_) + " pending, " +
                       std::to_string(queued) + " queued");
    report.require(completed_bytes_read_ == stats_.bytes_read,
                   "drained: bytes read == completed request bytes",
                   std::to_string(completed_bytes_read_) + " != " +
                       std::to_string(stats_.bytes_read));
    report.require(completed_bytes_written_ == stats_.bytes_written,
                   "drained: bytes written == completed request bytes",
                   std::to_string(completed_bytes_written_) + " != " +
                       std::to_string(stats_.bytes_written));
  }
}

void DramModel::export_counters(CounterSet& out) const {
  out.inc("dram.requests", stats_.requests);
  out.inc("dram.bursts", stats_.bursts);
  out.inc("dram.row_hits", stats_.row_hits);
  out.inc("dram.row_misses", stats_.row_misses);
  out.inc("dram.row_conflicts", stats_.row_conflicts);
  out.inc("dram.refreshes", stats_.refreshes);
  out.inc("dram.bus_turnarounds", stats_.bus_turnarounds);
  out.inc("dram.bytes_read", stats_.bytes_read);
  out.inc("dram.bytes_written", stats_.bytes_written);
}

void DramModel::register_metrics(MetricsRegistry& registry) {
  const auto s = registry.scope("dram");
  s.counter("requests", &stats_.requests);
  s.counter("bursts", &stats_.bursts);
  s.counter("row_hits", &stats_.row_hits);
  s.counter("row_misses", &stats_.row_misses);
  s.counter("row_conflicts", &stats_.row_conflicts);
  s.counter("refreshes", &stats_.refreshes);
  s.counter("bytes_read", &stats_.bytes_read);
  s.counter("bytes_written", &stats_.bytes_written);
  s.gauge("bursts_pending",
          [this] { return static_cast<double>(pending_bursts_); });
  s.histogram("request_latency", &stats_.request_latency_hist);
  s.histogram("burst_latency_hit", &stats_.burst_latency_hit);
  s.histogram("burst_latency_miss", &stats_.burst_latency_miss);
  s.histogram("burst_latency_conflict", &stats_.burst_latency_conflict);
}

}  // namespace aurora::dram
