// Cycle-level DRAM model.
//
// Substitution note (DESIGN.md §1): the paper obtains off-package time from
// DRAMSim2. This module is a from-scratch reimplementation of the relevant
// behaviour: banked DDR devices with open-row policy, FR-FCFS scheduling,
// per-channel data buses, and the classic tRCD/tRP/tCL/tBL timing state
// machine. All timing parameters are expressed in *accelerator* clock cycles
// (700 MHz) so the whole simulation runs in one clock domain.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"
#include "sim/component.hpp"

namespace aurora::dram {

/// DDR timing in accelerator cycles (defaults approximate DDR3-1600 timings
/// converted to a 700 MHz controller clock).
struct DramTiming {
  Cycle t_rcd = 10;  // ACTIVATE -> column command
  Cycle t_rp = 10;   // PRECHARGE -> ACTIVATE
  Cycle t_cl = 10;   // column command -> first data beat
  Cycle t_burst = 4; // data-bus beats per 64-byte burst
  /// Refresh cadence: every t_refi cycles each channel blocks for t_rfc and
  /// all its row buffers close. t_refi = 0 disables refresh.
  Cycle t_refi = 5460;  // ~7.8 us at 700 MHz
  Cycle t_rfc = 180;
  /// Bus turnaround penalty when the data bus switches between reads and
  /// writes (tWTR/tRTW combined).
  Cycle t_turnaround = 4;
};

/// Fault-injected controller stall: during [begin, end) the addressed
/// channel issues no new column commands (already-scheduled data beats
/// finish, refresh bookkeeping proceeds — the stall models a controller
/// back-off, not a power loss). channel == kAllChannels stalls every
/// channel. Windows come from a fault::FaultPlan; an empty list is inert.
struct DramStallWindow {
  static constexpr std::uint32_t kAllChannels = 0xFFFFFFFFu;
  std::uint32_t channel = kAllChannels;
  Cycle begin = 0;
  Cycle end = 0;
};

struct DramConfig {
  std::uint32_t num_channels = 4;
  std::uint32_t banks_per_channel = 8;
  Bytes row_bytes = 2048;       // row-buffer size
  Bytes burst_bytes = 64;       // bytes delivered per burst
  std::uint32_t queue_depth = 64;  // per-channel scheduler window
  DramTiming timing;
  /// Sorted-by-begin fault stall windows (see DramStallWindow).
  std::vector<DramStallWindow> stall_windows;

  /// Peak bandwidth in bytes per accelerator cycle (for reporting only).
  [[nodiscard]] double peak_bytes_per_cycle() const {
    return static_cast<double>(num_channels) *
           static_cast<double>(burst_bytes) /
           static_cast<double>(timing.t_burst);
  }
};

/// One memory request. Requests larger than one burst are split internally;
/// the callback fires when the last burst completes.
struct DramRequest {
  Bytes addr = 0;
  Bytes bytes = 0;
  bool is_write = false;
  std::function<void(Cycle completion)> on_complete;
};

struct DramStats {
  std::uint64_t requests = 0;
  std::uint64_t bursts = 0;
  std::uint64_t row_hits = 0;
  std::uint64_t row_misses = 0;     // bank idle, row activate needed
  std::uint64_t row_conflicts = 0;  // different row open, precharge needed
  /// Refresh commands accounted. A channel with pending work or open rows
  /// counts every tREFI deadline as it passes; a fully idle channel (empty
  /// queue, all rows closed) accounts its no-op refreshes lazily, in one
  /// catch-up step, when activity resumes — so the counter is identical
  /// under lockstep and fast-forward at every observable cycle.
  std::uint64_t refreshes = 0;
  std::uint64_t bus_turnarounds = 0;  // read<->write direction switches
  Bytes bytes_read = 0;
  Bytes bytes_written = 0;
  RunningStat request_latency;
  /// Enqueue-to-completion latency distribution of whole requests
  /// (canonical layout, so it merges into RunMetrics::dram_request_latency).
  Histogram request_latency_hist{kDramLatencyBucketCycles, kDramLatencyBuckets};
  /// Per-burst enqueue-to-data latency, split by how the row buffer
  /// resolved the access — the row-policy cost picture, time-resolved.
  Histogram burst_latency_hit{kDramLatencyBucketCycles, kDramLatencyBuckets};
  Histogram burst_latency_miss{kDramLatencyBucketCycles, kDramLatencyBuckets};
  Histogram burst_latency_conflict{kDramLatencyBucketCycles,
                                   kDramLatencyBuckets};

  [[nodiscard]] Bytes total_bytes() const { return bytes_read + bytes_written; }
  [[nodiscard]] double row_hit_rate() const {
    const auto denom = row_hits + row_misses + row_conflicts;
    return denom == 0 ? 0.0
                      : static_cast<double>(row_hits) /
                            static_cast<double>(denom);
  }
};

/// The memory controller + devices. Tick once per accelerator cycle.
class DramModel final : public sim::Component {
 public:
  explicit DramModel(const DramConfig& config);

  /// Enqueue a request at the current cycle. Unlimited ingress queue; the
  /// per-channel scheduling window is bounded by config.queue_depth.
  void enqueue(DramRequest request, Cycle now);

  void tick(Cycle now) override;
  [[nodiscard]] bool idle() const override;
  /// Exact next-work cycle from the timing state machine: the earliest of
  /// any channel's refresh deadline, refresh completion, command-booking
  /// horizon opening, or queued burst whose bank becomes ready
  /// (tRCD/tRP/tCL/tBL all yield exact readiness cycles). A refresh
  /// deadline is an event only while the channel has pending work or open
  /// rows; on a fully idle channel the refresh is a state no-op, so the
  /// wakeup is skipped and the accounting catches up (try_issue's tREFI
  /// catch-up loop) when activity resumes.
  [[nodiscard]] Cycle next_event_cycle(Cycle now) const override;

  /// Conservation checks: bursts enqueued == completed + queued, completed
  /// request bytes match the byte counters after drain, and each channel's
  /// refresh count stays on the tREFI grid (see docs/architecture.md,
  /// "Invariants").
  void verify_invariants(sim::InvariantReport& report) const override;

  [[nodiscard]] const DramStats& stats() const { return stats_; }
  [[nodiscard]] const DramConfig& config() const { return config_; }

  /// Merge this component's event counts into `out` (prefixed "dram.").
  void export_counters(CounterSet& out) const;

  /// Publish counters, queue gauges and the latency histograms under
  /// "dram." for samplers and other generic observers.
  void register_metrics(MetricsRegistry& registry) override;

 private:
  struct Burst {
    Bytes addr = 0;
    bool is_write = false;
    Cycle enqueued_at = 0;
    std::uint32_t parent = 0;  // index into inflight_ requests
  };
  struct Inflight {
    DramRequest request;
    std::uint32_t bursts_remaining = 0;
    Cycle enqueued_at = 0;
    bool done = false;
  };
  struct BankState {
    bool row_open = false;
    Bytes open_row = 0;
    Cycle ready_at = 0;  // bank available for a new column command
  };
  struct Channel {
    std::deque<Burst> queue;
    std::vector<BankState> banks;
    Cycle bus_free_at = 0;
    Cycle next_refresh_at = 0;
    Cycle refresh_until = 0;
    /// Banks with an open row (cached so the refresh no-op test in
    /// next_event_cycle and try_issue is O(1)).
    std::uint32_t open_rows = 0;
    /// Refresh commands accounted on this channel (tREFI deadlines
    /// processed); feeds the per-channel refresh-cadence invariant.
    std::uint64_t refreshes = 0;
    bool last_was_write = false;
    bool bus_used = false;
  };

  [[nodiscard]] std::uint32_t channel_of(Bytes addr) const;
  [[nodiscard]] std::uint32_t bank_of(Bytes addr) const;
  [[nodiscard]] Bytes row_of(Bytes addr) const;
  /// End of the fault stall window covering `now` on `channel` (0 if none).
  [[nodiscard]] Cycle stall_until(std::uint32_t channel, Cycle now) const;
  void try_issue(Channel& ch, std::uint32_t index, Cycle now);
  void complete_burst(const Burst& burst, Cycle completion);

  DramConfig config_;
  std::vector<Channel> channels_;
  std::vector<Inflight> inflight_;
  std::uint64_t pending_bursts_ = 0;
  /// Conservation counters for verify_invariants: bursts retired and the
  /// byte totals of fully completed requests (stats_.bytes_* count at
  /// enqueue; after drain the two views must agree).
  std::uint64_t completed_bursts_ = 0;
  Bytes completed_bytes_read_ = 0;
  Bytes completed_bytes_written_ = 0;
  Cycle last_completion_ = 0;
  bool busy_ = false;
  DramStats stats_;
};

}  // namespace aurora::dram
