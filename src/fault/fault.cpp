#include "fault/fault.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace aurora::fault {
namespace {

/// Per-entity sub-stream seeds: golden-ratio decorrelation over a
/// (class, index) pair so each chip/wire/channel draws independently and
/// entity count never shifts another entity's stream.
constexpr std::uint64_t kStreamSalt = 0x9E3779B97F4A7C15ull;

std::uint64_t stream_seed(std::uint64_t seed, std::uint64_t cls,
                          std::uint64_t index) {
  return seed ^ (kStreamSalt * (cls * 0x10000ull + index + 1));
}

/// Exponential draw around `mean`, clamped to [1, +inf) cycles.
Cycle draw_interval(Rng& rng, double mean) {
  const double u = rng.next_double();  // [0, 1)
  const double x = -mean * std::log1p(-u);
  if (x >= 9e18) return kNever - 1;
  return std::max<Cycle>(1, static_cast<Cycle>(std::llround(x)));
}

/// Alternating up/down schedule: returns [begin, end) down-windows whose
/// begins fall inside [0, horizon). mttr == 0 means the first failure is
/// permanent (end == kNever).
std::vector<DownWindow> draw_windows(Rng& rng, double mtbf, double mttr,
                                     Cycle horizon) {
  std::vector<DownWindow> windows;
  Cycle t = 0;
  while (t < horizon) {
    const Cycle up = draw_interval(rng, mtbf);
    if (up >= horizon - t) break;  // next failure would start past horizon
    const Cycle down_at = t + up;
    if (mttr <= 0.0) {
      windows.push_back({down_at, kNever});
      break;
    }
    const Cycle repair = draw_interval(rng, mttr);
    const Cycle up_at = down_at >= kNever - repair ? kNever : down_at + repair;
    windows.push_back({down_at, up_at});
    if (up_at == kNever) break;
    t = up_at;
  }
  return windows;
}

/// Binary search: index of the window containing `at`, or size() if none.
template <typename Window>
std::size_t find_window(const std::vector<Window>& windows, Cycle at) {
  // First window with begin > at, then step back one.
  auto it = std::upper_bound(
      windows.begin(), windows.end(), at,
      [](Cycle a, const Window& w) { return a < w.begin; });
  if (it == windows.begin()) return windows.size();
  --it;
  if (at < it->end) {
    return static_cast<std::size_t>(it - windows.begin());
  }
  return windows.size();
}

}  // namespace

const char* fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::kChipDown:
      return "chip-down";
    case FaultKind::kChipUp:
      return "chip-up";
    case FaultKind::kLinkDegraded:
      return "link-degraded";
    case FaultKind::kLinkRestored:
      return "link-restored";
    case FaultKind::kDramStallBegin:
      return "dram-stall-begin";
    case FaultKind::kDramStallEnd:
      return "dram-stall-end";
  }
  throw Error("invalid FaultKind");
}

FaultPlan FaultPlan::generate(const FaultParams& params,
                              std::uint32_t num_chips) {
  AURORA_CHECK_MSG(num_chips > 0, "fault plan needs at least one chip");
  AURORA_CHECK_MSG(params.link_multiplier_min >= 1.0 &&
                       params.link_multiplier_max >= params.link_multiplier_min,
                   "link multipliers must satisfy 1 <= min <= max");
  FaultPlan plan;
  plan.num_chips_ = num_chips;
  plan.chip_windows_.resize(num_chips);
  plan.wire_windows_.resize(static_cast<std::size_t>(num_chips) * num_chips);
  plan.dram_windows_.resize(num_chips);
  if (!params.enabled()) return plan;

  if (params.chip_mtbf > 0.0) {
    for (std::uint32_t c = 0; c < num_chips; ++c) {
      Rng rng(stream_seed(params.seed, 1, c));
      plan.chip_windows_[c] =
          draw_windows(rng, params.chip_mtbf, params.chip_mttr, params.horizon);
      for (const DownWindow& w : plan.chip_windows_[c]) {
        plan.events_.push_back({w.begin, FaultKind::kChipDown, c, 0, 1.0});
        if (w.end != kNever) {
          plan.events_.push_back({w.end, FaultKind::kChipUp, c, 0, 1.0});
        }
      }
    }
  }
  if (params.link_mtbf > 0.0 && num_chips > 1) {
    for (std::uint32_t from = 0; from < num_chips; ++from) {
      for (std::uint32_t to = 0; to < num_chips; ++to) {
        if (from == to) continue;
        const std::size_t wire =
            static_cast<std::size_t>(from) * num_chips + to;
        Rng rng(stream_seed(params.seed, 2, wire));
        const std::vector<DownWindow> raw = draw_windows(
            rng, params.link_mtbf, params.link_mttr, params.horizon);
        auto& windows = plan.wire_windows_[wire];
        windows.reserve(raw.size());
        for (const DownWindow& w : raw) {
          DegradeWindow d;
          d.begin = w.begin;
          d.end = w.end;
          d.multiplier = rng.next_double(params.link_multiplier_min,
                                         params.link_multiplier_max);
          windows.push_back(d);
          plan.events_.push_back(
              {d.begin, FaultKind::kLinkDegraded, from, to, d.multiplier});
          if (d.end != kNever) {
            plan.events_.push_back(
                {d.end, FaultKind::kLinkRestored, from, to, 1.0});
          }
        }
      }
    }
  }
  if (params.dram_mtbf > 0.0 && params.dram_mttr > 0.0) {
    // A permanent DRAM stall would deadlock any engine run, so DRAM faults
    // require a positive repair time.
    for (std::uint32_t c = 0; c < num_chips; ++c) {
      Rng rng(stream_seed(params.seed, 3, c));
      plan.dram_windows_[c] =
          draw_windows(rng, params.dram_mtbf, params.dram_mttr, params.horizon);
      for (const DownWindow& w : plan.dram_windows_[c]) {
        plan.events_.push_back({w.begin, FaultKind::kDramStallBegin, c, 0, 1.0});
        plan.events_.push_back({w.end, FaultKind::kDramStallEnd, c, 0, 1.0});
      }
    }
  }
  std::sort(plan.events_.begin(), plan.events_.end(),
            [](const FaultEvent& a, const FaultEvent& b) {
              if (a.at != b.at) return a.at < b.at;
              if (a.kind != b.kind) return a.kind < b.kind;
              if (a.chip != b.chip) return a.chip < b.chip;
              return a.peer < b.peer;
            });
  return plan;
}

bool FaultPlan::chip_down_at(std::uint32_t chip, Cycle at) const {
  if (chip >= chip_windows_.size()) return false;
  return find_window(chip_windows_[chip], at) != chip_windows_[chip].size();
}

Cycle FaultPlan::chip_up_after(std::uint32_t chip, Cycle at) const {
  if (chip >= chip_windows_.size()) return at;
  const auto& windows = chip_windows_[chip];
  const std::size_t i = find_window(windows, at);
  if (i == windows.size()) return at;
  return windows[i].end;  // kNever when permanently down
}

Cycle FaultPlan::chip_down_in(std::uint32_t chip, Cycle after,
                              Cycle before) const {
  if (chip >= chip_windows_.size()) return kNever;
  const auto& windows = chip_windows_[chip];
  auto it = std::upper_bound(
      windows.begin(), windows.end(), after,
      [](Cycle a, const DownWindow& w) { return a < w.begin; });
  if (it == windows.end() || it->begin >= before) return kNever;
  return it->begin;
}

const std::vector<DownWindow>& FaultPlan::chip_windows(
    std::uint32_t chip) const {
  AURORA_CHECK(chip < chip_windows_.size());
  return chip_windows_[chip];
}

double FaultPlan::wire_multiplier_at(std::uint32_t from, std::uint32_t to,
                                     Cycle at) const {
  const std::size_t wire = static_cast<std::size_t>(from) * num_chips_ + to;
  if (wire >= wire_windows_.size()) return 1.0;
  const auto& windows = wire_windows_[wire];
  const std::size_t i = find_window(windows, at);
  return i == windows.size() ? 1.0 : windows[i].multiplier;
}

const std::vector<DegradeWindow>& FaultPlan::wire_windows(
    std::uint32_t from, std::uint32_t to) const {
  const std::size_t wire = static_cast<std::size_t>(from) * num_chips_ + to;
  AURORA_CHECK(wire < wire_windows_.size());
  return wire_windows_[wire];
}

double FaultPlan::max_link_multiplier() const {
  double max_mult = 1.0;
  for (const auto& windows : wire_windows_) {
    for (const DegradeWindow& w : windows) {
      max_mult = std::max(max_mult, w.multiplier);
    }
  }
  return max_mult;
}

const std::vector<DownWindow>& FaultPlan::dram_windows(
    std::uint32_t chip) const {
  AURORA_CHECK(chip < dram_windows_.size());
  return dram_windows_[chip];
}

std::string FaultPlan::timeline() const {
  std::ostringstream os;
  for (const FaultEvent& e : events_) {
    os << e.at << ' ' << fault_kind_name(e.kind) << ' ' << e.chip << ' '
       << e.peer << ' ' << std::llround(e.multiplier * 1000.0) << '\n';
  }
  return os.str();
}

}  // namespace aurora::fault
