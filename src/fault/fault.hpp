// Seed-deterministic fault injection.
//
// A FaultPlan is a precomputed, immutable schedule of component faults:
// chip fail-stop / fail-recover windows (MTBF/MTTR), inter-chip link
// degradation windows (a >= 1 multiplier on serialisation and hop flight),
// and DRAM channel stall windows. Plans are generated once from common/rng
// and then only *queried* during simulation, so every engine flavour
// (lockstep, fast-forward, serial, parallel) observes the exact same fault
// timeline — determinism lives in the plan, not in the engines.
//
// Clock domains: chip up/down windows are queried on the serving clock by
// the cluster scheduler's control plane; link windows on the cluster-run
// clock by InterChipLink/LinkEndpoint; DRAM windows on the chip-local clock
// by DramModel (plumbed as DramConfig::stall_windows). An empty plan (or a
// null plan pointer) is fully inert: no query changes any behaviour.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace aurora::fault {

/// Sentinel for "never happens" (permanent fail-stop, no next recovery).
inline constexpr Cycle kNever = std::numeric_limits<Cycle>::max();

enum class FaultKind : std::uint8_t {
  kChipDown,
  kChipUp,
  kLinkDegraded,
  kLinkRestored,
  kDramStallBegin,
  kDramStallEnd,
};

[[nodiscard]] const char* fault_kind_name(FaultKind k);

/// One scheduled fault transition. `chip` is the affected chip; for link
/// events it is the wire's source and `peer` the destination. `multiplier`
/// carries the link degradation factor (>= 1) on kLinkDegraded.
struct FaultEvent {
  Cycle at = 0;
  FaultKind kind{};
  std::uint32_t chip = 0;
  std::uint32_t peer = 0;
  double multiplier = 1.0;
};

/// Generation knobs. All means are in cycles; a fault class is disabled
/// when its MTBF is zero. `horizon` bounds the cycle range faults *begin*
/// in; zero disables the whole plan.
struct FaultParams {
  std::uint64_t seed = 1;
  Cycle horizon = 0;
  double chip_mtbf = 0.0;
  /// Mean repair time; zero with chip_mtbf > 0 means fail-stop forever.
  double chip_mttr = 0.0;
  double link_mtbf = 0.0;
  double link_mttr = 0.0;
  double link_multiplier_min = 2.0;
  double link_multiplier_max = 8.0;
  double dram_mtbf = 0.0;
  double dram_mttr = 0.0;

  [[nodiscard]] bool enabled() const {
    return horizon > 0 &&
           (chip_mtbf > 0.0 || link_mtbf > 0.0 || dram_mtbf > 0.0);
  }
};

/// Half-open interval [begin, end) during which a component is unavailable.
struct DownWindow {
  Cycle begin = 0;
  Cycle end = kNever;
};

/// Half-open interval during which a wire runs `multiplier`x slower.
struct DegradeWindow {
  Cycle begin = 0;
  Cycle end = kNever;
  double multiplier = 1.0;
};

class FaultPlan {
 public:
  /// Empty plan: every query reports "healthy"; empty() is true.
  FaultPlan() = default;

  /// Build a plan for `num_chips` chips. Each entity (chip, directed wire,
  /// per-chip DRAM) draws from its own decorrelated sub-stream, so adding
  /// chips never perturbs the schedules of existing ones. Up/down
  /// alternation uses exponential draws around MTBF/MTTR, clamped to at
  /// least one cycle.
  [[nodiscard]] static FaultPlan generate(const FaultParams& params,
                                          std::uint32_t num_chips);

  [[nodiscard]] bool empty() const { return events_.empty(); }
  [[nodiscard]] std::uint32_t num_chips() const { return num_chips_; }
  /// All transitions sorted by (at, kind, chip, peer).
  [[nodiscard]] const std::vector<FaultEvent>& events() const {
    return events_;
  }

  // -- Chip health (control-plane clock) --
  [[nodiscard]] bool chip_down_at(std::uint32_t chip, Cycle at) const;
  /// Earliest cycle >= `at` with the chip up; kNever if it never recovers.
  [[nodiscard]] Cycle chip_up_after(std::uint32_t chip, Cycle at) const;
  /// First failure strictly inside (after, before); kNever if none. Used to
  /// decide whether a request dispatched at `after` and finishing at
  /// `before` dies mid-flight (a failure exactly at `before` spares it).
  [[nodiscard]] Cycle chip_down_in(std::uint32_t chip, Cycle after,
                                   Cycle before) const;
  [[nodiscard]] const std::vector<DownWindow>& chip_windows(
      std::uint32_t chip) const;

  // -- Link degradation (cluster-run clock) --
  /// Serialisation/flight multiplier for the directed wire from -> to at
  /// `at`; 1.0 when healthy. Always >= 1, so degradation only ever
  /// lengthens transmissions — the conservative-lookahead bound of the
  /// parallel simulator stays valid.
  [[nodiscard]] double wire_multiplier_at(std::uint32_t from,
                                          std::uint32_t to, Cycle at) const;
  [[nodiscard]] const std::vector<DegradeWindow>& wire_windows(
      std::uint32_t from, std::uint32_t to) const;
  /// Largest multiplier anywhere in the plan (1.0 if none): scales worst-
  /// case transmission bounds such as the cluster deadlock guard.
  [[nodiscard]] double max_link_multiplier() const;

  // -- DRAM stalls (chip-local clock) --
  [[nodiscard]] const std::vector<DownWindow>& dram_windows(
      std::uint32_t chip) const;

  /// Canonical one-line-per-event text form; two plans are behaviourally
  /// identical iff their timelines match (fuzzer diff + debugging aid).
  [[nodiscard]] std::string timeline() const;

 private:
  std::uint32_t num_chips_ = 0;
  std::vector<FaultEvent> events_;
  std::vector<std::vector<DownWindow>> chip_windows_;
  /// Indexed from * num_chips_ + to.
  std::vector<std::vector<DegradeWindow>> wire_windows_;
  std::vector<std::vector<DownWindow>> dram_windows_;
};

}  // namespace aurora::fault
