#include "noc/network.hpp"

#include <algorithm>
#include <string>
#include <utility>

#include "common/error.hpp"
#include "common/metrics_registry.hpp"
#include "sim/invariants.hpp"

namespace aurora::noc {

Network::Network(const NocParams& params)
    : sim::Component("noc"), params_(params), config_(params.k) {
  AURORA_CHECK(params.k >= 2);
  AURORA_CHECK(params.flit_bytes > 0);
  AURORA_CHECK(params.input_buffer_flits >= 2);
  AURORA_CHECK_MSG(params.num_vcs >= 1 && params.num_vcs <= kMaxVcs,
                   "num_vcs must be in [1, " << kMaxVcs << "]");
  routers_.resize(num_nodes());
  router_occupancy_.assign(num_nodes(), 0);
  router_load_.assign(num_nodes(), 0);
  // Sized for a typical injection wave up front so the per-packet
  // bookkeeping never rehashes/reallocates on the per-cycle hot path.
  live_packets_.reserve(256);
  delivered_.reserve(256);
  for (auto& r : routers_) {
    for (auto& per_port : r.credits) per_port.fill(params.input_buffer_flits);
  }
}

std::uint64_t Network::configure(NocConfig config) {
  AURORA_CHECK_MSG(idle(), "reconfiguration requires a drained network");
  AURORA_CHECK_MSG(config.k() == params_.k,
                   "configuration mesh size mismatch");
  // An unroutable ring (wrap-around hop with no bypass segment, duplicate
  // membership) would either throw in resolve_hop mid-flight or livelock;
  // reject it here, where the configuration unit can still react.
  for (std::size_t i = 0; i < config.rings().size(); ++i) {
    AURORA_CHECK_MSG(config.ring_routable(i),
                     "ring " << i
                             << " is not routable (duplicate node, or a hop "
                                "with no mesh link or bypass segment)");
  }
  const std::uint64_t writes =
      NocConfig::switch_writes_between(config_, config);
  config_ = std::move(config);
  return writes;
}

std::uint64_t Network::send(NodeId src, NodeId dst, Bytes payload_bytes,
                            std::uint64_t tag, Cycle now) {
  AURORA_CHECK(src < num_nodes() && dst < num_nodes());
  Packet p;
  p.id = next_packet_id_++;
  p.src = src;
  p.dst = dst;
  p.payload_bytes = payload_bytes;
  p.num_flits = std::max<std::uint32_t>(
      1, static_cast<std::uint32_t>((payload_bytes + params_.flit_bytes - 1) /
                                    params_.flit_bytes));
  p.injected_at = now;
  p.tag = tag;

  // VC allocation at injection: packets spread round-robin over the VCs and
  // keep their channel end to end (no mid-route reallocation needed under
  // monotone XY + bypass routing).
  const auto vc = static_cast<std::uint8_t>(p.id % params_.num_vcs);
  auto& source_queue =
      routers_[src].in[static_cast<std::size_t>(Port::kLocal)][vc];
  for (std::uint32_t i = 0; i < p.num_flits; ++i) {
    TimedFlit tf;
    tf.flit.packet_id = p.id;
    tf.flit.seq = i;
    tf.flit.vc = vc;
    tf.flit.is_head = (i == 0);
    tf.flit.is_tail = (i + 1 == p.num_flits);
    tf.ready_at = now + 1;
    source_queue.fifo.push_back(tf);
    ++flits_in_flight_;
    ++router_occupancy_[src];
    ++stats_.flits_injected;
  }
  live_packets_.emplace(p.id, PacketRecord{p, 0, 0});
  ++stats_.packets_injected;
  wake();
  return p.id;
}

void Network::return_credit(NodeId node, Port in_port, std::uint8_t vc) {
  // The local port is the injection queue — unbounded, no credits.
  if (in_port == Port::kLocal) return;
  const std::uint32_t k = params_.k;
  const Coord c = to_coord(node, k);
  NodeId upstream = 0;
  Port up_out = Port::kLocal;
  switch (in_port) {
    case Port::kWest:  // fed by the west neighbor's east output
      upstream = to_node({c.row, c.col - 1}, k);
      up_out = Port::kEast;
      break;
    case Port::kEast:
      upstream = to_node({c.row, c.col + 1}, k);
      up_out = Port::kWest;
      break;
    case Port::kNorth:  // fed by the north neighbor's south output
      upstream = to_node({c.row - 1, c.col}, k);
      up_out = Port::kSouth;
      break;
    case Port::kSouth:
      upstream = to_node({c.row + 1, c.col}, k);
      up_out = Port::kNorth;
      break;
    case Port::kBypassRow: {
      const auto seg = config_.row_segment_at(c.row, c.col);
      AURORA_CHECK(seg.has_value());
      const std::uint32_t far = (seg->from == c.col) ? seg->to : seg->from;
      upstream = to_node({c.row, far}, k);
      up_out = Port::kBypassRow;
      break;
    }
    case Port::kBypassCol: {
      const auto seg = config_.col_segment_at(c.col, c.row);
      AURORA_CHECK(seg.has_value());
      const std::uint32_t far = (seg->from == c.row) ? seg->to : seg->from;
      upstream = to_node({far, c.col}, k);
      up_out = Port::kBypassCol;
      break;
    }
    case Port::kLocal:
      return;
  }
  ++routers_[upstream].credits[static_cast<std::size_t>(up_out)][vc];
}

void Network::eject_flit(NodeId node, const Flit& flit, Cycle now) {
  auto it = live_packets_.find(flit.packet_id);
  AURORA_CHECK(it != live_packets_.end());
  PacketRecord& rec = it->second;
  ++rec.flits_ejected;
  ++stats_.flits_ejected;
  if (flit.is_tail) {
    AURORA_CHECK_MSG(rec.flits_ejected == rec.packet.num_flits,
                     "tail ejected before all body flits");
    AURORA_CHECK(node == rec.packet.dst);
    ++stats_.packets_delivered;
    stats_.packet_latency.add(
        static_cast<double>(now - rec.packet.injected_at));
    stats_.packet_latency_hist.add(
        static_cast<double>(now - rec.packet.injected_at));
    stats_.packet_hops.add(static_cast<double>(rec.hops));
    if (on_delivery_) {
      on_delivery_(rec.packet, now);
    } else {
      // Grow toward the number of packets still in flight in one step so a
      // burst of deliveries costs at most one reallocation.
      if (delivered_.size() == delivered_.capacity()) {
        delivered_.reserve(std::max(delivered_.capacity() * 2,
                                    delivered_.size() + live_packets_.size() +
                                        1));
      }
      delivered_.push_back(rec.packet);
    }
    live_packets_.erase(it);
  }
}

void Network::route_one_output(Router& router, NodeId node, Port out,
                               Cycle now) {
  const auto out_idx = static_cast<std::size_t>(out);
  const std::uint32_t nv = params_.num_vcs;
  const std::uint32_t lanes = static_cast<std::uint32_t>(kNumPorts) * nv;

  // Switch allocation: scan (port, vc) lanes round-robin and take the first
  // one that can actually move a flit through this output THIS cycle.
  // Locks are held per (output, vc): a packet's flits stay contiguous within
  // its virtual channel, while different VCs interleave on the link.
  for (std::uint32_t i = 0; i < lanes; ++i) {
    const std::uint32_t lane = (router.rr[out_idx] + i) % lanes;
    const std::size_t p = lane / nv;
    const auto v = static_cast<std::uint8_t>(lane % nv);
    InputBuffer& in = router.in[p][v];
    const auto in_port = static_cast<Port>(p);

    if (in.fifo.empty()) continue;
    if (router.last_port_pop[p] == now) continue;  // crossbar input busy
    const TimedFlit& tf = in.fifo.front();
    if (tf.ready_at > now) continue;

    const bool holds_lock = (in.locked_output == out);
    if (!holds_lock) {
      if (in.locked_output.has_value()) continue;  // locked elsewhere
      if (!tf.flit.is_head) continue;
      const Packet& pkt = live_packets_.at(tf.flit.packet_id).packet;
      if (route_output(node, pkt.dst, config_) != out) continue;
      // (out, vc) may carry only one packet at a time: the downstream VC
      // buffer must receive contiguous flits.
      bool vc_taken = false;
      for (std::size_t q = 0; q < kNumPorts; ++q) {
        if (q != p && router.in[q][v].locked_output == out) vc_taken = true;
      }
      if (vc_taken) continue;
    }
    if (out != Port::kLocal && router.credits[out_idx][v] == 0) continue;

    // This lane wins the switch this cycle.
    if (!holds_lock) in.locked_output = out;
    router.rr[out_idx] = static_cast<std::uint8_t>((lane + 1) % lanes);
    const TimedFlit moving = in.fifo.front();
    in.fifo.pop_front();
    router.last_port_pop[p] = now;
    if (moving.flit.is_tail) in.locked_output.reset();
    return_credit(node, in_port, v);

    if (out == Port::kLocal) {
      --flits_in_flight_;
      --router_occupancy_[node];
      eject_flit(node, moving.flit, now);
      return;
    }

    --router.credits[out_idx][v];
    const Hop hop = resolve_hop(node, out, config_);
    Cycle delay = params_.router_delay + params_.link_delay;
    if (hop.via_bypass) {
      delay += hop.length / 4;  // repeater-spaced wire delay on long segments
    }
    const bool turn = is_horizontal(in_port) != is_horizontal(out) &&
                      in_port != Port::kLocal;
    if (turn) delay += params_.turn_delay;

    TimedFlit forwarded = moving;
    forwarded.ready_at = now + delay;
    routers_[hop.next_node]
        .in[static_cast<std::size_t>(hop.next_in_port)][v]
        .fifo.push_back(forwarded);
    --router_occupancy_[node];
    ++router_occupancy_[hop.next_node];

    ++stats_.flit_hops;
    ++stats_.router_traversals;
    ++router_load_[node];
    stats_.link_bytes += hop.via_bypass ? 0 : params_.flit_bytes;
    if (hop.via_bypass) {
      ++stats_.bypass_flit_hops;
      stats_.bypass_bytes += params_.flit_bytes;
    }
    if (moving.flit.is_head) {
      ++live_packets_.at(moving.flit.packet_id).hops;
    }
    return;
  }
}

void Network::tick(Cycle now) {
  static constexpr std::array<Port, kNumPorts> kOutputs = {
      Port::kLocal,     Port::kNorth,     Port::kEast,     Port::kSouth,
      Port::kWest,      Port::kBypassRow, Port::kBypassCol};
  if (flits_in_flight_ == 0) return;
  ++stats_.busy_cycles;
  for (NodeId node = 0; node < num_nodes(); ++node) {
    if (router_occupancy_[node] == 0) continue;
    Router& router = routers_[node];
    for (Port out : kOutputs) route_one_output(router, node, out, now);
  }
}

bool Network::idle() const { return flits_in_flight_ == 0; }

Cycle Network::next_event_cycle(Cycle now) const {
  if (flits_in_flight_ == 0) return sim::kNoEvent;
  // Only FIFO-front flits can move, so the earliest possible state change
  // is the min front ready_at. A front flit that is ready this cycle might
  // move next tick (subject to credits/locks we cannot cheaply predict), so
  // it conservatively pins the clock to `now`. Ticks where every buffered
  // front is still in transit (ready_at > now) provably mutate nothing:
  // switch allocation only updates rr/locks/credits when a flit moves.
  Cycle next = sim::kNoEvent;
  for (NodeId node = 0; node < num_nodes(); ++node) {
    if (router_occupancy_[node] == 0) continue;
    const Router& router = routers_[node];
    for (std::size_t p = 0; p < kNumPorts; ++p) {
      for (std::uint32_t v = 0; v < params_.num_vcs; ++v) {
        const auto& fifo = router.in[p][v].fifo;
        if (fifo.empty()) continue;
        const Cycle ready = fifo.front().ready_at;
        if (ready <= now) return now;
        next = std::min(next, ready);
      }
    }
  }
  return next;
}

void Network::skip_cycles(Cycle from, Cycle to) {
  // Lockstep counts every cycle with at least one flit in flight; the
  // in-flight count cannot change during a skipped span (flits only move on
  // ticks), so the whole span is busy iff it is busy now.
  if (flits_in_flight_ > 0) stats_.busy_cycles += to - from;
}

void Network::verify_invariants(sim::InvariantReport& report) const {
  // Flit conservation: everything injected is either ejected or buffered.
  report.require(
      stats_.flits_injected == stats_.flits_ejected + flits_in_flight_,
      "flits injected == ejected + in flight",
      std::to_string(stats_.flits_injected) + " != " +
          std::to_string(stats_.flits_ejected) + " + " +
          std::to_string(flits_in_flight_));
  report.require(stats_.packets_injected ==
                     stats_.packets_delivered + live_packets_.size(),
                 "packets injected == delivered + live",
                 std::to_string(stats_.packets_injected) + " != " +
                     std::to_string(stats_.packets_delivered) + " + " +
                     std::to_string(live_packets_.size()));

  // Occupancy caches must mirror the actual buffer contents.
  std::uint64_t total_occupancy = 0;
  for (NodeId node = 0; node < num_nodes(); ++node) {
    std::uint32_t buffered = 0;
    for (const auto& per_port : routers_[node].in) {
      for (const auto& buf : per_port) {
        buffered += static_cast<std::uint32_t>(buf.fifo.size());
      }
    }
    report.require(router_occupancy_[node] == buffered,
                   "router occupancy cache matches buffered flits",
                   "node " + std::to_string(node) + ": " +
                       std::to_string(router_occupancy_[node]) + " != " +
                       std::to_string(buffered));
    total_occupancy += buffered;
  }
  report.require(total_occupancy == flits_in_flight_,
                 "sum of router occupancy == flits in flight",
                 std::to_string(total_occupancy) + " != " +
                     std::to_string(flits_in_flight_));

  // Byte counters are derived from the hop counters, flit by flit.
  report.require(stats_.bypass_flit_hops <= stats_.flit_hops,
                 "bypass hops are a subset of flit hops");
  report.require(stats_.link_bytes ==
                     (stats_.flit_hops - stats_.bypass_flit_hops) *
                         params_.flit_bytes,
                 "link bytes == mesh flit hops x flit size",
                 std::to_string(stats_.link_bytes));
  report.require(
      stats_.bypass_bytes == stats_.bypass_flit_hops * params_.flit_bytes,
      "bypass bytes == bypass flit hops x flit size",
      std::to_string(stats_.bypass_bytes));

  if (!report.drained()) return;
  // Drain-only laws: no residual flits/packets anywhere, wormhole locks all
  // released, and every credit returned to its initial buffer depth.
  report.require(flits_in_flight_ == 0, "drained: no flits in flight",
                 std::to_string(flits_in_flight_));
  report.require(live_packets_.empty(), "drained: no live packets",
                 std::to_string(live_packets_.size()));
  report.require(stats_.packets_injected == stats_.packets_delivered,
                 "drained: packets injected == delivered",
                 std::to_string(stats_.packets_injected) + " != " +
                     std::to_string(stats_.packets_delivered));
  for (NodeId node = 0; node < num_nodes(); ++node) {
    const Router& router = routers_[node];
    for (std::size_t p = 0; p < kNumPorts; ++p) {
      for (std::uint32_t v = 0; v < params_.num_vcs; ++v) {
        const std::string where = "node " + std::to_string(node) + " port " +
                                  port_name(static_cast<Port>(p)) + " vc " +
                                  std::to_string(v);
        report.require(router.in[p][v].fifo.empty(),
                       "drained: input FIFO empty", where);
        report.require(!router.in[p][v].locked_output.has_value(),
                       "drained: wormhole lock released", where);
        report.require(router.credits[p][v] == params_.input_buffer_flits,
                       "drained: credits restored to buffer depth",
                       where + ": " + std::to_string(router.credits[p][v]) +
                           " != " +
                           std::to_string(params_.input_buffer_flits));
      }
    }
  }
}

std::string Network::render_load_heatmap() const {
  static constexpr const char* kGlyphs = " .:-=+*#%@";
  std::uint64_t peak = 0;
  for (const auto l : router_load_) peak = std::max(peak, l);
  std::string out;
  for (std::uint32_t r = 0; r < params_.k; ++r) {
    out.push_back('|');
    for (std::uint32_t c = 0; c < params_.k; ++c) {
      const auto l = router_load_[r * params_.k + c];
      const auto level =
          peak == 0 || l == 0
              ? 0
              : 1 + static_cast<std::size_t>(8.0 * static_cast<double>(l) /
                                             static_cast<double>(peak));
      out.push_back(kGlyphs[std::min<std::size_t>(level, 9)]);
    }
    out.append("|\n");
  }
  return out;
}

void Network::export_counters(CounterSet& out) const {
  out.inc("noc.packets_injected", stats_.packets_injected);
  out.inc("noc.packets_delivered", stats_.packets_delivered);
  out.inc("noc.flits_injected", stats_.flits_injected);
  out.inc("noc.flits_ejected", stats_.flits_ejected);
  out.inc("noc.flit_hops", stats_.flit_hops);
  out.inc("noc.bypass_flit_hops", stats_.bypass_flit_hops);
  out.inc("noc.router_traversals", stats_.router_traversals);
  out.inc("noc.busy_cycles", stats_.busy_cycles);
}

void Network::register_metrics(MetricsRegistry& registry) {
  const auto s = registry.scope("noc");
  s.counter("packets_injected", &stats_.packets_injected);
  s.counter("packets_delivered", &stats_.packets_delivered);
  s.counter("flits_injected", &stats_.flits_injected);
  s.counter("flits_ejected", &stats_.flits_ejected);
  s.counter("flit_hops", &stats_.flit_hops);
  s.counter("bypass_flit_hops", &stats_.bypass_flit_hops);
  s.counter("router_traversals", &stats_.router_traversals);
  s.counter("busy_cycles", &stats_.busy_cycles);
  s.gauge("flits_in_flight",
          [this] { return static_cast<double>(flits_in_flight_); });
  s.gauge("packets_in_flight",
          [this] { return static_cast<double>(live_packets_.size()); });
  s.histogram("packet_latency", &stats_.packet_latency_hist);
}

std::vector<Packet> Network::drain_delivered() {
  return std::exchange(delivered_, {});
}

const char* port_name(Port p) {
  switch (p) {
    case Port::kLocal:
      return "local";
    case Port::kNorth:
      return "north";
    case Port::kEast:
      return "east";
    case Port::kSouth:
      return "south";
    case Port::kWest:
      return "west";
    case Port::kBypassRow:
      return "bypass-row";
    case Port::kBypassCol:
      return "bypass-col";
  }
  throw Error("invalid port");
}

}  // namespace aurora::noc
