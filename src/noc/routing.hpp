// Routing decisions for the reconfigurable mesh.
//
// Baseline is dimension-order XY (column first, then row) — deadlock-free
// under wormhole flow control. Two overlays modify it:
//   * bypass segments: when the flit sits at a segment endpoint and the
//     segment jumps toward the destination without overshooting, take it;
//   * rings: traffic between two members of the same ring follows the ring
//     successor order (used by the weight-stationary vertex-update flow).
// Both overlays preserve monotone progress in the current dimension for
// XY traffic, so the channel dependency graph stays acyclic.
#pragma once

#include "noc/config.hpp"
#include "noc/types.hpp"

namespace aurora::noc {

/// Where a flit leaving `node` through `port` lands.
struct Hop {
  NodeId next_node = 0;
  Port next_in_port = Port::kLocal;
  /// Wire length in tile spans (1 for mesh links; segment length for bypass).
  std::uint32_t length = 1;
  bool via_bypass = false;
};

/// Output port a flit at `node` heading to `dst` should request.
/// Returns Port::kLocal when node == dst (ejection).
[[nodiscard]] Port route_output(NodeId node, NodeId dst,
                                const NocConfig& config);

/// Resolve the physical hop for (node, output port). Throws if the port is
/// not wired under `config` (e.g. bypass port with no segment endpoint).
[[nodiscard]] Hop resolve_hop(NodeId node, Port out, const NocConfig& config);

/// Number of hops a packet will take from src to dst (follows route_output
/// until arrival; used by tests and the analytic model).
[[nodiscard]] std::uint32_t path_hops(NodeId src, NodeId dst,
                                      const NocConfig& config);

}  // namespace aurora::noc
