// Synthetic traffic patterns and throughput measurement for NoC evaluation —
// the classic kit (uniform random, transpose, bit-complement, hotspot,
// neighbor) plus a saturation-throughput probe.
#pragma once

#include <cstdint>
#include <functional>

#include "common/rng.hpp"
#include "noc/network.hpp"
#include "sim/simulator.hpp"

namespace aurora::noc {

enum class TrafficPattern : std::uint8_t {
  kUniformRandom,
  kTranspose,      // (r, c) -> (c, r)
  kBitComplement,  // id -> ~id
  kHotspot,        // half the traffic converges on node 0
  kNeighbor,       // (r, c) -> (r, c+1 mod k)
};

[[nodiscard]] const char* traffic_pattern_name(TrafficPattern p);

/// Destination of a packet from `src` under `pattern` (rng used only by the
/// random/hotspot patterns).
[[nodiscard]] NodeId traffic_destination(TrafficPattern pattern, NodeId src,
                                         std::uint32_t k, Rng& rng);

struct ThroughputResult {
  /// Offered and accepted injection rates in flits/node/cycle.
  double offered_rate = 0.0;
  double accepted_rate = 0.0;
  double avg_latency = 0.0;
  bool saturated = false;  // network failed to keep up with the offer
};

/// Drive `pattern` at `offered_rate` (flits/node/cycle) for `warm + measure`
/// cycles and report accepted throughput + latency. Deterministic in `seed`.
[[nodiscard]] ThroughputResult measure_throughput(
    const NocParams& params, TrafficPattern pattern, double offered_rate,
    Cycle measure_cycles = 2000, std::uint64_t seed = 1,
    Bytes packet_bytes = 64);

}  // namespace aurora::noc
