#include "noc/traffic.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace aurora::noc {

const char* traffic_pattern_name(TrafficPattern p) {
  switch (p) {
    case TrafficPattern::kUniformRandom:
      return "uniform-random";
    case TrafficPattern::kTranspose:
      return "transpose";
    case TrafficPattern::kBitComplement:
      return "bit-complement";
    case TrafficPattern::kHotspot:
      return "hotspot";
    case TrafficPattern::kNeighbor:
      return "neighbor";
  }
  throw Error("invalid TrafficPattern");
}

NodeId traffic_destination(TrafficPattern pattern, NodeId src,
                           std::uint32_t k, Rng& rng) {
  const std::uint32_t n = k * k;
  switch (pattern) {
    case TrafficPattern::kUniformRandom:
      return static_cast<NodeId>(rng.next_below(n));
    case TrafficPattern::kTranspose: {
      const Coord c = to_coord(src, k);
      return to_node({c.col, c.row}, k);
    }
    case TrafficPattern::kBitComplement:
      return (n - 1) - src;
    case TrafficPattern::kHotspot:
      return rng.next_bool(0.5) ? NodeId{0}
                                : static_cast<NodeId>(rng.next_below(n));
    case TrafficPattern::kNeighbor: {
      const Coord c = to_coord(src, k);
      return to_node({c.row, (c.col + 1) % k}, k);
    }
  }
  throw Error("invalid TrafficPattern");
}

ThroughputResult measure_throughput(const NocParams& params,
                                    TrafficPattern pattern,
                                    double offered_rate, Cycle measure_cycles,
                                    std::uint64_t seed, Bytes packet_bytes) {
  AURORA_CHECK(offered_rate > 0.0);
  Network net(params);
  sim::Simulator s;
  s.add(&net);
  Rng rng(seed);

  const std::uint32_t n = net.num_nodes();
  const auto flits_per_packet = std::max<std::uint64_t>(
      1, (packet_bytes + params.flit_bytes - 1) / params.flit_bytes);
  // Per-node Bernoulli injection each cycle with probability
  // offered_rate / flits_per_packet (so flit rate matches the offer).
  const double p_inject =
      std::min(1.0, offered_rate / static_cast<double>(flits_per_packet));

  std::uint64_t injected_flits = 0;
  for (Cycle t = 0; t < measure_cycles; ++t) {
    for (NodeId src = 0; src < n; ++src) {
      if (rng.next_bool(p_inject)) {
        const NodeId dst = traffic_destination(pattern, src, params.k, rng);
        if (dst == src) continue;
        net.send(src, dst, packet_bytes, 0, s.now());
        injected_flits += flits_per_packet;
      }
    }
    s.step();
  }
  // Drain with a generous budget; saturation shows up as a long tail.
  const Cycle drain_budget = measure_cycles * 20 + 100000;
  Cycle drained = measure_cycles;
  while (!s.all_idle() && drained < measure_cycles + drain_budget) {
    s.step();
    ++drained;
  }

  ThroughputResult r;
  r.offered_rate = static_cast<double>(injected_flits) /
                   (static_cast<double>(n) *
                    static_cast<double>(measure_cycles));
  const double delivered_flits =
      static_cast<double>(net.stats().flit_hops) /
      std::max(1.0, net.stats().avg_hops());  // flits, not flit-hops
  r.accepted_rate =
      delivered_flits /
      (static_cast<double>(n) * static_cast<double>(drained));
  r.avg_latency = net.stats().packet_latency.mean();
  // Saturated if the drain tail exceeded half the measurement window.
  r.saturated = (drained - measure_cycles) > measure_cycles / 2;
  return r;
}

}  // namespace aurora::noc
