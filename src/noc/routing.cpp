#include "noc/routing.hpp"

#include "common/error.hpp"

namespace aurora::noc {
namespace {

/// Opposite input port seen by the receiver of a mesh link.
Port opposite(Port out) {
  switch (out) {
    case Port::kNorth:
      return Port::kSouth;
    case Port::kSouth:
      return Port::kNorth;
    case Port::kEast:
      return Port::kWest;
    case Port::kWest:
      return Port::kEast;
    case Port::kBypassRow:
      return Port::kBypassRow;
    case Port::kBypassCol:
      return Port::kBypassCol;
    case Port::kLocal:
      return Port::kLocal;
  }
  throw Error("invalid port");
}

}  // namespace

Port route_output(NodeId node, NodeId dst, const NocConfig& config) {
  AURORA_CHECK(config.k() > 0);
  if (node == dst) return Port::kLocal;
  const std::uint32_t k = config.k();
  const Coord cur = to_coord(node, k);
  const Coord target = to_coord(dst, k);

  // Ring overlay takes priority: weight-stationary traffic circulates.
  // Only a routable ring may steer, and the fallback is per-ring, not
  // per-hop: if any hop of the overlay is unresolvable (e.g. a wrap-around
  // with no bypass segment at the wrap node), every member ignores the ring
  // and traffic takes plain dimension-order routing — a per-hop fallback
  // would bounce flits between ring members forever.
  const auto ring = config.ring_of(node);
  if (ring.has_value() && config.ring_of(dst) == ring &&
      config.ring_routable(*ring)) {
    const NodeId succ = config.ring_successor(node);
    const Coord sc = to_coord(succ, k);
    if (sc.row == cur.row) {
      if (sc.col == cur.col + 1) return Port::kEast;
      if (sc.col + 1 == cur.col) return Port::kWest;
      return Port::kBypassRow;  // wrap-around over the segment
    }
    if (sc.row == cur.row + 1) return Port::kSouth;
    if (sc.row + 1 == cur.row) return Port::kNorth;
    return Port::kBypassCol;
  }

  // Correct one dimension fully, then the other (order set by the routing
  // policy). Bypass segments are taken when their far endpoint moves toward
  // the destination without overshooting.
  auto step_x = [&]() -> Port {
    const auto seg = config.row_segment_at(cur.row, cur.col);
    if (seg.has_value()) {
      const std::uint32_t far = (seg->from == cur.col) ? seg->to : seg->from;
      const bool toward_and_within =
          (target.col > cur.col && far > cur.col && far <= target.col) ||
          (target.col < cur.col && far < cur.col && far >= target.col);
      if (toward_and_within && seg->length() >= 2) return Port::kBypassRow;
    }
    return target.col > cur.col ? Port::kEast : Port::kWest;
  };
  auto step_y = [&]() -> Port {
    const auto seg = config.col_segment_at(cur.col, cur.row);
    if (seg.has_value()) {
      const std::uint32_t far = (seg->from == cur.row) ? seg->to : seg->from;
      const bool toward_and_within =
          (target.row > cur.row && far > cur.row && far <= target.row) ||
          (target.row < cur.row && far < cur.row && far >= target.row);
      if (toward_and_within && seg->length() >= 2) return Port::kBypassCol;
    }
    return target.row > cur.row ? Port::kSouth : Port::kNorth;
  };

  if (config.routing() == RoutingPolicy::kXYFirst) {
    if (cur.col != target.col) return step_x();
    return step_y();
  }
  if (cur.row != target.row) return step_y();
  return step_x();
}

Hop resolve_hop(NodeId node, Port out, const NocConfig& config) {
  const std::uint32_t k = config.k();
  const Coord cur = to_coord(node, k);
  Hop hop;
  hop.next_in_port = opposite(out);
  switch (out) {
    case Port::kEast:
      AURORA_CHECK(cur.col + 1 < k);
      hop.next_node = to_node({cur.row, cur.col + 1}, k);
      return hop;
    case Port::kWest:
      AURORA_CHECK(cur.col > 0);
      hop.next_node = to_node({cur.row, cur.col - 1}, k);
      return hop;
    case Port::kSouth:
      AURORA_CHECK(cur.row + 1 < k);
      hop.next_node = to_node({cur.row + 1, cur.col}, k);
      return hop;
    case Port::kNorth:
      AURORA_CHECK(cur.row > 0);
      hop.next_node = to_node({cur.row - 1, cur.col}, k);
      return hop;
    case Port::kBypassRow: {
      const auto seg = config.row_segment_at(cur.row, cur.col);
      AURORA_CHECK_MSG(seg.has_value(),
                       "no row bypass endpoint at node " << node);
      const std::uint32_t far = (seg->from == cur.col) ? seg->to : seg->from;
      hop.next_node = to_node({cur.row, far}, k);
      hop.length = seg->length();
      hop.via_bypass = true;
      return hop;
    }
    case Port::kBypassCol: {
      const auto seg = config.col_segment_at(cur.col, cur.row);
      AURORA_CHECK_MSG(seg.has_value(),
                       "no column bypass endpoint at node " << node);
      const std::uint32_t far = (seg->from == cur.row) ? seg->to : seg->from;
      hop.next_node = to_node({far, cur.col}, k);
      hop.length = seg->length();
      hop.via_bypass = true;
      return hop;
    }
    case Port::kLocal:
      break;
  }
  throw Error("resolve_hop called with local port");
}

std::uint32_t path_hops(NodeId src, NodeId dst, const NocConfig& config) {
  std::uint32_t hops = 0;
  NodeId cur = src;
  const std::uint32_t limit = 4 * config.k() + 8;
  while (cur != dst) {
    const Port out = route_output(cur, dst, config);
    cur = resolve_hop(cur, out, config).next_node;
    ++hops;
    AURORA_CHECK_MSG(hops <= limit, "routing loop between " << src << " and "
                                                            << dst);
  }
  return hops;
}

}  // namespace aurora::noc
