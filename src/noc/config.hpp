// NoC configuration: mesh parameters, bypass-link segmentation and ring
// overlays (paper Sec III-B/III-C, Fig 2).
//
// The physical substrate is a K x K mesh plus ONE bi-directional bypass wire
// per row and per column. Link switches cut each bypass wire into disjoint
// segments; an active segment [a, b] attaches to the routers at columns
// (rows) a and b and lets a flit cross the span in a single traversal.
// Rings overlay the mesh for the weight-stationary vertex-update dataflow:
// consecutive ring nodes must be physically linked (mesh-adjacent or the two
// endpoints of an active bypass segment).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "noc/types.hpp"

namespace aurora::noc {

/// One active bypass segment on a row's (or column's) bypass wire.
/// `line` is the row index for row segments / column index for column
/// segments; the segment spans [from, to] with to > from.
struct BypassSegment {
  std::uint32_t line = 0;
  std::uint32_t from = 0;
  std::uint32_t to = 0;

  [[nodiscard]] std::uint32_t length() const { return to - from; }
  friend bool operator==(const BypassSegment&, const BypassSegment&) = default;
};

/// A unidirectional ring overlay: nodes in traversal order. Flits between
/// ring members travel successor-to-successor (weight-stationary rotation).
struct RingConfig {
  std::vector<NodeId> nodes;

  friend bool operator==(const RingConfig&, const RingConfig&) = default;
};

/// Dimension-order variant. The reconfigurable routers support either
/// order; alternating it between phases spreads link load across the two
/// dimensions.
enum class RoutingPolicy : std::uint8_t {
  kXYFirst,  // correct columns, then rows (default)
  kYXFirst,  // correct rows, then columns
};

/// Full NoC configuration (what the paper's "NoC configuration unit" emits).
class NocConfig {
 public:
  NocConfig() = default;
  explicit NocConfig(std::uint32_t k) : k_(k) {}

  [[nodiscard]] std::uint32_t k() const { return k_; }

  void set_routing(RoutingPolicy policy) { routing_ = policy; }
  [[nodiscard]] RoutingPolicy routing() const { return routing_; }

  /// Add an active segment on row `line`'s bypass wire. Throws if it
  /// overlaps an existing segment on the same wire (including endpoints:
  /// each router has a single bypass port per direction).
  void add_row_segment(BypassSegment segment);
  void add_col_segment(BypassSegment segment);

  /// Add a ring overlay. Adjacency of consecutive nodes is validated against
  /// the mesh + active segments, and nodes may appear at most once across
  /// all rings (ring_successor resolves by first occurrence, so a duplicate
  /// silently reroutes — and can livelock — the later ring).
  void add_ring(RingConfig ring);

  /// Add a ring without any validation (testing/fuzzing hook for exercising
  /// the routability checks downstream). Network::configure rejects
  /// configurations whose rings are not routable; route_output ignores
  /// unroutable rings and falls back to dimension-order routing.
  void add_ring_unchecked(RingConfig ring);

  [[nodiscard]] const std::vector<BypassSegment>& row_segments() const {
    return row_segments_;
  }
  [[nodiscard]] const std::vector<BypassSegment>& col_segments() const {
    return col_segments_;
  }
  [[nodiscard]] const std::vector<RingConfig>& rings() const { return rings_; }

  /// Segment on `row`'s wire with one endpoint at `col`, if any.
  [[nodiscard]] std::optional<BypassSegment> row_segment_at(
      std::uint32_t row, std::uint32_t col) const;
  /// Segment on `col`'s wire with one endpoint at `row`, if any.
  [[nodiscard]] std::optional<BypassSegment> col_segment_at(
      std::uint32_t col, std::uint32_t row) const;

  /// Ring membership: index into rings() or nullopt.
  [[nodiscard]] std::optional<std::size_t> ring_of(NodeId node) const;
  /// Successor of `node` in its ring (node must be a ring member).
  [[nodiscard]] NodeId ring_successor(NodeId node) const;

  /// True when ring `i` can actually carry circulating traffic: every node
  /// in range and claimed by this ring (no duplicate membership), and every
  /// consecutive pair — including the wrap-around — mesh-adjacent or the
  /// two endpoints of an active bypass segment (i.e. resolvable by
  /// resolve_hop). Rings added through add_ring() are routable by
  /// construction; add_ring_unchecked() may produce unroutable ones.
  [[nodiscard]] bool ring_routable(std::size_t i) const {
    return ring_routable_.at(i) != 0;
  }
  [[nodiscard]] bool all_rings_routable() const;

  /// Number of link-switch/mux state bits that differ between two
  /// configurations — the paper's reconfiguration energy driver.
  [[nodiscard]] static std::uint64_t switch_writes_between(
      const NocConfig& from, const NocConfig& to);

  /// Total switch state used by this configuration.
  [[nodiscard]] std::uint64_t total_switch_states() const;

 private:
  [[nodiscard]] bool physically_linked(NodeId a, NodeId b) const;
  [[nodiscard]] bool compute_ring_routable(std::size_t i) const;
  void refresh_ring_routability();

  std::uint32_t k_ = 0;
  RoutingPolicy routing_ = RoutingPolicy::kXYFirst;
  std::vector<BypassSegment> row_segments_;
  std::vector<BypassSegment> col_segments_;
  std::vector<RingConfig> rings_;
  /// Cached routability per ring (parallel to rings_), refreshed whenever a
  /// ring or segment is added, so the per-flit routing check is O(1).
  std::vector<std::uint8_t> ring_routable_;
};

}  // namespace aurora::noc
