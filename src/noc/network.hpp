// Flit-level network simulation: K x K mesh of reconfigurable routers with
// wormhole switching, credit-based flow control and the bypass/ring overlays.
//
// Router microarchitecture (paper Fig 4) is modelled as:
//   * one input FIFO per port with credit-based backpressure;
//   * per-output round-robin switch allocation, one flit per output/cycle;
//   * wormhole locking: a granted input->output pairing persists until the
//     packet's tail flit passes;
//   * a two-stage (horizontal/vertical) crossbar: flits that turn between
//     dimensions pay one extra pipeline cycle;
//   * bypass ports attach to the segmented per-row/per-column bypass wires.
// Each physical port carries `num_vcs` virtual channels (allocated to a
// packet at injection, kept end to end); XY ordering plus monotone bypass
// jumps keep the channel dependency graph acyclic (see routing.hpp).
#pragma once

#include <array>
#include <deque>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/stats.hpp"
#include "noc/config.hpp"
#include "noc/routing.hpp"
#include "noc/types.hpp"
#include "sim/component.hpp"

namespace aurora::noc {

struct NocParams {
  std::uint32_t k = 8;
  Bytes flit_bytes = 32;
  /// Virtual channels per physical port (paper Fig 4: VC buffers + VA).
  std::uint32_t num_vcs = 2;
  std::uint32_t input_buffer_flits = 8;
  /// Router pipeline depth in cycles (RC/SA + ST).
  Cycle router_delay = 2;
  /// Extra cycle for flits turning between the horizontal and vertical
  /// stages of the decomposed crossbar.
  Cycle turn_delay = 1;
  /// Wire delay of one tile span; bypass segments pay length/4 extra.
  Cycle link_delay = 1;
};

struct NocStats {
  std::uint64_t packets_injected = 0;
  std::uint64_t packets_delivered = 0;
  std::uint64_t flits_injected = 0;     // flits entering at local ports
  std::uint64_t flits_ejected = 0;      // flits delivered at local ports
  std::uint64_t flit_hops = 0;          // flit traversals over any wire
  std::uint64_t bypass_flit_hops = 0;   // subset over bypass segments
  std::uint64_t router_traversals = 0;  // flits passing through a router
  Bytes link_bytes = 0;                 // payload bytes x mesh-link hops
  Bytes bypass_bytes = 0;               // payload bytes x bypass hops
  /// Cycles during which at least one flit was in flight — the network's
  /// contribution to "on-chip communication time".
  Cycle busy_cycles = 0;
  RunningStat packet_latency;
  RunningStat packet_hops;
  /// Injection-to-tail-delivery latency distribution (canonical layout, so
  /// it merges into RunMetrics::noc_packet_latency).
  Histogram packet_latency_hist{kNocLatencyBucketCycles, kNocLatencyBuckets};

  [[nodiscard]] double avg_hops() const { return packet_hops.mean(); }
};

/// The network component. Clients inject packets with `send` and receive
/// them through the delivery callback (or poll `drain_delivered`).
class Network final : public sim::Component {
 public:
  explicit Network(const NocParams& params);

  /// Apply a new configuration. Only legal while the network is drained.
  /// Returns the number of switch writes (for reconfiguration energy).
  std::uint64_t configure(NocConfig config);

  [[nodiscard]] const NocConfig& config() const { return config_; }
  [[nodiscard]] const NocParams& params() const { return params_; }

  /// Inject a packet at `src`'s local port. Returns the packet id.
  std::uint64_t send(NodeId src, NodeId dst, Bytes payload_bytes,
                     std::uint64_t tag, Cycle now);

  void set_delivery_callback(DeliveryCallback cb) {
    on_delivery_ = std::move(cb);
  }

  /// Packets delivered since the last call. Only populated when no delivery
  /// callback is installed — callback clients get each packet exactly once
  /// through the callback and nothing accumulates on the hot path.
  [[nodiscard]] std::vector<Packet> drain_delivered();

  void tick(Cycle now) override;
  [[nodiscard]] bool idle() const override;
  /// Earliest cycle at which any buffered flit can move: the min ready_at
  /// over the FIFO-front flits of occupied routers. A front flit that is
  /// already ready (possibly blocked on credits/locks) pins the clock —
  /// unblocking can only happen through other flit movements, which happen
  /// on ticks.
  [[nodiscard]] Cycle next_event_cycle(Cycle now) const override;
  /// Keeps busy_cycles identical to a lockstep run: every skipped cycle had
  /// flits in flight (otherwise the network would have been drained).
  void skip_cycles(Cycle from, Cycle to) override;

  /// Conservation checks: flit/packet balances, occupancy caches, byte/hop
  /// consistency; after drain additionally empty FIFOs, released wormhole
  /// locks and fully restored credits (see docs/architecture.md,
  /// "Invariants").
  void verify_invariants(sim::InvariantReport& report) const override;

  [[nodiscard]] const NocStats& stats() const { return stats_; }
  [[nodiscard]] std::uint32_t num_nodes() const {
    return params_.k * params_.k;
  }

  /// Flits forwarded by each router since construction (congestion map).
  [[nodiscard]] const std::vector<std::uint64_t>& router_load() const {
    return router_load_;
  }
  /// K x K ASCII heatmap of router load (glyph darkness ~ traffic share) —
  /// makes the Fig 2 congestion story visible in a terminal.
  [[nodiscard]] std::string render_load_heatmap() const;

  /// Merge this component's event counts into `out` (prefixed "noc.").
  void export_counters(CounterSet& out) const;

  /// Publish counters, occupancy gauges and the latency histogram under
  /// "noc." for samplers and other generic observers.
  void register_metrics(MetricsRegistry& registry) override;

 private:
  struct TimedFlit {
    Flit flit;
    Cycle ready_at = 0;
  };
  struct InputBuffer {
    std::deque<TimedFlit> fifo;
    /// Output port this buffer's current packet is locked to (wormhole),
    /// or empty when the next head flit still needs switch allocation.
    std::optional<Port> locked_output;
  };
  static constexpr std::uint32_t kMaxVcs = 4;
  struct Router {
    /// One buffer per (physical port, virtual channel).
    std::array<std::array<InputBuffer, kMaxVcs>, kNumPorts> in;
    /// Credits toward each downstream (port, vc) buffer.
    std::array<std::array<std::uint32_t, kMaxVcs>, kNumPorts> credits{};
    /// Round-robin pointers over (port, vc) pairs, one per output port.
    std::array<std::uint8_t, kNumPorts> rr{};
    /// One flit per physical input port per cycle through the crossbar.
    std::array<std::optional<Cycle>, kNumPorts> last_port_pop;
  };
  struct PacketRecord {
    Packet packet;
    std::uint32_t hops = 0;
    std::uint32_t flits_ejected = 0;
  };

  void route_one_output(Router& router, NodeId node, Port out, Cycle now);
  void return_credit(NodeId node, Port in_port, std::uint8_t vc);
  [[nodiscard]] bool is_horizontal(Port p) const {
    return p == Port::kEast || p == Port::kWest || p == Port::kBypassRow;
  }
  void eject_flit(NodeId node, const Flit& flit, Cycle now);

  NocParams params_;
  NocConfig config_;
  std::vector<Router> routers_;
  /// Buffered-flit count per router — lets tick() skip empty routers.
  std::vector<std::uint32_t> router_occupancy_;
  /// Flits forwarded per router (lifetime).
  std::vector<std::uint64_t> router_load_;
  std::unordered_map<std::uint64_t, PacketRecord> live_packets_;
  std::vector<Packet> delivered_;
  DeliveryCallback on_delivery_;
  std::uint64_t next_packet_id_ = 1;
  std::uint64_t flits_in_flight_ = 0;
  NocStats stats_;
};

}  // namespace aurora::noc
