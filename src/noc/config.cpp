#include "noc/config.hpp"

#include <algorithm>
#include <cstdlib>

#include "common/error.hpp"

namespace aurora::noc {
namespace {

void check_segment(const BypassSegment& s, std::uint32_t k,
                   const std::vector<BypassSegment>& existing) {
  AURORA_CHECK_MSG(k > 0, "NocConfig not initialised with a mesh size");
  AURORA_CHECK_MSG(s.line < k, "segment line out of range");
  AURORA_CHECK_MSG(s.from < s.to, "segment must span at least one tile");
  AURORA_CHECK_MSG(s.to < k, "segment end out of range");
  AURORA_CHECK_MSG(s.length() >= 2,
                   "length-1 segments duplicate the mesh link; not allowed");
  for (const auto& other : existing) {
    if (other.line != s.line) continue;
    const bool disjoint = s.to < other.from || other.to < s.from;
    AURORA_CHECK_MSG(disjoint, "bypass segments overlap on line " << s.line);
  }
}

}  // namespace

void NocConfig::add_row_segment(BypassSegment segment) {
  check_segment(segment, k_, row_segments_);
  row_segments_.push_back(segment);
  refresh_ring_routability();  // a new segment can make a ring routable
}

void NocConfig::add_col_segment(BypassSegment segment) {
  check_segment(segment, k_, col_segments_);
  col_segments_.push_back(segment);
  refresh_ring_routability();
}

bool NocConfig::physically_linked(NodeId a, NodeId b) const {
  const Coord ca = to_coord(a, k_);
  const Coord cb = to_coord(b, k_);
  if (ca.row == cb.row) {
    const auto lo = std::min(ca.col, cb.col);
    const auto hi = std::max(ca.col, cb.col);
    if (hi - lo == 1) return true;
    for (const auto& s : row_segments_) {
      if (s.line == ca.row && s.from == lo && s.to == hi) return true;
    }
  }
  if (ca.col == cb.col) {
    const auto lo = std::min(ca.row, cb.row);
    const auto hi = std::max(ca.row, cb.row);
    if (hi - lo == 1) return true;
    for (const auto& s : col_segments_) {
      if (s.line == ca.col && s.from == lo && s.to == hi) return true;
    }
  }
  return false;
}

void NocConfig::add_ring(RingConfig ring) {
  AURORA_CHECK_MSG(ring.nodes.size() >= 2, "ring needs at least two nodes");
  for (std::size_t i = 0; i < ring.nodes.size(); ++i) {
    const NodeId n = ring.nodes[i];
    AURORA_CHECK_MSG(n < k_ * k_, "ring node out of range");
    AURORA_CHECK_MSG(!ring_of(n).has_value(),
                     "node " << n << " already belongs to a ring");
    // ring_successor resolves by first occurrence, so a node repeated
    // within one ring would short-circuit the traversal and livelock.
    for (std::size_t j = i + 1; j < ring.nodes.size(); ++j) {
      AURORA_CHECK_MSG(n != ring.nodes[j],
                       "node " << n << " appears twice in the ring");
    }
  }
  for (std::size_t i = 0; i < ring.nodes.size(); ++i) {
    const NodeId a = ring.nodes[i];
    const NodeId b = ring.nodes[(i + 1) % ring.nodes.size()];
    AURORA_CHECK_MSG(physically_linked(a, b),
                     "ring nodes " << a << " and " << b
                                   << " are not physically linked");
  }
  rings_.push_back(std::move(ring));
  ring_routable_.push_back(
      compute_ring_routable(rings_.size() - 1) ? 1 : 0);
}

void NocConfig::add_ring_unchecked(RingConfig ring) {
  rings_.push_back(std::move(ring));
  ring_routable_.push_back(
      compute_ring_routable(rings_.size() - 1) ? 1 : 0);
}

bool NocConfig::compute_ring_routable(std::size_t i) const {
  const auto& nodes = rings_[i].nodes;
  const std::size_t n = nodes.size();
  if (n < 2) return false;
  // First-occurrence membership must resolve uniquely to this ring: a node
  // repeated within the ring, or shadowed by an earlier ring, silently
  // reroutes the traversal through the wrong successor (livelock).
  for (std::size_t j = 0; j < n; ++j) {
    const NodeId node = nodes[j];
    if (node >= k_ * k_) return false;
    if (ring_of(node) != i) return false;
    for (std::size_t l = j + 1; l < n; ++l) {
      if (nodes[l] == node) return false;
    }
  }
  for (std::size_t j = 0; j < n; ++j) {
    if (!physically_linked(nodes[j], nodes[(j + 1) % n])) return false;
  }
  return true;
}

void NocConfig::refresh_ring_routability() {
  for (std::size_t i = 0; i < rings_.size(); ++i) {
    ring_routable_[i] = compute_ring_routable(i) ? 1 : 0;
  }
}

bool NocConfig::all_rings_routable() const {
  return std::all_of(ring_routable_.begin(), ring_routable_.end(),
                     [](std::uint8_t r) { return r != 0; });
}

std::optional<BypassSegment> NocConfig::row_segment_at(
    std::uint32_t row, std::uint32_t col) const {
  for (const auto& s : row_segments_) {
    if (s.line == row && (s.from == col || s.to == col)) return s;
  }
  return std::nullopt;
}

std::optional<BypassSegment> NocConfig::col_segment_at(
    std::uint32_t col, std::uint32_t row) const {
  for (const auto& s : col_segments_) {
    if (s.line == col && (s.from == row || s.to == row)) return s;
  }
  return std::nullopt;
}

std::optional<std::size_t> NocConfig::ring_of(NodeId node) const {
  for (std::size_t i = 0; i < rings_.size(); ++i) {
    const auto& nodes = rings_[i].nodes;
    if (std::find(nodes.begin(), nodes.end(), node) != nodes.end()) return i;
  }
  return std::nullopt;
}

NodeId NocConfig::ring_successor(NodeId node) const {
  const auto ring = ring_of(node);
  AURORA_CHECK_MSG(ring.has_value(), "node " << node << " not in any ring");
  const auto& nodes = rings_[*ring].nodes;
  const auto it = std::find(nodes.begin(), nodes.end(), node);
  const auto idx = static_cast<std::size_t>(it - nodes.begin());
  return nodes[(idx + 1) % nodes.size()];
}

std::uint64_t NocConfig::total_switch_states() const {
  // Each active segment closes its interior link switches and opens the two
  // boundary ones (~length states); each ring node programs one mux.
  std::uint64_t states = 0;
  for (const auto& s : row_segments_) states += s.length() + 1;
  for (const auto& s : col_segments_) states += s.length() + 1;
  for (const auto& r : rings_) states += r.nodes.size();
  return states;
}

std::uint64_t NocConfig::switch_writes_between(const NocConfig& from,
                                               const NocConfig& to) {
  // Conservative estimate: tear down what is no longer present and program
  // what is new. Segments/rings present in both cost nothing.
  std::uint64_t writes = 0;
  auto segment_cost = [](const std::vector<BypassSegment>& a,
                         const std::vector<BypassSegment>& b) {
    std::uint64_t cost = 0;
    for (const auto& s : a) {
      if (std::find(b.begin(), b.end(), s) == b.end()) cost += s.length() + 1;
    }
    return cost;
  };
  writes += segment_cost(from.row_segments_, to.row_segments_);
  writes += segment_cost(to.row_segments_, from.row_segments_);
  writes += segment_cost(from.col_segments_, to.col_segments_);
  writes += segment_cost(to.col_segments_, from.col_segments_);
  auto ring_cost = [](const std::vector<RingConfig>& a,
                      const std::vector<RingConfig>& b) {
    std::uint64_t cost = 0;
    for (const auto& r : a) {
      if (std::find(b.begin(), b.end(), r) == b.end()) cost += r.nodes.size();
    }
    return cost;
  };
  writes += ring_cost(from.rings_, to.rings_);
  writes += ring_cost(to.rings_, from.rings_);
  return writes;
}

}  // namespace aurora::noc
