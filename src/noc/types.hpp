// Basic NoC data types: node coordinates, packets and flits.
#pragma once

#include <cstdint>
#include <functional>

#include "common/types.hpp"

namespace aurora::noc {

/// Node id = row * K + col in a K x K mesh.
using NodeId = std::uint32_t;

struct Coord {
  std::uint32_t row = 0;
  std::uint32_t col = 0;

  friend bool operator==(const Coord&, const Coord&) = default;
};

[[nodiscard]] constexpr NodeId to_node(Coord c, std::uint32_t k) {
  return c.row * k + c.col;
}
[[nodiscard]] constexpr Coord to_coord(NodeId id, std::uint32_t k) {
  return {id / k, id % k};
}

/// Router port indices. The two bypass ports attach to the per-row and
/// per-column bypass links (paper Fig 4: muxes at +x / +y).
enum class Port : std::uint8_t {
  kLocal = 0,
  kNorth,
  kEast,
  kSouth,
  kWest,
  kBypassRow,  // segmented horizontal bypass link
  kBypassCol,  // segmented vertical bypass link
};
inline constexpr std::size_t kNumPorts = 7;

[[nodiscard]] const char* port_name(Port p);

/// One message in flight. Payload is abstract (the simulator is
/// timing-directed; functional values travel in the orchestration layer).
struct Packet {
  std::uint64_t id = 0;
  NodeId src = 0;
  NodeId dst = 0;
  Bytes payload_bytes = 0;
  std::uint32_t num_flits = 0;
  Cycle injected_at = 0;
  /// Opaque tag the client uses to identify the message at delivery.
  std::uint64_t tag = 0;
};

/// Wormhole flit. Flits of one packet follow the head's path and stay in
/// the virtual channel assigned at injection.
struct Flit {
  std::uint64_t packet_id = 0;
  std::uint32_t seq = 0;
  std::uint8_t vc = 0;
  bool is_head = false;
  bool is_tail = false;
};

/// Delivery notification: packet plus arrival cycle.
using DeliveryCallback =
    std::function<void(const Packet& packet, Cycle arrival)>;

}  // namespace aurora::noc
